package wcoj

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wcoj/internal/dataset"
)

// freshEquivalent registers the current effective tuple sets of src's
// relations into a brand-new DB — the from-scratch rebuild every
// incremental result is compared against.
func freshEquivalent(t testing.TB, src *DB) *DB {
	t.Helper()
	fresh := NewDB()
	for _, name := range src.Names() {
		r, ok := src.Relation(name)
		if !ok {
			t.Fatalf("relation %q vanished", name)
		}
		b := NewRelationBuilder(name, r.Attrs()...)
		for i := 0; i < r.Len(); i++ {
			if err := b.Add(r.Tuple(i, nil)...); err != nil {
				t.Fatal(err)
			}
		}
		if err := fresh.Register(b.Build()); err != nil {
			t.Fatal(err)
		}
	}
	return fresh
}

// assertUpdatedMatchesFresh checks that every execution mode of the
// incrementally updated DB is byte-identical to a from-scratch rebuild,
// across both WCOJ engines and serial/parallel execution.
func assertUpdatedMatchesFresh(t *testing.T, updated *DB, queries []string) {
	t.Helper()
	ctx := context.Background()
	fresh := freshEquivalent(t, updated)
	for _, src := range queries {
		for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
			for _, par := range []int{1, 4} {
				opts := Options{Algorithm: algo, Parallelism: par}
				upq, err := updated.Prepare(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				fpq, err := fresh.Prepare(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				uRel, _, err := upq.Execute(ctx)
				if err != nil {
					t.Fatal(err)
				}
				fRel, _, err := fpq.Execute(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !uRel.Equal(fRel) {
					t.Fatalf("%s %v p=%d: incremental result differs from rebuild (%d vs %d tuples)",
						src, algo, par, uRel.Len(), fRel.Len())
				}
				un, _, err := upq.CountFast(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if un != fRel.Len() {
					t.Fatalf("%s %v p=%d: CountFast %d, want %d", src, algo, par, un, fRel.Len())
				}
				uex, _, err := upq.Exists(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if uex != (fRel.Len() > 0) {
					t.Fatalf("%s %v p=%d: Exists %v, want %v", src, algo, par, uex, fRel.Len() > 0)
				}
			}
		}
	}
}

func TestUpdateEquivalence(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(40, 300, 5)); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"Q(A,B) :- E(A,B)",
		"Q(A,B,C) :- E(A,B), E(B,C), E(A,C)",
		"Q(A,B,C) :- E(A,B), E(B,C)",
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 8; step++ {
		batch := NewBatch()
		for i := 0; i < 30; i++ {
			tu := Tuple{Value(rng.Intn(45)), Value(rng.Intn(45))}
			if rng.Intn(2) == 0 {
				batch.Insert("E", tu)
			} else {
				batch.Delete("E", tu)
			}
		}
		if _, err := db.Apply(batch); err != nil {
			t.Fatal(err)
		}
		assertUpdatedMatchesFresh(t, db, queries)
	}
	if st := db.Stats(); st.Batches != 8 || st.Epoch == 0 {
		t.Fatalf("update stats: %+v", st)
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(20, 60, 1)); err != nil {
		t.Fatal(err)
	}
	queries := []string{"Q(A,B,C) :- E(A,B), E(B,C), E(A,C)"}

	// insert -> delete -> insert of the same fresh tuples must land on
	// the same state as registering from scratch with them present.
	novel := []Tuple{{100, 101}, {101, 102}, {100, 102}}
	if _, err := db.Insert("E", novel...); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("E", novel...); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.DeltaTuples != 0 {
		t.Fatalf("insert+delete must cancel in the delta log, depth %d", st.DeltaTuples)
	}
	if _, err := db.Insert("E", novel...); err != nil {
		t.Fatal(err)
	}
	assertUpdatedMatchesFresh(t, db, queries)

	// The re-inserted triangle must be visible.
	pq, err := db.Prepare(queries[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := pq.CountFast(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("re-inserted triangle not found")
	}
}

func TestUpdateNoopSemantics(t *testing.T) {
	db := NewDB()
	if err := db.Register(NewRelation("E", []string{"x", "y"}, []Tuple{{1, 2}, {3, 4}})); err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Duplicate insert and absent delete: exact no-op counters, no
	// delta growth, no epoch advance, unchanged results.
	before := db.Stats()
	us, err := db.Apply(NewBatch().
		Insert("E", Tuple{1, 2}).
		Delete("E", Tuple{9, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if us.Inserted != 0 || us.Deleted != 0 || us.InsertNoops != 1 || us.DeleteNoops != 1 {
		t.Fatalf("noop batch stats: %+v", us)
	}
	after := db.Stats()
	if after.Epoch != before.Epoch {
		t.Fatal("pure-noop batch must not advance the update epoch")
	}
	if after.DeltaTuples != 0 {
		t.Fatalf("noops corrupted the delta log: depth %d", after.DeltaTuples)
	}
	if after.InsertNoops != 1 || after.DeleteNoops != 1 || after.Batches != 1 {
		t.Fatalf("lifetime counters: %+v", after)
	}
	if n, _, _ := pq.CountFast(ctx); n != 2 {
		t.Fatalf("count after noop batch: %d", n)
	}

	// Mixed batch: the effective half lands, the noop half is counted.
	us, err = db.Apply(NewBatch().
		Insert("E", Tuple{5, 6}, Tuple{1, 2}).
		Delete("E", Tuple{3, 4}, Tuple{7, 7}))
	if err != nil {
		t.Fatal(err)
	}
	if us.Inserted != 1 || us.InsertNoops != 1 || us.Deleted != 1 || us.DeleteNoops != 1 {
		t.Fatalf("mixed batch stats: %+v", us)
	}
	if n, _, _ := pq.CountFast(ctx); n != 2 {
		t.Fatalf("count after mixed batch: %d", n)
	}
	if st := db.Stats(); st.Tuples != 2 || st.DeltaTuples != 2 {
		t.Fatalf("stats after mixed batch: %+v", st)
	}
}

func TestUpdateErrors(t *testing.T) {
	db := NewDB()
	if err := db.Register(NewRelation("E", []string{"x", "y"}, []Tuple{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("missing", Tuple{1, 2}); err == nil {
		t.Fatal("insert into unknown relation must fail")
	}
	if _, err := db.Insert("E", Tuple{1}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	// A failing batch must publish nothing, even for the valid part.
	before := db.Stats()
	if _, err := db.Apply(NewBatch().Insert("E", Tuple{8, 8}).Insert("E", Tuple{1, 2, 3})); err == nil {
		t.Fatal("batch with arity error must fail")
	}
	after := db.Stats()
	if after.Epoch != before.Epoch || after.Tuples != before.Tuples || after.DeltaTuples != 0 {
		t.Fatalf("failed batch leaked state: %+v -> %+v", before, after)
	}
	if r, _ := db.Relation("E"); r.Contains(Tuple{8, 8}) {
		t.Fatal("failed batch published its valid half")
	}
	// Empty/nil batches are fine.
	if _, err := db.Apply(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply(NewBatch()); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedSurvivesUpdates(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(30, 200, 7)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	src := "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)"
	pq, err := db.Prepare(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pq.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	orderBefore := pq.Order()
	missesBefore := db.Stats().PlanMisses

	if _, err := db.Insert("E", Tuple{200, 201}, Tuple{201, 202}, Tuple{200, 202}); err != nil {
		t.Fatal(err)
	}

	// The held handle follows the update without replanning: same
	// variable order (the plan skeleton was re-versioned, not rebuilt)
	// and the new triangle is visible.
	out, _, err := pq.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tu := range out.Tuples() {
		if tu[0] == 200 || tu[1] == 200 || tu[2] == 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("prepared query did not observe the inserted triangle")
	}
	orderAfter := pq.Order()
	if len(orderAfter) != len(orderBefore) {
		t.Fatalf("order changed shape: %v -> %v", orderBefore, orderAfter)
	}
	for i := range orderAfter {
		if orderAfter[i] != orderBefore[i] {
			t.Fatalf("update replanned the variable order: %v -> %v", orderBefore, orderAfter)
		}
	}
	// Re-preparing still hits the plan cache: updates never invalidate.
	if _, err := db.Prepare(src, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().PlanMisses; got != missesBefore {
		t.Fatalf("updates invalidated the plan cache: misses %d -> %d", missesBefore, got)
	}
}

func TestRegisterThenUpdateConverges(t *testing.T) {
	db := NewDB()
	if err := db.Register(NewRelation("E", []string{"x", "y"}, []Tuple{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pq, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Register keeps snapshot semantics for the held handle...
	if err := db.Register(NewRelation("E", []string{"x", "y"}, []Tuple{{1, 2}, {3, 4}})); err != nil {
		t.Fatal(err)
	}
	if n, _, _ := pq.Count(ctx); n != 1 {
		t.Fatalf("held handle must keep its snapshot across Register, got %d", n)
	}
	// ...until the next update batch, which converges it to the head.
	if _, err := db.Insert("E", Tuple{5, 6}); err != nil {
		t.Fatal(err)
	}
	if n, _, _ := pq.Count(ctx); n != 3 {
		t.Fatalf("held handle must converge after an update, got %d", n)
	}
}

// TestSnapshotIsolation hammers a DB with batches that each delete one
// present tuple and insert one absent tuple — every consistent
// snapshot has exactly N tuples — while readers execute prepared
// queries concurrently. Any reader observing N±1 caught a
// half-applied batch. Run with -race.
func TestSnapshotIsolation(t *testing.T) {
	const n = 200
	db := NewDB()
	eb := NewRelationBuilder("E", "x", "y")
	sb := NewRelationBuilder("S", "x")
	present := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		if err := eb.Add(Value(i), Value(i)); err != nil {
			t.Fatal(err)
		}
		present = append(present, Tuple{Value(i), Value(i)})
	}
	// S covers every x the writer will ever use, so the join count
	// equals |E| at every consistent snapshot.
	for i := 0; i < 4*n; i++ {
		if err := sb.Add(Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Register(eb.Build(), sb.Build()); err != nil {
		t.Fatal(err)
	}

	single, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	join, err := db.Prepare("Q(A,B) :- E(A,B), S(A)", Options{Algorithm: AlgoLeapfrog})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: swap one tuple per batch, atomically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(123))
		next := Value(n)
		for i := 0; !stop.Load(); i++ {
			victim := rng.Intn(len(present))
			batch := NewBatch().
				Delete("E", present[victim]).
				Insert("E", Tuple{next, next})
			us, err := db.Apply(batch)
			if err != nil {
				report(err)
				return
			}
			if us.Inserted != 1 || us.Deleted != 1 {
				report(fmt.Errorf("swap batch was not fully effective: %+v", us))
				return
			}
			present[victim] = Tuple{next, next}
			next++
			if next >= 4*n {
				return // universe exhausted; readers keep checking
			}
		}
	}()

	ctx := context.Background()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300 && !stop.Load(); i++ {
				var got int
				var err error
				switch i % 3 {
				case 0:
					got, _, err = single.CountFast(ctx)
				case 1:
					got, _, err = join.CountFast(ctx)
				default:
					var out *Relation
					out, _, err = single.Execute(ctx)
					if err == nil {
						got = out.Len()
					}
				}
				if err != nil {
					report(err)
					return
				}
				if got != n {
					report(fmt.Errorf("reader %d saw a torn snapshot: count %d, want %d", r, got, n))
					stop.Store(true)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	stop.Store(true)
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestCompaction(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(30, 150, 3)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pq, err := db.Prepare("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pq.CountFast(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Build up a delta, then fold it synchronously.
	var novel []Tuple
	for i := 0; i < 50; i++ {
		novel = append(novel, Tuple{Value(1000 + i), Value(2000 + i)})
	}
	if _, err := db.Insert("E", novel...); err != nil {
		t.Fatal(err)
	}
	wantAfter, _, err := pq.CountFast(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wantAfter != want {
		t.Fatalf("isolated edges changed the triangle count: %d -> %d", want, wantAfter)
	}
	if st := db.Stats(); st.DeltaTuples != 50 {
		t.Fatalf("delta depth %d, want 50", st.DeltaTuples)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.DeltaTuples != 0 || st.Compactions == 0 {
		t.Fatalf("after Compact: %+v", st)
	}
	// Results and plans are unchanged by compaction (same epoch, same
	// effective set — the prepared query does not even refresh).
	got, _, err := pq.CountFast(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("compaction changed the count: %d -> %d", want, got)
	}
	if err := db.Compact("E"); err != nil {
		t.Fatal(err) // empty delta: no-op
	}
	if err := db.Compact("missing"); err == nil {
		t.Fatal("compacting an unknown relation must fail")
	}
}

func TestBackgroundCompaction(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(50, 400, 17)); err != nil {
		t.Fatal(err)
	}
	// Ratio 0 compacts after every effective batch (against the
	// minimum base floor the threshold is ratio*minBase = 0).
	db.SetCompactionThreshold(0)
	if _, err := db.Insert("E", Tuple{900, 901}, Tuple{901, 902}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := db.Stats()
		if st.Compactions > 0 && st.DeltaTuples == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction did not run: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if r, _ := db.Relation("E"); !r.Contains(Tuple{900, 901}) {
		t.Fatal("compaction lost an inserted tuple")
	}
}

// TestConcurrentUpdateExecuteRace interleaves inserts, deletes,
// compactions and every prepared execution mode from many goroutines;
// correctness of counts is covered elsewhere — this is the -race probe
// for the snapshot machinery itself.
func TestConcurrentUpdateExecuteRace(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(40, 300, 21)); err != nil {
		t.Fatal(err)
	}
	db.SetCompactionThreshold(0.01)
	pq, err := db.Prepare("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	pqCount, err := db.Prepare("Q(A,B) :- E(A,B)", Options{Algorithm: AlgoLeapfrog})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				tu := Tuple{Value(rng.Intn(60)), Value(rng.Intn(60))}
				var err error
				if rng.Intn(2) == 0 {
					_, err = db.Insert("E", tu)
				} else {
					_, err = db.Delete("E", tu)
				}
				if err != nil {
					report(err)
					return
				}
			}
		}(int64(w) + 50)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var err error
				switch i % 4 {
				case 0:
					_, _, err = pq.Execute(ctx)
				case 1:
					_, _, err = pq.CountFast(ctx)
				case 2:
					_, _, err = pqCount.Exists(ctx)
				default:
					_, _, err = pqCount.Count(ctx)
				}
				if err != nil {
					report(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Final state still agrees with a from-scratch rebuild.
	assertUpdatedMatchesFresh(t, db, []string{"Q(A,B,C) :- E(A,B), E(B,C), E(A,C)"})
}

// TestBatchEmptySideNoDoubleApply: registering a relation with an
// empty tuple list (ApplyDeltaCSV always queues both sides) must not
// enter it in the batch order twice — that applied the ops twice and
// double-counted every stat.
func TestBatchEmptySideNoDoubleApply(t *testing.T) {
	db := NewDB()
	if err := db.Register(NewRelation("E", []string{"x", "y"}, []Tuple{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	us, err := db.Apply(NewBatch().
		Delete("E"). // empty side first, the ApplyDeltaCSV shape
		Insert("E", Tuple{3, 4}, Tuple{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if us.Inserted != 1 || us.InsertNoops != 1 || us.Deleted != 0 {
		t.Fatalf("empty-side batch double-applied: %+v", us)
	}
	if st := db.Stats(); st.Inserted != 1 || st.InsertNoops != 1 {
		t.Fatalf("lifetime counters double-applied: %+v", st)
	}
	// The delta-file path that triggers this shape end to end.
	us, err = db.ApplyDeltaCSV(strings.NewReader("+,5,6\n+,3,4\n"), "E", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if us.Inserted != 1 || us.InsertNoops != 1 {
		t.Fatalf("insert-only delta file double-applied: %+v", us)
	}
}
