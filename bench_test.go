package wcoj

// Benchmark harness: one benchmark per experiment row of DESIGN.md §2
// (E1–E9), plus the ablations DESIGN.md §3 calls out. The same
// workloads are runnable with human-readable tables via
// `go run ./cmd/experiments`; recorded results live in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"wcoj/internal/baseline"
	"wcoj/internal/bounds"
	"wcoj/internal/constraints"
	"wcoj/internal/core"
	"wcoj/internal/dataset"
	"wcoj/internal/entropy"
	"wcoj/internal/hypergraph"
	"wcoj/internal/lftj"
	"wcoj/internal/panda"
	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

func benchTriangleQuery(b *testing.B, tri dataset.Triangle) *core.Query {
	b.Helper()
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkTable1Bounds (E1): polymatroid-bound computation per
// constraint class of Table 1.
func BenchmarkTable1Bounds(b *testing.B) {
	tri := dataset.TriangleAGMTight(10000)
	q := benchTriangleQuery(b, tri)
	cardDC := constraints.Set{
		constraints.Cardinality("R", []string{"A", "B"}, 1e4),
		constraints.Cardinality("S", []string{"B", "C"}, 1e4),
		constraints.Cardinality("T", []string{"A", "C"}, 1e4),
	}
	fdDC := append(cardDC.Clone(), constraints.FD("R", []string{"A"}, []string{"B"}))
	genDC := append(cardDC.Clone(),
		constraints.Degree("R", []string{"A"}, []string{"A", "B"}, 100),
		constraints.Degree("S", []string{"B"}, []string{"B", "C"}, 100))
	for _, c := range []struct {
		name string
		dc   constraints.Set
	}{
		{"cardinality", cardDC}, {"cardinality+fd", fdDC}, {"general-dc", genDC},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bounds.Polymatroid(q.Vars, c.dc)
				if err != nil {
					b.Fatal(err)
				}
				if res.Infinite() {
					b.Fatal("unexpected infinite bound")
				}
			}
		})
	}
}

// BenchmarkTable2PANDA (E2): the Example 1 proof-sequence execution of
// Table 2 across scales.
func BenchmarkTable2PANDA(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		d := dataset.NewExample1(n, 4, 4, 0.4, 7)
		st := panda.Example1Stats{
			NAB: float64(d.R.Len()), NBC: float64(d.S.Len()), NCD: float64(d.T.Len()),
			NACDgAC: 4, NABDgBD: 4,
		}
		ps := panda.Example1Sequence(st)
		affil := panda.Affiliation{
			{S: 0b0011}:            d.R,
			{S: 0b0110}:            d.S,
			{S: 0b1100}:            d.T,
			{S: 0b1101, G: 0b0101}: d.W,
			{S: 0b1011, G: 0b1010}: d.V,
		}
		filters := []*relation.Relation{d.R, d.S, d.T, d.W, d.V}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, est, err := panda.Execute(ps, panda.Example1Vars, affil, filters)
				if err != nil {
					b.Fatal(err)
				}
				if float64(est.Intermediate) > st.RuntimeBound()+1 {
					b.Fatalf("intermediate %d exceeds bound %v", est.Intermediate, st.RuntimeBound())
				}
				_ = out
			}
		})
	}
}

// BenchmarkTriangle (E3): WCOJ vs binary join plans on AGM-tight and
// skewed triangle instances. The series shape is the paper's headline:
// Θ(N^{3/2}) vs Θ(N²).
func BenchmarkTriangle(b *testing.B) {
	for _, kind := range []string{"agm", "skew"} {
		for _, n := range []int{1000, 4000, 16000} {
			var tri dataset.Triangle
			if kind == "agm" {
				tri = dataset.TriangleAGMTight(n)
			} else {
				tri = dataset.TriangleSkew(n)
			}
			q := benchTriangleQuery(b, tri)
			b.Run(fmt.Sprintf("%s/n=%d/generic", kind, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{Order: []string{"A", "B", "C"}}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/n=%d/lftj", kind, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := lftj.Count(q, lftj.Options{Order: []string{"A", "B", "C"}}); err != nil {
						b.Fatal(err)
					}
				}
			})
			if kind == "skew" && n > 4000 {
				continue // binary plan is quadratic; keep the suite fast
			}
			b.Run(fmt.Sprintf("%s/n=%d/binary", kind, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := baseline.JoinOnly(q, nil, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTriangleHeavyLight (E4): Algorithm 2 vs Algorithm 1.
func BenchmarkTriangleHeavyLight(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		tri := dataset.TriangleSkew(n)
		b.Run(fmt.Sprintf("n=%d/alg2", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.TriangleHeavyLight(tri.R, tri.S, tri.T); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/alg1", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.TriangleGenericJoin(tri.R, tri.S, tri.T); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoomisWhitney (E5): WCOJ vs join-project on LW(k).
func BenchmarkLoomisWhitney(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		n := 4000
		if k >= 4 {
			n = 1000
		}
		rels := dataset.LoomisWhitney(k, n)
		var vars []string
		for j := 0; j < k; j++ {
			vars = append(vars, fmt.Sprintf("A%d", j))
		}
		var atoms []core.Atom
		for _, r := range rels {
			atoms = append(atoms, core.Atom{Name: r.Name(), Vars: r.Attrs(), Rel: r})
		}
		q, err := core.NewQuery(vars, atoms)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d/wcoj", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/joinproject", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.JoinProject(q, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithm3 (E6): backtracking search under acyclic degree
// constraints; the work tracks ∏ N^δ from LP (57).
func BenchmarkAlgorithm3(b *testing.B) {
	for _, deg := range []int{2, 4, 8} {
		c := dataset.NewChain63(400/(deg*deg), deg, deg, deg, 3)
		q, err := core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
			{Name: "R", Vars: []string{"A"}, Rel: c.R},
			{Name: "S", Vars: []string{"A", "B"}, Rel: c.S},
			{Name: "T", Vars: []string{"B", "C"}, Rel: c.T},
			{Name: "W", Vars: []string{"C", "A", "D"}, Rel: c.W},
		})
		if err != nil {
			b.Fatal(err)
		}
		dc := constraints.Set{
			constraints.Cardinality("R", []string{"A"}, float64(c.NA)),
			constraints.Degree("S", []string{"A"}, []string{"A", "B"}, float64(c.NBgA)),
			constraints.Degree("T", []string{"B"}, []string{"B", "C"}, float64(c.NCgB)),
			constraints.Degree("W", []string{"C"}, []string{"C", "A", "D"}, float64(c.NADgC)),
		}
		acyclic, err := dc.MakeAcyclic(q.Vars)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("deg=%d", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.BacktrackingCount(q, acyclic, core.BacktrackOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoundsLP (E7): modular vs polymatroid LP across widths —
// the poly-size vs 2^n-size contrast of Proposition 4.4 / Open
// Problem 2.
func BenchmarkBoundsLP(b *testing.B) {
	for _, nv := range []int{3, 5, 7} {
		vars := make([]string, nv)
		for i := range vars {
			vars[i] = fmt.Sprintf("X%d", i)
		}
		dc := constraints.Set{constraints.Cardinality("R0", vars[:1], 1000)}
		for i := 1; i < nv; i++ {
			dc = append(dc, constraints.Degree(fmt.Sprintf("R%d", i),
				[]string{vars[i-1]}, []string{vars[i-1], vars[i]}, 16))
		}
		b.Run(fmt.Sprintf("n=%d/modular", nv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bounds.Modular(vars, dc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/polymatroid", nv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bounds.Polymatroid(vars, dc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAcyclicRepair (E8): Proposition 5.2 repair of query (63).
func BenchmarkAcyclicRepair(b *testing.B) {
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A"}, 100),
		constraints.Degree("S", []string{"A"}, []string{"A", "B"}, 10),
		constraints.Degree("T", []string{"B"}, []string{"B", "C"}, 10),
		constraints.Degree("W", []string{"C"}, []string{"C", "A", "D"}, 10),
	}
	vars := []string{"A", "B", "C", "D"}
	for i := 0; i < b.N; i++ {
		out, err := dc.MakeAcyclic(vars)
		if err != nil {
			b.Fatal(err)
		}
		if !out.IsAcyclic() {
			b.Fatal("repair failed")
		}
	}
}

// BenchmarkShearer (E9): LP verification of Shearer's inequality
// (Corollary 5.5) on the triangle and C4.
func BenchmarkShearer(b *testing.B) {
	cases := []struct {
		name  string
		h     *hypergraph.Hypergraph
		delta []float64
	}{
		{"triangle", hypergraph.LoomisWhitney(3), []float64{.5, .5, .5}},
		{"C4", hypergraph.Cycle(4), []float64{.5, .5, .5, .5}},
	}
	for _, c := range cases {
		masks := make([]uint32, c.h.NumEdges())
		for e, edge := range c.h.Edges() {
			m, err := entropy.MaskOf(edge.Vertices, c.h.Vertices())
			if err != nil {
				b.Fatal(err)
			}
			masks[e] = m
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := entropy.VerifyShearer(c.h.NumVertices(), masks, c.delta, 1e-6)
				if err != nil || !ok {
					b.Fatalf("shearer: %v %v", ok, err)
				}
			}
		})
	}
}

// BenchmarkIntersect: ablation of the galloping vs merging sorted-set
// intersection (the Õ(min) assumption of Section 2).
func BenchmarkIntersect(b *testing.B) {
	big := make([]relation.Value, 1<<16)
	for i := range big {
		big[i] = relation.Value(2 * i)
	}
	small := make([]relation.Value, 1<<6)
	for i := range small {
		small[i] = relation.Value(1024 * i)
	}
	b.Run("gallop-unbalanced", func(b *testing.B) {
		var dst []relation.Value
		for i := 0; i < b.N; i++ {
			dst = relation.IntersectSorted(dst[:0], small, big)
		}
	})
	balanced := make([]relation.Value, 1<<16)
	for i := range balanced {
		balanced[i] = relation.Value(2*i + 1)
	}
	b.Run("merge-balanced", func(b *testing.B) {
		var dst []relation.Value
		for i := 0; i < b.N; i++ {
			dst = relation.IntersectSorted(dst[:0], balanced, big)
		}
	})
	// Leapfrog multiway intersection on three lists.
	third := make([]relation.Value, 1<<12)
	for i := range third {
		third[i] = relation.Value(16 * i)
	}
	b.Run("leapfrog-3way", func(b *testing.B) {
		ranges := []trie.LevelRange{
			{Keys: big, Lo: 0, Hi: len(big)},
			{Keys: third, Lo: 0, Hi: len(third)},
			{Keys: small, Lo: 0, Hi: len(small)},
		}
		var dst []relation.Value
		for i := 0; i < b.N; i++ {
			dst = trie.IntersectLevels(dst[:0], ranges)
		}
	})
	// Heavy skew: 64 keys against 100k — the regime where the binary
	// kernel gallops the small side through the large one instead of
	// merging (see gallopRatio in internal/trie).
	huge := make([]relation.Value, 100_000)
	for i := range huge {
		huge[i] = relation.Value(3 * i)
	}
	tiny := make([]relation.Value, 64)
	for i := range tiny {
		tiny[i] = relation.Value(4500 * i)
	}
	b.Run("gallop-skewed", func(b *testing.B) {
		ranges := []trie.LevelRange{
			{Keys: tiny, Lo: 0, Hi: len(tiny)},
			{Keys: huge, Lo: 0, Hi: len(huge)},
		}
		var dst []relation.Value
		for i := 0; i < b.N; i++ {
			dst = trie.IntersectLevels(dst[:0], ranges)
		}
	})
}

// BenchmarkVariableOrder: ablation of variable-ordering heuristics on
// the 4-cycle query (good orders keep adjacent variables together).
func BenchmarkVariableOrder(b *testing.B) {
	e := dataset.RandomGraph(2000, 8000, 11)
	db := NewDatabase()
	db.Put(e)
	q, err := MustParse("Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D), E(D,A)").Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	for _, ord := range []struct {
		name  string
		order []string
	}{
		{"adjacent", []string{"A", "B", "C", "D"}},
		{"opposite", []string{"A", "C", "B", "D"}},
	} {
		b.Run(ord.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{Order: ord.order}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelEngine: the sharded multi-core executor vs the
// serial search on the triangle, 4-clique and 4-path workloads, for
// both Generic-Join and LFTJ Count (the streaming mode, so the
// measurement is pure search, no materialization). p=1 is the serial
// baseline; on a machine with GOMAXPROCS >= 4 the p=GOMAXPROCS rows
// should show >= 1.5x speedup on the triangle workload. Run with
//
//	go test -bench BenchmarkParallelEngine -benchtime 3x .
func BenchmarkParallelEngine(b *testing.B) {
	workers := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	db := NewDatabase()
	db.Put(dataset.RandomGraph(3000, 40000, 7))
	workloads := []struct {
		name string
		q    *core.Query
	}{
		{"triangle", benchTriangleQuery(b, dataset.TriangleAGMTight(30000))},
		{"clique4", benchParse(b, db, "Q(A,B,C,D) :- E(A,B), E(A,C), E(A,D), E(B,C), E(B,D), E(C,D)")},
		{"path4", benchParse(b, db, "Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)")},
	}
	for _, wl := range workloads {
		// Fix the variable order so every worker count searches the
		// identical tree.
		order := append([]string(nil), wl.q.Vars...)
		serial, _, err := Count(wl.q, Options{Algorithm: AlgoGenericJoin, Order: order, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		for wi, p := range workers {
			if wi > 0 && p <= workers[wi-1] {
				continue // GOMAXPROCS duplicated a fixed entry
			}
			for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
				b.Run(fmt.Sprintf("%s/%v/p=%d", wl.name, algo, p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						n, _, err := Count(wl.q, Options{Algorithm: algo, Order: order, Parallelism: p})
						if err != nil {
							b.Fatal(err)
						}
						if n != serial {
							b.Fatalf("count %d diverges from serial %d", n, serial)
						}
					}
				})
			}
		}
	}
}

// BenchmarkCountPushdown (E12): the aggregate-aware execution mode
// acceptance benchmark. On the AGM-tight triangle (1M results at
// n=40000) it compares enumerate-then-count (Execute + Len — the
// baseline the ISSUE's >=10x acceptance is measured against), the
// streaming Count and CountFast for both engines, plus the free-
// counted factorization workloads (path4, skewed star), EXISTS and
// projection pushdown. CI captures this output in the benchmark
// regression gate.
func BenchmarkCountPushdown(b *testing.B) {
	tri := dataset.TriangleAGMTight(40000)
	triQ := benchTriangleQuery(b, tri)
	db := NewDatabase()
	db.Put(dataset.RandomGraph(3000, 40000, 7))
	pathQ := benchParse(b, db, "Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)")
	star := dataset.SkewedStar(10000, 10, 500)
	starQ, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: star.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: star.S},
	})
	if err != nil {
		b.Fatal(err)
	}
	workloads := []struct {
		name string
		q    *core.Query
	}{{"triangle", triQ}, {"path4", pathQ}, {"star", starQ}}
	for _, wl := range workloads {
		want, _, err := Count(wl.q, Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(wl.name+"/enumerate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, _, err := Execute(wl.q, Options{Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != want {
					b.Fatalf("enumerated %d, want %d", out.Len(), want)
				}
			}
		})
		b.Run(wl.name+"/count-stream", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, _, err := Count(wl.q, Options{Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				if n != want {
					b.Fatalf("counted %d, want %d", n, want)
				}
			}
		})
		for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
			b.Run(fmt.Sprintf("%s/countfast/%v", wl.name, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					n, _, err := CountFast(wl.q, Options{Algorithm: algo, Parallelism: 1})
					if err != nil {
						b.Fatal(err)
					}
					if n != want {
						b.Fatalf("counted %d, want %d", n, want)
					}
				}
			})
		}
	}
	b.Run("triangle/exists", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			found, _, err := Exists(triQ, Options{Parallelism: 1})
			if err != nil || !found {
				b.Fatalf("exists = %v, %v", found, err)
			}
		}
	})
	b.Run("star/project-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, _, err := Count(starQ, Options{Parallelism: 1, Project: []string{"A"}})
			if err != nil {
				b.Fatal(err)
			}
			if n != 10000 {
				b.Fatalf("distinct A = %d, want 10000", n)
			}
		}
	})
}

func benchParse(b *testing.B, db *Database, src string) *core.Query {
	b.Helper()
	q, err := MustParse(src).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkConcurrentDB (E13): the long-lived engine acceptance
// benchmark. N goroutines hammer one DB with prepared queries
// (b.RunParallel); the replan rows re-derive the cost-based plan on
// every call — measured degree statistics plus the per-prefix LP
// solves — which is what one-shot Execute does today. The prepared
// rows must beat replan by >= 2x on the triangle and star workloads
// (the plan is computed once, the executions share the DB's tries).
// CI captures this output in the benchmark regression gate.
func BenchmarkConcurrentDB(b *testing.B) {
	ctx := context.Background()
	star := dataset.SkewedStar(1000, 4, 200)
	tri, err := dataset.TriangleFromGraph(dataset.RandomGraph(600, 3000, 7))
	if err != nil {
		b.Fatal(err)
	}
	workloads := []struct {
		name string
		src  string
		rels []*Relation
	}{
		{"triangle", "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", []*Relation{tri.R, tri.S, tri.T}},
		{"star", "Q(A,B,C) :- R(A,B), S(B,C)", []*Relation{star.R, star.S}},
	}
	opts := Options{Planner: PlannerCostBased, Parallelism: 1}
	for _, wl := range workloads {
		db := NewDB()
		if err := db.Register(wl.rels...); err != nil {
			b.Fatal(err)
		}
		pq, err := db.Prepare(wl.src, opts)
		if err != nil {
			b.Fatal(err)
		}
		want, _, err := pq.Count(ctx)
		if err != nil {
			b.Fatal(err)
		}
		q := pq.Query()
		// b.Fatal must not run on RunParallel worker goroutines; report
		// with b.Error and bail out of the worker instead.
		b.Run(wl.name+"/prepared", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n, _, err := pq.Count(ctx)
					if err != nil || n != want {
						b.Errorf("count %d, err %v, want %d", n, err, want)
						return
					}
				}
			})
		})
		b.Run(wl.name+"/replan", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n, _, err := Count(q, opts)
					if err != nil || n != want {
						b.Errorf("count %d, err %v, want %d", n, err, want)
						return
					}
				}
			})
		})
	}
}

// BenchmarkTrieCacheParallel: the striped trie-store hit path. Every
// iteration builds a plan whose three tries are cache hits; the
// parallel row runs one builder per core against the same keys. Under
// the old single-mutex cache the parallel row could not beat serial
// (every hit took the one lock and moved an LRU list node); the
// striped store serves hits under a shard read lock plus an atomic
// stamp, so parallel plan construction scales.
func BenchmarkTrieCacheParallel(b *testing.B) {
	tri := dataset.TriangleAGMTight(10000)
	q := benchTriangleQuery(b, tri)
	order := []string{"A", "B", "C"}
	if _, err := core.BuildPlan(q, order); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildPlan(q, order); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := core.BuildPlan(q, order); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkAGMBoundComputation: the AGM LP itself (used by optimizers
// per the paper's Section 1 discussion of estimation).
func BenchmarkAGMBoundComputation(b *testing.B) {
	for _, k := range []int{3, 5, 7} {
		h := hypergraph.Clique(k)
		sizes := make([]float64, h.NumEdges())
		for i := range sizes {
			sizes[i] = 1e6
		}
		b.Run(fmt.Sprintf("clique-k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bounds.AGM(h, sizes)
				if err != nil {
					b.Fatal(err)
				}
				if math.IsNaN(res.Bound) {
					b.Fatal("NaN bound")
				}
			}
		})
	}
}

// BenchmarkPlanner (E11): the planner acceptance benchmark. On the
// skewed star fixture (one hub vertex with 10k spokes) it times
// end-to-end Count under the cost-based planner's chosen order, the
// degree-order heuristic and the worst enumerated order — the chosen
// order must beat the worst by well over the 5x acceptance margin —
// plus the cost of planning itself (degree measurement and the
// per-prefix modular LPs). CI captures this benchmark's output as
// BENCH_planner.json.
func BenchmarkPlanner(b *testing.B) {
	star := dataset.SkewedStar(10000, 10, 500)
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: star.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: star.S},
	})
	if err != nil {
		b.Fatal(err)
	}
	exp, err := Explain(q, Options{Planner: PlannerCostBased})
	if err != nil {
		b.Fatal(err)
	}
	if exp.Worst == nil {
		b.Fatal("no worst candidate enumerated")
	}
	b.Logf("chosen %v cost=%.3g; worst %v cost=%.3g", exp.Order, exp.Cost, exp.Worst.Order, exp.Worst.Cost)

	b.Run("plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Explain(q, Options{Planner: PlannerCostBased}); err != nil {
				b.Fatal(err)
			}
		}
	})
	countWith := func(name string, order []string) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, _, err := Count(q, Options{Order: order, Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				if n != star.R.Len()*10 {
					b.Fatalf("count %d, want %d", n, star.R.Len()*10)
				}
			}
		})
	}
	countWith("chosen-order", exp.Order)
	b.Run("heuristic-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Count(q, Options{Planner: PlannerHeuristic, Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	countWith("worst-order", exp.Worst.Order)
}

// BenchmarkIncrementalUpdate: the mutable-relation acceptance probe —
// a 1k-tuple delta applied to a 100k-edge relation and made visible
// to a held prepared triangle query. The incremental row pays
// delta.Apply (O(batch·log batch), off the read path) plus one linear
// (base ⊎ delta) trie merge per touched binding at the next
// execution; the reregister row pays what the immutable engine
// charged for any change before this layer existed — rebuilding the
// 100k-tuple relation through a Builder, re-registering it (dropping
// every cached plan), re-planning, and re-sorting every per-binding
// trie from scratch. Both rows end with the same visibility check
// (triangle Exists + exact count), so the gap is pure update-path
// cost. Expect the incremental row ≥10x faster.
func BenchmarkIncrementalUpdate(b *testing.B) {
	ctx := context.Background()
	const deltaSize = 1000
	graph := dataset.RandomGraph(20000, 100000, 31)
	src := "Q(A,B,C) :- E(A,B), E(B,C), E(C,A)"
	countSrc := "Q(A,B) :- E(A,B)"
	opts := Options{Planner: PlannerCostBased}
	// The delta: 1k edges on nodes outside the graph's id range, so
	// insert/delete round-trips oscillate between exactly two states.
	novel := make([]Tuple, deltaSize)
	for i := range novel {
		novel[i] = Tuple{Value(100000 + i), Value(200000 + i)}
	}
	wantBase := graph.Len()

	b.Run("incremental", func(b *testing.B) {
		db := NewDB()
		if err := db.Register(graph); err != nil {
			b.Fatal(err)
		}
		pq, err := db.Prepare(src, opts)
		if err != nil {
			b.Fatal(err)
		}
		count, err := db.Prepare(countSrc, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := pq.Exists(ctx); err != nil { // warm plans and tries
			b.Fatal(err)
		}
		insert := NewBatch().Insert("E", novel...)
		remove := NewBatch().Delete("E", novel...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch, want := insert, wantBase+deltaSize
			if i%2 == 1 {
				batch, want = remove, wantBase
			}
			if _, err := db.Apply(batch); err != nil {
				b.Fatal(err)
			}
			if ok, _, err := pq.Exists(ctx); err != nil || !ok {
				b.Fatalf("exists %v err %v", ok, err)
			}
			if n, _, err := count.CountFast(ctx); err != nil || n != want {
				b.Fatalf("count %d err %v, want %d", n, err, want)
			}
		}
	})

	b.Run("reregister", func(b *testing.B) {
		db := NewDB()
		if err := db.Register(graph); err != nil {
			b.Fatal(err)
		}
		if _, _, err := db.Query(ctx, src, opts); err != nil {
			b.Fatal(err)
		}
		baseTuples := graph.Tuples()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eb := NewRelationBuilder("E", "src", "dst")
			for _, t := range baseTuples {
				if err := eb.Add(t...); err != nil {
					b.Fatal(err)
				}
			}
			want := wantBase
			if i%2 == 0 {
				want += deltaSize
				for _, t := range novel {
					if err := eb.Add(t...); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := db.Register(eb.Build()); err != nil {
				b.Fatal(err)
			}
			epq, err := db.Prepare(src, opts)
			if err != nil {
				b.Fatal(err)
			}
			if ok, _, err := epq.Exists(ctx); err != nil || !ok {
				b.Fatalf("exists %v err %v", ok, err)
			}
			cpq, err := db.Prepare(countSrc, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if n, _, err := cpq.CountFast(ctx); err != nil || n != want {
				b.Fatalf("count %d err %v, want %d", n, err, want)
			}
		}
	})
}

// BenchmarkMaintainedCount: the incremental-view-maintenance
// acceptance probe — the 100k-edge / 1k-delta oscillating workload of
// BenchmarkIncrementalUpdate, asking for a standing triangle count.
// The maintained row pays Apply plus the differential terms (each
// occurrence's delta-first join of the 1k delta against snapshot
// tries) and then reads the answer with one atomic load; the
// recompute row pays Apply plus a from-scratch pushdown Count of the
// triangle query at the new snapshot. The differential work scales
// with the delta and the degrees around it, the recompute with the
// whole join — expect the maintained row ≥5x faster.
func BenchmarkMaintainedCount(b *testing.B) {
	ctx := context.Background()
	const deltaSize = 1000
	graph := dataset.RandomGraph(20000, 100000, 31)
	src := "Q(A,B,C) :- E(A,B), E(B,C), E(C,A)"
	// The delta: 1k edges on nodes outside the graph's id range (they
	// close no triangles), so insert/delete round-trips oscillate
	// between exactly two states with a known standing count.
	novel := make([]Tuple, deltaSize)
	for i := range novel {
		novel[i] = Tuple{Value(100000 + i), Value(200000 + i)}
	}

	b.Run("maintained", func(b *testing.B) {
		db := NewDB()
		if err := db.Register(graph); err != nil {
			b.Fatal(err)
		}
		mq, err := db.Materialize(src, MaterializeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		want := mq.Count()
		insert := NewBatch().Insert("E", novel...)
		remove := NewBatch().Delete("E", novel...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := insert
			if i%2 == 1 {
				batch = remove
			}
			if _, err := db.Apply(batch); err != nil {
				b.Fatal(err)
			}
			if res := mq.Result(); res.Err != nil || res.Count != want {
				b.Fatalf("maintained count %d err %v, want %d", res.Count, res.Err, want)
			}
		}
	})

	b.Run("recompute", func(b *testing.B) {
		db := NewDB()
		if err := db.Register(graph); err != nil {
			b.Fatal(err)
		}
		pq, err := db.Prepare(src, Options{})
		if err != nil {
			b.Fatal(err)
		}
		want, _, err := pq.Count(ctx)
		if err != nil {
			b.Fatal(err)
		}
		insert := NewBatch().Insert("E", novel...)
		remove := NewBatch().Delete("E", novel...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := insert
			if i%2 == 1 {
				batch = remove
			}
			if _, err := db.Apply(batch); err != nil {
				b.Fatal(err)
			}
			if n, _, err := pq.Count(ctx); err != nil || n != want {
				b.Fatalf("count %d err %v, want %d", n, err, want)
			}
		}
	})
}
