// Package wcoj is a library of worst-case optimal join (WCOJ)
// algorithms and output-size bounds, implementing Hung Q. Ngo's PODS
// 2018 survey "Worst-Case Optimal Join Algorithms: Techniques, Results,
// and Open Problems".
//
// The package evaluates full conjunctive queries with runtime matching
// the worst-case output size: Generic-Join and Leapfrog Triejoin meet
// the AGM bound N^{ρ*}, the heavy/light triangle algorithm realizes
// the entropy-proof bound, backtracking search is worst-case optimal
// under acyclic degree constraints (Theorem 5.1), and the PANDA
// executor interprets Shannon-flow proof sequences as relational
// programs. Classical binary join plans are included as baselines.
//
// Quick start:
//
//	db := wcoj.NewDatabase()
//	b := wcoj.NewRelationBuilder("E", "src", "dst")
//	b.Add(1, 2) ... ; db.Put(b.Build())
//	q, _ := wcoj.MustParse("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)").Bind(db)
//	out, stats, _ := wcoj.Execute(q, wcoj.Options{Algorithm: wcoj.AlgoGenericJoin})
//
// The variable order the WCOJ algorithms run under is resolved by a
// planner (Options.Planner): the degree-order heuristic, an explicit
// Options.Order, or the cost-based optimizer, which enumerates
// candidate orders and scores them with the paper's own bound LPs
// over degree statistics measured from the data. Explain returns the
// full planning record without running the join.
//
// For a long-lived serving process, DB owns registered relations
// (builders or CSV/TSV ingestion), their tries, and a plan cache;
// Prepare compiles a query once into a PreparedQuery that any number
// of goroutines re-execute with per-call Stats and context
// cancellation. See the "Serving queries from a long-lived DB"
// walkthrough in README.md.
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the full system inventory.
package wcoj

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"wcoj/internal/agg"
	"wcoj/internal/baseline"
	"wcoj/internal/bounds"
	"wcoj/internal/constraints"
	"wcoj/internal/core"
	"wcoj/internal/hypergraph"
	"wcoj/internal/lftj"
	"wcoj/internal/planner"
	"wcoj/internal/query"
	"wcoj/internal/relation"
)

// Re-exported data types. These aliases form the public surface of the
// library; the internal packages carry the implementations.
type (
	// Value is a dictionary-encoded attribute value.
	Value = relation.Value
	// Tuple is a row of values.
	Tuple = relation.Tuple
	// Relation is an immutable sorted set of tuples over a schema.
	Relation = relation.Relation
	// RelationBuilder accumulates tuples into a Relation.
	RelationBuilder = relation.Builder
	// Database is a named collection of relations.
	Database = relation.Database
	// Dict interns strings as Values.
	Dict = relation.Dict

	// Query is a full conjunctive query with bound relations.
	Query = core.Query
	// Atom is one query body atom.
	Atom = core.Atom
	// Stats carries execution counters.
	Stats = core.Stats

	// Constraint is a degree constraint (X, Y, N_{Y|X}).
	Constraint = constraints.Constraint
	// ConstraintSet is a set of degree constraints (the paper's DC).
	ConstraintSet = constraints.Set

	// ParsedQuery is a parsed but unbound conjunctive query.
	ParsedQuery = query.Parsed

	// Hypergraph is a query hypergraph.
	Hypergraph = hypergraph.Hypergraph

	// AGMResult reports an AGM bound computation.
	AGMResult = bounds.AGMResult
	// LPBound reports a polymatroid or modular bound computation.
	LPBound = bounds.LPBound

	// PlanExplanation is the structured EXPLAIN output of Explain: the
	// chosen variable order, its per-level bounds, the candidates the
	// planner considered and the worst order it rejected.
	PlanExplanation = planner.Explanation
	// PlanCandidate is one scored variable order in a PlanExplanation.
	PlanCandidate = planner.Candidate

	// LevelClass classifies one plan level for the aggregate-aware
	// engines (see PlanExplanation.Classes): ClassBound levels are
	// searched but not emitted, ClassFreeOutput levels are enumerated
	// into the output, ClassFreeCounted levels are multiplied through
	// without recursion.
	LevelClass = agg.Class
)

// Level classes reported by Explain's count plan and projection plans.
const (
	ClassBound       = agg.Bound
	ClassFreeOutput  = agg.FreeOutput
	ClassFreeCounted = agg.FreeCounted
)

// Constructors re-exported from the storage layer.
var (
	// NewDatabase returns an empty database.
	NewDatabase = relation.NewDatabase
	// NewRelationBuilder returns a builder for a relation schema.
	NewRelationBuilder = relation.NewBuilder
	// NewRelation builds a relation from tuples (panics on arity
	// mismatch; use a builder for error returns).
	NewRelation = relation.New
	// NewQuery builds and validates a query.
	NewQuery = core.NewQuery

	// Cardinality, FD and Degree build degree constraints.
	Cardinality = constraints.Cardinality
	FD          = constraints.FD
	Degree      = constraints.Degree

	// WithNodeBudget attaches a search-node budget to a query context:
	// every engine entry point taking the context (across all its
	// parallel shards) draws from the one allowance and fails with
	// ErrNodeBudget when it runs out. Admission control for shared
	// deployments — a runaway query is cut off by work done, not just
	// wall clock.
	WithNodeBudget = core.WithNodeBudget

	// ErrNodeBudget reports that a query exceeded the node budget
	// attached to its context; its partial results were discarded.
	ErrNodeBudget = core.ErrNodeBudget
)

// Parse parses a datalog-style conjunctive query such as
// "Q(A,B,C) :- R(A,B), S(B,C), T(A,C).".
func Parse(src string) (*ParsedQuery, error) { return query.Parse(src) }

// MustParse is Parse panicking on error; for tests and examples.
func MustParse(src string) *ParsedQuery {
	p, err := query.Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Algorithm selects a join algorithm for Execute.
type Algorithm int

// Available algorithms.
const (
	// AlgoGenericJoin is Generic-Join [52] (default): recursive
	// multiway intersection, Õ(N^{ρ*}).
	AlgoGenericJoin Algorithm = iota
	// AlgoLeapfrog is Leapfrog Triejoin [66]: iterator-based, Õ(N^{ρ*}).
	AlgoLeapfrog
	// AlgoBacktracking is Algorithm 3: worst-case optimal under
	// acyclic degree constraints (supply Options.Constraints).
	AlgoBacktracking
	// AlgoBinaryJoin is the one-pair-at-a-time baseline (left-deep
	// hash joins, greedy order).
	AlgoBinaryJoin
	// AlgoBinaryJoinProject is the join-project baseline.
	AlgoBinaryJoinProject
)

func (a Algorithm) String() string {
	switch a {
	case AlgoGenericJoin:
		return "generic-join"
	case AlgoLeapfrog:
		return "leapfrog-triejoin"
	case AlgoBacktracking:
		return "backtracking"
	case AlgoBinaryJoin:
		return "binary-join"
	case AlgoBinaryJoinProject:
		return "binary-join-project"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves an algorithm name as printed by String.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog, AlgoBacktracking, AlgoBinaryJoin, AlgoBinaryJoinProject} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("wcoj: unknown algorithm %q", name)
}

// Planner selects how Execute, ExecuteFunc, Count and Explain resolve
// the variable order of the WCOJ algorithms (AlgoGenericJoin and
// AlgoLeapfrog).
type Planner int

// Available planner policies.
const (
	// PlannerAuto (default): Options.Order when set, otherwise the
	// degree-order heuristic.
	PlannerAuto Planner = iota
	// PlannerHeuristic always uses the degree-order heuristic;
	// Options.Order must be nil.
	PlannerHeuristic
	// PlannerCostBased runs the cost-based optimizer: candidate orders
	// are enumerated (exhaustively up to 8 variables, beam search
	// beyond) and scored with per-prefix output-size bounds computed
	// from measured degree statistics; Options.Order must be nil.
	PlannerCostBased
	// PlannerExplicit requires Options.Order and uses it verbatim.
	PlannerExplicit
)

func (p Planner) String() string {
	switch p {
	case PlannerAuto:
		return "auto"
	case PlannerHeuristic:
		return "heuristic"
	case PlannerCostBased:
		return "cost-based"
	case PlannerExplicit:
		return "explicit"
	}
	return fmt.Sprintf("Planner(%d)", int(p))
}

// ParsePlanner resolves a planner policy name as printed by String.
func ParsePlanner(name string) (Planner, error) {
	for _, p := range []Planner{PlannerAuto, PlannerHeuristic, PlannerCostBased, PlannerExplicit} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("wcoj: unknown planner %q", name)
}

// Options configure Execute, ExecuteFunc and Count.
type Options struct {
	// Algorithm selects the join algorithm (default AlgoGenericJoin).
	Algorithm Algorithm
	// Order optionally fixes the variable order (WCOJ algorithms).
	Order []string
	// Planner selects how the variable order is resolved for
	// AlgoGenericJoin and AlgoLeapfrog (default PlannerAuto: Order when
	// set, heuristic otherwise). PlannerCostBased scores candidate
	// orders with the bounds subsystem; see Explain for the decision
	// record.
	Planner Planner
	// Constraints supplies degree constraints. Required by
	// AlgoBacktracking (they must be acyclic or repairable); ignored
	// by the others.
	Constraints ConstraintSet
	// Parallelism is the number of worker goroutines used by
	// AlgoGenericJoin and AlgoLeapfrog: the depth-0 intersection is
	// computed once, partitioned into contiguous chunks, and each
	// chunk is searched by a worker with private state over the shared
	// immutable tries. Results are concatenated in chunk order, so
	// output (and the emit sequence of ExecuteFunc) is identical to a
	// serial run at every setting. 0 (the default) means
	// runtime.GOMAXPROCS(0); 1 forces the serial search. The other
	// algorithms run serially regardless.
	Parallelism int
	// Project, when non-nil, projects the result onto these variables:
	// Execute and ExecuteFunc produce the distinct projected tuples
	// (attributes in Project order) and Count counts them. It must be a
	// non-empty, duplicate-free subset of the query variables.
	//
	// For AlgoGenericJoin and AlgoLeapfrog the projection is pushed
	// into the search: projected-away variables are sunk to the end of
	// the resolved variable order (explicit orders included) and their
	// levels are existence-checked per prefix — short-circuiting on the
	// first witness — instead of enumerated, so a prefix with a million
	// extensions costs the same as one with a single extension. The
	// other algorithms materialize the full result and project it.
	Project []string
	// Context, when non-nil, cancels an in-flight run: the free
	// functions (Execute, ExecuteFunc, Count, Exists) hand it to the
	// AlgoGenericJoin and AlgoLeapfrog search workers, which poll it
	// every 256 search nodes and unwind promptly with ctx.Err() — the
	// same machinery the DB/PreparedQuery entry points drive through
	// their explicit ctx parameter (see ExampleOptions_context). The
	// other algorithms have no in-search polling; for them the context
	// is checked once before the run starts. DB.Prepare ignores this
	// field: per-call cancellation of a prepared query comes from the
	// ctx argument of each execution method.
	Context context.Context
	// DisablePushdown makes Count enumerate every result tuple instead
	// of running the aggregate-aware pushdown plan (sunk single-atom
	// variables, free-counted suffix, per-prefix memo — see the Count
	// documentation). The results are identical; the escape hatch
	// exists for debugging and for A/B measurement of the pushdown
	// itself. It does not affect distinct projected counting (Project
	// set), which is inherently aggregate-aware, and is ignored by the
	// non-WCOJ algorithms, which never push aggregates down.
	DisablePushdown bool
}

// workers resolves Options.Parallelism to a concrete worker count.
func (o Options) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// plannerOptions validates the Planner/Order combination and maps it
// to the internal planner's options; it is the single source of truth
// Execute/ExecuteFunc/Count (via orderPolicy) and Explain share.
func (o Options) plannerOptions() (planner.Options, error) {
	switch o.Planner {
	case PlannerAuto:
		if o.Order != nil {
			return planner.Options{Policy: planner.Explicit, Explicit: o.Order}, nil
		}
		return planner.Options{Policy: planner.Heuristic}, nil
	case PlannerHeuristic:
		if o.Order != nil {
			return planner.Options{}, fmt.Errorf("wcoj: PlannerHeuristic conflicts with an explicit Options.Order; use PlannerAuto or PlannerExplicit")
		}
		return planner.Options{Policy: planner.Heuristic}, nil
	case PlannerCostBased:
		if o.Order != nil {
			return planner.Options{}, fmt.Errorf("wcoj: PlannerCostBased conflicts with an explicit Options.Order; drop one of the two")
		}
		return planner.Options{Policy: planner.CostBased}, nil
	case PlannerExplicit:
		if o.Order == nil {
			return planner.Options{}, fmt.Errorf("wcoj: PlannerExplicit requires Options.Order")
		}
		return planner.Options{Policy: planner.Explicit, Explicit: o.Order}, nil
	}
	return planner.Options{}, fmt.Errorf("wcoj: unknown planner %v", o.Planner)
}

// orderPolicy resolves Options.Planner and Options.Order into the
// core.OrderPolicy the WCOJ engines plan with. Heuristic and explicit
// plans skip the planner package entirely (no statistics to measure).
func (o Options) orderPolicy() (core.OrderPolicy, error) { return o.orderPolicyFor(nil) }

// orderPolicyFor is orderPolicy carrying an aggregate spec: the
// cost-based planner then enumerates only orders with the spec's sunk
// suffix. Heuristic and explicit plans need no spec here — the
// engines' AggPlan sinks any resolved order identically (Sink is
// idempotent, so cost-based orders pass through unchanged).
func (o Options) orderPolicyFor(spec *agg.Spec) (core.OrderPolicy, error) {
	popt, err := o.plannerOptions()
	if err != nil {
		return nil, err
	}
	popt.Agg = spec
	switch popt.Policy {
	case planner.Explicit:
		return core.ExplicitOrder(popt.Explicit), nil
	case planner.Heuristic:
		return core.HeuristicOrder(), nil
	default:
		return planner.New(popt), nil
	}
}

// validateProject checks Options.Project against the query: when set
// it must be a non-empty, duplicate-free subset of the query
// variables.
func (o Options) validateProject(q *Query) error {
	if o.Project == nil {
		return nil
	}
	if len(o.Project) == 0 {
		return fmt.Errorf("wcoj: Options.Project must name at least one variable when set")
	}
	qvars := make(map[string]bool, len(q.Vars))
	for _, v := range q.Vars {
		qvars[v] = true
	}
	seen := make(map[string]bool, len(o.Project))
	for _, v := range o.Project {
		if seen[v] {
			return fmt.Errorf("wcoj: Options.Project repeats variable %q", v)
		}
		seen[v] = true
		if !qvars[v] {
			return fmt.Errorf("wcoj: Options.Project names %q, which is not a query variable", v)
		}
	}
	return nil
}

// validatePlanner rejects planner settings the selected algorithm
// cannot honor: only the trie-based WCOJ engines consult the planner.
func (o Options) validatePlanner() error {
	if o.Algorithm == AlgoGenericJoin || o.Algorithm == AlgoLeapfrog {
		return nil
	}
	if o.Planner == PlannerCostBased {
		return fmt.Errorf("wcoj: the cost-based planner applies to AlgoGenericJoin and AlgoLeapfrog only (got %v)", o.Algorithm)
	}
	return nil
}

// Execute evaluates the query with the selected algorithm. With
// Options.Project set it returns the distinct projected tuples; see
// the Project field for how the WCOJ engines push the projection into
// the search.
func Execute(q *Query, opts Options) (*Relation, *Stats, error) {
	if err := opts.validatePlanner(); err != nil {
		return nil, nil, err
	}
	if err := opts.validateProject(q); err != nil {
		return nil, nil, err
	}
	if err := core.CtxErr(opts.Context); err != nil {
		return nil, nil, err
	}
	if opts.Project != nil {
		return executeProjected(q, opts)
	}
	switch opts.Algorithm {
	case AlgoGenericJoin:
		pol, err := opts.orderPolicy()
		if err != nil {
			return nil, nil, err
		}
		return core.GenericJoin(q, core.GenericJoinOptions{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context})
	case AlgoLeapfrog:
		pol, err := opts.orderPolicy()
		if err != nil {
			return nil, nil, err
		}
		return lftj.Join(q, lftj.Options{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context})
	case AlgoBacktracking:
		dc, err := backtrackConstraints(q, opts.Constraints)
		if err != nil {
			return nil, nil, err
		}
		return core.BacktrackingSearch(q, dc, core.BacktrackOptions{Order: opts.Order})
	case AlgoBinaryJoin:
		return baseline.JoinOnly(q, nil, nil)
	case AlgoBinaryJoinProject:
		return baseline.JoinProject(q, nil, nil)
	}
	return nil, nil, fmt.Errorf("wcoj: unknown algorithm %v", opts.Algorithm)
}

// executeProjected materializes Execute's projected mode: pushdown
// through the aggregate-aware WCOJ engines, materialize-then-project
// for the other algorithms.
func executeProjected(q *Query, opts Options) (*Relation, *Stats, error) {
	switch opts.Algorithm {
	case AlgoGenericJoin, AlgoLeapfrog:
		stats := &Stats{}
		out := relation.NewBuilder(q.OutputName(), opts.Project...)
		err := projectVisit(q, opts, stats, func(t Tuple) error { return out.Add(t...) })
		if err != nil {
			return nil, nil, err
		}
		rel := out.Build()
		stats.Output = rel.Len()
		return rel, stats, nil
	default:
		full := opts
		full.Project = nil
		out, stats, err := Execute(q, full)
		if err != nil {
			return nil, nil, err
		}
		proj, err := out.Project(opts.Project...)
		if err != nil {
			return nil, nil, err
		}
		stats.Output = proj.Len()
		return proj, stats, nil
	}
}

// projectVisit streams the projected enumeration of the WCOJ engines.
func projectVisit(q *Query, opts Options, stats *Stats, emit func(Tuple) error) error {
	spec := agg.Spec{Mode: agg.ModeEnumerate, Project: opts.Project}
	pol, err := opts.orderPolicyFor(&spec)
	if err != nil {
		return err
	}
	if opts.Algorithm == AlgoLeapfrog {
		return lftj.ProjectVisit(q, lftj.Options{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, opts.Project, stats, emit)
	}
	return core.GenericJoinProjectVisit(q, core.GenericJoinOptions{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, opts.Project, stats, emit)
}

// ExecuteFunc evaluates the query, streaming each result tuple to emit
// instead of materializing a Relation. Tuples arrive in the canonical
// order Execute would store them in; the Tuple passed to emit is
// reused between calls, so emit must copy it to retain it. A non-nil
// error from emit aborts the run and is returned.
//
// AlgoGenericJoin and AlgoLeapfrog stream directly from the search
// (sharded across Options.Parallelism workers, with per-chunk replay
// preserving the serial emit sequence); AlgoBacktracking streams
// serially. The binary-join baselines have no streaming mode: their
// full output is materialized first and then replayed to emit.
//
// With Options.Project set the distinct projected tuples are streamed
// in the plan's prefix enumeration order — deterministic for fixed
// Options (and identical at every Parallelism), but not necessarily
// the sorted order the materialized Execute relation stores, since the
// planner may enumerate projected variables in a different relative
// order than Project lists them.
func ExecuteFunc(q *Query, opts Options, emit func(Tuple) error) (*Stats, error) {
	if err := opts.validatePlanner(); err != nil {
		return nil, err
	}
	if err := opts.validateProject(q); err != nil {
		return nil, err
	}
	if err := core.CtxErr(opts.Context); err != nil {
		return nil, err
	}
	if opts.Project != nil {
		switch opts.Algorithm {
		case AlgoGenericJoin, AlgoLeapfrog:
			stats := &Stats{}
			n := 0
			err := projectVisit(q, opts, stats, func(t Tuple) error { n++; return emit(t) })
			if err != nil {
				return nil, err
			}
			stats.Output = n
			return stats, nil
		default:
			return replayRelation(q, opts, emit)
		}
	}
	stats := &Stats{}
	switch opts.Algorithm {
	case AlgoGenericJoin:
		pol, err := opts.orderPolicy()
		if err != nil {
			return nil, err
		}
		n := 0
		err = core.GenericJoinVisit(q, core.GenericJoinOptions{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, stats,
			func(t Tuple) error { n++; return emit(t) })
		if err != nil {
			return nil, err
		}
		stats.Output = n
		return stats, nil
	case AlgoLeapfrog:
		pol, err := opts.orderPolicy()
		if err != nil {
			return nil, err
		}
		n := 0
		err = lftj.Visit(q, lftj.Options{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, stats,
			func(t Tuple) error { n++; return emit(t) })
		if err != nil {
			return nil, err
		}
		stats.Output = n
		return stats, nil
	case AlgoBacktracking:
		dc, err := backtrackConstraints(q, opts.Constraints)
		if err != nil {
			return nil, err
		}
		n := 0
		err = core.BacktrackingVisit(q, dc, core.BacktrackOptions{Order: opts.Order}, stats,
			func(t Tuple) error { n++; return emit(t) })
		if err != nil {
			return nil, err
		}
		stats.Output = n
		return stats, nil
	case AlgoBinaryJoin, AlgoBinaryJoinProject:
		return replayRelation(q, opts, emit)
	}
	return nil, fmt.Errorf("wcoj: unknown algorithm %v", opts.Algorithm)
}

// replayRelation is the no-streaming-mode fallback of ExecuteFunc:
// materialize via Execute (projected or not) and replay the rows.
func replayRelation(q *Query, opts Options, emit func(Tuple) error) (*Stats, error) {
	out, stats, err := Execute(q, opts)
	if err != nil {
		return nil, err
	}
	var row Tuple
	for i := 0; i < out.Len(); i++ {
		row = out.Tuple(i, row)
		if err := emit(row); err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// Count evaluates the query returning only the output cardinality —
// full multiplicity with a nil Options.Project, distinct projected
// tuples otherwise.
//
// For AlgoGenericJoin and AlgoLeapfrog, Count runs the aggregate-aware
// pushdown plan by default: each plan level is classified (see
// PlanExplanation.Count), variables occurring in a single atom are
// sunk to the end of the variable order — where the number of
// extensions is the product of the atoms' current row-range sizes
// (relations are duplicate-free sets) — the deepest searched level
// contributes its intersection size without recursing, and a
// per-(trie,prefix) memo counts shared suffixes once. Setting
// Options.DisablePushdown falls back to enumerating (never
// materializing) every result tuple; the two agree at every
// Parallelism setting and under every planner policy.
//
// AlgoBacktracking counts its stream serially. The binary-join
// baselines have no streaming mode: Count materializes their full
// output via Execute and returns its length.
func Count(q *Query, opts Options) (int, *Stats, error) {
	if err := opts.validatePlanner(); err != nil {
		return 0, nil, err
	}
	if err := opts.validateProject(q); err != nil {
		return 0, nil, err
	}
	if err := core.CtxErr(opts.Context); err != nil {
		return 0, nil, err
	}
	switch opts.Algorithm {
	case AlgoGenericJoin, AlgoLeapfrog:
		// Distinct projected counting is inherently aggregate-aware,
		// so DisablePushdown only governs the multiplicity count.
		if opts.Project == nil && opts.DisablePushdown {
			pol, err := opts.orderPolicy()
			if err != nil {
				return 0, nil, err
			}
			if opts.Algorithm == AlgoLeapfrog {
				return lftj.Count(q, lftj.Options{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context})
			}
			return core.GenericJoinCount(q, core.GenericJoinOptions{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context})
		}
		spec := agg.Spec{Mode: agg.ModeCount, Project: opts.Project}
		pol, err := opts.orderPolicyFor(&spec)
		if err != nil {
			return 0, nil, err
		}
		if opts.Algorithm == AlgoLeapfrog {
			n, stats, err := lftj.Agg(q, lftj.Options{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, spec)
			if err != nil {
				return 0, nil, err
			}
			return int(n), stats, nil
		}
		n, stats, err := core.GenericJoinAgg(q, core.GenericJoinOptions{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, spec)
		if err != nil {
			return 0, nil, err
		}
		return int(n), stats, nil
	case AlgoBacktracking:
		if opts.Project != nil {
			out, stats, err := Execute(q, opts)
			if err != nil {
				return 0, nil, err
			}
			return out.Len(), stats, nil
		}
		dc, err := backtrackConstraints(q, opts.Constraints)
		if err != nil {
			return 0, nil, err
		}
		return core.BacktrackingCount(q, dc, core.BacktrackOptions{Order: opts.Order})
	case AlgoBinaryJoin, AlgoBinaryJoinProject:
		out, stats, err := Execute(q, opts)
		if err != nil {
			return 0, nil, err
		}
		return out.Len(), stats, nil
	}
	return 0, nil, fmt.Errorf("wcoj: unknown algorithm %v", opts.Algorithm)
}

// CountFast evaluates COUNT with the aggregate-aware engines.
//
// Deprecated: Count runs the aggregate pushdown automatically; call
// Count instead. CountFast remains as a thin wrapper that forces the
// pushdown on (it predates — and therefore ignores —
// Options.DisablePushdown).
func CountFast(q *Query, opts Options) (int, *Stats, error) {
	opts.DisablePushdown = false
	return Count(q, opts)
}

// errFirstWitness aborts ExecuteFunc once Exists has its answer.
var errFirstWitness = errors.New("wcoj: stop after first witness")

// Exists reports whether the query has any result, short-circuiting on
// the first witness: the aggregate-aware WCOJ engines unwind the whole
// search (all shards, via a shared stop flag) as soon as one tuple is
// found, and free-counted suffix levels are checked by range
// non-emptiness without being searched at all. AlgoBacktracking stops
// at its first streamed tuple; the binary-join baselines materialize
// their output regardless.
//
// Options.Project cannot change the answer (a projection is non-empty
// iff the full join is); it is validated for consistency with the
// other entry points and otherwise ignored.
func Exists(q *Query, opts Options) (bool, *Stats, error) {
	if err := opts.validatePlanner(); err != nil {
		return false, nil, err
	}
	if err := opts.validateProject(q); err != nil {
		return false, nil, err
	}
	if err := core.CtxErr(opts.Context); err != nil {
		return false, nil, err
	}
	spec := agg.Spec{Mode: agg.ModeExists}
	switch opts.Algorithm {
	case AlgoGenericJoin:
		pol, err := opts.orderPolicyFor(&spec)
		if err != nil {
			return false, nil, err
		}
		n, stats, err := core.GenericJoinAgg(q, core.GenericJoinOptions{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, spec)
		return n != 0, stats, err
	case AlgoLeapfrog:
		pol, err := opts.orderPolicyFor(&spec)
		if err != nil {
			return false, nil, err
		}
		n, stats, err := lftj.Agg(q, lftj.Options{Policy: pol, Parallelism: opts.workers(), Ctx: opts.Context}, spec)
		return n != 0, stats, err
	default:
		full := opts
		full.Project = nil
		found := false
		stats, err := ExecuteFunc(q, full, func(Tuple) error {
			found = true
			return errFirstWitness
		})
		if err != nil && !errors.Is(err, errFirstWitness) {
			return false, nil, err
		}
		if stats == nil {
			stats = &Stats{}
		}
		if found {
			stats.Output = 1
		}
		return found, stats, nil
	}
}

// backtrackConstraints defaults to per-atom cardinalities and repairs
// cyclic sets per Proposition 5.2.
func backtrackConstraints(q *Query, dc ConstraintSet) (ConstraintSet, error) {
	if dc == nil {
		for _, a := range q.Atoms {
			n := float64(a.Rel.Len())
			if n < 1 {
				n = 1
			}
			dc = append(dc, constraints.Cardinality(a.Name, a.Vars, n))
		}
	}
	if !dc.IsAcyclic() {
		repaired, err := dc.MakeAcyclic(q.Vars)
		if err != nil {
			return nil, fmt.Errorf("wcoj: constraints are cyclic and unrepairable: %w", err)
		}
		dc = repaired
	}
	return dc, nil
}

// Explain resolves the variable order Execute would run q under and
// returns the full planning record: the chosen order, the per-level
// output-size bound of every prefix, and — for PlannerCostBased — the
// candidate orders considered and the worst order rejected. The plan
// is algorithm-independent: it describes the variable order shared by
// AlgoGenericJoin and AlgoLeapfrog. Explain performs no join work
// beyond measuring degree statistics and solving the (poly-size)
// modular bound LPs.
//
// With Options.Project set the plan is the projected enumeration's:
// projected-away variables are sunk and the explanation reports each
// level's bound/free-output/free-counted classification.
//
// The returned explanation also carries the count plan: its Count
// field is the planning record of the aggregate pushdown Count would
// run under the same options — which levels are searched (bound),
// which are enumerated into the output (free-output) and which are
// counted by range multiplication without being searched
// (free-counted). It is nil with Options.DisablePushdown set.
func Explain(q *Query, opts Options) (*PlanExplanation, error) {
	popt, err := opts.plannerOptions()
	if err != nil {
		return nil, err
	}
	if opts.Project != nil {
		if err := opts.validateProject(q); err != nil {
			return nil, err
		}
		popt.Agg = &agg.Spec{Mode: agg.ModeEnumerate, Project: opts.Project}
	}
	e, err := planner.Choose(q, popt)
	if err != nil {
		return nil, err
	}
	if !opts.DisablePushdown {
		cpopt, err := opts.plannerOptions()
		if err != nil {
			return nil, err
		}
		cpopt.Agg = &agg.Spec{Mode: agg.ModeCount, Project: opts.Project}
		ce, err := planner.Choose(q, cpopt)
		if err != nil {
			return nil, err
		}
		e.Count = ce
	}
	return e, nil
}

// ExplainCount is Explain restricted to the count plan.
//
// Deprecated: Explain now reports the count plan in its Count field;
// call Explain instead.
func ExplainCount(q *Query, opts Options) (*PlanExplanation, error) {
	if err := opts.validateProject(q); err != nil {
		return nil, err
	}
	popt, err := opts.plannerOptions()
	if err != nil {
		return nil, err
	}
	popt.Agg = &agg.Spec{Mode: agg.ModeCount, Project: opts.Project}
	return planner.Choose(q, popt)
}

// AGMBound computes the AGM output-size bound of the query from its
// relation sizes (Corollary 4.2).
func AGMBound(q *Query) (*AGMResult, error) {
	h, err := q.Hypergraph()
	if err != nil {
		return nil, err
	}
	return bounds.AGM(h, q.Sizes())
}

// PolymatroidBound computes the polymatroid bound (44) for the query's
// variables under the given degree constraints.
func PolymatroidBound(q *Query, dc ConstraintSet) (*LPBound, error) {
	return bounds.Polymatroid(q.Vars, dc)
}

// ModularBound computes the modular LP bound (54); under acyclic
// constraints it equals the polymatroid bound (Proposition 4.4) and
// its Delta duals drive the Algorithm 3 runtime statement.
func ModularBound(q *Query, dc ConstraintSet) (*LPBound, error) {
	return bounds.Modular(q.Vars, dc)
}

// MakeAcyclic repairs a cyclic constraint set per Proposition 5.2.
func MakeAcyclic(dc ConstraintSet, vars []string) (ConstraintSet, error) {
	return dc.MakeAcyclic(vars)
}
