package wcoj

// The long-lived engine suite: concurrent prepared-query execution
// must be race-clean (run with -race, as CI does) and byte-identical
// to one-shot Execute; the plan cache must hit; cancellation must stop
// long enumerations promptly; CSV-loaded relations must serve queries.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wcoj/internal/dataset"
)

// testDB builds a DB holding a random edge relation E plus the
// triangle renames R, S, T over a second graph.
func testDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	tri, err := dataset.TriangleFromGraph(dataset.RandomGraph(120, 900, 21))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(dataset.RandomGraph(80, 600, 9), tri.R, tri.S, tri.T); err != nil {
		t.Fatal(err)
	}
	return db
}

var dbSuiteQueries = []struct {
	name, src string
	opts      Options
}{
	{"triangle", "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{}},
	{"triangle-lftj", "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{Algorithm: AlgoLeapfrog}},
	{"triangle-cost", "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{Planner: PlannerCostBased}},
	{"path4", "Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)", Options{}},
	{"path4-parallel", "Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)", Options{Parallelism: 4}},
	{"path4-project", "Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)", Options{Project: []string{"A", "D"}}},
	{"clique4", "Q(A,B,C,D) :- E(A,B), E(A,C), E(A,D), E(B,C), E(B,D), E(C,D)", Options{Algorithm: AlgoLeapfrog, Parallelism: 3}},
	// Non-WCOJ algorithms have no trie plan; prepared queries fall back
	// to the one-shot path per call (parse/bind still amortized).
	{"triangle-binary", "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{Algorithm: AlgoBinaryJoin}},
}

// TestPreparedMatchesOneShot: for every suite query, PreparedQuery
// results (Execute, Count, CountFast, Exists, ExecuteFunc) equal the
// one-shot entry points bound over the same relations.
func TestPreparedMatchesOneShot(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	for _, c := range dbSuiteQueries {
		t.Run(c.name, func(t *testing.T) {
			pq, err := db.Prepare(c.src, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			q := pq.Query()
			wantRel, _, err := Execute(q, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			gotRel, stats, err := pq.Execute(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !gotRel.Equal(wantRel) {
				t.Fatalf("Execute diverges: %d vs %d tuples", gotRel.Len(), wantRel.Len())
			}
			if stats.Output != wantRel.Len() {
				t.Fatalf("stats.Output = %d, want %d", stats.Output, wantRel.Len())
			}
			n, _, err := pq.Count(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if n != wantRel.Len() {
				t.Fatalf("Count = %d, want %d", n, wantRel.Len())
			}
			nf, _, err := pq.CountFast(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if nf != wantRel.Len() {
				t.Fatalf("CountFast = %d, want %d", nf, wantRel.Len())
			}
			found, _, err := pq.Exists(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if found != (wantRel.Len() > 0) {
				t.Fatalf("Exists = %v with %d results", found, wantRel.Len())
			}
			streamed := 0
			if _, err := pq.ExecuteFunc(ctx, func(Tuple) error { streamed++; return nil }); err != nil {
				t.Fatal(err)
			}
			if streamed != wantRel.Len() {
				t.Fatalf("ExecuteFunc streamed %d, want %d", streamed, wantRel.Len())
			}
		})
	}
}

// TestConcurrentDB: many goroutines share one DB and its prepared
// queries; every result must equal the serial one-shot Execute. Run
// under -race this is the shared-state safety proof of the engine.
func TestConcurrentDB(t *testing.T) {
	db := testDB(t)
	const goroutines = 8
	const iters = 5

	want := make([]int, len(dbSuiteQueries))
	pqs := make([]*PreparedQuery, len(dbSuiteQueries))
	for i, c := range dbSuiteQueries {
		pq, err := db.Prepare(c.src, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		pqs[i] = pq
		q := pq.Query()
		out, _, err := Execute(q, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out.Len()
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters*len(pqs))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				for i, pq := range pqs {
					// Alternate materialization and the aggregate paths so
					// every plan mode runs concurrently.
					switch (g + it) % 3 {
					case 0:
						out, _, err := pq.Execute(ctx)
						if err != nil {
							errs <- err
							continue
						}
						if out.Len() != want[i] {
							errs <- fmt.Errorf("%s: Execute %d, want %d", pq.Source(), out.Len(), want[i])
						}
					case 1:
						n, _, err := pq.Count(ctx)
						if err != nil {
							errs <- err
							continue
						}
						if n != want[i] {
							errs <- fmt.Errorf("%s: Count %d, want %d", pq.Source(), n, want[i])
						}
					default:
						n, _, err := pq.CountFast(ctx)
						if err != nil {
							errs <- err
							continue
						}
						if n != want[i] {
							errs <- fmt.Errorf("%s: CountFast %d, want %d", pq.Source(), n, want[i])
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := pqs[0].Stats()
	if st.Calls == 0 || st.Duration <= 0 {
		t.Fatalf("cumulative stats not recorded: %+v", st)
	}
}

// TestConcurrentPrepare: racing Prepare calls for the same key
// converge on one shared PreparedQuery.
func TestConcurrentPrepare(t *testing.T) {
	db := testDB(t)
	const goroutines = 8
	got := make([]*PreparedQuery, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pq, err := db.Prepare("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := pq.Count(context.Background()); err != nil {
				t.Error(err)
			}
			got[g] = pq
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatal("racing Prepare calls produced distinct prepared queries")
		}
	}
	if s := db.Stats(); s.PlansCached != 1 {
		t.Fatalf("plan cache holds %d entries, want 1", s.PlansCached)
	}
}

// TestPlanCache: re-preparing hits; different options miss; Register
// invalidates.
func TestPlanCache(t *testing.T) {
	db := testDB(t)
	src := "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
	p1, err := db.Prepare(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.Prepare(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical Prepare did not hit the plan cache")
	}
	// Whitespace-insensitive: the key is the canonical rendering.
	p3, err := db.Prepare("Q(A, B, C)  :-  R(A,B),S(B,C),  T(A,C).", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("canonicalized query text did not hit the plan cache")
	}
	pl, err := db.Prepare(src, Options{Algorithm: AlgoLeapfrog})
	if err != nil {
		t.Fatal(err)
	}
	if pl == p1 {
		t.Fatal("different options shared a cache entry")
	}
	if s := db.Stats(); s.PlanHits != 2 || s.PlanMisses != 2 {
		t.Fatalf("plan hit/miss = %d/%d, want 2/2", s.PlanHits, s.PlanMisses)
	}
	// Register drops the cache; the held handle still answers from its
	// bound snapshot.
	wantOld, _, err := p1.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(dataset.RandomGraph(10, 20, 3)); err != nil {
		t.Fatal(err)
	}
	p4, err := db.Prepare(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("Register did not invalidate the plan cache")
	}
	gotOld, _, err := p1.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotOld != wantOld {
		t.Fatalf("held prepared query changed answers after Register: %d vs %d", gotOld, wantOld)
	}
}

// TestPlanCacheBounded: the plan cache evicts least-recently-prepared
// entries past its budget (a serving process fed arbitrary query
// shapes must not grow without bound), and a hit refreshes recency.
func TestPlanCacheBounded(t *testing.T) {
	db := testDB(t)
	db.SetPlanCacheLimit(2)
	hot, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		// Touch hot between cold inserts so it stays most recent.
		if _, err := db.Prepare("Q(A,B) :- E(A,B)", Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Prepare("Q(A,B) :- E(A,B)", Options{Parallelism: i}); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.Stats(); s.PlansCached != 2 {
		t.Fatalf("plan cache holds %d entries, budget 2", s.PlansCached)
	}
	again, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again != hot {
		t.Fatal("recently-touched entry was evicted")
	}
	// A zero limit disables caching entirely.
	db.SetPlanCacheLimit(0)
	if s := db.Stats(); s.PlansCached != 0 {
		t.Fatalf("zero limit left %d entries", s.PlansCached)
	}
	p1, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("disabled cache still shared a prepared query")
	}
}

// TestPlanKeyConstraints: two backtracking prepares with different
// constraint sets must not share a cached plan.
func TestPlanKeyConstraints(t *testing.T) {
	db := testDB(t)
	src := "Q(A,B) :- E(A,B)"
	a, err := db.Prepare(src, Options{Algorithm: AlgoBacktracking,
		Constraints: ConstraintSet{Cardinality("E", []string{"A", "B"}, 600)}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Prepare(src, Options{Algorithm: AlgoBacktracking,
		Constraints: ConstraintSet{Cardinality("E", []string{"A", "B"}, 10)}})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different constraint sets shared one cached plan")
	}
}

// TestPlanKeyNilVsEmpty: an invalid empty Project must fail validation
// even when a nil-Project plan for the same query is already cached —
// the key must not conflate the two.
func TestPlanKeyNilVsEmpty(t *testing.T) {
	db := testDB(t)
	src := "Q(A,B) :- E(A,B)"
	if _, err := db.Prepare(src, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare(src, Options{Project: []string{}}); err == nil {
		t.Fatal("empty Project hit the nil-Project cache entry instead of failing validation")
	}
	if _, err := db.Prepare(src, Options{Order: []string{}, Planner: PlannerExplicit}); err == nil {
		t.Fatal("empty explicit Order accepted")
	}
}

// TestConcurrentLoadCSV: concurrent ingestion through the shared DB
// dictionary must be race-free (run under -race), and concurrent
// readers may decode while a load interns.
func TestConcurrentLoadCSV(t *testing.T) {
	db := NewDB()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var sb strings.Builder
			sb.WriteString("a,b\n")
			for i := 0; i < 200; i++ {
				fmt.Fprintf(&sb, "k%d-%d,v%d\n", g, i, i)
			}
			name := fmt.Sprintf("R%d", g)
			if _, err := db.LoadCSV(strings.NewReader(sb.String()), name, CSVOptions{Dict: db.Dict()}); err != nil {
				t.Error(err)
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := db.Dict()
			for i := 0; i < 500; i++ {
				_ = d.String(Value(i % (d.Len() + 1)))
			}
		}()
	}
	wg.Wait()
}

// TestDBQueryConvenience: DB.Query prepares, caches and executes.
func TestDBQueryConvenience(t *testing.T) {
	db := testDB(t)
	out1, _, err := db.Query(context.Background(), "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := db.Query(context.Background(), "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Equal(out2) {
		t.Fatal("repeated Query diverged")
	}
	if s := db.Stats(); s.PlanHits == 0 {
		t.Fatal("repeated Query did not hit the plan cache")
	}
}

// TestDBErrors: unknown relations, bad planner combinations and bad
// projections surface as Prepare errors.
func TestDBErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Prepare("Q(A,B) :- Nope(A,B)", Options{}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := db.Prepare("Q(A,B) :- E(A,B)", Options{Planner: PlannerExplicit}); err == nil {
		t.Fatal("explicit planner without order accepted")
	}
	if _, err := db.Prepare("Q(A,B) :- E(A,B)", Options{Project: []string{"Z"}}); err == nil {
		t.Fatal("projection onto non-variable accepted")
	}
	if err := db.Register(nil); err == nil {
		t.Fatal("nil relation registered")
	}
}

// TestDBLoadCSV: relations ingested from CSV/TSV text serve prepared
// queries, with strings interned through the DB dictionary.
func TestDBLoadCSV(t *testing.T) {
	db := NewDB()
	if _, err := db.LoadCSV(strings.NewReader("src,dst\n1,2\n2,3\n3,1\n"), "E", CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n, _, err := pq.Count(context.Background()); err != nil || n != 0 {
		t.Fatalf("cycle has no directed triangle: n=%d err=%v", n, err)
	}
	// A closing chord creates one.
	if _, err := db.LoadCSV(strings.NewReader("src,dst\n1,2\n2,3\n1,3\n"), "E", CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	pq2, err := db.Prepare("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n, _, err := pq2.Count(context.Background()); err != nil || n != 1 {
		t.Fatalf("triangle count = %d, err=%v, want 1", n, err)
	}

	// String data through the shared dictionary.
	csv := "person,follows\nalice,bob\nbob,carol\nalice,carol\n"
	if _, err := db.LoadCSV(strings.NewReader(csv), "F", CSVOptions{Dict: db.Dict()}); err != nil {
		t.Fatal(err)
	}
	out, _, err := db.Query(context.Background(), "Q(A,B,C) :- F(A,B), F(B,C), F(A,C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("string triangle count = %d, want 1", out.Len())
	}
	row := out.Tuple(0, nil)
	if db.Dict().String(row[0]) != "alice" {
		t.Fatalf("decoded row = %v", row)
	}
}

// cancelQuery builds a pathological product query whose full
// enumeration is far too large to finish: K(x,y) is a complete
// bipartite graph joined as a 4-variable product with ~26G results.
func cancelQuery(t testing.TB, db *DB, opts Options) *PreparedQuery {
	t.Helper()
	src := "Q(A,B,C,D) :- K(A,B), K(B,C), K(C,D)"
	pq, err := db.Prepare(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pq
}

func cancelDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	b := NewRelationBuilder("K", "x", "y")
	for i := 0; i < 150; i++ {
		for j := 0; j < 150; j++ {
			b.Add(Value(i), Value(j))
		}
	}
	if err := db.Register(b.Build()); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestPreparedCancellation: a cancelled context stops serial and
// sharded runs promptly — long enumerations were unabortable before
// the stop flag reached the workers.
func TestPreparedCancellation(t *testing.T) {
	db := cancelDB(t)
	for _, par := range []int{1, 4} {
		for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
			name := fmt.Sprintf("%v/p=%d", algo, par)
			t.Run("count/"+name, func(t *testing.T) {
				// DisablePushdown keeps this a long enumeration: the
				// default pushdown count finishes this product query in
				// microseconds, leaving nothing to cancel.
				pq := cancelQuery(t, db, Options{Algorithm: algo, Parallelism: par, DisablePushdown: true})
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				start := time.Now()
				_, _, err := pq.Count(ctx)
				elapsed := time.Since(start)
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("err = %v, want deadline exceeded", err)
				}
				if elapsed > 5*time.Second {
					t.Fatalf("cancellation took %v", elapsed)
				}
			})
			t.Run("stream/"+name, func(t *testing.T) {
				pq := cancelQuery(t, db, Options{Algorithm: algo, Parallelism: par})
				if par == 1 {
					// Serial emit is direct: cancelling from inside emit
					// unwinds the search at the next tuple.
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					n := 0
					_, err := pq.ExecuteFunc(ctx, func(Tuple) error {
						n++
						if n == 1000 {
							cancel()
						}
						return nil
					})
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("err = %v, want canceled", err)
					}
					return
				}
				// Sharded emit is replayed per completed chunk, and no
				// chunk of this workload ever completes — exactly the
				// "unabortable long enumeration" the stop-flag polls fix:
				// the deadline must unwind the workers mid-chunk.
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
				defer cancel()
				start := time.Now()
				_, err := pq.ExecuteFunc(ctx, func(Tuple) error { return nil })
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("err = %v, want deadline exceeded", err)
				}
				if elapsed := time.Since(start); elapsed > 5*time.Second {
					t.Fatalf("cancellation took %v", elapsed)
				}
			})
		}
	}
	// Pre-cancelled contexts never start the search.
	pq := cancelQuery(t, db, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := pq.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Execute: %v", err)
	}
	if _, _, err := pq.Exists(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Exists: %v", err)
	}
}

// TestDBTrieStoreIsolation: a DB's tries live in its own store — the
// process-global cache is untouched, and two DBs don't share entries.
func TestDBTrieStoreIsolation(t *testing.T) {
	db1 := testDB(t)
	db2 := testDB(t)
	if _, _, err := db1.Query(context.Background(), "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", Options{}); err != nil {
		t.Fatal(err)
	}
	s1, s2 := db1.Stats(), db2.Stats()
	if s1.TrieEntries == 0 {
		t.Fatal("db1 owns no tries after executing")
	}
	if s2.TrieEntries != 0 {
		t.Fatalf("db2 acquired %d tries without executing", s2.TrieEntries)
	}
	// Shrinking the DB budget evicts from the DB store only.
	db1.SetTrieCacheLimit(0)
	if s := db1.Stats(); s.TrieEntries != 0 {
		t.Fatalf("zero budget left %d tries", s.TrieEntries)
	}
}

// TestWarm: warming builds plans ahead of traffic.
func TestWarm(t *testing.T) {
	db := testDB(t)
	if err := db.Warm("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", "Q(A,B) :- E(A,B)"); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.PlansCached != 2 || s.TrieEntries == 0 {
		t.Fatalf("after Warm: %+v", s)
	}
	if err := db.Warm("Q(A) :- Missing(A)"); err == nil {
		t.Fatal("warming an unbindable query succeeded")
	}
}
