package wcoj

// Equivalence and acceptance tests for the aggregate-aware execution
// mode: CountFast / Exists / Options.Project must agree byte-for-byte
// with enumerate-then-aggregate on every workload, for both WCOJ
// engines, serial and sharded, under every planner policy. Run with
// -race in CI.

import (
	"fmt"
	"testing"

	"wcoj/internal/dataset"
)

// aggWorkload is one equivalence fixture.
type aggWorkload struct {
	name string
	q    *Query
}

func aggWorkloads(t testing.TB) []aggWorkload {
	t.Helper()
	mk := func(src string, rels ...*Relation) *Query {
		db := NewDatabase()
		for _, r := range rels {
			db.Put(r)
		}
		q, err := MustParse(src).Bind(db)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	tri := dataset.TriangleAGMTight(900)
	skew := dataset.TriangleSkew(400)
	g := dataset.RandomGraph(300, 2400, 13)
	star := dataset.SkewedStar(2000, 8, 300)
	return []aggWorkload{
		{"triangle-agm", mk("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", tri.R, tri.S, tri.T)},
		{"triangle-skew", mk("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", skew.R, skew.S, skew.T)},
		{"clique4", mk("Q(A,B,C,D) :- E(A,B), E(A,C), E(A,D), E(B,C), E(B,D), E(C,D)", g)},
		{"path4", mk("Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)", g)},
		{"skewed-star", mk("Q(A,B,C) :- R(A,B), S(B,C)", star.R, star.S)},
	}
}

// aggVariants enumerates the engine/planner/parallelism grid every
// aggregate result must be identical across.
func aggVariants() []Options {
	var out []Options
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		for _, pl := range []Planner{PlannerHeuristic, PlannerCostBased} {
			for _, par := range []int{1, 4} {
				out = append(out, Options{Algorithm: algo, Planner: pl, Parallelism: par})
			}
		}
	}
	return out
}

func optsName(o Options) string {
	return fmt.Sprintf("%v/%v/p=%d", o.Algorithm, o.Planner, o.Parallelism)
}

// TestCountFastEquivalence: CountFast == Count == len(Execute) on
// every workload and variant.
func TestCountFastEquivalence(t *testing.T) {
	for _, wl := range aggWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			out, _, err := Execute(wl.q, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := out.Len()
			for _, o := range aggVariants() {
				o := o
				t.Run(optsName(o), func(t *testing.T) {
					slow, _, err := Count(wl.q, o)
					if err != nil {
						t.Fatal(err)
					}
					if slow != want {
						t.Fatalf("Count = %d, want %d", slow, want)
					}
					fast, stats, err := CountFast(wl.q, o)
					if err != nil {
						t.Fatal(err)
					}
					if fast != want {
						t.Fatalf("CountFast = %d, want %d", fast, want)
					}
					if stats.Output != want {
						t.Fatalf("stats.Output = %d, want %d", stats.Output, want)
					}
				})
			}
		})
	}
}

// TestCountFastSkipsEnumeration is the acceptance check behind the
// >=10x speedup claim, stated machine-independently: on the AGM-tight
// triangle the enumerating count (Options.DisablePushdown) explores
// ~k^3 search nodes while the default pushdown Count stops at the
// ~k^2 bound levels, so its recursion count must be at least 10x
// smaller (it is ~100x at k=100).
func TestCountFastSkipsEnumeration(t *testing.T) {
	tri := dataset.TriangleAGMTight(10000)
	db := NewDatabase()
	db.Put(tri.R)
	db.Put(tri.S)
	db.Put(tri.T)
	q, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		slow, slowStats, err := Count(q, Options{Algorithm: algo, Parallelism: 1, DisablePushdown: true})
		if err != nil {
			t.Fatal(err)
		}
		fast, fastStats, err := Count(q, Options{Algorithm: algo, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("%v: Count = %d, Count(DisablePushdown) = %d", algo, fast, slow)
		}
		if fastStats.Recursions*10 > slowStats.Recursions {
			t.Errorf("%v: CountFast explored %d nodes, Count %d — want >=10x reduction",
				algo, fastStats.Recursions, slowStats.Recursions)
		}
		if fastStats.AggMultiplies == 0 {
			t.Errorf("%v: no free-counted shortcuts taken", algo)
		}
	}
}

// TestExistsEquivalence: Exists == (Count > 0), including on empty
// joins, and it must not enumerate the full result.
func TestExistsEquivalence(t *testing.T) {
	workloads := aggWorkloads(t)
	// An empty join: T has no tuples.
	db := NewDatabase()
	db.Put(NewRelation("R", []string{"A", "B"}, []Tuple{{1, 2}}))
	db.Put(NewRelation("S", []string{"B", "C"}, []Tuple{{2, 3}}))
	db.Put(NewRelation("T", []string{"A", "C"}, []Tuple{{7, 9}}))
	empty, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, aggWorkload{"empty", empty})
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			n, _, err := Count(wl.q, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := n > 0
			for _, o := range aggVariants() {
				got, stats, err := Exists(wl.q, o)
				if err != nil {
					t.Fatalf("%s: %v", optsName(o), err)
				}
				if got != want {
					t.Fatalf("%s: Exists = %v, want %v", optsName(o), got, want)
				}
				if want && o.Parallelism == 1 && stats.Recursions > n && n > 100 {
					t.Errorf("%s: Exists explored %d nodes for a %d-tuple result — no short-circuit",
						optsName(o), stats.Recursions, n)
				}
			}
		})
	}
}

// TestProjectEquivalence: Execute/Count with Options.Project must
// agree with materialize-then-project, for every projection shape.
func TestProjectEquivalence(t *testing.T) {
	for _, wl := range aggWorkloads(t) {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			full, _, err := Execute(wl.q, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			// All prefixes, suffixes, and a reordered pair.
			var projections [][]string
			vars := wl.q.Vars
			for i := 1; i < len(vars); i++ {
				projections = append(projections, vars[:i], vars[i:])
			}
			projections = append(projections, []string{vars[len(vars)-1], vars[0]})
			for _, proj := range projections {
				want, err := full.Project(proj...)
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range aggVariants() {
					o := o
					o.Project = proj
					got, _, err := Execute(wl.q, o)
					if err != nil {
						t.Fatalf("%s/%v: %v", optsName(o), proj, err)
					}
					if !got.Equal(want) {
						t.Fatalf("%s: project %v: got %d tuples, want %d (or content differs)",
							optsName(o), proj, got.Len(), want.Len())
					}
					n, _, err := Count(wl.q, o)
					if err != nil {
						t.Fatal(err)
					}
					if n != want.Len() {
						t.Fatalf("%s: projected Count = %d, want %d", optsName(o), n, want.Len())
					}
					nf, _, err := CountFast(wl.q, o)
					if err != nil {
						t.Fatal(err)
					}
					if nf != want.Len() {
						t.Fatalf("%s: projected CountFast = %d, want %d", optsName(o), nf, want.Len())
					}
				}
			}
		})
	}
}

// TestProjectExplicitOrderSinks: an explicit order that interleaves
// projected-away variables is sunk, not rejected, and stays correct.
func TestProjectExplicitOrderSinks(t *testing.T) {
	g := dataset.RandomGraph(200, 1200, 5)
	db := NewDatabase()
	db.Put(g)
	q, err := MustParse("Q(A,B,C) :- E(A,B), E(B,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Execute(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Project("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		got, _, err := Execute(q, Options{
			Algorithm: algo,
			Order:     []string{"B", "A", "C"}, // B is projected away: sunk to the end
			Project:   []string{"A", "C"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%v: explicit-order projection diverges", algo)
		}
	}
}

// TestProjectBaselineFallback: the non-WCOJ algorithms materialize and
// project.
func TestProjectBaselineFallback(t *testing.T) {
	tri := dataset.TriangleAGMTight(400)
	db := NewDatabase()
	db.Put(tri.R)
	db.Put(tri.S)
	db.Put(tri.T)
	q, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Execute(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Project("B")
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoBinaryJoin, AlgoBinaryJoinProject} {
		got, stats, err := Execute(q, Options{Algorithm: algo, Project: []string{"B"}})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%v: projected fallback diverges", algo)
		}
		if stats.Output != want.Len() {
			t.Fatalf("%v: stats.Output = %d, want %d", algo, stats.Output, want.Len())
		}
		n, _, err := Count(q, Options{Algorithm: algo, Project: []string{"B"}})
		if err != nil {
			t.Fatal(err)
		}
		if n != want.Len() {
			t.Fatalf("%v: projected Count = %d, want %d", algo, n, want.Len())
		}
	}
}

// TestProjectStreaming: ExecuteFunc with a projection streams exactly
// the distinct projected tuples (the same set Execute materializes),
// and the emit sequence is identical between a serial and a sharded
// run of the same plan.
func TestProjectStreaming(t *testing.T) {
	star := dataset.SkewedStar(500, 6, 100)
	db := NewDatabase()
	db.Put(star.R)
	db.Put(star.S)
	q, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(o Options) []Tuple {
		t.Helper()
		var got []Tuple
		stats, err := ExecuteFunc(q, o, func(t Tuple) error {
			cp := make(Tuple, len(t))
			copy(cp, t)
			got = append(got, cp)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Output != len(got) {
			t.Fatalf("%s: stats.Output = %d, streamed %d", optsName(o), stats.Output, len(got))
		}
		return got
	}
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		for _, pl := range []Planner{PlannerHeuristic, PlannerCostBased} {
			serial := Options{Algorithm: algo, Planner: pl, Parallelism: 1, Project: []string{"A", "C"}}
			sharded := serial
			sharded.Parallelism = 4
			want, _, err := Execute(q, serial)
			if err != nil {
				t.Fatal(err)
			}
			got := collect(serial)
			// The streamed set equals the materialized set (the builder
			// re-sorts, so compare via a rebuilt relation).
			rebuilt := NewRelationBuilder(want.Name(), "A", "C")
			for _, tp := range got {
				if err := rebuilt.Add(tp...); err != nil {
					t.Fatal(err)
				}
			}
			if rel := rebuilt.Build(); !rel.Equal(want) || rel.Len() != len(got) {
				t.Fatalf("%s: streamed set diverges from Execute (%d streamed, %d materialized)",
					optsName(serial), len(got), want.Len())
			}
			// A sharded run replays chunks in order: identical sequence.
			got4 := collect(sharded)
			if len(got4) != len(got) {
				t.Fatalf("%s: sharded streamed %d tuples, serial %d", optsName(sharded), len(got4), len(got))
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != got4[i][j] {
						t.Fatalf("%s: sharded sequence diverges at tuple %d: %v vs %v",
							optsName(sharded), i, got4[i], got[i])
					}
				}
			}
		}
	}
}

// TestCountFastProjectedCountsDistinct: the projected count is the
// number of distinct projected tuples, not the full multiplicity.
func TestCountFastProjectedCountsDistinct(t *testing.T) {
	star := dataset.SkewedStar(100, 50, 0)
	db := NewDatabase()
	db.Put(star.R)
	db.Put(star.S)
	q, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	fullCount, _, err := Count(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fullCount != 100*50 {
		t.Fatalf("full count = %d, want %d", fullCount, 100*50)
	}
	// Projected to A there are only the 100 spokes.
	n, _, err := CountFast(q, Options{Project: []string{"A"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("distinct A count = %d, want 100", n)
	}
}

// TestCountFastFallbacks: non-WCOJ algorithms fall back to Count.
func TestCountFastFallbacks(t *testing.T) {
	tri := dataset.TriangleAGMTight(400)
	db := NewDatabase()
	db.Put(tri.R)
	db.Put(tri.S)
	db.Put(tri.T)
	q, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Count(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoBacktracking, AlgoBinaryJoin, AlgoBinaryJoinProject} {
		n, _, err := CountFast(q, Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("%v: CountFast fallback = %d, want %d", algo, n, want)
		}
		found, _, err := Exists(q, Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("%v: Exists fallback = false on a non-empty join", algo)
		}
	}
}

// TestExplainCountClassification: ExplainCount reports the sunk order
// and the level classification.
func TestExplainCountClassification(t *testing.T) {
	g := dataset.RandomGraph(200, 1200, 5)
	db := NewDatabase()
	db.Put(g)
	q, err := MustParse("Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []Planner{PlannerHeuristic, PlannerCostBased} {
		e, err := ExplainCount(q, Options{Planner: pl})
		if err != nil {
			t.Fatal(err)
		}
		if e.AggMode != "count" {
			t.Fatalf("%v: AggMode = %q, want count", pl, e.AggMode)
		}
		if len(e.Classes) != 4 {
			t.Fatalf("%v: Classes = %v, want 4 entries", pl, e.Classes)
		}
		// A and D are single-atom: they must be sunk and free-counted.
		if e.CountFrom != 2 {
			t.Fatalf("%v: CountFrom = %d (order %v), want 2", pl, e.CountFrom, e.Order)
		}
		for d := 2; d < 4; d++ {
			if e.Classes[d] != ClassFreeCounted {
				t.Fatalf("%v: Classes[%d] = %v, want free-counted", pl, d, e.Classes[d])
			}
			if v := e.Order[d]; v != "A" && v != "D" {
				t.Fatalf("%v: sunk suffix holds %q, want A/D", pl, v)
			}
		}
		if s := e.String(); s == "" {
			t.Fatal("empty String rendering")
		}
	}
	// Projection explain: enumerate mode with free-output prefix.
	e, err := Explain(q, Options{Project: []string{"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if e.AggMode != "enumerate" {
		t.Fatalf("AggMode = %q, want enumerate", e.AggMode)
	}
	if e.Classes[0] != ClassFreeOutput || e.Classes[1] != ClassFreeOutput {
		t.Fatalf("Classes = %v, want free-output prefix", e.Classes)
	}
}

// TestCountFastOverflow: a count that exceeds int64 returns
// ErrCountOverflow instead of a silently wrapped number. The
// cross product of five 100k-value unary relations is 10^25.
func TestCountFastOverflow(t *testing.T) {
	db := NewDatabase()
	for _, name := range []string{"R1", "R2", "R3", "R4", "R5"} {
		b := NewRelationBuilder(name, "x")
		for v := 0; v < 100000; v++ {
			if err := b.Add(Value(v)); err != nil {
				t.Fatal(err)
			}
		}
		db.Put(b.Build())
	}
	q, err := MustParse("Q(A,B,C,D,E) :- R1(A), R2(B), R3(C), R4(D), R5(E)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		for _, par := range []int{1, 4} {
			_, _, err := CountFast(q, Options{Algorithm: algo, Parallelism: par})
			if err == nil {
				t.Fatalf("%v/p=%d: 10^25 count did not report overflow", algo, par)
			}
			// The overflow must not break EXISTS, which needs no product.
			found, _, err := Exists(q, Options{Algorithm: algo, Parallelism: par})
			if err != nil || !found {
				t.Fatalf("%v/p=%d: Exists = %v, %v on a non-empty product", algo, par, found, err)
			}
		}
	}
}

// TestProjectValidation: bad projections are rejected up front.
func TestProjectValidation(t *testing.T) {
	tri := dataset.TriangleAGMTight(100)
	db := NewDatabase()
	db.Put(tri.R)
	db.Put(tri.S)
	db.Put(tri.T)
	q, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, proj := range [][]string{{}, {"A", "A"}, {"X"}} {
		if _, _, err := Execute(q, Options{Project: proj}); err == nil {
			t.Errorf("Execute accepted Project=%v", proj)
		}
		if _, _, err := Count(q, Options{Project: proj}); err == nil {
			t.Errorf("Count accepted Project=%v", proj)
		}
		if _, err := Explain(q, Options{Project: proj}); err == nil {
			t.Errorf("Explain accepted Project=%v", proj)
		}
		if _, _, err := Exists(q, Options{Project: proj}); err == nil {
			t.Errorf("Exists accepted Project=%v", proj)
		}
	}
}
