package wcoj

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// ctxTestQuery binds the unabortable-without-polling product query
// over a complete bipartite K (same shape as the prepared-query
// cancellation tests, ~26G results at 150x150).
func ctxTestQuery(t testing.TB) *Query {
	t.Helper()
	db := NewDatabase()
	b := NewRelationBuilder("K", "x", "y")
	for i := 0; i < 150; i++ {
		for j := 0; j < 150; j++ {
			if err := b.Add(Value(i), Value(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Put(b.Build())
	q, err := MustParse("Q(A,B,C,D) :- K(A,B), K(B,C), K(C,D)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestOptionsContextCancellation: Options.Context cancels the free
// functions mid-run exactly like the ctx parameter of the prepared
// entry points — the search workers poll it and unwind promptly.
func TestOptionsContextCancellation(t *testing.T) {
	q := ctxTestQuery(t)
	for _, par := range []int{1, 4} {
		for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
			name := fmt.Sprintf("%v/p=%d", algo, par)
			run := func(t *testing.T, f func(Options) error) {
				t.Helper()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				start := time.Now()
				err := f(Options{Algorithm: algo, Parallelism: par, Context: ctx, DisablePushdown: true})
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("err = %v, want deadline exceeded", err)
				}
				if elapsed := time.Since(start); elapsed > 5*time.Second {
					t.Fatalf("cancellation took %v", elapsed)
				}
			}
			t.Run("execute/"+name, func(t *testing.T) {
				run(t, func(o Options) error { _, _, err := Execute(q, o); return err })
			})
			t.Run("count/"+name, func(t *testing.T) {
				run(t, func(o Options) error { _, _, err := Count(q, o); return err })
			})
			t.Run("executefunc/"+name, func(t *testing.T) {
				run(t, func(o Options) error {
					_, err := ExecuteFunc(q, o, func(Tuple) error { return nil })
					return err
				})
			})
		}
	}
}

// TestOptionsContextPreChecked: algorithms without in-search polling
// still refuse to start under an already-cancelled context.
func TestOptionsContextPreChecked(t *testing.T) {
	db := NewDatabase()
	b := NewRelationBuilder("E", "x", "y")
	for i := 0; i < 8; i++ {
		if err := b.Add(Value(i), Value(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	db.Put(b.Build())
	q, err := MustParse("Q(A,B,C) :- E(A,B), E(B,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{AlgoBacktracking, AlgoBinaryJoin, AlgoBinaryJoinProject} {
		opts := Options{Algorithm: algo, Context: ctx}
		if _, _, err := Execute(q, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%v Execute: err = %v, want canceled", algo, err)
		}
		if _, _, err := Count(q, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%v Count: err = %v, want canceled", algo, err)
		}
		if _, _, err := Exists(q, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%v Exists: err = %v, want canceled", algo, err)
		}
	}
}

// TestCountPushdownToggle: Count with and without DisablePushdown
// agree, for plain and projected counting, on both WCOJ engines, and
// CountFast remains an alias of the pushdown Count.
func TestCountPushdownToggle(t *testing.T) {
	db := NewDatabase()
	b := NewRelationBuilder("E", "x", "y")
	for i := 0; i < 40; i++ {
		for _, j := range []int{(i * 3) % 40, (i * 7) % 40, (i + 11) % 40} {
			if err := b.Add(Value(i), Value(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Put(b.Build())
	q, err := MustParse("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		base := Options{Algorithm: algo}
		push, pushStats, err := Count(q, base)
		if err != nil {
			t.Fatal(err)
		}
		slow := base
		slow.DisablePushdown = true
		enum, _, err := Count(q, slow)
		if err != nil {
			t.Fatal(err)
		}
		if push != enum {
			t.Fatalf("%v: pushdown count %d vs enumerated %d", algo, push, enum)
		}
		if pushStats.AggMultiplies == 0 && pushStats.Recursions >= push {
			t.Errorf("%v: pushdown plan took no shortcut (%+v)", algo, *pushStats)
		}
		legacy, _, err := CountFast(q, base)
		if err != nil {
			t.Fatal(err)
		}
		if legacy != push {
			t.Fatalf("%v: CountFast %d vs Count %d", algo, legacy, push)
		}
		proj := base
		proj.Project = []string{"A"}
		pn, _, err := Count(q, proj)
		if err != nil {
			t.Fatal(err)
		}
		projSlow := proj
		projSlow.DisablePushdown = true
		pn2, _, err := Count(q, projSlow)
		if err != nil {
			t.Fatal(err)
		}
		if pn != pn2 {
			t.Fatalf("%v: projected count %d vs %d under DisablePushdown", algo, pn, pn2)
		}
	}
}

// TestExplainCarriesCountPlan: Explain reports the pushdown count plan
// in its Count field (and matches the deprecated ExplainCount), unless
// DisablePushdown clears it.
func TestExplainCarriesCountPlan(t *testing.T) {
	db := NewDatabase()
	b := NewRelationBuilder("E", "x", "y")
	for i := 0; i < 10; i++ {
		if err := b.Add(Value(i), Value((i+1)%10)); err != nil {
			t.Fatal(err)
		}
	}
	db.Put(b.Build())
	q, err := MustParse("Q(A,B,C) :- E(A,B), E(B,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Explain(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Count == nil {
		t.Fatal("Explain.Count is nil")
	}
	if e.Count.AggMode != "count" {
		t.Fatalf("Explain.Count.AggMode = %q, want count", e.Count.AggMode)
	}
	legacy, err := ExplainCount(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(e.Count.Order), fmt.Sprint(legacy.Order); got != want {
		t.Fatalf("Explain.Count order %s vs ExplainCount %s", got, want)
	}
	if e.Count.CountFrom != legacy.CountFrom {
		t.Fatalf("CountFrom %d vs %d", e.Count.CountFrom, legacy.CountFrom)
	}
	off, err := Explain(q, Options{DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Count != nil {
		t.Fatal("DisablePushdown must clear the count plan")
	}
}
