package wcoj

import (
	"math"
	"testing"

	"wcoj/internal/dataset"
)

func triangleQuery(t testing.TB, tri dataset.Triangle) *Query {
	t.Helper()
	q, err := NewQuery([]string{"A", "B", "C"}, []Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestExecuteAllAlgorithmsAgree(t *testing.T) {
	tri := dataset.TriangleAGMTight(144)
	q := triangleQuery(t, tri)
	var want *Relation
	for _, algo := range []Algorithm{
		AlgoGenericJoin, AlgoLeapfrog, AlgoBacktracking,
		AlgoBinaryJoin, AlgoBinaryJoinProject,
	} {
		got, stats, err := Execute(q, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if stats.Output != got.Len() {
			t.Fatalf("%v: stats mismatch", algo)
		}
		if want == nil {
			want = got
			// AGM tight: 12^3 / ... k=12 → 12^2 per relation, out 12^3.
			if got.Len() != 12*12*12 {
				t.Fatalf("output = %d, want 1728", got.Len())
			}
			continue
		}
		if !got.Equal(want) {
			t.Fatalf("%v disagrees: %d vs %d rows", algo, got.Len(), want.Len())
		}
	}
}

func TestCountMatchesExecute(t *testing.T) {
	tri := dataset.TriangleSkew(200)
	q := triangleQuery(t, tri)
	want, _, err := Execute(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{
		AlgoGenericJoin, AlgoLeapfrog, AlgoBacktracking, AlgoBinaryJoin,
	} {
		n, _, err := Count(q, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if n != want.Len() {
			t.Fatalf("%v count = %d, want %d", algo, n, want.Len())
		}
	}
}

func TestParseAndBindEndToEnd(t *testing.T) {
	db := NewDatabase()
	e := dataset.RandomGraph(40, 300, 1)
	db.Put(e)
	p, err := Parse("Q(X,Y,Z) :- E(X,Y), E(Y,Z), E(X,Z)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	n1, _, err := Count(q, Options{Algorithm: AlgoGenericJoin})
	if err != nil {
		t.Fatal(err)
	}
	n2, _, err := Count(q, Options{Algorithm: AlgoLeapfrog})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("algorithms disagree: %d vs %d", n1, n2)
	}
	if MustParse("Q(A) :- R(A)") == nil {
		t.Fatal("MustParse")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestBounds(t *testing.T) {
	tri := dataset.TriangleAGMTight(100)
	q := triangleQuery(t, tri)
	agm, err := AGMBound(q)
	if err != nil {
		t.Fatal(err)
	}
	// AGM bound = (100)^{3/2} = 1000 = actual output (tight).
	if math.Abs(agm.Bound-1000) > 1 {
		t.Fatalf("AGM bound = %v", agm.Bound)
	}
	dc := ConstraintSet{
		Cardinality("R", []string{"A", "B"}, 100),
		Cardinality("S", []string{"B", "C"}, 100),
		Cardinality("T", []string{"A", "C"}, 100),
	}
	poly, err := PolymatroidBound(q, dc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poly.LogBound-agm.LogBound) > 1e-6 {
		t.Fatal("polymatroid must equal AGM under cardinality constraints")
	}
	mod, err := ModularBound(q, dc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mod.LogBound-agm.LogBound) > 1e-6 {
		t.Fatal("modular must equal AGM here")
	}
}

func TestBacktrackingWithExplicitConstraints(t *testing.T) {
	c := dataset.NewChain63(10, 3, 3, 3, 2)
	q, err := NewQuery([]string{"A", "B", "C", "D"}, []Atom{
		{Name: "R", Vars: []string{"A"}, Rel: c.R},
		{Name: "S", Vars: []string{"A", "B"}, Rel: c.S},
		{Name: "T", Vars: []string{"B", "C"}, Rel: c.T},
		{Name: "W", Vars: []string{"C", "A", "D"}, Rel: c.W},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc := ConstraintSet{
		Cardinality("R", []string{"A"}, float64(c.NA)),
		Degree("S", []string{"A"}, []string{"A", "B"}, float64(c.NBgA)),
		Degree("T", []string{"B"}, []string{"B", "C"}, float64(c.NCgB)),
		Degree("W", []string{"C"}, []string{"C", "A", "D"}, float64(c.NADgC)),
	}
	// Cyclic: Execute must repair internally.
	got, _, err := Execute(q, Options{Algorithm: AlgoBacktracking, Constraints: dc})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Execute(q, Options{Algorithm: AlgoGenericJoin})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("backtracking %d rows vs generic join %d", got.Len(), want.Len())
	}
	// MakeAcyclic is exposed.
	rep, err := MakeAcyclic(dc, q.Vars)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsAcyclic() {
		t.Fatal("MakeAcyclic result must be acyclic")
	}
}

func TestAlgorithmNames(t *testing.T) {
	for _, a := range []Algorithm{
		AlgoGenericJoin, AlgoLeapfrog, AlgoBacktracking, AlgoBinaryJoin, AlgoBinaryJoinProject,
	} {
		parsed, err := ParseAlgorithm(a.String())
		if err != nil || parsed != a {
			t.Fatalf("round trip failed for %v", a)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm String")
	}
	if _, _, err := Execute(&Query{}, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("Execute with unknown algorithm must fail")
	}
}
