// Package agg implements the aggregate-aware execution mode shared by
// Generic-Join and Leapfrog Triejoin: the level classification,
// variable sinking and subtree-count memoization that let COUNT,
// EXISTS and projection queries skip the full tuple enumeration the
// paper's algorithms are stated for.
//
// The observation is standard but powerful: relations are duplicate
// free sorted sets, so once the search has bound a prefix of the
// global variable order, the number of extensions contributed by an
// atom all of whose remaining trie levels bind variables private to
// that atom is exactly the atom's current row-range size — no
// recursion required. The classifier partitions the plan levels of a
// variable order into
//
//   - free-output levels: variables the caller wants enumerated (the
//     projection); the engine searches them exactly as before and
//     emits at the projection boundary;
//   - bound levels: variables that are projected away but shared by
//     several atoms; they must still be searched so the join is
//     constrained correctly, but nothing is emitted per value;
//   - free-counted levels: the maximal suffix in which every variable
//     is private to one atom (plus the deepest level of a counting
//     run, whose subtree cardinality is the size of its intersection).
//     The engine multiplies subtree cardinalities here instead of
//     recursing.
//
// A per-(trie,prefix) memo table caches subtree counts at bound
// levels: the count below depth d is a pure function of the row
// ranges of the atoms still active at depth d, so shared suffixes —
// different prefixes that narrow the active atoms to identical ranges
// — are counted once. The memo disables itself adaptively when the
// workload never revisits a range signature.
//
// The package is engine-agnostic: it knows variable orders and atom
// schemas, not tries or iterators. The engines (internal/core,
// internal/lftj) drive their own recursions and consult the
// Classification and Memo.
package agg

import (
	"encoding/binary"
	"fmt"
)

// Mode selects what the aggregate-aware engines compute.
type Mode int

// Available modes.
const (
	// ModeEnumerate enumerates the distinct projected tuples (Spec.Project
	// must be set): the engine searches the projected prefix and emits a
	// tuple per prefix that has at least one extension.
	ModeEnumerate Mode = iota
	// ModeCount counts. With a nil Spec.Project it counts full join
	// results (multiplicities included) by multiplying free-counted
	// subtree cardinalities; with Project set it counts distinct
	// projected tuples.
	ModeCount
	// ModeExists reports whether the join is non-empty, short-circuiting
	// on the first witness.
	ModeExists
)

func (m Mode) String() string {
	switch m {
	case ModeEnumerate:
		return "enumerate"
	case ModeCount:
		return "count"
	case ModeExists:
		return "exists"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec is an aggregate request: the mode plus the projection set (nil
// means no projection — full tuples for ModeEnumerate, full
// multiplicity for ModeCount).
type Spec struct {
	Mode    Mode
	Project []string
}

// Class classifies one plan level for the aggregate-aware engines.
type Class int

// Available classes. See the package comment for semantics.
const (
	// Bound levels are searched per value but not emitted.
	Bound Class = iota
	// FreeOutput levels are searched and their values emitted.
	FreeOutput
	// FreeCounted levels are never recursed into: their subtree
	// cardinalities are multiplied (or, at the deepest level, the
	// intersection size is added) instead.
	FreeCounted
)

func (c Class) String() string {
	switch c {
	case Bound:
		return "bound"
	case FreeOutput:
		return "free-output"
	case FreeCounted:
		return "free-counted"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classification is the per-plan-level analysis the engines execute
// against. It is immutable after Classify and safe to share across
// worker goroutines.
type Classification struct {
	// Spec is the request the classification was computed for.
	Spec Spec
	// Order is the (already sunk) global variable order.
	Order []string
	// Classes[d] classifies level d.
	Classes []Class
	// EnumEnd is the number of leading FreeOutput levels — the
	// projection boundary at which ModeEnumerate emits and
	// ModeCount-with-projection counts. Zero without a projection.
	EnumEnd int
	// CountFrom is the first level of the maximal suffix in which every
	// variable occurs in exactly one atom (and none is projected): from
	// this depth the engines multiply per-atom range sizes instead of
	// recursing. len(Order) when no such suffix exists.
	CountFrom int
	// ActiveAtoms[d] lists the atoms with at least one variable at a
	// level >= d — exactly the atoms whose row ranges determine the
	// subtree result below depth d (memo key and multiplication
	// operands).
	ActiveAtoms [][]int
	// BoundLevel[d][j] is, for atom ActiveAtoms[d][j], the number of
	// its variables bound before depth d — i.e. the trie level whose
	// range stack entry holds the atom's current row range.
	BoundLevel [][]int
	// MemoDepths[d] reports whether the engines should consult the
	// subtree memo at depth d (bound levels below the projection
	// boundary, excluding the root and the tail level).
	MemoDepths []bool
}

// Classify analyzes order for the given spec. atoms[i] lists the
// variables of atom i in schema order; order must cover every variable
// of every atom. For specs with a projection the projected variables
// must form a prefix of order (apply Sink first); Classify returns an
// error otherwise.
func Classify(order []string, atoms [][]string, spec Spec) (*Classification, error) {
	n := len(order)
	pos := make(map[string]int, n)
	for d, v := range order {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("agg: order repeats variable %q", v)
		}
		pos[v] = d
	}
	if spec.Mode == ModeEnumerate && len(spec.Project) == 0 {
		return nil, fmt.Errorf("agg: enumerate mode requires a projection")
	}
	projected := make(map[string]bool, len(spec.Project))
	for _, v := range spec.Project {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("agg: projected variable %q is not in the order", v)
		}
		if projected[v] {
			return nil, fmt.Errorf("agg: projection repeats variable %q", v)
		}
		projected[v] = true
	}
	enumEnd := len(spec.Project)
	for _, v := range spec.Project {
		if pos[v] >= enumEnd {
			return nil, fmt.Errorf("agg: projected variable %q at level %d is outside the projected prefix (order must be sunk)", v, pos[v])
		}
	}

	// participants[d] = atoms containing order[d]; lastLevel[i] = the
	// deepest global level of atom i.
	numParticipants := make([]int, n)
	lastLevel := make([]int, len(atoms))
	for i, vars := range atoms {
		lastLevel[i] = -1
		for _, v := range vars {
			d, ok := pos[v]
			if !ok {
				return nil, fmt.Errorf("agg: atom %d variable %q is not in the order", i, v)
			}
			numParticipants[d]++
			if d > lastLevel[i] {
				lastLevel[i] = d
			}
		}
	}

	countFrom := n
	for d := n - 1; d >= enumEnd; d-- {
		if numParticipants[d] != 1 {
			break
		}
		countFrom = d
	}

	c := &Classification{
		Spec:        spec,
		Order:       append([]string(nil), order...),
		Classes:     make([]Class, n),
		EnumEnd:     enumEnd,
		CountFrom:   countFrom,
		ActiveAtoms: make([][]int, n),
		BoundLevel:  make([][]int, n),
		MemoDepths:  make([]bool, n),
	}
	for d := 0; d < n; d++ {
		switch {
		case d < enumEnd:
			c.Classes[d] = FreeOutput
		case d >= countFrom || d == n-1:
			// The deepest level of a counting or existence check is
			// free-counted even when shared: its subtree cardinality is
			// the size of the level intersection, no recursion needed.
			c.Classes[d] = FreeCounted
		default:
			c.Classes[d] = Bound
		}
		for i := range atoms {
			if lastLevel[i] >= d {
				c.ActiveAtoms[d] = append(c.ActiveAtoms[d], i)
				bound := 0
				for _, v := range atoms[i] {
					if pos[v] < d {
						bound++
					}
				}
				c.BoundLevel[d] = append(c.BoundLevel[d], bound)
			}
		}
		c.MemoDepths[d] = d > 0 && d >= enumEnd && c.Classes[d] == Bound
	}
	return c, nil
}

// Sink reorders order so that the variables the aggregate-aware
// engines never need to enumerate move, stably, to the end:
//
//   - with a projection (ModeEnumerate, or ModeCount over distinct
//     projected tuples) every non-projected variable is sunk —
//     projected variables keep their relative order up front, then the
//     sunk shared variables, then the sunk single-atom variables;
//   - without a projection (full ModeCount, ModeExists) the variables
//     occurring in exactly one atom are sunk, enabling the
//     free-counted suffix multiplication.
//
// The result is a permutation of order; passing it to the planner's
// CheckOrder stays valid. Sink is idempotent: re-sinking a sunk order
// returns it unchanged, so the planner and the engines can both apply
// it without coordinating.
func Sink(order []string, atoms [][]string, spec Spec) []string {
	keep, sunk := SinkPartition(order, atoms, spec)
	out := make([]string, 0, len(order))
	out = append(out, keep...)
	out = append(out, sunk...)
	return out
}

// SinkPartition splits order into the kept prefix and the sunk suffix
// Sink would concatenate; the cost-based planner enumerates orders
// over the kept variables only, with the sunk sequence fixed behind
// them.
func SinkPartition(order []string, atoms [][]string, spec Spec) (keep, sunk []string) {
	occurrences := make(map[string]int)
	for _, vars := range atoms {
		for _, v := range vars {
			occurrences[v]++
		}
	}
	projected := make(map[string]bool, len(spec.Project))
	for _, v := range spec.Project {
		projected[v] = true
	}
	keep = make([]string, 0, len(order))
	var sharedSunk, privateSunk []string
	for _, v := range order {
		switch {
		case len(spec.Project) > 0 && projected[v]:
			keep = append(keep, v)
		case len(spec.Project) > 0:
			// Projected away: sink. Shared variables first so the
			// free-counted suffix is as long as possible.
			if occurrences[v] > 1 {
				sharedSunk = append(sharedSunk, v)
			} else {
				privateSunk = append(privateSunk, v)
			}
		case occurrences[v] == 1:
			privateSunk = append(privateSunk, v)
		default:
			keep = append(keep, v)
		}
	}
	return keep, append(sharedSunk, privateSunk...)
}

// Memo caches subtree results keyed by the row-range signature of the
// active atoms at a depth — the per-(trie,prefix) table that lets
// shared suffixes be counted once. It is single-goroutine state: the
// sharded engines give each chunk its own Memo, so results stay
// deterministic for a fixed worker count.
//
// The memo watches its own hit rate and stops probing (and inserting)
// once a workload has demonstrated it never revisits a signature, so
// memo upkeep cannot asymptotically slow a memo-hostile query.
type Memo struct {
	m      map[string]int64
	key    []byte
	probes uint64
	hits   uint64
	off    bool
}

// Memo tuning: after disableCheckAfter probes the memo turns itself
// off unless at least 1/disableHitFraction of probes hit; maxEntries
// bounds memory on adversarial workloads.
const (
	disableCheckAfter  = 1 << 12
	disableHitFraction = 32
	maxEntries         = 1 << 20
)

// NewMemo returns an empty memo.
func NewMemo() *Memo { return &Memo{m: make(map[string]int64)} }

// Mul multiplies two non-negative counts, reporting overflow instead
// of wrapping: a free-counted product over a handful of large private
// ranges can exceed int64 in one step (a cross product of five 100k
// relations is 10^25), and a silently wrapped count would violate the
// engines' identical-to-enumeration contract.
func Mul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// ErrCountOverflow is returned by the counting engines when a result
// cardinality exceeds int64.
var ErrCountOverflow = fmt.Errorf("agg: result count overflows int64")

// Enabled reports whether the memo is still probing.
func (m *Memo) Enabled() bool {
	if m == nil || m.off {
		return false
	}
	if m.probes >= disableCheckAfter && m.hits*disableHitFraction < m.probes {
		m.off = true
		return false
	}
	return true
}

// Hits returns the number of successful probes.
func (m *Memo) Hits() uint64 { return m.hits }

// Key builds the lookup key for depth d from the active atoms' row
// ranges, given as (lo, hi) pairs. The returned slice is reused by the
// next Key call; Get/Put must be called before then.
func (m *Memo) Key(d int, ranges []int) []byte {
	k := m.key[:0]
	k = binary.AppendUvarint(k, uint64(d))
	for _, r := range ranges {
		k = binary.AppendUvarint(k, uint64(r))
	}
	m.key = k
	return k
}

// Get looks up a previously stored subtree result.
func (m *Memo) Get(key []byte) (int64, bool) {
	m.probes++
	v, ok := m.m[string(key)]
	if ok {
		m.hits++
	}
	return v, ok
}

// Put stores a subtree result.
func (m *Memo) Put(key []byte, v int64) {
	if len(m.m) >= maxEntries {
		return
	}
	m.m[string(key)] = v
}
