package agg

import (
	"fmt"
	"reflect"
	"testing"
)

// triangleAtoms is R(A,B), S(B,C), T(A,C).
var triangleAtoms = [][]string{{"A", "B"}, {"B", "C"}, {"A", "C"}}

// path4Atoms is E1(A,B), E2(B,C), E3(C,D).
var path4Atoms = [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}}

func TestClassifyTriangleCount(t *testing.T) {
	c, err := Classify([]string{"A", "B", "C"}, triangleAtoms, Spec{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	// Every variable is shared by two atoms: no multiplicative suffix,
	// but the deepest level is still counted from its intersection.
	if c.CountFrom != 3 {
		t.Errorf("CountFrom = %d, want 3", c.CountFrom)
	}
	want := []Class{Bound, Bound, FreeCounted}
	if !reflect.DeepEqual(c.Classes, want) {
		t.Errorf("Classes = %v, want %v", c.Classes, want)
	}
	if c.EnumEnd != 0 {
		t.Errorf("EnumEnd = %d, want 0", c.EnumEnd)
	}
	// All three atoms stay active through level 2 (each has a level-2
	// variable except R, which ends at level 1).
	if got := c.ActiveAtoms[2]; !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("ActiveAtoms[2] = %v, want [1 2]", got)
	}
	// At depth 2, S and T each have one variable bound.
	if got := c.BoundLevel[2]; !reflect.DeepEqual(got, []int{1, 1}) {
		t.Errorf("BoundLevel[2] = %v, want [1 1]", got)
	}
	if c.MemoDepths[0] || !c.MemoDepths[1] || c.MemoDepths[2] {
		t.Errorf("MemoDepths = %v, want [false true false]", c.MemoDepths)
	}
}

func TestClassifyPathCountSunk(t *testing.T) {
	spec := Spec{Mode: ModeCount}
	sunk := Sink([]string{"A", "B", "C", "D"}, path4Atoms, spec)
	// A and D occur in one atom each: they sink behind the shared B, C.
	if want := []string{"B", "C", "A", "D"}; !reflect.DeepEqual(sunk, want) {
		t.Fatalf("Sink = %v, want %v", sunk, want)
	}
	c, err := Classify(sunk, path4Atoms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.CountFrom != 2 {
		t.Errorf("CountFrom = %d, want 2", c.CountFrom)
	}
	want := []Class{Bound, Bound, FreeCounted, FreeCounted}
	if !reflect.DeepEqual(c.Classes, want) {
		t.Errorf("Classes = %v, want %v", c.Classes, want)
	}
	// At the multiplication point (depth 2) all three atoms are active:
	// E1 and E3 each contribute a range product factor, E2 is fully
	// bound after depth 2... E2's last variable C is at level 1, so it
	// is inactive from depth 2 on.
	if got := c.ActiveAtoms[2]; !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("ActiveAtoms[2] = %v, want [0 2]", got)
	}
	if got := c.BoundLevel[2]; !reflect.DeepEqual(got, []int{1, 1}) {
		t.Errorf("BoundLevel[2] = %v, want [1 1]", got)
	}
}

func TestClassifyProjection(t *testing.T) {
	spec := Spec{Mode: ModeEnumerate, Project: []string{"A", "B"}}
	order := Sink([]string{"A", "B", "C", "D"}, path4Atoms, spec)
	if want := []string{"A", "B", "C", "D"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("Sink = %v, want %v", order, want)
	}
	c, err := Classify(order, path4Atoms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.EnumEnd != 2 {
		t.Errorf("EnumEnd = %d, want 2", c.EnumEnd)
	}
	want := []Class{FreeOutput, FreeOutput, Bound, FreeCounted}
	if !reflect.DeepEqual(c.Classes, want) {
		t.Errorf("Classes = %v, want %v", c.Classes, want)
	}
}

func TestClassifyProjectionSinksShared(t *testing.T) {
	// Projecting the endpoints away: the shared B, C sink ahead of the
	// single-atom D so the counted suffix is maximal.
	spec := Spec{Mode: ModeEnumerate, Project: []string{"A"}}
	order := Sink([]string{"A", "B", "C", "D"}, path4Atoms, spec)
	if want := []string{"A", "B", "C", "D"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("Sink = %v, want %v", order, want)
	}
	spec2 := Spec{Mode: ModeEnumerate, Project: []string{"D"}}
	order2 := Sink([]string{"A", "B", "C", "D"}, path4Atoms, spec2)
	if want := []string{"D", "B", "C", "A"}; !reflect.DeepEqual(order2, want) {
		t.Fatalf("Sink = %v, want %v", order2, want)
	}
}

func TestClassifyErrors(t *testing.T) {
	if _, err := Classify([]string{"A", "A"}, triangleAtoms, Spec{Mode: ModeCount}); err == nil {
		t.Error("duplicate order variable not rejected")
	}
	if _, err := Classify([]string{"A", "B", "C"}, triangleAtoms, Spec{Mode: ModeEnumerate}); err == nil {
		t.Error("enumerate without projection not rejected")
	}
	if _, err := Classify([]string{"A", "B", "C"}, triangleAtoms,
		Spec{Mode: ModeEnumerate, Project: []string{"X"}}); err == nil {
		t.Error("unknown projected variable not rejected")
	}
	if _, err := Classify([]string{"A", "B", "C"}, triangleAtoms,
		Spec{Mode: ModeEnumerate, Project: []string{"A", "A"}}); err == nil {
		t.Error("duplicate projected variable not rejected")
	}
	// Projection must be a prefix: B,C projected but order starts A.
	if _, err := Classify([]string{"A", "B", "C"}, triangleAtoms,
		Spec{Mode: ModeEnumerate, Project: []string{"B", "C"}}); err == nil {
		t.Error("non-prefix projection not rejected")
	}
	if _, err := Classify([]string{"A", "B"}, triangleAtoms, Spec{Mode: ModeCount}); err == nil {
		t.Error("order missing an atom variable not rejected")
	}
}

func TestMemoRoundTrip(t *testing.T) {
	m := NewMemo()
	k := m.Key(2, []int{0, 10, 5, 9})
	if _, ok := m.Get(k); ok {
		t.Fatal("empty memo reported a hit")
	}
	m.Put(k, 42)
	k2 := m.Key(2, []int{0, 10, 5, 9})
	v, ok := m.Get(k2)
	if !ok || v != 42 {
		t.Fatalf("Get = %d,%v after Put 42", v, ok)
	}
	// Same ranges at a different depth are a different subtree.
	k3 := m.Key(3, []int{0, 10, 5, 9})
	if _, ok := m.Get(k3); ok {
		t.Fatal("depth is not part of the key")
	}
	if m.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", m.Hits())
	}
}

func TestMemoAdaptiveDisable(t *testing.T) {
	m := NewMemo()
	for i := 0; i < disableCheckAfter+1; i++ {
		if !m.Enabled() {
			break
		}
		k := m.Key(1, []int{i, i + 1})
		if _, ok := m.Get(k); !ok {
			m.Put(k, 1)
		}
	}
	if m.Enabled() {
		t.Fatal("memo stayed enabled despite a zero hit rate")
	}
	// A memo with a healthy hit rate stays on.
	h := NewMemo()
	k := h.Key(1, []int{1, 2})
	h.Put(k, 7)
	for i := 0; i < disableCheckAfter+1; i++ {
		h.Get(h.Key(1, []int{1, 2}))
	}
	if !h.Enabled() {
		t.Fatal("memo disabled despite a 100% hit rate")
	}
}

func TestModeAndClassStrings(t *testing.T) {
	for _, c := range []struct {
		got, want string
	}{
		{ModeEnumerate.String(), "enumerate"},
		{ModeCount.String(), "count"},
		{ModeExists.String(), "exists"},
		{Mode(99).String(), "Mode(99)"},
		{Bound.String(), "bound"},
		{FreeOutput.String(), "free-output"},
		{FreeCounted.String(), "free-counted"},
		{Class(99).String(), "Class(99)"},
	} {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestMulOverflow(t *testing.T) {
	const maxI64 = int64(^uint64(0) >> 1)
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, maxI64, 0, true},
		{maxI64, 0, 0, true},
		{1, maxI64, maxI64, true},
		{100000, 100000, 10000000000, true},
		{maxI64, 2, 0, false},
		{3037000500, 3037000500, 0, false}, // ~sqrt(2^63) squared overflows
	}
	for _, c := range cases {
		got, ok := Mul(c.a, c.b)
		if got != c.want || ok != c.ok {
			t.Errorf("Mul(%d, %d) = (%d, %v), want (%d, %v)", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestClassifyFullyFactorizable(t *testing.T) {
	// Cartesian product R(A) x S(B): both variables are private, the
	// whole order is a counted suffix.
	atoms := [][]string{{"A"}, {"B"}}
	c, err := Classify([]string{"A", "B"}, atoms, Spec{Mode: ModeCount})
	if err != nil {
		t.Fatal(err)
	}
	if c.CountFrom != 0 {
		t.Errorf("CountFrom = %d, want 0", c.CountFrom)
	}
	if got := fmt.Sprint(c.Classes); got != "[free-counted free-counted]" {
		t.Errorf("Classes = %s", got)
	}
}
