package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wcoj/internal/core"
	"wcoj/internal/relation"
)

func triangleQ(t testing.TB, seed int64, n, dom int) *core.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(name, a1, a2 string) *relation.Relation {
		b := relation.NewBuilder(name, a1, a2)
		for i := 0; i < n; i++ {
			b.Add(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		}
		return b.Build()
	}
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: mk("R", "A", "B")},
		{Name: "S", Vars: []string{"B", "C"}, Rel: mk("S", "B", "C")},
		{Name: "T", Vars: []string{"A", "C"}, Rel: mk("T", "A", "C")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestJoinOnlyMatchesGenericJoin(t *testing.T) {
	q := triangleQ(t, 1, 200, 15)
	want, _, err := core.GenericJoin(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := JoinOnly(q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("JoinOnly = %d rows, want %d", got.Len(), want.Len())
	}
	if stats.Intermediate < got.Len() {
		t.Fatal("intermediate must be at least the output size")
	}
}

func TestJoinProjectMatchesJoinOnly(t *testing.T) {
	q := triangleQ(t, 2, 150, 12)
	a, _, err := JoinOnly(q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := JoinProject(q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("join-project must compute the same result")
	}
}

func TestProjectionHead(t *testing.T) {
	// Chain query with head (A): join-project keeps intermediates
	// small by dropping finished variables.
	rng := rand.New(rand.NewSource(3))
	mk := func(name, a1, a2 string) *relation.Relation {
		b := relation.NewBuilder(name, a1, a2)
		for i := 0; i < 300; i++ {
			b.Add(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(10)))
		}
		return b.Build()
	}
	q, err := core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: mk("R", "A", "B")},
		{Name: "S", Vars: []string{"B", "C"}, Rel: mk("S", "B", "C")},
		{Name: "T", Vars: []string{"C", "D"}, Rel: mk("T", "C", "D")},
	})
	if err != nil {
		t.Fatal(err)
	}
	head := []string{"A"}
	order := []int{0, 1, 2}
	jo, joStats, err := JoinOnly(q, head, order)
	if err != nil {
		t.Fatal(err)
	}
	jp, jpStats, err := JoinProject(q, head, order)
	if err != nil {
		t.Fatal(err)
	}
	if !jo.Equal(jp) {
		t.Fatal("projected heads must agree")
	}
	if jpStats.Intermediate > joStats.Intermediate {
		t.Fatalf("join-project intermediate %d should be ≤ join-only %d",
			jpStats.Intermediate, joStats.Intermediate)
	}
}

func TestOrderValidation(t *testing.T) {
	q := triangleQ(t, 4, 20, 5)
	if _, _, err := JoinOnly(q, nil, []int{0, 1}); err == nil {
		t.Fatal("short order must fail")
	}
	if _, _, err := JoinOnly(q, nil, []int{0, 0, 1}); err == nil {
		t.Fatal("repeated order must fail")
	}
	if _, _, err := JoinOnly(q, nil, []int{0, 1, 9}); err == nil {
		t.Fatal("out-of-range order must fail")
	}
}

func TestGreedyOrder(t *testing.T) {
	q := triangleQ(t, 5, 50, 8)
	ord := GreedyOrder(q)
	for i := 1; i < len(ord); i++ {
		if q.Atoms[ord[i-1]].Rel.Len() > q.Atoms[ord[i]].Rel.Len() {
			t.Fatalf("greedy order %v is not ascending by size", ord)
		}
	}
}

func TestBestPairwisePlan(t *testing.T) {
	q := triangleQ(t, 6, 100, 10)
	want, _, err := core.GenericJoin(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, order, err := BestPairwisePlan(q, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("best pairwise plan must compute the join")
	}
	if len(order) != 3 || stats == nil {
		t.Fatalf("order = %v", order)
	}
	// Oracle order is at least as good as greedy.
	_, greedyStats, err := JoinOnly(q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Intermediate > greedyStats.Intermediate {
		t.Fatal("exhaustive plan must not be worse than greedy")
	}
}

// Property: all baseline plans agree with Generic-Join on random
// triangle instances.
func TestPropertyBaselinesAgree(t *testing.T) {
	f := func(seed int64) bool {
		q := triangleQ(t, seed, 40, 6)
		want, _, err := core.GenericJoin(q, core.GenericJoinOptions{})
		if err != nil {
			return false
		}
		jo, _, err := JoinOnly(q, nil, nil)
		if err != nil {
			return false
		}
		jp, _, err := JoinProject(q, nil, nil)
		if err != nil {
			return false
		}
		bp, _, _, err := BestPairwisePlan(q, nil, true)
		if err != nil {
			return false
		}
		return jo.Equal(want) && jp.Equal(want) && bp.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
