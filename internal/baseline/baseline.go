// Package baseline implements the one-pair-at-a-time join paradigm the
// paper's worst-case optimal algorithms are compared against:
// left-deep join-only plans, join-project plans (projecting onto the
// variables still needed, the Grohe–Marx style plan), and simple plan
// choosers. On AGM-tight instances these plans are provably
// asymptotically slower (e.g. Θ(N²) vs Θ(N^{3/2}) on the triangle);
// the benchmark harness measures exactly that gap.
package baseline

import (
	"fmt"
	"sort"

	"wcoj/internal/core"
	"wcoj/internal/relation"
)

// JoinOnly evaluates the atoms with a left-deep plan of natural hash
// joins in the given atom order (indexes into q.Atoms; nil means the
// greedy ascending-size order), projecting onto head at the end.
// head nil means all query variables. Stats.Intermediate records the
// largest intermediate relation — the quantity that blows up to Θ(N²)
// on hard triangle instances.
func JoinOnly(q *core.Query, head []string, order []int) (*relation.Relation, *core.Stats, error) {
	return leftDeep(q, head, order, false)
}

// JoinProject is JoinOnly with interleaved projections: after every
// binary join the intermediate is projected onto the variables that
// still matter (head variables plus variables of not-yet-joined
// atoms). Join-project plans strictly dominate join-only plans [12] —
// though on Loomis–Whitney queries they remain Ω(N^{1-1/k}) worse than
// worst-case optimal algorithms [51].
func JoinProject(q *core.Query, head []string, order []int) (*relation.Relation, *core.Stats, error) {
	return leftDeep(q, head, order, true)
}

func leftDeep(q *core.Query, head []string, order []int, project bool) (*relation.Relation, *core.Stats, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	if head == nil {
		head = q.Vars
	}
	if order == nil {
		order = GreedyOrder(q)
	}
	if len(order) != len(q.Atoms) {
		return nil, nil, fmt.Errorf("baseline: order covers %d of %d atoms", len(order), len(q.Atoms))
	}
	seen := make([]bool, len(q.Atoms))
	for _, i := range order {
		if i < 0 || i >= len(q.Atoms) || seen[i] {
			return nil, nil, fmt.Errorf("baseline: order %v is not a permutation of atoms", order)
		}
		seen[i] = true
	}

	stats := &core.Stats{}
	var cur *relation.Relation
	for step, ai := range order {
		a := q.Atoms[ai]
		r, err := a.Rel.Rename(a.Name, a.Vars...)
		if err != nil {
			return nil, nil, err
		}
		if cur == nil {
			cur = r
		} else {
			cur, err = relation.Join(cur, r)
			if err != nil {
				return nil, nil, err
			}
		}
		if cur.Len() > stats.Intermediate {
			stats.Intermediate = cur.Len()
		}
		if project && step < len(order)-1 {
			needed := neededVars(q, head, order[step+1:], cur.Attrs())
			if len(needed) < cur.Arity() {
				cur, err = cur.Project(needed...)
				if err != nil {
					return nil, nil, err
				}
			}
		}
	}
	out, err := cur.Project(head...)
	if err != nil {
		return nil, nil, err
	}
	out, err = out.Rename(q.OutputName(), head...)
	if err != nil {
		return nil, nil, err
	}
	stats.Output = out.Len()
	return out, stats, nil
}

// neededVars returns the attributes of cur that are either in the head
// or occur in a not-yet-joined atom.
func neededVars(q *core.Query, head []string, remaining []int, attrs []string) []string {
	keep := make(map[string]bool)
	for _, v := range head {
		keep[v] = true
	}
	for _, ai := range remaining {
		for _, v := range q.Atoms[ai].Vars {
			keep[v] = true
		}
	}
	var out []string
	for _, a := range attrs {
		if keep[a] {
			out = append(out, a)
		}
	}
	return out
}

// GreedyOrder returns atom indexes sorted by ascending relation size —
// the classic "smallest relation first" heuristic.
func GreedyOrder(q *core.Query) []int {
	order := make([]int, len(q.Atoms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return q.Atoms[order[x]].Rel.Len() < q.Atoms[order[y]].Rel.Len()
	})
	return order
}

// BestPairwisePlan tries every left-deep atom permutation (feasible for
// the ≤ 6-atom queries in this repository), returning the plan with
// the smallest maximal intermediate. It is the strongest member of the
// one-pair-at-a-time class we compare against: even with oracle
// ordering, binary plans cannot beat the Ω(N²) lower bound on
// AGM-tight triangle instances.
func BestPairwisePlan(q *core.Query, head []string, project bool) (*relation.Relation, *core.Stats, []int, error) {
	if len(q.Atoms) > 7 {
		return nil, nil, nil, fmt.Errorf("baseline: exhaustive planning capped at 7 atoms, got %d", len(q.Atoms))
	}
	var bestRel *relation.Relation
	var bestStats *core.Stats
	var bestOrder []int
	perm := make([]int, len(q.Atoms))
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(perm) {
			ord := append([]int(nil), perm...)
			var rel *relation.Relation
			var st *core.Stats
			var err error
			if project {
				rel, st, err = JoinProject(q, head, ord)
			} else {
				rel, st, err = JoinOnly(q, head, ord)
			}
			if err != nil {
				return err
			}
			if bestStats == nil || st.Intermediate < bestStats.Intermediate {
				bestRel, bestStats, bestOrder = rel, st, ord
			}
			return nil
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := rec(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, nil, nil, err
	}
	return bestRel, bestStats, bestOrder, nil
}
