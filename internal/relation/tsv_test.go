package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 2}, []Value{3, 4}, []Value{-5, 0})
	var buf bytes.Buffer
	if err := WriteTSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf, "R")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatalf("round trip: %v vs %v", got.Tuples(), r.Tuples())
	}
}

func TestReadTSVCommentsAndBlanks(t *testing.T) {
	src := "# comment\nA\tB\n\n1\t2\n# more\n3\t4\n"
	r, err := ReadTSV(strings.NewReader(src), "R")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Attrs()[1] != "B" {
		t.Fatalf("parsed: %v", r)
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader(""), "R"); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := ReadTSV(strings.NewReader("A\tB\n1\n"), "R"); err == nil {
		t.Fatal("field count mismatch must fail")
	}
	if _, err := ReadTSV(strings.NewReader("A\nx\n"), "R"); err == nil {
		t.Fatal("non-integer must fail")
	}
}
