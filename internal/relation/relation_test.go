package relation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustRel(t *testing.T, name string, attrs []string, rows ...[]Value) *Relation {
	t.Helper()
	b := NewBuilder(name, attrs...)
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderSortDedup(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{3, 1}, []Value{1, 2}, []Value{3, 1}, []Value{1, 1}, []Value{2, 9})
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (dedup)", r.Len())
	}
	want := []Tuple{{1, 1}, {1, 2}, {2, 9}, {3, 1}}
	got := r.Tuples()
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBuilderArityError(t *testing.T) {
	b := NewBuilder("R", "A", "B")
	if err := b.Add(1); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestEmptyAndZeroArity(t *testing.T) {
	e := Empty("E", "A")
	if e.Len() != 0 || e.Arity() != 1 {
		t.Fatalf("empty: %v", e)
	}
	z := NewBuilder("Z").Build()
	if z.Arity() != 0 || z.Len() != 0 {
		t.Fatalf("zero-arity: %v", z)
	}
}

func TestContains(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 1}, []Value{1, 2}, []Value{2, 9}, []Value{3, 1})
	cases := []struct {
		t    Tuple
		want bool
	}{
		{Tuple{1, 1}, true}, {Tuple{1, 2}, true}, {Tuple{2, 9}, true},
		{Tuple{3, 1}, true}, {Tuple{1, 3}, false}, {Tuple{0, 0}, false},
		{Tuple{4, 1}, false}, {Tuple{2, 1}, false}, {Tuple{1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.t); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestProject(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 1}, []Value{1, 2}, []Value{2, 9})
	p, err := r.Project("A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("π_A has %d rows, want 2", p.Len())
	}
	if _, err := r.Project("Z"); err == nil {
		t.Fatal("expected error projecting missing attribute")
	}
	// Projection can reorder attributes.
	q, err := r.Project("B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if q.Attrs()[0] != "B" || q.Len() != 3 {
		t.Fatalf("π_{B,A}: %v len=%d", q.Attrs(), q.Len())
	}
}

func TestSelect(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 1}, []Value{1, 2}, []Value{2, 9}, []Value{3, 1})
	s, err := r.Select("A", 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("σ_{A=1} has %d rows, want 2", s.Len())
	}
	s2, err := r.Select("B", 1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("σ_{B=1} has %d rows, want 2", s2.Len())
	}
	s3, err := r.Select("A", 99)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 0 {
		t.Fatalf("σ_{A=99} has %d rows, want 0", s3.Len())
	}
	if _, err := r.Select("Z", 0); err == nil {
		t.Fatal("expected error selecting missing attribute")
	}
}

func TestSelectTuple(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B", "C"},
		[]Value{1, 1, 5}, []Value{1, 2, 6}, []Value{1, 1, 7})
	s, err := r.SelectTuple([]string{"A", "B"}, Tuple{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("σ has %d rows, want 2", s.Len())
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	r := mustRel(t, "R", []string{"A"}, []Value{1}, []Value{2}, []Value{3})
	s := mustRel(t, "S", []string{"A"}, []Value{2}, []Value{3}, []Value{4})
	u, err := r.Union(s)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4 {
		t.Fatalf("union len = %d, want 4", u.Len())
	}
	in, err := r.Intersect(s)
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 2 {
		t.Fatalf("intersect len = %d, want 2", in.Len())
	}
	d, err := r.Diff(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Col(0)[0] != 1 {
		t.Fatalf("diff = %v", d.Tuples())
	}
	bad := mustRel(t, "B", []string{"X"}, []Value{1})
	if _, err := r.Union(bad); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestSemijoin(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 1}, []Value{2, 2}, []Value{3, 3})
	s := mustRel(t, "S", []string{"B", "C"},
		[]Value{1, 10}, []Value{3, 30})
	sj, err := r.Semijoin(s)
	if err != nil {
		t.Fatal(err)
	}
	if sj.Len() != 2 {
		t.Fatalf("semijoin len = %d, want 2", sj.Len())
	}
	// Disjoint schemas: semijoin degenerates to emptiness test on s.
	d := mustRel(t, "D", []string{"X"}, []Value{9})
	sj2, err := r.Semijoin(d)
	if err != nil {
		t.Fatal(err)
	}
	if sj2.Len() != r.Len() {
		t.Fatalf("semijoin with disjoint non-empty = %d rows, want %d", sj2.Len(), r.Len())
	}
	empty := Empty("E", "X")
	sj3, err := r.Semijoin(empty)
	if err != nil {
		t.Fatal(err)
	}
	if sj3.Len() != 0 {
		t.Fatalf("semijoin with disjoint empty = %d rows, want 0", sj3.Len())
	}
}

func TestPartition(t *testing.T) {
	// A=1 appears 3 times (heavy at threshold 2), A=2 once.
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 1}, []Value{1, 2}, []Value{1, 3}, []Value{2, 1})
	h, l, err := r.Partition([]string{"A"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 || l.Len() != 1 {
		t.Fatalf("heavy=%d light=%d, want 3/1", h.Len(), l.Len())
	}
	if h.Len()+l.Len() != r.Len() {
		t.Fatal("partition must cover the relation")
	}
	if _, _, err := r.Partition([]string{"Z"}, 1); err == nil {
		t.Fatal("expected error partitioning on missing attribute")
	}
}

func TestMaxDegree(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 1}, []Value{1, 2}, []Value{1, 3}, []Value{2, 1})
	d, err := r.MaxDegree([]string{"A"}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("deg(AB|A) = %d, want 3", d)
	}
	c, err := r.MaxDegree(nil, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Fatalf("deg(AB|∅) = %d, want 4 (cardinality)", c)
	}
	one, err := r.MaxDegree([]string{"A"}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if one != 1 {
		t.Fatalf("deg(A|A) = %d, want 1", one)
	}
}

func TestSortedBy(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 9}, []Value{2, 1}, []Value{2, 3})
	s, err := r.SortedBy([]string{"B", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Attrs()[0] != "B" {
		t.Fatalf("attrs = %v", s.Attrs())
	}
	got := s.Tuples()
	want := []Tuple{{1, 2}, {3, 2}, {9, 1}}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := r.SortedBy([]string{"A"}); err == nil {
		t.Fatal("expected error for wrong-length order")
	}
	if _, err := r.SortedBy([]string{"A", "A"}); err == nil {
		t.Fatal("expected error for non-permutation")
	}
}

func TestRename(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"}, []Value{1, 2})
	s, err := r.Rename("S", "X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "S" || s.Attrs()[0] != "X" || s.Len() != 1 {
		t.Fatalf("rename: %v", s)
	}
	if _, err := r.Rename("S", "X"); err == nil {
		t.Fatal("expected arity error on rename")
	}
}

func TestHashIndex(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 1}, []Value{1, 2}, []Value{2, 9})
	ix := NewHashIndex(r, []string{"A"})
	if got := len(ix.Probe(Tuple{1})); got != 2 {
		t.Fatalf("probe A=1: %d rows, want 2", got)
	}
	if ix.Probe(Tuple{7}) != nil {
		t.Fatal("probe A=7 should be nil")
	}
	if !ix.Contains(Tuple{2}) || ix.Contains(Tuple{3}) {
		t.Fatal("Contains mismatch")
	}
	if ix.MaxGroup() != 2 || ix.Groups() != 2 {
		t.Fatalf("MaxGroup=%d Groups=%d", ix.MaxGroup(), ix.Groups())
	}
	if ix.Relation() != r {
		t.Fatal("Relation() identity")
	}
}

func TestIntersectSorted(t *testing.T) {
	a := []Value{1, 3, 5, 7, 9}
	b := []Value{3, 4, 5, 9, 11}
	got := IntersectSorted(nil, a, b)
	want := []Value{3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Galloping path: very unbalanced sizes.
	big := make([]Value, 1000)
	for i := range big {
		big[i] = Value(2 * i)
	}
	small := []Value{0, 3, 500, 998}
	g := IntersectSorted(nil, small, big)
	if len(g) != 3 { // 0, 500, 998 are even
		t.Fatalf("gallop intersect: %v", g)
	}
	if out := IntersectSorted(nil, nil, big); len(out) != 0 {
		t.Fatal("empty ∩ big must be empty")
	}
}

func TestIntersectMany(t *testing.T) {
	got := IntersectMany(
		[]Value{1, 2, 3, 4, 5},
		[]Value{2, 3, 5, 8},
		[]Value{0, 2, 5, 9},
	)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("got %v, want [2 5]", got)
	}
	if got := IntersectMany(); got != nil {
		t.Fatal("no lists should yield nil")
	}
	if got := IntersectMany([]Value{7}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single list: %v", got)
	}
}

// Property: IntersectSorted agrees with a map-based reference.
func TestPropertyIntersect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []Value {
			n := rng.Intn(50)
			m := make(map[Value]bool)
			for i := 0; i < n; i++ {
				m[Value(rng.Intn(40))] = true
			}
			out := make([]Value, 0, len(m))
			for v := range m {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := mk(), mk()
		got := IntersectSorted(nil, a, b)
		inB := make(map[Value]bool, len(b))
		for _, v := range b {
			inB[v] = true
		}
		var want []Value
		for _, v := range a {
			if inB[v] {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build is idempotent — rebuilding from Tuples() yields an
// equal relation, and output is sorted & deduplicated.
func TestPropertyBuildIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("R", "A", "B")
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			if err := b.Add(Value(rng.Intn(10)), Value(rng.Intn(10))); err != nil {
				return false
			}
		}
		r := b.Build()
		// Sorted strictly increasing (dedup).
		var prev Tuple
		for i := 0; i < r.Len(); i++ {
			cur := r.Tuple(i, nil)
			if prev != nil && prev.Compare(cur) >= 0 {
				return false
			}
			prev = cur
		}
		r2 := New("R", []string{"A", "B"}, r.Tuples())
		return r.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.ID("alice")
	b := d.ID("bob")
	if a == b {
		t.Fatal("distinct strings must get distinct ids")
	}
	if d.ID("alice") != a {
		t.Fatal("interning must be stable")
	}
	if d.String(a) != "alice" || d.String(b) != "bob" {
		t.Fatal("reverse lookup mismatch")
	}
	if d.String(99) != "#99" {
		t.Fatalf("unknown value: %q", d.String(99))
	}
	if v, ok := d.Lookup("bob"); !ok || v != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := d.Lookup("carol"); ok {
		t.Fatal("Lookup of missing string should fail")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	r := mustRel(t, "R", []string{"A"}, []Value{1}, []Value{2})
	s := mustRel(t, "S", []string{"A"}, []Value{3})
	db.Put(r)
	db.Put(s)
	if got, ok := db.Get("R"); !ok || got != r {
		t.Fatal("Get R failed")
	}
	if _, err := db.MustGet("T"); err == nil {
		t.Fatal("MustGet of missing relation should error")
	}
	if got, err := db.MustGet("S"); err != nil || got != s {
		t.Fatal("MustGet S failed")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Fatalf("Names = %v", names)
	}
	if db.Size() != 3 || db.MaxRelationSize() != 2 {
		t.Fatalf("Size=%d Max=%d", db.Size(), db.MaxRelationSize())
	}
	if db.Dict() == nil {
		t.Fatal("Dict must be non-nil")
	}
}

func TestTupleBasics(t *testing.T) {
	a := Tuple{1, 2, 3}
	if a.String() != "(1, 2, 3)" {
		t.Fatalf("String = %q", a.String())
	}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone must copy")
	}
	if (Tuple{1, 2}).Compare(Tuple{1, 2, 3}) != -1 {
		t.Fatal("shorter prefix should compare less")
	}
	if (Tuple{1, 2, 3}).Compare(Tuple{1, 2}) != 1 {
		t.Fatal("longer should compare greater")
	}
}

func TestRelationStringers(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"}, []Value{1, 2})
	if r.String() != "R(A,B)[1]" {
		t.Fatalf("String = %q", r.String())
	}
	if !r.HasAttr("A") || r.HasAttr("Z") {
		t.Fatal("HasAttr mismatch")
	}
	if _, ok := r.ColByName("B"); !ok {
		t.Fatal("ColByName B failed")
	}
	if _, ok := r.ColByName("Z"); ok {
		t.Fatal("ColByName Z should fail")
	}
}
