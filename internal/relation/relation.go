package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is an immutable, lexicographically sorted, duplicate-free
// set of tuples over a named attribute schema. Storage is column-major.
type Relation struct {
	name  string
	attrs []string
	cols  [][]Value // len(cols) == arity; all columns have equal length
	n     int
}

// New builds a relation from row tuples. The input is copied, sorted in
// the given attribute order and deduplicated. It panics if a tuple's
// arity does not match the schema; data loading paths that need error
// returns should use a Builder.
func New(name string, attrs []string, tuples []Tuple) *Relation {
	b := NewBuilder(name, attrs...)
	for _, t := range tuples {
		if err := b.Add(t...); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// Empty returns an empty relation over the given schema.
func Empty(name string, attrs ...string) *Relation {
	return NewBuilder(name, attrs...).Build()
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Attrs returns the schema (attribute names in storage order). The
// returned slice must not be modified.
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Col returns column j. The returned slice must not be modified.
func (r *Relation) Col(j int) []Value { return r.cols[j] }

// ColByName returns the column for the named attribute.
func (r *Relation) ColByName(attr string) ([]Value, bool) {
	j := r.AttrIndex(attr)
	if j < 0 {
		return nil, false
	}
	return r.cols[j], true
}

// AttrIndex returns the position of attr in the schema, or -1.
func (r *Relation) AttrIndex(attr string) int {
	for j, a := range r.attrs {
		if a == attr {
			return j
		}
	}
	return -1
}

// HasAttr reports whether attr is part of the schema.
func (r *Relation) HasAttr(attr string) bool { return r.AttrIndex(attr) >= 0 }

// Tuple materializes row i into dst (allocating if dst is too short)
// and returns it.
func (r *Relation) Tuple(i int, dst Tuple) Tuple {
	if cap(dst) < len(r.cols) {
		dst = make(Tuple, len(r.cols))
	}
	dst = dst[:len(r.cols)]
	for j := range r.cols {
		dst[j] = r.cols[j][i]
	}
	return dst
}

// Tuples materializes all rows. Intended for tests and small outputs.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.Tuple(i, nil)
	}
	return out
}

// Contains reports whether the relation contains the given tuple, by
// binary search over the sorted storage.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != len(r.attrs) {
		return false
	}
	lo, hi := 0, r.n
	// Narrow the candidate row range on each column in turn.
	for j := range t {
		lo = lo + sort.Search(hi-lo, func(i int) bool { return r.cols[j][lo+i] >= t[j] })
		hi = lo + sort.Search(hi-lo, func(i int) bool { return r.cols[j][lo+i] > t[j] })
		if lo >= hi {
			return false
		}
	}
	return lo < hi
}

// Rename returns a view of r with a new name and attribute names. The
// column data is shared. It returns an error if the arity differs.
func (r *Relation) Rename(name string, attrs ...string) (*Relation, error) {
	if len(attrs) != len(r.attrs) {
		return nil, fmt.Errorf("relation: rename %s: got %d attrs, want %d", r.name, len(attrs), len(r.attrs))
	}
	as := make([]string, len(attrs))
	copy(as, attrs)
	return &Relation{name: name, attrs: as, cols: r.cols, n: r.n}, nil
}

func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)[%d]", r.name, strings.Join(r.attrs, ","), r.n)
	return b.String()
}

// Builder accumulates tuples and produces a sorted, deduplicated
// Relation. The zero value is not usable; create one with NewBuilder.
type Builder struct {
	name  string
	attrs []string
	rows  []Value // row-major staging, arity-strided
	arity int
}

// NewBuilder returns a builder for a relation over the given schema.
func NewBuilder(name string, attrs ...string) *Builder {
	as := make([]string, len(attrs))
	copy(as, attrs)
	return &Builder{name: name, attrs: as, arity: len(attrs)}
}

// Add appends one tuple. It returns an error on arity mismatch.
func (b *Builder) Add(vals ...Value) error {
	if len(vals) != b.arity {
		return fmt.Errorf("relation: %s: tuple arity %d, want %d", b.name, len(vals), b.arity)
	}
	b.rows = append(b.rows, vals...)
	return nil
}

// Len reports the number of staged tuples (before dedup).
func (b *Builder) Len() int {
	if b.arity == 0 {
		return 0
	}
	return len(b.rows) / b.arity
}

// Build sorts, deduplicates, and returns the relation. The builder may
// be reused afterwards (it is reset).
func (b *Builder) Build() *Relation {
	k := b.arity
	if k == 0 {
		r := &Relation{name: b.name, attrs: b.attrs, cols: nil, n: 0}
		b.rows = nil
		return r
	}
	n := len(b.rows) / k
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rows := b.rows
	sort.Slice(idx, func(x, y int) bool {
		a, c := idx[x]*k, idx[y]*k
		for j := 0; j < k; j++ {
			if rows[a+j] != rows[c+j] {
				return rows[a+j] < rows[c+j]
			}
		}
		return false
	})
	cols := make([][]Value, k)
	for j := range cols {
		cols[j] = make([]Value, 0, n)
	}
	m := 0
	for p, i := range idx {
		base := i * k
		if p > 0 {
			prev := idx[p-1] * k
			same := true
			for j := 0; j < k; j++ {
				if rows[base+j] != rows[prev+j] {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		for j := 0; j < k; j++ {
			cols[j] = append(cols[j], rows[base+j])
		}
		m++
	}
	b.rows = nil
	return &Relation{name: b.name, attrs: b.attrs, cols: cols, n: m}
}

// FromColumns builds a relation directly from pre-sorted, deduplicated
// columns. It is the fast path for operators that produce sorted
// output; callers must guarantee the invariant.
func FromColumns(name string, attrs []string, cols [][]Value) *Relation {
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	as := make([]string, len(attrs))
	copy(as, attrs)
	return &Relation{name: name, attrs: as, cols: cols, n: n}
}

// SortedBy returns a relation with the same tuples re-sorted under a
// new attribute order. order must be a permutation of the schema.
func (r *Relation) SortedBy(order []string) (*Relation, error) {
	if len(order) != len(r.attrs) {
		return nil, fmt.Errorf("relation: %s: order has %d attrs, want %d", r.name, len(order), len(r.attrs))
	}
	perm := make([]int, len(order))
	seen := make(map[string]bool, len(order))
	for i, a := range order {
		j := r.AttrIndex(a)
		if j < 0 || seen[a] {
			return nil, fmt.Errorf("relation: %s: order %v is not a permutation of %v", r.name, order, r.attrs)
		}
		seen[a] = true
		perm[i] = j
	}
	b := NewBuilder(r.name, order...)
	row := make(Tuple, len(order))
	for i := 0; i < r.n; i++ {
		for x, j := range perm {
			row[x] = r.cols[j][i]
		}
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Equal reports whether two relations hold the same tuple set over the
// same schema (attribute order must match).
func (r *Relation) Equal(s *Relation) bool {
	if r.Arity() != s.Arity() || r.n != s.n {
		return false
	}
	for j, a := range r.attrs {
		if s.attrs[j] != a {
			return false
		}
	}
	for j := range r.cols {
		for i := 0; i < r.n; i++ {
			if r.cols[j][i] != s.cols[j][i] {
				return false
			}
		}
	}
	return true
}
