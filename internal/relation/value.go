// Package relation implements the relational storage substrate used by
// every join algorithm in this repository: dictionary-encoded values,
// flat tuples, immutable sorted columnar relations, builders, hash
// indexes and the basic relational operators (selection, projection,
// semijoin, union, intersection).
//
// Relations are stored column-major, lexicographically sorted by the
// relation's attribute order and deduplicated. Sortedness is what lets
// the worst-case optimal join algorithms intersect attribute ranges in
// time proportional to the smaller side (the only assumption the
// paper's Section 2 analysis needs).
package relation

import (
	"fmt"
	"strings"
	"sync"
)

// Value is a dictionary-encoded attribute value. Real data (strings,
// external ids) is mapped to Values through a Dict.
type Value int64

// Tuple is a flat row of values. Tuples are positional: the meaning of
// position i is given by the schema of the relation holding the tuple.
type Tuple []Value

// Compare lexicographically compares two tuples of the same length.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Equal reports whether two tuples are identical.
func (t Tuple) Equal(u Tuple) bool { return t.Compare(u) == 0 }

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Dict maps external string identifiers to dense Values and back. The
// zero value is not usable; create one with NewDict. All methods are
// safe for concurrent use — a long-lived engine interns ingestion
// strings and decodes result values from many goroutines at once.
type Dict struct {
	mu    sync.RWMutex
	toID  map[string]Value
	toStr []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toID: make(map[string]Value)}
}

// ID returns the Value for s, interning s on first use.
func (d *Dict) ID(s string) Value {
	d.mu.RLock()
	id, ok := d.toID[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.toID[s]; ok {
		return id
	}
	id = Value(len(d.toStr))
	d.toID[s] = id
	d.toStr = append(d.toStr, s)
	return id
}

// Lookup returns the Value for s without interning.
func (d *Dict) Lookup(s string) (Value, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.toID[s]
	return id, ok
}

// String returns the external string of v, or "#<v>" if v was never interned.
func (d *Dict) String(v Value) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v >= 0 && int(v) < len(d.toStr) {
		return d.toStr[v]
	}
	return fmt.Sprintf("#%d", int64(v))
}

// Len reports the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.toStr)
}
