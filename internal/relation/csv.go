package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions configure ReadCSV.
type CSVOptions struct {
	// Comma is the field delimiter; 0 means ',' (pass '\t' for
	// quoted-TSV input — plain integer TSV is also what ReadTSV reads).
	Comma rune
	// Comment, when non-zero and positive, makes lines starting with
	// that rune comments. The zero value enables '#' comments only for
	// integer data (Dict nil — the cmd/wcojgen TSV convention); with a
	// Dict set, rows are arbitrary strings and nothing is skipped, so
	// a record like "#hashtag,topic" loads instead of vanishing. Set
	// to -1 to disable comment handling unconditionally.
	Comment rune
	// NoHeader declares the input headerless; attribute names then come
	// from Attrs, or default to c0..c{k-1} for the first record's width.
	NoHeader bool
	// Attrs overrides the attribute names (required width = arity).
	// With a header present the header row is still consumed.
	Attrs []string
	// Dict, when non-nil, interns every field through the dictionary,
	// so arbitrary string data loads; when nil every field must parse
	// as a base-10 int64.
	Dict *Dict
}

// ReadCSV reads a relation from delimited text via encoding/csv (so
// quoted fields, embedded delimiters and CRLF all work). The first
// record is the attribute header unless opt.NoHeader is set; every
// following record is one tuple. With opt.Dict set, fields are
// interned strings; otherwise they must be integers. Duplicate tuples
// are deduplicated by the builder, like every relation in the system.
func ReadCSV(r io.Reader, name string, opt CSVOptions) (*Relation, error) {
	cr := newCSVReader(r, opt)
	var b *Builder
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: %s: %w", name, err)
		}
		row++
		if b == nil {
			attrs := opt.Attrs
			data := rec
			if !opt.NoHeader {
				if attrs == nil {
					attrs = trimAll(rec)
				}
				data = nil
			} else if attrs == nil {
				attrs = make([]string, len(rec))
				for i := range attrs {
					attrs[i] = fmt.Sprintf("c%d", i)
				}
			}
			if len(attrs) == 0 {
				return nil, fmt.Errorf("relation: %s: empty schema", name)
			}
			b = NewBuilder(name, attrs...)
			if data == nil {
				continue
			}
			rec = data
		}
		if err := addCSVRow(b, rec, opt.Dict, name, row); err != nil {
			return nil, err
		}
	}
	if b == nil {
		if opt.NoHeader && opt.Attrs != nil {
			return NewBuilder(name, opt.Attrs...).Build(), nil
		}
		return nil, fmt.Errorf("relation: %s: empty input (missing header)", name)
	}
	return b.Build(), nil
}

// newCSVReader configures the csv.Reader both ReadCSV and
// ReadDeltaCSV run: delimiter, the comment-rune default ('#' only for
// integer data — with a Dict a leading '#' is a legitimate value),
// record reuse, and deferred width checking (done by the callers,
// with row numbers in the errors).
func newCSVReader(r io.Reader, opt CSVOptions) *csv.Reader {
	cr := csv.NewReader(r)
	if opt.Comma != 0 {
		cr.Comma = opt.Comma
	}
	switch {
	case opt.Comment > 0:
		cr.Comment = opt.Comment
	case opt.Comment == 0 && opt.Dict == nil:
		cr.Comment = '#'
	}
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1
	return cr
}

// parseField converts one raw field: interned through dict when one
// is set, base-10 int64 otherwise.
func parseField(f string, dict *Dict) (Value, error) {
	f = strings.TrimSpace(f)
	if dict != nil {
		return dict.ID(f), nil
	}
	v, err := strconv.ParseInt(f, 10, 64)
	if err != nil {
		return 0, err
	}
	return Value(v), nil
}

// addCSVRow converts one record and appends it to the builder.
func addCSVRow(b *Builder, rec []string, dict *Dict, name string, row int) error {
	if len(rec) != b.arity {
		return fmt.Errorf("relation: %s record %d: %d fields, want %d", name, row, len(rec), b.arity)
	}
	vals := make([]Value, len(rec))
	for i, f := range rec {
		v, err := parseField(f, dict)
		if err != nil {
			return fmt.Errorf("relation: %s record %d field %d: %w", name, row, i+1, err)
		}
		vals[i] = v
	}
	return b.Add(vals...)
}

func trimAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.TrimSpace(s)
	}
	return out
}

// Delta is a parsed update file: tuples to insert and tuples to
// delete, in file order per side (the op order across sides is not
// preserved — a delta file describes a target state change, not a
// transaction log; within one file a tuple should appear on one side
// only).
type Delta struct {
	Insert, Delete []Tuple
}

// Len returns the total number of operations.
func (d *Delta) Len() int { return len(d.Insert) + len(d.Delete) }

// ReadDeltaCSV reads an update file: each record is an operation tag
// followed by one tuple — "+" (or "insert"/"i") inserts, "-" (or
// "delete"/"d") deletes:
//
//	+,5,6
//	-,3,4
//
// There is no header; every record must have the same width. Fields
// parse exactly as in ReadCSV (integers, or interned strings with
// opt.Dict set; opt.Comma and opt.Comment as there; opt.NoHeader and
// opt.Attrs are ignored). The tuple arity is not validated here — the
// relation the delta is applied to checks it.
func ReadDeltaCSV(r io.Reader, name string, opt CSVOptions) (*Delta, error) {
	cr := newCSVReader(r, opt)
	d := &Delta{}
	width := -1
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: delta %s: %w", name, err)
		}
		row++
		if len(rec) < 2 {
			return nil, fmt.Errorf("relation: delta %s record %d: want an op tag and at least one value", name, row)
		}
		if width < 0 {
			width = len(rec)
		} else if len(rec) != width {
			return nil, fmt.Errorf("relation: delta %s record %d: %d fields, want %d", name, row, len(rec), width)
		}
		var del bool
		switch op := strings.ToLower(strings.TrimSpace(rec[0])); op {
		case "+", "insert", "i":
			del = false
		case "-", "delete", "d":
			del = true
		default:
			return nil, fmt.Errorf("relation: delta %s record %d: unknown op %q (want +/-/insert/delete)", name, row, rec[0])
		}
		vals := make(Tuple, len(rec)-1)
		for i, f := range rec[1:] {
			v, err := parseField(f, opt.Dict)
			if err != nil {
				return nil, fmt.Errorf("relation: delta %s record %d field %d: %w", name, row, i+2, err)
			}
			vals[i] = v
		}
		if del {
			d.Delete = append(d.Delete, vals)
		} else {
			d.Insert = append(d.Insert, vals)
		}
	}
	return d, nil
}

// WriteCSV writes the relation as delimited text in the format ReadCSV
// reads: a header record then one record per tuple. With a non-nil
// dict, values are written as their interned strings (quoting handled
// by encoding/csv); otherwise as integers.
func WriteCSV(w io.Writer, r *Relation, comma rune, dict *Dict) error {
	cw := csv.NewWriter(w)
	if comma != 0 {
		cw.Comma = comma
	}
	if err := cw.Write(r.Attrs()); err != nil {
		return err
	}
	rec := make([]string, r.Arity())
	var row Tuple
	for i := 0; i < r.Len(); i++ {
		row = r.Tuple(i, row)
		for j, v := range row {
			if dict != nil {
				rec[j] = dict.String(v)
			} else {
				rec[j] = strconv.FormatInt(int64(v), 10)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
