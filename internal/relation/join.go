package relation

import "fmt"

// Join computes the natural join r ⋈ s on their shared attributes with
// a classic one-pair-at-a-time hash join: build a hash index over the
// smaller side keyed by the shared attributes, probe with the larger.
// The output schema is r's attributes followed by s's non-shared
// attributes. If the schemas are disjoint the result is the cross
// product. This is the binary-join building block of the baseline
// plans the paper compares WCOJ algorithms against.
func Join(r, s *Relation) (*Relation, error) {
	shared := sharedAttrs(r, s)
	// Output schema.
	outAttrs := append([]string(nil), r.Attrs()...)
	var sExtra []int
	for j, a := range s.Attrs() {
		if r.HasAttr(a) {
			continue
		}
		outAttrs = append(outAttrs, a)
		sExtra = append(sExtra, j)
	}
	b := NewBuilder(fmt.Sprintf("(%s⋈%s)", r.Name(), s.Name()), outAttrs...)

	if len(shared) == 0 {
		// Cross product.
		row := make(Tuple, len(outAttrs))
		var rRow, sRow Tuple
		for i := 0; i < r.Len(); i++ {
			rRow = r.Tuple(i, rRow)
			copy(row, rRow)
			for k := 0; k < s.Len(); k++ {
				sRow = s.Tuple(k, sRow)
				for x, j := range sExtra {
					row[len(rRow)+x] = sRow[j]
				}
				if err := b.Add(row...); err != nil {
					return nil, err
				}
			}
		}
		return b.Build(), nil
	}

	// Build on the smaller side, probe with the larger; emit rows in
	// the fixed output schema either way.
	build, probe := s, r
	if r.Len() < s.Len() {
		build, probe = r, s
	}
	ix := NewHashIndex(build, shared)
	probeKey := make([]int, len(shared))
	for i, a := range shared {
		probeKey[i] = probe.AttrIndex(a)
	}
	// Column positions: for each output attribute, where it comes from
	// in (r-row, s-row).
	rPos := make([]int, len(outAttrs))
	sPos := make([]int, len(outAttrs))
	for o, a := range outAttrs {
		rPos[o] = r.AttrIndex(a)
		sPos[o] = s.AttrIndex(a)
	}
	key := make(Tuple, len(shared))
	row := make(Tuple, len(outAttrs))
	var pRow, bRow Tuple
	for i := 0; i < probe.Len(); i++ {
		pRow = probe.Tuple(i, pRow)
		for x, j := range probeKey {
			key[x] = pRow[j]
		}
		for _, m := range ix.Probe(key) {
			bRow = build.Tuple(int(m), bRow)
			// Assemble the output row: prefer r's copy, fall back to s.
			var rRow, sRow Tuple
			if probe == r {
				rRow, sRow = pRow, bRow
			} else {
				rRow, sRow = bRow, pRow
			}
			for o := range outAttrs {
				if rPos[o] >= 0 {
					row[o] = rRow[rPos[o]]
				} else {
					row[o] = sRow[sPos[o]]
				}
			}
			if err := b.Add(row...); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// JoinSize returns |r ⋈ s| without materializing the full output
// columns (it still walks every matching pair).
func JoinSize(r, s *Relation) (int, error) {
	shared := sharedAttrs(r, s)
	if len(shared) == 0 {
		return r.Len() * s.Len(), nil
	}
	build, probe := s, r
	if r.Len() < s.Len() {
		build, probe = r, s
	}
	ix := NewHashIndex(build, shared)
	probeKey := make([]int, len(shared))
	for i, a := range shared {
		probeKey[i] = probe.AttrIndex(a)
	}
	key := make(Tuple, len(shared))
	var pRow Tuple
	n := 0
	for i := 0; i < probe.Len(); i++ {
		pRow = probe.Tuple(i, pRow)
		for x, j := range probeKey {
			key[x] = pRow[j]
		}
		n += len(ix.Probe(key))
	}
	return n, nil
}
