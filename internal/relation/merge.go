package relation

import "fmt"

// MergeDelta computes the effective relation (base ∖ del) ⊎ add by one
// linear pass over three sorted relations sharing a schema — the merged
// (base ⊎ delta) read the incremental-update machinery is built on.
// Where rebuilding via a Builder costs O((N+D) log(N+D)) comparison
// sorts, MergeDelta walks the already-sorted columnar levels of all
// three inputs in lockstep and costs O((N+D)·k) copies, so absorbing a
// small delta into a large base never pays the base's sort again.
//
// Semantics: a base tuple also present in del is dropped; add tuples
// are interleaved at their sorted position. Tuples in del that do not
// occur in base are ignored, and an add tuple equal to a surviving
// base tuple is emitted once (set semantics) — though the delta layer
// maintains the stricter invariants del ⊆ base and add ∩ base = ∅, so
// neither case arises there. All three relations must share the same
// attribute list in the same order.
func MergeDelta(base, add, del *Relation) (*Relation, error) {
	for _, r := range []*Relation{add, del} {
		if len(r.attrs) != len(base.attrs) {
			return nil, fmt.Errorf("relation: merge %s: arity %d, want %d", r.name, len(r.attrs), len(base.attrs))
		}
		for j, a := range base.attrs {
			if r.attrs[j] != a {
				return nil, fmt.Errorf("relation: merge %s: attrs %v, want %v", r.name, r.attrs, base.attrs)
			}
		}
	}
	if add.n == 0 && del.n == 0 {
		return base, nil
	}
	k := len(base.attrs)
	est := base.n - del.n + add.n
	if est < 0 {
		est = 0
	}
	cols := make([][]Value, k)
	for j := range cols {
		cols[j] = make([]Value, 0, est)
	}
	emit := func(src *Relation, i int) {
		for j := 0; j < k; j++ {
			cols[j] = append(cols[j], src.cols[j][i])
		}
	}
	b, a, d := 0, 0, 0
	for b < base.n || a < add.n {
		// Advance the tombstone cursor past rows sorting before the
		// current base row; a tombstone equal to it deletes the row.
		if b < base.n {
			skip := false
			for d < del.n {
				c := rowCmp(del, d, base, b, k)
				if c < 0 {
					d++ // tombstone for a tuple not (or no longer) in base
					continue
				}
				if c == 0 {
					d++
					skip = true
				}
				break
			}
			if skip {
				b++
				continue
			}
		}
		switch {
		case b >= base.n:
			emit(add, a)
			a++
		case a >= add.n:
			emit(base, b)
			b++
		default:
			switch c := rowCmp(base, b, add, a, k); {
			case c < 0:
				emit(base, b)
				b++
			case c > 0:
				emit(add, a)
				a++
			default: // duplicate across base and add: emit once
				emit(base, b)
				b++
				a++
			}
		}
	}
	return FromColumns(base.name, base.attrs, cols), nil
}

// rowCmp lexicographically compares row i of r with row j of s over k
// columns (schemas already verified equal).
func rowCmp(r *Relation, i int, s *Relation, j, k int) int {
	for c := 0; c < k; c++ {
		switch {
		case r.cols[c][i] < s.cols[c][j]:
			return -1
		case r.cols[c][i] > s.cols[c][j]:
			return 1
		}
	}
	return 0
}
