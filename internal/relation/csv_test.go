package relation

// Delta-file loading tests live beside the CSV round-trip tests; see
// TestReadDeltaCSV below.

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVIntegers(t *testing.T) {
	in := "src,dst\n1,2\n# comment\n3,4\n1,2\n"
	r, err := ReadCSV(strings.NewReader(in), "E", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Attrs(); got[0] != "src" || got[1] != "dst" {
		t.Fatalf("attrs = %v", got)
	}
	if r.Len() != 2 { // duplicate (1,2) deduped
		t.Fatalf("len = %d, want 2", r.Len())
	}
	if !r.Contains(Tuple{1, 2}) || !r.Contains(Tuple{3, 4}) {
		t.Fatalf("tuples missing: %v", r.Tuples())
	}
}

func TestReadCSVTabDelimited(t *testing.T) {
	in := "x\ty\n10\t20\n30\t40\n"
	r, err := ReadCSV(strings.NewReader(in), "R", CSVOptions{Comma: '\t'})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || !r.Contains(Tuple{10, 20}) {
		t.Fatalf("bad relation: %v", r.Tuples())
	}
}

func TestReadCSVStringsInterned(t *testing.T) {
	dict := NewDict()
	in := "person,city\nalice,\"new york\"\nbob,berlin\nalice,berlin\n"
	r, err := ReadCSV(strings.NewReader(in), "Lives", CSVOptions{Dict: dict})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	alice, ok := dict.Lookup("alice")
	if !ok {
		t.Fatal("alice not interned")
	}
	ny, ok := dict.Lookup("new york")
	if !ok {
		t.Fatal("quoted field not interned verbatim")
	}
	if !r.Contains(Tuple{alice, ny}) {
		t.Fatalf("missing (alice, new york): %v", r.Tuples())
	}
}

// TestReadCSVCommentModes: '#' comments apply to integer data (the
// TSV convention) but never to dictionary-interned string data, where
// a leading '#' is a legitimate value; an explicit Comment rune wins
// either way.
func TestReadCSVCommentModes(t *testing.T) {
	dict := NewDict()
	r, err := ReadCSV(strings.NewReader("tag,topic\n#go,lang\nplain,misc\n"), "T", CSVOptions{Dict: dict})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("string data lost a '#' row: %d tuples, want 2", r.Len())
	}
	if _, ok := dict.Lookup("#go"); !ok {
		t.Fatal("'#go' not interned")
	}
	r2, err := ReadCSV(strings.NewReader("tag,topic\n;skipped,row\nplain,misc\n"), "T",
		CSVOptions{Dict: dict, Comment: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 {
		t.Fatalf("explicit comment rune ignored: %d tuples, want 1", r2.Len())
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	r, err := ReadCSV(strings.NewReader("1,2\n3,4\n"), "E", CSVOptions{NoHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Attrs(); got[0] != "c0" || got[1] != "c1" {
		t.Fatalf("auto attrs = %v", got)
	}
	r2, err := ReadCSV(strings.NewReader("1,2\n"), "E", CSVOptions{NoHeader: true, Attrs: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Attrs(); got[0] != "a" || got[1] != "b" {
		t.Fatalf("explicit attrs = %v", got)
	}
	// Headerless empty input with an explicit schema is an empty
	// relation, not an error.
	r3, err := ReadCSV(strings.NewReader(""), "E", CSVOptions{NoHeader: true, Attrs: []string{"a"}})
	if err != nil || r3.Len() != 0 {
		t.Fatalf("empty headerless: %v, %v", r3, err)
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opt  CSVOptions
	}{
		{"empty input", "", CSVOptions{}},
		{"arity mismatch", "a,b\n1,2,3\n", CSVOptions{}},
		{"non-integer without dict", "a,b\n1,oops\n", CSVOptions{}},
		{"bare quote", "a,b\n\"1,2\n", CSVOptions{}},
		{"headerless arity drift", "1,2\n3\n", CSVOptions{NoHeader: true}},
		{"explicit attrs arity", "a,b\n1,2\n", CSVOptions{Attrs: []string{"x"}}},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), "R", c.opt); err == nil {
			t.Errorf("%s: expected error, got none", c.name)
		}
	}
}

// TestCSVRoundTrip: Write then Read reproduces the relation exactly,
// in both integer and dictionary-interned modes.
func TestCSVRoundTrip(t *testing.T) {
	ints := New("R", []string{"a", "b"}, []Tuple{{3, 4}, {1, 2}, {-5, 7}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ints, 0, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "R", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ints.Equal(back) {
		t.Fatalf("integer round trip: %v vs %v", ints.Tuples(), back.Tuples())
	}

	dict := NewDict()
	strRel := New("S", []string{"w"}, []Tuple{
		{dict.ID("plain")}, {dict.ID("with,comma")}, {dict.ID("with \"quote\"")},
	})
	buf.Reset()
	if err := WriteCSV(&buf, strRel, 0, dict); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadCSV(&buf, "S", CSVOptions{Dict: dict})
	if err != nil {
		t.Fatal(err)
	}
	if !strRel.Equal(back2) {
		t.Fatalf("string round trip: %v vs %v", strRel.Tuples(), back2.Tuples())
	}
}

// TestCSVTSVInterop: integer TSV written by WriteTSV loads through
// ReadCSV with a tab delimiter and vice versa.
func TestCSVTSVInterop(t *testing.T) {
	r := New("E", []string{"src", "dst"}, []Tuple{{1, 2}, {3, 4}})
	var buf bytes.Buffer
	if err := WriteTSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	viaCSV, err := ReadCSV(bytes.NewReader(buf.Bytes()), "E", CSVOptions{Comma: '\t'})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(viaCSV) {
		t.Fatal("TSV output did not load through ReadCSV")
	}
	buf.Reset()
	if err := WriteCSV(&buf, r, '\t', nil); err != nil {
		t.Fatal(err)
	}
	viaTSV, err := ReadTSV(bytes.NewReader(buf.Bytes()), "E")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(viaTSV) {
		t.Fatal("CSV tab output did not load through ReadTSV")
	}
}

func TestReadDeltaCSV(t *testing.T) {
	in := "# a comment\n+,1,2\n-,3,4\ninsert, 5 , 6\nDELETE,7,8\ni,9,10\nd,11,12\n"
	d, err := ReadDeltaCSV(strings.NewReader(in), "E", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 || len(d.Insert) != 3 || len(d.Delete) != 3 {
		t.Fatalf("parsed %d inserts, %d deletes", len(d.Insert), len(d.Delete))
	}
	if !d.Insert[1].Equal(Tuple{5, 6}) || !d.Delete[2].Equal(Tuple{11, 12}) {
		t.Fatalf("tuples: %v / %v", d.Insert, d.Delete)
	}
}

func TestReadDeltaCSVDict(t *testing.T) {
	dict := NewDict()
	d, err := ReadDeltaCSV(strings.NewReader("+,alice,bob\n-,carol,dan\n"), "F", CSVOptions{Dict: dict})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insert) != 1 || len(d.Delete) != 1 {
		t.Fatalf("parsed %v / %v", d.Insert, d.Delete)
	}
	if dict.String(d.Insert[0][1]) != "bob" || dict.String(d.Delete[0][0]) != "carol" {
		t.Fatal("dict interning lost the strings")
	}
}

func TestReadDeltaCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad op":       "*,1,2\n",
		"no values":    "+\n",
		"ragged width": "+,1,2\n-,3\n",
		"non-integer":  "+,1,x\n",
	}
	for name, in := range cases {
		if _, err := ReadDeltaCSV(strings.NewReader(in), "E", CSVOptions{}); err == nil {
			t.Errorf("%s: want error for %q", name, in)
		}
	}
	// Empty input is a valid empty delta.
	d, err := ReadDeltaCSV(strings.NewReader(""), "E", CSVOptions{})
	if err != nil || d.Len() != 0 {
		t.Fatalf("empty input: %v, %d ops", err, d.Len())
	}
}
