package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJoinBasic(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"},
		[]Value{1, 10}, []Value{2, 20}, []Value{3, 10})
	s := mustRel(t, "S", []string{"B", "C"},
		[]Value{10, 100}, []Value{10, 200}, []Value{30, 300})
	j, err := Join(r, s)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: (1,10)x{100,200}, (3,10)x{100,200} = 4 rows.
	if j.Len() != 4 {
		t.Fatalf("join = %v", j.Tuples())
	}
	attrs := j.Attrs()
	if len(attrs) != 3 || attrs[0] != "A" || attrs[1] != "B" || attrs[2] != "C" {
		t.Fatalf("schema = %v", attrs)
	}
	if !j.Contains(Tuple{1, 10, 200}) || j.Contains(Tuple{2, 20, 100}) {
		t.Fatal("membership mismatch")
	}
	n, err := JoinSize(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("JoinSize = %d", n)
	}
}

func TestJoinCrossProduct(t *testing.T) {
	r := mustRel(t, "R", []string{"A"}, []Value{1}, []Value{2})
	s := mustRel(t, "S", []string{"B"}, []Value{10}, []Value{20}, []Value{30})
	j, err := Join(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 6 {
		t.Fatalf("cross product = %d rows, want 6", j.Len())
	}
	n, err := JoinSize(r, s)
	if err != nil || n != 6 {
		t.Fatalf("JoinSize = %d, %v", n, err)
	}
}

func TestJoinMultipleSharedAttrs(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B", "C"},
		[]Value{1, 2, 3}, []Value{1, 2, 4}, []Value{5, 6, 7})
	s := mustRel(t, "S", []string{"A", "B", "D"},
		[]Value{1, 2, 9}, []Value{5, 5, 9})
	j, err := Join(r, s)
	if err != nil {
		t.Fatal(err)
	}
	// Only (A=1,B=2) matches: 2 r-rows x 1 s-row.
	if j.Len() != 2 {
		t.Fatalf("join = %v", j.Tuples())
	}
	if j.Arity() != 4 {
		t.Fatalf("arity = %d", j.Arity())
	}
}

func TestJoinIdenticalSchemas(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"}, []Value{1, 2}, []Value{3, 4})
	s := mustRel(t, "S", []string{"A", "B"}, []Value{1, 2}, []Value{5, 6})
	j, err := Join(r, s)
	if err != nil {
		t.Fatal(err)
	}
	// Identical schemas: join = intersection.
	if j.Len() != 1 || !j.Contains(Tuple{1, 2}) {
		t.Fatalf("join = %v", j.Tuples())
	}
}

func TestJoinEmpty(t *testing.T) {
	r := mustRel(t, "R", []string{"A", "B"}, []Value{1, 2})
	e := Empty("S", "B", "C")
	j, err := Join(r, e)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatal("join with empty must be empty")
	}
	j2, err := Join(e, r)
	if err != nil || j2.Len() != 0 {
		t.Fatal("empty join (other side)")
	}
}

// Property: Join agrees with a nested-loop reference and is symmetric
// in cardinality; JoinSize agrees with Join.
func TestPropertyJoinNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(name string, attrs []string, n, dom int) *Relation {
			b := NewBuilder(name, attrs...)
			row := make([]Value, len(attrs))
			for i := 0; i < n; i++ {
				for j := range row {
					row[j] = Value(rng.Intn(dom))
				}
				b.Add(row...)
			}
			return b.Build()
		}
		r := mk("R", []string{"A", "B"}, rng.Intn(40), 5)
		s := mk("S", []string{"B", "C"}, rng.Intn(40), 5)
		j, err := Join(r, s)
		if err != nil {
			return false
		}
		// Nested loop reference.
		want := make(map[[3]Value]bool)
		for i := 0; i < r.Len(); i++ {
			for k := 0; k < s.Len(); k++ {
				if r.Col(1)[i] == s.Col(0)[k] {
					want[[3]Value{r.Col(0)[i], r.Col(1)[i], s.Col(1)[k]}] = true
				}
			}
		}
		if j.Len() != len(want) {
			return false
		}
		for key := range want {
			if !j.Contains(Tuple{key[0], key[1], key[2]}) {
				return false
			}
		}
		// Symmetry of cardinality (schema order differs, content same).
		j2, err := Join(s, r)
		if err != nil {
			return false
		}
		if j2.Len() != j.Len() {
			return false
		}
		// JoinSize counts pairs (with duplicates collapsing only in the
		// materialized relation); here all tuples are distinct per
		// (r-row, s-row) pair only if outputs differ — compare against
		// the pair count.
		pairs := 0
		for i := 0; i < r.Len(); i++ {
			for k := 0; k < s.Len(); k++ {
				if r.Col(1)[i] == s.Col(0)[k] {
					pairs++
				}
			}
		}
		n, err := JoinSize(r, s)
		return err == nil && n == pairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
