package relation

import (
	"math/rand"
	"testing"
)

// buildRel builds a relation from raw rows (sorted/deduped by the
// builder).
func buildRel(t *testing.T, name string, attrs []string, rows [][]Value) *Relation {
	t.Helper()
	b := NewBuilder(name, attrs...)
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestMergeDeltaRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	attrs := []string{"x", "y"}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		var baseRows [][]Value
		for i := 0; i < n; i++ {
			baseRows = append(baseRows, []Value{Value(rng.Intn(40)), Value(rng.Intn(40))})
		}
		base := buildRel(t, "R", attrs, baseRows)

		// del: a random subset of base; add: random rows not in base.
		var delRows, addRows [][]Value
		want := map[[2]Value]bool{}
		for i := 0; i < base.Len(); i++ {
			tu := base.Tuple(i, nil)
			if rng.Intn(3) == 0 {
				delRows = append(delRows, []Value{tu[0], tu[1]})
			} else {
				want[[2]Value{tu[0], tu[1]}] = true
			}
		}
		for len(addRows) < 30 {
			tu := Tuple{Value(rng.Intn(60)), Value(rng.Intn(60))}
			if base.Contains(tu) {
				continue
			}
			addRows = append(addRows, []Value{tu[0], tu[1]})
			want[[2]Value{tu[0], tu[1]}] = true
		}
		add := buildRel(t, "R", attrs, addRows)
		del := buildRel(t, "R", attrs, delRows)

		got, err := MergeDelta(base, add, del)
		if err != nil {
			t.Fatal(err)
		}
		var wantRows [][]Value
		for k := range want {
			wantRows = append(wantRows, []Value{k[0], k[1]})
		}
		wantRel := buildRel(t, "R", attrs, wantRows)
		if !got.Equal(wantRel) {
			t.Fatalf("trial %d: merged relation differs: got %d tuples, want %d", trial, got.Len(), wantRel.Len())
		}
	}
}

func TestMergeDeltaEmptyDelta(t *testing.T) {
	base := buildRel(t, "R", []string{"x"}, [][]Value{{1}, {2}})
	got, err := MergeDelta(base, Empty("R", "x"), Empty("R", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatal("empty delta must return the base relation unchanged")
	}
}

func TestMergeDeltaLooseInputs(t *testing.T) {
	base := buildRel(t, "R", []string{"x"}, [][]Value{{1}, {3}, {5}})
	// del names a tuple not in base (ignored); add collides with a
	// surviving base tuple (emitted once).
	add := buildRel(t, "R", []string{"x"}, [][]Value{{3}, {4}})
	del := buildRel(t, "R", []string{"x"}, [][]Value{{2}, {5}})
	got, err := MergeDelta(base, add, del)
	if err != nil {
		t.Fatal(err)
	}
	want := buildRel(t, "R", []string{"x"}, [][]Value{{1}, {3}, {4}})
	if !got.Equal(want) {
		t.Fatalf("got %v, want %v", got.Tuples(), want.Tuples())
	}
}

func TestMergeDeltaSchemaMismatch(t *testing.T) {
	base := buildRel(t, "R", []string{"x", "y"}, nil)
	if _, err := MergeDelta(base, Empty("R", "x"), buildRel(t, "R", []string{"x"}, [][]Value{{1}})); err == nil {
		t.Fatal("want arity error")
	}
	if _, err := MergeDelta(base, buildRel(t, "R", []string{"y", "x"}, [][]Value{{1, 2}}), Empty("R", "x", "y")); err == nil {
		t.Fatal("want attr-order error")
	}
}
