package relation

import (
	"fmt"
	"sort"
)

// Project returns the projection of r onto attrs (π_attrs R), sorted
// and deduplicated. Attrs must be a subset of r's schema.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("relation: project %s: no attribute %q", r.name, a)
		}
		idx[i] = j
	}
	b := NewBuilder(fmt.Sprintf("π(%s)", r.name), attrs...)
	row := make(Tuple, len(attrs))
	for i := 0; i < r.n; i++ {
		for x, j := range idx {
			row[x] = r.cols[j][i]
		}
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Select returns σ_{attr=v} R: the tuples of r whose attr column equals
// v. Sort order is preserved (the result is a filtered view with copied
// columns).
func (r *Relation) Select(attr string, v Value) (*Relation, error) {
	j := r.AttrIndex(attr)
	if j < 0 {
		return nil, fmt.Errorf("relation: select %s: no attribute %q", r.name, attr)
	}
	cols := make([][]Value, len(r.cols))
	for c := range cols {
		cols[c] = make([]Value, 0, 8)
	}
	if j == 0 {
		// Fast path: first column is sorted, binary search the range.
		lo := sort.Search(r.n, func(i int) bool { return r.cols[0][i] >= v })
		hi := lo + sort.Search(r.n-lo, func(i int) bool { return r.cols[0][lo+i] > v })
		for c := range cols {
			cols[c] = append(cols[c], r.cols[c][lo:hi]...)
		}
	} else {
		for i := 0; i < r.n; i++ {
			if r.cols[j][i] != v {
				continue
			}
			for c := range cols {
				cols[c] = append(cols[c], r.cols[c][i])
			}
		}
	}
	out := FromColumns(fmt.Sprintf("σ(%s)", r.name), r.attrs, cols)
	return out, nil
}

// SelectTuple returns σ_{attrs=vals} R with several bound attributes.
func (r *Relation) SelectTuple(attrs []string, vals Tuple) (*Relation, error) {
	if len(attrs) != len(vals) {
		return nil, fmt.Errorf("relation: select %s: %d attrs, %d values", r.name, len(attrs), len(vals))
	}
	cur := r
	for i, a := range attrs {
		next, err := cur.Select(a, vals[i])
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Union returns r ∪ s. Schemas must match exactly.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	b := NewBuilder(fmt.Sprintf("(%s∪%s)", r.name, s.name), r.attrs...)
	var row Tuple
	for i := 0; i < r.n; i++ {
		row = r.Tuple(i, row)
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	for i := 0; i < s.n; i++ {
		row = s.Tuple(i, row)
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Intersect returns r ∩ s by merge over the sorted storage. Schemas
// must match exactly.
func (r *Relation) Intersect(s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	cols := make([][]Value, r.Arity())
	i, j := 0, 0
	var ti, tj Tuple
	for i < r.n && j < s.n {
		ti = r.Tuple(i, ti)
		tj = s.Tuple(j, tj)
		switch ti.Compare(tj) {
		case -1:
			i++
		case 1:
			j++
		default:
			for c := range cols {
				cols[c] = append(cols[c], ti[c])
			}
			i++
			j++
		}
	}
	return FromColumns(fmt.Sprintf("(%s∩%s)", r.name, s.name), r.attrs, cols), nil
}

// Semijoin returns r ⋉ s: the tuples of r that agree with at least one
// tuple of s on their shared attributes. If the schemas share no
// attributes, the result is r when s is non-empty and empty otherwise.
func (r *Relation) Semijoin(s *Relation) (*Relation, error) {
	shared := sharedAttrs(r, s)
	if len(shared) == 0 {
		if s.Len() > 0 {
			return r, nil
		}
		return Empty(r.name, r.attrs...), nil
	}
	proj, err := s.Project(shared...)
	if err != nil {
		return nil, err
	}
	ix := NewHashIndex(proj, shared)
	rIdx := make([]int, len(shared))
	for i, a := range shared {
		rIdx[i] = r.AttrIndex(a)
	}
	cols := make([][]Value, r.Arity())
	key := make(Tuple, len(shared))
	for i := 0; i < r.n; i++ {
		for x, j := range rIdx {
			key[x] = r.cols[j][i]
		}
		if !ix.Contains(key) {
			continue
		}
		for c := range cols {
			cols[c] = append(cols[c], r.cols[c][i])
		}
	}
	return FromColumns(fmt.Sprintf("(%s⋉%s)", r.name, s.name), r.attrs, cols), nil
}

// Diff returns r \ s over identical schemas.
func (r *Relation) Diff(s *Relation) (*Relation, error) {
	if err := sameSchema(r, s); err != nil {
		return nil, err
	}
	cols := make([][]Value, r.Arity())
	i, j := 0, 0
	var ti, tj Tuple
	for i < r.n {
		ti = r.Tuple(i, ti)
		for j < s.n {
			tj = s.Tuple(j, tj)
			if tj.Compare(ti) >= 0 {
				break
			}
			j++
		}
		if j >= s.n || !tj.Equal(ti) {
			for c := range cols {
				cols[c] = append(cols[c], ti[c])
			}
		}
		i++
	}
	return FromColumns(fmt.Sprintf("(%s∖%s)", r.name, s.name), r.attrs, cols), nil
}

// Partition splits r into (heavy, light) by the frequency of the value
// combination over attrs: a tuple goes to heavy when its attrs-group
// has more than threshold tuples in r, otherwise to light. This is the
// "decomposition rule" primitive of Algorithm 2 and PANDA.
func (r *Relation) Partition(attrs []string, threshold int) (heavy, light *Relation, err error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, nil, fmt.Errorf("relation: partition %s: no attribute %q", r.name, a)
		}
		idx[i] = j
	}
	counts := make(map[string]int)
	keyOf := func(i int) string {
		var kb []byte
		for _, j := range idx {
			v := r.cols[j][i]
			for s := 0; s < 8; s++ {
				kb = append(kb, byte(v>>(8*s)))
			}
		}
		return string(kb)
	}
	for i := 0; i < r.n; i++ {
		counts[keyOf(i)]++
	}
	hcols := make([][]Value, r.Arity())
	lcols := make([][]Value, r.Arity())
	for i := 0; i < r.n; i++ {
		dst := &lcols
		if counts[keyOf(i)] > threshold {
			dst = &hcols
		}
		for c := range *dst {
			(*dst)[c] = append((*dst)[c], r.cols[c][i])
		}
	}
	heavy = FromColumns(r.name+"ᴴ", r.attrs, hcols)
	light = FromColumns(r.name+"ᴸ", r.attrs, lcols)
	return heavy, light, nil
}

// MaxDegree returns max_t |σ_{X=t} π_Y R| taken over bindings t of the
// X attributes appearing in r: the empirical degree deg_R(Y|X) of
// Definition 1. X must be a subset of Y and both subsets of the schema.
func (r *Relation) MaxDegree(x, y []string) (int, error) {
	for _, a := range append(append([]string{}, x...), y...) {
		if !r.HasAttr(a) {
			return 0, fmt.Errorf("relation: degree %s: no attribute %q", r.name, a)
		}
	}
	proj, err := r.Project(y...)
	if err != nil {
		return 0, err
	}
	if len(x) == 0 {
		return proj.Len(), nil
	}
	xi := make([]int, len(x))
	for i, a := range x {
		xi[i] = proj.AttrIndex(a)
		if xi[i] < 0 {
			return 0, fmt.Errorf("relation: degree %s: X attribute %q not in Y", r.name, a)
		}
	}
	counts := make(map[string]int)
	best := 0
	var kb []byte
	for i := 0; i < proj.Len(); i++ {
		kb = kb[:0]
		for _, j := range xi {
			v := proj.cols[j][i]
			for s := 0; s < 8; s++ {
				kb = append(kb, byte(v>>(8*s)))
			}
		}
		k := string(kb)
		counts[k]++
		if counts[k] > best {
			best = counts[k]
		}
	}
	return best, nil
}

func sameSchema(r, s *Relation) error {
	if r.Arity() != s.Arity() {
		return fmt.Errorf("relation: schema mismatch: %v vs %v", r.attrs, s.attrs)
	}
	for j, a := range r.attrs {
		if s.attrs[j] != a {
			return fmt.Errorf("relation: schema mismatch: %v vs %v", r.attrs, s.attrs)
		}
	}
	return nil
}

func sharedAttrs(r, s *Relation) []string {
	var out []string
	for _, a := range r.attrs {
		if s.HasAttr(a) {
			out = append(out, a)
		}
	}
	return out
}

// IntersectSorted intersects two ascending []Value slices, appending
// into dst. When the lengths are very unbalanced it gallops through the
// larger side so the cost is Õ(min(|a|,|b|)) — the assumption behind
// the Section 2 runtime analyses.
func IntersectSorted(dst, a, b []Value) []Value {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	// If b is much larger, binary-search each element of a in b.
	if len(b) > 8*len(a) {
		lo := 0
		for _, v := range a {
			lo += sort.Search(len(b)-lo, func(i int) bool { return b[lo+i] >= v })
			if lo < len(b) && b[lo] == v {
				dst = append(dst, v)
				lo++
			}
			if lo >= len(b) {
				break
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectMany intersects k >= 1 ascending []Value slices.
func IntersectMany(lists ...[]Value) []Value {
	if len(lists) == 0 {
		return nil
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := append([]Value(nil), lists[0]...)
	buf := make([]Value, 0, len(cur))
	for _, l := range lists[1:] {
		buf = IntersectSorted(buf[:0], cur, l)
		cur, buf = buf, cur
		if len(cur) == 0 {
			return cur
		}
	}
	return cur
}
