package relation

import (
	"fmt"
	"sort"
)

// Database is a named collection of relations with a shared string
// dictionary. It is the unit of input to the join algorithms and the
// bound calculators.
type Database struct {
	rels map[string]*Relation
	dict *Dict
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation), dict: NewDict()}
}

// Dict returns the database's string dictionary.
func (db *Database) Dict() *Dict { return db.dict }

// Put stores (or replaces) a relation under its own name.
func (db *Database) Put(r *Relation) { db.rels[r.Name()] = r }

// Get returns the named relation.
func (db *Database) Get(name string) (*Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// MustGet returns the named relation or an error.
func (db *Database) MustGet(name string) (*Relation, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("relation: database has no relation %q", name)
	}
	return r, nil
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of tuples across all relations — the
// |D| term of the Õ(|D| + bound) runtime statements.
func (db *Database) Size() int {
	total := 0
	for _, r := range db.rels {
		total += r.Len()
	}
	return total
}

// MaxRelationSize returns max_F |R_F|, the N of the AGM bound N^ρ*.
func (db *Database) MaxRelationSize() int {
	best := 0
	for _, r := range db.rels {
		if r.Len() > best {
			best = r.Len()
		}
	}
	return best
}
