package relation

// HashIndex is a hash index over a subset of a relation's attributes.
// Probe returns the row positions whose key attributes equal the probe
// key; Contains is the membership-only variant. Keys are encoded as raw
// little-endian bytes of the key values.
type HashIndex struct {
	rel  *Relation
	cols []int
	rows map[string][]int32
}

// NewHashIndex builds a hash index over the named key attributes. It
// panics if a key attribute is missing from the schema (index creation
// is an internal, schema-checked step in this codebase).
func NewHashIndex(r *Relation, keyAttrs []string) *HashIndex {
	cols := make([]int, len(keyAttrs))
	for i, a := range keyAttrs {
		j := r.AttrIndex(a)
		if j < 0 {
			panic("relation: hash index on missing attribute " + a)
		}
		cols[i] = j
	}
	ix := &HashIndex{rel: r, cols: cols, rows: make(map[string][]int32, r.Len())}
	var kb []byte
	for i := 0; i < r.Len(); i++ {
		kb = kb[:0]
		for _, j := range cols {
			kb = appendValue(kb, r.cols[j][i])
		}
		k := string(kb)
		ix.rows[k] = append(ix.rows[k], int32(i))
	}
	return ix
}

// Probe returns the row positions matching key, or nil.
func (ix *HashIndex) Probe(key Tuple) []int32 {
	return ix.rows[encodeKey(key)]
}

// Contains reports whether any row matches key.
func (ix *HashIndex) Contains(key Tuple) bool {
	_, ok := ix.rows[encodeKey(key)]
	return ok
}

// MaxGroup returns the size of the largest key group (the empirical
// degree of the indexed attributes).
func (ix *HashIndex) MaxGroup() int {
	best := 0
	for _, rows := range ix.rows {
		if len(rows) > best {
			best = len(rows)
		}
	}
	return best
}

// Groups returns the number of distinct keys.
func (ix *HashIndex) Groups() int { return len(ix.rows) }

// Relation returns the indexed relation.
func (ix *HashIndex) Relation() *Relation { return ix.rel }

func appendValue(b []byte, v Value) []byte {
	for s := 0; s < 8; s++ {
		b = append(b, byte(v>>(8*s)))
	}
	return b
}

func encodeKey(key Tuple) string {
	b := make([]byte, 0, 8*len(key))
	for _, v := range key {
		b = appendValue(b, v)
	}
	return string(b)
}
