package relation

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadTSV reads a relation from tab-separated text: the first line is
// the attribute header, every following non-empty line is a tuple of
// integers. Lines starting with '#' are comments.
func ReadTSV(r io.Reader, name string) (*Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if b == nil {
			b = NewBuilder(name, fields...)
			continue
		}
		if len(fields) != b.arity {
			return nil, fmt.Errorf("relation: %s line %d: %d fields, want %d", name, lineNo, len(fields), b.arity)
		}
		row := make([]Value, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: %s line %d: %w", name, lineNo, err)
			}
			row[i] = Value(v)
		}
		if err := b.Add(row...); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("relation: %s: empty input (missing header)", name)
	}
	return b.Build(), nil
}

// WriteTSV writes the relation in the format ReadTSV reads.
func WriteTSV(w io.Writer, r *Relation) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(r.Attrs(), "\t") + "\n"); err != nil {
		return err
	}
	var row Tuple
	for i := 0; i < r.Len(); i++ {
		row = r.Tuple(i, row)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(int64(v), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
