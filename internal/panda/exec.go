package panda

import (
	"fmt"
	"math"

	"wcoj/internal/entropy"
	"wcoj/internal/relation"
)

// Affiliation maps conditional polymatroid terms to the relations
// "affiliated" with them, in the sense of Section 5.2.3: the relation
// guards the degree constraint whose term appears in the Shannon-flow
// inequality. Relation attributes must be named by the universe
// variables.
type Affiliation map[Term]*relation.Relation

// ExecStats reports executor counters.
type ExecStats struct {
	// Branches is the number of heavy/light branches at completion.
	Branches int
	// Intermediate is the largest intermediate relation produced by a
	// composition (join) step — the quantity the Shannon-flow analysis
	// bounds, cf. (76).
	Intermediate int
	// Joins and Partitions count executed relational operations.
	Joins      int
	Partitions int
	// Output is the number of result tuples after filtering.
	Output int
}

type branch struct {
	affil Affiliation
}

func (b *branch) clone() *branch {
	nb := &branch{affil: make(Affiliation, len(b.affil))}
	for t, r := range b.affil {
		nb.affil[t] = r
	}
	return nb
}

// Execute interprets the proof sequence over concrete relations
// (Table 2): a decomposition step partitions the affiliated relation
// into heavy/light parts and forks the execution into two branches; a
// submodularity step re-affiliates a relation with a bigger term
// (NOOP); a composition step joins the two affiliated relations. At
// the end every branch must affiliate the target term with a relation
// over all universe variables; the union of branch outputs, semijoined
// against every filter relation, is returned. When the filters are the
// query's atoms the result is exactly Q(D).
//
// Decomposition steps use Step.Theta as the heavy/light threshold; a
// zero Theta defaults to sqrt of the partitioned relation's size.
func Execute(ps *ProofSequence, vars []string, initial Affiliation, filters []*relation.Relation) (*relation.Relation, *ExecStats, error) {
	if len(vars) != ps.N {
		return nil, nil, fmt.Errorf("panda: %d variable names for universe size %d", len(vars), ps.N)
	}
	if err := ps.Verify(); err != nil {
		return nil, nil, fmt.Errorf("panda: refusing to execute an invalid sequence: %w", err)
	}
	stats := &ExecStats{}
	root := &branch{affil: make(Affiliation, len(initial))}
	for t, r := range initial {
		if !t.Valid() {
			return nil, nil, fmt.Errorf("panda: invalid affiliated term %+v", t)
		}
		// The relation must contain the term's S variables.
		for _, v := range entropy.MaskVars(t.S, vars) {
			if !r.HasAttr(v) {
				return nil, nil, fmt.Errorf("panda: relation %s affiliated with %s lacks attribute %q",
					r.Name(), t.Format(vars), v)
			}
		}
		root.affil[t] = r
	}
	branches := []*branch{root}

	for i, s := range ps.Steps {
		switch s.Kind {
		case Decomposition:
			var next []*branch
			for _, b := range branches {
				src := Term{S: s.Y}
				r, ok := b.affil[src]
				if !ok {
					next = append(next, b)
					continue
				}
				theta := s.Theta
				if theta <= 0 {
					theta = math.Sqrt(float64(r.Len()))
				}
				xVars := entropy.MaskVars(s.X, vars)
				heavy, light, err := r.Partition(xVars, int(math.Floor(theta)))
				if err != nil {
					return nil, nil, fmt.Errorf("panda: step %d: %w", i, err)
				}
				stats.Partitions++
				hb := b.clone()
				delete(hb.affil, src)
				hb.affil[Term{S: s.X}] = heavy
				lb := b.clone()
				delete(lb.affil, src)
				lb.affil[Term{S: s.Y, G: s.X}] = light
				next = append(next, hb, lb)
			}
			branches = next
		case Submodularity:
			src := Term{S: s.Y, G: s.Y & s.X}
			dst := Term{S: s.Y | s.X, G: s.X}
			for _, b := range branches {
				r, ok := b.affil[src]
				if !ok {
					continue
				}
				if _, busy := b.affil[dst]; busy {
					return nil, nil, fmt.Errorf("panda: step %d: term %s already affiliated", i, dst.Format(vars))
				}
				delete(b.affil, src)
				b.affil[dst] = r
			}
		case Composition:
			left := Term{S: s.X}
			right := Term{S: s.Y, G: s.X}
			dst := Term{S: s.Y}
			for _, b := range branches {
				lr, lok := b.affil[left]
				rr, rok := b.affil[right]
				if !lok || !rok {
					continue
				}
				joined, err := relation.Join(lr, rr)
				if err != nil {
					return nil, nil, fmt.Errorf("panda: step %d: %w", i, err)
				}
				stats.Joins++
				if joined.Len() > stats.Intermediate {
					stats.Intermediate = joined.Len()
				}
				delete(b.affil, left)
				delete(b.affil, right)
				if _, busy := b.affil[dst]; busy {
					return nil, nil, fmt.Errorf("panda: step %d: term %s already affiliated", i, dst.Format(vars))
				}
				b.affil[dst] = joined
			}
		}
	}

	stats.Branches = len(branches)
	target := Term{S: ps.Target}
	targetVars := entropy.MaskVars(ps.Target, vars)
	var out *relation.Relation
	for bi, b := range branches {
		r, ok := b.affil[target]
		if !ok {
			return nil, nil, fmt.Errorf("panda: branch %d finished without the target term %s", bi, target.Format(vars))
		}
		proj, err := r.Project(targetVars...)
		if err != nil {
			return nil, nil, err
		}
		proj, err = proj.Rename("Q", targetVars...)
		if err != nil {
			return nil, nil, err
		}
		if out == nil {
			out = proj
		} else {
			out, err = out.Union(proj)
			if err != nil {
				return nil, nil, err
			}
			out, err = out.Rename("Q", targetVars...)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	for _, f := range filters {
		var err error
		out, err = out.Semijoin(f)
		if err != nil {
			return nil, nil, err
		}
	}
	out, err := out.Rename("Q", targetVars...)
	if err != nil {
		return nil, nil, err
	}
	stats.Output = out.Len()
	return out, stats, nil
}
