// Package panda implements the Shannon-flow proof-sequence machinery
// of Section 5.2 and the PANDA-style executor that interprets a proof
// sequence as relational operations (Table 2):
//
//   - conditional polymatroid terms h(Y|X) (Definition 4);
//   - proof sequences made of decomposition, composition and
//     submodularity rules, with a mechanical verifier (Theorem 5.6
//     guarantees a sequence exists for every Shannon-flow inequality);
//   - an interpreter that executes a proof sequence over concrete
//     relations: decomposition ⇒ heavy/light partition, composition ⇒
//     join, submodularity ⇒ re-affiliation (NOOP);
//   - a bounded search that derives proof sequences for small queries;
//   - the paper's Example 1 (query Q(A,B,C,D) ← R,S,T,W,V) with the
//     exact Table 2 sequence and its θ.
//
// The implemented fragment is the conjunctive-query walk-through of
// Section 5.2.3; full PANDA additionally handles disjunctive datalog
// rules, which the paper only sketches.
package panda

import (
	"fmt"

	"math/bits"
	"strings"

	"wcoj/internal/entropy"
)

// Term is a conditional polymatroid term h(S|G) with G ⊆ S, both as
// variable bitmasks. h(S|∅) is the unconditional h(S).
type Term struct {
	S uint32 // the set
	G uint32 // the conditioning set, G ⊆ S
}

// Valid reports G ⊆ S and S non-empty.
func (t Term) Valid() bool { return t.S != 0 && t.G&^t.S == 0 }

// Unconditional reports whether the term is h(S|∅).
func (t Term) Unconditional() bool { return t.G == 0 }

// Format renders the term with variable names.
func (t Term) Format(vars []string) string {
	if t.G == 0 {
		return "h(" + strings.Join(entropy.MaskVars(t.S, vars), "") + ")"
	}
	return "h(" + strings.Join(entropy.MaskVars(t.S, vars), "") + "|" +
		strings.Join(entropy.MaskVars(t.G, vars), "") + ")"
}

// StepKind enumerates the proof-sequence rules of Section 5.2.3.
type StepKind int

// Proof-sequence rules.
const (
	// Decomposition: h(Y|∅) → h(Y|X) + h(X|∅).
	Decomposition StepKind = iota
	// Composition: h(Y|X) + h(X|∅) → h(Y|∅).
	Composition
	// Submodularity: h(I|I∩J) → h(I∪J|J).
	Submodularity
)

func (k StepKind) String() string {
	switch k {
	case Decomposition:
		return "decomposition"
	case Composition:
		return "composition"
	case Submodularity:
		return "submodularity"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Step is one weighted rule application.
type Step struct {
	Kind StepKind
	// Decomposition/Composition: Y and X of the rule (X ⊂ Y).
	// Submodularity: Y=I, X=J (arbitrary sets with I ⊥ J).
	Y, X uint32
	// W is the rule weight (must be positive).
	W float64
	// Theta is the partition threshold used when the step is executed
	// as a relational operation (decomposition only; ignored during
	// verification).
	Theta float64
}

// ProofSequence is a weighted proof of a Shannon-flow inequality
//
//	TargetWeight·h(Target) ≤ Σ_T Initial[T]·h(T)
//
// over all (conditional) polymatroids on n variables.
type ProofSequence struct {
	N            int
	Vars         []string // optional display names, len == N
	Target       uint32
	TargetWeight float64
	Initial      map[Term]float64
	Steps        []Step
}

const eps = 1e-9

// Verify mechanically checks the sequence: every step consumes only
// weight that is present, and after the last step the target term
// holds at least TargetWeight. A nil error means the sequence is a
// valid proof of the Shannon-flow inequality (each rule is a sound
// polymatroid implication: decomposition and composition are the
// conservation equality (71), submodularity is (70)).
func (ps *ProofSequence) Verify() error {
	if ps.N <= 0 || ps.N > entropy.MaxN {
		return fmt.Errorf("panda: bad universe size %d", ps.N)
	}
	full := uint32(1)<<uint(ps.N) - 1
	if ps.Target == 0 || ps.Target&^full != 0 {
		return fmt.Errorf("panda: bad target mask %b", ps.Target)
	}
	state := make(map[Term]float64, len(ps.Initial))
	for t, w := range ps.Initial {
		if !t.Valid() || t.S&^full != 0 {
			return fmt.Errorf("panda: invalid initial term %+v", t)
		}
		if w < -eps {
			return fmt.Errorf("panda: negative initial weight %v on %+v", w, t)
		}
		state[t] += w
	}
	take := func(t Term, w float64, step int) error {
		if state[t] < w-eps {
			return fmt.Errorf("panda: step %d needs %v of %+v but only %v is available", step, w, t, state[t])
		}
		state[t] -= w
		return nil
	}
	for i, s := range ps.Steps {
		if s.W <= eps {
			return fmt.Errorf("panda: step %d has non-positive weight %v", i, s.W)
		}
		switch s.Kind {
		case Decomposition:
			y, x := s.Y, s.X
			if x == 0 || x&^y != 0 || x == y {
				return fmt.Errorf("panda: step %d: decomposition needs ∅ ≠ X ⊂ Y", i)
			}
			if err := take(Term{S: y}, s.W, i); err != nil {
				return err
			}
			state[Term{S: y, G: x}] += s.W
			state[Term{S: x}] += s.W
		case Composition:
			y, x := s.Y, s.X
			if x == 0 || x&^y != 0 || x == y {
				return fmt.Errorf("panda: step %d: composition needs ∅ ≠ X ⊂ Y", i)
			}
			if err := take(Term{S: y, G: x}, s.W, i); err != nil {
				return err
			}
			if err := take(Term{S: x}, s.W, i); err != nil {
				return err
			}
			state[Term{S: y}] += s.W
		case Submodularity:
			iSet, jSet := s.Y, s.X
			if iSet&^jSet == 0 || jSet&^iSet == 0 {
				return fmt.Errorf("panda: step %d: submodularity needs I ⊥ J (incomparable sets)", i)
			}
			src := Term{S: iSet, G: iSet & jSet}
			dst := Term{S: iSet | jSet, G: jSet}
			if err := take(src, s.W, i); err != nil {
				return err
			}
			state[dst] += s.W
		default:
			return fmt.Errorf("panda: step %d has unknown kind %v", i, s.Kind)
		}
	}
	tw := ps.TargetWeight
	if tw == 0 {
		tw = 1
	}
	got := state[Term{S: ps.Target}]
	if got < tw-1e-7 {
		return fmt.Errorf("panda: final target weight %v < required %v", got, tw)
	}
	return nil
}

// Inequality returns the proven Shannon-flow inequality as a linear
// form: TargetWeight·h(Target) − Σ Initial[T]·(h(S)−h(G)) ≤ 0, i.e.
// the entropy.LinearForm F with F ≥ 0 meaning the RHS dominates.
func (ps *ProofSequence) Inequality() entropy.LinearForm {
	form := entropy.LinearForm{}
	tw := ps.TargetWeight
	if tw == 0 {
		tw = 1
	}
	form[ps.Target] -= tw
	for t, w := range ps.Initial {
		form[t.S] += w
		if t.G != 0 {
			form[t.G] -= w
		}
	}
	return form
}

// CheckNumeric evaluates the sequence against a concrete polymatroid:
// the total weighted value Σ w_T·h(T) must be non-increasing step by
// step (submodularity steps may strictly decrease it; the others
// preserve it), and the initial total must be at least
// TargetWeight·h(Target). Used as an independent soundness oracle in
// tests.
func (ps *ProofSequence) CheckNumeric(h *entropy.SetFunction) error {
	if h.N() != ps.N {
		return fmt.Errorf("panda: polymatroid on %d vars, sequence on %d", h.N(), ps.N)
	}
	value := func(state map[Term]float64) float64 {
		total := 0.0
		for t, w := range state {
			total += w * (h.Get(t.S) - h.Get(t.G))
		}
		return total
	}
	state := make(map[Term]float64, len(ps.Initial))
	for t, w := range ps.Initial {
		state[t] += w
	}
	prev := value(state)
	for i, s := range ps.Steps {
		switch s.Kind {
		case Decomposition:
			state[Term{S: s.Y}] -= s.W
			state[Term{S: s.Y, G: s.X}] += s.W
			state[Term{S: s.X}] += s.W
		case Composition:
			state[Term{S: s.Y, G: s.X}] -= s.W
			state[Term{S: s.X}] -= s.W
			state[Term{S: s.Y}] += s.W
		case Submodularity:
			state[Term{S: s.Y, G: s.Y & s.X}] -= s.W
			state[Term{S: s.Y | s.X, G: s.X}] += s.W
		}
		cur := value(state)
		if cur > prev+1e-7 {
			return fmt.Errorf("panda: step %d increased the weighted value from %v to %v", i, prev, cur)
		}
		prev = cur
	}
	tw := ps.TargetWeight
	if tw == 0 {
		tw = 1
	}
	if prev < tw*h.Get(ps.Target)-1e-7 {
		return fmt.Errorf("panda: final value %v below target %v", prev, tw*h.Get(ps.Target))
	}
	return nil
}

// String renders the proof sequence in the style of Table 2.
func (ps *ProofSequence) String() string {
	vars := ps.Vars
	if vars == nil {
		vars = defaultVars(ps.N)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "prove %g·%s ≤", weightOrOne(ps.TargetWeight), Term{S: ps.Target}.Format(vars))
	first := true
	for t, w := range ps.Initial {
		if !first {
			b.WriteString(" +")
		}
		first = false
		fmt.Fprintf(&b, " %g·%s", w, t.Format(vars))
	}
	b.WriteString("\n")
	for i, s := range ps.Steps {
		switch s.Kind {
		case Decomposition:
			fmt.Fprintf(&b, "%2d. decompose  %s → %s + %s  (w=%g)\n", i+1,
				Term{S: s.Y}.Format(vars), Term{S: s.Y, G: s.X}.Format(vars), Term{S: s.X}.Format(vars), s.W)
		case Composition:
			fmt.Fprintf(&b, "%2d. compose    %s + %s → %s  (w=%g)\n", i+1,
				Term{S: s.Y, G: s.X}.Format(vars), Term{S: s.X}.Format(vars), Term{S: s.Y}.Format(vars), s.W)
		case Submodularity:
			fmt.Fprintf(&b, "%2d. submodular %s → %s  (w=%g)\n", i+1,
				Term{S: s.Y, G: s.Y & s.X}.Format(vars), Term{S: s.Y | s.X, G: s.X}.Format(vars), s.W)
		}
	}
	return b.String()
}

func weightOrOne(w float64) float64 {
	if w == 0 {
		return 1
	}
	return w
}

func defaultVars(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

// PopCount returns |S| for a term mask.
func PopCount(s uint32) int { return bits.OnesCount32(s) }
