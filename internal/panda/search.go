package panda

import (
	"fmt"
	"sort"
)

// FindSequence searches for a proof sequence of the Shannon-flow
// inequality targetWeight·h(target) ≤ Σ initial[T]·h(T) by bounded
// iterative-deepening DFS over integer-scaled term multisets. scale
// converts the given float weights to integers (weights must be
// multiples of 1/scale). The search explores decomposition,
// composition and submodularity moves; maxDepth bounds the number of
// steps and nodeBudget the explored states.
//
// Theorem 5.6 guarantees a sequence exists whenever the inequality is
// a Shannon-flow inequality; this bounded search finds them for the
// small universes (n ≤ 4) the paper's examples use. Returned steps
// have unit integer weights divided back by scale.
func FindSequence(n int, target uint32, targetWeight float64, initial map[Term]float64, scale int, maxDepth, nodeBudget int) (*ProofSequence, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("panda: scale must be positive")
	}
	full := uint32(1)<<uint(n) - 1
	goal := int(targetWeight*float64(scale) + 0.5)
	start := make(map[Term]int, len(initial))
	for t, w := range initial {
		iw := int(w*float64(scale) + 0.5)
		if iw > 0 {
			start[t] += iw
		}
	}

	type move struct {
		kind StepKind
		y, x uint32
	}
	apply := func(state map[Term]int, m move) map[Term]int {
		ns := make(map[Term]int, len(state)+2)
		for t, w := range state {
			ns[t] = w
		}
		dec := func(t Term) {
			ns[t]--
			if ns[t] == 0 {
				delete(ns, t)
			}
		}
		switch m.kind {
		case Decomposition:
			dec(Term{S: m.y})
			ns[Term{S: m.y, G: m.x}]++
			ns[Term{S: m.x}]++
		case Composition:
			dec(Term{S: m.y, G: m.x})
			dec(Term{S: m.x})
			ns[Term{S: m.y}]++
		case Submodularity:
			dec(Term{S: m.y, G: m.y & m.x})
			ns[Term{S: m.y | m.x, G: m.x}]++
		}
		return ns
	}

	// moves generates all unit-weight moves from a state.
	moves := func(state map[Term]int) []move {
		var out []move
		for t := range state {
			if t.G == 0 {
				// Decomposition: pick ∅ ≠ X ⊂ S.
				s := t.S
				for x := (s - 1) & s; x > 0; x = (x - 1) & s {
					out = append(out, move{Decomposition, s, x})
				}
				// Submodularity with I = S, G = ∅: J ranges over
				// non-empty subsets of the complement of S.
				comp := full &^ s
				for j := comp; j > 0; j = (j - 1) & comp {
					out = append(out, move{Submodularity, s, j})
				}
			} else {
				// Submodularity from h(S|G): J = G ∪ K, K non-empty
				// subset of the complement of S.
				comp := full &^ t.S
				for k := comp; k > 0; k = (k - 1) & comp {
					out = append(out, move{Submodularity, t.S, t.G | k})
				}
				// Composition if the partner h(G) is available.
				if state[Term{S: t.G}] > 0 {
					out = append(out, move{Composition, t.S, t.G})
				}
			}
		}
		// Deterministic order: compositions first (they make progress
		// toward the target), then submodularities, then
		// decompositions.
		sort.Slice(out, func(i, j int) bool {
			if out[i].kind != out[j].kind {
				return kindRank(out[i].kind) < kindRank(out[j].kind)
			}
			if out[i].y != out[j].y {
				return out[i].y < out[j].y
			}
			return out[i].x < out[j].x
		})
		return out
	}

	key := func(state map[Term]int) string {
		type kv struct {
			t Term
			w int
		}
		kvs := make([]kv, 0, len(state))
		for t, w := range state {
			kvs = append(kvs, kv{t, w})
		}
		sort.Slice(kvs, func(i, j int) bool {
			if kvs[i].t.S != kvs[j].t.S {
				return kvs[i].t.S < kvs[j].t.S
			}
			return kvs[i].t.G < kvs[j].t.G
		})
		b := make([]byte, 0, len(kvs)*9)
		for _, e := range kvs {
			b = append(b, byte(e.t.S), byte(e.t.S>>8), byte(e.t.G), byte(e.t.G>>8),
				byte(e.w), byte(e.w>>8))
		}
		return string(b)
	}

	nodes := 0
	for depth := 1; depth <= maxDepth; depth++ {
		visited := make(map[string]int)
		var path []move
		var dfs func(state map[Term]int, d int) bool
		dfs = func(state map[Term]int, d int) bool {
			if state[Term{S: target}] >= goal {
				return true
			}
			if d == 0 {
				return false
			}
			nodes++
			if nodes > nodeBudget {
				return false
			}
			k := key(state)
			if prev, ok := visited[k]; ok && prev >= d {
				return false
			}
			visited[k] = d
			for _, m := range moves(state) {
				path = append(path, m)
				if dfs(apply(state, m), d-1) {
					return true
				}
				path = path[:len(path)-1]
			}
			return false
		}
		if dfs(start, depth) {
			steps := make([]Step, len(path))
			for i, m := range path {
				steps[i] = Step{Kind: m.kind, Y: m.y, X: m.x, W: 1.0 / float64(scale)}
			}
			return &ProofSequence{
				N:            n,
				Target:       target,
				TargetWeight: targetWeight,
				Initial:      initial,
				Steps:        steps,
			}, nil
		}
		if nodes > nodeBudget {
			return nil, fmt.Errorf("panda: node budget %d exhausted at depth %d", nodeBudget, depth)
		}
	}
	return nil, fmt.Errorf("panda: no proof sequence found within depth %d", maxDepth)
}

func kindRank(k StepKind) int {
	switch k {
	case Composition:
		return 0
	case Submodularity:
		return 1
	default:
		return 2
	}
}
