package panda

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"wcoj/internal/entropy"
	"wcoj/internal/relation"
)

func TestTermBasics(t *testing.T) {
	if !(Term{S: 0b11, G: 0b01}).Valid() {
		t.Fatal("h(AB|A) is valid")
	}
	if (Term{S: 0b01, G: 0b10}).Valid() {
		t.Fatal("G ⊄ S must be invalid")
	}
	if (Term{S: 0, G: 0}).Valid() {
		t.Fatal("empty S must be invalid")
	}
	if !(Term{S: 0b11}).Unconditional() || (Term{S: 0b11, G: 0b01}).Unconditional() {
		t.Fatal("Unconditional mismatch")
	}
	vars := []string{"A", "B"}
	if got := (Term{S: 0b11, G: 0b01}).Format(vars); got != "h(AB|A)" {
		t.Fatalf("Format = %q", got)
	}
	if got := (Term{S: 0b10}).Format(vars); got != "h(B)" {
		t.Fatalf("Format = %q", got)
	}
	if PopCount(0b1011) != 3 {
		t.Fatal("PopCount")
	}
	if Decomposition.String() != "decomposition" || StepKind(9).String() == "" {
		t.Fatal("StepKind.String")
	}
}

// triangleSequence is the Section 2 proof of
// 2h(ABC) ≤ h(AB) + h(BC) + h(AC) as a proof sequence (eqs 21–24).
func triangleSequence() *ProofSequence {
	const (
		a   uint32 = 1
		b   uint32 = 2
		c   uint32 = 4
		ab         = a | b
		bc         = b | c
		ac         = a | c
		abc        = a | b | c
	)
	return &ProofSequence{
		N:            3,
		Target:       abc,
		TargetWeight: 2,
		Initial: map[Term]float64{
			{S: ab}: 1, {S: bc}: 1, {S: ac}: 1,
		},
		Steps: []Step{
			{Kind: Decomposition, Y: ab, X: a, W: 1},  // h(AB) → h(AB|A) + h(A)
			{Kind: Submodularity, Y: a, X: bc, W: 1},  // h(A) → h(ABC|BC)
			{Kind: Composition, Y: abc, X: bc, W: 1},  // h(ABC|BC) + h(BC) → h(ABC)
			{Kind: Submodularity, Y: ab, X: ac, W: 1}, // h(AB|A) → h(ABC|AC)
			{Kind: Composition, Y: abc, X: ac, W: 1},  // h(ABC|AC) + h(AC) → h(ABC)
		},
	}
}

func TestVerifyTriangleSequence(t *testing.T) {
	ps := triangleSequence()
	if err := ps.Verify(); err != nil {
		t.Fatal(err)
	}
	if ps.String() == "" || !strings.Contains(ps.String(), "compose") {
		t.Fatal("String rendering")
	}
}

func TestVerifyExample1(t *testing.T) {
	ps := Example1Sequence(Example1Stats{NAB: 100, NBC: 100, NCD: 100, NACDgAC: 10, NABDgBD: 10})
	if err := ps.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsBadSequences(t *testing.T) {
	ps := triangleSequence()
	// Consume more than available.
	ps.Steps[0].W = 2
	if err := ps.Verify(); err == nil {
		t.Fatal("over-consumption must fail")
	}
	ps = triangleSequence()
	ps.Steps = ps.Steps[:4] // target weight only 1 of 2
	if err := ps.Verify(); err == nil {
		t.Fatal("insufficient target weight must fail")
	}
	ps = triangleSequence()
	ps.Steps[0].X = ps.Steps[0].Y // X = Y
	if err := ps.Verify(); err == nil {
		t.Fatal("X=Y decomposition must fail")
	}
	ps = triangleSequence()
	ps.Steps[1].X = 0b010 // J ⊂ I? I=A(001), J=B(010) is fine; make J ⊆ I instead
	ps.Steps[1].Y = 0b011
	ps.Steps[1].X = 0b001 // J ⊂ I: not incomparable
	if err := ps.Verify(); err == nil {
		t.Fatal("comparable submodularity sets must fail")
	}
	ps = triangleSequence()
	ps.Steps[0].W = -1
	if err := ps.Verify(); err == nil {
		t.Fatal("negative weight must fail")
	}
	ps = triangleSequence()
	ps.Target = 0
	if err := ps.Verify(); err == nil {
		t.Fatal("bad target must fail")
	}
	ps = triangleSequence()
	ps.Initial[Term{S: 0b01, G: 0b10}] = 1
	if err := ps.Verify(); err == nil {
		t.Fatal("invalid initial term must fail")
	}
}

// TestSequenceImpliesInequality: a verified sequence's inequality must
// hold for all polymatroids (checked by LP) and numerically on sampled
// entropy functions.
func TestSequenceImpliesInequality(t *testing.T) {
	for name, ps := range map[string]*ProofSequence{
		"triangle": triangleSequence(),
		"example1": Example1Sequence(Example1Stats{NAB: 10, NBC: 10, NCD: 10, NACDgAC: 3, NABDgBD: 3}),
	} {
		if err := ps.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ok, min, err := entropy.HoldsForAllPolymatroids(ps.N, ps.Inequality(), 1e-6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Fatalf("%s: proven inequality fails LP check (min=%v)", name, min)
		}
	}
}

func TestCheckNumeric(t *testing.T) {
	ps := triangleSequence()
	// Random empirical entropy functions are polymatroids.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		seen := make(map[[3]int64]bool)
		var tuples [][]int64
		for i := 0; i < 1+rng.Intn(15); i++ {
			k := [3]int64{int64(rng.Intn(3)), int64(rng.Intn(3)), int64(rng.Intn(3))}
			if seen[k] {
				continue
			}
			seen[k] = true
			tuples = append(tuples, []int64{k[0], k[1], k[2]})
		}
		h, err := entropy.FromTuples(3, tuples)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.CheckNumeric(h); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	// Wrong universe size.
	h2 := entropy.NewSetFunction(2)
	if err := ps.CheckNumeric(h2); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func mkRel(t testing.TB, name string, attrs []string, rows ...[]relation.Value) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder(name, attrs...)
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// randomExample1Instance builds relations for Example 1 where W and V
// have bounded degrees.
func randomExample1Instance(seed int64, n, dom int) (r, s, tt, w, v *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	br := relation.NewBuilder("R", "A", "B")
	bs := relation.NewBuilder("S", "B", "C")
	bt := relation.NewBuilder("T", "C", "D")
	bw := relation.NewBuilder("W", "A", "C", "D")
	bv := relation.NewBuilder("V", "A", "B", "D")
	for i := 0; i < n; i++ {
		br.Add(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		bs.Add(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		bt.Add(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		bw.Add(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		bv.Add(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
	}
	return br.Build(), bs.Build(), bt.Build(), bw.Build(), bv.Build()
}

// naiveExample1 computes the Example 1 query by folding joins.
func naiveExample1(t testing.TB, r, s, tt, w, v *relation.Relation) *relation.Relation {
	t.Helper()
	cur, err := relation.Join(r, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, next := range []*relation.Relation{tt, w, v} {
		cur, err = relation.Join(cur, next)
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := cur.Project("A", "B", "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	out, err = out.Rename("Q", "A", "B", "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestExecuteExample1(t *testing.T) {
	r, s, tt, w, v := randomExample1Instance(3, 200, 8)
	st := Example1Stats{
		NAB:     float64(r.Len()),
		NBC:     float64(s.Len()),
		NCD:     float64(tt.Len()),
		NACDgAC: degOr1(t, w, []string{"A", "C"}, []string{"A", "C", "D"}),
		NABDgBD: degOr1(t, v, []string{"B", "D"}, []string{"A", "B", "D"}),
	}
	ps := Example1Sequence(st)
	affil := Affiliation{
		{S: mAB}:          r,
		{S: mBC}:          s,
		{S: mCD}:          tt,
		{S: mACD, G: mAC}: w,
		{S: mABD, G: mBD}: v,
	}
	filters := []*relation.Relation{r, s, tt, w, v}
	got, stats, err := Execute(ps, Example1Vars, affil, filters)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveExample1(t, r, s, tt, w, v)
	if !got.Equal(want) {
		t.Fatalf("PANDA = %d rows, want %d", got.Len(), want.Len())
	}
	if stats.Branches != 2 || stats.Joins != 4 || stats.Partitions != 1 {
		t.Fatalf("stats = %+v, want 2 branches, 4 joins, 1 partition", stats)
	}
	if stats.Output != got.Len() {
		t.Fatal("stats.Output mismatch")
	}
}

func degOr1(t testing.TB, r *relation.Relation, x, y []string) float64 {
	t.Helper()
	d, err := r.MaxDegree(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1 {
		return 1
	}
	return float64(d)
}

func TestExecuteErrors(t *testing.T) {
	ps := triangleSequence()
	r := mkRel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	s := mkRel(t, "S", []string{"B", "C"}, []relation.Value{2, 3})
	tt := mkRel(t, "T", []string{"A", "C"}, []relation.Value{1, 3})
	affil := Affiliation{
		{S: 0b011}: r, {S: 0b110}: s, {S: 0b101}: tt,
	}
	// Wrong number of variable names.
	if _, _, err := Execute(ps, []string{"A", "B"}, affil, nil); err == nil {
		t.Fatal("wrong vars length must fail")
	}
	// Relation missing an attribute of its term.
	bad := Affiliation{
		{S: 0b011}: mkRel(t, "R", []string{"X", "Y"}, []relation.Value{1, 2}),
		{S: 0b110}: s, {S: 0b101}: tt,
	}
	if _, _, err := Execute(ps, []string{"A", "B", "C"}, bad, nil); err == nil {
		t.Fatal("missing attribute must fail")
	}
	// Invalid sequence refused.
	badSeq := triangleSequence()
	badSeq.Steps[0].W = 5
	if _, _, err := Execute(badSeq, []string{"A", "B", "C"}, affil, nil); err == nil {
		t.Fatal("invalid sequence must be refused")
	}
}

func TestExecuteTriangleSequence(t *testing.T) {
	// The triangle proof sequence executes as Algorithm 2: partition R
	// by A, two join branches. Verify against the naive join.
	rng := rand.New(rand.NewSource(9))
	br := relation.NewBuilder("R", "A", "B")
	bs := relation.NewBuilder("S", "B", "C")
	bt := relation.NewBuilder("T", "A", "C")
	for i := 0; i < 250; i++ {
		br.Add(relation.Value(rng.Intn(12)), relation.Value(rng.Intn(12)))
		bs.Add(relation.Value(rng.Intn(12)), relation.Value(rng.Intn(12)))
		bt.Add(relation.Value(rng.Intn(12)), relation.Value(rng.Intn(12)))
	}
	r, s, tt := br.Build(), bs.Build(), bt.Build()
	ps := triangleSequence()
	// θ from Algorithm 2: sqrt(|R||S|/|T|) for the decomposition of AB.
	ps.Steps[0].Theta = math.Sqrt(float64(r.Len()) * float64(s.Len()) / float64(tt.Len()))
	affil := Affiliation{
		{S: 0b011}: r, {S: 0b110}: s, {S: 0b101}: tt,
	}
	got, stats, err := Execute(ps, []string{"A", "B", "C"}, affil, []*relation.Relation{r, s, tt})
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.Join(r, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err = want.Semijoin(tt)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := want.Project("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	wantP, err = wantP.Rename("Q", "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantP) {
		t.Fatalf("triangle PANDA = %d rows, want %d", got.Len(), wantP.Len())
	}
	if stats.Branches != 2 {
		t.Fatalf("branches = %d", stats.Branches)
	}
}

func TestFindSequenceTriangle(t *testing.T) {
	// Find 2h(ABC) ≤ h(AB)+h(BC)+h(AC) automatically.
	initial := map[Term]float64{
		{S: 0b011}: 1, {S: 0b110}: 1, {S: 0b101}: 1,
	}
	ps, err := FindSequence(3, 0b111, 2, initial, 1, 6, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Verify(); err != nil {
		t.Fatalf("found sequence does not verify: %v", err)
	}
	ok, _, err := entropy.HoldsForAllPolymatroids(3, ps.Inequality(), 1e-6)
	if err != nil || !ok {
		t.Fatalf("found sequence proves an invalid inequality: %v", err)
	}
}

func TestFindSequenceChain(t *testing.T) {
	// h(ABC) ≤ h(A) + h(AB|A) + h(BC|B): a chain of compositions and a
	// submodularity. (h(AB|A)+h(A) → h(AB); h(BC|B) → h(ABC|AB);
	// compose.)
	initial := map[Term]float64{
		{S: 0b001}:           1,
		{S: 0b011, G: 0b001}: 1,
		{S: 0b110, G: 0b010}: 1,
	}
	ps, err := FindSequence(3, 0b111, 1, initial, 1, 4, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFindSequenceErrors(t *testing.T) {
	if _, err := FindSequence(2, 0b11, 1, nil, 0, 3, 1000); err == nil {
		t.Fatal("zero scale must fail")
	}
	// Unprovable: h(AB) ≤ h(A) is false.
	initial := map[Term]float64{{S: 0b01}: 1}
	if _, err := FindSequence(2, 0b11, 1, initial, 1, 4, 100_000); err == nil {
		t.Fatal("false inequality must not be proved")
	}
}
