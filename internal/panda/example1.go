package panda

import "math"

// Example 1 of the paper: the query
//
//	Q(A,B,C,D) ← R(A,B), S(B,C), T(C,D), W(A,C,D), V(A,B,D)
//
// with degree constraints N_AB (R), N_BC (S), N_CD (T), N_ACD|AC (W),
// N_ABD|BD (V), and the Shannon-flow inequality
//
//	h(ABCD) ≤ ½[h(AB) + h(BC) + h(CD) + h(ACD|AC) + h(ABD|BD)]
//
// proved by the Table 2 proof sequence, which PANDA executes in time
// Õ(sqrt(N_BC·N_CD·N_ABD|BD·N_AB·N_ACD|AC)) using the threshold
// θ = sqrt(N_BC·N_CD·N_ABD|BD / (N_AB·N_ACD|AC)).

// Example1Vars is the variable universe of Example 1 in mask order.
var Example1Vars = []string{"A", "B", "C", "D"}

// Masks for the Example 1 variable sets.
const (
	mA    uint32 = 1 << 0
	mB    uint32 = 1 << 1
	mC    uint32 = 1 << 2
	mD    uint32 = 1 << 3
	mAB          = mA | mB
	mBC          = mB | mC
	mCD          = mC | mD
	mAC          = mA | mC
	mBD          = mB | mD
	mABC         = mA | mB | mC
	mBCD         = mB | mC | mD
	mACD         = mA | mC | mD
	mABD         = mA | mB | mD
	mABCD        = mA | mB | mC | mD
)

// Example1Stats carries the degree-constraint statistics of Example 1.
type Example1Stats struct {
	NAB, NBC, NCD float64 // cardinalities of R, S, T
	NACDgAC       float64 // deg_W(ACD|AC)
	NABDgBD       float64 // deg_V(ABD|BD)
}

// Theta returns the paper's partition threshold
// θ = sqrt(N_BC·N_CD·N_ABD|BD / (N_AB·N_ACD|AC)) (Table 2 caption).
func (st Example1Stats) Theta() float64 {
	return math.Sqrt(st.NBC * st.NCD * st.NABDgBD / (st.NAB * st.NACDgAC))
}

// RuntimeBound returns the PANDA runtime bound (75):
// sqrt(N_BC·N_CD·N_ABD|BD·N_AB·N_ACD|AC).
func (st Example1Stats) RuntimeBound() float64 {
	return math.Sqrt(st.NBC * st.NCD * st.NABDgBD * st.NAB * st.NACDgAC)
}

// Example1Sequence returns the Table 2 proof sequence. All rule weights
// are 1 and the target h(ABCD) is produced with weight 2, which is the
// inequality above scaled by two. The decomposition step carries θ
// from the supplied statistics.
func Example1Sequence(st Example1Stats) *ProofSequence {
	return &ProofSequence{
		N:            4,
		Vars:         Example1Vars,
		Target:       mABCD,
		TargetWeight: 2,
		Initial: map[Term]float64{
			{S: mAB}:          1,
			{S: mBC}:          1,
			{S: mCD}:          1,
			{S: mACD, G: mAC}: 1,
			{S: mABD, G: mBD}: 1,
		},
		Steps: []Step{
			// 1. decomposition h(BC) → h(B) + h(BC|B); partition S.
			{Kind: Decomposition, Y: mBC, X: mB, W: 1, Theta: st.Theta()},
			// 2. submodularity h(CD) → h(BCD|B); T re-affiliates.
			{Kind: Submodularity, Y: mCD, X: mB, W: 1},
			// 3. composition h(B) + h(BCD|B) → h(BCD); I1 ← Sheavy ⋈ T.
			{Kind: Composition, Y: mBCD, X: mB, W: 1},
			// 4. submodularity h(ABD|BD) → h(ABCD|BCD); V re-affiliates.
			{Kind: Submodularity, Y: mABD, X: mBCD, W: 1},
			// 5. composition h(BCD) + h(ABCD|BCD) → h(ABCD); output1 ← I1 ⋈ V.
			{Kind: Composition, Y: mABCD, X: mBCD, W: 1},
			// 6. submodularity h(BC|B) → h(ABC|AB); Slight re-affiliates.
			{Kind: Submodularity, Y: mBC, X: mAB, W: 1},
			// 7. composition h(AB) + h(ABC|AB) → h(ABC); I2 ← R ⋈ Slight.
			{Kind: Composition, Y: mABC, X: mAB, W: 1},
			// 8. submodularity h(ACD|AC) → h(ABCD|ABC); W re-affiliates.
			{Kind: Submodularity, Y: mACD, X: mABC, W: 1},
			// 9. composition h(ABC) + h(ABCD|ABC) → h(ABCD); output2 ← I2 ⋈ W.
			{Kind: Composition, Y: mABCD, X: mABC, W: 1},
		},
	}
}
