package stats

import (
	"math"
	"testing"

	"wcoj/internal/bounds"
	"wcoj/internal/core"
	"wcoj/internal/dataset"
	"wcoj/internal/relation"
)

func triQuery(t testing.TB, tri dataset.Triangle) *core.Query {
	t.Helper()
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCardinalities(t *testing.T) {
	q := triQuery(t, dataset.TriangleAGMTight(100))
	dc := Cardinalities(q)
	if len(dc) != 3 {
		t.Fatalf("got %d constraints", len(dc))
	}
	for _, c := range dc {
		if !c.IsCardinality() || c.N != 100 {
			t.Fatalf("constraint %v", c)
		}
	}
	if err := VerifySatisfies(q, dc); err != nil {
		t.Fatal(err)
	}
}

func TestDegrees(t *testing.T) {
	tri := dataset.TriangleAGMTight(100)
	q := triQuery(t, tri)
	dc, err := Degrees(q.Atoms[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	// For R = [10]×[10]: constraints include (∅,{A},10), (∅,{A,B},100),
	// ({A},{A,B},10), etc.
	found := 0
	for _, c := range dc {
		switch {
		case len(c.Y) == 2 && len(c.X) == 1 && c.N == 10:
			found++
		case len(c.Y) == 2 && len(c.X) == 0 && c.N == 100:
			found++
		case len(c.Y) == 1 && len(c.X) == 0 && c.N == 10:
			found++
		}
	}
	if found < 5 {
		t.Fatalf("expected the bipartite degree profile, got %v", dc)
	}
	if err := VerifySatisfies(q, dc); err != nil {
		t.Fatal(err)
	}
}

func TestAllDegreesAndBoundSandwich(t *testing.T) {
	// Table 1 experiment in miniature: measured log|Q| ≤ polymatroid
	// bound from extracted constraints, with equality on the AGM-tight
	// instance.
	tri := dataset.TriangleAGMTight(100)
	q := triQuery(t, tri)
	dc, err := AllDegrees(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bounds.Polymatroid(q.Vars, dc)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := core.GenericJoin(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	logOut := math.Log2(float64(out.Len()))
	if logOut > b.LogBound+1e-6 {
		t.Fatalf("measured %v exceeds polymatroid bound %v", logOut, b.LogBound)
	}
	// AGM-tight: equality.
	if math.Abs(logOut-b.LogBound) > 1e-6 {
		t.Fatalf("AGM-tight instance should meet the bound: %v vs %v", logOut, b.LogBound)
	}
	// The output's empirical entropy is a feasible point of the
	// entropic-bound program: H[full] = log|Q|, H respects constraints.
	h, err := OutputEntropy(out, q.Vars)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Get(h.Full())-logOut) > 1e-9 {
		t.Fatal("H[full] must equal log|Q|")
	}
	if !h.IsPolymatroid(1e-9) {
		t.Fatal("output entropy must be a polymatroid")
	}
}

func TestOutputEntropyErrors(t *testing.T) {
	r := relation.New("R", []string{"A", "B"}, []relation.Tuple{{1, 2}})
	if _, err := OutputEntropy(r, []string{"A"}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := OutputEntropy(r, []string{"B", "A"}); err == nil {
		t.Fatal("column order mismatch must fail")
	}
}

func TestVerifySatisfiesViolation(t *testing.T) {
	tri := dataset.TriangleAGMTight(100)
	q := triQuery(t, tri)
	dc := Cardinalities(q)
	dc[0].N = 5 // lie about |R|
	if err := VerifySatisfies(q, dc); err == nil {
		t.Fatal("violated constraint must be reported")
	}
	dc = Cardinalities(q)
	dc[0].Guard = "nope"
	if err := VerifySatisfies(q, dc); err == nil {
		t.Fatal("missing guard must be reported")
	}
}
