// Package stats extracts degree-constraint statistics from concrete
// relations (the empirical N_{Y|X} of Definition 1) and empirical
// entropy functions from query outputs — the measured side of the
// bound sandwich log|Q(D)| ≤ entropic ≤ polymatroid that replaces the
// uncomputable entropic bound in the Table 1 experiments.
package stats

import (
	"fmt"

	"wcoj/internal/constraints"
	"wcoj/internal/core"
	"wcoj/internal/entropy"
	"wcoj/internal/relation"
)

// Cardinalities returns the cardinality constraints (∅, vars(F), |R_F|)
// of every atom in the query.
func Cardinalities(q *core.Query) constraints.Set {
	var dc constraints.Set
	for _, a := range q.Atoms {
		n := float64(a.Rel.Len())
		if n < 1 {
			n = 1
		}
		dc = append(dc, constraints.Cardinality(a.Name, a.Vars, n))
	}
	return dc
}

// Degrees returns all degree constraints (X, Y, deg(Y|X)) realized by
// an atom's relation, for every pair X ⊂ Y ⊆ vars(F) with |Y| ≤ maxY.
// This is exponential in the atom arity; arities in this repository
// are ≤ 3–4. Trivial constraints (N equal to the full cardinality with
// X = ∅ are kept — they are the cardinality constraints).
func Degrees(a core.Atom, maxY int) (constraints.Set, error) {
	rel, err := a.Rel.Rename(a.Name, a.Vars...)
	if err != nil {
		return nil, err
	}
	k := len(a.Vars)
	if maxY <= 0 || maxY > k {
		maxY = k
	}
	var dc constraints.Set
	for ym := 1; ym < 1<<uint(k); ym++ {
		var y []string
		for i := 0; i < k; i++ {
			if ym&(1<<uint(i)) != 0 {
				y = append(y, a.Vars[i])
			}
		}
		if len(y) > maxY {
			continue
		}
		for xm := 0; xm < 1<<uint(k); xm++ {
			if xm&ym != xm || xm == ym {
				continue // X must be a strict subset of Y
			}
			var x []string
			for i := 0; i < k; i++ {
				if xm&(1<<uint(i)) != 0 {
					x = append(x, a.Vars[i])
				}
			}
			d, err := rel.MaxDegree(x, y)
			if err != nil {
				return nil, err
			}
			if d < 1 {
				d = 1
			}
			dc = append(dc, constraints.Degree(a.Name, x, y, float64(d)))
		}
	}
	return dc, nil
}

// AllDegrees extracts Degrees for every atom of the query.
func AllDegrees(q *core.Query, maxY int) (constraints.Set, error) {
	var dc constraints.Set
	for _, a := range q.Atoms {
		s, err := Degrees(a, maxY)
		if err != nil {
			return nil, err
		}
		dc = append(dc, s...)
	}
	return dc, nil
}

// ForPlanner extracts the constraint set the cost-based planner
// scores variable orders with: per-atom cardinality constraints plus
// every degree constraint (X, Y, N_{Y|X}) with |Y| ≤ maxY measured
// from the bound relations. This is the "FromDatabase" side of the
// paper's Definition 1 — the empirical N_{Y|X} the bound LPs consume.
// Redundant constraints are harmless (the LPs simply carry slack
// rows), so no deduplication is attempted.
func ForPlanner(q *core.Query, maxY int) (constraints.Set, error) {
	dc := Cardinalities(q)
	deg, err := AllDegrees(q, maxY)
	if err != nil {
		return nil, err
	}
	return append(dc, deg...), nil
}

// OutputEntropy returns the entropy function of the uniform
// distribution over the tuples of out, whose variables must be exactly
// vars (in column order). By the Section 4.2 argument,
// H[full] = log2|out| and H ∈ Γ*_n ∩ H_DC for every constraint set the
// database satisfies — it is the computable lower-bound witness for
// the entropic bound.
func OutputEntropy(out *relation.Relation, vars []string) (*entropy.SetFunction, error) {
	if len(vars) != out.Arity() {
		return nil, fmt.Errorf("stats: %d vars for arity %d", len(vars), out.Arity())
	}
	for i, v := range vars {
		if out.Attrs()[i] != v {
			return nil, fmt.Errorf("stats: output attribute %q at %d, want %q", out.Attrs()[i], i, v)
		}
	}
	tuples := make([][]int64, out.Len())
	var row relation.Tuple
	for i := 0; i < out.Len(); i++ {
		row = out.Tuple(i, row)
		t := make([]int64, len(row))
		for j, v := range row {
			t[j] = int64(v)
		}
		tuples[i] = t
	}
	return entropy.FromTuples(len(vars), tuples)
}

// VerifySatisfies checks that the query's database actually satisfies
// every constraint in dc (Definition 1: the guard's empirical degree
// is at most N_{Y|X}). It returns the first violated constraint.
func VerifySatisfies(q *core.Query, dc constraints.Set) error {
	for _, c := range dc {
		// With self-joins several atoms share a name; the guard is the
		// first same-named atom containing Y.
		var guard *core.Atom
		for i := range q.Atoms {
			a := &q.Atoms[i]
			if a.Name != c.Guard {
				continue
			}
			ok := true
			for _, y := range c.Y {
				if !constraints.ContainsVar(a.Vars, y) {
					ok = false
					break
				}
			}
			if ok {
				guard = a
				break
			}
		}
		if guard == nil {
			return fmt.Errorf("stats: constraint %v has no guard atom", c)
		}
		a := *guard
		rel, err := a.Rel.Rename(a.Name, a.Vars...)
		if err != nil {
			return err
		}
		d, err := rel.MaxDegree(c.X, c.Y)
		if err != nil {
			return err
		}
		if float64(d) > c.N {
			return fmt.Errorf("stats: constraint %v violated: empirical degree %d", c, d)
		}
	}
	return nil
}
