package planner

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"wcoj/internal/core"
	"wcoj/internal/relation"
)

// starQ builds the hub-skewed star Q(A,B,C) :- R(A,B), S(B,C): every
// R edge points at hub 0, S fans the hub out plus distractors.
func starQ(t testing.TB, spokes, fan, noise int) *core.Query {
	t.Helper()
	br := relation.NewBuilder("R", "A", "B")
	for i := 1; i <= spokes; i++ {
		br.Add(relation.Value(i), 0)
	}
	bs := relation.NewBuilder("S", "B", "C")
	base := relation.Value(spokes + 1)
	for j := 0; j < fan; j++ {
		bs.Add(0, base+relation.Value(j))
	}
	for k := 0; k < noise; k++ {
		src := base + relation.Value(fan+2*k)
		bs.Add(src, src+1)
	}
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: br.Build()},
		{Name: "S", Vars: []string{"B", "C"}, Rel: bs.Build()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestCostBasedStar asserts the cost model prices the hub variable's
// singleton prefix at 1 tuple and therefore binds it first, and that
// the explanation is internally consistent.
func TestCostBasedStar(t *testing.T) {
	q := starQ(t, 200, 5, 40)
	e, err := Choose(q, Options{Policy: CostBased})
	if err != nil {
		t.Fatal(err)
	}
	if e.Order[0] != "B" {
		t.Fatalf("chose %v, want B first", e.Order)
	}
	if math.Abs(e.LogBounds[0]) > 1e-9 {
		t.Fatalf("prefix {B} bound 2^%v, want 2^0 (R has a single B value)", e.LogBounds[0])
	}
	if !e.Exhaustive || e.Considered != 6 {
		t.Fatalf("3 variables should enumerate 6 orders exhaustively, got %+v", e)
	}
	if e.Worst == nil || e.Worst.Cost < e.Cost {
		t.Fatalf("worst candidate missing or cheaper than chosen: %+v", e.Worst)
	}
	sum := 0.0
	for _, lb := range e.LogBounds {
		sum += math.Exp2(lb)
	}
	if math.Abs(sum-e.Cost) > 1e-6*e.Cost {
		t.Fatalf("cost %v inconsistent with per-level bounds summing to %v", e.Cost, sum)
	}
	for i := 1; i < len(e.Candidates); i++ {
		if e.Candidates[i].Cost < e.Candidates[i-1].Cost {
			t.Fatalf("candidates not sorted best-first: %+v", e.Candidates)
		}
	}
}

// TestBeamSearchWideQuery drives the beam path with a 9-variable
// chain (above the default exhaustive cap) and checks the chosen
// order still evaluates correctly.
func TestBeamSearchWideQuery(t *testing.T) {
	const n = 9
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("X%d", i)
	}
	var atoms []core.Atom
	for i := 0; i+1 < n; i++ {
		b := relation.NewBuilder(fmt.Sprintf("E%d", i), vars[i], vars[i+1])
		for v := 0; v < 6; v++ {
			b.Add(relation.Value(v), relation.Value((v+1)%6))
			b.Add(relation.Value(v), relation.Value((v+2)%6))
		}
		atoms = append(atoms, core.Atom{Name: fmt.Sprintf("E%d", i), Vars: []string{vars[i], vars[i+1]}, Rel: b.Build()})
	}
	q, err := core.NewQuery(vars, atoms)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Choose(q, Options{Policy: CostBased, MaxDegreeVars: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Exhaustive {
		t.Fatal("9 variables must take the beam path")
	}
	if len(e.Order) != n {
		t.Fatalf("beam order %v incomplete", e.Order)
	}
	// The final beam level must keep multiple complete orders (they
	// share the full variable mask) and report the costliest as Worst.
	if len(e.Candidates) < 2 {
		t.Fatalf("beam kept %d candidates, want several", len(e.Candidates))
	}
	if e.Worst == nil || e.Worst.Cost < e.Candidates[len(e.Candidates)-1].Cost {
		t.Fatalf("beam worst candidate missing or cheaper than kept candidates: %+v", e.Worst)
	}
	for _, cand := range e.Candidates {
		if err := core.CheckOrder(q, cand.Order); err != nil {
			t.Fatalf("beam candidate %v: %v", cand.Order, err)
		}
	}
	if err := core.CheckOrder(q, e.Order); err != nil {
		t.Fatalf("beam produced a non-permutation: %v", err)
	}
	// The chosen order must execute: count with it and with the
	// heuristic and compare.
	nPlanned, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{Order: e.Order})
	if err != nil {
		t.Fatal(err)
	}
	nHeur, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nPlanned != nHeur {
		t.Fatalf("beam order count %d, heuristic %d", nPlanned, nHeur)
	}
}

// TestPolicies pins the heuristic/explicit paths and their validation.
func TestPolicies(t *testing.T) {
	q := starQ(t, 30, 3, 5)
	e, err := Choose(q, Options{Policy: Heuristic})
	if err != nil {
		t.Fatal(err)
	}
	if e.Policy != Heuristic || len(e.Candidates) != 1 || e.Worst != nil {
		t.Fatalf("heuristic explanation %+v", e)
	}
	if e.Order[0] != "B" {
		t.Fatalf("degree-order heuristic should pick B (degree 2) first, got %v", e.Order)
	}

	e, err = Choose(q, Options{Policy: Explicit, Explicit: []string{"C", "A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(e.Order, "") != "CAB" || len(e.LogBounds) != 3 {
		t.Fatalf("explicit explanation %+v", e)
	}

	if _, err := Choose(q, Options{Policy: Explicit}); err == nil {
		t.Fatal("explicit without an order must fail")
	}
	if _, err := Choose(q, Options{Policy: Explicit, Explicit: []string{"A", "B"}}); err == nil {
		t.Fatal("explicit non-permutation must fail")
	}

	// New adapts Choose to the core.OrderPolicy seam.
	order, err := New(Options{Policy: CostBased}).ResolveOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "B" {
		t.Fatalf("policy adapter order %v", order)
	}
}

// TestCostBasedVariableCap pins the 64-variable guard: prefix sets
// are uint64 masks, so wider queries must be rejected, not silently
// mis-planned.
func TestCostBasedVariableCap(t *testing.T) {
	const n = 65
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("X%d", i)
	}
	var atoms []core.Atom
	for i := 0; i+1 < n; i++ {
		b := relation.NewBuilder(fmt.Sprintf("E%d", i), vars[i], vars[i+1])
		b.Add(0, 0)
		b.Add(1, 1)
		atoms = append(atoms, core.Atom{Name: fmt.Sprintf("E%d", i), Vars: []string{vars[i], vars[i+1]}, Rel: b.Build()})
	}
	q, err := core.NewQuery(vars, atoms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Choose(q, Options{Policy: CostBased}); err == nil || !strings.Contains(err.Error(), "64") {
		t.Fatalf("65-variable cost-based plan should be rejected, got %v", err)
	}
	// The heuristic policy still explains wide queries.
	if _, err := Choose(q, Options{Policy: Heuristic}); err != nil {
		t.Fatal(err)
	}
}
