// Package planner chooses the global variable order worst-case
// optimal joins run under, closing the loop the paper draws between
// the LP bound machinery and execution: the same degree constraints
// that price a query's worst case also prescribe how to run it.
//
// The cost-based policy enumerates candidate orders — exhaustively up
// to Options.MaxExhaustive variables, by greedy beam search beyond —
// and scores each candidate by the sum over its prefixes of the
// modular bound (LP (54)) of the query projected to that prefix,
// computed from measured per-relation degree statistics
// (internal/stats). Prefix bounds depend only on the prefix *set*, so
// they are memoized per subset mask and the n! candidate orders share
// at most 2^n LP solves. The result carries a full Explanation:
// chosen order, per-level bounds, the best candidates considered and
// the worst enumerated order (the one EXPLAIN users most want to see
// they avoided).
//
// The package plugs into the engines through core.OrderPolicy; the
// public surface is wcoj.Options.Planner and wcoj.Explain.
package planner

import (
	"fmt"
	"sort"

	"wcoj/internal/agg"
	"wcoj/internal/core"
)

// Policy selects how an order is chosen.
type Policy int

// Available policies.
const (
	// Heuristic is the hypergraph degree-order heuristic
	// (most-constrained variable first) — zero planning cost.
	Heuristic Policy = iota
	// CostBased enumerates candidate orders and scores them with
	// per-prefix modular bounds over measured degree constraints.
	CostBased
	// Explicit uses Options.Explicit verbatim (after validation).
	Explicit
)

func (p Policy) String() string {
	switch p {
	case Heuristic:
		return "heuristic"
	case CostBased:
		return "cost-based"
	case Explicit:
		return "explicit"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Options configure Choose.
type Options struct {
	// Policy selects the planning policy (default Heuristic).
	Policy Policy
	// Explicit is the order used by PolicyExplicit.
	Explicit []string
	// MaxExhaustive is the largest variable count enumerated
	// exhaustively (default 8 — 8! orders over at most 2^8 memoized
	// prefix bounds); larger queries use beam search.
	MaxExhaustive int
	// BeamWidth is the number of partial orders kept per level by the
	// beam search (default 8).
	BeamWidth int
	// MaxDegreeVars caps |Y| in the degree statistics measured from
	// the data (default 3; extraction is exponential in atom arity).
	MaxDegreeVars int
	// MaxCandidates caps the candidate list kept in the Explanation
	// (default 8). The worst enumerated order is always kept.
	MaxCandidates int
	// Agg, when non-nil, plans for an aggregate-aware run: variables
	// the aggregate engines never enumerate are sunk to the end of the
	// order (the cost-based policies only enumerate orders with that
	// suffix), and the Explanation reports the resulting
	// bound/free-output/free-counted level classification.
	Agg *agg.Spec
}

func (o Options) withDefaults() Options {
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 8
	}
	if o.BeamWidth <= 0 {
		o.BeamWidth = 8
	}
	if o.MaxDegreeVars <= 0 {
		o.MaxDegreeVars = 3
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 8
	}
	return o
}

// New returns a core.OrderPolicy that runs Choose with the given
// options; it is what wcoj.Execute installs for PlannerCostBased.
func New(opt Options) core.OrderPolicy {
	return core.OrderFunc(func(q *core.Query) ([]string, error) {
		e, err := Choose(q, opt)
		if err != nil {
			return nil, err
		}
		return e.Order, nil
	})
}

// Choose resolves a variable order for the query under the configured
// policy and explains the decision. All policies report per-level
// bounds for the order they picked; CostBased additionally reports
// the candidates it enumerated and the worst order it rejected.
func Choose(q *core.Query, opt Options) (*Explanation, error) {
	opt = opt.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Prefix sets are uint64 bitmasks: beyond 64 variables the cost
	// model cannot run. Cost-based planning is rejected; heuristic and
	// explicit plans still resolve, just without per-level bounds.
	wide := len(q.Vars) > 64
	var c *coster
	if !wide {
		var err error
		if c, err = newCoster(q, opt.MaxDegreeVars); err != nil {
			return nil, err
		}
	}
	switch opt.Policy {
	case Heuristic:
		h, err := q.Hypergraph()
		if err != nil {
			return nil, err
		}
		return explainSingle(c, opt.Policy, sinkFor(q, h.DegreeOrder(), opt.Agg), q, opt.Agg)
	case Explicit:
		if len(opt.Explicit) == 0 {
			return nil, fmt.Errorf("planner: explicit policy requires an order")
		}
		if err := core.CheckOrder(q, opt.Explicit); err != nil {
			return nil, err
		}
		return explainSingle(c, opt.Policy, sinkFor(q, opt.Explicit, opt.Agg), q, opt.Agg)
	case CostBased:
		if wide {
			return nil, fmt.Errorf("planner: cost-based planning supports at most 64 variables, query has %d; use the heuristic or an explicit order", len(q.Vars))
		}
		if len(q.Vars) <= opt.MaxExhaustive {
			return exhaustive(q, c, opt)
		}
		return beam(q, c, opt)
	}
	return nil, fmt.Errorf("planner: unknown policy %v", opt.Policy)
}

// atomVarLists projects the query's atoms to their variable lists, the
// shape the agg classifier and sinker work on.
func atomVarLists(q *core.Query) [][]string {
	out := make([][]string, len(q.Atoms))
	for i, a := range q.Atoms {
		out[i] = a.Vars
	}
	return out
}

// sinkFor applies the aggregate sink to an order (identity without an
// aggregate spec).
func sinkFor(q *core.Query, order []string, spec *agg.Spec) []string {
	if spec == nil {
		return order
	}
	return agg.Sink(order, atomVarLists(q), *spec)
}

// attachAgg classifies the chosen order for the aggregate spec and
// records the result on the explanation.
func attachAgg(e *Explanation, q *core.Query, spec *agg.Spec) error {
	if spec == nil {
		return nil
	}
	cls, err := agg.Classify(e.Order, atomVarLists(q), *spec)
	if err != nil {
		return err
	}
	e.AggMode = spec.Mode.String()
	e.Classes = cls.Classes
	e.CountFrom = cls.CountFrom
	return nil
}

// explainSingle prices one order and wraps it as a one-candidate
// explanation (the heuristic and explicit policies). A nil coster
// (query wider than the 64-variable cost model) omits the bounds.
func explainSingle(c *coster, p Policy, order []string, q *core.Query, spec *agg.Spec) (*Explanation, error) {
	e := &Explanation{
		Policy:     p,
		Order:      append([]string(nil), order...),
		Considered: 1,
	}
	if err := attachAgg(e, q, spec); err != nil {
		return nil, err
	}
	if c == nil {
		e.Candidates = []Candidate{{Order: e.Order}}
		return e, nil
	}
	logs, cost, err := c.priceOrder(order)
	if err != nil {
		return nil, err
	}
	e.LogBounds, e.Cost = logs, cost
	e.Candidates = []Candidate{{Order: e.Order, Cost: cost, LogBounds: logs}}
	e.Constraints = c.numConstraints()
	return e, nil
}

// exhaustive scores every permutation of the query variables. Costs
// accumulate along the recursion — depth d adds the price of the
// prefix set after binding d+1 variables — so each leaf costs n
// memoized subset lookups and no LP work beyond the first visit of
// each subset.
func exhaustive(q *core.Query, c *coster, opt Options) (*Explanation, error) {
	n := len(q.Vars)
	if n == 0 {
		return explainSingle(c, CostBased, nil, q, opt.Agg)
	}
	keepCount, isSunk, sunkSeq := sinkPlan(q, opt.Agg)
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var (
		keep       []Candidate // best-first, capped at MaxCandidates
		worst      *Candidate
		considered int
		walkErr    error
	)
	record := func(cost float64) {
		order := make([]string, n)
		for d, i := range perm {
			order[d] = q.Vars[i]
		}
		logs, _, err := c.priceOrder(order)
		if err != nil {
			walkErr = err
			return
		}
		cand := Candidate{Order: order, Cost: cost, LogBounds: logs}
		considered++
		if worst == nil || cand.Cost > worst.Cost {
			cp := cand
			worst = &cp
		}
		pos := sort.Search(len(keep), func(i int) bool { return keep[i].Cost > cand.Cost })
		if pos < opt.MaxCandidates {
			keep = append(keep, Candidate{})
			copy(keep[pos+1:], keep[pos:])
			keep[pos] = cand
			if len(keep) > opt.MaxCandidates {
				keep = keep[:opt.MaxCandidates]
			}
		}
	}
	var rec func(mask uint64, cost float64)
	rec = func(mask uint64, cost float64) {
		if walkErr != nil {
			return
		}
		if len(perm) == n {
			record(cost)
			return
		}
		d := len(perm)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// With an aggregate spec only sunk-suffix orders are
			// enumerated: kept variables fill the prefix, then the fixed
			// sunk sequence.
			if d < keepCount {
				if isSunk != nil && isSunk[i] {
					continue
				}
			} else if sunkSeq != nil && i != sunkSeq[d-keepCount] {
				continue
			}
			m := mask | 1<<uint(i)
			lb, err := c.logBound(m)
			if err != nil {
				walkErr = err
				return
			}
			used[i] = true
			perm = append(perm, i)
			rec(m, cost+price(lb))
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec(0, 0)
	if walkErr != nil {
		return nil, walkErr
	}
	best := keep[0]
	e := &Explanation{
		Policy:      CostBased,
		Order:       best.Order,
		LogBounds:   best.LogBounds,
		Cost:        best.Cost,
		Candidates:  keep,
		Worst:       worst,
		Considered:  considered,
		Exhaustive:  true,
		Constraints: c.numConstraints(),
	}
	if err := attachAgg(e, q, opt.Agg); err != nil {
		return nil, err
	}
	return e, nil
}

// sinkPlan precomputes the enumeration restriction for an aggregate
// spec: the kept-prefix length, the sunk membership by variable index
// and the fixed sunk sequence. Without a spec nothing is restricted.
func sinkPlan(q *core.Query, spec *agg.Spec) (keepCount int, isSunk []bool, sunkSeq []int) {
	if spec == nil {
		return len(q.Vars), nil, nil
	}
	keep, sunk := agg.SinkPartition(q.Vars, atomVarLists(q), *spec)
	idx := make(map[string]int, len(q.Vars))
	for i, v := range q.Vars {
		idx[v] = i
	}
	isSunk = make([]bool, len(q.Vars))
	for _, v := range sunk {
		isSunk[idx[v]] = true
		sunkSeq = append(sunkSeq, idx[v])
	}
	return len(keep), isSunk, sunkSeq
}

// beam runs a greedy beam search for wide queries: keep the BeamWidth
// cheapest partial orders per level, extend each by every unused
// variable, and dedup extensions by prefix set (two orders over the
// same set pay identical future costs, so only the cheaper history
// survives).
func beam(q *core.Query, c *coster, opt Options) (*Explanation, error) {
	type entry struct {
		order []string
		mask  uint64
		cost  float64
		logs  []float64
	}
	n := len(q.Vars)
	keepCount, isSunk, sunkSeq := sinkPlan(q, opt.Agg)
	front := []entry{{}}
	considered := 0
	var worst *Candidate
	for d := 0; d < n; d++ {
		var exts []entry
		for _, e := range front {
			for i, v := range q.Vars {
				if e.mask&(1<<uint(i)) != 0 {
					continue
				}
				// Only sunk-suffix orders are enumerated (see exhaustive).
				if d < keepCount {
					if isSunk != nil && isSunk[i] {
						continue
					}
				} else if sunkSeq != nil && i != sunkSeq[d-keepCount] {
					continue
				}
				m := e.mask | 1<<uint(i)
				lb, err := c.logBound(m)
				if err != nil {
					return nil, err
				}
				exts = append(exts, entry{
					order: append(append([]string(nil), e.order...), v),
					mask:  m,
					cost:  e.cost + price(lb),
					logs:  append(append([]float64(nil), e.logs...), lb),
				})
				considered++
			}
		}
		sort.SliceStable(exts, func(i, j int) bool { return exts[i].cost < exts[j].cost })
		if d == n-1 {
			// Complete orders all share the full mask — keep the
			// cheapest BeamWidth as candidates instead of mask-deduping
			// them down to one, and record the costliest as Worst.
			if len(exts) > 1 {
				w := exts[len(exts)-1]
				worst = &Candidate{Order: w.order, Cost: w.cost, LogBounds: w.logs}
			}
			if len(exts) > opt.BeamWidth {
				exts = exts[:opt.BeamWidth]
			}
			front = exts
			break
		}
		seen := make(map[uint64]bool)
		front = front[:0]
		for _, e := range exts {
			if seen[e.mask] {
				continue
			}
			seen[e.mask] = true
			front = append(front, e)
			if len(front) == opt.BeamWidth {
				break
			}
		}
	}
	cands := make([]Candidate, 0, len(front))
	for _, e := range front {
		cands = append(cands, Candidate{Order: e.order, Cost: e.cost, LogBounds: e.logs})
	}
	if len(cands) > opt.MaxCandidates {
		cands = cands[:opt.MaxCandidates]
	}
	best := cands[0]
	e := &Explanation{
		Policy:      CostBased,
		Order:       best.Order,
		LogBounds:   best.LogBounds,
		Cost:        best.Cost,
		Candidates:  cands,
		Worst:       worst,
		Considered:  considered,
		Constraints: c.numConstraints(),
	}
	if err := attachAgg(e, q, opt.Agg); err != nil {
		return nil, err
	}
	return e, nil
}
