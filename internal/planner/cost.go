package planner

import (
	"math"

	"wcoj/internal/bounds"
	"wcoj/internal/constraints"
	"wcoj/internal/core"
	"wcoj/internal/stats"
)

// coster prices variable-order prefixes. The model is the paper's own
// bound machinery pointed at prefixes: for a prefix set S of the
// variable order, the number of prefix tuples the search can visit is
// at most the worst-case output size of the query projected to S,
// which the modular LP (54) bounds from the measured degree
// constraints. The cost of a full order is the sum of its prefix
// bounds — an upper envelope of the search-tree node count, which is
// exactly the quantity Generic-Join's runtime tracks.
//
// The bound of a prefix depends only on the *set* of variables in it,
// not their order, so prefix prices are memoized per subset mask. That
// is what makes exhaustive enumeration cheap: n! orders share 2^n
// subset prices, each a single poly-size LP solve.
type coster struct {
	vars  []string
	index map[string]int
	cons  []maskedConstraint
	memo  map[uint64]float64
}

// maskedConstraint is a degree constraint with its X and Y attribute
// sets precompiled to bitmasks over the query variables.
type maskedConstraint struct {
	c            constraints.Constraint
	xmask, ymask uint64
}

// newCoster measures the degree statistics of the query's relations
// (cardinalities plus all N_{Y|X} with |Y| ≤ maxY) and compiles them
// for subset projection.
func newCoster(q *core.Query, maxY int) (*coster, error) {
	dc, err := stats.ForPlanner(q, maxY)
	if err != nil {
		return nil, err
	}
	c := &coster{
		vars:  q.Vars,
		index: make(map[string]int, len(q.Vars)),
		memo:  make(map[uint64]float64),
	}
	for i, v := range q.Vars {
		c.index[v] = i
	}
	for _, con := range dc {
		mc := maskedConstraint{c: con}
		for _, x := range con.X {
			mc.xmask |= 1 << uint(c.index[x])
		}
		for _, y := range con.Y {
			mc.ymask |= 1 << uint(c.index[y])
		}
		c.cons = append(c.cons, mc)
	}
	return c, nil
}

// numConstraints reports how many measured constraints feed the model.
func (c *coster) numConstraints() int { return len(c.cons) }

// logBound returns the log2 worst-case size of the query projected to
// the variable subset mask, via the modular bound over the projected
// constraint set. A constraint (X, Y, N) projects to (X, Y∩S, N)
// whenever X ⊆ S — the degree of a projection cannot exceed the
// degree of the original — and is dropped when the projection says
// nothing new (Y∩S = X).
func (c *coster) logBound(mask uint64) (float64, error) {
	if b, ok := c.memo[mask]; ok {
		return b, nil
	}
	var sub []string
	for i, v := range c.vars {
		if mask&(1<<uint(i)) != 0 {
			sub = append(sub, v)
		}
	}
	var dc constraints.Set
	for _, mc := range c.cons {
		if mc.xmask&mask != mc.xmask {
			continue // X not fully inside the prefix
		}
		yproj := mc.ymask & mask
		if yproj&^mc.xmask == 0 {
			continue // projection collapses onto X
		}
		var y []string
		for i, v := range c.vars {
			if yproj&(1<<uint(i)) != 0 {
				y = append(y, v)
			}
		}
		dc = append(dc, constraints.Degree(mc.c.Guard, mc.c.X, y, mc.c.N))
	}
	lb, err := bounds.ModularValue(sub, dc)
	if err != nil {
		return 0, err
	}
	if math.Abs(lb) < 1e-9 {
		lb = 0 // simplex residue; avoid "-0.00" in EXPLAIN output
	}
	c.memo[mask] = lb
	return lb, nil
}

// price turns a per-prefix log2 bound into the linear node-count
// contribution the order costs sum.
func price(logBound float64) float64 { return math.Exp2(logBound) }

// priceOrder returns the per-prefix log bounds and the summed linear
// cost of one complete order.
func (c *coster) priceOrder(order []string) ([]float64, float64, error) {
	logs := make([]float64, len(order))
	var mask uint64
	cost := 0.0
	for d, v := range order {
		mask |= 1 << uint(c.index[v])
		lb, err := c.logBound(mask)
		if err != nil {
			return nil, 0, err
		}
		logs[d] = lb
		cost += price(lb)
	}
	return logs, cost, nil
}
