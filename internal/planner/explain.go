package planner

import (
	"fmt"
	"strings"

	"wcoj/internal/agg"
)

// Candidate is one scored variable order.
type Candidate struct {
	// Order is the complete variable order.
	Order []string
	// Cost is the modeled search-node count: Σ_d 2^LogBounds[d].
	Cost float64
	// LogBounds[d] is the log2 modular bound of the query projected to
	// the first d+1 variables of Order.
	LogBounds []float64
}

// Explanation is the structured EXPLAIN output of a planning decision.
type Explanation struct {
	// Policy that produced the order.
	Policy Policy
	// Order is the chosen variable order.
	Order []string
	// LogBounds are the chosen order's per-level log2 bounds.
	LogBounds []float64
	// Cost is the chosen order's modeled search-node count.
	Cost float64
	// Candidates are the cheapest orders considered, best first; for
	// CostBased, Candidates[0] is the chosen order. Heuristic and
	// explicit plans carry exactly their own order.
	Candidates []Candidate
	// Worst is the most expensive enumerated order (CostBased only) —
	// the plan the optimizer saved you from.
	Worst *Candidate
	// Considered counts the complete orders (exhaustive) or partial
	// extensions (beam search) that were scored.
	Considered int
	// Exhaustive reports whether every permutation was scored.
	Exhaustive bool
	// Constraints counts the measured degree constraints feeding the
	// cost model.
	Constraints int
	// AggMode names the aggregate mode the plan was classified for
	// ("count", "exists", "enumerate"); empty for plain enumeration
	// plans.
	AggMode string
	// Classes classifies each level of Order for the aggregate-aware
	// engines (bound / free-output / free-counted); nil without an
	// aggregate spec.
	Classes []agg.Class
	// CountFrom is the first level of the free-counted suffix — the
	// depth from which the engines multiply subtree cardinalities
	// instead of recursing (len(Order) when there is no such suffix).
	CountFrom int
	// Count, when non-nil, is the planning record of the aggregate
	// pushdown plan Count runs for the same options: single-atom (or
	// projected-away) variables sunk to the end of the order, each
	// level classified bound / free-output / free-counted. It is nil
	// when the caller disabled the pushdown.
	Count *Explanation
}

// String renders the explanation in the -explain CLI format.
func (e *Explanation) String() string {
	var b strings.Builder
	mode := "beam"
	if e.Exhaustive {
		mode = "exhaustive"
	}
	if e.Policy != CostBased {
		mode = "single"
	}
	fmt.Fprintf(&b, "plan: policy=%v order=[%s] cost=%.3g (%s, %d scored, %d constraints)\n",
		e.Policy, strings.Join(e.Order, " "), e.Cost, mode, e.Considered, e.Constraints)
	if len(e.LogBounds) == len(e.Order) { // absent for >64-variable queries
		for d, v := range e.Order {
			fmt.Fprintf(&b, "  level %d: bind %-4s prefix {%s} ≤ 2^%.2f = %.4g tuples",
				d, v, strings.Join(e.Order[:d+1], ","), e.LogBounds[d], price(e.LogBounds[d]))
			if len(e.Classes) == len(e.Order) {
				fmt.Fprintf(&b, " [%v]", e.Classes[d])
			}
			b.WriteString("\n")
		}
	}
	if e.AggMode != "" {
		fmt.Fprintf(&b, "  agg: mode=%s", e.AggMode)
		if e.CountFrom < len(e.Order) {
			fmt.Fprintf(&b, " counted-suffix=[%s]", strings.Join(e.Order[e.CountFrom:], " "))
		}
		if len(e.Classes) == len(e.Order) && len(e.LogBounds) != len(e.Order) {
			parts := make([]string, len(e.Classes))
			for i, c := range e.Classes {
				parts[i] = c.String()
			}
			fmt.Fprintf(&b, " classes=[%s]", strings.Join(parts, " "))
		}
		b.WriteString("\n")
	}
	if e.Policy == CostBased {
		b.WriteString("  candidates:\n")
		for i, c := range e.Candidates {
			marker := ""
			if i == 0 {
				marker = "  <- chosen"
			}
			fmt.Fprintf(&b, "    %2d. [%s] cost=%.3g%s\n", i+1, strings.Join(c.Order, " "), c.Cost, marker)
		}
		if e.Worst != nil {
			fmt.Fprintf(&b, "  worst: [%s] cost=%.3g (%.3gx the chosen order)\n",
				strings.Join(e.Worst.Order, " "), e.Worst.Cost, e.Worst.Cost/e.Cost)
		}
	}
	if e.Count != nil {
		b.WriteString("count ")
		b.WriteString(e.Count.String())
	}
	return b.String()
}
