package wal

// Snapshot files. A snapshot is the engine's full durable state at one
// update epoch — every relation's effective tuple set with its
// per-relation version epoch, plus the string dictionary — written at
// compaction time so the log can restart empty.
//
//	file    := "WCOJSNP1" | u64le payloadLen | u32le crc32(payload) | payload
//	payload := uvarint epoch | uvarint dictLen | dictLen strings |
//	           uvarint rels | rels × (uvarint relEpoch | rel body)
//
// The file is written to a temp name and atomically renamed, so a
// valid snapshot file is always complete; readers still verify the
// checksum and reject anything less.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"wcoj/internal/relation"
)

var snapMagic = []byte("WCOJSNP1")

// SnapRel is one relation in a snapshot: its effective (delta-merged)
// tuple set and the per-relation version epoch.
type SnapRel struct {
	Epoch uint64
	Rel   *relation.Relation
}

// Snapshot is the decoded full state a recovery starts from.
type Snapshot struct {
	// Epoch is the DB update epoch at capture time; log records that
	// follow carry strictly larger epochs.
	Epoch uint64
	// Dict holds the interned strings in ID order (ID i = Dict[i]).
	Dict []string
	// Rels are the registered relations (any iteration order).
	Rels []SnapRel
}

func appendSnapshot(dst []byte, s *Snapshot) []byte {
	dst = binary.AppendUvarint(dst, s.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(s.Dict)))
	for _, str := range s.Dict {
		dst = appendString(dst, str)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Rels)))
	for _, sr := range s.Rels {
		dst = binary.AppendUvarint(dst, sr.Epoch)
		dst = appendRel(dst, sr.Rel)
	}
	return dst
}

func decodeSnapshot(p []byte) (*Snapshot, error) {
	r := &reader{buf: p}
	s := &Snapshot{}
	var err error
	if s.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	nd, err := r.count()
	if err != nil {
		return nil, err
	}
	s.Dict = make([]string, 0, nd)
	for i := 0; i < nd; i++ {
		str, err := r.str()
		if err != nil {
			return nil, err
		}
		s.Dict = append(s.Dict, str)
	}
	nr, err := r.count()
	if err != nil {
		return nil, err
	}
	s.Rels = make([]SnapRel, 0, nr)
	for i := 0; i < nr; i++ {
		var sr SnapRel
		if sr.Epoch, err = r.uvarint(); err != nil {
			return nil, err
		}
		if sr.Rel, err = r.rel(); err != nil {
			return nil, err
		}
		s.Rels = append(s.Rels, sr)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("wal: %d trailing bytes after snapshot", len(r.buf)-r.off)
	}
	return s, nil
}

// writeSnapshot writes s to path via temp file + fsync + atomic rename.
func writeSnapshot(path string, s *Snapshot) error {
	payload := appendSnapshot(nil, s)
	buf := make([]byte, 0, len(snapMagic)+12+len(payload))
	buf = append(buf, snapMagic...)
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshot reads and verifies the snapshot at path. Any
// inconsistency rejects the file; the caller falls back to an older
// generation.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+12 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("wal: %s: bad snapshot header", path)
	}
	body := data[len(snapMagic):]
	length := binary.LittleEndian.Uint64(body[0:8])
	sum := binary.LittleEndian.Uint32(body[8:12])
	payload := body[12:]
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("wal: %s: snapshot length %d, want %d", path, len(payload), length)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("wal: %s: snapshot checksum mismatch", path)
	}
	return decodeSnapshot(payload)
}
