// Package wal gives wcoj.DB crash durability: every applied update
// batch (and every Register) is appended to a write-ahead log before
// it is published to readers, and compaction writes a full-state
// snapshot, so reopening the directory replays to the exact pre-crash
// update epoch.
//
// Directory layout — paired, monotonically numbered generations:
//
//	wal-<seq>.log    record log (see record.go for the frame format)
//	snap-<seq>.snap  full-state snapshot the log's records follow
//
// Generation 0 has no snapshot (an empty engine). Rotate writes
// snap-(s+1) via temp file + atomic rename, then starts wal-(s+1) and
// prunes generation s; a crash between those steps leaves either the
// old generation intact or the new snapshot with an empty (or absent)
// log — both recover exactly.
//
// Recovery scans the newest valid snapshot, then replays its log.
// A torn tail — a final frame with missing bytes, or whose checksum
// fails right at EOF — is truncated away (the crash interrupted that
// append; it was never acknowledged). A checksum failure in the middle
// of the log is corruption and rejects the whole open: silently
// skipping records would replay a state that never existed.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

var logMagic = []byte("WCOJWAL1")

// Log is an open write-ahead log positioned at the tail of the current
// generation's segment. Methods are not safe for concurrent use; the
// DB serializes writers (they already hold its write mutex).
type Log struct {
	dir string
	seq uint64
	f   *os.File
	off int64

	// crashAt/crashFn simulate kill -9 at an exact byte offset: an
	// Append that would carry the log past crashAt writes only up to it
	// and invokes crashFn (the crash-recovery harness re-execs a child
	// that installs os.Exit here). Production opens never set them.
	crashAt int64
	crashFn func()
}

// Open recovers the newest consistent state under dir (creating the
// directory and an empty generation-0 log if needed) and returns the
// log positioned for appends, the snapshot recovery starts from (nil
// for generation 0), and the decoded records to replay on top of it.
func Open(dir string) (*Log, *Snapshot, []*Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	snaps, logs, err := scanDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}

	// Newest valid snapshot wins; its paired log holds everything
	// after it. With no usable snapshot the full history lives in the
	// lowest-numbered log (normally wal-0).
	var snap *Snapshot
	var seq uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		s, err := readSnapshot(snapPath(dir, snaps[i]))
		if err == nil {
			snap, seq = s, snaps[i]
			break
		}
	}
	if snap == nil {
		if len(logs) > 0 {
			seq = logs[0]
		} else {
			seq = 0
		}
		if seq != 0 {
			// A generation >0 log without a readable snapshot has lost
			// its prefix; replaying it from an empty base would serve a
			// state that never existed.
			return nil, nil, nil, fmt.Errorf("wal: %s: no valid snapshot for generation %d", dir, seq)
		}
	}

	recs, tail, err := readLog(logPath(dir, seq))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, err
	}

	l := &Log{dir: dir, seq: seq}
	if err := l.openSegment(tail); err != nil {
		return nil, nil, nil, err
	}
	l.prune(seq)
	return l, snap, recs, nil
}

// openSegment opens (or creates) the current generation's log file and
// positions the writer at validTail — truncating anything torn past it.
func (l *Log) openSegment(validTail int64) error {
	path := logPath(l.dir, l.seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if validTail < int64(len(logMagic)) {
		validTail = int64(len(logMagic))
		if _, err := f.WriteAt(logMagic, 0); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Truncate(validTail); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(validTail, 0); err != nil {
		f.Close()
		return err
	}
	l.f, l.off = f, validTail
	return nil
}

// Append encodes rec as one frame and writes it at the tail. The bytes
// reach the OS before Append returns; call Sync to force them to
// stable storage (the DB syncs once per applied batch).
func (l *Log) Append(rec *Record) error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	frame := appendFrame(nil, rec)
	if l.crashFn != nil && l.off+int64(len(frame)) > l.crashAt {
		// Simulated kill -9: write the torn prefix, make it visible the
		// way a real crash would, and die.
		k := l.crashAt - l.off
		if k < 0 {
			k = 0
		}
		if k > int64(len(frame)) {
			k = int64(len(frame))
		}
		l.f.Write(frame[:k])
		l.f.Sync()
		l.crashFn()
		return fmt.Errorf("wal: crash point reached")
	}
	n, err := l.f.Write(frame)
	l.off += int64(n)
	if err != nil {
		return err
	}
	return nil
}

// Sync forces appended records to stable storage.
func (l *Log) Sync() error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	return l.f.Sync()
}

// Size returns the current byte offset of the tail (the header counts).
func (l *Log) Size() int64 { return l.off }

// SetCrashPoint arranges for fn to run — after writing only the bytes
// up to offset off — on the first Append that would carry the log past
// off. It simulates a process killed mid-write at an exact byte
// offset; the crash-recovery harness is its only intended caller.
func (l *Log) SetCrashPoint(off int64, fn func()) {
	l.crashAt, l.crashFn = off, fn
}

// Rotate writes snap as the next generation's snapshot (temp file +
// atomic rename), switches appends to that generation's fresh log, and
// prunes the previous generation. On error the current generation
// remains the recovery source.
func (l *Log) Rotate(snap *Snapshot) error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	next := l.seq + 1
	if err := writeSnapshot(snapPath(l.dir, next), snap); err != nil {
		return err
	}
	old := l.f
	l.seq = next
	if err := l.openSegment(0); err != nil {
		return err
	}
	old.Close()
	l.prune(next)
	return syncDir(l.dir)
}

// Close flushes and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// prune removes generations strictly older than keep (best-effort:
// they are dead weight, not state).
func (l *Log) prune(keep uint64) {
	snaps, logs, err := scanDir(l.dir)
	if err != nil {
		return
	}
	for _, s := range snaps {
		if s < keep {
			os.Remove(snapPath(l.dir, s))
		}
	}
	for _, s := range logs {
		if s < keep {
			os.Remove(logPath(l.dir, s))
		}
	}
}

// readLog decodes every frame of the log at path. It returns the
// records of the valid prefix and the byte offset of its end — the
// tail to truncate to. A torn tail (incomplete final frame, or a
// checksum failure that reaches EOF) ends the valid prefix cleanly;
// corruption strictly inside the log is an error.
func readLog(path string) ([]*Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(logMagic) {
		// A crash can tear even the header write of a fresh segment;
		// nothing valid follows.
		return nil, 0, nil
	}
	if string(data[:len(logMagic)]) != string(logMagic) {
		return nil, 0, fmt.Errorf("wal: %s: bad log header", path)
	}
	var recs []*Record
	off := int64(len(logMagic))
	for {
		rec, next, err := nextFrame(data, off)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: %s: offset %d: %w", path, off, err)
		}
		if rec == nil {
			return recs, off, nil // torn tail (or clean EOF) at off
		}
		recs = append(recs, rec)
		off = next
	}
}

// nextFrame decodes the frame at off. It returns (nil, 0, nil) when
// the bytes from off to EOF do not form a complete valid frame but
// could be a torn append — exactly EOF, or a partial/corrupt frame
// that extends to EOF — and an error for corruption that provably is
// not a torn tail (a bad frame with more data after it).
func nextFrame(data []byte, off int64) (*Record, int64, error) {
	rest := data[off:]
	if len(rest) == 0 {
		return nil, 0, nil
	}
	if len(rest) < 8 {
		return nil, 0, nil // torn header
	}
	length := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if uint64(length) > maxFrame {
		// An absurd length usually IS the torn tail (a half-written
		// header). It can only be called corruption if a valid frame
		// provably follows — undecidable without the real length — so
		// treat it as torn only when it engulfs the rest of the file.
		if uint64(len(rest)-8) <= uint64(length) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("frame length %d exceeds limit", length)
	}
	if uint64(len(rest)-8) < uint64(length) {
		return nil, 0, nil // torn body
	}
	payload := rest[8 : 8+length]
	atEOF := int64(len(rest)) == 8+int64(length)
	if crc32.Checksum(payload, crcTable) != sum {
		if atEOF {
			return nil, 0, nil // torn final frame
		}
		return nil, 0, fmt.Errorf("checksum mismatch")
	}
	rec, err := decodePayload(payload)
	if err != nil {
		// The checksum matched, so these exact bytes were written by an
		// encoder — a decode failure is corruption (or version skew),
		// not a torn write, wherever it sits.
		return nil, 0, err
	}
	return rec, off + 8 + int64(length), nil
}

func logPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// scanDir lists the generation numbers present, ascending.
func scanDir(dir string) (snaps, logs []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		var seq uint64
		switch name := e.Name(); {
		case len(name) == len("wal-0000000000000000.log") && name[:4] == "wal-" && name[len(name)-4:] == ".log":
			if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err == nil {
				logs = append(logs, seq)
			}
		case len(name) == len("snap-0000000000000000.snap") && name[:5] == "snap-" && name[len(name)-5:] == ".snap":
			if _, err := fmt.Sscanf(name, "snap-%016x.snap", &seq); err == nil {
				snaps = append(snaps, seq)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	return snaps, logs, nil
}

// syncDir fsyncs the directory so renames and creates survive an OS
// crash (best-effort: some filesystems reject directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
