package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wcoj/internal/delta"
	"wcoj/internal/relation"
)

func testRel(t testing.TB, name string, tuples ...[]int64) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder(name, "X", "Y")
	for _, tu := range tuples {
		if err := b.Add(relation.Value(tu[0]), relation.Value(tu[1])); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func testRecords(t testing.TB) []*Record {
	t.Helper()
	return []*Record{
		{Kind: KindDict, Epoch: 0, DictFirst: 0, DictStrs: []string{"alice", "bob"}},
		{Kind: KindRegister, Epoch: 0, RelEpoch: 0, Rel: testRel(t, "E", []int64{1, 2}, []int64{2, 3})},
		{Kind: KindBatch, Epoch: 1, Batch: []RelOps{{
			Rel: "E",
			Ops: []delta.Op{
				{Del: false, T: relation.Tuple{3, 4}},
				{Del: true, T: relation.Tuple{1, 2}},
			},
		}}},
		{Kind: KindBatch, Epoch: 2, Batch: []RelOps{{
			Rel: "E",
			Ops: []delta.Op{{Del: false, T: relation.Tuple{-5, 9}}},
		}}},
	}
}

// appendAll writes recs to a fresh log under dir and returns the log
// file path and its final size.
func appendAll(t *testing.T, dir string, recs []*Record) (string, int64) {
	t.Helper()
	l, snap, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(got) != 0 {
		t.Fatalf("fresh dir recovered snap=%v records=%d", snap, len(got))
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := logPath(dir, 0)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, fi.Size()
}

func sameRecords(t *testing.T, got, want []*Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Epoch != w.Epoch {
			t.Fatalf("record %d: got kind=%d epoch=%d, want kind=%d epoch=%d", i, g.Kind, g.Epoch, w.Kind, w.Epoch)
		}
		switch w.Kind {
		case KindRegister:
			if g.RelEpoch != w.RelEpoch || !g.Rel.Equal(w.Rel) || g.Rel.Name() != w.Rel.Name() {
				t.Fatalf("record %d: register mismatch", i)
			}
		case KindBatch:
			if !reflect.DeepEqual(g.Batch, w.Batch) {
				t.Fatalf("record %d: batch mismatch:\n got %+v\nwant %+v", i, g.Batch, w.Batch)
			}
		case KindDict:
			if g.DictFirst != w.DictFirst || !reflect.DeepEqual(g.DictStrs, w.DictStrs) {
				t.Fatalf("record %d: dict mismatch", i)
			}
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(t)
	appendAll(t, dir, recs)

	l, snap, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if snap != nil {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	sameRecords(t, got, recs)
}

// TestTornTailEveryOffset is the torn-write property: for EVERY
// truncation point of the log file, recovery must succeed and yield
// exactly the records whose frames are fully contained in the prefix —
// a torn final record disappears, never a mid-log one.
func TestTornTailEveryOffset(t *testing.T) {
	srcDir := t.TempDir()
	recs := testRecords(t)
	path, size := appendAll(t, srcDir, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: prefix lengths at which exactly k records
	// survive.
	bounds := []int64{int64(len(logMagic))}
	for off := bounds[0]; off < size; {
		rec, next, err := nextFrame(data, off)
		if err != nil || rec == nil {
			t.Fatalf("unexpected scan result at %d: %v", off, err)
		}
		bounds = append(bounds, next)
		off = next
	}

	for cut := int64(0); cut <= size; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(logPath(dir, 0), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, snap, got, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if snap != nil {
			t.Fatalf("cut %d: unexpected snapshot", cut)
		}
		want := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		sameRecords(t, got, recs[:want])
		// The log must be appendable after truncation: recovery is not
		// read-only, it re-arms the writer at the valid tail.
		if err := l.Append(recs[len(recs)-1]); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMidLogCorruptionRejected flips one byte inside the FIRST frame
// of a multi-record log: recovery must fail loudly, not truncate away
// acknowledged history.
func TestMidLogCorruptionRejected(t *testing.T) {
	srcDir := t.TempDir()
	recs := testRecords(t)
	path, _ := appendAll(t, srcDir, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(logMagic)+9] ^= 0xff // inside frame 0's payload

	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir, 0), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a log with mid-file corruption")
	}
}

func TestBadHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir, 0), []byte("NOTAWAL0........"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a log with a foreign header")
	}
}

func TestRotateAndRecover(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(t)
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:2] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{
		Epoch: 7,
		Dict:  []string{"alice", "bob"},
		Rels: []SnapRel{
			{Epoch: 3, Rel: testRel(t, "E", []int64{1, 2}, []int64{3, 4})},
		},
	}
	if err := l.Rotate(snap); err != nil {
		t.Fatal(err)
	}
	tail := &Record{Kind: KindBatch, Epoch: 8, Batch: []RelOps{{
		Rel: "E", Ops: []delta.Op{{T: relation.Tuple{9, 9}}},
	}}}
	if err := l.Append(tail); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 0 must be pruned.
	if _, err := os.Stat(logPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("generation 0 log survived rotation: %v", err)
	}

	l2, gotSnap, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if gotSnap == nil || gotSnap.Epoch != 7 {
		t.Fatalf("snapshot not recovered: %+v", gotSnap)
	}
	if len(gotSnap.Rels) != 1 || gotSnap.Rels[0].Epoch != 3 || !gotSnap.Rels[0].Rel.Equal(snap.Rels[0].Rel) {
		t.Fatalf("snapshot relations mismatch: %+v", gotSnap.Rels)
	}
	if !reflect.DeepEqual(gotSnap.Dict, snap.Dict) {
		t.Fatalf("snapshot dict mismatch: %v", gotSnap.Dict)
	}
	sameRecords(t, got, []*Record{tail})
}

// TestCorruptSnapshotRejected damages a rotated snapshot: with no
// older generation to fall back to, Open must fail rather than replay
// the orphaned log from an empty base.
func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(&Snapshot{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := snapPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir); err == nil {
		t.Fatal("Open accepted an orphaned generation-1 log under a corrupt snapshot")
	}
}

// TestCrashPoint drives the kill-at-offset hook: an append that hits
// the crash point writes only the torn prefix, and recovery truncates
// it away.
func TestCrashPoint(t *testing.T) {
	recs := testRecords(t)
	for _, extra := range []int64{0, 1, 5} {
		dir := t.TempDir()
		l, _, _, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(recs[0]); err != nil {
			t.Fatal(err)
		}
		crashed := false
		l.SetCrashPoint(l.Size()+extra, func() { crashed = true })
		if err := l.Append(recs[1]); err == nil {
			t.Fatal("append past the crash point succeeded")
		}
		if !crashed {
			t.Fatal("crash fn not invoked")
		}
		l.f.Close() // simulate process death without Log.Close bookkeeping

		l2, _, got, err := Open(dir)
		if err != nil {
			t.Fatalf("extra %d: %v", extra, err)
		}
		sameRecords(t, got, recs[:1])
		l2.Close()
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	s := &Snapshot{Epoch: 42, Dict: []string{"x"}, Rels: []SnapRel{{Epoch: 2, Rel: testRel(t, "R", []int64{1, 1})}}}
	if err := writeSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 || len(got.Dict) != 1 || got.Dict[0] != "x" || len(got.Rels) != 1 || !got.Rels[0].Rel.Equal(s.Rels[0].Rel) {
		t.Fatalf("snapshot round trip mismatch: %+v", got)
	}
}
