package wal

import (
	"bytes"
	"os"
	"testing"
)

// FuzzRecordDecode throws arbitrary bytes at the payload decoder: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to a payload it accepts again identically (no silent
// mis-replay through a decode/encode cycle).
func FuzzRecordDecode(f *testing.F) {
	for _, rec := range testRecords(f) {
		f.Add(appendPayload(nil, rec))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindBatch)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, p []byte) {
		rec, err := decodePayload(p)
		if err != nil {
			return
		}
		p2 := appendPayload(nil, rec)
		rec2, err := decodePayload(p2)
		if err != nil {
			t.Fatalf("re-encoded accepted record rejected: %v", err)
		}
		p3 := appendPayload(nil, rec2)
		if !bytes.Equal(p2, p3) {
			t.Fatalf("decode/encode cycle unstable:\n p2=%x\n p3=%x", p2, p3)
		}
	})
}

// FuzzSnapshotDecode does the same for snapshot payloads.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(appendSnapshot(nil, &Snapshot{}))
	f.Add(appendSnapshot(nil, &Snapshot{
		Epoch: 3,
		Dict:  []string{"a", "bb"},
		Rels:  []SnapRel{{Epoch: 2, Rel: testRel(f, "E", []int64{1, 2})}},
	}))
	f.Fuzz(func(t *testing.T, p []byte) {
		s, err := decodeSnapshot(p)
		if err != nil {
			return
		}
		p2 := appendSnapshot(nil, s)
		s2, err := decodeSnapshot(p2)
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot rejected: %v", err)
		}
		p3 := appendSnapshot(nil, s2)
		if !bytes.Equal(p2, p3) {
			t.Fatalf("decode/encode cycle unstable")
		}
	})
}

// FuzzLogOpen feeds an arbitrary byte suffix after a valid header as a
// log file. Open must never panic, and whatever it recovers must be
// stable: a second Open of the (now truncated) directory yields the
// same records with no error — a torn tail truncates cleanly exactly
// once.
func FuzzLogOpen(f *testing.F) {
	var valid []byte
	for _, rec := range testRecords(f) {
		valid = append(valid, appendFrame(nil, rec)...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		data := append([]byte(logMagic), tail...)
		if err := os.WriteFile(logPath(dir, 0), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, _, recs, err := Open(dir)
		if err != nil {
			return // rejected as corrupt: fine, as long as no panic
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, _, recs2, err := Open(dir)
		if err != nil {
			t.Fatalf("second Open after clean recovery failed: %v", err)
		}
		defer l2.Close()
		if len(recs2) != len(recs) {
			t.Fatalf("recovery unstable: %d then %d records", len(recs), len(recs2))
		}
	})
}
