package wal

// The record codec. Every durable change is one length-prefixed,
// CRC-checksummed frame:
//
//	frame   := u32le payloadLen | u32le crc32(payload) | payload
//	payload := u8 kind | uvarint epoch | body
//
// The epoch is the DB update epoch *resulting* from the record (batch
// records advance it by one; register and dict records carry the
// current epoch unchanged), which is what lets recovery assert it
// rebuilt the exact pre-crash state: after replaying a record the
// engine's epoch must equal the record's tag, or the log is corrupt.
//
// Bodies (strings are uvarint length + bytes, values are zigzag
// varints):
//
//	register := uvarint relEpoch | str name | uvarint arity |
//	            attrs... | uvarint rows | rows×arity values
//	batch    := uvarint rels | per rel: str name | uvarint arity |
//	            uvarint ops | per op: u8 del | arity values
//	dict     := uvarint firstID | uvarint count | count strings
//	mat      := str id | str query | u8 mode | u8 algo |
//	            uvarint parallelism | uvarint nproj | nproj strings
//	unmat    := str id
//
// Decoding is defensive: every count is validated against the bytes
// that remain (each element costs at least one byte), so a corrupt
// length can never drive an allocation larger than the input itself,
// and no malformed input may panic — the fuzz harness holds the
// decoder to that.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"wcoj/internal/delta"
	"wcoj/internal/relation"
)

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindRegister carries a full relation: Register replaced (or first
	// stored) the relation, resetting it to a fresh epoch-0 version.
	KindRegister Kind = 1
	// KindBatch carries one applied update batch: the ordered insert
	// and delete operations per touched relation.
	KindBatch Kind = 2
	// KindDict carries newly interned dictionary strings, in ID order,
	// logged before any record whose tuples may reference them.
	KindDict Kind = 3
	// KindMaterialize carries a maintained-view registration
	// (DB.Materialize): the view id, the canonical query text and its
	// options, so recovery can re-arm the view against the replayed
	// state. Log rotation re-appends one per live view after the
	// snapshot.
	KindMaterialize Kind = 4
	// KindUnmaterialize retires a maintained view by id
	// (MaterializedQuery.Close).
	KindUnmaterialize Kind = 5
)

// RelOps is one relation's slice of a batch record, in application
// order.
type RelOps struct {
	Rel string
	Ops []delta.Op
}

// Record is one decoded WAL record. Exactly the fields of its Kind are
// populated.
type Record struct {
	Kind  Kind
	Epoch uint64

	// KindRegister: the relation and its version epoch (0 for live
	// registers; snapshots reuse the encoding with the real epoch).
	Rel      *relation.Relation
	RelEpoch uint64

	// KindBatch: per-relation operations in first-touch order.
	Batch []RelOps

	// KindDict: strings interned as IDs DictFirst, DictFirst+1, ...
	DictFirst uint64
	DictStrs  []string

	// KindMaterialize / KindUnmaterialize: the view id, and (materialize
	// only) the canonical query text and its options — mode, algorithm,
	// parallelism and projection, encoded as the plain integers the
	// engine enums map to. A nil MatProject round-trips as nil (an empty
	// projection never validates).
	MatID       string
	MatSrc      string
	MatMode     uint8
	MatAlgo     uint8
	MatParallel uint64
	MatProject  []string
}

// maxFrame bounds a single record frame; a declared length past it is
// treated as corruption rather than attempted.
const maxFrame = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes rec as one checksummed frame appended to dst.
func appendFrame(dst []byte, rec *Record) []byte {
	payload := appendPayload(nil, rec)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func appendPayload(dst []byte, rec *Record) []byte {
	dst = append(dst, byte(rec.Kind))
	dst = binary.AppendUvarint(dst, rec.Epoch)
	switch rec.Kind {
	case KindRegister:
		dst = binary.AppendUvarint(dst, rec.RelEpoch)
		dst = appendRel(dst, rec.Rel)
	case KindBatch:
		dst = binary.AppendUvarint(dst, uint64(len(rec.Batch)))
		for _, ro := range rec.Batch {
			dst = appendString(dst, ro.Rel)
			arity := 0
			if len(ro.Ops) > 0 {
				arity = len(ro.Ops[0].T)
			}
			dst = binary.AppendUvarint(dst, uint64(arity))
			dst = binary.AppendUvarint(dst, uint64(len(ro.Ops)))
			for _, op := range ro.Ops {
				del := byte(0)
				if op.Del {
					del = 1
				}
				dst = append(dst, del)
				for _, v := range op.T {
					dst = binary.AppendVarint(dst, int64(v))
				}
			}
		}
	case KindDict:
		dst = binary.AppendUvarint(dst, rec.DictFirst)
		dst = binary.AppendUvarint(dst, uint64(len(rec.DictStrs)))
		for _, s := range rec.DictStrs {
			dst = appendString(dst, s)
		}
	case KindMaterialize:
		dst = appendString(dst, rec.MatID)
		dst = appendString(dst, rec.MatSrc)
		dst = append(dst, rec.MatMode, rec.MatAlgo)
		dst = binary.AppendUvarint(dst, rec.MatParallel)
		dst = binary.AppendUvarint(dst, uint64(len(rec.MatProject)))
		for _, s := range rec.MatProject {
			dst = appendString(dst, s)
		}
	case KindUnmaterialize:
		dst = appendString(dst, rec.MatID)
	}
	return dst
}

// appendRel encodes a relation body: name, schema, then the rows in
// the relation's (sorted) storage order.
func appendRel(dst []byte, r *relation.Relation) []byte {
	dst = appendString(dst, r.Name())
	attrs := r.Attrs()
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		dst = appendString(dst, a)
	}
	n := r.Len()
	dst = binary.AppendUvarint(dst, uint64(n))
	cols := make([][]relation.Value, len(attrs))
	for j := range cols {
		cols[j] = r.Col(j)
	}
	for i := 0; i < n; i++ {
		for j := range cols {
			dst = binary.AppendVarint(dst, int64(cols[j][i]))
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodePayload decodes one record payload (the bytes a frame's CRC
// validated). Any structural error — unknown kind, counts that exceed
// the input, trailing garbage — is corruption: the caller rejects the
// log.
func decodePayload(p []byte) (*Record, error) {
	r := &reader{buf: p}
	rec := &Record{}
	k, err := r.byte()
	if err != nil {
		return nil, err
	}
	rec.Kind = Kind(k)
	if rec.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	switch rec.Kind {
	case KindRegister:
		if rec.RelEpoch, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rec.Rel, err = r.rel(); err != nil {
			return nil, err
		}
	case KindBatch:
		nrels, err := r.count()
		if err != nil {
			return nil, err
		}
		rec.Batch = make([]RelOps, 0, nrels)
		for i := 0; i < nrels; i++ {
			var ro RelOps
			if ro.Rel, err = r.str(); err != nil {
				return nil, err
			}
			arity, err := r.count()
			if err != nil {
				return nil, err
			}
			nops, err := r.count()
			if err != nil {
				return nil, err
			}
			ro.Ops = make([]delta.Op, 0, nops)
			for o := 0; o < nops; o++ {
				del, err := r.byte()
				if err != nil {
					return nil, err
				}
				if del > 1 {
					return nil, fmt.Errorf("wal: bad op flag %d", del)
				}
				t := make(relation.Tuple, arity)
				for j := 0; j < arity; j++ {
					v, err := r.varint()
					if err != nil {
						return nil, err
					}
					t[j] = relation.Value(v)
				}
				ro.Ops = append(ro.Ops, delta.Op{Del: del == 1, T: t})
			}
			rec.Batch = append(rec.Batch, ro)
		}
	case KindDict:
		if rec.DictFirst, err = r.uvarint(); err != nil {
			return nil, err
		}
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		rec.DictStrs = make([]string, 0, n)
		for i := 0; i < n; i++ {
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			rec.DictStrs = append(rec.DictStrs, s)
		}
	case KindMaterialize:
		if rec.MatID, err = r.str(); err != nil {
			return nil, err
		}
		if rec.MatSrc, err = r.str(); err != nil {
			return nil, err
		}
		if rec.MatMode, err = r.byte(); err != nil {
			return nil, err
		}
		if rec.MatAlgo, err = r.byte(); err != nil {
			return nil, err
		}
		if rec.MatParallel, err = r.uvarint(); err != nil {
			return nil, err
		}
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			rec.MatProject = make([]string, 0, n)
			for i := 0; i < n; i++ {
				s, err := r.str()
				if err != nil {
					return nil, err
				}
				rec.MatProject = append(rec.MatProject, s)
			}
		}
	case KindUnmaterialize:
		if rec.MatID, err = r.str(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", k)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("wal: %d trailing bytes after record", len(r.buf)-r.off)
	}
	return rec, nil
}

// reader is a bounds-checked cursor over one payload.
type reader struct {
	buf []byte
	off int
}

var errShort = fmt.Errorf("wal: truncated record body")

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, errShort
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errShort
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, errShort
	}
	r.off += n
	return v, nil
}

// count reads a uvarint that counts elements costing at least one byte
// each, rejecting values the remaining input cannot possibly hold — a
// corrupt count must not size an allocation.
func (r *reader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)-r.off) || v > math.MaxInt32 {
		return 0, fmt.Errorf("wal: count %d exceeds remaining input %d", v, len(r.buf)-r.off)
	}
	return int(v), nil
}

func (r *reader) str() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

// rel decodes a register-style relation body through a Builder (which
// re-sorts and dedups, so even a hand-edited log yields a valid
// relation).
func (r *reader) rel() (*relation.Relation, error) {
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	arity, err := r.count()
	if err != nil {
		return nil, err
	}
	attrs := make([]string, 0, arity)
	for i := 0; i < arity; i++ {
		a, err := r.str()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	b := relation.NewBuilder(name, attrs...)
	t := make(relation.Tuple, arity)
	for i := 0; i < n; i++ {
		for j := 0; j < arity; j++ {
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			t[j] = relation.Value(v)
		}
		if err := b.Add(t...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
