// Package lftj implements Veldhuizen's Leapfrog Triejoin [66], the
// worst-case optimal join algorithm that has been the work-horse of the
// LogicBlox engine. It walks one trie iterator per atom in lockstep
// through a global variable order; at each level the participating
// iterators run the leapfrog intersection (round-robin seek to the
// current maximum key). Like Generic-Join it runs in Õ(N^{ρ*}); the
// two differ operationally — LFTJ never materializes a level's
// intersection, Generic-Join does — which the benchmark harness
// measures as an ablation.
package lftj

import (
	"fmt"
	"sort"

	"wcoj/internal/core"
	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// Options configure a leapfrog triejoin run.
type Options struct {
	// Order is the global variable order; nil selects the degree-order
	// heuristic.
	Order []string
}

// Join evaluates the query with leapfrog triejoin and materializes the
// result.
func Join(q *core.Query, opts Options) (*relation.Relation, *core.Stats, error) {
	stats := &core.Stats{}
	out := relation.NewBuilder(q.OutputName(), q.Vars...)
	err := visit(q, opts, stats, func(t relation.Tuple) error {
		return out.Add(t...)
	})
	if err != nil {
		return nil, nil, err
	}
	rel := out.Build()
	stats.Output = rel.Len()
	return rel, stats, nil
}

// Count evaluates the query, returning only the output cardinality.
func Count(q *core.Query, opts Options) (int, *core.Stats, error) {
	stats := &core.Stats{}
	n := 0
	err := visit(q, opts, stats, func(relation.Tuple) error {
		n++
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	stats.Output = n
	return n, stats, nil
}

type atomState struct {
	it *trie.Iterator
	// levelOf[d] >= 0 iff the atom contains the variable at global
	// depth d.
	levelOf []int
}

func visit(q *core.Query, opts Options, stats *core.Stats, emit func(relation.Tuple) error) error {
	if err := q.Validate(); err != nil {
		return err
	}
	order := opts.Order
	if order == nil {
		h, err := q.Hypergraph()
		if err != nil {
			return err
		}
		order = h.DegreeOrder()
	}
	if len(order) != len(q.Vars) {
		return fmt.Errorf("lftj: order %v must cover all %d variables", order, len(q.Vars))
	}

	atoms := make([]*atomState, len(q.Atoms))
	for i, a := range q.Atoms {
		rel, err := a.Rel.Rename(a.Name, a.Vars...)
		if err != nil {
			return err
		}
		var atomOrder []string
		for _, v := range order {
			for _, av := range a.Vars {
				if av == v {
					atomOrder = append(atomOrder, v)
					break
				}
			}
		}
		if len(atomOrder) != len(a.Vars) {
			return fmt.Errorf("lftj: order is missing variables of atom %s", a.Name)
		}
		tr, err := trie.Build(rel, atomOrder)
		if err != nil {
			return err
		}
		st := &atomState{it: trie.NewIterator(tr), levelOf: make([]int, len(order))}
		for d := range order {
			st.levelOf[d] = -1
		}
		for l, v := range atomOrder {
			for d, ov := range order {
				if ov == v {
					st.levelOf[d] = l
				}
			}
		}
		atoms[i] = st
	}

	participants := make([][]*atomState, len(order))
	for d := range order {
		for _, st := range atoms {
			if st.levelOf[d] >= 0 {
				participants[d] = append(participants[d], st)
			}
		}
		if len(participants[d]) == 0 {
			return fmt.Errorf("lftj: variable %q occurs in no atom", order[d])
		}
	}

	outPos := make([]int, len(order))
	for d, v := range order {
		outPos[d] = -1
		for i, qv := range q.Vars {
			if qv == v {
				outPos[d] = i
			}
		}
		if outPos[d] < 0 {
			return fmt.Errorf("lftj: order variable %q not in query", order[d])
		}
	}

	binding := make(relation.Tuple, len(q.Vars))

	var rec func(d int) error
	rec = func(d int) error {
		stats.Recursions++
		if d == len(order) {
			return emit(binding)
		}
		iters := participants[d]
		// Descend all participating iterators.
		for _, st := range iters {
			st.it.Open()
		}
		defer func() {
			for _, st := range iters {
				st.it.Up()
			}
		}()
		// leapfrog-init: if any is empty, the level is empty.
		for _, st := range iters {
			if st.it.AtEnd() {
				return nil
			}
		}
		k := len(iters)
		// Sort by current key (leapfrog invariant).
		sort.Slice(iters, func(i, j int) bool { return iters[i].it.Key() < iters[j].it.Key() })
		p := 0
		for {
			xmax := iters[(p+k-1)%k].it.Key()
			x := iters[p].it.Key()
			if x == xmax {
				// All iterators agree on x: a match.
				stats.IntersectValues++
				binding[outPos[d]] = x
				if err := rec(d + 1); err != nil {
					return err
				}
				iters[p].it.Next()
				if iters[p].it.AtEnd() {
					return nil
				}
				p = (p + 1) % k
			} else {
				iters[p].it.Seek(xmax)
				if iters[p].it.AtEnd() {
					return nil
				}
				p = (p + 1) % k
			}
		}
	}
	return rec(0)
}
