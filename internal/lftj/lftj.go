// Package lftj implements Veldhuizen's Leapfrog Triejoin [66], the
// worst-case optimal join algorithm that has been the work-horse of the
// LogicBlox engine. It walks one trie iterator per atom in lockstep
// through a global variable order; at each level the participating
// iterators run the leapfrog intersection (round-robin seek to the
// current maximum key). Like Generic-Join it runs in Õ(N^{ρ*}); the
// two differ operationally — LFTJ never materializes a level's
// intersection, Generic-Join does — which the benchmark harness
// measures as an ablation.
//
// With Options.Parallelism > 1 the depth-0 leapfrog is replaced by one
// materialized top-level intersection that is sharded across worker
// goroutines; each worker walks its chunk with private trie iterators
// over the shared immutable tries, so results (and Stats totals) are
// identical to the serial run.
package lftj

import (
	"context"
	"sort"
	"sync/atomic"

	"wcoj/internal/core"
	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// Options configure a leapfrog triejoin run.
type Options struct {
	// Order is the global variable order; nil selects the degree-order
	// heuristic.
	Order []string
	// Policy, when non-nil, resolves the variable order and takes
	// precedence over Order (explicit, heuristic, or the cost-based
	// optimizer of internal/planner).
	Policy core.OrderPolicy
	// Parallelism is the number of worker goroutines sharding the
	// depth-0 intersection. Values <= 1 run the serial join. Output
	// order and Stats totals are identical at every setting.
	Parallelism int
	// Store, when non-nil, serves the per-atom tries (a long-lived DB
	// passes its own); nil uses the process-global trie store.
	Store *core.TrieStore
	// Ctx, when non-nil, cancels the run: workers poll it and unwind
	// promptly, and the entry points return ctx.Err(). Nil means no
	// cancellation.
	Ctx context.Context
}

// plan resolves the options into an execution plan: Policy wins when
// set, otherwise Order (nil Order selects the heuristic). Tries come
// from o.Store (nil = the process-global store).
func (o Options) plan(q *core.Query) (*core.Plan, error) {
	policy := o.Policy
	if policy == nil && o.Order != nil {
		policy = core.ExplicitOrder(o.Order)
	}
	return core.BuildPlanIn(o.Store, q, policy)
}

// Join evaluates the query with leapfrog triejoin and materializes the
// result.
func Join(q *core.Query, opts Options) (*relation.Relation, *core.Stats, error) {
	stats := &core.Stats{}
	out := relation.NewBuilder(q.OutputName(), q.Vars...)
	err := Visit(q, opts, stats, func(t relation.Tuple) error {
		return out.Add(t...)
	})
	if err != nil {
		return nil, nil, err
	}
	rel := out.Build()
	stats.Output = rel.Len()
	return rel, stats, nil
}

// Count evaluates the query, returning only the output cardinality.
// Under parallelism each worker counts locally; no tuples are
// buffered.
func Count(q *core.Query, opts Options) (int, *core.Stats, error) {
	p, err := opts.plan(q)
	if err != nil {
		return 0, nil, err
	}
	return PlanCount(opts.Ctx, p, opts.Parallelism)
}

// PlanCount is Count over a prebuilt plan — the re-execution path of
// prepared queries, with context cancellation.
func PlanCount(ctx context.Context, p *core.Plan, parallelism int) (int, *core.Stats, error) {
	stats := &core.Stats{}
	if err := core.CtxErr(ctx); err != nil {
		return 0, nil, err
	}
	n := 0
	var err error
	if parallelism <= 1 || len(p.Order) == 0 {
		var stop atomic.Bool
		defer core.WatchCancel(ctx, &stop)()
		w := newWorker(p, stats, func(relation.Tuple) error {
			n++
			return nil
		})
		w.stop = &stop
		w.budget = core.BudgetFrom(ctx)
		err = core.CtxAbortErr(ctx, w.rec(0))
	} else {
		vals := p.TopValues(nil)
		stats.Recursions++
		n, err = core.RunShardedCount(ctx, vals, parallelism, stats, shardRun(p, core.BudgetFrom(ctx)))
	}
	if err != nil {
		return 0, nil, err
	}
	stats.Output = n
	return n, stats, nil
}

// Visit streams the join result to emit in the canonical
// (variable-order lexicographic) sequence. The Tuple passed to emit is
// reused between calls; emit must copy it to retain it. With
// opts.Parallelism > 1 chunks of the top-level intersection are
// searched concurrently and replayed in deterministic chunk order.
func Visit(q *core.Query, opts Options, stats *core.Stats, emit func(relation.Tuple) error) error {
	p, err := opts.plan(q)
	if err != nil {
		return err
	}
	return PlanVisit(opts.Ctx, p, opts.Parallelism, stats, emit)
}

// PlanVisit is Visit over a prebuilt plan — the re-execution path of
// prepared queries, with context cancellation.
func PlanVisit(ctx context.Context, p *core.Plan, parallelism int, stats *core.Stats, emit func(relation.Tuple) error) error {
	if err := core.CtxErr(ctx); err != nil {
		return err
	}
	if parallelism <= 1 || len(p.Order) == 0 {
		var stop atomic.Bool
		defer core.WatchCancel(ctx, &stop)()
		w := newWorker(p, stats, emit)
		w.stop = &stop
		w.budget = core.BudgetFrom(ctx)
		return core.CtxAbortErr(ctx, w.rec(0))
	}
	vals := p.TopValues(nil)
	// Account for the root node exactly as the serial search does;
	// per-value IntersectValues are counted by the workers.
	stats.Recursions++
	return core.RunShardedTop(ctx, vals, parallelism, len(p.Q.Vars), stats, emit, shardRun(p, core.BudgetFrom(ctx)))
}

// shardRun adapts the leapfrog search to the sharded runner: each
// chunk gets a fresh worker (private iterators over the shared tries)
// walking its slice of the precomputed depth-0 intersection. All
// workers draw from the one budget, bounding the run's total nodes.
func shardRun(p *core.Plan, budget *core.NodeBudget) func([]relation.Value, *core.Stats, *atomic.Bool, func(relation.Tuple) error) error {
	return func(chunk []relation.Value, st *core.Stats, stop *atomic.Bool, emit func(relation.Tuple) error) error {
		// Charge the chunk's depth-0 values upfront: per-chunk Stats
		// restart the &255 poll stride, so without this a fleet of
		// small chunks could dodge the budget entirely.
		if !budget.Spend(int64(len(chunk))) {
			return core.ErrNodeBudget
		}
		w := newWorker(p, st, emit)
		w.stop = stop
		w.budget = budget
		return w.iterateTop(chunk)
	}
}

type atomState struct {
	it *trie.Iterator
	// levelOf[d] >= 0 iff the atom contains the variable at global
	// depth d.
	levelOf []int
}

// worker is the mutable state of one search goroutine: private trie
// iterators (cursors over the shared tries), private participant
// slices (rec sorts them in place) and a private binding tuple.
type worker struct {
	plan         *core.Plan
	atoms        []*atomState
	participants [][]*atomState
	binding      relation.Tuple
	stats        *core.Stats
	emit         func(relation.Tuple) error
	// stop, when non-nil, is polled every few hundred search nodes so a
	// cancelled (or aborted) run unwinds promptly even when it emits
	// rarely; the recursion returns core.ErrAborted.
	stop *atomic.Bool
	// budget, when non-nil, is drawn down at the same stride; an
	// exhausted budget unwinds with core.ErrNodeBudget.
	budget *core.NodeBudget
}

func newWorker(p *core.Plan, stats *core.Stats, emit func(relation.Tuple) error) *worker {
	atoms := make([]*atomState, len(p.Tries))
	for i, tr := range p.Tries {
		atoms[i] = &atomState{it: trie.NewIterator(tr), levelOf: p.LevelOf[i]}
	}
	w := &worker{
		plan:         p,
		atoms:        atoms,
		participants: make([][]*atomState, len(p.Order)),
		binding:      make(relation.Tuple, len(p.Q.Vars)),
		stats:        stats,
		emit:         emit,
	}
	for d, idx := range p.Participants {
		w.participants[d] = make([]*atomState, len(idx))
		for j, ai := range idx {
			w.participants[d][j] = atoms[ai]
		}
	}
	return w
}

// rec runs the leapfrog join from depth d (all iterators positioned on
// the levels above d).
func (w *worker) rec(d int) error {
	w.stats.Recursions++
	if w.stats.Recursions&255 == 0 {
		if w.stop != nil && w.stop.Load() {
			return core.ErrAborted
		}
		if !w.budget.Spend(256) {
			return core.ErrNodeBudget
		}
	}
	if d == len(w.plan.Order) {
		return w.emit(w.binding)
	}
	iters := w.participants[d]
	// Descend all participating iterators.
	for _, st := range iters {
		st.it.Open()
	}
	defer func() {
		for _, st := range iters {
			st.it.Up()
		}
	}()
	// leapfrog-init: if any is empty, the level is empty.
	for _, st := range iters {
		if st.it.AtEnd() {
			return nil
		}
	}
	k := len(iters)
	// Sort by current key (leapfrog invariant).
	sort.Slice(iters, func(i, j int) bool { return iters[i].it.Key() < iters[j].it.Key() })
	p := 0
	for {
		xmax := iters[(p+k-1)%k].it.Key()
		x := iters[p].it.Key()
		if x == xmax {
			// All iterators agree on x: a match.
			w.stats.IntersectValues++
			w.binding[w.plan.OutPos[d]] = x
			if err := w.rec(d + 1); err != nil {
				return err
			}
			iters[p].it.Next()
			if iters[p].it.AtEnd() {
				return nil
			}
			p = (p + 1) % k
		} else {
			iters[p].it.Seek(xmax)
			if iters[p].it.AtEnd() {
				return nil
			}
			p = (p + 1) % k
		}
	}
}

// iterateTop binds each top-level value of one chunk on this worker's
// iterators and recurses. Every v comes from the full depth-0
// intersection, so each participating iterator seeks directly to it.
func (w *worker) iterateTop(vals []relation.Value) error {
	iters := w.participants[0]
	for _, v := range vals {
		ok := true
		for _, st := range iters {
			st.it.Open()
			st.it.Seek(v)
			if st.it.AtEnd() || st.it.Key() != v {
				ok = false // cannot happen: v came from the intersection
				break
			}
		}
		var err error
		if ok {
			w.stats.IntersectValues++
			w.binding[w.plan.OutPos[0]] = v
			err = w.rec(1)
		}
		// Unwind any iterator this round opened (on the "cannot
		// happen" miss path some may still be at the root).
		for _, st := range iters {
			if st.it.Depth() == 0 {
				st.it.Up()
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
