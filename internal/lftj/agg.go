package lftj

// Aggregate-aware Leapfrog Triejoin: the iterator-based twin of
// core's aggregate Generic-Join. The same agg.Classification drives
// both engines — free-counted suffix levels multiply the active
// atoms' current row-range sizes instead of opening iterators, the
// deepest level of a counting run counts leapfrog matches without
// recursing, bound levels consult the per-(trie,prefix) memo, and
// EXISTS short-circuits on the first witness (across shards via a
// shared stop flag). Counts are byte-identical to
// enumerate-then-aggregate at every parallelism setting.

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"wcoj/internal/agg"
	"wcoj/internal/core"
	"wcoj/internal/relation"
)

// aggPlan resolves the options into a sunk, classified plan shared
// with core.AggPlan (Policy wins over Order, as in plan).
func (o Options) aggPlan(q *core.Query, spec agg.Spec) (*core.Plan, *agg.Classification, error) {
	policy := o.Policy
	if policy == nil && o.Order != nil {
		policy = core.ExplicitOrder(o.Order)
	}
	return core.AggPlanIn(o.Store, q, policy, spec)
}

// Agg evaluates an aggregate with leapfrog search. ModeCount returns
// the result cardinality — full multiplicity with a nil spec.Project,
// distinct projected tuples otherwise. ModeExists returns 1 or 0,
// short-circuiting on the first witness.
func Agg(q *core.Query, opts Options, spec agg.Spec) (int64, *core.Stats, error) {
	p, cls, err := opts.aggPlan(q, spec)
	if err != nil {
		return 0, nil, err
	}
	return AggPlan(opts.Ctx, p, cls, opts.Parallelism)
}

// AggPlan is Agg over a prebuilt sunk plan and classification — the
// re-execution path of prepared aggregate queries, with context
// cancellation. The spec is the one the plan was classified for
// (cls.Spec).
func AggPlan(ctx context.Context, p *core.Plan, cls *agg.Classification, parallelism int) (int64, *core.Stats, error) {
	stats := &core.Stats{}
	if err := core.CtxErr(ctx); err != nil {
		return 0, nil, err
	}
	switch cls.Spec.Mode {
	case agg.ModeCount:
		if len(cls.Spec.Project) > 0 {
			var n int64
			err := projectVisit(ctx, p, cls, parallelism, stats, func(relation.Tuple) error {
				n++
				return nil
			})
			if err != nil {
				return 0, nil, err
			}
			stats.Output = int(n)
			return n, stats, nil
		}
		n, err := countFast(ctx, p, cls, parallelism, stats)
		if err != nil {
			return 0, nil, err
		}
		stats.Output = int(n)
		return n, stats, nil
	case agg.ModeExists:
		found, err := existsFast(ctx, p, cls, parallelism, stats)
		if err != nil {
			return 0, nil, err
		}
		if found {
			stats.Output = 1
			return 1, stats, nil
		}
		return 0, stats, nil
	}
	return 0, nil, fmt.Errorf("lftj: unsupported aggregate mode %v", cls.Spec.Mode)
}

// ProjectVisit streams the distinct projected tuples of the query to
// emit, in the lexicographic order of the sunk variable-order prefix.
// The Tuple passed to emit is reused between calls; emit must copy it
// to retain it.
func ProjectVisit(q *core.Query, opts Options, project []string, stats *core.Stats, emit func(relation.Tuple) error) error {
	p, cls, err := opts.aggPlan(q, agg.Spec{Mode: agg.ModeEnumerate, Project: project})
	if err != nil {
		return err
	}
	return projectVisit(opts.Ctx, p, cls, opts.Parallelism, stats, emit)
}

// ProjectVisitPlan is ProjectVisit over a prebuilt sunk plan and
// enumerate-mode classification, with context cancellation.
func ProjectVisitPlan(ctx context.Context, p *core.Plan, cls *agg.Classification, parallelism int, stats *core.Stats, emit func(relation.Tuple) error) error {
	return projectVisit(ctx, p, cls, parallelism, stats, emit)
}

func countFast(ctx context.Context, p *core.Plan, cls *agg.Classification, parallelism int, stats *core.Stats) (int64, error) {
	if parallelism <= 1 || len(p.Order) == 0 || cls.CountFrom == 0 {
		var stop atomic.Bool
		defer core.WatchCancel(ctx, &stop)()
		a := newAggWorker(p, cls, stats, nil)
		a.stop = &stop
		a.budget = core.BudgetFrom(ctx)
		n := a.count(0)
		if a.aborted {
			if a.budgetHit {
				return 0, core.ErrNodeBudget
			}
			return 0, core.CtxAbortErr(ctx, core.ErrAborted)
		}
		if a.overflow {
			return 0, agg.ErrCountOverflow
		}
		return n, nil
	}
	vals := p.TopValues(nil)
	stats.Recursions++
	budget := core.BudgetFrom(ctx)
	total, err := core.RunShardedSum(ctx, vals, parallelism, stats, func(chunk []relation.Value, st *core.Stats, stop *atomic.Bool) (int64, error) {
		if !budget.Spend(int64(len(chunk))) {
			return 0, core.ErrNodeBudget
		}
		a := newAggWorker(p, cls, st, nil)
		a.stop = stop
		a.budget = budget
		n := a.countChunk(chunk)
		if a.aborted {
			if a.budgetHit {
				return 0, core.ErrNodeBudget
			}
			return 0, core.ErrAborted
		}
		if a.overflow {
			return 0, agg.ErrCountOverflow
		}
		return n, nil
	})
	if err == nil && total < 0 { // cross-chunk summation wrapped
		err = agg.ErrCountOverflow
	}
	if err != nil {
		return 0, err
	}
	return total, nil
}

func existsFast(ctx context.Context, p *core.Plan, cls *agg.Classification, parallelism int, stats *core.Stats) (bool, error) {
	if parallelism <= 1 || len(p.Order) == 0 || cls.CountFrom == 0 {
		var stop atomic.Bool
		defer core.WatchCancel(ctx, &stop)()
		a := newAggWorker(p, cls, stats, nil)
		a.stop = &stop
		a.budget = core.BudgetFrom(ctx)
		found := a.exists(0)
		if !found {
			if a.budgetHit {
				return false, core.ErrNodeBudget
			}
			// The stop flag is only set by cancellation here, so a false
			// under a cancelled context is inconclusive, not a "no".
			if err := core.CtxErr(ctx); err != nil {
				return false, err
			}
		}
		return found, nil
	}
	vals := p.TopValues(nil)
	stats.Recursions++
	budget := core.BudgetFrom(ctx)
	return core.RunShardedAny(ctx, vals, parallelism, stats, func(chunk []relation.Value, st *core.Stats, stop *atomic.Bool) (bool, error) {
		if !budget.Spend(int64(len(chunk))) {
			return false, core.ErrNodeBudget
		}
		a := newAggWorker(p, cls, st, nil)
		a.stop = stop
		a.budget = budget
		found := a.existsChunk(chunk)
		if !found && a.budgetHit {
			return false, core.ErrNodeBudget
		}
		return found, nil
	})
}

func projectVisit(ctx context.Context, p *core.Plan, cls *agg.Classification, parallelism int, stats *core.Stats, emit func(relation.Tuple) error) error {
	if parallelism <= 1 || len(p.Order) == 0 || cls.EnumEnd == 0 {
		var stop atomic.Bool
		defer core.WatchCancel(ctx, &stop)()
		a := newAggWorker(p, cls, stats, emit)
		a.stop = &stop
		a.budget = core.BudgetFrom(ctx)
		err := a.visit(0)
		if err == nil {
			// Budget exhaustion inside the inner existence checks has no
			// error path: prefixes were silently skipped, so a nil
			// completion with the flag set is incomplete, not success.
			if a.budgetHit {
				return core.ErrNodeBudget
			}
			// See the Generic-Join twin: a nil completion under a
			// cancelled ctx may have skipped prefixes via the suppressed
			// existence checks — report the cancellation, not success.
			return core.CtxErr(ctx)
		}
		return core.CtxAbortErr(ctx, err)
	}
	vals := p.TopValues(nil)
	stats.Recursions++
	budget := core.BudgetFrom(ctx)
	return core.RunShardedTop(ctx, vals, parallelism, len(cls.Spec.Project), stats, emit,
		func(chunk []relation.Value, st *core.Stats, stop *atomic.Bool, chunkEmit func(relation.Tuple) error) error {
			if !budget.Spend(int64(len(chunk))) {
				return core.ErrNodeBudget
			}
			a := newAggWorker(p, cls, st, chunkEmit)
			a.stop = stop
			a.budget = budget
			err := a.visitChunk(chunk)
			if err == nil && a.budgetHit {
				return core.ErrNodeBudget
			}
			return err
		})
}

// aggWorker is the per-goroutine state of an aggregate-aware leapfrog
// search: the plain worker's iterators plus the classification, the
// subtree memo and the projection buffer.
type aggWorker struct {
	w    *worker
	cls  *agg.Classification
	memo *agg.Memo
	// stop, when non-nil, is polled by every search mode: sharded
	// EXISTS short-circuits across workers through it, and a cancelled
	// or aborted run unwinds at the next poll.
	stop *atomic.Bool
	// budget, when non-nil, is drawn down at the stop-poll stride; all
	// workers of a run share one budget.
	budget    *core.NodeBudget
	projPos   []int
	projBuf   relation.Tuple
	keyRanges []int
	// aborted records that a stop-flag poll fired inside a counting
	// search (which has no error path); the entry points translate it.
	// budgetHit qualifies the abort: the run died of budget exhaustion,
	// not cancellation, and must surface core.ErrNodeBudget.
	aborted   bool
	budgetHit bool
	// overflow records that a count exceeded int64 somewhere below;
	// set by product, checked by the counting entry points.
	overflow bool
}

func newAggWorker(p *core.Plan, cls *agg.Classification, stats *core.Stats, emit func(relation.Tuple) error) *aggWorker {
	a := &aggWorker{
		w:    newWorker(p, stats, emit),
		cls:  cls,
		memo: agg.NewMemo(),
	}
	if len(cls.Spec.Project) > 0 {
		a.projPos = make([]int, len(cls.Spec.Project))
		a.projBuf = make(relation.Tuple, len(cls.Spec.Project))
		for i, v := range cls.Spec.Project {
			for j, qv := range p.Q.Vars {
				if qv == v {
					a.projPos[i] = j
				}
			}
		}
	}
	return a
}

// rangeOf returns atom ai's current row range given its bound level:
// an atom with no variable bound yet spans its whole trie; otherwise
// the segment of its deepest matched value, read through RangeAt so a
// leapfrog loop mid-flight below that level cannot disturb it.
func (a *aggWorker) rangeOf(ai, boundLevel int) (int, int) {
	if boundLevel == 0 {
		return 0, a.w.plan.Tries[ai].Len()
	}
	return a.w.atoms[ai].it.RangeAt(boundLevel - 1)
}

// product multiplies the active atoms' current row-range sizes — the
// number of suffix extensions below depth d when every remaining level
// is free-counted. Overflow marks the worker instead of wrapping; the
// entry points turn the mark into agg.ErrCountOverflow.
func (a *aggWorker) product(d int) int64 {
	prod := int64(1)
	for j, ai := range a.cls.ActiveAtoms[d] {
		lo, hi := a.rangeOf(ai, a.cls.BoundLevel[d][j])
		var ok bool
		prod, ok = agg.Mul(prod, int64(hi-lo))
		if !ok {
			a.overflow = true
			return 0
		}
		if prod == 0 {
			return 0
		}
	}
	return prod
}

// productNonEmpty is the existence twin of product: every active
// atom's range is non-empty. No multiplication, so no overflow.
func (a *aggWorker) productNonEmpty(d int) bool {
	for j, ai := range a.cls.ActiveAtoms[d] {
		lo, hi := a.rangeOf(ai, a.cls.BoundLevel[d][j])
		if hi <= lo {
			return false
		}
	}
	return true
}

// memoKey builds the subtree signature at depth d from the active
// atoms' current ranges.
func (a *aggWorker) memoKey(d int) []byte {
	a.keyRanges = a.keyRanges[:0]
	for j, ai := range a.cls.ActiveAtoms[d] {
		lo, hi := a.rangeOf(ai, a.cls.BoundLevel[d][j])
		a.keyRanges = append(a.keyRanges, lo, hi)
	}
	return a.memo.Key(d, a.keyRanges)
}

// count returns the number of full result tuples below the current
// prefix at depth d (all iterators positioned on the levels above d).
func (a *aggWorker) count(d int) int64 {
	w := a.w
	w.stats.Recursions++
	if a.aborted {
		return 0
	}
	if w.stats.Recursions&255 == 0 {
		if a.stop != nil && a.stop.Load() {
			a.aborted = true
			return 0
		}
		if !a.budget.Spend(256) {
			a.aborted, a.budgetHit = true, true
			return 0
		}
	}
	n := len(w.plan.Order)
	if d == n {
		return 1
	}
	if d >= a.cls.CountFrom {
		w.stats.AggMultiplies++
		return a.product(d)
	}
	useMemo := a.cls.MemoDepths[d] && a.memo.Enabled()
	if useMemo {
		if v, ok := a.memo.Get(a.memoKey(d)); ok {
			w.stats.AggMemoHits++
			return v
		}
	}
	tail := d == n-1
	if tail {
		w.stats.AggMultiplies++
	}
	var total int64
	a.leapfrog(d, func() bool {
		if tail {
			total++
		} else {
			total += a.count(d + 1)
			if total < 0 { // summation wrapped
				a.overflow = true
				total = 0
			}
		}
		return true
	})
	if useMemo && !a.overflow {
		a.memo.Put(a.memoKey(d), total)
	}
	return total
}

// exists reports whether any result tuple extends the current prefix,
// short-circuiting on the first witness.
func (a *aggWorker) exists(d int) bool {
	w := a.w
	if a.aborted || (a.stop != nil && a.stop.Load()) {
		return false
	}
	w.stats.Recursions++
	if w.stats.Recursions&255 == 0 && !a.budget.Spend(256) {
		// No error path here either: flag the exhaustion and unwind
		// with inconclusive falses; the entry points translate.
		a.aborted, a.budgetHit = true, true
		return false
	}
	n := len(w.plan.Order)
	if d == n {
		return true
	}
	if d >= a.cls.CountFrom {
		w.stats.AggMultiplies++
		return a.productNonEmpty(d)
	}
	useMemo := a.cls.MemoDepths[d] && a.memo.Enabled()
	if useMemo {
		if v, ok := a.memo.Get(a.memoKey(d)); ok {
			w.stats.AggMemoHits++
			return v != 0
		}
	}
	tail := d == n-1
	if tail {
		w.stats.AggMultiplies++
	}
	found := false
	a.leapfrog(d, func() bool {
		if a.stop != nil && a.stop.Load() {
			return false
		}
		if tail || a.exists(d+1) {
			found = true
			return false
		}
		return true
	})
	if useMemo && !a.aborted && (a.stop == nil || !a.stop.Load()) {
		var v int64
		if found {
			v = 1
		}
		a.memo.Put(a.memoKey(d), v)
	}
	return found
}

// visit enumerates the projected prefix, emitting one tuple per prefix
// that has at least one extension.
func (a *aggWorker) visit(d int) error {
	w := a.w
	if w.stats.Recursions&255 == 0 {
		if a.stop != nil && a.stop.Load() {
			return core.ErrAborted
		}
		if !a.budget.Spend(256) {
			return core.ErrNodeBudget
		}
	}
	if d == a.cls.EnumEnd {
		if a.exists(d) {
			for i, p := range a.projPos {
				a.projBuf[i] = w.binding[p]
			}
			return w.emit(a.projBuf)
		}
		return nil
	}
	w.stats.Recursions++
	var visitErr error
	a.leapfrog(d, func() bool {
		w.binding[w.plan.OutPos[d]] = a.w.participants[d][0].it.Key()
		if err := a.visit(d + 1); err != nil {
			visitErr = err
			return false
		}
		return true
	})
	return visitErr
}

// leapfrog runs the level-d leapfrog intersection, invoking match at
// every value all participating iterators agree on (each match also
// counts toward IntersectValues, mirroring the plain engine). match
// returns false to stop the loop early. Iterators are opened on entry
// and restored on exit, so callers can resume the parent level.
func (a *aggWorker) leapfrog(d int, match func() bool) {
	w := a.w
	iters := w.participants[d]
	for _, st := range iters {
		st.it.Open()
	}
	defer func() {
		for _, st := range iters {
			st.it.Up()
		}
	}()
	for _, st := range iters {
		if st.it.AtEnd() {
			return
		}
	}
	k := len(iters)
	sort.Slice(iters, func(i, j int) bool { return iters[i].it.Key() < iters[j].it.Key() })
	p := 0
	steps := 0
	for {
		// In a counting tail (match is just total++) this loop is the
		// innermost work of the whole search and can walk an enormous
		// intersection with no recursion underneath to poll; poll here
		// so cancellation unwinds mid-level.
		if steps++; steps&255 == 0 {
			if a.stop != nil && a.stop.Load() {
				a.aborted = true
				return
			}
			if !a.budget.Spend(256) {
				a.aborted, a.budgetHit = true, true
				return
			}
		}
		xmax := iters[(p+k-1)%k].it.Key()
		x := iters[p].it.Key()
		if x == xmax {
			w.stats.IntersectValues++
			if !match() {
				return
			}
			iters[p].it.Next()
			if iters[p].it.AtEnd() {
				return
			}
			p = (p + 1) % k
		} else {
			iters[p].it.Seek(xmax)
			if iters[p].it.AtEnd() {
				return
			}
			p = (p + 1) % k
		}
	}
}

// countChunk, existsChunk and visitChunk run the depth-0 per-value
// loop over one shard of the precomputed top-level intersection,
// mirroring the plain engine's iterateTop.
func (a *aggWorker) countChunk(vals []relation.Value) int64 {
	var total int64
	a.chunkEach(vals, func() bool {
		total += a.count(1)
		if total < 0 { // summation wrapped
			a.overflow = true
			total = 0
		}
		return true
	})
	return total
}

func (a *aggWorker) existsChunk(vals []relation.Value) bool {
	found := false
	a.chunkEach(vals, func() bool {
		if a.stop != nil && a.stop.Load() {
			return false
		}
		if a.exists(1) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (a *aggWorker) visitChunk(vals []relation.Value) error {
	var visitErr error
	a.chunkEach(vals, func() bool {
		if err := a.visit(1); err != nil {
			visitErr = err
			return false
		}
		return true
	})
	return visitErr
}

// chunkEach seeks each top-level value of one chunk on this worker's
// depth-0 iterators and invokes body with the value bound; every v
// comes from the full depth-0 intersection, so each participating
// iterator seeks directly to it. body returns false to stop early.
func (a *aggWorker) chunkEach(vals []relation.Value, body func() bool) {
	w := a.w
	iters := w.participants[0]
	for i, v := range vals {
		// The per-value bodies poll on their own recursion cadence,
		// but a chunk of values whose subtrees are all tiny would
		// otherwise only poll every 256 recursions; poll per 256
		// top-level values too so abort latency is bounded both ways.
		if i&255 == 255 {
			if a.stop != nil && a.stop.Load() {
				a.aborted = true
				return
			}
			if !a.budget.Spend(256) {
				a.aborted, a.budgetHit = true, true
				return
			}
		}
		ok := true
		for _, st := range iters {
			st.it.Open()
			st.it.Seek(v)
			if st.it.AtEnd() || st.it.Key() != v {
				ok = false // cannot happen: v came from the intersection
				break
			}
		}
		cont := true
		if ok {
			w.stats.IntersectValues++
			w.binding[w.plan.OutPos[0]] = v
			cont = body()
		}
		for _, st := range iters {
			if st.it.Depth() == 0 {
				st.it.Up()
			}
		}
		if !cont {
			return
		}
	}
}
