package lftj

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wcoj/internal/core"
	"wcoj/internal/relation"
)

func mkRel(t testing.TB, name string, attrs []string, rows ...[]relation.Value) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder(name, attrs...)
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestLFTJTriangleSmall(t *testing.T) {
	r := mkRel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 1}, []relation.Value{1, 2}, []relation.Value{2, 1})
	s := mkRel(t, "S", []string{"B", "C"},
		[]relation.Value{1, 5}, []relation.Value{2, 5}, []relation.Value{1, 6})
	tt := mkRel(t, "T", []string{"A", "C"},
		[]relation.Value{1, 5}, []relation.Value{2, 6})
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: r},
		{Name: "S", Vars: []string{"B", "C"}, Rel: s},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tt},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Join(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.GenericJoin(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("LFTJ = %v, want %v", got.Tuples(), want.Tuples())
	}
	if stats.Output != got.Len() {
		t.Fatal("stats.Output mismatch")
	}
	n, _, err := Count(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != want.Len() {
		t.Fatalf("Count = %d, want %d", n, want.Len())
	}
}

func TestLFTJEmptyInput(t *testing.T) {
	r := mkRel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	s := relation.Empty("S", "B", "C")
	tt := mkRel(t, "T", []string{"A", "C"}, []relation.Value{1, 3})
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: r},
		{Name: "S", Vars: []string{"B", "C"}, Rel: s},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tt},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Join(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty input must give empty output")
	}
}

func TestLFTJSingleAtom(t *testing.T) {
	r := mkRel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 2}, []relation.Value{3, 4})
	q, err := core.NewQuery([]string{"A", "B"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Join(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("single atom = %d rows", got.Len())
	}
}

func TestLFTJBadOrder(t *testing.T) {
	r := mkRel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	q, err := core.NewQuery([]string{"A", "B"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Join(q, Options{Order: []string{"A"}}); err == nil {
		t.Fatal("short order must fail")
	}
}

// Property: LFTJ agrees with Generic-Join on random 4-variable queries
// under multiple variable orders.
func TestPropertyLFTJMatchesGenericJoin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk2 := func(name, a1, a2 string) *relation.Relation {
			b := relation.NewBuilder(name, a1, a2)
			for i := 0; i < rng.Intn(50); i++ {
				b.Add(relation.Value(rng.Intn(7)), relation.Value(rng.Intn(7)))
			}
			return b.Build()
		}
		q, err := core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
			{Name: "R", Vars: []string{"A", "B"}, Rel: mk2("R", "A", "B")},
			{Name: "S", Vars: []string{"B", "C"}, Rel: mk2("S", "B", "C")},
			{Name: "T", Vars: []string{"C", "D"}, Rel: mk2("T", "C", "D")},
			{Name: "U", Vars: []string{"D", "A"}, Rel: mk2("U", "D", "A")},
		})
		if err != nil {
			return false
		}
		want, _, err := core.GenericJoin(q, core.GenericJoinOptions{})
		if err != nil {
			return false
		}
		for _, ord := range [][]string{
			nil,
			{"A", "B", "C", "D"},
			{"D", "C", "B", "A"},
			{"B", "D", "A", "C"},
		} {
			got, _, err := Join(q, Options{Order: ord})
			if err != nil {
				return false
			}
			// Output column order differs when ord != q.Vars? No: the
			// builder uses q.Vars, so schemas match.
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
