package hypergraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Hypergraph {
	t.Helper()
	h, err := New([]string{"A", "B", "C"}, []Edge{
		{Name: "R", Vertices: []string{"A", "B"}},
		{Name: "S", Vertices: []string{"B", "C"}},
		{Name: "T", Vertices: []string{"A", "C"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewErrors(t *testing.T) {
	if _, err := New([]string{"A", "A"}, nil); err == nil {
		t.Fatal("duplicate vertex should fail")
	}
	if _, err := New([]string{"A"}, []Edge{{Name: "R", Vertices: []string{"B"}}}); err == nil {
		t.Fatal("unknown edge vertex should fail")
	}
}

func TestAccessors(t *testing.T) {
	h := triangle(t)
	if h.NumVertices() != 3 || h.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", h.NumVertices(), h.NumEdges())
	}
	if h.VertexIndex("B") != 1 || h.VertexIndex("Z") != -1 {
		t.Fatal("VertexIndex mismatch")
	}
	if !h.EdgeContains(0, 0) || h.EdgeContains(0, 2) {
		t.Fatal("EdgeContains mismatch")
	}
	if got := h.EdgesOf(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("EdgesOf(A) = %v", got)
	}
	if h.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestFractionalEdgeCoverTriangle(t *testing.T) {
	h := triangle(t)
	cov, rho, err := h.FractionalEdgeCover()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1.5) > 1e-6 {
		t.Fatalf("ρ*(triangle) = %v, want 1.5", rho)
	}
	if !h.IsFractionalEdgeCover(cov, 1e-6) {
		t.Fatalf("optimal cover %v must be feasible", cov)
	}
}

func TestFractionalEdgeCoverLW(t *testing.T) {
	// ρ*(LW(k)) = k/(k-1).
	for k := 3; k <= 6; k++ {
		h := LoomisWhitney(k)
		_, rho, err := h.FractionalEdgeCover()
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k) / float64(k-1)
		if math.Abs(rho-want) > 1e-6 {
			t.Fatalf("ρ*(LW(%d)) = %v, want %v", k, rho, want)
		}
	}
}

func TestFractionalEdgeCoverClique(t *testing.T) {
	// ρ*(K_k) = k/2 (half on a perfect fractional matching of pairs).
	for k := 3; k <= 6; k++ {
		h := Clique(k)
		_, rho, err := h.FractionalEdgeCover()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rho-float64(k)/2) > 1e-6 {
			t.Fatalf("ρ*(K_%d) = %v, want %v", k, rho, float64(k)/2)
		}
	}
}

func TestFractionalEdgeCoverCycle(t *testing.T) {
	// ρ*(C_k) = k/2.
	for k := 3; k <= 7; k++ {
		h := Cycle(k)
		_, rho, err := h.FractionalEdgeCover()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rho-float64(k)/2) > 1e-6 {
			t.Fatalf("ρ*(C_%d) = %v, want %v", k, rho, float64(k)/2)
		}
	}
}

func TestWeightedCover(t *testing.T) {
	h := triangle(t)
	// Make T free: optimum then covers C via T, and A,B via R or cheapest mix.
	cov, obj, err := h.WeightedFractionalEdgeCover([]float64{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsFractionalEdgeCover(cov, 1e-6) {
		t.Fatal("weighted cover infeasible")
	}
	// With w=(1,1,0): covering B needs δ_R+δ_S >= 1 at cost 1; A and C
	// can ride on T. Optimum cost = 1.
	if math.Abs(obj-1) > 1e-6 {
		t.Fatalf("weighted objective = %v, want 1", obj)
	}
	if _, _, err := h.WeightedFractionalEdgeCover([]float64{1}); err == nil {
		t.Fatal("wrong weight length should fail")
	}
}

func TestUncoveredVertex(t *testing.T) {
	h, err := New([]string{"A", "B"}, []Edge{{Name: "R", Vertices: []string{"A"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.FractionalEdgeCover(); err == nil {
		t.Fatal("uncovered vertex must make the LP infeasible")
	}
	if _, _, err := h.IntegralEdgeCover(); err == nil {
		t.Fatal("uncovered vertex must make integral cover fail")
	}
}

func TestIsFractionalEdgeCover(t *testing.T) {
	h := triangle(t)
	if !h.IsFractionalEdgeCover(Cover{0.5, 0.5, 0.5}, 1e-9) {
		t.Fatal("(.5,.5,.5) covers the triangle")
	}
	if h.IsFractionalEdgeCover(Cover{0.5, 0.5, 0.4}, 1e-9) {
		t.Fatal("(.5,.5,.4) does not cover the triangle")
	}
	if h.IsFractionalEdgeCover(Cover{1, 1}, 1e-9) {
		t.Fatal("wrong-length cover must be rejected")
	}
	if h.IsFractionalEdgeCover(Cover{-1, 1, 1}, 1e-9) {
		t.Fatal("negative weights must be rejected")
	}
}

func TestIntegralEdgeCover(t *testing.T) {
	h := triangle(t)
	cover, size, err := h.IntegralEdgeCover()
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 || len(cover) != 2 {
		t.Fatalf("integral cover of triangle = %v (size %d), want size 2", cover, size)
	}
	// LW(3) also needs 2 edges.
	_, size, err = LoomisWhitney(3).IntegralEdgeCover()
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 {
		t.Fatalf("integral cover of LW(3) = %d, want 2", size)
	}
	// Empty hypergraph.
	e, _ := New(nil, nil)
	if _, size, err := e.IntegralEdgeCover(); err != nil || size != 0 {
		t.Fatalf("empty: size=%d err=%v", size, err)
	}
}

func TestGYO(t *testing.T) {
	if triangle(t).IsAcyclicGYO() {
		t.Fatal("triangle is cyclic")
	}
	// A path R(A,B), S(B,C) is acyclic.
	p, err := New([]string{"A", "B", "C"}, []Edge{
		{Name: "R", Vertices: []string{"A", "B"}},
		{Name: "S", Vertices: []string{"B", "C"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsAcyclicGYO() {
		t.Fatal("path must be acyclic")
	}
	// A star R(A,B), S(A,C), T(A,D) is acyclic.
	s, err := New([]string{"A", "B", "C", "D"}, []Edge{
		{Name: "R", Vertices: []string{"A", "B"}},
		{Name: "S", Vertices: []string{"A", "C"}},
		{Name: "T", Vertices: []string{"A", "D"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsAcyclicGYO() {
		t.Fatal("star must be acyclic")
	}
	// 4-cycle is cyclic; 4-cycle with a chord spanning edge is acyclic.
	if Cycle(4).IsAcyclicGYO() {
		t.Fatal("C4 is cyclic")
	}
	chord, err := New([]string{"A0", "A1", "A2", "A3"}, []Edge{
		{Name: "R0", Vertices: []string{"A0", "A1"}},
		{Name: "R1", Vertices: []string{"A1", "A2"}},
		{Name: "R2", Vertices: []string{"A2", "A3"}},
		{Name: "R3", Vertices: []string{"A3", "A0"}},
		{Name: "Big", Vertices: []string{"A0", "A1", "A2", "A3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !chord.IsAcyclicGYO() {
		t.Fatal("C4 + spanning edge must be acyclic")
	}
}

func TestDegreeOrder(t *testing.T) {
	// Star: A has degree 3, others 1.
	s, err := New([]string{"B", "A", "C", "D"}, []Edge{
		{Name: "R", Vertices: []string{"A", "B"}},
		{Name: "S", Vertices: []string{"A", "C"}},
		{Name: "T", Vertices: []string{"A", "D"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ord := s.DegreeOrder()
	if ord[0] != "A" {
		t.Fatalf("DegreeOrder = %v, want A first", ord)
	}
}

// Property: LP optimum is a feasible cover and never exceeds the
// integral cover size; and ρ* >= n / max|F| (each edge covers at most
// max|F| vertices).
func TestPropertyCoverSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		vs := make([]string, n)
		for i := range vs {
			vs[i] = string(rune('A' + i))
		}
		m := 1 + rng.Intn(6)
		edges := make([]Edge, 0, m)
		covered := make([]bool, n)
		maxE := 0
		for e := 0; e < m; e++ {
			var ev []string
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.5 {
					ev = append(ev, vs[v])
					covered[v] = true
				}
			}
			if len(ev) == 0 {
				ev = append(ev, vs[rng.Intn(n)])
				covered[New2Index(vs, ev[0])] = true
			}
			if len(ev) > maxE {
				maxE = len(ev)
			}
			edges = append(edges, Edge{Name: "E", Vertices: ev})
		}
		for v := 0; v < n; v++ {
			if !covered[v] {
				edges = append(edges, Edge{Name: "fix", Vertices: []string{vs[v]}})
				if maxE < 1 {
					maxE = 1
				}
			}
		}
		h, err := New(vs, edges)
		if err != nil {
			return false
		}
		cov, rho, err := h.FractionalEdgeCover()
		if err != nil {
			return false
		}
		if !h.IsFractionalEdgeCover(cov, 1e-6) {
			return false
		}
		_, isize, err := h.IntegralEdgeCover()
		if err != nil {
			return false
		}
		if rho > float64(isize)+1e-6 {
			return false
		}
		return rho >= float64(n)/float64(maxE)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// New2Index is a test helper mapping a vertex name back to its slice index.
func New2Index(vs []string, name string) int {
	for i, v := range vs {
		if v == name {
			return i
		}
	}
	return -1
}
