// Package hypergraph implements query (multi-)hypergraphs and the
// combinatorial machinery around them: the fractional edge cover
// polytope and ρ*, integral edge covers, GYO acyclicity, and simple
// variable-ordering utilities. The fractional edge cover number ρ*(H)
// is the exponent in the AGM bound |Q| ≤ N^{ρ*(H)}.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"wcoj/internal/lp"
)

// Edge is a named hyperedge: the attribute set of one query atom.
// Multi-hypergraphs are supported — two edges may have identical
// vertex sets (and even identical names, though distinct names make
// diagnostics clearer).
type Edge struct {
	Name     string
	Vertices []string
}

// Hypergraph is a multi-hypergraph over named vertices (variables).
type Hypergraph struct {
	vertices []string
	vindex   map[string]int
	edges    []Edge
	// membership[e] is the sorted vertex-index set of edge e.
	membership [][]int
}

// New builds a hypergraph. Every edge vertex must appear in vertices;
// vertices not covered by any edge are allowed (they make ρ* infinite,
// which FractionalEdgeCover reports as Infeasible).
func New(vertices []string, edges []Edge) (*Hypergraph, error) {
	h := &Hypergraph{
		vertices: append([]string(nil), vertices...),
		vindex:   make(map[string]int, len(vertices)),
	}
	for i, v := range h.vertices {
		if _, dup := h.vindex[v]; dup {
			return nil, fmt.Errorf("hypergraph: duplicate vertex %q", v)
		}
		h.vindex[v] = i
	}
	for _, e := range edges {
		var mem []int
		seen := make(map[int]bool)
		for _, v := range e.Vertices {
			i, ok := h.vindex[v]
			if !ok {
				return nil, fmt.Errorf("hypergraph: edge %q uses unknown vertex %q", e.Name, v)
			}
			if !seen[i] {
				seen[i] = true
				mem = append(mem, i)
			}
		}
		sort.Ints(mem)
		h.edges = append(h.edges, Edge{Name: e.Name, Vertices: append([]string(nil), e.Vertices...)})
		h.membership = append(h.membership, mem)
	}
	return h, nil
}

// Vertices returns the vertex names. The slice must not be modified.
func (h *Hypergraph) Vertices() []string { return h.vertices }

// NumVertices returns the number of vertices.
func (h *Hypergraph) NumVertices() int { return len(h.vertices) }

// Edges returns the edges. The slice must not be modified.
func (h *Hypergraph) Edges() []Edge { return h.edges }

// NumEdges returns the number of edges.
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// VertexIndex returns the index of a vertex name, or -1.
func (h *Hypergraph) VertexIndex(v string) int {
	if i, ok := h.vindex[v]; ok {
		return i
	}
	return -1
}

// EdgeContains reports whether edge e contains vertex index v.
func (h *Hypergraph) EdgeContains(e, v int) bool {
	mem := h.membership[e]
	i := sort.SearchInts(mem, v)
	return i < len(mem) && mem[i] == v
}

// EdgesOf returns the indexes of edges containing vertex index v.
func (h *Hypergraph) EdgesOf(v int) []int {
	var out []int
	for e := range h.edges {
		if h.EdgeContains(e, v) {
			out = append(out, e)
		}
	}
	return out
}

func (h *Hypergraph) String() string {
	var b strings.Builder
	for i, e := range h.edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(%s)", e.Name, strings.Join(e.Vertices, ","))
	}
	return b.String()
}

// Cover is a fractional edge cover: one weight per edge, in edge order.
type Cover []float64

// FractionalEdgeCover solves the LP min Σδ_F subject to
// Σ_{F∋v} δ_F ≥ 1 for every vertex v, δ ≥ 0, and returns the optimal
// cover and its value ρ*(H). If some vertex is in no edge the LP is
// infeasible and an error is returned.
func (h *Hypergraph) FractionalEdgeCover() (Cover, float64, error) {
	return h.WeightedFractionalEdgeCover(nil)
}

// WeightedFractionalEdgeCover minimizes Σ δ_F·w_F over fractional edge
// covers. A nil weight vector means all-ones (plain ρ*). This is the
// AGM LP (5)/(57) with w_F = log|R_F|.
func (h *Hypergraph) WeightedFractionalEdgeCover(w []float64) (Cover, float64, error) {
	m := h.NumEdges()
	if w != nil && len(w) != m {
		return nil, 0, fmt.Errorf("hypergraph: %d weights for %d edges", len(w), m)
	}
	p := lp.NewProblem(lp.Minimize, m)
	for j := 0; j < m; j++ {
		if w == nil {
			p.SetObjective(j, 1)
		} else {
			p.SetObjective(j, w[j])
		}
	}
	for v := range h.vertices {
		coef := make([]float64, m)
		any := false
		for e := range h.edges {
			if h.EdgeContains(e, v) {
				coef[e] = 1
				any = true
			}
		}
		if !any {
			return nil, 0, fmt.Errorf("hypergraph: vertex %q is in no edge; edge cover is infeasible", h.vertices[v])
		}
		p.AddConstraint(coef, lp.GE, 1)
	}
	s, err := lp.Solve(p)
	if err != nil {
		return nil, 0, err
	}
	if s.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("hypergraph: edge cover LP is %v", s.Status)
	}
	return Cover(s.X), s.Objective, nil
}

// IsFractionalEdgeCover reports whether delta covers every vertex:
// Σ_{F∋v} δ_F ≥ 1 - tol for all v, δ ≥ -tol.
func (h *Hypergraph) IsFractionalEdgeCover(delta Cover, tol float64) bool {
	if len(delta) != h.NumEdges() {
		return false
	}
	for _, d := range delta {
		if d < -tol {
			return false
		}
	}
	for v := range h.vertices {
		sum := 0.0
		for e := range h.edges {
			if h.EdgeContains(e, v) {
				sum += delta[e]
			}
		}
		if sum < 1-tol {
			return false
		}
	}
	return true
}

// IntegralEdgeCover returns a minimum-size integral edge cover (a set
// of edges covering every vertex) and its size. It runs an exact
// branch-and-bound, feasible for the query sizes in this repository
// (≤ ~25 edges). Returns an error when no cover exists.
func (h *Hypergraph) IntegralEdgeCover() ([]int, int, error) {
	n := h.NumVertices()
	if n == 0 {
		return nil, 0, nil
	}
	if n > 63 {
		return nil, 0, fmt.Errorf("hypergraph: integral cover supports up to 63 vertices, got %d", n)
	}
	full := uint64(1)<<uint(n) - 1
	masks := make([]uint64, h.NumEdges())
	var union uint64
	for e, mem := range h.membership {
		for _, v := range mem {
			masks[e] |= 1 << uint(v)
		}
		union |= masks[e]
	}
	if union != full {
		return nil, 0, fmt.Errorf("hypergraph: some vertex is in no edge")
	}
	best := make([]int, 0)
	bestSize := h.NumEdges() + 1
	var cur []int
	var rec func(covered uint64)
	rec = func(covered uint64) {
		if covered == full {
			if len(cur) < bestSize {
				bestSize = len(cur)
				best = append(best[:0], cur...)
			}
			return
		}
		if len(cur)+1 >= bestSize {
			return
		}
		// Branch on the lowest uncovered vertex: some chosen edge must
		// contain it.
		var v int
		for v = 0; v < n; v++ {
			if covered&(1<<uint(v)) == 0 {
				break
			}
		}
		for e, m := range masks {
			if m&(1<<uint(v)) == 0 {
				continue
			}
			cur = append(cur, e)
			rec(covered | m)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	if bestSize > h.NumEdges() {
		return nil, 0, fmt.Errorf("hypergraph: no integral cover found")
	}
	sort.Ints(best)
	return best, bestSize, nil
}

// IsAcyclicGYO reports whether the hypergraph is α-acyclic, by the GYO
// ear-removal procedure: repeatedly delete vertices that occur in only
// one edge and edges contained in another edge; the hypergraph is
// acyclic iff everything is eventually deleted.
func (h *Hypergraph) IsAcyclicGYO() bool {
	// Work on copies of vertex sets as maps.
	edges := make([]map[int]bool, 0, h.NumEdges())
	for _, mem := range h.membership {
		s := make(map[int]bool, len(mem))
		for _, v := range mem {
			s[v] = true
		}
		edges = append(edges, s)
	}
	alive := make([]bool, len(edges))
	for i := range alive {
		alive[i] = true
	}
	for {
		changed := false
		// Rule 1: remove vertices occurring in exactly one live edge.
		count := make(map[int]int)
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			for v := range e {
				count[v]++
			}
		}
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			for v := range e {
				if count[v] == 1 {
					delete(e, v)
					changed = true
				}
			}
		}
		// Rule 2: remove edges contained in another live edge (or empty).
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			if len(e) == 0 {
				alive[i] = false
				changed = true
				continue
			}
			for j, f := range edges {
				if i == j || !alive[j] {
					continue
				}
				if containsAll(f, e) && (len(f) > len(e) || i > j) {
					alive[i] = false
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range alive {
		if alive[i] {
			return false
		}
	}
	return true
}

func containsAll(super, sub map[int]bool) bool {
	if len(sub) > len(super) {
		return false
	}
	for v := range sub {
		if !super[v] {
			return false
		}
	}
	return true
}

// DegreeOrder returns the vertex names ordered by decreasing number of
// incident edges (a common variable-ordering heuristic for WCOJ
// evaluation: most-constrained first). Ties break by vertex order.
func (h *Hypergraph) DegreeOrder() []string {
	type vd struct {
		v   int
		deg int
	}
	ds := make([]vd, h.NumVertices())
	for v := range h.vertices {
		ds[v] = vd{v, len(h.EdgesOf(v))}
	}
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].deg > ds[j].deg })
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = h.vertices[d.v]
	}
	return out
}

// LoomisWhitney returns the Loomis–Whitney hypergraph LW(k): k vertices
// and k edges, edge i containing all vertices except i. LW(3) is the
// triangle. These are the queries of [51,52] for which any join-project
// plan is suboptimal by Ω(N^{1-1/k}).
func LoomisWhitney(k int) *Hypergraph {
	vs := make([]string, k)
	for i := range vs {
		vs[i] = fmt.Sprintf("A%d", i)
	}
	edges := make([]Edge, k)
	for i := range edges {
		var ev []string
		for j := 0; j < k; j++ {
			if j != i {
				ev = append(ev, vs[j])
			}
		}
		edges[i] = Edge{Name: fmt.Sprintf("R%d", i), Vertices: ev}
	}
	h, err := New(vs, edges)
	if err != nil {
		panic(err) // construction is internally consistent
	}
	return h
}

// Clique returns the k-clique hypergraph: k vertices, an edge per pair.
func Clique(k int) *Hypergraph {
	vs := make([]string, k)
	for i := range vs {
		vs[i] = fmt.Sprintf("A%d", i)
	}
	var edges []Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, Edge{
				Name:     fmt.Sprintf("R%d_%d", i, j),
				Vertices: []string{vs[i], vs[j]},
			})
		}
	}
	h, err := New(vs, edges)
	if err != nil {
		panic(err)
	}
	return h
}

// Cycle returns the k-cycle hypergraph: edges (A_i, A_{i+1 mod k}).
func Cycle(k int) *Hypergraph {
	vs := make([]string, k)
	for i := range vs {
		vs[i] = fmt.Sprintf("A%d", i)
	}
	edges := make([]Edge, k)
	for i := range edges {
		edges[i] = Edge{
			Name:     fmt.Sprintf("R%d", i),
			Vertices: []string{vs[i], vs[(i+1)%k]},
		}
	}
	h, err := New(vs, edges)
	if err != nil {
		panic(err)
	}
	return h
}
