package lp

import "math"

// eps is the numerical tolerance used throughout the simplex.
const eps = 1e-9

// tableau is a dense simplex tableau in canonical form.
//
// Layout: rows 0..m-1 are constraints, columns 0..total-1 are variables
// (structural, then slack/surplus, then artificial), column total is the
// RHS. basis[i] is the variable basic in row i.
type tableau struct {
	m, n     int // constraints, structural variables
	total    int // structural + slack + artificial
	a        [][]float64
	basis    []int
	slackOf  []int // slackOf[i] = column of the slack/surplus var of row i, or -1
	artOf    []int // artOf[i] = column of the artificial var of row i, or -1
	initCol  []int // initCol[i] = column of the initial identity (slack or artificial) of row i
	artStart int   // first artificial column
}

// solveSimplex converts p to canonical form and runs the two-phase
// primal simplex method.
func solveSimplex(p *Problem) (*Solution, error) {
	m := len(p.Constraints)
	n := p.NumVars

	// Normalize rows so every RHS is non-negative.
	rows := make([]Constraint, m)
	flipped := make([]bool, m)
	for i, c := range p.Constraints {
		coef := make([]float64, n)
		copy(coef, c.Coef)
		row := Constraint{Coef: coef, Op: c.Op, RHS: c.RHS}
		if row.RHS < 0 || (row.RHS == 0 && row.Op == GE) {
			// Negative RHS rows are negated to make RHS non-negative.
			// GE rows with zero RHS are also negated into LE rows: they
			// then take a slack basis directly instead of an artificial
			// variable, which keeps phase 1 small (the polymatroid
			// bound LPs consist almost entirely of such rows).
			for j := range row.Coef {
				row.Coef[j] = -row.Coef[j]
			}
			row.RHS = -row.RHS
			switch row.Op {
			case LE:
				row.Op = GE
			case GE:
				row.Op = LE
			}
			flipped[i] = true
		}
		rows[i] = row
	}

	// Count slack and artificial variables.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.Op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &tableau{
		m:        m,
		n:        n,
		total:    n + nSlack + nArt,
		basis:    make([]int, m),
		slackOf:  make([]int, m),
		artOf:    make([]int, m),
		initCol:  make([]int, m),
		artStart: n + nSlack,
	}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, t.total+1)
	}

	slackCol := n
	artCol := t.artStart
	for i, r := range rows {
		copy(t.a[i], r.Coef)
		t.a[i][t.total] = r.RHS
		t.slackOf[i], t.artOf[i] = -1, -1
		switch r.Op {
		case LE:
			t.a[i][slackCol] = 1
			t.slackOf[i] = slackCol
			t.basis[i] = slackCol
			t.initCol[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			t.slackOf[i] = slackCol
			slackCol++
			t.a[i][artCol] = 1
			t.artOf[i] = artCol
			t.basis[i] = artCol
			t.initCol[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.artOf[i] = artCol
			t.basis[i] = artCol
			t.initCol[i] = artCol
			artCol++
		}
	}

	// Phase 1: minimize the sum of artificial variables.
	if nArt > 0 {
		phase1 := make([]float64, t.total)
		for j := t.artStart; j < t.total; j++ {
			phase1[j] = 1
		}
		status, obj := t.run(phase1, t.artStart)
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded
			// here indicates numerical trouble, treat as infeasible.
			return &Solution{Status: Infeasible}, nil
		}
		if obj > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any artificial variables out of the basis.
		for i := 0; i < m; i++ {
			if t.basis[i] < t.artStart {
				continue
			}
			pivoted := false
			for j := 0; j < t.artStart; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is redundant: all structural/slack coefficients
				// are ~0; the artificial stays basic at value 0.
				t.a[i][t.total] = 0
			}
		}
	}

	// Phase 2: optimize the real objective (as minimization).
	minObj := make([]float64, t.total)
	for j := 0; j < n && j < len(p.Objective); j++ {
		if p.Sense == Maximize {
			minObj[j] = -p.Objective[j]
		} else {
			minObj[j] = p.Objective[j]
		}
	}
	status, obj := t.run(minObj, t.artStart)
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	sol := &Solution{Status: Optimal, X: make([]float64, n), Dual: make([]float64, m)}
	for i, b := range t.basis {
		if b < n {
			sol.X[b] = t.a[i][t.total]
		}
	}
	if p.Sense == Maximize {
		sol.Objective = -obj
	} else {
		sol.Objective = obj
	}

	// Duals: y = c_B * B^{-1}. The columns of B^{-1} are the final
	// tableau columns of the initial identity columns. Signs: row i's
	// initial identity column entered with coefficient +1, so
	// y_i = sum_k cB[k] * a[k][initCol[i]]. For rows we flipped during
	// normalization the dual sign flips back.
	cB := make([]float64, m)
	for i, b := range t.basis {
		if b < len(minObj) {
			cB[i] = minObj[b]
		}
	}
	for i := 0; i < m; i++ {
		y := 0.0
		col := t.initCol[i]
		for k := 0; k < m; k++ {
			y += cB[k] * t.a[k][col]
		}
		if flipped[i] {
			y = -y
		}
		if p.Sense == Maximize {
			y = -y
		}
		sol.Dual[i] = y
	}
	return sol, nil
}

// run performs simplex iterations minimizing obj over the current
// tableau. Columns >= forbidden with non-basic status are never chosen
// as entering variables (used to lock out artificials in phase 2).
// It returns the status and the achieved objective value.
//
// Pricing: a reduced-cost row is maintained incrementally and the
// entering column is the most negative entry (Dantzig's rule), which
// keeps iteration counts low on the 2^n-lattice bound LPs. If the
// iteration count grows suspiciously (possible cycling on degenerate
// bases), pricing falls back to Bland's rule, which guarantees
// termination.
func (t *tableau) run(obj []float64, forbidden int) (Status, float64) {
	m := t.m
	// The reduced-cost row z_j = c_j − c_B·a[.][j] is maintained
	// incrementally and recomputed from scratch whenever the tableau
	// looks optimal, so floating-point drift cannot cause premature
	// termination.
	z := make([]float64, t.total)
	refresh := func() {
		for j := 0; j < t.total; j++ {
			if j < len(obj) {
				z[j] = obj[j]
			} else {
				z[j] = 0
			}
		}
		for i := 0; i < m; i++ {
			b := t.basis[i]
			var cb float64
			if b < len(obj) {
				cb = obj[b]
			}
			if cb == 0 {
				continue
			}
			row := t.a[i]
			for j := 0; j < t.total; j++ {
				z[j] -= cb * row[j]
			}
		}
	}
	refresh()

	allowed := func(j int) bool {
		return j < forbidden || j < t.artStart || t.isBasic(j)
	}

	maxIter := 200 * (t.total + m + 10)
	blandAfter := 20 * (t.total + m + 10)
	for iter := 0; iter < maxIter; iter++ {
		pick := func() int {
			if iter < blandAfter {
				// Dantzig: most negative reduced cost.
				best, enter := -eps, -1
				for j := 0; j < t.total; j++ {
					if z[j] < best && allowed(j) {
						best = z[j]
						enter = j
					}
				}
				return enter
			}
			// Bland: lowest index with negative reduced cost.
			for j := 0; j < t.total; j++ {
				if z[j] < -eps && allowed(j) {
					return j
				}
			}
			return -1
		}
		enter := pick()
		if enter < 0 {
			// Looks optimal; recompute reduced costs exactly to rule
			// out incremental drift before declaring optimality.
			refresh()
			enter = pick()
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test; tie-break on lowest basis index (Bland-safe).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				ratio := t.a[i][t.total] / aij
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, 0
		}
		t.pivot(leave, enter)
		// Update the reduced-cost row exactly like a tableau row.
		f := z[enter]
		if f != 0 {
			row := t.a[leave]
			for j := 0; j < t.total; j++ {
				z[j] -= f * row[j]
			}
		}
		z[enter] = 0
	}

	// Objective value = c_B * x_B.
	obj2 := 0.0
	for i := 0; i < m; i++ {
		b := t.basis[i]
		if b < len(obj) {
			obj2 += obj[b] * t.a[i][t.total]
		}
	}
	return Optimal, obj2
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot makes column enter basic in row leave via Gaussian elimination.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	row := t.a[leave]
	inv := 1 / piv
	for j := 0; j <= t.total; j++ {
		row[j] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.total; j++ {
			ri[j] -= f * row[j]
		}
	}
	t.basis[leave] = enter
}
