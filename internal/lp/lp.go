// Package lp implements a small, dependency-free linear programming
// solver used by the output-size bound calculators.
//
// The solver is a dense two-phase primal simplex with Bland's
// anti-cycling rule. It supports minimization and maximization over
// non-negative variables with <=, >= and = constraints, and reports
// dual values for every constraint at optimality. Problem sizes in this
// repository are modest (the largest is the polymatroid-bound LP over
// the 2^n lattice for n up to ~12), for which dense simplex is more
// than adequate.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the optimization direction of a Problem.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Constraint is a single linear constraint sum_j Coef[j]*x_j Op RHS.
// Coef may be shorter than the number of variables; missing entries are
// treated as zero.
type Constraint struct {
	Coef []float64
	Op   Op
	RHS  float64
}

// Problem is a linear program over variables x_0..x_{n-1} >= 0.
type Problem struct {
	Sense       Sense
	NumVars     int
	Objective   []float64 // length NumVars; missing entries are zero
	Constraints []Constraint
}

// Status reports the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64   // objective value in the problem's own sense
	X         []float64 // primal values, length NumVars
	Dual      []float64 // dual value per constraint (sign convention: y for min c'x s.t. Ax>=b is >=0)
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: invalid problem")

// NewProblem returns an empty problem with n variables.
func NewProblem(sense Sense, n int) *Problem {
	return &Problem{Sense: sense, NumVars: n, Objective: make([]float64, n)}
}

// SetObjective sets the objective coefficient of variable j.
func (p *Problem) SetObjective(j int, c float64) {
	p.Objective[j] = c
}

// AddConstraint appends a constraint. The coefficient slice is copied.
func (p *Problem) AddConstraint(coef []float64, op Op, rhs float64) {
	c := make([]float64, len(coef))
	copy(c, coef)
	p.Constraints = append(p.Constraints, Constraint{Coef: c, Op: op, RHS: rhs})
}

// AddSparse appends a constraint given sparse (index, value) pairs.
func (p *Problem) AddSparse(idx []int, val []float64, op Op, rhs float64) {
	coef := make([]float64, p.NumVars)
	for k, j := range idx {
		coef[j] += val[k]
	}
	p.Constraints = append(p.Constraints, Constraint{Coef: coef, Op: op, RHS: rhs})
}

func (p *Problem) validate() error {
	if p.NumVars < 0 {
		return fmt.Errorf("%w: negative variable count", ErrBadProblem)
	}
	if len(p.Objective) > p.NumVars {
		return fmt.Errorf("%w: objective longer than variable count", ErrBadProblem)
	}
	for i, c := range p.Constraints {
		if len(c.Coef) > p.NumVars {
			return fmt.Errorf("%w: constraint %d has %d coefficients for %d variables",
				ErrBadProblem, i, len(c.Coef), p.NumVars)
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d has non-finite RHS", ErrBadProblem, i)
		}
		for _, v := range c.Coef {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: constraint %d has non-finite coefficient", ErrBadProblem, i)
			}
		}
	}
	return nil
}

// Solve solves the problem and returns a Solution. An error is returned
// only for structurally invalid problems; infeasibility and
// unboundedness are reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return solveSimplex(p)
}
