package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestSolveSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), z = 36.
	p := NewProblem(Maximize, 2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 5)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	approx(t, s.Objective, 36, 1e-6, "objective")
	approx(t, s.X[0], 2, 1e-6, "x")
	approx(t, s.X[1], 6, 1e-6, "y")
}

func TestSolveSimpleMin(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (8/5, 6/5), z = 14/5.
	p := NewProblem(Minimize, 2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]float64{1, 2}, GE, 4)
	p.AddConstraint([]float64{3, 1}, GE, 6)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	approx(t, s.Objective, 14.0/5, 1e-6, "objective")
}

func TestSolveEquality(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x <= 6 -> x=6, y=4, z=24.
	p := NewProblem(Minimize, 2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, LE, 6)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	approx(t, s.Objective, 24, 1e-6, "objective")
	approx(t, s.X[0], 6, 1e-6, "x")
	approx(t, s.X[1], 4, 1e-6, "y")
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(Minimize, 1)
	p.SetObjective(0, 1)
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]float64{1, -1}, LE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(Minimize, 1)
	p.SetObjective(0, 1)
	p.AddConstraint([]float64{-1}, LE, -3)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	approx(t, s.Objective, 3, 1e-6, "objective")
}

func TestSolveDegenerate(t *testing.T) {
	// A classically degenerate LP; Bland's rule must terminate.
	p := NewProblem(Maximize, 4)
	p.Objective = []float64{0.75, -150, 0.02, -6}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	approx(t, s.Objective, 0.05, 1e-6, "objective (Beale's example)")
}

func TestDualsSimple(t *testing.T) {
	// max 3x + 5y with the Dantzig example; duals are (0, 1.5, 1).
	p := NewProblem(Maximize, 2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 5)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.Dual[0], 0, 1e-6, "dual 0")
	approx(t, s.Dual[1], 1.5, 1e-6, "dual 1")
	approx(t, s.Dual[2], 1, 1e-6, "dual 2")
	// Strong duality: y'b = objective.
	yb := s.Dual[0]*4 + s.Dual[1]*12 + s.Dual[2]*18
	approx(t, yb, s.Objective, 1e-6, "strong duality")
}

func TestDualsMinGE(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6. Duals satisfy y'b = 14/5.
	p := NewProblem(Minimize, 2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]float64{1, 2}, GE, 4)
	p.AddConstraint([]float64{3, 1}, GE, 6)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	yb := s.Dual[0]*4 + s.Dual[1]*6
	approx(t, yb, s.Objective, 1e-6, "strong duality")
	if s.Dual[0] < -1e-9 || s.Dual[1] < -1e-9 {
		t.Fatalf("duals for min/GE should be non-negative: %v", s.Dual)
	}
}

func TestFractionalEdgeCoverTriangle(t *testing.T) {
	// The triangle AGM LP (5): min a+b+c s.t. a+b>=1, a+c>=1, b+c>=1.
	// Optimum is (1/2,1/2,1/2) with value 3/2.
	p := NewProblem(Minimize, 3)
	for j := 0; j < 3; j++ {
		p.SetObjective(j, 1)
	}
	p.AddConstraint([]float64{1, 1, 0}, GE, 1)
	p.AddConstraint([]float64{1, 0, 1}, GE, 1)
	p.AddConstraint([]float64{0, 1, 1}, GE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.Objective, 1.5, 1e-6, "rho* of triangle")
}

func TestAddSparse(t *testing.T) {
	p := NewProblem(Maximize, 3)
	p.SetObjective(2, 1)
	p.AddSparse([]int{2}, []float64{1}, LE, 7)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.Objective, 7, 1e-6, "sparse constraint")
}

func TestValidateErrors(t *testing.T) {
	p := NewProblem(Minimize, 1)
	p.AddConstraint([]float64{1, 2}, LE, 3) // too many coefficients
	if _, err := Solve(p); err == nil {
		t.Fatal("expected error for oversized constraint")
	}
	q := NewProblem(Minimize, 1)
	q.AddConstraint([]float64{math.NaN()}, LE, 1)
	if _, err := Solve(q); err == nil {
		t.Fatal("expected error for NaN coefficient")
	}
	r := NewProblem(Minimize, 1)
	r.AddConstraint([]float64{1}, LE, math.Inf(1))
	if _, err := Solve(r); err == nil {
		t.Fatal("expected error for infinite RHS")
	}
}

func TestZeroVariables(t *testing.T) {
	p := NewProblem(Minimize, 0)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("empty problem: %+v", s)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Redundant rows force a leftover artificial in the basis.
	p := NewProblem(Maximize, 2)
	p.SetObjective(0, 1)
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{2, 2}, EQ, 4) // redundant copy
	p.AddConstraint([]float64{1, 0}, LE, 1.5)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	approx(t, s.Objective, 1.5, 1e-6, "objective with redundant rows")
}

// TestPropertyDualityRandom checks weak/strong duality on random feasible
// bounded LPs: min c'x, Ax >= b, x >= 0 with c > 0, A >= 0, b >= 0.
func TestPropertyDualityRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := NewProblem(Minimize, n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, 0.1+rng.Float64()*5)
		}
		for i := 0; i < m; i++ {
			coef := make([]float64, n)
			nonzero := false
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					coef[j] = rng.Float64() * 3
					if coef[j] > 0 {
						nonzero = true
					}
				}
			}
			if !nonzero {
				coef[rng.Intn(n)] = 1
			}
			p.AddConstraint(coef, GE, rng.Float64()*10)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Strong duality.
		yb := 0.0
		for i, c := range p.Constraints {
			yb += s.Dual[i] * c.RHS
		}
		if math.Abs(yb-s.Objective) > 1e-5*(1+math.Abs(s.Objective)) {
			return false
		}
		// Dual feasibility: y'A <= c and y >= 0.
		for i := range p.Constraints {
			if s.Dual[i] < -1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			ya := 0.0
			for i, c := range p.Constraints {
				ya += s.Dual[i] * c.Coef[j]
			}
			if ya > p.Objective[j]+1e-5 {
				return false
			}
		}
		// Primal feasibility of reported X.
		for _, c := range p.Constraints {
			ax := 0.0
			for j := 0; j < n; j++ {
				ax += c.Coef[j] * s.X[j]
			}
			if ax < c.RHS-1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Op.String mismatch")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status.String mismatch")
	}
}
