package lint

import (
	"go/ast"
	"go/types"

	"wcoj/internal/lint/analysis"
	"wcoj/internal/lint/dataflow"
)

// FsyncOrder enforces the WAL durability-before-visibility rule
// (DESIGN.md §10): a mutation must be fsynced to the log strictly
// before it becomes visible to readers. In any function that both
// touches WAL state (an Append/Rotate on the log, or a call that
// transitively syncs) and publishes engine state — a Store/Swap on an
// atomic.Pointer, or an assignment to a //wcojlint:guardedby field —
// every publish must be dominated by a sync: on every path that
// reaches the publish, a sync has already run. A publish reachable
// without a preceding sync is exactly the reordering that voids crash
// recovery — the crash window where a reader observed state the log
// never made durable.
//
// Sync events are calls to methods named Sync/Fsync and calls to
// module functions that transitively reach one (computed over all
// loaded units in Prepare, so walAppendBatchLocked — Append then
// Sync inside — counts as a sync at its call sites). Dominance is the
// AST-structural order of internal/lint/dataflow: a sync inside an if
// body, a defer, or a goroutine does not dominate code after it.
//
// A publish that is intentionally not preceded by a sync — e.g. the
// no-op path where the WAL batch was empty — is annotated
// `//wcojlint:nosync <why>` on the publishing line.
var FsyncOrder = &analysis.Analyzer{
	Name:    "fsyncorder",
	Doc:     "WAL sync must dominate state publication (durability before visibility)",
	Run:     runFsyncOrder,
	Prepare: prepareFsyncOrder,
}

// syncFacts is the cross-unit fact set: keys (pkgPath.[Recv.]Name) of
// module functions that transitively call a Sync/Fsync method.
type syncFacts struct {
	syncing map[string]bool
}

// funcKey renders the cross-unit string key of a function object.
// Object pointers do not match across independently type-checked
// units, so facts are keyed by path instead.
func funcKey(fn *types.Func) string {
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n, ok := deref(sig.Recv().Type()).(*types.Named); ok {
			key = n.Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isSyncName reports whether a method name is a direct fsync.
func isSyncName(name string) bool { return name == "Sync" || name == "Fsync" }

func prepareFsyncOrder(units []*analysis.Unit) (any, error) {
	// Direct call edges between module functions, and the base set of
	// functions that call a Sync/Fsync method directly.
	callees := make(map[string][]string)
	syncing := make(map[string]bool)
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var key string
				if obj, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
					key = funcKey(obj)
				}
				if key == "" {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(u.Info, call)
					if fn == nil {
						return true
					}
					if isSyncName(fn.Name()) {
						syncing[key] = true
					} else {
						callees[key] = append(callees[key], funcKey(fn))
					}
					return true
				})
			}
		}
	}
	// Transitive closure: a caller of a syncing function syncs.
	for changed := true; changed; {
		changed = false
		for caller, cs := range callees {
			if syncing[caller] {
				continue
			}
			for _, c := range cs {
				if syncing[c] {
					syncing[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return &syncFacts{syncing: syncing}, nil
}

// isWalTouch reports whether the call appends to or rotates a WAL log:
// a method named Append*/Rotate on a receiver type named Log.
func isWalTouch(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if name != "Rotate" && name != "Append" && name != "AppendBatch" && name != "AppendRegister" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n, ok := deref(sig.Recv().Type()).(*types.Named)
	return ok && n.Obj().Name() == "Log"
}

func runFsyncOrder(pass *analysis.Pass) error {
	facts, _ := pass.Facts.(*syncFacts)
	dirs := parseDirectives(pass)
	guarded := guardedFields(pass, dirs)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFsyncOrder(pass, dirs, facts, guarded, fd)
		}
	}
	return nil
}

// guardedFields collects //wcojlint:guardedby-annotated struct fields,
// the mutex-published state fsyncorder treats as a visibility edge.
func guardedFields(pass *analysis.Pass, dirs directiveIndex) map[*types.Var]bool {
	guarded := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, ok := dirs.at(pass.Fset, field.Pos(), "guardedby"); !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = true
					}
				}
			}
			return true
		})
	}
	return guarded
}

func checkFsyncOrder(pass *analysis.Pass, dirs directiveIndex, facts *syncFacts, guarded map[*types.Var]bool, fd *ast.FuncDecl) {
	type publish struct {
		node ast.Node
		what string
	}
	var syncs []ast.Node
	var walTouch bool
	var publishes []publish

	walkSameFunc(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil {
				if isSyncName(fn.Name()) || (facts != nil && facts.syncing[funcKey(fn)]) {
					syncs = append(syncs, n)
					walTouch = true
					return true
				}
			}
			if isWalTouch(pass.TypesInfo, n) {
				walTouch = true
			}
			// atomic.Pointer publication: x.Store(v) / x.Swap(v).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Store" || sel.Sel.Name == "Swap") {
				if t := exprType(pass, sel.X); t != nil && namedIn(t, "sync/atomic", "Pointer") {
					publishes = append(publishes, publish{node: n, what: "atomic.Pointer." + sel.Sel.Name})
				}
			}
		case *ast.AssignStmt:
			// Mutex-guarded publication: writing a guardedby field (or
			// an element of one, db.versions[name] = nv).
			for _, lhs := range n.Lhs {
				if v := guardedTarget(pass, guarded, lhs); v != nil {
					publishes = append(publishes, publish{node: n, what: "guarded field " + v.Name()})
					break
				}
			}
		}
		return true
	})

	if !walTouch || len(publishes) == 0 {
		// Not a durability boundary: no WAL state in play, or nothing
		// published. A function that appends and publishes with zero
		// syncs is the worst case and falls through — no sync can
		// dominate, so every publish is flagged.
		return
	}

	order := dataflow.NewOrder(fd.Body)
	for _, p := range publishes {
		if d, ok := dirs.at(pass.Fset, p.node.Pos(), "nosync"); ok && d.arg != "" {
			continue
		}
		dominated := false
		for _, s := range syncs {
			if order.Dominates(s, p.node) {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(p.node.Pos(), "publish via %s is reachable without a preceding WAL sync in %s: durability must precede visibility; sync before publishing, or annotate //wcojlint:nosync <why>", p.what, fd.Name.Name)
		}
	}
}

// guardedTarget resolves an assignment target to the guarded field it
// writes, unwrapping index/star layers (db.versions[name] = nv writes
// field versions).
func guardedTarget(pass *analysis.Pass, guarded map[*types.Var]bool, lhs ast.Expr) *types.Var {
	for {
		switch l := lhs.(type) {
		case *ast.ParenExpr:
			lhs = l.X
		case *ast.IndexExpr:
			lhs = l.X
		case *ast.StarExpr:
			lhs = l.X
		case *ast.SelectorExpr:
			if v := fieldObject(pass, l); v != nil && guarded[v] {
				return v
			}
			lhs = l.X
		default:
			return nil
		}
	}
}
