package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"wcoj/internal/lint/analysis"
)

// CtxPoll enforces prompt cancellation: in the engine's execution
// packages, any loop whose body can recurse into trie iteration —
// conservatively, any loop that (transitively, through statically
// resolvable same-package calls) reaches a recursion cycle or invokes
// a function-typed value such as an emit callback — must poll a stop
// flag or context in that same body, directly or via a callee that
// polls.
//
// Recognized polls: <atomic.Bool>.Load(), ctx.Err(), <-ctx.Done()
// (including inside select), and core.CtxErr. A loop proved bounded by
// hand can be exempted with `//wcojlint:nopoll <reason>`; the reason
// is mandatory.
var CtxPoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "potentially unbounded execution loops must poll the stop flag or ctx",
	Run:  runCtxPoll,
}

// ctxPollPackages limits the analyzer to the hot execution packages;
// fixture packages match their own name.
var ctxPollPackages = []string{
	"internal/core",
	"internal/lftj",
	"internal/agg",
	"ctxpoll",
}

func runCtxPoll(pass *analysis.Pass) error {
	inScope := false
	for _, suffix := range ctxPollPackages {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	dirs := parseDirectives(pass)
	g := buildCallGraph(pass)
	g.computePolls()
	g.computeDanger()

	for _, fn := range g.funcs {
		checkLoops(pass, dirs, g, fn)
	}
	return nil
}

// fnode is one analyzable function body: a declared function/method or
// a function literal.
type fnode struct {
	name string
	body *ast.BlockStmt

	directPoll   bool     // body polls stop/ctx outside nested literals
	callsUnknown bool     // calls a function-typed value (callback)
	callees      []*fnode // statically resolved same-package callees

	pollReach bool // this function polls, itself or via a callee
	dangerous bool // reaches a recursion cycle or an unknown call
	onStack   bool // DFS bookkeeping for cycle detection
	visited   bool
}

type callGraph struct {
	pass    *analysis.Pass
	funcs   []*fnode
	byObj   map[types.Object]*fnode // top-level funcs and methods
	byLit   map[*ast.FuncLit]*fnode
	funcVar map[types.Object]*fnode // local var assigned exactly one literal
}

// buildCallGraph indexes every function body in the package and
// resolves direct calls: top-level functions, same-package methods,
// and local variables bound to exactly one function literal (the
// `rec := func(...)` recursion idiom).
func buildCallGraph(pass *analysis.Pass) *callGraph {
	g := &callGraph{
		pass:    pass,
		byObj:   make(map[types.Object]*fnode),
		byLit:   make(map[*ast.FuncLit]*fnode),
		funcVar: make(map[types.Object]*fnode),
	}
	varAssigns := make(map[types.Object]int)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				fn := &fnode{name: n.Name.Name, body: n.Body}
				g.funcs = append(g.funcs, fn)
				if obj := pass.TypesInfo.Defs[n.Name]; obj != nil {
					g.byObj[obj] = fn
				}
			case *ast.FuncLit:
				if _, ok := g.byLit[n]; !ok { // may be pre-registered by recordFuncVar
					fn := &fnode{name: "func literal", body: n.Body}
					g.funcs = append(g.funcs, fn)
					g.byLit[n] = fn
				}
			case *ast.AssignStmt:
				countFuncVarAssign(pass, g, n, varAssigns)
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if lit, ok := n.Values[i].(*ast.FuncLit); ok {
							recordFuncVar(pass, g, pass.TypesInfo.Defs[name], lit, varAssigns)
						} else {
							varAssigns[pass.TypesInfo.Defs[name]] += 2 // opaque binding
						}
					}
				}
			}
			return true
		})
	}
	// Discard ambiguous bindings: a var assigned more than once (or
	// from a non-literal) cannot be resolved statically.
	for obj, count := range varAssigns {
		if count > 1 {
			delete(g.funcVar, obj)
		}
	}
	for _, fn := range g.funcs {
		scanBody(pass, g, fn)
	}
	return g
}

func countFuncVarAssign(pass *analysis.Pass, g *callGraph, as *ast.AssignStmt, varAssigns map[types.Object]int) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		if i < len(as.Rhs) {
			if lit, ok := as.Rhs[i].(*ast.FuncLit); ok {
				recordFuncVar(pass, g, obj, lit, varAssigns)
				continue
			}
		}
		varAssigns[obj] += 2 // assigned something other than one literal
	}
}

func recordFuncVar(pass *analysis.Pass, g *callGraph, obj types.Object, lit *ast.FuncLit, varAssigns map[types.Object]int) {
	if obj == nil {
		return
	}
	varAssigns[obj]++
	if fn, ok := g.byLit[lit]; ok {
		g.funcVar[obj] = fn
	} else {
		// Literal not yet indexed (assignment encountered first in
		// the walk); index it now, Inspect will find it again as a
		// child and reuse this node.
		fn := &fnode{name: obj.Name(), body: lit.Body}
		g.funcs = append(g.funcs, fn)
		g.byLit[lit] = fn
		g.funcVar[obj] = fn
	}
	if fn := g.funcVar[obj]; fn != nil && fn.name == "func literal" {
		fn.name = obj.Name()
	}
}

// scanBody records direct polls and classifies every call in fn's own
// body (not nested literals).
func scanBody(pass *analysis.Pass, g *callGraph, fn *fnode) {
	walkSameFunc(fn.body, func(n ast.Node) bool {
		if n == fn.body {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPollCall(pass, n) {
				fn.directPoll = true
				return true
			}
			callee, unknown := g.resolveCall(n)
			if callee != nil {
				fn.callees = append(fn.callees, callee)
			} else if unknown {
				fn.callsUnknown = true
			}
		case *ast.UnaryExpr:
			if isDonePoll(pass, n) {
				fn.directPoll = true
			}
		}
		return true
	})
}

// isPollCall reports whether call is a recognized cancellation poll.
func isPollCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		recv := exprType(pass, fun.X)
		if recv == nil {
			return false
		}
		if fun.Sel.Name == "Load" && namedIn(recv, "sync/atomic", "Bool") {
			return true
		}
		if fun.Sel.Name == "Err" && isContext(recv) {
			return true
		}
		// Qualified helpers: core.CtxErr(ctx) wraps ctx.Err.
		if fun.Sel.Name == "CtxErr" || fun.Sel.Name == "CtxAbortErr" {
			return true
		}
	case *ast.Ident:
		if fun.Name == "CtxErr" || fun.Name == "CtxAbortErr" {
			return true
		}
	}
	return false
}

// isDonePoll matches `<-ctx.Done()` receives.
func isDonePoll(pass *analysis.Pass, u *ast.UnaryExpr) bool {
	if u.Op.String() != "<-" {
		return false
	}
	call, ok := u.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := exprType(pass, sel.X)
	return t != nil && isContext(t)
}

// resolveCall maps a call expression to its callee node when it can be
// resolved statically within the package. unknown reports a call
// through a function-typed value (parameter, struct field, map entry),
// whose behavior — and termination — the analyzer cannot see.
func (g *callGraph) resolveCall(call *ast.CallExpr) (callee *fnode, unknown bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := g.pass.TypesInfo.Uses[fun]
		if obj == nil {
			return nil, false
		}
		switch obj := obj.(type) {
		case *types.Func:
			if fn, ok := g.byObj[obj]; ok {
				return fn, false
			}
			return nil, false // other-package function: bounded from our side
		case *types.Var:
			if fn, ok := g.funcVar[obj]; ok {
				return fn, false
			}
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return nil, true // unresolvable function value
			}
		}
		return nil, false
	case *ast.SelectorExpr:
		if sel, ok := g.pass.TypesInfo.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				if m, ok := sel.Obj().(*types.Func); ok {
					if fn, ok := g.byObj[m]; ok {
						return fn, false
					}
				}
				return nil, false // interface or external method
			case types.FieldVal:
				if _, isSig := sel.Obj().Type().Underlying().(*types.Signature); isSig {
					return nil, true // emit-style callback field
				}
			}
			return nil, false
		}
		// Qualified identifier pkg.F.
		if obj, ok := g.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fn, ok := g.byObj[obj]; ok {
				return fn, false
			}
		}
		return nil, false
	case *ast.FuncLit:
		if fn, ok := g.byLit[fun]; ok {
			return fn, false // immediately-invoked literal
		}
		return nil, false
	default:
		// Call of a call result, index expression, etc.
		if t := exprType(g.pass, call.Fun); t != nil {
			if _, isSig := t.Underlying().(*types.Signature); isSig {
				return nil, true
			}
		}
		return nil, false
	}
}

// computePolls propagates pollReach: a function polls if its own body
// polls or any resolved callee polls.
func (g *callGraph) computePolls() {
	for _, fn := range g.funcs {
		fn.pollReach = fn.directPoll
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.funcs {
			if fn.pollReach {
				continue
			}
			for _, c := range fn.callees {
				if c.pollReach {
					fn.pollReach = true
					changed = true
					break
				}
			}
		}
	}
}

// computeDanger marks functions that participate in or reach a
// recursion cycle, or that call an unresolvable function value: from a
// loop's point of view, calling such a function may run for an
// unbounded number of steps.
func (g *callGraph) computeDanger() {
	// Cycle detection: DFS; a back edge to a node on the stack marks
	// every node currently on the stack from that point as cyclic.
	var stack []*fnode
	onIndex := make(map[*fnode]int)
	var dfs func(fn *fnode)
	dfs = func(fn *fnode) {
		if fn.visited {
			return
		}
		if fn.onStack {
			return
		}
		fn.onStack = true
		onIndex[fn] = len(stack)
		stack = append(stack, fn)
		for _, c := range fn.callees {
			if c.onStack {
				for _, s := range stack[onIndex[c]:] {
					s.dangerous = true // member of a recursion cycle
				}
				continue
			}
			dfs(c)
		}
		stack = stack[:len(stack)-1]
		delete(onIndex, fn)
		fn.onStack = false
		fn.visited = true
	}
	for _, fn := range g.funcs {
		dfs(fn)
	}
	// Propagate: dangerous if own body calls an unknown value, or any
	// resolved callee is dangerous.
	for _, fn := range g.funcs {
		if fn.callsUnknown {
			fn.dangerous = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.funcs {
			if fn.dangerous {
				continue
			}
			for _, c := range fn.callees {
				if c.dangerous {
					fn.dangerous = true
					changed = true
					break
				}
			}
		}
	}
}

// checkLoops inspects every for/range loop in fn's own body.
func checkLoops(pass *analysis.Pass, dirs directiveIndex, g *callGraph, fn *fnode) {
	walkSameFunc(fn.body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		if d, exempt := dirs.at(pass.Fset, n.Pos(), "nopoll"); exempt {
			if d.arg == "" {
				pass.Reportf(n.Pos(), "nopoll directive requires a reason")
			}
			return true
		}
		dangerous, satisfied := classifyLoopBody(pass, g, body)
		if dangerous && !satisfied {
			pass.Reportf(n.Pos(), "loop in %s can run unbounded work (recursion or callback in body) but never polls a stop flag or ctx; add a poll or annotate //wcojlint:nopoll <reason>", fn.name)
		}
		return true
	})
}

// classifyLoopBody scans one loop body (including nested loops, not
// nested literals): dangerous if it calls an unknown function value or
// a callee that is dangerous; satisfied if it polls directly or calls
// a callee that polls.
func classifyLoopBody(pass *analysis.Pass, g *callGraph, body *ast.BlockStmt) (dangerous, satisfied bool) {
	walkSameFunc(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPollCall(pass, n) {
				satisfied = true
				return true
			}
			callee, unknown := g.resolveCall(n)
			if unknown {
				dangerous = true
			}
			if callee != nil {
				if callee.dangerous {
					dangerous = true
				}
				if callee.pollReach {
					satisfied = true
				}
			}
		case *ast.UnaryExpr:
			if isDonePoll(pass, n) {
				satisfied = true
			}
		}
		return true
	})
	return dangerous, satisfied
}
