package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"wcoj/internal/lint/analysis"
)

// Deprecated flags internal call sites of symbols documented with a
// `// Deprecated:` paragraph (the convention godoc and staticcheck
// recognize) — today CountFast and ExplainCount, kept only for
// external API compatibility. Export data carries no doc comments, so
// the symbol table is computed over all loaded units in Prepare and
// shared by key; uses inside the declaration of a deprecated symbol
// are exempt (a deprecated wrapper may delegate to another), and test
// files never reach the analyzer (the loader skips them), so tests may
// keep exercising the compatibility surface.
var Deprecated = &analysis.Analyzer{
	Name:    "deprecated",
	Doc:     "internal code must not call symbols documented as Deprecated",
	Run:     runDeprecated,
	Prepare: prepareDeprecated,
}

// deprecatedFacts maps symbol key (pkgPath.[Recv.]Name) to the first
// line of its deprecation note.
type deprecatedFacts struct {
	notes map[string]string
}

// deprecationNote extracts the note from a doc comment, or "".
func deprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, " ")
		if strings.HasPrefix(text, "Deprecated:") {
			return strings.TrimSpace(strings.TrimPrefix(text, "Deprecated:"))
		}
	}
	return ""
}

// objectKey renders the cross-unit key of any deprecatable object.
func objectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return funcKey(fn)
	}
	key := obj.Name()
	if obj.Pkg() != nil {
		key = obj.Pkg().Path() + "." + key
	}
	return key
}

func prepareDeprecated(units []*analysis.Unit) (any, error) {
	notes := make(map[string]string)
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				switch decl := decl.(type) {
				case *ast.FuncDecl:
					if note := deprecationNote(decl.Doc); note != "" {
						if obj := u.Info.Defs[decl.Name]; obj != nil {
							notes[objectKey(obj)] = note
						}
					}
				case *ast.GenDecl:
					declNote := deprecationNote(decl.Doc)
					for _, spec := range decl.Specs {
						switch spec := spec.(type) {
						case *ast.TypeSpec:
							note := deprecationNote(spec.Doc)
							if note == "" {
								note = declNote
							}
							if note == "" {
								continue
							}
							if obj := u.Info.Defs[spec.Name]; obj != nil {
								notes[objectKey(obj)] = note
							}
						case *ast.ValueSpec:
							note := deprecationNote(spec.Doc)
							if note == "" {
								note = declNote
							}
							if note == "" {
								continue
							}
							for _, name := range spec.Names {
								if obj := u.Info.Defs[name]; obj != nil {
									notes[objectKey(obj)] = note
								}
							}
						}
					}
				}
			}
		}
	}
	return &deprecatedFacts{notes: notes}, nil
}

// DeprecatedSymbols returns the bare names of every symbol the
// deprecated analyzer would flag in units, sorted and deduplicated.
// This is the list the docs-freshness CI check greps the prose for:
// documentation teaching a symbol the analyzer bans internally is
// stale by definition (wcojlint -deprecated exposes it).
func DeprecatedSymbols(units []*analysis.Unit) ([]string, error) {
	facts, err := prepareDeprecated(units)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for key := range facts.(*deprecatedFacts).notes {
		seen[key[strings.LastIndex(key, ".")+1:]] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func runDeprecated(pass *analysis.Pass) error {
	facts, _ := pass.Facts.(*deprecatedFacts)
	if facts == nil || len(facts.notes) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			// Uses inside the declaration of a deprecated symbol are
			// exempt: the compatibility shims delegate to each other.
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					if _, dep := facts.notes[objectKey(obj)]; dep {
						continue
					}
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				if note, dep := facts.notes[objectKey(obj)]; dep {
					pass.Reportf(id.Pos(), "%s is deprecated: %s", id.Name, note)
				}
				return true
			})
		}
	}
	return nil
}
