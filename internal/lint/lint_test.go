package lint_test

import (
	"path/filepath"
	"testing"

	"wcoj/internal/lint"
	"wcoj/internal/lint/analysis"
	"wcoj/internal/lint/analysistest"
)

// TestAnalyzers runs every analyzer in the suite against its fixture
// package. Each fixture mixes positive (want) and negative (clean)
// cases, so this both proves the analyzer fires on violations and
// that it stays quiet on the sanctioned patterns.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name string
		a    *analysis.Analyzer
	}{
		{"snapshotonce", lint.SnapshotOnce},
		{"ctxpoll", lint.CtxPoll},
		{"statsmerge", lint.StatsMerge},
		{"valueident", lint.ValueIdent},
		{"arenaescape", lint.ArenaEscape},
		{"fsyncorder", lint.FsyncOrder},
		{"publishimmutable", lint.PublishImmutable},
		{"deprecated", lint.Deprecated},
		{"nilness", lint.Nilness},
		{"unusedwrite", lint.UnusedWrite},
		{"copylocks", lint.CopyLocks},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := filepath.Join("testdata", "src", tc.name)
			analysistest.Run(t, dir, tc.name, tc.a)
		})
	}
}

// TestSuite pins the suite composition: the shape-based project
// analyzers first, then the dataflow-powered ones, then the general
// correctness passes. CI runs Suite(), so an analyzer dropped from it
// would silently stop gating.
func TestSuite(t *testing.T) {
	want := []string{
		"snapshotonce", "ctxpoll", "statsmerge", "valueident",
		"arenaescape", "fsyncorder", "publishimmutable", "deprecated",
		"nilness", "unusedwrite", "copylocks",
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}
