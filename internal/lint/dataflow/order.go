package dataflow

// Statement-order happens-before within one function body. The
// fsyncorder and publishimmutable analyzers need one question
// answered: "on every execution that reaches node b, has node a
// already executed?" — sync-dominates-publish, publish-precedes-write.
// A full CFG would be overkill for a lint pass; the AST already
// encodes the needed order for structured Go: statements in a block
// run in sequence, a statement's Init/Cond limbs run before its
// conditional limbs, and anything inside a conditional limb, a nested
// function literal, `go`, or `defer` gives no ordering promise to
// code after it. Functions containing goto/labeled statements opt out
// of all ordering claims (the jump can bypass anything).

import (
	"go/ast"
	"go/token"
)

// Order answers happens-before queries for nodes of one function body.
type Order struct {
	parent  map[ast.Node]ast.Node
	root    *ast.BlockStmt
	hasGoto bool
}

// NewOrder prepares the ordering relation of body.
func NewOrder(body *ast.BlockStmt) *Order {
	o := &Order{parent: make(map[ast.Node]ast.Node), root: body}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			o.parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		switch n.(type) {
		case *ast.LabeledStmt, *ast.BranchStmt:
			// goto (and labeled break/continue targets) can bypass any
			// statement; plain break/continue only exit conditional
			// constructs, which already yield no ordering. Be
			// conservative for the labeled forms.
			if ls, ok := n.(*ast.LabeledStmt); ok && ls.Label != nil {
				o.hasGoto = true
			}
			if bs, ok := n.(*ast.BranchStmt); ok && (bs.Tok == token.GOTO || bs.Label != nil) {
				o.hasGoto = true
			}
		}
		return true
	})
	return o
}

// chain returns the ancestor path [n, parent(n), ..., root], or nil
// when n is not under the body.
func (o *Order) chain(n ast.Node) []ast.Node {
	var out []ast.Node
	for cur := n; cur != nil; {
		out = append(out, cur)
		if cur == ast.Node(o.root) {
			return out
		}
		cur = o.parent[cur]
	}
	return nil
}

// Dominates reports whether a must have executed before b on every
// execution path that reaches b. False is always a safe answer; true
// is only returned when the AST structure guarantees the order:
// a's enclosing statement precedes b's in a common block (or an
// earlier unconditional limb of the same statement) and a executes
// unconditionally whenever that statement does.
func (o *Order) Dominates(a, b ast.Node) bool {
	if o.hasGoto || a == b {
		return false
	}
	ca, cb := o.chain(a), o.chain(b)
	if ca == nil || cb == nil {
		return false
	}
	// Deepest common ancestor: chains end at root; walk from the root
	// end until they diverge.
	ia, ib := len(ca)-1, len(cb)-1
	for ia > 0 && ib > 0 && ca[ia-1] == cb[ib-1] {
		ia--
		ib--
	}
	lca := ca[ia]
	if lca == a || lca == b {
		return false // one contains the other: no complete-before order
	}
	// ca[ia-1] and cb[ib-1] are the diverging children of the LCA...
	// except when lca == a's chain element itself; guarded above.
	la, lb := ca[ia-1], cb[ib-1]
	if list := stmtList(lca); list != nil {
		pa, pb := indexIn(list, la), indexIn(list, lb)
		if pa < 0 || pb < 0 || pa >= pb {
			return false
		}
	} else if !limbBefore(lca, la, lb) {
		return false
	}
	// a must run unconditionally whenever its top-level limb starts.
	return unconditionalPath(ca[:ia])
}

// stmtList returns the statement list a node directly sequences, or
// nil when it is not a sequencing construct.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func indexIn(list []ast.Stmt, n ast.Node) int {
	for i, s := range list {
		if ast.Node(s) == n {
			return i
		}
	}
	return -1
}

// limbBefore reports whether, within statement parent, limb la always
// finishes executing before limb lb starts. Only the unconditional
// early limbs (Init, Cond, a range's operand, a switch tag) order
// ahead of the conditional late limbs (bodies).
func limbBefore(parent, la, lb ast.Node) bool {
	rank := func(limb ast.Node) int {
		switch p := parent.(type) {
		case *ast.IfStmt:
			switch limb {
			case ast.Node(p.Init):
				return 0
			case ast.Node(p.Cond):
				return 1
			case ast.Node(p.Body), ast.Node(p.Else):
				return 2
			}
		case *ast.ForStmt:
			switch limb {
			case ast.Node(p.Init):
				return 0
			case ast.Node(p.Cond):
				return 1
			case ast.Node(p.Body):
				return 2
				// Post runs after the body; it gives no ordering for
				// code after the loop (the body may run zero times).
			}
		case *ast.RangeStmt:
			switch limb {
			case ast.Node(p.X):
				return 0
			case ast.Node(p.Body):
				return 2
			}
		case *ast.SwitchStmt:
			switch limb {
			case ast.Node(p.Init):
				return 0
			case ast.Node(p.Tag):
				return 1
			case ast.Node(p.Body):
				return 2
			}
		case *ast.TypeSwitchStmt:
			switch limb {
			case ast.Node(p.Init):
				return 0
			case ast.Node(p.Assign):
				return 1
			case ast.Node(p.Body):
				return 2
			}
		case *ast.BinaryExpr:
			if p.Op == token.LAND || p.Op == token.LOR {
				switch limb {
				case ast.Node(p.X):
					return 0
				case ast.Node(p.Y):
					return 2
				}
			}
		}
		return -1
	}
	ra, rb := rank(la), rank(lb)
	// Only a strictly earlier limb that itself always runs (rank 0 or
	// 1: Init/Cond class) orders ahead; body-vs-else are alternatives.
	return ra >= 0 && rb >= 0 && ra < rb && ra < 2
}

// unconditionalPath reports whether every parent→child edge along the
// chain (ordered [node ... limb]) is executed unconditionally when
// the limb starts: no conditional bodies, nested function literals,
// go/defer statements, or short-circuit right operands on the way
// down.
func unconditionalPath(chain []ast.Node) bool {
	for i := len(chain) - 1; i > 0; i-- {
		parent, child := chain[i], chain[i-1]
		switch p := parent.(type) {
		case *ast.IfStmt:
			if child == ast.Node(p.Body) || child == ast.Node(p.Else) {
				return false
			}
		case *ast.ForStmt:
			if child == ast.Node(p.Body) || child == ast.Node(p.Post) {
				return false
			}
			if child == ast.Node(p.Cond) {
				// Cond runs at least once... only if Init terminates,
				// which it does structurally. Cond is unconditional.
				continue
			}
		case *ast.RangeStmt:
			if child == ast.Node(p.Body) || child == ast.Node(p.Key) || child == ast.Node(p.Value) {
				return false
			}
		case *ast.SwitchStmt:
			if child == ast.Node(p.Body) {
				return false
			}
		case *ast.TypeSwitchStmt:
			if child == ast.Node(p.Body) {
				return false
			}
		case *ast.SelectStmt:
			return false
		case *ast.CaseClause, *ast.CommClause:
			return false
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.BinaryExpr:
			if (p.Op == token.LAND || p.Op == token.LOR) && child == ast.Node(p.Y) {
				return false
			}
		}
	}
	return true
}
