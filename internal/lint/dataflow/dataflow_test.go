package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// load type-checks one snippet (package df) and returns its file and
// info. Snippets are import-free so the test stays hermetic.
func load(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "df.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("df", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// fn returns the named function declaration.
func fn(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

const trackSrc = `package df

type Loan struct{ Keys []int64 }
type Arena struct{}

func (a *Arena) Get() Loan { return Loan{} }

type holder struct{ kept []int64 }

var global []int64

func localOnly(a *Arena) int64 {
	l := a.Get()
	k := l.Keys
	return k[0]
}

func launder(a *Arena, h *holder) {
	k := a.Get().Keys
	u := k
	v := u
	h.kept = v
}

func ret(a *Arena) []int64 {
	return a.Get().Keys
}

func send(a *Arena, ch chan []int64) {
	ch <- a.Get().Keys
}

func capture(a *Arena) func() int64 {
	k := a.Get().Keys
	return func() int64 { return k[0] }
}

func storeGlobal(a *Arena) {
	global = a.Get().Keys
}

func spreadCopy(a *Arena) []int64 {
	var dst []int64
	dst = append(dst, a.Get().Keys...)
	return dst
}

func appendAlias(a *Arena) [][]int64 {
	var dst [][]int64
	dst = append(dst, a.Get().Keys)
	return dst
}

func rangeProp(a *Arena, h *holder) {
	ls := []Loan{a.Get()}
	for _, l := range ls {
		h.kept = l.Keys
	}
}

func localStruct(a *Arena) int64 {
	var s struct{ k []int64 }
	s.k = a.Get().Keys
	return s.k[0]
}

func reslice(a *Arena, h *holder) {
	k := a.Get().Keys
	h.kept = k[1:3]
}

func loopTaint(a *Arena, h *holder) {
	var u, k []int64
	for i := 0; i < 2; i++ {
		h.kept = u
		u = k
		k = a.Get().Keys
	}
}

func multiValue(a *Arena, h *holder) {
	k, n := a.Get().Keys, 1
	_ = n
	u, err := twoVals()
	_ = err
	h.kept = k
	h.kept = u
}

func twoVals() ([]int64, error) { return nil, nil }

func ptrLocal(a *Arena) {
	h := &holder{}
	h.kept = a.Get().Keys
}

func mapLocal(a *Arena) {
	m := map[int][]int64{}
	m[0] = a.Get().Keys
}

func varSpec(a *Arena, h *holder) {
	var k = a.Get().Keys
	h.kept = k
}

func blankAssign(a *Arena) {
	_ = a.Get().Keys
}
`

// seedGet marks calls returning the Loan type and .Keys reads on it.
func seedGet(info *types.Info) func(ast.Expr) bool {
	return func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[e]; ok {
				if n, ok := tv.Type.(*types.Named); ok && n.Obj().Name() == "Loan" {
					return true
				}
			}
		case *ast.SelectorExpr:
			if e.Sel.Name != "Keys" {
				return false
			}
			if tv, ok := info.Types[e.X]; ok {
				if n, ok := tv.Type.(*types.Named); ok && n.Obj().Name() == "Loan" {
					return true
				}
			}
		}
		return false
	}
}

func kinds(res *Result) []Escape {
	var out []Escape
	for _, s := range res.Sites {
		out = append(out, s.Kind)
	}
	return out
}

func TestTrackEscapes(t *testing.T) {
	_, f, info := load(t, trackSrc)
	cases := []struct {
		fn   string
		want []Escape
	}{
		{"localOnly", nil},
		{"launder", []Escape{EscapeStored}},
		{"ret", []Escape{EscapeReturned}},
		{"send", []Escape{EscapeSent}},
		{"capture", []Escape{EscapeCaptured}},
		{"storeGlobal", []Escape{EscapeStored}},
		{"spreadCopy", nil},
		{"appendAlias", []Escape{EscapeReturned}},
		{"rangeProp", []Escape{EscapeStored}},
		{"localStruct", nil},
		{"reslice", []Escape{EscapeStored}},
		{"loopTaint", []Escape{EscapeStored}},
		// Pairwise multi-assign tracks k; the two-valued call result is
		// fresh, so only one of the two field stores escapes.
		{"multiValue", []Escape{EscapeStored}},
		// A field write through a local pointer reaches shared storage.
		{"ptrLocal", []Escape{EscapeStored}},
		// A local map is function-owned storage.
		{"mapLocal", nil},
		{"varSpec", []Escape{EscapeStored}},
		{"blankAssign", nil},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			res := Track(info, fn(t, f, tc.fn), seedGet(info))
			got := kinds(res)
			if len(got) != len(tc.want) {
				t.Fatalf("%s: escapes %v, want %v", tc.fn, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("%s: escape[%d] = %v, want %v", tc.fn, i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestEscapeLattice(t *testing.T) {
	if EscapeNone.Join(EscapeStored) != EscapeStored || EscapeStored.Join(EscapeCaptured) != EscapeStored {
		t.Error("Join must pick the more severe point")
	}
	for e := EscapeNone; e <= EscapeStored; e++ {
		if e.String() == "" || e.String() == "unknown escape" {
			t.Errorf("escape %d has no name", e)
		}
	}
	if Escape(250).String() != "unknown escape" {
		t.Error("out-of-range escape must not panic")
	}
}

func TestChains(t *testing.T) {
	_, f, info := load(t, trackSrc)
	du := Chains(info, fn(t, f, "launder"))
	var kDefs, kUses int
	for obj, defs := range du.Defs {
		if obj.Name() == "k" {
			kDefs = len(defs)
		}
	}
	for obj, uses := range du.Uses {
		if obj.Name() == "k" {
			kUses = len(uses)
		}
	}
	if kDefs != 1 || kUses != 1 {
		t.Errorf("launder k: %d defs %d uses, want 1 and 1", kDefs, kUses)
	}
	if got := Chains(info, fn(t, f, "localOnly")); len(got.Defs) == 0 {
		t.Error("localOnly: no defs recorded")
	}
	// A nil-body function yields empty chains, not a panic.
	if du := Chains(info, &ast.FuncDecl{Name: ast.NewIdent("x")}); len(du.Defs) != 0 {
		t.Error("nil body must yield empty chains")
	}
	// ValueSpec and RangeStmt left-hand sides are definitions too.
	vs := Chains(info, fn(t, f, "varSpec"))
	var found bool
	for obj, defs := range vs.Defs {
		if obj.Name() == "k" {
			if _, ok := defs[0].(*ast.ValueSpec); !ok {
				t.Errorf("varSpec k defined by %T, want *ast.ValueSpec", defs[0])
			}
			found = true
		}
	}
	if !found {
		t.Error("varSpec: no def for k")
	}
	rp := Chains(info, fn(t, f, "rangeProp"))
	found = false
	for obj, defs := range rp.Defs {
		if obj.Name() == "l" {
			if _, ok := defs[0].(*ast.RangeStmt); !ok {
				t.Errorf("rangeProp l defined by %T, want *ast.RangeStmt", defs[0])
			}
			found = true
		}
	}
	if !found {
		t.Error("rangeProp: no def for l")
	}
}

const orderSrc = `package df

func sync() error { return nil }
func publish()    {}
func cond() bool  { return true }

func sequential() {
	sync()
	publish()
}

func reversed() {
	publish()
	sync()
}

func initDominates() {
	if err := sync(); err != nil {
		return
	}
	publish()
}

func conditionalSync() {
	if cond() {
		sync()
	}
	publish()
}

func deferredSync() {
	defer sync()
	publish()
}

func goSync() {
	go sync()
	publish()
}

func inLoopBody() {
	for i := 0; i < 3; i++ {
		sync()
		publish()
	}
}

func loopThenAfter() {
	for cond() {
		sync()
	}
	publish()
}

func condThenBody() {
	for sync() == nil {
		publish()
	}
}

func closureSync() {
	f := func() { sync() }
	f()
	publish()
}

func gotoSkips() {
	goto after
	sync()
after:
	publish()
}

func switchArm() {
	switch {
	case cond():
		sync()
	}
	publish()
}

func switchTag(v int) {
	switch mustSync(); v {
	case 1:
		publish()
	}
}

func mustSync() {}

func shortCircuit() {
	_ = cond() && sync() == nil
	publish()
}

func sameCase(v int) {
	switch v {
	case 1:
		sync()
		publish()
	}
}

func selectArm(ch chan int) {
	select {
	case <-ch:
		sync()
	}
	publish()
}

func initToBody() {
	if err := sync(); err == nil {
		publish()
	}
}

func condToBody() {
	if sync() == nil {
		publish()
	}
}

func bodyToElse() {
	if cond() {
		sync()
	} else {
		publish()
	}
}

func rangeOperand() {
	for range []error{sync()} {
		publish()
	}
}
`

// callTo finds the first call to name within fd.
func callTo(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) ast.Node {
	t.Helper()
	var out ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == name {
				out = c
				return false
			}
		}
		return true
	})
	if out == nil {
		t.Fatalf("%s: no call to %s", fd.Name.Name, name)
	}
	return out
}

func TestDominates(t *testing.T) {
	_, f, info := load(t, orderSrc)
	cases := []struct {
		fn   string
		sync string
		want bool
	}{
		{"sequential", "sync", true},
		{"reversed", "sync", false},
		{"initDominates", "sync", true},
		{"conditionalSync", "sync", false},
		{"deferredSync", "sync", false},
		{"goSync", "sync", false},
		{"inLoopBody", "sync", true},
		{"loopThenAfter", "sync", false},
		{"condThenBody", "sync", true},
		{"closureSync", "sync", false},
		{"gotoSkips", "sync", false},
		{"switchArm", "sync", false},
		{"switchTag", "mustSync", true},
		{"shortCircuit", "sync", false},
		{"sameCase", "sync", true},
		{"selectArm", "sync", false},
		{"initToBody", "sync", true},
		{"condToBody", "sync", true},
		{"bodyToElse", "sync", false},
		{"rangeOperand", "sync", true},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fd := fn(t, f, tc.fn)
			s := callTo(t, info, fd, tc.sync)
			p := callTo(t, info, fd, "publish")
			o := NewOrder(fd.Body)
			if got := o.Dominates(s, p); got != tc.want {
				t.Errorf("%s: Dominates(sync, publish) = %v, want %v", tc.fn, got, tc.want)
			}
		})
	}
}

func TestDominatesDegenerate(t *testing.T) {
	_, f, _ := load(t, orderSrc)
	fd := fn(t, f, "sequential")
	o := NewOrder(fd.Body)
	n := fd.Body.List[0]
	if o.Dominates(n, n) {
		t.Error("a node must not dominate itself")
	}
	other := fn(t, f, "reversed").Body.List[0]
	if o.Dominates(other, n) || o.Dominates(n, other) {
		t.Error("nodes outside the body must not participate")
	}
	// Containment: the statement containing a call does not dominate it.
	call := callTo(t, nil, fd, "publish")
	if o.Dominates(fd.Body.List[1], call) {
		t.Error("a parent must not dominate its own child")
	}
}

func TestFuncBody(t *testing.T) {
	_, f, _ := load(t, orderSrc)
	if FuncBody(fn(t, f, "sequential")) == nil {
		t.Error("FuncBody(FuncDecl) = nil")
	}
	if FuncBody(ast.NewIdent("x")) != nil {
		t.Error("FuncBody(non-func) != nil")
	}
	lit := &ast.FuncLit{Body: &ast.BlockStmt{}}
	if FuncBody(lit) != lit.Body {
		t.Error("FuncBody(FuncLit) wrong")
	}
}

func TestWalkShallowSkipsNestedLiterals(t *testing.T) {
	src := `package df
func outer() {
	_ = func() { inner() }
	outerCall()
}
func inner()     {}
func outerCall() {}
`
	_, f, _ := load(t, src)
	var names []string
	walkShallow(fn(t, f, "outer").Body, func(n ast.Node) {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				names = append(names, id.Name)
			}
		}
	})
	if strings.Join(names, ",") != "outerCall" {
		t.Errorf("walkShallow visited %v, want [outerCall]", names)
	}
}
