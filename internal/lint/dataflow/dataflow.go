// Package dataflow is the intra-procedural dataflow substrate of
// wcojlint: def-use chains over one function body, a small escape
// lattice for values whose lifetime is bounded by a scope the
// compiler cannot see (arena loans, snapshot pointers), and a
// statement-order happens-before walk (order.go). The AST-shape
// analyzers of PR 6 cannot track a value through `u := t`; the
// flow-sensitive invariants of the WAL and MVCC layers — fsync before
// publish, no writes after publish, no arena loan past its snapshot —
// need exactly that, so this package provides it once and the
// analyzers stay declarative: a seed predicate in, escape sites out.
//
// Everything here is deliberately intra-procedural. A value passed to
// another function is not an escape (the callee is analyzed on its
// own, mirroring valueident's contract), so the precision/soundness
// trade is the same one the PR 6 analyzers made: no false positives
// from conservative whole-program reasoning, directives for the few
// sanctioned ownership transfers.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Escape classifies how far a tracked value travels beyond the
// function that created it. The lattice is ordered by severity:
// EscapeNone (still function-local) is bottom; the others all mean
// the value outlives the scope its contract bounds it to, in
// increasingly unrecoverable ways (a captured alias at least stays in
// this goroutine; a stored or sent one is unreachable to review).
type Escape uint8

const (
	// EscapeNone: the value never leaves the function's locals.
	EscapeNone Escape = iota
	// EscapeCaptured: the value is referenced by a nested function
	// literal, which may run after the scope ends.
	EscapeCaptured
	// EscapeReturned: the value is returned to the caller.
	EscapeReturned
	// EscapeSent: the value is sent on a channel.
	EscapeSent
	// EscapeStored: the value is written to a field, a non-local
	// variable, or an element of non-local storage.
	EscapeStored
)

var escapeNames = [...]string{
	EscapeNone:     "local",
	EscapeCaptured: "captured by a closure",
	EscapeReturned: "returned",
	EscapeSent:     "sent on a channel",
	EscapeStored:   "stored to a field or outer variable",
}

func (e Escape) String() string {
	if int(e) < len(escapeNames) {
		return escapeNames[e]
	}
	return "unknown escape"
}

// Join returns the more severe of two lattice points.
func (e Escape) Join(o Escape) Escape {
	if o > e {
		return o
	}
	return e
}

// Site is one place a tracked value escapes its function.
type Site struct {
	Kind Escape
	Pos  token.Pos
	// Expr is the escaping use (a seed expression or an alias of one).
	Expr ast.Expr
	// Obj is the alias object involved, or nil when a seed expression
	// escapes directly (e.g. `return tr.SegLevel(...)`).
	Obj types.Object
}

// DefUse records, for every object local to one function, where it is
// (re)defined and where it is read. Definitions are AssignStmt,
// ValueSpec and RangeStmt nodes whose left-hand side binds the
// object; uses are every other identifier occurrence.
type DefUse struct {
	Defs map[types.Object][]ast.Node
	Uses map[types.Object][]*ast.Ident
}

// Chains builds the def-use chains of fn's body. fn is the whole
// function node (*ast.FuncDecl or *ast.FuncLit), so parameters and
// named results count as local definitions.
func Chains(info *types.Info, fn ast.Node) *DefUse {
	du := &DefUse{
		Defs: make(map[types.Object][]ast.Node),
		Uses: make(map[types.Object][]*ast.Ident),
	}
	body := FuncBody(fn)
	if body == nil {
		return du
	}
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End()
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if local(obj) {
						du.Defs[obj] = append(du.Defs[obj], n)
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if obj := info.Defs[id]; local(obj) {
					du.Defs[obj] = append(du.Defs[obj], n)
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if local(obj) {
						du.Defs[obj] = append(du.Defs[obj], n)
					}
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; local(obj) {
				du.Uses[obj] = append(du.Uses[obj], n)
			}
		}
		return true
	})
	return du
}

// Result is the outcome of one Track run: every local object that
// aliases a seed value (mapped to the seed expression that tainted
// it, for diagnostics) and every escape site found.
type Result struct {
	Aliases map[types.Object]ast.Expr
	Sites   []Site
}

// Track propagates seed values through fn's body and records where
// they escape. seed classifies an expression as originating a tracked
// value (an arena accessor call, a loaned slice read, ...).
//
// Propagation follows assignments and range statements into locals
// (including laundering chains `u := t; v := u`), reslicing, element
// reads of tracked containers, and `append`: appending a tracked
// value as a single element taints the destination, while a spread
// `append(dst, src...)` of a slice with basic element type is a
// sanctioned deep copy and taints nothing (a spread of a slice of
// pointer-bearing elements still aliases and is tracked).
//
// Escapes are: assignment to storage that outlives the function (a
// field, a dereference, an element of a non-local container, a global
// or outer-scope variable), channel sends, returns, and capture by a
// nested function literal. Nested literals are otherwise opaque —
// their own bodies are each caller's responsibility — and calls never
// escape their arguments: the callee is analyzed on its own.
func Track(info *types.Info, fn ast.Node, seed func(ast.Expr) bool) *Result {
	res := &Result{Aliases: make(map[types.Object]ast.Expr)}
	body := FuncBody(fn)
	if body == nil {
		return res
	}
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End()
	}

	// tainted reports whether e evaluates to (an alias of) a tracked
	// value, and returns the seed expression it traces back to.
	var tainted func(e ast.Expr) (ast.Expr, bool)
	tainted = func(e ast.Expr) (ast.Expr, bool) {
		if e == nil {
			return nil, false
		}
		if seed(e) {
			return e, true
		}
		// A value of basic type is a copy, never an alias: reading
		// k[0] out of a tracked []int64 does not extend the loan.
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if _, basic := tv.Type.Underlying().(*types.Basic); basic {
				return nil, false
			}
		}
		switch e := e.(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if src, ok := res.Aliases[obj]; ok {
				return src, true
			}
		case *ast.ParenExpr:
			return tainted(e.X)
		case *ast.SliceExpr:
			return tainted(e.X) // reslicing keeps the alias
		case *ast.IndexExpr:
			return tainted(e.X) // element of a tracked container
		case *ast.StarExpr:
			return tainted(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				return tainted(e.X)
			}
		case *ast.SelectorExpr:
			// A field of a tracked composite still aliases it; a
			// method value does not.
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				return tainted(e.X)
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if src, ok := tainted(v); ok {
					return src, true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				// Builtin append: the result aliases a tracked dst, or
				// retains a tracked element appended without spread.
				if len(e.Args) > 0 {
					if src, ok := tainted(e.Args[0]); ok {
						return src, true
					}
				}
				for _, arg := range e.Args[1:] {
					src, ok := tainted(arg)
					if !ok {
						continue
					}
					if e.Ellipsis == token.NoPos || !spreadCopies(info, arg) {
						return src, true
					}
				}
			}
		}
		return nil, false
	}

	// Fixpoint over definitions: loops can taint a local from a value
	// defined later in source order.
	for changed := true; changed; {
		changed = false
		walkShallow(body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := pairedRhs(n, i)
					if rhs == nil {
						continue
					}
					src, ok := tainted(rhs)
					if !ok {
						continue
					}
					if id, ok := lhs.(*ast.Ident); ok {
						if id.Name == "_" {
							continue
						}
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if local(obj) {
							if _, seen := res.Aliases[obj]; !seen {
								res.Aliases[obj] = src
								changed = true
							}
						}
						continue
					}
					// Element/field write into a local container
					// (out[i] = loan, s.f = loan): the container now
					// holds the alias, so returning or storing it later
					// escapes the loan.
					if obj := baseObj(info, lhs); local(obj) {
						if _, seen := res.Aliases[obj]; !seen {
							res.Aliases[obj] = src
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				src, ok := tainted(n.X)
				if !ok || n.Value == nil {
					break
				}
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if local(obj) && !basicType(obj.Type()) {
						if _, seen := res.Aliases[obj]; !seen {
							res.Aliases[obj] = src
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if i >= len(n.Values) || id.Name == "_" {
						continue
					}
					if src, ok := tainted(n.Values[i]); ok {
						if obj := info.Defs[id]; local(obj) {
							if _, seen := res.Aliases[obj]; !seen {
								res.Aliases[obj] = src
								changed = true
							}
						}
					}
				}
			}
		})
	}

	report := func(kind Escape, pos token.Pos, e ast.Expr) {
		var obj types.Object
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
		res.Sites = append(res.Sites, Site{Kind: kind, Pos: pos, Expr: e, Obj: obj})
	}

	// Escape pass.
	walkShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := pairedRhs(n, i)
				if rhs == nil {
					continue
				}
				if _, ok := tainted(rhs); !ok {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					obj := info.Defs[l]
					if obj == nil {
						obj = info.Uses[l]
					}
					if obj != nil && l.Name != "_" && !local(obj) {
						report(EscapeStored, l.Pos(), rhs)
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if !localStorage(info, local, lhs) {
						report(EscapeStored, l.Pos(), rhs)
					}
				}
			}
		case *ast.SendStmt:
			if _, ok := tainted(n.Value); ok {
				report(EscapeSent, n.Value.Pos(), n.Value)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if _, ok := tainted(r); ok {
					report(EscapeReturned, r.Pos(), r)
				}
			}
		case *ast.FuncLit:
			// Capture scan: identifier uses of tracked objects inside
			// the literal. The literal's own dataflow is its caller's
			// Track run; here only the capture edge matters.
			seen := make(map[types.Object]bool)
			ast.Inspect(n.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || seen[obj] {
					return true
				}
				if src, ok := res.Aliases[obj]; ok && obj.Pos() < n.Pos() {
					seen[obj] = true
					res.Sites = append(res.Sites, Site{Kind: EscapeCaptured, Pos: id.Pos(), Expr: src, Obj: obj})
				}
				return true
			})
		}
	})
	return res
}

// baseObj unwraps an assignment target (selector/index/deref chains)
// to the object of its base identifier, or nil.
func baseObj(info *types.Info, lhs ast.Expr) types.Object {
	for {
		switch l := lhs.(type) {
		case *ast.ParenExpr:
			lhs = l.X
		case *ast.IndexExpr:
			lhs = l.X
		case *ast.StarExpr:
			lhs = l.X
		case *ast.SelectorExpr:
			lhs = l.X
		case *ast.Ident:
			if obj := info.Uses[l]; obj != nil {
				return obj
			}
			return info.Defs[l]
		default:
			return nil
		}
	}
}

// basicType reports whether t's underlying type is basic — a value
// that copies, never aliases.
func basicType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

// pairedRhs returns the right-hand expression feeding Lhs[i], or nil
// when the assignment is not pairwise (multi-value call, mismatch).
func pairedRhs(n *ast.AssignStmt, i int) ast.Expr {
	if len(n.Rhs) == len(n.Lhs) {
		return n.Rhs[i]
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		return nil // multi-value call: results are fresh for our purposes
	}
	return nil
}

// spreadCopies reports whether `append(dst, src...)` deep-copies src:
// true when the element type is basic (scalars copy by value), false
// when elements carry pointers or slices that still alias.
func spreadCopies(info *types.Info, src ast.Expr) bool {
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, basic := sl.Elem().Underlying().(*types.Basic)
	return basic
}

// localStorage reports whether the assignment target lhs (a selector,
// index or dereference) writes into storage rooted at a value-typed
// local variable — storage whose lifetime the function still owns.
// Writes through pointers, into fields of non-local values, or into
// containers the function did not declare are not local.
func localStorage(info *types.Info, local func(types.Object) bool, lhs ast.Expr) bool {
	for {
		switch l := lhs.(type) {
		case *ast.ParenExpr:
			lhs = l.X
		case *ast.IndexExpr:
			lhs = l.X
		case *ast.SelectorExpr:
			// A field path stays local only while the base is a value;
			// selecting through a pointer leaves the local frame.
			if tv, ok := info.Types[l.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return false
				}
			}
			lhs = l.X
		case *ast.Ident:
			obj := info.Uses[l]
			if obj == nil {
				obj = info.Defs[l]
			}
			if !local(obj) {
				return false
			}
			// A local of pointer or map type reaches shared storage; a
			// local slice's backing array is treated as function-owned
			// (its escape is caught if the slice itself escapes).
			switch obj.Type().Underlying().(type) {
			case *types.Pointer:
				return false
			}
			return true
		default:
			return false
		}
	}
}

// FuncBody returns the body of a function node (*ast.FuncDecl or
// *ast.FuncLit), or nil.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// walkShallow visits every node under root except the bodies of
// nested function literals (the literal node itself is visited, so
// callers can handle capture edges).
func walkShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		visit(n)
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return true
	})
}
