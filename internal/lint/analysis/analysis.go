// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that wcojlint's analyzers
// are written against. The repository vendors no third-party modules
// (the engine itself is stdlib-only), so rather than importing x/tools
// for its driver we mirror the small part of its API the analyzers
// need: an Analyzer with a Run function, a Pass carrying one
// type-checked package, and positioned Diagnostics. Analyzers written
// against this package are source-compatible with the upstream API
// shape, so they could be lifted onto the real multichecker if the
// module ever grows the dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name (used in diagnostics and
// the -only flag), documentation, and the Run function applied to each
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// Prepare, when set, runs once per driver invocation over all
	// loaded units before any Run call, and its result is exposed to
	// every Pass of this analyzer as Facts. It exists because export
	// data carries no doc comments or bodies: whole-module facts such
	// as "which symbols are deprecated" or "which functions
	// transitively fsync" can only be computed from the parsed units
	// themselves. Upstream x/tools models this with typed Facts; the
	// single opaque value keeps this mirror small.
	Prepare func(units []*Unit) (any, error)
}

// Pass is one (analyzer, package) unit of work. All fields are
// read-only for the Run function except Report, which records
// findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the value returned by Analyzer.Prepare, or nil when the
	// analyzer has no Prepare hook.
	Facts any

	diags *[]Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: message form used by vet and staticcheck.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Unit is one loaded, type-checked package ready to be analyzed.
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Run applies each analyzer to each unit and returns all diagnostics
// sorted by file position. A nil error from every Run means the
// analysis itself succeeded; the diagnostics carry the findings.
func Run(analyzers []*Analyzer, units []*Unit) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := make(map[*Analyzer]any, len(analyzers))
	for _, a := range analyzers {
		if a.Prepare == nil {
			continue
		}
		f, err := a.Prepare(units)
		if err != nil {
			return nil, fmt.Errorf("%s: prepare: %w", a.Name, err)
		}
		facts[a] = f
	}
	for _, u := range units {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				Facts:     facts[a],
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
