package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"wcoj/internal/lint/analysis"
)

// ValueIdent enforces the emit-callback aliasing contract: a
// relation.Tuple (or []relation.Value slice) passed into an
// emit-shaped function aliases storage owned by the engine — the
// serial visit contract explicitly reuses the tuple between calls, and
// shard buffers are recycled. The callback must treat it as read-only
// and must not let it escape the call:
//
//   - no element writes (t[i] = v) — that corrupts the engine's
//     binding in place;
//   - no retention: storing the slice header in a field, map, slice,
//     global or captured variable, sending it on a channel, appending
//     it as a single element, or placing it in a composite literal
//     all let the alias outlive the callback, after which its
//     contents are overwritten by the next tuple (today this only
//     surfaces as corrupt results under compaction).
//
// Copying is always fine: t.Clone(), append(dst, t...), copy(dst, t),
// and passing the tuple along to another function (which is checked on
// its own). Local aliases (u := t) are tracked and subject to the same
// rules.
//
// A function whose contract transfers ownership of the tuple to the
// callee (the caller guarantees a private copy, e.g. batch ops cloned
// at Batch.Add) is declared with `//wcojlint:retains <reason>` and
// exempted.
var ValueIdent = &analysis.Analyzer{
	Name: "valueident",
	Doc:  "tuples received from the engine must not be mutated or retained past the emit callback",
	Run:  runValueIdent,
}

func runValueIdent(pass *analysis.Pass) error {
	dirs := parseDirectives(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if d, ok := dirs.at(pass.Fset, n.Pos(), "retains"); ok && d.arg != "" {
				return true // declared ownership transfer
			}
			checkEmitFunc(pass, ft, body)
			return true
		})
	}
	return nil
}

// isTupleish matches relation.Tuple and []relation.Value shapes by
// name, so fixture packages with local stand-in types are covered too.
func isTupleish(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		if named.Obj().Name() == "Tuple" {
			if _, isSlice := named.Underlying().(*types.Slice); isSlice {
				return true
			}
		}
		t = named.Underlying()
	}
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	if en, ok := sl.Elem().(*types.Named); ok {
		return en.Obj().Name() == "Value"
	}
	return false
}

// emitShaped reports whether the signature can receive engine-owned
// tuples: at least one tuple-ish parameter, and a result list that
// looks like a callback or visitor (none, error, or bool).
func emitShaped(pass *analysis.Pass, ft *ast.FuncType) []*types.Var {
	var tupleParams []*types.Var
	if ft.Params == nil {
		return nil
	}
	if ft.Results != nil && len(ft.Results.List) > 1 {
		return nil
	}
	if ft.Results != nil && len(ft.Results.List) == 1 {
		rt := exprType(pass, ft.Results.List[0].Type)
		if rt == nil {
			return nil
		}
		if !types.Identical(rt, types.Universe.Lookup("error").Type()) {
			if b, ok := rt.Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
				return nil
			}
		}
	}
	for _, field := range ft.Params.List {
		t := exprType(pass, field.Type)
		if t == nil || !isTupleish(t) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				tupleParams = append(tupleParams, v)
			}
		}
	}
	return tupleParams
}

func checkEmitFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	params := emitShaped(pass, ft)
	if len(params) == 0 {
		return
	}
	tainted := make(map[types.Object]bool, len(params))
	for _, p := range params {
		tainted[p] = true
	}
	isTainted := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		return obj != nil && tainted[obj]
	}

	// Walk the whole body including nested literals: a closure
	// capturing the tuple aliases it just the same. Nested emit
	// functions' own params are handled by their own checkEmitFunc
	// visit.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				// Mutation through the alias: t[i] = v, t[i] += v.
				if ix, ok := lhs.(*ast.IndexExpr); ok && isTainted(ix.X) {
					pass.Reportf(lhs.Pos(), "write through engine-owned tuple %s: emit callbacks must treat the tuple as read-only (Clone it to modify)", ix.X.(*ast.Ident).Name)
					continue
				}
				if rhs == nil || !isTainted(rhs) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.Defs[l]
					if obj == nil {
						obj = pass.TypesInfo.Uses[l]
					}
					if obj == nil || l.Name == "_" {
						continue
					}
					if n.Tok == token.DEFINE || withinBody(pass, body, obj) {
						tainted[obj] = true // local alias: track it
					} else {
						pass.Reportf(lhs.Pos(), "engine-owned tuple stored in %s, which outlives the emit callback: the buffer is reused; Clone() before retaining", l.Name)
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					pass.Reportf(lhs.Pos(), "engine-owned tuple retained past the emit callback: the buffer is reused; Clone() before retaining")
				}
			}
		case *ast.SendStmt:
			if isTainted(n.Value) {
				pass.Reportf(n.Value.Pos(), "engine-owned tuple sent on a channel: the receiver sees a reused buffer; Clone() before sending")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) >= 2 {
				for _, arg := range n.Args[1:] {
					// append(dst, t...) copies elements — fine;
					// append(dst, t) stores the alias — not fine.
					if isTainted(arg) && n.Ellipsis == token.NoPos {
						pass.Reportf(arg.Pos(), "engine-owned tuple appended as a single element: the slice retains the alias; append a Clone()")
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isTainted(v) {
					pass.Reportf(v.Pos(), "engine-owned tuple placed in a composite literal: the value retains the alias; use Clone()")
				}
			}
		}
		return true
	})
}

// withinBody reports whether obj is declared inside body — a local
// whose lifetime ends with the call, as opposed to a captured or
// package-level variable.
func withinBody(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}
