package lint

import (
	"go/ast"
	"go/types"

	"wcoj/internal/lint/analysis"
	"wcoj/internal/lint/dataflow"
)

// ArenaEscape enforces the CSR arena loan contract (DESIGN.md §11):
// the Keys/Keys32 slices inside a trie.LevelRange alias the trie's
// column arenas, and a LevelRange itself is a loan bounded by the
// snapshot that produced it. Compaction swaps the snapshot and the old
// arenas are recycled, so a loaned slice that outlives its snapshot
// scope reads someone else's keys. The analyzer tracks every value
// derived from an arena accessor through the function's dataflow and
// flags the loan when it:
//
//   - is stored to a struct field, a global, or a captured variable;
//   - is sent on a channel;
//   - is returned to the caller;
//   - is captured by a nested function literal;
//   - is appended into a longer-lived slice without a deep copy
//     (append(dst, keys...) of a scalar-element slice is a copy and
//     stays clean; append(dst, r) of a LevelRange retains the alias).
//
// Seeds are: selections of .Keys/.Keys32 from a LevelRange-typed
// value, call results of type LevelRange or []LevelRange (SegLevel and
// friends), and parameters of those types (the caller handed the
// function a live loan). Matching is by type name so fixture stand-ins
// are covered, mirroring valueident.
//
// A function whose contract transfers ownership — the loan is consumed
// strictly within the same snapshot scope, e.g. span cursors built for
// one intersection call — is declared with `//wcojlint:retains <why>`
// and exempted.
var ArenaEscape = &analysis.Analyzer{
	Name: "arenaescape",
	Doc:  "CSR arena slices (LevelRange.Keys/Keys32) must not outlive their snapshot scope",
	Run:  runArenaEscape,
}

// levelRangeType reports whether t (after deref) is a named LevelRange
// or a slice of them.
func levelRangeType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = deref(t)
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if n, ok := deref(sl.Elem()).(*types.Named); ok && n.Obj().Name() == "LevelRange" {
			return true
		}
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() == "LevelRange"
	}
	return false
}

func runArenaEscape(pass *analysis.Pass) error {
	dirs := parseDirectives(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft = n.Type
			case *ast.FuncLit:
				ft = n.Type
			default:
				return true
			}
			if dataflow.FuncBody(n) == nil {
				return true
			}
			if d, ok := dirs.at(pass.Fset, n.Pos(), "retains"); ok && d.arg != "" {
				return true // declared ownership transfer
			}
			checkArenaFunc(pass, dirs, n, ft)
			return true
		})
	}
	return nil
}

func checkArenaFunc(pass *analysis.Pass, dirs directiveIndex, fn ast.Node, ft *ast.FuncType) {
	// Parameters of LevelRange-ish type are live loans on entry.
	loanParams := make(map[types.Object]bool)
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			t := exprType(pass, field.Type)
			if t == nil || !levelRangeType(t) {
				continue
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					loanParams[obj] = true
				}
			}
		}
	}

	seed := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && loanParams[obj]
		case *ast.SelectorExpr:
			if e.Sel.Name != "Keys" && e.Sel.Name != "Keys32" {
				return false
			}
			return levelRangeType(exprType(pass, e.X))
		case *ast.CallExpr:
			// Only real calls hand out loans; make/new allocate fresh
			// storage and conversions re-type an existing value.
			if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return false
			}
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					return false
				}
			}
			return levelRangeType(exprType(pass, e))
		}
		return false
	}

	res := dataflow.Track(pass.TypesInfo, fn, seed)
	for _, s := range res.Sites {
		// A retains directive on the escaping line sanctions that one
		// site without exempting the whole function.
		if d, ok := dirs.at(pass.Fset, s.Pos, "retains"); ok && d.arg != "" {
			continue
		}
		pass.Reportf(s.Pos, "arena loan %s is %s: it aliases a CSR arena owned by the snapshot and is overwritten by compaction; copy the keys, or sanction ownership with //wcojlint:retains <why>", describeLoan(s), s.Kind)
	}
}

// describeLoan names the escaping value for the diagnostic.
func describeLoan(s dataflow.Site) string {
	if s.Obj != nil {
		return s.Obj.Name()
	}
	if sel, ok := s.Expr.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "value"
}
