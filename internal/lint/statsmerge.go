package lint

import (
	"go/ast"
	"go/types"

	"wcoj/internal/lint/analysis"
)

// StatsMerge enforces counter exhaustiveness so a newly added metric
// can never silently read zero:
//
//  1. Any merge-shaped method — `func (s *T) Merge(o *T)` where T is a
//     struct with numeric fields — must mention every numeric field of
//     T at least twice (once on the receiver side, once on the
//     argument side). A field the method never folds is exactly the
//     "new Stats counter forgotten in Merge" bug.
//
//  2. A struct annotated `//wcojlint:exhaustive` (the stats snapshot
//     types) may only be constructed by composite literals that set
//     every field, so the snapshot path cannot drop a counter.
//     Partial literals for error paths belong to types without the
//     annotation.
var StatsMerge = &analysis.Analyzer{
	Name: "statsmerge",
	Doc:  "stats counters must be folded in Merge and populated in snapshot literals",
	Run:  runStatsMerge,
}

func runStatsMerge(pass *analysis.Pass) error {
	dirs := parseDirectives(pass)
	checkMergeMethods(pass)
	checkExhaustiveLiterals(pass, dirs)
	return nil
}

// numericFields returns the numeric (integer/float) fields of st.
func numericFields(st *types.Struct) []*types.Var {
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		b, ok := f.Type().Underlying().(*types.Basic)
		if !ok {
			continue
		}
		if b.Info()&(types.IsInteger|types.IsFloat) != 0 {
			out = append(out, f)
		}
	}
	return out
}

func checkMergeMethods(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Merge" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverNamed(pass, fd)
			if recv == nil {
				continue
			}
			st, ok := recv.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			// Merge-shaped: exactly one parameter of the same struct
			// type (usually *T).
			params := fd.Type.Params
			if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
				continue
			}
			pt := exprType(pass, params.List[0].Type)
			if pt == nil || deref(pt) == nil {
				continue
			}
			if n, ok := deref(pt).(*types.Named); !ok || n.Obj() != recv.Obj() {
				continue
			}

			mentions := make(map[*types.Var]int)
			walkSameFunc(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if fv := fieldObject(pass, sel); fv != nil {
						mentions[fv]++
					}
				}
				return true
			})
			for _, fv := range numericFields(st) {
				if mentions[fv] < 2 {
					pass.Reportf(fd.Pos(), "%s.Merge does not fold field %s: a merged snapshot would silently drop its count", recv.Obj().Name(), fv.Name())
				}
			}
		}
	}
}

func checkExhaustiveLiterals(pass *analysis.Pass, dirs directiveIndex) {
	// Exhaustive-marked struct type objects in this package.
	marked := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// The directive may sit on the type spec or, for a
				// single-spec declaration, on the `type` keyword line.
				_, onSpec := dirs.at(pass.Fset, ts.Pos(), "exhaustive")
				_, onDecl := dirs.at(pass.Fset, gd.Pos(), "exhaustive")
				if !onSpec && !onDecl {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					marked[tn] = true
				}
			}
		}
	}
	if len(marked) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := exprType(pass, lit)
			if t == nil {
				return true
			}
			named, ok := deref(t).(*types.Named)
			if !ok || !marked[named.Obj()] {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			set := make(map[string]bool)
			positional := 0
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						set[id.Name] = true
					}
				} else {
					positional++
				}
			}
			if positional == st.NumFields() {
				return true // unkeyed literal: compiler enforces all fields
			}
			for i := 0; i < st.NumFields(); i++ {
				name := st.Field(i).Name()
				if !set[name] {
					pass.Reportf(lit.Pos(), "exhaustive struct %s constructed without field %s: stats snapshot would report zero for it", named.Obj().Name(), name)
				}
			}
			return true
		})
	}
}
