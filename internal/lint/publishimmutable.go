package lint

import (
	"go/ast"
	"go/types"

	"wcoj/internal/lint/analysis"
	"wcoj/internal/lint/dataflow"
)

// PublishImmutable enforces the MVCC snapshot rule (DESIGN.md §10):
// state published through an atomic.Pointer is immutable from the
// moment of the Store. Readers hold the pointer without any lock —
// that is the whole point of the snapshot design — so a writer that
// keeps mutating the pointed-to value after publishing it races every
// concurrent reader. The correct pattern is copy-on-write: build the
// new state fully, Store it, never touch it again (swap in a fresh
// copy for the next change).
//
// The analyzer finds each `p.Store(x)` / `p.Swap(x)` where p has type
// atomic.Pointer[T] and x resolves to a local variable, then flags any
// write through x (or a tracked alias of x) that the Store dominates:
// on every path reaching the write, the value was already published.
// Writes before the Store are the build phase and are fine.
//
// A sanctioned post-publish write (e.g. a field the readers never
// inspect, guarded elsewhere) is annotated `//wcojlint:mutates <why>`
// on the writing line.
var PublishImmutable = &analysis.Analyzer{
	Name: "publishimmutable",
	Doc:  "no writes through a pointer after it is Stored into an atomic.Pointer",
	Run:  runPublishImmutable,
}

func runPublishImmutable(pass *analysis.Pass) error {
	dirs := parseDirectives(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				if dataflow.FuncBody(n) != nil {
					checkPublishImmutable(pass, dirs, n)
				}
			}
			return true
		})
	}
	return nil
}

// storeCall matches p.Store(x) / p.Swap(x) on an atomic.Pointer-typed
// operand and returns the local object the stored argument resolves
// to, or nil.
func storeCall(pass *analysis.Pass, fn ast.Node, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Store" && sel.Sel.Name != "Swap") || len(call.Args) == 0 {
		return nil
	}
	t := exprType(pass, sel.X)
	if t == nil || !namedIn(t, "sync/atomic", "Pointer") {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pos() < fn.Pos() || obj.Pos() > fn.End() {
		return nil // non-local: its lifetime is someone else's analysis
	}
	return obj
}

func checkPublishImmutable(pass *analysis.Pass, dirs directiveIndex, fn ast.Node) {
	body := dataflow.FuncBody(fn)

	// Pass 1: collect the published locals and their Store sites.
	// Nested literals are skipped — a Store inside a closure is that
	// closure's own checkPublishImmutable visit.
	published := make(map[types.Object][]ast.Node)
	walkSameFunc(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := storeCall(pass, fn, call); obj != nil {
				published[obj] = append(published[obj], call)
			}
		}
		return true
	})
	if len(published) == 0 {
		return
	}

	order := dataflow.NewOrder(body)
	for obj, stores := range published {
		// Track aliases of the published pointer so `q := ns; q.f = v`
		// after the Store is caught too.
		res := dataflow.Track(pass.TypesInfo, fn, func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && pass.TypesInfo.Uses[id] == obj
		})
		aliases := map[types.Object]bool{obj: true}
		for a := range res.Aliases {
			aliases[a] = true
		}

		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				root, through := writeRoot(pass, lhs)
				if root == nil || !aliases[root] || !through {
					continue
				}
				for _, st := range stores {
					if !order.Dominates(st, as) {
						continue
					}
					if d, ok := dirs.at(pass.Fset, as.Pos(), "mutates"); ok && d.arg != "" {
						break
					}
					pass.Reportf(lhs.Pos(), "write through %s after it was published via atomic.Pointer.Store: snapshots are immutable once visible; build fully before Store, or annotate //wcojlint:mutates <why>", root.Name())
					break
				}
			}
			return true
		})
	}
}

// writeRoot unwraps an assignment target to its base identifier and
// reports whether the write goes through the value (a field, element
// or dereference) rather than rebinding the variable itself.
func writeRoot(pass *analysis.Pass, lhs ast.Expr) (types.Object, bool) {
	through := false
	for {
		switch l := lhs.(type) {
		case *ast.ParenExpr:
			lhs = l.X
		case *ast.SelectorExpr:
			through = true
			lhs = l.X
		case *ast.IndexExpr:
			through = true
			lhs = l.X
		case *ast.StarExpr:
			through = true
			lhs = l.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[l]
			if obj == nil {
				obj = pass.TypesInfo.Defs[l]
			}
			return obj, through
		default:
			return nil, false
		}
	}
}
