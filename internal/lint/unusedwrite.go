package lint

import (
	"go/ast"
	"go/types"

	"wcoj/internal/lint/analysis"
)

// UnusedWrite flags field writes through a struct copy that nothing
// can observe — the two shapes that actually bite:
//
//  1. writing a field of a range value variable
//     (`for _, v := range xs { v.n++ }`): v is a copy of the element;
//     the write is lost when the iteration advances;
//
//  2. writing a field of a by-value method receiver
//     (`func (s T) bump() { s.n++ }`): s is a copy of the caller's
//     value; the write is lost at return.
//
// In both cases the write is only reported when the copy is never
// read afterwards — if the function goes on to use the modified copy
// (pass it somewhere, return it), the write is meaningful.
var UnusedWrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "no field writes through struct copies (range variables, value receivers) that are never read",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				id, ok := n.Value.(*ast.Ident)
				if !ok || id.Name == "_" {
					return true
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil || !isStructValue(obj.Type()) {
					return true
				}
				checkCopyWrites(pass, obj, id.Name, n.Body, "range variable")
			case *ast.FuncDecl:
				if n.Recv == nil || len(n.Recv.List) == 0 || len(n.Recv.List[0].Names) == 0 || n.Body == nil {
					return true
				}
				id := n.Recv.List[0].Names[0]
				if id.Name == "_" {
					return true
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil || !isStructValue(obj.Type()) {
					return true
				}
				checkCopyWrites(pass, obj, id.Name, n.Body, "value receiver")
			}
			return true
		})
	}
	return nil
}

// isStructValue reports whether t is a struct held by value (writes to
// its fields through a copy are lost).
func isStructValue(t types.Type) bool {
	_, ok := t.Underlying().(*types.Struct)
	return ok
}

// checkCopyWrites reports field writes through obj when every use of
// obj in body is such a write — i.e. the modified copy is never read.
func checkCopyWrites(pass *analysis.Pass, obj types.Object, name string, body ast.Node, kind string) {
	var writes []*ast.SelectorExpr
	reads := 0
	record := func(lhs ast.Expr) {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			writes = append(writes, sel)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	isWriteBase := func(id *ast.Ident) bool {
		for _, w := range writes {
			if w.X == id {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if !isWriteBase(id) {
			reads++
		}
		return true
	})
	if reads > 0 {
		return
	}
	for _, w := range writes {
		pass.Reportf(w.Pos(), "unused write: %s.%s assigns through a %s copy that is never read; the write is lost", name, w.Sel.Name, kind)
	}
}
