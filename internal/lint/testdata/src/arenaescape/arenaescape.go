// Fixture for the arenaescape analyzer: slices loaned from the CSR
// arenas (LevelRange.Keys/Keys32, LevelRange-typed results) must not
// outlive their snapshot scope. The types are name-matched stand-ins
// for internal/trie.
package arenaescape

type Value int64

// LevelRange mirrors trie.LevelRange: Keys/Keys32 alias the trie's
// column arenas.
type LevelRange struct {
	Keys   []Value
	Keys32 []uint32
	Lo, Hi int
}

type Trie struct{ keys []Value }

func (t *Trie) SegLevel(d, lo, hi int) LevelRange {
	return LevelRange{Keys: t.keys[lo:hi], Lo: lo, Hi: hi}
}

type holder struct {
	kept   []Value
	kept32 []uint32
	ranges []LevelRange
	ch     chan []uint32
}

// storeKeys retains the loaned slice in a field.
func (h *holder) storeKeys(t *Trie) {
	r := t.SegLevel(0, 0, 1)
	h.kept = r.Keys // want `arena loan`
}

// launder re-assigns the loan through locals before storing it; the
// dataflow tracker follows the chain.
func (h *holder) launder(t *Trie) {
	r := t.SegLevel(0, 0, 1)
	k := r.Keys
	u := k
	h.kept = u // want `arena loan u is stored`
}

// returnKeys hands the loan to the caller.
func returnKeys(t *Trie) []Value {
	return t.SegLevel(0, 0, 1).Keys // want `arena loan`
}

// sendKeys lets another goroutine see a recycled arena.
func (h *holder) sendKeys(t *Trie) {
	r := t.SegLevel(0, 0, 1)
	h.ch <- r.Keys32[0:1] // want `arena loan`
}

// capture closes over the loan; the closure may run after compaction.
func capture(t *Trie, run func(func())) {
	k := t.SegLevel(0, 0, 1).Keys
	run(func() {
		_ = k[0] // want `arena loan k is captured`
	})
}

// appendRange retains the whole LevelRange (and its Keys header) in a
// longer-lived slice.
func (h *holder) appendRange(t *Trie) {
	r := t.SegLevel(0, 0, 1)
	h.ranges = append(h.ranges, r) // want `arena loan`
}

// paramLoan receives a live loan from its caller and stores it.
func (h *holder) paramLoan(r LevelRange) {
	h.kept = r.Keys // want `arena loan`
}

// spreadCopy deep-copies scalar keys out of the arena: clean.
func (h *holder) spreadCopy(t *Trie) {
	r := t.SegLevel(0, 0, 1)
	h.kept = append(h.kept, r.Keys...)
	h.kept32 = append(h.kept32, r.Keys32...)
}

// explicitCopy snapshots the keys with make+copy: clean.
func (h *holder) explicitCopy(t *Trie) {
	r := t.SegLevel(0, 0, 1)
	out := make([]Value, len(r.Keys))
	copy(out, r.Keys)
	h.kept = out
}

// localUse consumes the loan within the snapshot scope: clean.
func localUse(t *Trie) Value {
	r := t.SegLevel(0, 0, 1)
	var sum Value
	for _, v := range r.Keys {
		sum += v
	}
	return sum
}

// spanCursor transfers ownership by contract: the whole function is
// sanctioned with a retains directive.
//
//wcojlint:retains spans are consumed within the same intersection call
func spanCursor(r LevelRange) []Value {
	return r.Keys
}

// lineSanction keeps one sanctioned escape in an otherwise-checked
// function.
func (h *holder) lineSanction(t *Trie) {
	r := t.SegLevel(0, 0, 1)
	h.kept = r.Keys         //wcojlint:retains consumed before the next compaction fence
	h.kept32 = r.Keys32[:1] // want `arena loan`
}
