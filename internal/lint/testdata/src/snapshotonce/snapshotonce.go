// Fixture for the snapshotonce analyzer: atomic.Pointer snapshot
// discipline and guardedby lock discipline.
package snapshotonce

import (
	"sync"
	"sync/atomic"
)

type state struct{ epoch uint64 }

type query struct {
	state atomic.Pointer[state]
}

// doubleLoad loads the snapshot twice: the two loads can straddle an
// epoch bump.
func (q *query) doubleLoad() uint64 {
	a := q.state.Load().epoch
	b := q.state.Load().epoch // want `loaded 2 times`
	return a + b
}

// loadInLoop reloads the snapshot on every iteration.
func (q *query) loadInLoop() uint64 {
	var sum uint64
	for i := 0; i < 3; i++ {
		sum += q.state.Load().epoch // want `inside a loop`
	}
	return sum
}

// once loads a single snapshot and threads it: the sanctioned pattern.
func (q *query) once() uint64 {
	s := q.state.Load()
	return s.epoch + s.epoch
}

// publish is the CAS publish path: the Load+CompareAndSwap retry loop
// is the one sanctioned re-load.
func (q *query) publish(next *state) {
	for {
		cur := q.state.Load()
		if cur != nil && cur.epoch >= next.epoch {
			return
		}
		if q.state.CompareAndSwap(cur, next) {
			return
		}
	}
}

type db struct {
	mu   sync.Mutex
	data map[string]int //wcojlint:guardedby mu
}

// unguarded touches guarded state without the mutex.
func (d *db) unguarded() int {
	return len(d.data) // want `guarded by mu`
}

// guarded acquires the mutex first.
func (d *db) guarded() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.data)
}

// lockedHelper documents that its callers hold the lock.
//
//wcojlint:locked callers hold d.mu
func (d *db) lockedHelper() int { return len(d.data) }

// sizeLocked follows the *Locked naming convention.
func (d *db) sizeLocked() int { return len(d.data) }

// newDB owns the value it constructs; no lock exists yet.
func newDB() *db {
	d := &db{data: map[string]int{}}
	d.data["x"] = 1
	return d
}

var _ = newDB
