// Fixture for the unusedwrite analyzer: writes through struct copies
// (range values, value receivers) that are never read back.
package unusedwrite

type counter struct {
	n int
	m int
}

// bump increments range-value copies; the originals never change.
func bump(cs []counter) {
	for _, c := range cs {
		c.n++ // want `unused write`
	}
}

// sum writes the copy and then reads it back: clean.
func sum(cs []counter) int {
	t := 0
	for _, c := range cs {
		c.n++
		t += c.n
	}
	return t
}

// reset writes through a value receiver and discards the copy.
func (c counter) reset() {
	c.n = 0 // want `unused write`
	c.m = 0 // want `unused write`
}

// zero has a pointer receiver: the writes stick.
func (c *counter) zero() {
	c.n = 0
	c.m = 0
}

// with mutates the copy and returns it: clean.
func (c counter) with(n int) counter {
	c.n = n
	return c
}
