// Fixture for the statsmerge analyzer: Merge exhaustiveness and
// exhaustive-marked snapshot literals.
package statsmerge

type Stats struct {
	Output       int
	Recursions   int
	Intermediate int
	note         string
}

// Merge folds every numeric field (Intermediate via max): clean.
func (s *Stats) Merge(o *Stats) {
	s.Output += o.Output
	s.Recursions += o.Recursions
	if o.Intermediate > s.Intermediate {
		s.Intermediate = o.Intermediate
	}
}

type Partial struct {
	A, B int
}

// Merge forgets B.
func (p *Partial) Merge(o *Partial) { // want `does not fold field B`
	p.A += o.A
}

// NotMerge has a merge-unlike shape and is ignored.
func (p *Partial) Add(n int) { p.A += n }

//wcojlint:exhaustive
type Snapshot struct {
	Hits   int
	Misses int
}

func full(h, m int) Snapshot {
	return Snapshot{Hits: h, Misses: m}
}

func missing(h int) Snapshot {
	return Snapshot{Hits: h} // want `without field Misses`
}

func unkeyed(h, m int) Snapshot {
	return Snapshot{h, m}
}

// Loose is unmarked: partial literals are fine.
type Loose struct{ A, B int }

func loose() Loose { return Loose{A: 1} }
