// Fixture for the deprecated analyzer: symbols documented with a
// `// Deprecated:` paragraph must not be referenced by internal code
// outside the declarations of deprecated symbols themselves.
package deprecated

// Count is the supported counting entry point.
func Count(n int) int { return n }

// CountFast is the legacy alias.
//
// Deprecated: use Count instead.
func CountFast(n int) int { return Count(n) }

// ExplainCount is a legacy wrapper; deprecated shims may delegate to
// each other without being flagged.
//
// Deprecated: use Explain.
func ExplainCount(n int) int { return CountFast(n) }

// caller still uses the legacy alias.
func caller() int {
	return CountFast(2) // want `CountFast is deprecated: use Count instead`
}

// PQ carries a deprecated method.
type PQ struct{}

// CountFast mirrors the package-level alias.
//
// Deprecated: use PQ.Count.
func (p *PQ) CountFast() int { return 0 }

// Count is the supported method.
func (p *PQ) Count() int { return 0 }

func callMethod(p *PQ) int {
	return p.CountFast() // want `CountFast is deprecated: use PQ.Count`
}

func callGood(p *PQ) int { return p.Count() }

// OldLimit is a retired tuning constant.
//
// Deprecated: the planner sizes this itself.
const OldLimit = 10

func useConst() int {
	return OldLimit // want `OldLimit is deprecated`
}

// OldThing is a retired type; every reference is flagged, including
// type positions.
//
// Deprecated: use Thing.
type OldThing struct{}

func makeOld() int {
	var o OldThing // want `OldThing is deprecated`
	_ = o
	return 0
}

// Thing is the supported replacement.
type Thing struct{}

func makeNew() Thing { return Thing{} }
