// Fixture for the copylocks analyzer: values containing sync or
// sync/atomic types must not be copied by assignment or return.
package copylocks

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	slots map[string]guarded
	cur   guarded
}

// snapshot returns the lock-bearing struct by value.
func (r *registry) snapshot() guarded { // want `returns a lock by value`
	return r.cur // want `return copies lock value`
}

// handle returns a pointer: clean.
func (r *registry) handle() *guarded {
	return &r.cur
}

// stash copies a lock-bearing value into a map slot.
func (r *registry) stash(g *guarded) {
	r.slots["x"] = *g // want `assignment copies lock value`
}

// reset assigns a fresh composite literal: clean (no existing lock
// state is duplicated).
func (r *registry) reset() {
	r.cur = guarded{}
}

type plain struct{ n int }

// copyPlain copies a lock-free struct: clean.
func copyPlain(m map[string]plain, p plain) {
	m["x"] = p
}

type stat struct{ hits atomic.Uint64 }

// grab copies an atomic-bearing struct out by value.
func grab(s *stat) stat { // want `returns a lock by value`
	return *s // want `return copies lock value`
}
