// Fixture for the valueident analyzer: tuples handed to emit-shaped
// callbacks must not be mutated or retained.
package valueident

type Value int64

type Tuple []Value

func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

type sink struct {
	last Tuple
	all  []Tuple
	ch   chan Tuple
}

// keep retains the alias in a field.
func (s *sink) keep(t Tuple) error {
	s.last = t // want `retained past the emit callback`
	return nil
}

// keepClone copies before retaining: clean.
func (s *sink) keepClone(t Tuple) error {
	s.last = t.Clone()
	return nil
}

// scrub writes through the engine's buffer.
func scrub(t Tuple) error {
	t[0] = 0 // want `read-only`
	return nil
}

// collect appends the slice header itself.
func (s *sink) collect(t Tuple) error {
	s.all = append(s.all, t) // want `appended as a single element`
	return nil
}

type flat struct{ buf []Value }

// add copies the elements with a spread append: clean.
func (f *flat) add(t Tuple) error {
	f.buf = append(f.buf, t...)
	return nil
}

// publish sends the alias on a channel.
func (s *sink) publish(t Tuple) bool {
	select {
	case s.ch <- t: // want `sent on a channel`
		return true
	default:
		return false
	}
}

// sneaky launders the alias through a local before retaining it.
func (s *sink) sneaky(t Tuple) error {
	u := t
	s.last = u // want `retained past the emit callback`
	return nil
}

// capture stores the tuple in a variable that outlives the call.
func capture() (func(t Tuple) error, *Tuple) {
	var held Tuple
	f := func(t Tuple) error {
		held = t // want `stored in held`
		return nil
	}
	return f, &held
}

// wrap places the alias in a composite literal.
func wrap(t Tuple) error {
	_ = []Tuple{t} // want `composite literal`
	return nil
}

// relay reads elements and passes the tuple along: clean.
func relay(emit func(Tuple) error) func(Tuple) error {
	n := Value(0)
	return func(t Tuple) error {
		n += t[0]
		return emit(t)
	}
}

// own declares the ownership transfer: its caller guarantees a
// private copy.
//
//wcojlint:retains the batch cloned t before handing it over
func own(m map[string]Tuple, k string, t Tuple) {
	m[k] = t
}
