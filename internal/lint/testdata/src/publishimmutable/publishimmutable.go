// Fixture for the publishimmutable analyzer: state Stored into an
// atomic.Pointer is immutable from the moment of publication.
package publishimmutable

import "sync/atomic"

type state struct {
	n     int
	stats [4]int
	idx   map[string]int
}

type DB struct{ p atomic.Pointer[state] }

// good builds fully, publishes last: clean.
func good(db *DB) {
	ns := &state{n: 1}
	ns.stats[0] = 2
	ns.idx = map[string]int{"a": 1}
	db.p.Store(ns)
}

// writeAfterStore mutates published state.
func writeAfterStore(db *DB) {
	ns := &state{n: 1}
	db.p.Store(ns)
	ns.n = 2 // want `after it was published`
}

// condWrite still races: when the write runs, the state is public.
func condWrite(db *DB, c bool) {
	ns := &state{}
	db.p.Store(ns)
	if c {
		ns.stats[1] = 1 // want `after it was published`
	}
}

// viaAlias launders the published pointer through a local first.
func viaAlias(db *DB) {
	ns := &state{}
	db.p.Store(ns)
	q := ns
	q.n = 1 // want `after it was published`
}

// viaSwap: Swap publishes just like Store.
func viaSwap(db *DB) {
	ns := &state{}
	old := db.p.Swap(ns)
	_ = old
	ns.n = 1 // want `after it was published`
}

// inClosure: the goroutine runs strictly after the Store.
func inClosure(db *DB, run func(func())) {
	ns := &state{}
	db.p.Store(ns)
	run(func() {
		ns.n = 1 // want `after it was published`
	})
}

// mapWrite mutates an element of published state.
func mapWrite(db *DB) {
	ns := &state{idx: map[string]int{}}
	db.p.Store(ns)
	ns.idx["a"] = 1 // want `after it was published`
}

// condStore: the write is reachable without the Store having run, so
// the publication does not dominate it — clean (the build-phase
// pattern with an optional early publish).
func condStore(db *DB, c bool) {
	ns := &state{}
	if c {
		db.p.Store(ns)
		return
	}
	ns.n = 1
}

// rebindFresh publishes one value, then rebinds the variable to a new
// unpublished one: the write targets the fresh copy. The tracker has
// no strong updates, so this is sanctioned with a directive.
func rebindFresh(db *DB) {
	ns := &state{}
	db.p.Store(ns)
	ns = &state{n: 1}
	ns.n = 2 //wcojlint:mutates ns was rebound to an unpublished copy above
	db.p.Store(ns)
}

// writerOwned: a sanctioned post-publish write.
func writerOwned(db *DB) {
	ns := &state{}
	db.p.Store(ns)
	ns.stats[3] = 1 //wcojlint:mutates stats page is read only by the publishing goroutine
}

// readAfterStore only reads: clean.
func readAfterStore(db *DB) int {
	ns := &state{n: 3}
	db.p.Store(ns)
	return ns.n
}
