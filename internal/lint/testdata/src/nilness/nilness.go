// Fixture for the nilness analyzer: dereferences inside the branch
// where a value was just compared equal to nil.
package nilness

type T struct{ n int }

// bad dereferences p in the branch where it is known nil.
func bad(p *T) int {
	if p == nil {
		return p.n // want `nil dereference`
	}
	return p.n
}

// badElse dereferences in the else of a != nil check.
func badElse(p *T) int {
	if p != nil {
		return p.n
	} else {
		return p.n // want `nil dereference`
	}
}

// fixed reassigns before the dereference: clean.
func fixed(p *T) int {
	if p == nil {
		p = &T{}
		return p.n
	}
	return p.n
}

// mapRead reads a nil map, which is defined behavior: clean.
func mapRead(m map[string]int) int {
	if m == nil {
		return m["x"]
	}
	return m["x"]
}

// call invokes a nil func value.
func call(f func() int) int {
	if f == nil {
		return f() // want `calling f`
	}
	return f()
}

// index indexes a nil slice.
func index(s []int) int {
	if s == nil {
		return s[0] // want `nil dereference`
	}
	return s[0]
}
