// Fixture for the fsyncorder analyzer: in a function that touches WAL
// state and publishes engine state, the fsync must dominate the
// publication. Log is a name-matched stand-in for internal/wal.Log.
package fsyncorder

import "sync/atomic"

type Record struct{ b []byte }

type Log struct{ n int }

func (l *Log) Append(r *Record) error { l.n++; return nil }
func (l *Log) Sync() error            { return nil }
func (l *Log) Rotate() error          { l.n = 0; return nil }

type state struct{ n int }

type DB struct {
	wal   *Log
	state atomic.Pointer[state]
	//wcojlint:guardedby mu
	versions map[string]int
}

// good: append, sync, then publish — durability precedes visibility.
func good(db *DB, r *Record) error {
	if err := db.wal.Append(r); err != nil {
		return err
	}
	if err := db.wal.Sync(); err != nil {
		return err
	}
	db.state.Store(&state{n: 1})
	return nil
}

// storeBeforeSync publishes first: the crash window.
func storeBeforeSync(db *DB, r *Record) error {
	_ = db.wal.Append(r)
	db.state.Store(&state{n: 1}) // want `without a preceding WAL sync`
	return db.wal.Sync()
}

// condSync only syncs on one path; the publish is reachable unsynced.
func condSync(db *DB, r *Record, dirty bool) {
	_ = db.wal.Append(r)
	if dirty {
		_ = db.wal.Sync()
	}
	db.state.Store(&state{n: 1}) // want `without a preceding WAL sync`
}

// initSync syncs in the if-init, which runs unconditionally: clean.
func initSync(db *DB, r *Record) error {
	_ = db.wal.Append(r)
	if err := db.wal.Sync(); err != nil {
		return err
	}
	db.state.Store(&state{n: 1})
	return nil
}

// appendAndSync is a helper that transitively syncs.
func appendAndSync(db *DB, r *Record) error {
	if err := db.wal.Append(r); err != nil {
		return err
	}
	return db.wal.Sync()
}

// viaHelper publishes after a call that transitively syncs: clean.
func viaHelper(db *DB, r *Record) error {
	if err := appendAndSync(db, r); err != nil {
		return err
	}
	db.state.Store(&state{n: 1})
	return nil
}

// guardedPublish writes a guardedby field after append without sync.
//
//wcojlint:locked caller holds mu and writeMu
func guardedPublish(db *DB, r *Record) {
	_ = db.wal.Append(r)
	db.versions["r"] = 1 // want `without a preceding WAL sync`
}

// guardedPublishSynced is the corrected version: clean.
//
//wcojlint:locked caller holds mu and writeMu
func guardedPublishSynced(db *DB, r *Record) error {
	_ = db.wal.Append(r)
	if err := db.wal.Sync(); err != nil {
		return err
	}
	db.versions["r"] = 1
	return nil
}

// sanctioned: the no-op path publishes nothing the log must cover.
//
//wcojlint:locked caller holds mu and writeMu
func sanctioned(db *DB, r *Record) {
	_ = db.wal.Append(r)
	db.versions["r"] = 0 //wcojlint:nosync version map rewrite carries no new records
}

// deferSync runs the sync after the function body: too late.
func deferSync(db *DB, r *Record) {
	_ = db.wal.Append(r)
	defer db.wal.Sync()
	db.state.Store(&state{n: 1}) // want `without a preceding WAL sync`
}

// rotateOnly touches the WAL without ever syncing before publish.
func rotateOnly(db *DB) {
	_ = db.wal.Rotate()
	db.state.Store(&state{n: 1}) // want `without a preceding WAL sync`
}

// noWal publishes state without WAL involvement: not a durability
// boundary, clean.
func noWal(db *DB) {
	db.state.Store(&state{n: 1})
}

// syncOnly fsyncs without publishing: clean.
func syncOnly(db *DB) error {
	return db.wal.Sync()
}
