// Fixture for the ctxpoll analyzer: loops that can run unbounded work
// (recursion cycles, callback invocations) must poll a stop flag/ctx.
package ctxpoll

import (
	"context"
	"sync/atomic"
)

type node struct {
	kids []*node
	vals []int
}

type walker struct {
	stop *atomic.Bool
	emit func(int) bool
}

// rec polls at entry, so its recursion loop is satisfied through the
// callee.
func (w *walker) rec(n *node) bool {
	if w.stop.Load() {
		return false
	}
	for _, k := range n.kids {
		if !w.rec(k) {
			return false
		}
	}
	return true
}

type blind struct{ emit func(int) bool }

// rec recurses with no poll anywhere on the cycle.
func (b *blind) rec(n *node) bool {
	for _, k := range n.kids { // want `never polls`
		if !b.rec(k) {
			return false
		}
	}
	return true
}

// each invokes a callback per element with no poll.
func (b *blind) each(vals []int) {
	for _, v := range vals { // want `never polls`
		if !b.emit(v) {
			return
		}
	}
}

// each polls the stop flag directly in the loop body.
func (w *walker) each(vals []int) {
	for i, v := range vals {
		if i&255 == 0 && w.stop.Load() {
			return
		}
		if !w.emit(v) {
			return
		}
	}
}

// pump polls via ctx.Err.
func pump(ctx context.Context, emit func(int) bool) {
	for i := 0; ; i++ {
		if ctx.Err() != nil {
			return
		}
		if !emit(i) {
			return
		}
	}
}

// wait polls via <-ctx.Done() in a select.
func wait(ctx context.Context, ch chan int, emit func(int) bool) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			if !emit(v) {
				return
			}
		}
	}
}

// sum only does plain bounded work; no poll needed.
func sum(vals []int) int {
	t := 0
	for _, v := range vals {
		t += v
	}
	return t
}

// deep uses the rec := func recursion idiom with a poll inside the
// literal; the loop resolves through the local variable.
func deep(ctx context.Context, root *node, emit func(int) bool) {
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if ctx.Err() != nil {
			return false
		}
		for _, k := range n.kids {
			if !rec(k) {
				return false
			}
		}
		for _, v := range n.vals {
			if ctx.Err() != nil || !emit(v) {
				return false
			}
		}
		return true
	}
	rec(root)
}

// deepBlind is the same idiom without any poll.
func deepBlind(root *node, emit func(int) bool) {
	var rec func(n *node) bool
	rec = func(n *node) bool {
		for _, k := range n.kids { // want `never polls`
			if !rec(k) {
				return false
			}
		}
		for _, v := range n.vals { // want `never polls`
			if !emit(v) {
				return false
			}
		}
		return true
	}
	rec(root)
}

// bounded is exempted with a justified nopoll.
func bounded(b *blind, vals []int) {
	//wcojlint:nopoll vals is at most 8 entries by construction
	for _, v := range vals {
		if !b.emit(v) {
			return
		}
	}
}

// lazy tries to suppress without giving a reason.
func lazy(b *blind, vals []int) {
	//wcojlint:nopoll
	for _, v := range vals { // want `requires a reason`
		if !b.emit(v) {
			return
		}
	}
}
