package lint

import (
	"go/ast"
	"go/types"

	"wcoj/internal/lint/analysis"
)

// CopyLocks extends vet's copylocks to the cases vet leaves on the
// table: functions that *return* a lock-containing value, and struct
// fields that receive a lock-containing value by assignment from an
// existing value. Copying a sync.Mutex (or anything embedding one,
// including the sync/atomic types, which carry a noCopy sentinel)
// forks its state: the copy and the original no longer exclude each
// other, which in this engine would split a DB's lock from its data.
var CopyLocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "no lock-containing values returned or assigned by value",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockResults(pass, n.Type, n.Name.Name)
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if copiesLock(pass, res) {
						pass.Reportf(res.Pos(), "return copies lock value: %s", lockPath(exprType(pass, res)))
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) || !copiesLock(pass, rhs) {
						continue
					}
					// Only flag stores into fields/elements — vet
					// already covers plain variable assignment.
					switch n.Lhs[i].(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						pass.Reportf(rhs.Pos(), "assignment copies lock value: %s", lockPath(exprType(pass, rhs)))
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkLockResults flags by-value lock-containing result types.
func checkLockResults(pass *analysis.Pass, ft *ast.FuncType, name string) {
	if ft.Results == nil {
		return
	}
	for _, res := range ft.Results.List {
		t := exprType(pass, res.Type)
		if t == nil {
			continue
		}
		if path := lockPath(t); path != "" {
			pass.Reportf(res.Type.Pos(), "%s returns a lock by value: %s; return a pointer", name, path)
		}
	}
}

// copiesLock reports whether evaluating e yields a by-value copy of an
// existing lock-containing value. Fresh values (composite literals,
// conversions of literals) are construction, not copying.
func copiesLock(pass *analysis.Pass, e ast.Expr) bool {
	switch e.(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
		return false
	case *ast.UnaryExpr:
		return false // &x is a pointer, no copy
	}
	t := exprType(pass, e)
	return t != nil && lockPath(t) != ""
}

// lockPath returns a human-readable path to the first lock found
// inside t ("" when t is lock-free). Pointers, slices, maps, and
// channels reference their payload, so they do not copy it.
func lockPath(t types.Type) string {
	return lockPathRec(t, make(map[types.Type]bool))
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Value", "Pointer":
					return "sync/atomic." + obj.Name()
				}
			}
		}
		if inner := lockPathRec(named.Underlying(), seen); inner != "" {
			return obj.Name() + " (contains " + inner + ")"
		}
		return ""
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if inner := lockPathRec(t.Field(i).Type(), seen); inner != "" {
				return t.Field(i).Name() + "." + inner
			}
		}
	case *types.Array:
		return lockPathRec(t.Elem(), seen)
	}
	return ""
}
