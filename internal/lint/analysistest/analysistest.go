// Package analysistest runs an analyzer over a fixture package and
// compares its diagnostics against `// want` expectations embedded in
// the fixture source, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest:
//
//	x = load()     // want `loaded twice`
//	y = load()     // want `loaded twice` `second expectation`
//
// Each expectation is a back-quoted or double-quoted regular
// expression that must match the message of a diagnostic reported on
// that line; every diagnostic must be matched by exactly one
// expectation and vice versa. Lines without a want comment must
// produce no diagnostics, so fixtures double as negative tests.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"wcoj/internal/lint/analysis"
	"wcoj/internal/lint/loader"
)

// wantRx extracts the quoted expectations from a want comment tail.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dir (a fixture package directory, conventionally
// testdata/src/<name>) as package pkgPath and checks a's diagnostics
// against the fixture's want comments.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	unit, err := loader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Unit{unit})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	expects, err := collectWants(unit.Fset, unit)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		file := filepath.Base(d.Position.Filename)
		found := false
		for _, e := range expects {
			if e.matched || e.file != file || e.line != d.Position.Line {
				continue
			}
			if e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				a.Name, e.file, e.line, e.raw)
		}
	}
}

// collectWants scans every comment in the unit for want expectations.
func collectWants(fset *token.FileSet, unit *analysis.Unit) ([]*expectation, error) {
	var out []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					if !strings.HasPrefix(text, "//") || !strings.HasPrefix(strings.TrimSpace(text[2:]), "want ") {
						continue
					}
					idx = 0
					text = "// want " + strings.TrimSpace(text[2:])[len("want "):]
				}
				tail := text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				matches := wantRx.FindAllStringSubmatch(tail, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{
						file: filepath.Base(pos.Filename), line: pos.Line, rx: rx, raw: raw,
					})
				}
			}
		}
	}
	return out, nil
}
