package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"wcoj/internal/lint/analysis"
)

// Nilness flags uses of a value inside the very branch that just
// proved it nil: within `if x == nil { ... }` (or the else branch of
// `if x != nil`), dereferencing, indexing, calling, or selecting
// through x is a guaranteed nil-pointer panic unless x was reassigned
// first. This is the deterministic core of x/tools' nilness pass — no
// SSA, so only branch-local facts are used, which keeps it free of
// false positives.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "no dereference of a value inside the branch that proved it nil",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			bin, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var nilVar *ast.Ident
			var branch *ast.BlockStmt
			switch {
			case bin.Op == token.EQL:
				nilVar, branch = nilComparand(pass, bin), ifs.Body
			case bin.Op == token.NEQ:
				if b, ok := ifs.Else.(*ast.BlockStmt); ok {
					nilVar, branch = nilComparand(pass, bin), b
				}
			}
			if nilVar == nil || branch == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[nilVar]
			if obj == nil {
				return true
			}
			checkNilBranch(pass, obj, nilVar.Name, branch)
			return true
		})
	}
	return nil
}

// nilComparand returns the identifier compared against nil, if the
// comparison has the shape `x OP nil` or `nil OP x`.
func nilComparand(pass *analysis.Pass, bin *ast.BinaryExpr) *ast.Ident {
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
	}
	if isNil(bin.Y) {
		if id, ok := bin.X.(*ast.Ident); ok {
			return id
		}
	}
	if isNil(bin.X) {
		if id, ok := bin.Y.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

// checkNilBranch scans branch statements in order, flagging uses of
// obj that dereference it; it stops at the first reassignment (obj may
// be non-nil afterwards).
func checkNilBranch(pass *analysis.Pass, obj types.Object, name string, branch *ast.BlockStmt) {
	reassigned := false
	for _, stmt := range branch.List {
		if reassigned {
			return
		}
		// A statement that assigns obj ends the known-nil region; the
		// assignment's RHS is still checked first.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] != nil && pass.TypesInfo.Defs[id] == obj {
						reassigned = true
					}
				}
			}
			for _, rhs := range as.Rhs {
				flagNilDerefs(pass, obj, name, rhs)
			}
			continue
		}
		walkSameFunc(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				flagNilDerefs(pass, obj, name, e)
				return false // flagNilDerefs walks the subtree itself
			}
			return true
		})
	}
}

// flagNilDerefs reports derefs of obj within expression e.
func flagNilDerefs(pass *analysis.Pass, obj types.Object, name string, e ast.Expr) {
	used := func(x ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred execution: obj may be set by then
		case *ast.StarExpr:
			if used(n.X) {
				pass.Reportf(n.Pos(), "nil dereference: *%s inside the branch where %s == nil", name, name)
			}
		case *ast.SelectorExpr:
			// Selecting through a nil pointer panics; through a nil
			// interface too. (Method values on nil pointers with
			// pointer receivers are legal but vanishingly rare here.)
			if used(n.X) && isPointerLike(obj.Type()) {
				pass.Reportf(n.Pos(), "nil dereference: %s.%s inside the branch where %s == nil", name, n.Sel.Name, name)
			}
		case *ast.IndexExpr:
			if used(n.X) {
				if _, isMap := obj.Type().Underlying().(*types.Map); !isMap { // reading a nil map is legal
					pass.Reportf(n.Pos(), "nil dereference: %s[...] inside the branch where %s == nil", name, name)
				}
			}
		case *ast.CallExpr:
			if used(n.Fun) {
				pass.Reportf(n.Pos(), "nil dereference: calling %s inside the branch where %s == nil", name, name)
			}
		}
		return true
	})
}

// isPointerLike reports whether selecting a field/method through a nil
// value of t panics.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return true
	}
	return false
}
