package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"wcoj/internal/lint/analysis"
)

// validKinds is the directive vocabulary the parser may emit —
// anything else in a parsed directive is a fuzz failure.
var validKinds = map[string]bool{
	"nopoll": true, "locked": true, "guardedby": true,
	"exhaustive": true, "retains": true, "nosync": true, "mutates": true,
}

// FuzzDirectiveParse hardens the //wcojlint: directive parser (the
// prefix and column-alignment binding rules of DESIGN.md §9) against
// arbitrary source: it must never panic, must emit only the known
// vocabulary with valid positions, must be idempotent, and every
// directive it indexes must be findable again through at() on its own
// line.
func FuzzDirectiveParse(f *testing.F) {
	seeds := []string{
		"package p\n\n//wcojlint:nopoll tight inner loop\nfunc f() {}\n",
		"package p\n\ntype s struct {\n\tmu int\n\tn  int //wcojlint:guardedby mu\n}\n",
		"package p\n\n//lint:locked caller holds mu\nfunc g() {}\n",
		"package p\n\n//wcojlint:retains spans consumed in call\nfunc h() {}\n",
		"package p\n\nfunc i() {\n\tx := 1 //wcojlint:nosync replay path\n\t_ = x\n}\n",
		"package p\n\nfunc j() {\n\t//wcojlint:mutates writer-owned page\n\tx := 1\n\t_ = x\n}\n",
		"package p\n\n//wcojlint:exhaustive\ntype t struct{ a, b int }\n",
		"package p\n\n//wcojlint:bogus unknown kinds are dropped\nfunc k() {}\n",
		"package p\n\n//wcojlint:\nfunc l() {}\n",
		"package p\n\n/* wcojlint:nopoll block comments never bind */\nfunc m() {}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip()
		}
		pass := &analysis.Pass{Fset: fset, Files: []*ast.File{file}}
		idx := parseDirectives(pass)

		count := 0
		for fname, lines := range idx {
			for line, ds := range lines {
				for _, d := range ds {
					count++
					if !validKinds[d.kind] {
						t.Fatalf("parsed directive with unknown kind %q", d.kind)
					}
					if !d.pos.IsValid() {
						t.Fatalf("directive %s on %s:%d has invalid position", d.kind, fname, line)
					}
					if d.col < 1 {
						t.Fatalf("directive %s on %s:%d has column %d", d.kind, fname, line, d.col)
					}
					// Same-line binding: a node starting where the
					// comment ends must see the directive.
					if _, ok := idx.at(fset, d.pos, d.kind); !ok {
						t.Fatalf("directive %s on %s:%d not found by at() on its own line", d.kind, fname, line)
					}
				}
			}
		}

		// Idempotence: re-parsing the same pass yields the same index.
		idx2 := parseDirectives(pass)
		count2 := 0
		for _, lines := range idx2 {
			for _, ds := range lines {
				count2 += len(ds)
			}
		}
		if count2 != count {
			t.Fatalf("parseDirectives not idempotent: %d directives, then %d", count, count2)
		}
	})
}
