// Package lint implements wcojlint, the project-specific static
// analysis suite. Each analyzer mechanically enforces one invariant
// that the engine's concurrency and snapshot-isolation design relies
// on but the compiler cannot check:
//
//   - snapshotonce: prepared-query state is read through its
//     atomic.Pointer exactly once per call, and DB fields marked
//     guardedby are only touched with their mutex held;
//   - ctxpoll: loops that can recurse into trie iteration poll the
//     stop flag / ctx so cancellation unwinds promptly;
//   - statsmerge: Stats.Merge folds every counter field, and
//     exhaustive-marked stats snapshots populate every field;
//   - valueident: tuples handed to emit callbacks are never mutated
//     or retained by alias;
//   - arenaescape: slices loaned from the CSR arenas
//     (trie.LevelRange.Keys/Keys32 and LevelRange-typed results) must
//     not outlive their snapshot scope (dataflow-tracked);
//   - fsyncorder: in functions that touch WAL state and publish it,
//     the fsync must dominate the publication;
//   - publishimmutable: no writes through a pointer after it is
//     Stored into an atomic.Pointer snapshot;
//   - deprecated: internal code must not call symbols documented
//     `// Deprecated:` (CountFast, ExplainCount, ...).
//
// The last four are built on internal/lint/dataflow (def-use chains,
// an escape lattice and AST-structural happens-before), so they track
// values through assignments where the PR 6 analyzers only matched
// AST shapes.
//
// Plus three general-purpose passes (nilness, unusedwrite, copylocks)
// so one binary runs everything.
//
// Analyzers are configured in source via machine-readable directive
// comments, accepted with either prefix `//lint:` or `//wcojlint:`
// (the latter is what the codebase uses, since staticcheck reserves
// the bare `//lint:` namespace for its own directives):
//
//	//wcojlint:nopoll <reason>     exempt the next for-loop from ctxpoll
//	//wcojlint:locked <reason>     function runs with the lock held by its caller
//	//wcojlint:guardedby <mutex>   struct field is guarded by the named mutex field
//	//wcojlint:exhaustive          composite literals of this struct must set every field
//	//wcojlint:retains <reason>    function takes ownership of its tuple argument
//	                               (or, on a line, sanctions one arena-loan escape)
//	//wcojlint:nosync <reason>     publish is intentionally not preceded by a WAL sync
//	//wcojlint:mutates <reason>    sanctioned write through an already-published pointer
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wcoj/internal/lint/analysis"
)

// Suite returns every analyzer wcojlint runs, custom passes first.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		SnapshotOnce,
		CtxPoll,
		StatsMerge,
		ValueIdent,
		ArenaEscape,
		FsyncOrder,
		PublishImmutable,
		Deprecated,
		Nilness,
		UnusedWrite,
		CopyLocks,
	}
}

// directive is one parsed machine-readable comment.
type directive struct {
	kind string // nopoll | locked | guardedby | exhaustive | retains | nosync | mutates
	arg  string // reason or mutex field name
	pos  token.Pos
	col  int // start column: distinguishes own-line from trailing comments
}

// directiveIndex maps file -> line -> directives ending on that line.
type directiveIndex map[string]map[int][]directive

// parseDirectives scans every comment in the pass for lint directives.
func parseDirectives(pass *analysis.Pass) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var rest string
				switch {
				case strings.HasPrefix(text, "//wcojlint:"):
					rest = text[len("//wcojlint:"):]
				case strings.HasPrefix(text, "//lint:"):
					rest = text[len("//lint:"):]
				default:
					continue
				}
				kind, arg, _ := strings.Cut(rest, " ")
				switch kind {
				case "nopoll", "locked", "guardedby", "exhaustive", "retains", "nosync", "mutates":
				default:
					continue // staticcheck's own //lint: directives etc.
				}
				pos := pass.Fset.Position(c.End())
				m := idx[pos.Filename]
				if m == nil {
					m = make(map[int][]directive)
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], directive{
					kind: kind, arg: strings.TrimSpace(arg), pos: c.Pos(),
					col: pass.Fset.Position(c.Pos()).Column,
				})
			}
		}
	}
	return idx
}

// at returns the directive attached to the node starting at pos:
// trailing on the same line, or on the line directly above when the
// comment stands on its own at the node's indentation (a trailing
// comment on the previous line belongs to that line's code, not to
// this node).
func (idx directiveIndex) at(fset *token.FileSet, pos token.Pos, kind string) (directive, bool) {
	p := fset.Position(pos)
	m := idx[p.Filename]
	if m == nil {
		return directive{}, false
	}
	for _, d := range m[p.Line] {
		if d.kind == kind {
			return d, true
		}
	}
	for _, d := range m[p.Line-1] {
		if d.kind == kind && d.col == p.Column {
			return d, true
		}
	}
	return directive{}, false
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedIn reports whether t (after deref) is the named type
// pkgPath.name; generic instantiations match their origin name.
func namedIn(t types.Type, pkgPath string, names ...string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return namedIn(t, "context", "Context") }

// selectionOf returns the type of the selector's operand (X), using
// type info; nil when unknown.
func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// receiverNamed returns the receiver base type name of a method
// declaration, or "".
func receiverNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := exprType(pass, fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if n, ok := deref(t).(*types.Named); ok {
		return n
	}
	return nil
}

// walkSameFunc walks the subtree of n but does not descend into
// nested function literals: their bodies execute on their own
// schedule, not as part of the enclosing statement.
func walkSameFunc(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}

// structFieldOwner resolves a selector to its field object when the
// selection is a field access; nil otherwise.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok {
		return v
	}
	return nil
}
