package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wcoj/internal/lint/analysis"
)

// SnapshotOnce enforces the prepared-query snapshot discipline and the
// DB lock discipline:
//
//  1. A struct field of type atomic.Pointer[T] (the prepared-query
//     `state` field) must be Load()ed at most once per function and
//     never inside a loop. Two loads in one call can straddle an epoch
//     bump and mix state from two snapshots; the correct pattern loads
//     once and threads the *T value. Functions that also Store or
//     CompareAndSwap the same field are the publish path and are
//     exempt, as are functions annotated //wcojlint:locked.
//
//  2. A struct field annotated `//wcojlint:guardedby mu` may only be
//     read or written in functions that visibly acquire that mutex
//     (mu.Lock / mu.RLock on the same receiver), are annotated
//     //wcojlint:locked (callers hold the lock), follow the
//     *Locked-name convention, or operate on a value they themselves
//     allocated (constructors).
var SnapshotOnce = &analysis.Analyzer{
	Name: "snapshotonce",
	Doc:  "atomic.Pointer snapshots loaded once per call; guardedby fields touched only under their mutex",
	Run:  runSnapshotOnce,
}

func runSnapshotOnce(pass *analysis.Pass) error {
	dirs := parseDirectives(pass)

	// Collect guardedby annotations: field object -> mutex field name.
	guarded := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, ok := dirs.at(pass.Fset, field.Pos(), "guardedby")
				if !ok || d.arg == "" {
					continue
				}
				mu := strings.Fields(d.arg)[0] // prose may follow the mutex name
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncSnapshots(pass, dirs, fd, guarded)
		}
	}
	return nil
}

// atomicPointerField resolves call to a `recv.field.Method(...)` chain
// where field is a struct field of type atomic.Pointer[T]; it returns
// the field object and method name.
func atomicPointerField(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fv := fieldObject(pass, inner)
	if fv == nil || !namedIn(fv.Type(), "sync/atomic", "Pointer") {
		return nil, ""
	}
	return fv, sel.Sel.Name
}

// lockedExempt reports whether fd is allowed to touch guarded state
// without a visible lock acquisition.
func lockedExempt(pass *analysis.Pass, dirs directiveIndex, fd *ast.FuncDecl) bool {
	if _, ok := dirs.at(pass.Fset, fd.Pos(), "locked"); ok {
		return true
	}
	if cg := fd.Doc; cg != nil {
		if _, ok := dirs.at(pass.Fset, fd.Pos(), "locked"); ok {
			return true
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "wcojlint:locked") || strings.Contains(c.Text, "lint:locked") {
				return true
			}
		}
	}
	return strings.HasSuffix(fd.Name.Name, "Locked")
}

func checkFuncSnapshots(pass *analysis.Pass, dirs directiveIndex, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	type loadSite struct {
		pos    token.Pos
		inLoop bool
	}
	loads := make(map[*types.Var][]loadSite) // atomic.Pointer field -> Load sites
	publishes := make(map[*types.Var]bool)   // fields this func Stores/CASes
	lockCalls := make(map[string]bool)       // mutex field names Lock()ed here
	guardedUses := make(map[*types.Var][]ast.Node)
	allocated := make(map[types.Object]bool) // receivers/vars constructed locally

	// Locally allocated values: v := &T{...} or v := new(T) — a
	// constructor owns the value exclusively; no lock needed yet.
	walkSameFunc(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.UnaryExpr:
				if rhs.Op == token.AND {
					if _, isLit := rhs.X.(*ast.CompositeLit); isLit {
						allocated[pass.TypesInfo.Defs[id]] = true
					}
				}
			case *ast.CompositeLit:
				allocated[pass.TypesInfo.Defs[id]] = true
			case *ast.CallExpr:
				if fn, ok := rhs.Fun.(*ast.Ident); ok && fn.Name == "new" {
					allocated[pass.TypesInfo.Defs[id]] = true
				}
			}
		}
		return true
	})

	var loopDepth int
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// Closures run on their own schedule; analyze their
			// bodies as part of this function (they share the
			// snapshot discipline) but not the loop context.
			saved := loopDepth
			loopDepth = 0
			visitChildren(n.Body, visit)
			loopDepth = saved
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			visitChildren(n, visit)
			loopDepth--
			return
		case *ast.CallExpr:
			if fv, method := atomicPointerField(pass, n); fv != nil {
				switch method {
				case "Load":
					loads[fv] = append(loads[fv], loadSite{pos: n.Pos(), inLoop: loopDepth > 0})
				case "Store", "Swap", "CompareAndSwap":
					publishes[fv] = true
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					if inner, ok := sel.X.(*ast.SelectorExpr); ok {
						lockCalls[inner.Sel.Name] = true
					} else if id, ok := sel.X.(*ast.Ident); ok {
						lockCalls[id.Name] = true
					}
				}
			}
		case *ast.SelectorExpr:
			if fv := fieldObject(pass, n); fv != nil {
				if _, ok := guarded[fv]; ok {
					// Skip when the selector base is a locally
					// allocated value (constructor).
					if base, ok := n.X.(*ast.Ident); ok && allocated[pass.TypesInfo.Uses[base]] {
						break
					}
					guardedUses[fv] = append(guardedUses[fv], n)
				}
			}
		}
		visitChildren(n, visit)
	}
	visitChildren(fd.Body, visit)

	exempt := lockedExempt(pass, dirs, fd)

	for fv, sites := range loads {
		if publishes[fv] || exempt {
			continue // publish path: Load+CAS retry loops are the one sanctioned re-load
		}
		for i, s := range sites {
			if s.inLoop {
				pass.Reportf(s.pos, "atomic snapshot field %s.Load() inside a loop: a reloaded snapshot can straddle an epoch; load once before the loop and reuse the value", fv.Name())
			} else if i > 0 {
				pass.Reportf(s.pos, "atomic snapshot field %s loaded %d times in %s: two loads can observe different epochs and mix snapshots; load once and thread the value", fv.Name(), len(sites), fd.Name.Name)
			}
		}
	}

	for fv, uses := range guardedUses {
		mu := guarded[fv]
		if exempt || lockCalls[mu] {
			continue
		}
		pass.Reportf(uses[0].Pos(), "field %s is guarded by %s but %s neither locks %s nor is marked //wcojlint:locked", fv.Name(), mu, fd.Name.Name, mu)
	}
}

// visitChildren applies visit to the direct children of n.
func visitChildren(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		visit(m)
		return false
	})
}
