// Package loader type-checks Go packages for wcojlint without
// depending on golang.org/x/tools/go/packages. It drives the go
// command directly: `go list -export -deps -json` enumerates the
// requested packages and yields compiled export data for every
// dependency (standard library included), target sources are parsed
// with go/parser, and go/types checks them against an export-data
// importer. This is the same pipeline go/packages uses under
// LoadAllSyntax, restricted to what a lint driver needs: syntax and
// full type information for the requested packages only.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"wcoj/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types through compiled export data files
// produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(e)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load enumerates patterns (relative to dir; empty dir means the
// current directory) and returns a type-checked unit per matched
// non-dependency package. Test files are not loaded: the invariants
// wcojlint enforces are production-code invariants, and tests
// intentionally exercise their violations.
func Load(dir string, patterns ...string) ([]*analysis.Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var targets []*listPackage
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var units []*analysis.Unit
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %v", t.ImportPath, err)
		}
		units = append(units, &analysis.Unit{
			PkgPath: t.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info,
		})
	}
	return units, nil
}

// LoadDir parses and type-checks every non-test .go file directly in
// dir as one package with import path pkgPath, resolving its imports
// (standard library only) through export data. This is the fixture
// loader: analysistest packages live under testdata, which the go
// command ignores, so they cannot be loaded by pattern.
func LoadDir(dir, pkgPath string) (*analysis.Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", pkgPath, err)
	}
	return &analysis.Unit{PkgPath: pkgPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
