package trie

import (
	"wcoj/internal/relation"
)

// LevelRange is one participant in a multiway sorted intersection: a
// column (with duplicates, ascending) restricted to rows [Lo,Hi).
type LevelRange struct {
	Col []relation.Value
	Lo  int
	Hi  int
}

// Size returns the number of rows in the range.
func (lr LevelRange) Size() int { return lr.Hi - lr.Lo }

// IntersectLevels computes the sorted distinct values common to all
// level ranges, appending to dst. It runs the classic leapfrog search:
// repeatedly seek the minimum cursor up to the current maximum value,
// emitting when all cursors agree. Per emitted or skipped value the
// cost is O(k log N), so the total cost is proportional (up to logs) to
// the smallest range — the intersection primitive Algorithm 1 and
// Generic-Join assume.
func IntersectLevels(dst []relation.Value, ranges []LevelRange) []relation.Value {
	k := len(ranges)
	if k == 0 {
		return dst
	}
	cur := make([]int, k)
	for i, r := range ranges {
		if r.Lo >= r.Hi {
			return dst
		}
		cur[i] = r.Lo
	}
	if k == 1 {
		r := ranges[0]
		i := r.Lo
		for i < r.Hi {
			v := r.Col[i]
			dst = append(dst, v)
			i = upperBound(r.Col, i, r.Hi, v)
		}
		return dst
	}
	// p is the cursor we are about to move; max is the current largest
	// key among cursors.
	p := 0
	max := ranges[k-1].Col[cur[k-1]]
	// Start cursors at their first values and establish max.
	for i := range ranges {
		v := ranges[i].Col[cur[i]]
		if v > max {
			max = v
		}
	}
	for {
		r := ranges[p]
		c := lowerBound(r.Col, cur[p], r.Hi, max)
		if c >= r.Hi {
			return dst
		}
		v := r.Col[c]
		cur[p] = c
		if v == max {
			// Check whether all cursors now sit on max.
			all := true
			for i := range ranges {
				if ranges[i].Col[cur[i]] != max {
					all = false
					break
				}
			}
			if all {
				dst = append(dst, max)
				// Advance every cursor past max.
				for i := range ranges {
					cur[i] = upperBound(ranges[i].Col, cur[i], ranges[i].Hi, max)
					if cur[i] >= ranges[i].Hi {
						return dst
					}
				}
				max = ranges[0].Col[cur[0]]
				for i := 1; i < k; i++ {
					if w := ranges[i].Col[cur[i]]; w > max {
						max = w
					}
				}
				p = 0
				continue
			}
		}
		if v > max {
			max = v
		}
		p = (p + 1) % k
	}
}

// IntersectLevelsCount returns the size of the multiway intersection
// without materializing its values — the tail level of a counting run
// needs only the cardinality, so the append traffic of IntersectLevels
// is pure waste there. Same leapfrog search, same cost bound.
func IntersectLevelsCount(ranges []LevelRange) int {
	k := len(ranges)
	if k == 0 {
		return 0
	}
	for _, r := range ranges {
		if r.Lo >= r.Hi {
			return 0
		}
	}
	if k == 1 {
		return DistinctCount(ranges[0].Col, ranges[0].Lo, ranges[0].Hi)
	}
	cur := make([]int, k)
	for i, r := range ranges {
		cur[i] = r.Lo
	}
	n := 0
	p := 0
	max := ranges[k-1].Col[cur[k-1]]
	for i := range ranges {
		if v := ranges[i].Col[cur[i]]; v > max {
			max = v
		}
	}
	for {
		r := ranges[p]
		c := lowerBound(r.Col, cur[p], r.Hi, max)
		if c >= r.Hi {
			return n
		}
		v := r.Col[c]
		cur[p] = c
		if v == max {
			all := true
			for i := range ranges {
				if ranges[i].Col[cur[i]] != max {
					all = false
					break
				}
			}
			if all {
				n++
				for i := range ranges {
					cur[i] = upperBound(ranges[i].Col, cur[i], ranges[i].Hi, max)
					if cur[i] >= ranges[i].Hi {
						return n
					}
				}
				max = ranges[0].Col[cur[0]]
				for i := 1; i < k; i++ {
					if w := ranges[i].Col[cur[i]]; w > max {
						max = w
					}
				}
				p = 0
				continue
			}
		}
		if v > max {
			max = v
		}
		p = (p + 1) % k
	}
}

// IntersectLevelsAny reports whether the multiway intersection is
// non-empty, stopping at the first common value — the tail level of an
// existence check.
func IntersectLevelsAny(ranges []LevelRange) bool {
	k := len(ranges)
	if k == 0 {
		return false
	}
	for _, r := range ranges {
		if r.Lo >= r.Hi {
			return false
		}
	}
	if k == 1 {
		return true
	}
	cur := make([]int, k)
	for i, r := range ranges {
		cur[i] = r.Lo
	}
	p := 0
	max := ranges[k-1].Col[cur[k-1]]
	for i := range ranges {
		if v := ranges[i].Col[cur[i]]; v > max {
			max = v
		}
	}
	for {
		r := ranges[p]
		c := lowerBound(r.Col, cur[p], r.Hi, max)
		if c >= r.Hi {
			return false
		}
		v := r.Col[c]
		cur[p] = c
		if v == max {
			all := true
			for i := range ranges {
				if ranges[i].Col[cur[i]] != max {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		if v > max {
			max = v
		}
		p = (p + 1) % k
	}
}

// SmallestRange returns the index of the range with the fewest rows,
// used by variable-ordering heuristics.
func SmallestRange(ranges []LevelRange) int {
	best, arg := -1, -1
	for i, r := range ranges {
		if s := r.Size(); best < 0 || s < best {
			best, arg = s, i
		}
	}
	return arg
}

// DistinctCount returns the number of distinct values in a column range
// (by group-skipping, O(d log N) for d distinct values).
func DistinctCount(col []relation.Value, lo, hi int) int {
	n := 0
	i := lo
	for i < hi {
		i = upperBound(col, i, hi, col[i])
		n++
	}
	return n
}

// Distinct appends the distinct values of a column range to dst.
func Distinct(dst []relation.Value, col []relation.Value, lo, hi int) []relation.Value {
	i := lo
	for i < hi {
		v := col[i]
		dst = append(dst, v)
		i = upperBound(col, i, hi, v)
	}
	return dst
}
