package trie

import (
	"wcoj/internal/relation"
)

// LevelRange is one participant in a multiway sorted intersection: a
// dense, strictly increasing, duplicate-free key array restricted to
// segments [Lo,Hi) — one trie level's segment keys within a parent's
// children span (see Trie.SegLevel). Exactly one of Keys and Keys32 is
// non-nil: wide tries expose Keys, uint32-narrowed tries Keys32.
type LevelRange struct {
	Keys   []relation.Value
	Keys32 []uint32
	Lo     int
	Hi     int
}

// Size returns the number of keys in the range.
func (lr LevelRange) Size() int { return lr.Hi - lr.Lo }

// key is the element type the intersection kernels are generic over:
// wide (int64) trie keys or uint32-narrowed ones.
type key interface {
	~int64 | ~uint32
}

// span is a kernel-internal cursor over one key range; the kernels
// advance lo in place.
type span[K key] struct {
	keys []K
	lo   int
	hi   int
}

// gallopRatio is the size skew at which a binary intersection switches
// from the linear merge to galloping the small side through the large
// one: with |small|*gallopRatio <= |large| the O(|small| log |large|)
// gallop beats the O(|small|+|large|) merge by enough to pay for its
// worse constant factor.
const gallopRatio = 8

// gallopLB returns the first index i in [lo,hi) with keys[i] >= v by
// exponential probing from lo followed by a binary search over the
// final block — O(1 + log jump) instead of O(log (hi-lo)), which is
// what makes forward-moving cursors (leapfrog seeks, narrowing sweeps)
// amortized cheap.
func gallopLB[K key](keys []K, lo, hi int, v K) int {
	if lo >= hi || keys[lo] >= v {
		return lo
	}
	// Invariant: keys[i] < v.
	i, step := lo, 1
	for i+step < hi && keys[i+step] < v {
		i += step
		step <<= 1
	}
	j := i + step
	if j > hi {
		j = hi
	}
	lo, hi = i+1, j
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// mixedWidth reports whether ranges mixes narrowed and wide key
// arrays (possible when one query joins narrowed and wide relations).
func mixedWidth(ranges []LevelRange) bool {
	narrow := ranges[0].Keys32 != nil
	for _, r := range ranges[1:] {
		if (r.Keys32 != nil) != narrow {
			return true
		}
	}
	return false
}

// widenRanges converts every narrowed range to a wide copy — the
// correctness-first slow path for mixed-width intersections. Already
// wide ranges pass through with their arena-loaned Keys intact.
//
//wcojlint:retains passthrough loans are consumed by the same intersection call, under one snapshot
func widenRanges(ranges []LevelRange) []LevelRange {
	out := make([]LevelRange, len(ranges))
	for i, r := range ranges {
		if r.Keys32 == nil {
			out[i] = r
			continue
		}
		w := make([]relation.Value, r.Hi-r.Lo)
		for j := range w {
			w[j] = relation.Value(r.Keys32[r.Lo+j])
		}
		out[i] = LevelRange{Keys: w, Lo: 0, Hi: len(w)}
	}
	return out
}

// toSpans64 rewraps the loaned Keys arenas as intersection cursors.
//
//wcojlint:retains spans are cursors consumed within the same intersection call, under one snapshot
func toSpans64(ranges []LevelRange) []span[relation.Value] {
	spans := make([]span[relation.Value], len(ranges))
	for i, r := range ranges {
		spans[i] = span[relation.Value]{keys: r.Keys, lo: r.Lo, hi: r.Hi}
	}
	return spans
}

// toSpans32 rewraps the loaned Keys32 arenas as intersection cursors.
//
//wcojlint:retains spans are cursors consumed within the same intersection call, under one snapshot
func toSpans32(ranges []LevelRange) []span[uint32] {
	spans := make([]span[uint32], len(ranges))
	for i, r := range ranges {
		spans[i] = span[uint32]{keys: r.Keys32, lo: r.Lo, hi: r.Hi}
	}
	return spans
}

// IntersectLevels computes the sorted values common to all level
// ranges, appending to dst. Keys are duplicate-free, so the k = 1 case
// is a bulk copy, k = 2 picks linear merge or galloping by size skew
// (gallopRatio), and k >= 3 runs the leapfrog search with galloping
// seeks. Per emitted or skipped value the cost is O(k log N), so the
// total is proportional (up to logs) to the smallest range — the
// intersection primitive Algorithm 1 and Generic-Join assume.
func IntersectLevels(dst []relation.Value, ranges []LevelRange) []relation.Value {
	k := len(ranges)
	if k == 0 {
		return dst
	}
	for i := range ranges {
		if ranges[i].Lo >= ranges[i].Hi {
			return dst
		}
	}
	if mixedWidth(ranges) {
		return IntersectLevels(dst, widenRanges(ranges))
	}
	if ranges[0].Keys32 != nil {
		return intersectSpans(dst, toSpans32(ranges))
	}
	return intersectSpans(dst, toSpans64(ranges))
}

// IntersectLevelsCount returns the size of the multiway intersection
// without materializing its values — the tail level of a counting run
// needs only the cardinality, so the append traffic of IntersectLevels
// is pure waste there. Same strategy selection, same cost bound.
func IntersectLevelsCount(ranges []LevelRange) int {
	k := len(ranges)
	if k == 0 {
		return 0
	}
	for i := range ranges {
		if ranges[i].Lo >= ranges[i].Hi {
			return 0
		}
	}
	if mixedWidth(ranges) {
		return IntersectLevelsCount(widenRanges(ranges))
	}
	if ranges[0].Keys32 != nil {
		return countSpans(toSpans32(ranges))
	}
	return countSpans(toSpans64(ranges))
}

// IntersectLevelsAny reports whether the multiway intersection is
// non-empty, stopping at the first common value — the tail level of an
// existence check.
func IntersectLevelsAny(ranges []LevelRange) bool {
	k := len(ranges)
	if k == 0 {
		return false
	}
	for i := range ranges {
		if ranges[i].Lo >= ranges[i].Hi {
			return false
		}
	}
	if k == 1 {
		return true
	}
	if mixedWidth(ranges) {
		return IntersectLevelsAny(widenRanges(ranges))
	}
	if ranges[0].Keys32 != nil {
		return anySpans(toSpans32(ranges))
	}
	return anySpans(toSpans64(ranges))
}

// intersectSpans materializes the intersection; all spans are
// non-empty.
func intersectSpans[K key](dst []relation.Value, spans []span[K]) []relation.Value {
	switch len(spans) {
	case 1:
		s := spans[0]
		for i := s.lo; i < s.hi; i++ {
			dst = append(dst, relation.Value(s.keys[i]))
		}
		return dst
	case 2:
		a, b := spans[0], spans[1]
		if a.hi-a.lo > b.hi-b.lo {
			a, b = b, a
		}
		if (b.hi - b.lo) >= gallopRatio*(a.hi-a.lo) {
			// Gallop the small side through the large one.
			j := b.lo
			for i := a.lo; i < a.hi; i++ {
				v := a.keys[i]
				j = gallopLB(b.keys, j, b.hi, v)
				if j >= b.hi {
					return dst
				}
				if b.keys[j] == v {
					dst = append(dst, relation.Value(v))
					j++
				}
			}
			return dst
		}
		// Linear merge of comparable sizes.
		i, j := a.lo, b.lo
		for i < a.hi && j < b.hi {
			av, bv := a.keys[i], b.keys[j]
			switch {
			case av == bv:
				dst = append(dst, relation.Value(av))
				i++
				j++
			case av < bv:
				i++
			default:
				j++
			}
		}
		return dst
	}
	leapfrogUntil(spans, func(v K) bool {
		dst = append(dst, relation.Value(v))
		return false
	})
	return dst
}

// countSpans is the counting twin of intersectSpans.
func countSpans[K key](spans []span[K]) int {
	switch len(spans) {
	case 1:
		return spans[0].hi - spans[0].lo
	case 2:
		a, b := spans[0], spans[1]
		if a.hi-a.lo > b.hi-b.lo {
			a, b = b, a
		}
		n := 0
		if (b.hi - b.lo) >= gallopRatio*(a.hi-a.lo) {
			j := b.lo
			for i := a.lo; i < a.hi; i++ {
				v := a.keys[i]
				j = gallopLB(b.keys, j, b.hi, v)
				if j >= b.hi {
					return n
				}
				if b.keys[j] == v {
					n++
					j++
				}
			}
			return n
		}
		i, j := a.lo, b.lo
		for i < a.hi && j < b.hi {
			av, bv := a.keys[i], b.keys[j]
			switch {
			case av == bv:
				n++
				i++
				j++
			case av < bv:
				i++
			default:
				j++
			}
		}
		return n
	}
	n := 0
	leapfrogUntil(spans, func(K) bool {
		n++
		return false
	})
	return n
}

// anySpans short-circuits on the first common value; spans are
// non-empty and len(spans) >= 2.
func anySpans[K key](spans []span[K]) bool {
	found := false
	leapfrogUntil(spans, func(K) bool {
		found = true
		return true
	})
	return found
}

// leapfrogUntil is Veldhuizen's leapfrog search over the spans,
// calling emit for every common key; cursors advance in place with
// galloping seeks, so the cost per emitted or skipped key is
// O(k + log jump). Spans must be non-empty. emit returns true to stop
// early (EXISTS). The classic invariant: cursors are kept sorted by
// current key starting from p; when the smallest equals the largest
// all k agree.
func leapfrogUntil[K key](spans []span[K], emit func(K) bool) {
	k := len(spans)
	// Insertion sort by current key (k is the number of atoms on this
	// level — single digits).
	for i := 1; i < k; i++ {
		for j := i; j > 0 && spans[j].keys[spans[j].lo] < spans[j-1].keys[spans[j-1].lo]; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	p := 0
	max := spans[k-1].keys[spans[k-1].lo]
	for {
		s := &spans[p]
		x := s.keys[s.lo]
		if x == max {
			// All cursors agree on x.
			if emit(x) {
				return
			}
			s.lo++
			if s.lo >= s.hi {
				return
			}
			max = s.keys[s.lo]
		} else {
			s.lo = gallopLB(s.keys, s.lo, s.hi, max)
			if s.lo >= s.hi {
				return
			}
			max = s.keys[s.lo]
		}
		p++
		if p == k {
			p = 0
		}
	}
}

// SmallestRange returns the index of the range with the fewest keys,
// used by variable-ordering heuristics.
func SmallestRange(ranges []LevelRange) int {
	best, arg := -1, -1
	for i, r := range ranges {
		if s := r.Size(); best < 0 || s < best {
			best, arg = s, i
		}
	}
	return arg
}

// DistinctCount returns the number of distinct values in a raw column
// range (by group-skipping, O(d log N) for d distinct values). Compat
// helper over row-addressed columns; trie levels answer this in O(1)
// via NumSegs/Children.
func DistinctCount(col []relation.Value, lo, hi int) int {
	n := 0
	i := lo
	for i < hi {
		i = upperBound(col, i, hi, col[i])
		n++
	}
	return n
}

// Distinct appends the distinct values of a raw column range to dst.
func Distinct(dst []relation.Value, col []relation.Value, lo, hi int) []relation.Value {
	i := lo
	for i < hi {
		v := col[i]
		dst = append(dst, v)
		i = upperBound(col, i, hi, v)
	}
	return dst
}
