// Package trie implements sorted-array tries over relations together
// with the level-iterator interface (Open/Up/Next/Seek/Key) that
// Veldhuizen's Leapfrog Triejoin is defined against.
//
// A trie is simply the relation's sorted columnar storage viewed as a
// layered search tree: level d enumerates the distinct values of
// attribute d within the row range selected by the values chosen at
// levels 0..d-1. All navigation is binary search over column ranges, so
// Seek costs O(log N) and iterating the distinct values of a level
// costs O(log N) per value — which is what gives the Õ(min{|X|,|Y|})
// intersection guarantee the paper's runtime analyses rely on.
package trie

import (
	"fmt"
	"sort"

	"wcoj/internal/relation"
)

// Trie is an immutable trie view over a relation sorted by a specific
// attribute order.
type Trie struct {
	rel   *relation.Relation
	attrs []string
	cols  [][]relation.Value
	n     int
}

// Build returns a trie over r with attributes in the given order. If
// order equals r's native attribute order the storage is shared;
// otherwise the relation is re-sorted. order must be a permutation of
// r's schema.
func Build(r *relation.Relation, order []string) (*Trie, error) {
	native := r.Attrs()
	same := len(order) == len(native)
	if same {
		for i := range order {
			if order[i] != native[i] {
				same = false
				break
			}
		}
	}
	if !same {
		var err error
		r, err = r.SortedBy(order)
		if err != nil {
			return nil, fmt.Errorf("trie: %w", err)
		}
	}
	cols := make([][]relation.Value, r.Arity())
	for j := range cols {
		cols[j] = r.Col(j)
	}
	return &Trie{rel: r, attrs: r.Attrs(), cols: cols, n: r.Len()}, nil
}

// Attrs returns the trie's attribute order.
func (t *Trie) Attrs() []string { return t.attrs }

// Depth returns the number of levels (the relation's arity).
func (t *Trie) Depth() int { return len(t.attrs) }

// Len returns the number of tuples underneath the root.
func (t *Trie) Len() int { return t.n }

// Relation returns the (possibly re-sorted) relation backing the trie.
func (t *Trie) Relation() *relation.Relation { return t.rel }

// SizeBytes estimates the heap footprint of the trie's columnar
// storage (tuples x arity x 8-byte values). When Build shared the
// relation's native storage the estimate still charges the full
// columns — the cache that budgets by SizeBytes pins them either way.
func (t *Trie) SizeBytes() int64 {
	return int64(t.n) * int64(len(t.cols)) * 8
}

// lowerBound returns the first index i in [lo,hi) with col[i] >= v.
func lowerBound(col []relation.Value, lo, hi int, v relation.Value) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return col[lo+i] >= v })
}

// upperBound returns the first index i in [lo,hi) with col[i] > v.
func upperBound(col []relation.Value, lo, hi int, v relation.Value) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return col[lo+i] > v })
}

// Range restricts rows [lo,hi) at level d to those whose level-d value
// equals v, returning the sub-range.
func (t *Trie) Range(d, lo, hi int, v relation.Value) (int, int) {
	col := t.cols[d]
	nlo := lowerBound(col, lo, hi, v)
	nhi := upperBound(col, nlo, hi, v)
	return nlo, nhi
}

// Level exposes the column of level d; used by the leapfrog
// intersection helpers.
func (t *Trie) Level(d int) []relation.Value { return t.cols[d] }

// Iterator is a cursor over a Trie implementing the LFTJ trie-iterator
// contract. A fresh iterator sits at the (virtual) root; Open descends
// one level, positioning at that level's first distinct value.
type Iterator struct {
	t *Trie
	// Per open level d (0-based): the current value occupies rows
	// [segStart[d], segEnd[d]); the parent's row range ends at end[d].
	depth    int // -1 at root
	segStart []int
	segEnd   []int
	end      []int
	atEnd    []bool
}

// NewIterator returns an iterator at the root of t.
func NewIterator(t *Trie) *Iterator {
	k := t.Depth()
	return &Iterator{
		t:        t,
		depth:    -1,
		segStart: make([]int, k),
		segEnd:   make([]int, k),
		end:      make([]int, k),
		atEnd:    make([]bool, k),
	}
}

// Depth returns the current level (-1 at the root).
func (it *Iterator) Depth() int { return it.depth }

// Open descends to the first value of the next level. Opening an empty
// range leaves the level immediately at-end.
func (it *Iterator) Open() {
	d := it.depth + 1
	if d >= it.t.Depth() {
		panic("trie: Open below the deepest level")
	}
	var lo, hi int
	if d == 0 {
		lo, hi = 0, it.t.n
	} else {
		lo, hi = it.segStart[d-1], it.segEnd[d-1]
	}
	it.depth = d
	it.segStart[d] = lo
	it.end[d] = hi
	if lo >= hi {
		it.atEnd[d] = true
		it.segEnd[d] = lo
		return
	}
	it.atEnd[d] = false
	it.segEnd[d] = upperBound(it.t.cols[d], lo, hi, it.t.cols[d][lo])
}

// Up ascends one level.
func (it *Iterator) Up() {
	if it.depth < 0 {
		panic("trie: Up above the root")
	}
	it.depth--
}

// AtEnd reports whether the current level is exhausted.
func (it *Iterator) AtEnd() bool { return it.atEnd[it.depth] }

// Key returns the current value at the current level. It must not be
// called when AtEnd.
func (it *Iterator) Key() relation.Value {
	d := it.depth
	if it.atEnd[d] {
		panic("trie: Key at end")
	}
	return it.t.cols[d][it.segStart[d]]
}

// Next advances to the next distinct value at the current level.
func (it *Iterator) Next() {
	d := it.depth
	if it.atEnd[d] {
		return
	}
	it.segStart[d] = it.segEnd[d]
	if it.segStart[d] >= it.end[d] {
		it.atEnd[d] = true
		return
	}
	it.segEnd[d] = upperBound(it.t.cols[d], it.segStart[d], it.end[d], it.t.cols[d][it.segStart[d]])
}

// Seek positions the level at the least value >= v, or at-end.
func (it *Iterator) Seek(v relation.Value) {
	d := it.depth
	if it.atEnd[d] {
		return
	}
	lo := lowerBound(it.t.cols[d], it.segStart[d], it.end[d], v)
	it.segStart[d] = lo
	if lo >= it.end[d] {
		it.atEnd[d] = true
		return
	}
	it.segEnd[d] = upperBound(it.t.cols[d], lo, it.end[d], it.t.cols[d][lo])
}

// CurrentRange returns the row range [lo,hi) of the current value at
// the current level. Used by operators that need to recurse into the
// subtree under the current value.
func (it *Iterator) CurrentRange() (lo, hi int) {
	d := it.depth
	return it.segStart[d], it.segEnd[d]
}

// RangeAt returns the row range [lo,hi) of the current value at an
// already-open level, independent of the iterator's current depth.
// Levels above the current one keep their segments while deeper levels
// are explored, so aggregate operators read a parent's bound range
// through RangeAt while the leapfrog loop is mid-flight below it.
func (it *Iterator) RangeAt(level int) (lo, hi int) {
	return it.segStart[level], it.segEnd[level]
}
