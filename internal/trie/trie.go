// Package trie implements sorted-array tries over relations together
// with the level-iterator interface (Open/Up/Next/Seek/Key) that
// Veldhuizen's Leapfrog Triejoin is defined against.
//
// A trie is the relation's sorted columnar storage viewed as a layered
// search tree: level d enumerates the distinct values of attribute d
// within the row range selected by the values chosen at levels 0..d-1.
//
// Since the columns are immutable, Build precomputes a flat CSR
// (compressed sparse row) index over them: per level a dense array of
// distinct segment keys plus int32 offset arrays mapping each segment
// to its row range and to its children at the next level. Navigation
// (Open, Next, CurrentRange, Children) is then O(1) array arithmetic,
// and Seek/FindSegFrom are galloping searches over duplicate-free key
// arrays — the repeated lowerBound/upperBound binary searches over raw
// column ranges of the previous layout disappear from the hot paths.
// When every value of the relation fits in uint32 the per-level key
// arrays are narrowed to 4-byte keys, halving the memory bandwidth of
// the intersection kernels in leapfrog.go. All index storage is
// arena-allocated: one offsets slab and one keys slab per trie,
// regardless of arity. See DESIGN.md §11.
package trie

import (
	"fmt"
	"math"
	"sort"

	"wcoj/internal/relation"
)

// Trie is an immutable trie view over a relation sorted by a specific
// attribute order.
//
// CSR index shape (k = arity, n = rows):
//
//   - segs[d] is the number of level-d segments (distinct prefixes of
//     length d+1). At the deepest level segments are exactly rows
//     (relations are duplicate-free sets), so segs[k-1] = n.
//   - keys[d][s] (or keys32[d][s] when narrowed) is the level-d value
//     of segment s — strictly increasing within any one parent's
//     children span, duplicate-free. keys[k-1] aliases cols[k-1].
//   - rowStart[d], for d < k-1, has segs[d]+1 entries: segment s spans
//     rows [rowStart[d][s], rowStart[d][s+1]). Deepest-level segments
//     are rows, so their row range is the identity (not stored).
//   - childStart[d], for d < k-1, has segs[d]+1 entries: segment s's
//     children at level d+1 are segments
//     [childStart[d][s], childStart[d][s+1]). Level-(k-1) children are
//     rows, so childStart[k-2] aliases rowStart[k-2].
type Trie struct {
	rel   *relation.Relation
	attrs []string
	cols  [][]relation.Value
	n     int

	segs       []int
	keys       [][]relation.Value
	keys32     [][]uint32
	rowStart   [][]int32
	childStart [][]int32
	owned      int64 // arena bytes owned by the CSR index
}

// Build returns a trie over r with attributes in the given order. If
// order equals r's native attribute order the storage is shared;
// otherwise the relation is re-sorted. order must be a permutation of
// r's schema.
func Build(r *relation.Relation, order []string) (*Trie, error) {
	native := r.Attrs()
	same := len(order) == len(native)
	if same {
		for i := range order {
			if order[i] != native[i] {
				same = false
				break
			}
		}
	}
	if !same {
		var err error
		r, err = r.SortedBy(order)
		if err != nil {
			return nil, fmt.Errorf("trie: %w", err)
		}
	}
	cols := make([][]relation.Value, r.Arity())
	for j := range cols {
		cols[j] = r.Col(j)
	}
	t := &Trie{rel: r, attrs: r.Attrs(), cols: cols, n: r.Len()}
	if err := t.buildIndex(); err != nil {
		return nil, err
	}
	return t, nil
}

// buildIndex computes the CSR arrays in two linear passes over the
// already-sorted columns: one to find segment boundaries per level,
// one to fill the arena-allocated offset and key slabs.
func (t *Trie) buildIndex() error {
	k := len(t.cols)
	n := t.n
	if k == 0 {
		return nil
	}
	if n > math.MaxInt32 {
		return fmt.Errorf("trie: relation of %d rows exceeds the int32 CSR offset range", n)
	}
	t.segs = make([]int, k)
	t.segs[k-1] = n

	// Segment start rows per level (excluding the deepest): a level-d
	// boundary is a value change in column d or any boundary of level
	// d-1 — boundaries nest, so each level is a merge-walk over the
	// previous level's starts.
	bounds := make([][]int32, k-1)
	for d := 0; d < k-1; d++ {
		col := t.cols[d]
		var b []int32
		if d == 0 {
			b = make([]int32, 0, 16)
			for i := 0; i < n; i++ {
				if i == 0 || col[i] != col[i-1] {
					b = append(b, int32(i))
				}
			}
		} else {
			prev := bounds[d-1]
			b = make([]int32, 0, len(prev)+16)
			pi := 0
			for i := 0; i < n; i++ {
				pb := pi < len(prev) && int(prev[pi]) == i
				if pb {
					pi++
				}
				if pb || col[i] != col[i-1] {
					b = append(b, int32(i))
				}
			}
		}
		bounds[d] = b
		t.segs[d] = len(b)
	}

	// Offset arena: rowStart for every non-deepest level plus
	// childStart for levels with non-row children (childStart[k-2]
	// aliases rowStart[k-2]).
	totOff := 0
	totKeys := 0
	for d := 0; d < k-1; d++ {
		totOff += t.segs[d] + 1
		if d < k-2 {
			totOff += t.segs[d] + 1
		}
		totKeys += t.segs[d]
	}
	offArena := make([]int32, totOff)
	t.rowStart = make([][]int32, k)
	t.childStart = make([][]int32, k)
	off := 0
	for d := 0; d < k-1; d++ {
		m := t.segs[d]
		rs := offArena[off : off+m+1 : off+m+1]
		off += m + 1
		copy(rs, bounds[d])
		rs[m] = int32(n)
		t.rowStart[d] = rs
	}
	for d := 0; d < k-2; d++ {
		m := t.segs[d]
		cs := offArena[off : off+m+1 : off+m+1]
		off += m + 1
		next := t.rowStart[d+1]
		j := 0
		for s := 0; s < m; s++ {
			for next[j] != t.rowStart[d][s] {
				j++
			}
			cs[s] = int32(j)
		}
		cs[m] = int32(t.segs[d+1])
		t.childStart[d] = cs
	}
	if k >= 2 {
		t.childStart[k-2] = t.rowStart[k-2]
	}

	// Key slabs. Narrow to uint32 when every value of every column is
	// representable (values can be negative: raw integer columns are
	// stored verbatim, only Dict-interned IDs are dense non-negative).
	narrow := true
	for _, col := range t.cols {
		for _, v := range col {
			if v < 0 || v > math.MaxUint32 {
				narrow = false
				break
			}
		}
		if !narrow {
			break
		}
	}
	if narrow {
		arena := make([]uint32, totKeys+n)
		t.keys32 = make([][]uint32, k)
		koff := 0
		for d := 0; d < k-1; d++ {
			m := t.segs[d]
			ks := arena[koff : koff+m : koff+m]
			koff += m
			col := t.cols[d]
			for s := 0; s < m; s++ {
				ks[s] = uint32(col[t.rowStart[d][s]])
			}
			t.keys32[d] = ks
		}
		last := arena[koff : koff+n : koff+n]
		for i, v := range t.cols[k-1] {
			last[i] = uint32(v)
		}
		t.keys32[k-1] = last
		t.owned = int64(totOff)*4 + int64(totKeys+n)*4
	} else {
		arena := make([]relation.Value, totKeys)
		t.keys = make([][]relation.Value, k)
		koff := 0
		for d := 0; d < k-1; d++ {
			m := t.segs[d]
			ks := arena[koff : koff+m : koff+m]
			koff += m
			col := t.cols[d]
			for s := 0; s < m; s++ {
				ks[s] = col[t.rowStart[d][s]]
			}
			t.keys[d] = ks
		}
		t.keys[k-1] = t.cols[k-1] // aliases the column: rows are segments
		t.owned = int64(totOff)*4 + int64(totKeys)*8
	}
	return nil
}

// Attrs returns the trie's attribute order.
func (t *Trie) Attrs() []string { return t.attrs }

// Depth returns the number of levels (the relation's arity).
func (t *Trie) Depth() int { return len(t.attrs) }

// Len returns the number of tuples underneath the root.
func (t *Trie) Len() int { return t.n }

// Relation returns the (possibly re-sorted) relation backing the trie.
func (t *Trie) Relation() *relation.Relation { return t.rel }

// Narrowed reports whether the trie's key arrays were narrowed to
// uint32 (every value of the relation is in [0, 2^32)).
func (t *Trie) Narrowed() bool { return t.keys32 != nil }

// SizeBytes estimates the heap footprint the trie pins: the columnar
// storage (tuples x arity x 8-byte values — charged in full even when
// Build shared the relation's native storage, since the cache that
// budgets by SizeBytes pins it either way) plus the owned CSR index
// arenas (offset arrays and dense, possibly uint32-narrowed, key
// slabs).
func (t *Trie) SizeBytes() int64 {
	return int64(t.n)*int64(len(t.cols))*8 + t.owned
}

// NumSegs returns the number of segments (distinct values) at level d
// under the root — for level 0 that is the number of distinct top
// values; deeper levels count distinct prefixes of length d+1.
func (t *Trie) NumSegs(d int) int { return t.segs[d] }

// SegKey returns the level-d value of segment s.
func (t *Trie) SegKey(d, s int) relation.Value {
	if t.keys32 != nil {
		return relation.Value(t.keys32[d][s])
	}
	return t.keys[d][s]
}

// SegRows returns the row range [lo,hi) of level-d segment s.
func (t *Trie) SegRows(d, s int) (lo, hi int) {
	if d == len(t.cols)-1 {
		return s, s + 1
	}
	rs := t.rowStart[d]
	return int(rs[s]), int(rs[s+1])
}

// Children returns the segment index range [lo,hi) of level-d segment
// s's children at level d+1.
func (t *Trie) Children(d, s int) (lo, hi int) {
	cs := t.childStart[d]
	return int(cs[s]), int(cs[s+1])
}

// SegLevel returns the intersection view of level d restricted to
// segments [lo,hi) — a parent's children span, or the whole level for
// d = 0. The keys are dense, strictly increasing and duplicate-free,
// which is what the kernels in leapfrog.go assume.
func (t *Trie) SegLevel(d, lo, hi int) LevelRange {
	if t.keys32 != nil {
		return LevelRange{Keys32: t.keys32[d], Lo: lo, Hi: hi}
	}
	return LevelRange{Keys: t.keys[d], Lo: lo, Hi: hi}
}

// FindSegFrom locates v among the level-d segments [from,hi) by a
// galloping search from the left edge. It returns the lower-bound
// position and whether the segment at it holds exactly v. Callers that
// probe ascending values pass the previous hit's successor as from, so
// a whole narrowing sweep costs amortized O(1) per probe (plus log of
// the jump); the engines' per-value Range binary searches of the
// previous layout cost O(log n) each.
func (t *Trie) FindSegFrom(d, from, hi int, v relation.Value) (int, bool) {
	if t.keys32 != nil {
		if uint64(v) > math.MaxUint32 { // negative or too wide: absent
			return from, false
		}
		w := uint32(v)
		ks := t.keys32[d]
		s := gallopLB(ks, from, hi, w)
		return s, s < hi && ks[s] == w
	}
	ks := t.keys[d]
	s := gallopLB(ks, from, hi, v)
	return s, s < hi && ks[s] == v
}

// seekSeg returns the first segment in [from,hi) with key >= v,
// galloping from the current position (the leapfrog seek pattern).
func (t *Trie) seekSeg(d, from, hi int, v relation.Value) int {
	if t.keys32 != nil {
		if v < 0 {
			return from
		}
		if v > math.MaxUint32 {
			return hi
		}
		return gallopLB(t.keys32[d], from, hi, uint32(v))
	}
	return gallopLB(t.keys[d], from, hi, v)
}

// lowerBound returns the first index i in [lo,hi) with col[i] >= v.
func lowerBound(col []relation.Value, lo, hi int, v relation.Value) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return col[lo+i] >= v })
}

// upperBound returns the first index i in [lo,hi) with col[i] > v.
func upperBound(col []relation.Value, lo, hi int, v relation.Value) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return col[lo+i] > v })
}

// Range restricts rows [lo,hi) at level d to those whose level-d value
// equals v, returning the sub-range. This is the row-addressed compat
// surface (binary search over the raw column); the engines navigate by
// segment (FindSegFrom/Children) instead.
func (t *Trie) Range(d, lo, hi int, v relation.Value) (int, int) {
	col := t.cols[d]
	nlo := lowerBound(col, lo, hi, v)
	nhi := upperBound(col, nlo, hi, v)
	return nlo, nhi
}

// Level exposes the raw column of level d (with duplicates); retained
// for diagnostics and tests. Intersection kernels work on the dense
// segment keys via SegLevel.
func (t *Trie) Level(d int) []relation.Value { return t.cols[d] }

// Iterator is a cursor over a Trie implementing the LFTJ trie-iterator
// contract. A fresh iterator sits at the (virtual) root; Open descends
// one level, positioning at that level's first distinct value. The
// cursor state is a segment index per level, so Open/Next/Key and the
// row-range accessors are O(1) array reads and Seek is a galloping
// search forward over the duplicate-free segment keys.
type Iterator struct {
	t *Trie
	// Per open level d: the cursor sits on segment seg[d]; the
	// parent's children span ends at segment end[d] (exclusive).
	depth int // -1 at root
	seg   []int
	end   []int
	atEnd []bool
}

// NewIterator returns an iterator at the root of t.
func NewIterator(t *Trie) *Iterator {
	k := t.Depth()
	idx := make([]int, 2*k)
	return &Iterator{
		t:     t,
		depth: -1,
		seg:   idx[:k:k],
		end:   idx[k:],
		atEnd: make([]bool, k),
	}
}

// Depth returns the current level (-1 at the root).
func (it *Iterator) Depth() int { return it.depth }

// Open descends to the first value of the next level. Opening an empty
// range leaves the level immediately at-end.
func (it *Iterator) Open() {
	d := it.depth + 1
	if d >= it.t.Depth() {
		panic("trie: Open below the deepest level")
	}
	var lo, hi int
	switch {
	case d == 0:
		lo, hi = 0, it.t.segs[0]
	case it.atEnd[d-1]:
		lo, hi = 0, 0
	default:
		lo, hi = it.t.Children(d-1, it.seg[d-1])
	}
	it.depth = d
	it.seg[d] = lo
	it.end[d] = hi
	it.atEnd[d] = lo >= hi
}

// Up ascends one level.
func (it *Iterator) Up() {
	if it.depth < 0 {
		panic("trie: Up above the root")
	}
	it.depth--
}

// AtEnd reports whether the current level is exhausted.
func (it *Iterator) AtEnd() bool { return it.atEnd[it.depth] }

// Key returns the current value at the current level. It must not be
// called when AtEnd.
func (it *Iterator) Key() relation.Value {
	d := it.depth
	if it.atEnd[d] {
		panic("trie: Key at end")
	}
	return it.t.SegKey(d, it.seg[d])
}

// Next advances to the next distinct value at the current level.
func (it *Iterator) Next() {
	d := it.depth
	if it.atEnd[d] {
		return
	}
	it.seg[d]++
	if it.seg[d] >= it.end[d] {
		it.atEnd[d] = true
	}
}

// Seek positions the level at the least value >= v, or at-end. Seeks
// gallop forward from the current position, so a leapfrog pass over a
// level costs amortized O(1 + log jump) per seek.
func (it *Iterator) Seek(v relation.Value) {
	d := it.depth
	if it.atEnd[d] {
		return
	}
	it.seg[d] = it.t.seekSeg(d, it.seg[d], it.end[d], v)
	if it.seg[d] >= it.end[d] {
		it.atEnd[d] = true
	}
}

// CurrentRange returns the row range [lo,hi) of the current value at
// the current level. Used by operators that need to recurse into the
// subtree under the current value.
func (it *Iterator) CurrentRange() (lo, hi int) {
	d := it.depth
	return it.t.SegRows(d, it.seg[d])
}

// RangeAt returns the row range [lo,hi) of the current value at an
// already-open level, independent of the iterator's current depth.
// Levels above the current one keep their segments while deeper levels
// are explored, so aggregate operators read a parent's bound range
// through RangeAt while the leapfrog loop is mid-flight below it.
func (it *Iterator) RangeAt(level int) (lo, hi int) {
	return it.t.SegRows(level, it.seg[level])
}
