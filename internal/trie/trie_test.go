package trie

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wcoj/internal/relation"
)

func rel(t *testing.T, name string, attrs []string, rows ...[]relation.Value) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder(name, attrs...)
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuildSharesOrResorts(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 2}, []relation.Value{2, 1})
	tr, err := Build(r, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Relation() != r {
		t.Fatal("native order should share storage")
	}
	tr2, err := Build(r, []string{"B", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Attrs()[0] != "B" || tr2.Len() != 2 {
		t.Fatalf("re-sorted trie: %v len=%d", tr2.Attrs(), tr2.Len())
	}
	if _, err := Build(r, []string{"A"}); err == nil {
		t.Fatal("expected error for non-permutation order")
	}
}

func TestIteratorWalk(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 1}, []relation.Value{1, 3},
		[]relation.Value{2, 2}, []relation.Value{4, 1})
	tr, err := Build(r, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	it := NewIterator(tr)
	if it.Depth() != -1 {
		t.Fatalf("root depth = %d", it.Depth())
	}
	it.Open() // level A
	var as []relation.Value
	for !it.AtEnd() {
		as = append(as, it.Key())
		it.Next()
	}
	want := []relation.Value{1, 2, 4}
	if len(as) != 3 || as[0] != want[0] || as[1] != want[1] || as[2] != want[2] {
		t.Fatalf("A values = %v, want %v", as, want)
	}
}

func TestIteratorOpenSecondLevel(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 1}, []relation.Value{1, 3},
		[]relation.Value{2, 2})
	tr, _ := Build(r, []string{"A", "B"})
	it := NewIterator(tr)
	it.Open() // A = 1
	if it.Key() != 1 {
		t.Fatalf("first A = %d", it.Key())
	}
	it.Open() // B under A=1
	var bs []relation.Value
	for !it.AtEnd() {
		bs = append(bs, it.Key())
		it.Next()
	}
	if len(bs) != 2 || bs[0] != 1 || bs[1] != 3 {
		t.Fatalf("B|A=1 = %v, want [1 3]", bs)
	}
	it.Up() // back to A
	it.Next()
	if it.Key() != 2 {
		t.Fatalf("next A = %d, want 2", it.Key())
	}
	it.Open()
	if it.Key() != 2 {
		t.Fatalf("B|A=2 = %d, want 2", it.Key())
	}
}

func TestIteratorSeek(t *testing.T) {
	r := rel(t, "R", []string{"A"},
		[]relation.Value{1}, []relation.Value{3}, []relation.Value{5},
		[]relation.Value{7}, []relation.Value{9})
	tr, _ := Build(r, []string{"A"})
	it := NewIterator(tr)
	it.Open()
	it.Seek(4)
	if it.AtEnd() || it.Key() != 5 {
		t.Fatalf("seek(4) -> %v", it)
	}
	it.Seek(7)
	if it.Key() != 7 {
		t.Fatalf("seek(7) -> %d", it.Key())
	}
	it.Seek(10)
	if !it.AtEnd() {
		t.Fatal("seek(10) should be at end")
	}
	// Seek when already at end is a no-op.
	it.Seek(1)
	if !it.AtEnd() {
		t.Fatal("seek after end must stay at end")
	}
}

func TestIteratorEmpty(t *testing.T) {
	r := relation.Empty("E", "A")
	tr, _ := Build(r, []string{"A"})
	it := NewIterator(tr)
	it.Open()
	if !it.AtEnd() {
		t.Fatal("empty trie must open at end")
	}
	it.Next() // must not panic
	if !it.AtEnd() {
		t.Fatal("still at end")
	}
}

func TestIteratorPanics(t *testing.T) {
	r := rel(t, "R", []string{"A"}, []relation.Value{1})
	tr, _ := Build(r, []string{"A"})
	it := NewIterator(tr)
	mustPanic(t, func() { it.Up() })
	it.Open()
	mustPanic(t, func() { it.Open() }) // below deepest level
	it.Next()
	mustPanic(t, func() { it.Key() }) // at end
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCurrentRangeAndRange(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 1}, []relation.Value{1, 2}, []relation.Value{2, 5})
	tr, _ := Build(r, []string{"A", "B"})
	it := NewIterator(tr)
	it.Open()
	lo, hi := it.CurrentRange()
	if lo != 0 || hi != 2 {
		t.Fatalf("range of A=1 is [%d,%d), want [0,2)", lo, hi)
	}
	nlo, nhi := tr.Range(0, 0, tr.Len(), 2)
	if nlo != 2 || nhi != 3 {
		t.Fatalf("Range(A=2) = [%d,%d), want [2,3)", nlo, nhi)
	}
	nlo, nhi = tr.Range(0, 0, tr.Len(), 9)
	if nlo != nhi {
		t.Fatal("Range of missing value must be empty")
	}
}

func TestIntersectLevels(t *testing.T) {
	a := []relation.Value{1, 2, 3, 5, 7}
	b := []relation.Value{2, 3, 4, 7, 8}
	c := []relation.Value{0, 3, 7, 9}
	got := IntersectLevels(nil, []LevelRange{
		{Keys: a, Lo: 0, Hi: len(a)},
		{Keys: b, Lo: 0, Hi: len(b)},
		{Keys: c, Lo: 0, Hi: len(c)},
	})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("got %v, want [3 7]", got)
	}
}

func TestIntersectLevelsSingle(t *testing.T) {
	a := []relation.Value{1, 2, 9}
	got := IntersectLevels(nil, []LevelRange{{Keys: a, Lo: 0, Hi: len(a)}})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 9 {
		t.Fatalf("single range copies its keys: %v", got)
	}
}

func TestIntersectLevelsEmptyCases(t *testing.T) {
	if got := IntersectLevels(nil, nil); got != nil {
		t.Fatal("no ranges yields nil")
	}
	a := []relation.Value{1, 2}
	got := IntersectLevels(nil, []LevelRange{
		{Keys: a, Lo: 0, Hi: 2},
		{Keys: a, Lo: 1, Hi: 1}, // empty range
	})
	if len(got) != 0 {
		t.Fatalf("intersection with empty range: %v", got)
	}
	// Disjoint.
	got = IntersectLevels(nil, []LevelRange{
		{Keys: []relation.Value{1, 2}, Lo: 0, Hi: 2},
		{Keys: []relation.Value{3, 4}, Lo: 0, Hi: 2},
	})
	if len(got) != 0 {
		t.Fatalf("disjoint intersection: %v", got)
	}
}

func TestDistinctHelpers(t *testing.T) {
	col := []relation.Value{1, 1, 2, 2, 2, 5}
	if n := DistinctCount(col, 0, len(col)); n != 3 {
		t.Fatalf("DistinctCount = %d, want 3", n)
	}
	if n := DistinctCount(col, 1, 4); n != 2 {
		t.Fatalf("DistinctCount[1,4) = %d, want 2", n)
	}
	d := Distinct(nil, col, 0, len(col))
	if len(d) != 3 || d[0] != 1 || d[1] != 2 || d[2] != 5 {
		t.Fatalf("Distinct = %v", d)
	}
	keys := []relation.Value{1, 2, 3, 4, 5, 6}
	if i := SmallestRange([]LevelRange{{Keys: keys, Lo: 0, Hi: 6}, {Keys: keys, Lo: 0, Hi: 2}}); i != 1 {
		t.Fatalf("SmallestRange = %d", i)
	}
	if i := SmallestRange(nil); i != -1 {
		t.Fatalf("SmallestRange(nil) = %d", i)
	}
}

// Property: IntersectLevels over full ranges equals the set
// intersection of the key sets.
func TestPropertyIntersectLevels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		cols := make([][]relation.Value, k)
		sets := make([]map[relation.Value]bool, k)
		for i := 0; i < k; i++ {
			n := rng.Intn(60)
			sets[i] = make(map[relation.Value]bool)
			for j := 0; j < n; j++ {
				sets[i][relation.Value(rng.Intn(30))] = true
			}
			col := make([]relation.Value, 0, len(sets[i]))
			for v := range sets[i] {
				col = append(col, v)
			}
			sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
			cols[i] = col
		}
		ranges := make([]LevelRange, k)
		for i := range cols {
			ranges[i] = LevelRange{Keys: cols[i], Lo: 0, Hi: len(cols[i])}
		}
		got := IntersectLevels(nil, ranges)
		var want []relation.Value
		for v := relation.Value(0); v < 30; v++ {
			in := true
			for i := 0; i < k; i++ {
				if !sets[i][v] {
					in = false
					break
				}
			}
			if in {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: walking a trie depth-first reproduces exactly the
// relation's tuple set.
func TestPropertyTrieEnumeratesRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := relation.NewBuilder("R", "A", "B", "C")
		n := rng.Intn(80)
		for i := 0; i < n; i++ {
			if err := b.Add(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6))); err != nil {
				return false
			}
		}
		r := b.Build()
		tr, err := Build(r, []string{"A", "B", "C"})
		if err != nil {
			return false
		}
		var walked []relation.Tuple
		var rec func(it *Iterator, prefix relation.Tuple)
		it := NewIterator(tr)
		rec = func(it *Iterator, prefix relation.Tuple) {
			it.Open()
			for !it.AtEnd() {
				p := append(prefix[:len(prefix):len(prefix)], it.Key())
				if len(p) == tr.Depth() {
					walked = append(walked, p)
				} else {
					rec(it, p)
				}
				it.Next()
			}
			it.Up()
		}
		rec(it, nil)
		want := r.Tuples()
		if len(walked) != len(want) {
			return false
		}
		for i := range want {
			if !walked[i].Equal(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
