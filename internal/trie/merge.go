package trie

import (
	"fmt"

	"wcoj/internal/relation"
)

// Merge builds the trie of the snapshot view (base ∖ del) ⊎ add
// without re-sorting the base: the base trie's columns are already
// sorted in the trie's attribute order, so the merged levels are
// produced by one linear lockstep pass (relation.MergeDelta) and the
// resulting storage is adopted directly — the same fast path Build
// takes for natively-ordered relations. add and del must be sorted
// under the base trie's attribute order (they are small: callers sort
// them in O(D log D), against O(N log N) for rebuilding the base).
//
// This is the trie-versioning primitive of the mutable-relation layer:
// a writer advancing a relation's head epoch never touches existing
// tries (they are immutable snapshots pinned by in-flight readers);
// the next reader at the new epoch merges the delta into a fresh trie
// here, and compaction later promotes that merged trie to the new
// base. With an empty delta the base trie is returned unchanged.
func Merge(base *Trie, add, del *relation.Relation) (*Trie, error) {
	if (add == nil || add.Len() == 0) && (del == nil || del.Len() == 0) {
		return base, nil
	}
	if add == nil {
		add = relation.Empty(base.rel.Name(), base.attrs...)
	}
	if del == nil {
		del = relation.Empty(base.rel.Name(), base.attrs...)
	}
	merged, err := relation.MergeDelta(base.rel, add, del)
	if err != nil {
		return nil, fmt.Errorf("trie: merge: %w", err)
	}
	// merged is sorted in the base trie's attribute order by
	// construction, so Build shares its storage instead of re-sorting.
	return Build(merged, base.attrs)
}
