package trie

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wcoj/internal/relation"
)

// sortedSet draws a random duplicate-free sorted key slice of up to n
// values from [0, dom).
func sortedSet(rng *rand.Rand, n, dom int) []relation.Value {
	seen := make(map[relation.Value]bool)
	for i := 0; i < n; i++ {
		seen[relation.Value(rng.Intn(dom))] = true
	}
	out := make([]relation.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// refIntersect is the oracle: the sorted intersection of the key sets
// computed with maps.
func refIntersect(keySets [][]relation.Value) []relation.Value {
	if len(keySets) == 0 {
		return nil
	}
	counts := make(map[relation.Value]int)
	for _, ks := range keySets {
		for _, v := range ks {
			counts[v]++
		}
	}
	var out []relation.Value
	for v, c := range counts {
		if c == len(keySets) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func toNarrow(keys []relation.Value) []uint32 {
	out := make([]uint32, len(keys))
	for i, v := range keys {
		out[i] = uint32(v)
	}
	return out
}

// TestPropertyKernelsAgree: for random duplicate-free sorted inputs —
// including size skews that exercise both the linear merge and the
// galloping kernel, empty ranges, and every width combination (wide,
// narrow, mixed) — IntersectLevels, IntersectLevelsCount and
// IntersectLevelsAny agree with the map-based oracle and each other.
func TestPropertyKernelsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		keySets := make([][]relation.Value, k)
		ranges := make([]LevelRange, k)
		width := rng.Intn(3) // 0 = all wide, 1 = all narrow, 2 = mixed
		for i := 0; i < k; i++ {
			// Skewed sizes: some tiny sets against some large ones, so
			// k = 2 draws hit both the merge and the gallop kernel.
			var n int
			if rng.Intn(2) == 0 {
				n = rng.Intn(8) // occasionally empty
			} else {
				n = 200 + rng.Intn(800)
			}
			keySets[i] = sortedSet(rng, n, 1500)
			narrow := width == 1 || (width == 2 && i%2 == 1)
			if narrow {
				ranges[i] = LevelRange{Keys32: toNarrow(keySets[i]), Lo: 0, Hi: len(keySets[i])}
			} else {
				ranges[i] = LevelRange{Keys: keySets[i], Lo: 0, Hi: len(keySets[i])}
			}
		}
		want := refIntersect(keySets)
		got := IntersectLevels(nil, ranges)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		if IntersectLevelsCount(ranges) != len(want) {
			return false
		}
		if IntersectLevelsAny(ranges) != (len(want) > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGallopLB: gallopLB from any starting cursor matches a
// plain binary search over the same window.
func TestPropertyGallopLB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := sortedSet(rng, 1+rng.Intn(300), 1000)
		if len(keys) == 0 {
			return true
		}
		lo := rng.Intn(len(keys))
		v := relation.Value(rng.Intn(1100) - 50)
		got := gallopLB(keys, lo, len(keys), v)
		want := lo + sort.Search(len(keys)-lo, func(i int) bool { return keys[lo+i] >= v })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestGallopSkewHeavy pins the galloping path deterministically: a
// 64-key needle set against a 100k haystack, partial overlap.
func TestGallopSkewHeavy(t *testing.T) {
	huge := make([]relation.Value, 100_000)
	for i := range huge {
		huge[i] = relation.Value(3 * i)
	}
	tiny := make([]relation.Value, 64)
	for i := range tiny {
		tiny[i] = relation.Value(4000 * i)
	}
	ranges := []LevelRange{
		{Keys: tiny, Lo: 0, Hi: len(tiny)},
		{Keys: huge, Lo: 0, Hi: len(huge)},
	}
	want := refIntersect([][]relation.Value{tiny, huge})
	got := IntersectLevels(nil, ranges)
	if len(got) != len(want) {
		t.Fatalf("gallop-skewed: %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gallop-skewed[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if n := IntersectLevelsCount(ranges); n != len(want) {
		t.Fatalf("count = %d, want %d", n, len(want))
	}
	if !IntersectLevelsAny(ranges) {
		t.Fatal("any = false on non-empty intersection")
	}
}

// randomRelation builds a random arity-a relation with n draws over a
// small domain (so duplicates collapse and tries get real branching).
func randomRelation(t testing.TB, rng *rand.Rand, name string, attrs []string, n, dom int) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder(name, attrs...)
	row := make([]relation.Value, len(attrs))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = relation.Value(rng.Intn(dom))
		}
		if err := b.Add(row...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// sameCSR asserts two tries have identical CSR structure: segment
// counts, keys, row ranges and children spans at every level, plus the
// same narrowing decision.
func sameCSR(t *testing.T, got, want *Trie) {
	t.Helper()
	if got.Len() != want.Len() || got.Depth() != want.Depth() {
		t.Fatalf("shape: %dx%d vs %dx%d", got.Len(), got.Depth(), want.Len(), want.Depth())
	}
	if got.Narrowed() != want.Narrowed() {
		t.Fatalf("narrowed: %v vs %v", got.Narrowed(), want.Narrowed())
	}
	for d := 0; d < got.Depth(); d++ {
		if got.NumSegs(d) != want.NumSegs(d) {
			t.Fatalf("level %d: %d segs vs %d", d, got.NumSegs(d), want.NumSegs(d))
		}
		for s := 0; s < got.NumSegs(d); s++ {
			if got.SegKey(d, s) != want.SegKey(d, s) {
				t.Fatalf("level %d seg %d: key %d vs %d", d, s, got.SegKey(d, s), want.SegKey(d, s))
			}
			glo, ghi := got.SegRows(d, s)
			wlo, whi := want.SegRows(d, s)
			if glo != wlo || ghi != whi {
				t.Fatalf("level %d seg %d: rows [%d,%d) vs [%d,%d)", d, s, glo, ghi, wlo, whi)
			}
			if d+1 < got.Depth() {
				gcl, gch := got.Children(d, s)
				wcl, wch := want.Children(d, s)
				if gcl != wcl || gch != wch {
					t.Fatalf("level %d seg %d: children [%d,%d) vs [%d,%d)", d, s, gcl, gch, wcl, wch)
				}
			}
		}
	}
}

// TestPropertyMergeEqualsRebuild: merging a delta into a flat trie
// yields byte-for-byte the same CSR index as rebuilding from scratch
// over the post-delta tuple set.
func TestPropertyMergeEqualsRebuild(t *testing.T) {
	attrs := []string{"A", "B", "C"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomRelation(t, rng, "R", attrs, 30+rng.Intn(60), 8)
		baseTr, err := Build(base, attrs)
		if err != nil {
			t.Fatal(err)
		}
		add := randomRelation(t, rng, "R", attrs, rng.Intn(20), 8)
		// Delete a random subset of base rows (delta layer guarantees
		// del ⊆ base; mimic that).
		db := relation.NewBuilder("R", attrs...)
		for _, tup := range base.Tuples() {
			if rng.Intn(4) == 0 {
				if err := db.Add(tup...); err != nil {
					t.Fatal(err)
				}
			}
		}
		del := db.Build()
		merged, err := Merge(baseTr, add, del)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild from scratch over the same post-delta tuple set.
		rb := relation.NewBuilder("R", attrs...)
		dead := make(map[string]bool)
		for _, tup := range del.Tuples() {
			dead[tup.String()] = true
		}
		for _, tup := range base.Tuples() {
			if !dead[tup.String()] {
				if err := rb.Add(tup...); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, tup := range add.Tuples() {
			if err := rb.Add(tup...); err != nil {
				t.Fatal(err)
			}
		}
		rebuilt, err := Build(rb.Build(), attrs)
		if err != nil {
			t.Fatal(err)
		}
		sameCSR(t, merged, rebuilt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowing: tries narrow to uint32 keys exactly when every value
// of every column fits, and FindSegFrom stays correct for probe values
// outside the narrowed domain.
func TestNarrowing(t *testing.T) {
	small := rel(t, "S", []string{"A", "B"},
		[]relation.Value{1, 10}, []relation.Value{2, 20}, []relation.Value{math.MaxUint32, 30})
	tr, err := Build(small, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Narrowed() {
		t.Fatal("all values fit uint32; trie should narrow")
	}
	// Probes outside [0, MaxUint32] must miss without corrupting the
	// cursor.
	if _, ok := tr.FindSegFrom(0, 0, tr.NumSegs(0), -5); ok {
		t.Fatal("negative probe cannot match a narrowed trie")
	}
	if _, ok := tr.FindSegFrom(0, 0, tr.NumSegs(0), math.MaxUint32+1); ok {
		t.Fatal("oversized probe cannot match a narrowed trie")
	}
	if s, ok := tr.FindSegFrom(0, 0, tr.NumSegs(0), math.MaxUint32); !ok || tr.SegKey(0, s) != math.MaxUint32 {
		t.Fatalf("FindSegFrom(MaxUint32) = (%d,%v)", s, ok)
	}

	for _, bad := range [][]relation.Value{
		{-1, 1},                 // negative
		{math.MaxUint32 + 1, 1}, // too wide
	} {
		r := rel(t, "W", []string{"A", "B"}, bad, []relation.Value{5, 6})
		tr, err := Build(r, []string{"A", "B"})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Narrowed() {
			t.Fatalf("values %v cannot narrow", bad)
		}
	}
}

// TestSizeBytesAccountsIndex: SizeBytes covers the raw columns plus
// every owned index array (offsets, segment-key slabs, narrowed
// copies) — the contract the TrieStore budget relies on.
func TestSizeBytesAccountsIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRelation(t, rng, "R", []string{"A", "B", "C"}, 500, 12)
	tr, err := Build(r, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	colBytes := int64(tr.Len() * tr.Depth() * 8)
	if tr.SizeBytes() <= colBytes {
		t.Fatalf("SizeBytes = %d does not cover the CSR index above %d column bytes", tr.SizeBytes(), colBytes)
	}
	// Offsets alone: every non-deepest level owns rowStart (+1
	// sentinel) int32 entries, so the index must charge at least that.
	var offsets int64
	for d := 0; d < tr.Depth()-1; d++ {
		offsets += int64((tr.NumSegs(d) + 1) * 4)
	}
	if tr.SizeBytes() < colBytes+offsets {
		t.Fatalf("SizeBytes = %d < columns %d + offsets %d", tr.SizeBytes(), colBytes, offsets)
	}
}

// FuzzIntersectKernels cross-checks the three kernels against each
// other on fuzzer-shaped inputs: two sorted duplicate-free sets built
// from the raw bytes, wide and narrow.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0, 255})
	f.Add([]byte{9, 9, 9, 1}, []byte{9})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		mk := func(bs []byte) []relation.Value {
			set := make(map[relation.Value]bool)
			for _, b := range bs {
				set[relation.Value(b)] = true
			}
			out := make([]relation.Value, 0, len(set))
			for v := range set {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := mk(ab), mk(bb)
		want := refIntersect([][]relation.Value{a, b})
		for _, ranges := range [][]LevelRange{
			{{Keys: a, Lo: 0, Hi: len(a)}, {Keys: b, Lo: 0, Hi: len(b)}},
			{{Keys32: toNarrow(a), Lo: 0, Hi: len(a)}, {Keys32: toNarrow(b), Lo: 0, Hi: len(b)}},
			{{Keys: a, Lo: 0, Hi: len(a)}, {Keys32: toNarrow(b), Lo: 0, Hi: len(b)}},
		} {
			got := IntersectLevels(nil, ranges)
			if len(got) != len(want) {
				t.Fatalf("ranges %v: %v, want %v", ranges, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ranges %v: %v, want %v", ranges, got, want)
				}
			}
			if n := IntersectLevelsCount(ranges); n != len(want) {
				t.Fatalf("count %d, want %d", n, len(want))
			}
			if IntersectLevelsAny(ranges) != (len(want) > 0) {
				t.Fatal("any disagrees with materialize")
			}
		}
	})
}
