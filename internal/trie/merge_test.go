package trie

import (
	"math/rand"
	"testing"

	"wcoj/internal/relation"
)

func TestMergeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attrs := []string{"a", "b"}
	mk := func(rows [][]relation.Value) *relation.Relation {
		b := relation.NewBuilder("R", attrs...)
		for _, r := range rows {
			if err := b.Add(r...); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	var baseRows [][]relation.Value
	for i := 0; i < 300; i++ {
		baseRows = append(baseRows, []relation.Value{relation.Value(rng.Intn(50)), relation.Value(rng.Intn(50))})
	}
	base := mk(baseRows)
	for _, order := range [][]string{{"a", "b"}, {"b", "a"}} {
		bt, err := Build(base, order)
		if err != nil {
			t.Fatal(err)
		}
		// Deltas sorted under the trie's order.
		var delRows, addRows [][]relation.Value
		for i := 0; i < base.Len(); i += 4 {
			tu := base.Tuple(i, nil)
			delRows = append(delRows, []relation.Value{tu[0], tu[1]})
		}
		for len(addRows) < 40 {
			tu := relation.Tuple{relation.Value(50 + rng.Intn(20)), relation.Value(rng.Intn(70))}
			addRows = append(addRows, []relation.Value{tu[0], tu[1]})
		}
		add, err := mk(addRows).SortedBy(order)
		if err != nil {
			t.Fatal(err)
		}
		del, err := mk(delRows).SortedBy(order)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := Merge(bt, add, del)
		if err != nil {
			t.Fatal(err)
		}
		expectedRel, err := relation.MergeDelta(bt.Relation(), add, del)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Build(expectedRel, order)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Len() != want.Len() || merged.Depth() != want.Depth() {
			t.Fatalf("order %v: merged trie shape (%d,%d) != want (%d,%d)",
				order, merged.Len(), merged.Depth(), want.Len(), want.Depth())
		}
		if !merged.Relation().Equal(want.Relation()) {
			t.Fatalf("order %v: merged trie storage differs", order)
		}
		// The merged trie must answer iterator walks identically.
		it, wit := NewIterator(merged), NewIterator(want)
		it.Open()
		wit.Open()
		for !it.AtEnd() && !wit.AtEnd() {
			if it.Key() != wit.Key() {
				t.Fatalf("order %v: level-0 key %d != %d", order, it.Key(), wit.Key())
			}
			it.Next()
			wit.Next()
		}
		if it.AtEnd() != wit.AtEnd() {
			t.Fatalf("order %v: level-0 lengths differ", order)
		}
	}
	// Empty delta: identity.
	bt, _ := Build(base, attrs)
	same, err := Merge(bt, nil, nil)
	if err != nil || same != bt {
		t.Fatalf("empty delta must return the base trie (err %v)", err)
	}
}
