// Package constraints implements degree constraints (Definition 1 of
// the paper), the constraint dependency graph G_DC (Definition 3),
// acyclicity testing with compatible variable orders, bound-variable
// analysis, and the Proposition 5.2 repair that turns a cyclic
// constraint set DC into an acyclic DC′ implied by DC whose worst-case
// output size stays finite.
package constraints

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Constraint is a degree constraint (X, Y, N_{Y|X}): for every binding
// of the X attributes, the guard relation contains at most N distinct
// Y-bindings. X must be a strict subset of Y. A cardinality constraint
// is the special case X = ∅; a functional dependency is N = 1.
type Constraint struct {
	X     []string
	Y     []string
	N     float64 // N_{Y|X} >= 1; math.Inf(1) means "no information"
	Guard string  // name of the guarding relation/atom
}

// Cardinality returns the constraint |R| <= n for a guard over attrs.
func Cardinality(guard string, attrs []string, n float64) Constraint {
	return Constraint{X: nil, Y: append([]string(nil), attrs...), N: n, Guard: guard}
}

// FD returns the functional dependency X -> Y guarded by guard, i.e.
// the degree constraint (X, X∪Y, 1).
func FD(guard string, x, y []string) Constraint {
	u := append([]string(nil), x...)
	for _, a := range y {
		if !contains(u, a) {
			u = append(u, a)
		}
	}
	return Constraint{X: append([]string(nil), x...), Y: u, N: 1, Guard: guard}
}

// Degree returns a general degree constraint (x, y, n).
func Degree(guard string, x, y []string, n float64) Constraint {
	return Constraint{X: append([]string(nil), x...), Y: append([]string(nil), y...), N: n, Guard: guard}
}

// IsCardinality reports whether the constraint has X = ∅.
func (c Constraint) IsCardinality() bool { return len(c.X) == 0 }

// IsFD reports whether N = 1 (a functional dependency).
func (c Constraint) IsFD() bool { return c.N == 1 }

// IsSimpleFD reports whether the constraint is a simple FD A_i -> A_j:
// |X| = 1 and |Y-X| = 1 with N = 1 (Corollary 5.3).
func (c Constraint) IsSimpleFD() bool {
	return c.N == 1 && len(c.X) == 1 && len(minus(c.Y, c.X)) == 1
}

// LogN returns log2(N_{Y|X}), the coefficient n_{Y|X} of Section 5.2.
func (c Constraint) LogN() float64 { return math.Log2(c.N) }

func (c Constraint) String() string {
	return fmt.Sprintf("(%s ; %s ; %s ≤ %g)",
		strings.Join(c.X, ","), strings.Join(c.Y, ","), c.Guard, c.N)
}

// validate checks the structural requirements of Definition 1.
func (c Constraint) validate() error {
	if hasDup(c.X) || hasDup(c.Y) {
		return fmt.Errorf("constraints: %v has duplicate attributes", c)
	}
	for _, x := range c.X {
		if !contains(c.Y, x) {
			return fmt.Errorf("constraints: %v: X ⊄ Y", c)
		}
	}
	if len(c.X) >= len(c.Y) {
		return fmt.Errorf("constraints: %v: X must be a strict subset of Y", c)
	}
	if !(c.N >= 1) {
		return fmt.Errorf("constraints: %v: N must be >= 1", c)
	}
	return nil
}

// Set is a collection of degree constraints (the DC of the paper).
type Set []Constraint

// Validate checks every constraint structurally.
func (s Set) Validate() error {
	for _, c := range s {
		if err := c.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Vars returns the sorted set of all attributes mentioned by s.
func (s Set) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range s {
		for _, a := range c.Y {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
		for _, a := range c.X {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for i, c := range s {
		out[i] = Constraint{
			X:     append([]string(nil), c.X...),
			Y:     append([]string(nil), c.Y...),
			N:     c.N,
			Guard: c.Guard,
		}
	}
	return out
}

// DependencyGraph returns the constraint dependency graph G_DC of
// Definition 3 as an adjacency map: for every constraint and every
// (x, y) ∈ X × (Y−X) there is a directed edge x -> y.
func (s Set) DependencyGraph() map[string][]string {
	adj := make(map[string][]string)
	seen := make(map[string]map[string]bool)
	for _, c := range s {
		for _, x := range c.X {
			for _, y := range minus(c.Y, c.X) {
				if seen[x] == nil {
					seen[x] = make(map[string]bool)
				}
				if seen[x][y] {
					continue
				}
				seen[x][y] = true
				adj[x] = append(adj[x], y)
			}
		}
	}
	for _, ys := range adj {
		sort.Strings(ys)
	}
	return adj
}

// IsAcyclic reports whether G_DC is acyclic (Definition 3). A set with
// only cardinality constraints has an empty graph and is acyclic.
func (s Set) IsAcyclic() bool {
	_, err := s.CompatibleOrder(nil)
	return err == nil
}

// CompatibleOrder returns a topological ordering of the given variables
// (plus any constraint variables not listed) compatible with DC, or an
// error when G_DC has a cycle. Ties are broken by the order of vars and
// then lexicographically, so the result is deterministic.
func (s Set) CompatibleOrder(vars []string) ([]string, error) {
	adj := s.DependencyGraph()
	nodes := make(map[string]bool)
	var order []string
	addNode := func(v string) {
		if !nodes[v] {
			nodes[v] = true
			order = append(order, v)
		}
	}
	for _, v := range vars {
		addNode(v)
	}
	for _, v := range s.Vars() {
		addNode(v)
	}
	indeg := make(map[string]int, len(order))
	for _, ys := range adj {
		for _, y := range ys {
			indeg[y]++
		}
	}
	// Kahn's algorithm over the deterministic node order.
	var out []string
	ready := make([]string, 0, len(order))
	inReady := make(map[string]bool)
	for _, v := range order {
		if indeg[v] == 0 {
			ready = append(ready, v)
			inReady[v] = true
		}
	}
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		out = append(out, v)
		for _, y := range adj[v] {
			indeg[y]--
			if indeg[y] == 0 && !inReady[y] {
				ready = append(ready, y)
				inReady[y] = true
			}
		}
	}
	if len(out) != len(order) {
		return nil, fmt.Errorf("constraints: dependency graph G_DC has a cycle")
	}
	return out, nil
}

// BoundVars returns the set of bound variables of Proposition 5.2: the
// least fixpoint of "if all of X is bound then all of Y is bound"
// (cardinality constraints seed the fixpoint since X = ∅).
func (s Set) BoundVars() map[string]bool {
	bound := make(map[string]bool)
	for {
		changed := false
		for _, c := range s {
			all := true
			for _, x := range c.X {
				if !bound[x] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, y := range c.Y {
				if !bound[y] {
					bound[y] = true
					changed = true
				}
			}
		}
		if !changed {
			return bound
		}
	}
}

// AllBound reports whether every variable in vars is bound under s —
// by Claim 1 of Proposition 5.2 this is equivalent to the worst-case
// output size being finite.
func (s Set) AllBound(vars []string) bool {
	bound := s.BoundVars()
	for _, v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

// findCycleVars returns the set of variables on some directed cycle of
// G_DC, or nil if the graph is acyclic.
func (s Set) findCycleVars() map[string]bool {
	adj := s.DependencyGraph()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	parent := make(map[string]string)
	var cycle map[string]bool
	var dfs func(v string) bool
	dfs = func(v string) bool {
		color[v] = gray
		for _, w := range adj[v] {
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case gray:
				// Found a cycle w -> ... -> v -> w.
				cycle = map[string]bool{w: true}
				for u := v; u != w; u = parent[u] {
					cycle[u] = true
				}
				return true
			}
		}
		color[v] = black
		return false
	}
	var nodes []string
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	for _, v := range nodes {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// edgeCount returns the number of G_DC edges counted with multiplicity
// per contributing constraint. Multiplicity (rather than the deduped
// graph) is the progress measure of MakeAcyclic: shrinking Y−X in any
// constraint with X ≠ ∅ strictly decreases it, guaranteeing
// termination even when several constraints contribute the same edge.
func (s Set) edgeCount() int {
	n := 0
	for _, c := range s {
		n += len(c.X) * len(minus(c.Y, c.X))
	}
	return n
}

// MakeAcyclic implements the repair of Proposition 5.2: it returns an
// acyclic constraint set DC′ such that (i) any database satisfying s
// satisfies DC′ (each new constraint weakens an old one by shrinking Y
// while keeping the same guard and bound), and (ii) the worst-case
// output size over vars stays finite. It returns an error when the
// original set already has unbounded variables (infinite bound, Claim 1)
// or — which Proposition 5.2 rules out for bounded inputs — when no
// repair step applies.
func (s Set) MakeAcyclic(vars []string) (Set, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.AllBound(vars) {
		return nil, fmt.Errorf("constraints: some variable is unbound; worst-case output size is infinite")
	}
	cur := s.Clone()
	for {
		cycle := cur.findCycleVars()
		if cycle == nil {
			return cur, nil
		}
		edges := cur.edgeCount()
		found := false
	search:
		for i, c := range cur {
			for _, y := range minus(c.Y, c.X) {
				if !cycle[y] {
					continue
				}
				trial := cur.replaceShrunk(i, y)
				if !trial.AllBound(vars) {
					continue
				}
				if trial.edgeCount() >= edges {
					continue
				}
				cur = trial
				found = true
				break search
			}
		}
		if !found {
			return nil, fmt.Errorf("constraints: no boundedness-preserving repair step found")
		}
	}
}

// replaceShrunk returns a copy of s where constraint i has y removed
// from its Y set (keeping N and the guard, per Claim 2). If Y−{y}
// collapses to X the constraint is dropped (it became trivial).
func (s Set) replaceShrunk(i int, y string) Set {
	out := s.Clone()
	ny := minus(out[i].Y, []string{y})
	if len(minus(ny, out[i].X)) == 0 {
		return append(out[:i], out[i+1:]...)
	}
	out[i].Y = ny
	return out
}

// SimpleFDRepair implements Corollary 5.3: when s contains only
// cardinality constraints and simple FDs, cycles in G_DC consist of
// equality chains; dropping one FD per cycle preserves the worst-case
// bound exactly. It returns an error if s contains any other kind of
// constraint.
func (s Set) SimpleFDRepair() (Set, error) {
	for _, c := range s {
		if !c.IsCardinality() && !c.IsSimpleFD() {
			return nil, fmt.Errorf("constraints: %v is neither a cardinality constraint nor a simple FD", c)
		}
	}
	cur := s.Clone()
	for {
		cycle := cur.findCycleVars()
		if cycle == nil {
			return cur, nil
		}
		// Remove one simple FD whose (x, y) edge lies on the cycle.
		removed := false
		for i, c := range cur {
			if !c.IsSimpleFD() {
				continue
			}
			x := c.X[0]
			y := minus(c.Y, c.X)[0]
			if cycle[x] && cycle[y] {
				cur = append(cur[:i:i], cur[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			return nil, fmt.Errorf("constraints: cycle without a removable simple FD")
		}
	}
}

func contains(xs []string, a string) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

func hasDup(xs []string) bool {
	seen := make(map[string]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}

// minus returns ys \ xs preserving order.
func minus(ys, xs []string) []string {
	var out []string
	for _, y := range ys {
		if !contains(xs, y) {
			out = append(out, y)
		}
	}
	return out
}

// Minus is the exported set difference used by sibling packages.
func Minus(ys, xs []string) []string { return minus(ys, xs) }

// ContainsVar is the exported membership test used by sibling packages.
func ContainsVar(xs []string, a string) bool { return contains(xs, a) }
