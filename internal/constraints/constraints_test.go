package constraints

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	c := Cardinality("R", []string{"A", "B"}, 100)
	if !c.IsCardinality() || c.N != 100 || c.Guard != "R" {
		t.Fatalf("cardinality: %v", c)
	}
	fd := FD("R", []string{"A"}, []string{"B"})
	if !fd.IsFD() || !fd.IsSimpleFD() {
		t.Fatalf("fd: %v", fd)
	}
	if len(fd.Y) != 2 {
		t.Fatalf("FD Y should be X∪Y: %v", fd.Y)
	}
	d := Degree("W", []string{"A", "C"}, []string{"A", "C", "D"}, 7)
	if d.IsCardinality() || d.IsFD() || d.IsSimpleFD() {
		t.Fatalf("degree: %v", d)
	}
	if math.Abs(d.LogN()-math.Log2(7)) > 1e-12 {
		t.Fatal("LogN mismatch")
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestValidate(t *testing.T) {
	good := Set{
		Cardinality("R", []string{"A", "B"}, 10),
		FD("R", []string{"A"}, []string{"B"}),
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Set{{X: []string{"A"}, Y: []string{"A"}, N: 5, Guard: "R"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("X = Y must be rejected")
	}
	bad2 := Set{{X: []string{"A"}, Y: []string{"B"}, N: 5, Guard: "R"}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("X ⊄ Y must be rejected")
	}
	bad3 := Set{{X: nil, Y: []string{"A"}, N: 0, Guard: "R"}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("N < 1 must be rejected")
	}
	bad4 := Set{{X: nil, Y: []string{"A", "A"}, N: 2, Guard: "R"}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("duplicate attrs must be rejected")
	}
}

func TestDependencyGraphAndAcyclicity(t *testing.T) {
	// Cardinality-only: empty graph, acyclic.
	s := Set{Cardinality("R", []string{"A", "B"}, 10)}
	if len(s.DependencyGraph()) != 0 || !s.IsAcyclic() {
		t.Fatal("cardinality-only must be acyclic with empty G_DC")
	}
	// A -> B and B -> A: cycle.
	cyc := Set{
		FD("R", []string{"A"}, []string{"B"}),
		FD("S", []string{"B"}, []string{"A"}),
	}
	if cyc.IsAcyclic() {
		t.Fatal("A->B, B->A must be cyclic")
	}
	// Chain A -> B -> C: acyclic with compatible order A,B,C.
	chain := Set{
		Cardinality("R", []string{"A"}, 10),
		FD("S", []string{"A"}, []string{"B"}),
		FD("T", []string{"B"}, []string{"C"}),
	}
	ord, err := chain.CompatibleOrder([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, v := range ord {
		pos[v] = i
	}
	if !(pos["A"] < pos["B"] && pos["B"] < pos["C"]) {
		t.Fatalf("order %v not compatible", ord)
	}
}

func TestBoundVars(t *testing.T) {
	// Query (63): R(A), S(A,B), T(B,C), W(C,A,D) with N_A, N_B|A,
	// N_C|B, N_AD|C. All variables bound.
	s := query63()
	bound := s.BoundVars()
	for _, v := range []string{"A", "B", "C", "D"} {
		if !bound[v] {
			t.Fatalf("%s should be bound", v)
		}
	}
	if !s.AllBound([]string{"A", "B", "C", "D"}) {
		t.Fatal("AllBound should hold")
	}
	// Dropping the cardinality constraint on A unbinds everything.
	if s[1:].AllBound([]string{"A", "B", "C", "D"}) {
		t.Fatal("without the seed cardinality nothing is bound")
	}
}

// query63 builds the degree constraints of query (63) in the paper.
func query63() Set {
	return Set{
		Cardinality("R", []string{"A"}, 100),
		Degree("S", []string{"A"}, []string{"A", "B"}, 10),
		Degree("T", []string{"B"}, []string{"B", "C"}, 10),
		Degree("W", []string{"C"}, []string{"C", "A", "D"}, 10),
	}
}

func TestQuery63IsCyclicAndRepairable(t *testing.T) {
	s := query63()
	if s.IsAcyclic() {
		t.Fatal("query (63) constraints are cyclic (A->B->C->A)")
	}
	vars := []string{"A", "B", "C", "D"}
	repaired, err := s.MakeAcyclic(vars)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired.IsAcyclic() {
		t.Fatal("repair must be acyclic")
	}
	if !repaired.AllBound(vars) {
		t.Fatal("repair must keep all variables bound")
	}
	// Every repaired constraint must weaken an original: same guard,
	// same N, Y a subset of some original Y with the same X.
	for _, c := range repaired {
		ok := false
		for _, o := range s {
			if c.Guard != o.Guard || c.N != o.N {
				continue
			}
			if !sameVars(c.X, o.X) {
				continue
			}
			sub := true
			for _, y := range c.Y {
				if !contains(o.Y, y) {
					sub = false
					break
				}
			}
			if sub {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("repaired constraint %v does not weaken any original", c)
		}
	}
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !contains(b, x) {
			return false
		}
	}
	return true
}

func TestMakeAcyclicUnboundError(t *testing.T) {
	s := Set{FD("S", []string{"A"}, []string{"B"})} // A never bound
	if _, err := s.MakeAcyclic([]string{"A", "B"}); err == nil {
		t.Fatal("unbound variables must be an error (infinite bound)")
	}
}

func TestMakeAcyclicAlreadyAcyclic(t *testing.T) {
	s := Set{
		Cardinality("R", []string{"A", "B"}, 10),
		FD("R", []string{"A"}, []string{"B"}),
	}
	out, err := s.MakeAcyclic([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(s) {
		t.Fatalf("acyclic input should be returned intact, got %v", out)
	}
}

func TestSimpleFDRepair(t *testing.T) {
	// A <-> B equality cycle plus cardinalities: drop one direction.
	s := Set{
		Cardinality("R", []string{"A", "B"}, 100),
		FD("R", []string{"A"}, []string{"B"}),
		FD("R", []string{"B"}, []string{"A"}),
	}
	out, err := s.SimpleFDRepair()
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsAcyclic() {
		t.Fatal("repair must be acyclic")
	}
	if len(out) != 2 {
		t.Fatalf("exactly one FD should be dropped, got %v", out)
	}
	// Non-simple constraints are rejected.
	bad := Set{Degree("W", []string{"A"}, []string{"A", "B", "C"}, 5)}
	if _, err := bad.SimpleFDRepair(); err == nil {
		t.Fatal("non-simple constraint must be rejected")
	}
}

func TestVarsAndClone(t *testing.T) {
	s := query63()
	vars := s.Vars()
	if len(vars) != 4 {
		t.Fatalf("Vars = %v", vars)
	}
	c := s.Clone()
	c[0].Y[0] = "Z"
	if s[0].Y[0] == "Z" {
		t.Fatal("Clone must deep-copy")
	}
}

func TestCompatibleOrderIncludesQueryVars(t *testing.T) {
	s := Set{Cardinality("R", []string{"A"}, 5)}
	ord, err := s.CompatibleOrder([]string{"Z", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ord) != 2 {
		t.Fatalf("order %v should include both variables", ord)
	}
}

func TestExportedHelpers(t *testing.T) {
	if !ContainsVar([]string{"A", "B"}, "B") || ContainsVar([]string{"A"}, "B") {
		t.Fatal("ContainsVar mismatch")
	}
	d := Minus([]string{"A", "B", "C"}, []string{"B"})
	if len(d) != 2 || d[0] != "A" || d[1] != "C" {
		t.Fatalf("Minus = %v", d)
	}
}

// Property: MakeAcyclic on random bounded constraint sets always yields
// an acyclic set, keeps every variable bound, and only weakens
// constraints (each output Y ⊆ some input Y with equal X, N, guard).
func TestPropertyMakeAcyclic(t *testing.T) {
	varsAll := []string{"A", "B", "C", "D", "E"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		vars := varsAll[:n]
		s := Set{Cardinality("R0", vars[:1+rng.Intn(n)], float64(2+rng.Intn(50)))}
		m := 1 + rng.Intn(4)
		for i := 0; i < m; i++ {
			// Random (X, Y) with X ⊊ Y.
			perm := rng.Perm(n)
			ySize := 2 + rng.Intn(n-1)
			if ySize > n {
				ySize = n
			}
			y := make([]string, ySize)
			for j := range y {
				y[j] = vars[perm[j]]
			}
			xSize := 1 + rng.Intn(ySize-1)
			x := y[:xSize]
			s = append(s, Degree("G", x, y, float64(1+rng.Intn(20))))
		}
		if !s.AllBound(vars) {
			return true // repair not required to succeed; skip
		}
		out, err := s.MakeAcyclic(vars)
		if err != nil {
			return false
		}
		if !out.IsAcyclic() || !out.AllBound(vars) {
			return false
		}
		for _, c := range out {
			ok := false
			for _, o := range s {
				if c.Guard == o.Guard && c.N == o.N && sameVars(c.X, o.X) && subset(c.Y, o.Y) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func subset(a, b []string) bool {
	for _, x := range a {
		if !contains(b, x) {
			return false
		}
	}
	return true
}
