// Package core implements the paper's worst-case optimal join
// algorithms:
//
//   - Generic-Join (Section 2, Algorithm 1 generalized to arbitrary
//     full conjunctive queries), runtime Õ(N^{ρ*}) by Theorem 4.1;
//   - the heavy/light triangle algorithm (Algorithm 2), derived from
//     the entropy proof of the triangle bound;
//   - backtracking search for acyclic degree constraints (Algorithm 3,
//     Theorem 5.1), runtime Õ(|D| + ∏ N_{Y|X}^{δ_{Y|X}}).
//
// Queries are full conjunctive queries: every variable appears in the
// head. Relations bind to atoms positionally.
//
// Execution plans are built by BuildPlanWith under a pluggable
// OrderPolicy — explicit orders, the degree-order heuristic, or the
// cost-based optimizer of package planner, which scores candidate
// orders with the bound LPs of package bounds. Per-atom tries are
// served from a process-wide cache keyed by (relation, binding,
// order), so repeated queries and planner probes skip the re-sort.
package core

import (
	"fmt"

	"wcoj/internal/hypergraph"
	"wcoj/internal/relation"
)

// Atom is one body atom R_F(A_F): a named relation with the query
// variables bound to its attribute positions.
type Atom struct {
	Name string
	Vars []string
	Rel  *relation.Relation
}

// Query is a full conjunctive query Q(A_[n]) ← ∧_F R_F(A_F).
type Query struct {
	// Vars is the query's variable set in output order. For a full CQ
	// this is all variables appearing in the body.
	Vars  []string
	Atoms []Atom
}

// NewQuery builds and validates a query. Every atom's variable count
// must match its relation's arity, variables may not repeat within an
// atom, and every query variable must occur in some atom.
func NewQuery(vars []string, atoms []Atom) (*Query, error) {
	q := &Query{Vars: append([]string(nil), vars...), Atoms: atoms}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Validate checks the structural invariants of the query.
func (q *Query) Validate() error {
	seen := make(map[string]bool)
	for _, v := range q.Vars {
		if seen[v] {
			return fmt.Errorf("core: duplicate query variable %q", v)
		}
		seen[v] = true
	}
	covered := make(map[string]bool)
	for _, a := range q.Atoms {
		if a.Rel == nil {
			return fmt.Errorf("core: atom %s has no relation", a.Name)
		}
		if len(a.Vars) != a.Rel.Arity() {
			return fmt.Errorf("core: atom %s has %d variables but relation arity %d",
				a.Name, len(a.Vars), a.Rel.Arity())
		}
		av := make(map[string]bool)
		for _, v := range a.Vars {
			if av[v] {
				return fmt.Errorf("core: atom %s repeats variable %q", a.Name, v)
			}
			av[v] = true
			if !seen[v] {
				return fmt.Errorf("core: atom %s uses variable %q not in the head (query must be full)", a.Name, v)
			}
			covered[v] = true
		}
	}
	for _, v := range q.Vars {
		if !covered[v] {
			return fmt.Errorf("core: variable %q occurs in no atom", v)
		}
	}
	return nil
}

// Hypergraph returns the query's multi-hypergraph.
func (q *Query) Hypergraph() (*hypergraph.Hypergraph, error) {
	edges := make([]hypergraph.Edge, len(q.Atoms))
	for i, a := range q.Atoms {
		edges[i] = hypergraph.Edge{Name: a.Name, Vertices: a.Vars}
	}
	return hypergraph.New(q.Vars, edges)
}

// Sizes returns |R_F| per atom, as floats for the bound LPs.
func (q *Query) Sizes() []float64 {
	out := make([]float64, len(q.Atoms))
	for i, a := range q.Atoms {
		out[i] = float64(a.Rel.Len())
	}
	return out
}

// MaxRelationSize returns N = max_F |R_F|.
func (q *Query) MaxRelationSize() int {
	best := 0
	for _, a := range q.Atoms {
		if a.Rel.Len() > best {
			best = a.Rel.Len()
		}
	}
	return best
}

// AtomsWith returns the indexes of atoms containing variable v.
func (q *Query) AtomsWith(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		for _, av := range a.Vars {
			if av == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// OutputName returns a display name for the query result.
func (q *Query) OutputName() string { return "Q" }

// Stats records execution counters for a join run; they back the
// empirical runtime-shape checks in the benchmark harness.
type Stats struct {
	// Output is the number of result tuples.
	Output int
	// IntersectValues counts values produced by all level
	// intersections (Generic-Join / Algorithm 3) — the paper's unit of
	// work in the analysis (19).
	IntersectValues int
	// Recursions counts search-tree nodes explored.
	Recursions int
	// Intermediate is the maximum intermediate relation size (binary
	// join plans; zero for one-shot WCOJ algorithms).
	Intermediate int
	// AggMultiplies counts the free-counted shortcuts taken by the
	// aggregate-aware engines: suffix levels whose subtree
	// cardinalities were multiplied (or tail intersections counted)
	// instead of recursed into.
	AggMultiplies int
	// AggMemoHits counts subtree results served from the aggregate
	// memo. Memo tables are per-worker, so this total may differ
	// between serial and parallel runs of the same query (the counted
	// result never does).
	AggMemoHits int
}

// Merge folds the counters of o into s. Additive counters sum;
// Intermediate, a high-water mark, takes the maximum. The parallel
// engine runs each shard against a private Stats and merges them in
// deterministic chunk order, so a parallel run reports the same
// counter totals as the equivalent serial run.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.Output += o.Output
	s.IntersectValues += o.IntersectValues
	s.Recursions += o.Recursions
	if o.Intermediate > s.Intermediate {
		s.Intermediate = o.Intermediate
	}
	s.AggMultiplies += o.AggMultiplies
	s.AggMemoHits += o.AggMemoHits
}
