package core

import (
	"context"
	"sync/atomic"

	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// GenericJoinOptions configure a Generic-Join run.
type GenericJoinOptions struct {
	// Order is the global variable order; nil selects the degree-order
	// heuristic (most-constrained variable first).
	Order []string
	// Policy, when non-nil, resolves the variable order and takes
	// precedence over Order (explicit, heuristic, or the cost-based
	// optimizer of internal/planner).
	Policy OrderPolicy
	// Parallelism is the number of worker goroutines sharding the
	// depth-0 intersection. Values <= 1 run the serial search. Output
	// order and Stats totals are identical at every setting.
	Parallelism int
	// Store, when non-nil, serves the per-atom tries (a long-lived DB
	// passes its own); nil uses the process-global trie store.
	Store *TrieStore
	// Ctx, when non-nil, cancels the run: workers poll it and unwind
	// promptly, and the entry points return ctx.Err(). Nil means no
	// cancellation.
	Ctx context.Context
}

// plan resolves the options into an execution plan: Policy wins when
// set, otherwise Order (nil Order selects the heuristic). Tries come
// from o.Store (nil = the process-global store).
func (o GenericJoinOptions) plan(q *Query) (*Plan, error) {
	policy := o.Policy
	if policy == nil && o.Order != nil {
		policy = ExplicitOrder(o.Order)
	}
	return BuildPlanIn(o.Store, q, policy)
}

// GenericJoin evaluates the query with the Generic-Join algorithm of
// [52] (the generalization of Algorithm 1): fix a global variable
// order; at each level intersect, across all atoms containing the
// current variable, the distinct values compatible with the current
// prefix binding; recurse per value. With sorted-trie intersections the
// runtime is Õ(N^{ρ*}) — the AGM bound — by the Theorem 4.1 analysis.
func GenericJoin(q *Query, opts GenericJoinOptions) (*relation.Relation, *Stats, error) {
	stats := &Stats{}
	out := relation.NewBuilder(q.OutputName(), q.Vars...)
	err := GenericJoinVisit(q, opts, stats, func(t relation.Tuple) error {
		return out.Add(t...)
	})
	if err != nil {
		return nil, nil, err
	}
	rel := out.Build()
	stats.Output = rel.Len()
	return rel, stats, nil
}

// GenericJoinCount runs Generic-Join without materializing the output,
// returning only the result cardinality. This is the enumeration mode
// the paper highlights: WCOJ algorithms can stream output tuples with
// no intermediate state beyond the search stack. Under parallelism
// each worker counts locally; no tuples are buffered.
func GenericJoinCount(q *Query, opts GenericJoinOptions) (int, *Stats, error) {
	p, err := opts.plan(q)
	if err != nil {
		return 0, nil, err
	}
	return GenericJoinPlanCount(opts.Ctx, p, opts.Parallelism)
}

// GenericJoinPlanCount is GenericJoinCount over a prebuilt plan — the
// re-execution path of prepared queries, with context cancellation.
func GenericJoinPlanCount(ctx context.Context, p *Plan, parallelism int) (int, *Stats, error) {
	stats := &Stats{}
	if err := CtxErr(ctx); err != nil {
		return 0, nil, err
	}
	n := 0
	var err error
	if parallelism <= 1 || len(p.Order) == 0 {
		var stop atomic.Bool
		defer WatchCancel(ctx, &stop)()
		w := newGJWorker(p, stats, func(relation.Tuple) error {
			n++
			return nil
		})
		w.stop = &stop
		w.budget = BudgetFrom(ctx)
		err = CtxAbortErr(ctx, w.rec(0))
	} else {
		vals := p.TopValues(nil)
		stats.Recursions++
		stats.IntersectValues += len(vals)
		n, err = RunShardedCount(ctx, vals, parallelism, stats, gjShardRun(p, BudgetFrom(ctx)))
	}
	if err != nil {
		return 0, nil, err
	}
	stats.Output = n
	return n, stats, nil
}

// GenericJoinVisit streams the join result to emit in the canonical
// (variable-order lexicographic) sequence. The Tuple passed to emit is
// reused between calls; emit must copy it to retain it. With
// opts.Parallelism > 1 the depth-0 intersection is sharded across
// workers and per-chunk results are replayed in deterministic chunk
// order, so the emit sequence is identical to the serial run.
func GenericJoinVisit(q *Query, opts GenericJoinOptions, stats *Stats, emit func(relation.Tuple) error) error {
	p, err := opts.plan(q)
	if err != nil {
		return err
	}
	return GenericJoinPlanVisit(opts.Ctx, p, opts.Parallelism, stats, emit)
}

// GenericJoinPlanVisit is GenericJoinVisit over a prebuilt plan — the
// re-execution path of prepared queries, with context cancellation.
func GenericJoinPlanVisit(ctx context.Context, p *Plan, parallelism int, stats *Stats, emit func(relation.Tuple) error) error {
	if err := CtxErr(ctx); err != nil {
		return err
	}
	if parallelism <= 1 || len(p.Order) == 0 {
		var stop atomic.Bool
		defer WatchCancel(ctx, &stop)()
		w := newGJWorker(p, stats, emit)
		w.stop = &stop
		w.budget = BudgetFrom(ctx)
		return CtxAbortErr(ctx, w.rec(0))
	}
	vals := p.TopValues(nil)
	// Account for the root node exactly as the serial search does.
	stats.Recursions++
	stats.IntersectValues += len(vals)
	return RunShardedTop(ctx, vals, parallelism, len(p.Q.Vars), stats, emit, gjShardRun(p, BudgetFrom(ctx)))
}

// gjShardRun adapts the Generic-Join search to the sharded runner:
// each chunk gets a fresh worker iterating its slice of the
// precomputed depth-0 intersection. All workers draw from the one
// budget, so it bounds the run's total node count.
func gjShardRun(p *Plan, budget *NodeBudget) shardRun {
	return func(chunk []relation.Value, st *Stats, stop *atomic.Bool, emit func(relation.Tuple) error) error {
		// Charge the chunk's depth-0 values upfront: per-chunk Stats
		// restart the &255 poll stride, so without this a fleet of
		// small chunks could dodge the budget entirely.
		if !budget.Spend(int64(len(chunk))) {
			return ErrNodeBudget
		}
		w := newGJWorker(p, st, emit)
		w.stop = stop
		w.budget = budget
		return w.iterate(0, chunk)
	}
}

// gjAtom is the per-atom, per-worker execution state of Generic-Join,
// navigating the trie's CSR index by segment.
type gjAtom struct {
	trie *trie.Trie
	// levelOf[d] is this atom's trie level bound when the global
	// variable at depth d is bound, or -1 if the atom lacks that
	// variable.
	levelOf []int
	// segLo/segHi[l] is the candidate segment range at trie level l
	// after binding the atom's first l variables (the children span of
	// the segment chosen at level l-1; the whole level for l = 0).
	segLo []int
	segHi []int
	// segCur[l] is the narrowing cursor within [segLo[l], segHi[l]):
	// each per-value sweep probes ascending values, so arm resets it to
	// segLo once per sweep and every find gallops forward from the
	// previous hit — amortized O(1) per probe. A level can be swept
	// many times (once per combination of the other atoms' bindings),
	// which is why the cursor is separate from segLo.
	segCur []int
	// segAt[l] is the segment chosen at level l by the current prefix;
	// its row range (SegRows) is what the aggregate engine's products
	// and memo keys are built from.
	segAt []int
}

// reset re-arms the atom for a fresh search from the root.
func (ga *gjAtom) reset() {
	ga.segLo[0], ga.segHi[0] = 0, ga.trie.NumSegs(0)
}

// arm starts a fresh ascending sweep over the level-l candidates.
func (ga *gjAtom) arm(l int) {
	ga.segCur[l] = ga.segLo[l]
}

// bind locates v at trie level l within the candidate range, recording
// the chosen segment and pushing its children span. It reports whether
// v is present (it always is when v came from the level intersection).
func (ga *gjAtom) bind(l int, v relation.Value) bool {
	s, ok := ga.trie.FindSegFrom(l, ga.segCur[l], ga.segHi[l], v)
	if !ok {
		ga.segCur[l] = s
		return false
	}
	ga.segCur[l] = s + 1
	ga.segAt[l] = s
	if l+1 < ga.trie.Depth() {
		ga.segLo[l+1], ga.segHi[l+1] = ga.trie.Children(l, s)
	}
	return true
}

// rows returns the row range selected after this atom's first l
// variables are bound: the whole relation for l = 0, the chosen
// level-(l-1) segment's rows otherwise. The range sizes feed the
// aggregate engine's suffix products and memo keys, byte-identical to
// the row-stack ranges of the previous layout.
func (ga *gjAtom) rows(l int) (lo, hi int) {
	if l == 0 {
		return 0, ga.trie.Len()
	}
	return ga.trie.SegRows(l-1, ga.segAt[l-1])
}

// gjWorker is the mutable state of one search goroutine: the per-atom
// range stacks, the binding tuple and the per-depth scratch buffers.
// Workers share the Plan read-only.
type gjWorker struct {
	plan    *Plan
	atoms   []*gjAtom
	binding relation.Tuple
	scratch [][]relation.Value
	ranges  []trie.LevelRange
	stats   *Stats
	emit    func(relation.Tuple) error
	// stop, when non-nil, is polled every few hundred search nodes so a
	// cancelled (or aborted) run unwinds promptly even when it emits
	// rarely; the recursion returns ErrAborted.
	stop *atomic.Bool
	// budget, when non-nil, is drawn down at the same stride; an
	// exhausted budget unwinds with ErrNodeBudget.
	budget *NodeBudget
}

func newGJWorker(p *Plan, stats *Stats, emit func(relation.Tuple) error) *gjWorker {
	w := &gjWorker{
		plan:    p,
		atoms:   make([]*gjAtom, len(p.Tries)),
		binding: make(relation.Tuple, len(p.Q.Vars)),
		scratch: make([][]relation.Value, len(p.Order)),
		ranges:  make([]trie.LevelRange, 0, len(p.Tries)),
		stats:   stats,
		emit:    emit,
	}
	for i, tr := range p.Tries {
		k := tr.Depth()
		idx := make([]int, 4*k)
		ga := &gjAtom{
			trie:    tr,
			levelOf: p.LevelOf[i],
			segLo:   idx[:k:k],
			segHi:   idx[k : 2*k : 2*k],
			segCur:  idx[2*k : 3*k : 3*k],
			segAt:   idx[3*k:],
		}
		ga.reset()
		w.atoms[i] = ga
	}
	return w
}

// arm starts a fresh ascending per-value sweep at depth d: every
// participating atom's narrowing cursor rewinds to its candidate
// range's start.
func (w *gjWorker) arm(d int) {
	for _, ai := range w.plan.Participants[d] {
		ga := w.atoms[ai]
		ga.arm(ga.levelOf[d])
	}
}

// rec is the Generic-Join recursion: intersect the participating
// level ranges at depth d and recurse per value. w.ranges holds
// arena-loaned level ranges as per-depth scratch.
//
//wcojlint:retains w.ranges is scratch consumed within this recursion step, under one pinned snapshot
func (w *gjWorker) rec(d int) error {
	w.stats.Recursions++
	if w.stats.Recursions&255 == 0 {
		if w.stop != nil && w.stop.Load() {
			return ErrAborted
		}
		if !w.budget.Spend(256) {
			return ErrNodeBudget
		}
	}
	if d == len(w.plan.Order) {
		return w.emit(w.binding)
	}
	w.ranges = w.ranges[:0]
	for _, ai := range w.plan.Participants[d] {
		ga := w.atoms[ai]
		l := ga.levelOf[d]
		w.ranges = append(w.ranges, ga.trie.SegLevel(l, ga.segLo[l], ga.segHi[l]))
	}
	vals := trie.IntersectLevels(w.scratch[d][:0], w.ranges)
	w.scratch[d] = vals
	w.stats.IntersectValues += len(vals)
	return w.iterate(d, vals)
}

// iterate runs the per-value loop of depth d over vals: bind the
// value, narrow every participating atom's range, recurse. The
// parallel engine calls it directly at depth 0 with one chunk of the
// precomputed top-level intersection.
func (w *gjWorker) iterate(d int, vals []relation.Value) error {
	w.arm(d)
	for _, v := range vals {
		w.binding[w.plan.OutPos[d]] = v
		ok := true
		for _, ai := range w.plan.Participants[d] {
			ga := w.atoms[ai]
			if !ga.bind(ga.levelOf[d], v) {
				ok = false
				break
			}
		}
		if !ok {
			continue // cannot happen: v came from the intersection
		}
		if err := w.rec(d + 1); err != nil {
			return err
		}
	}
	return nil
}
