package core

import (
	"fmt"

	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// GenericJoinOptions configure a Generic-Join run.
type GenericJoinOptions struct {
	// Order is the global variable order; nil selects the degree-order
	// heuristic (most-constrained variable first).
	Order []string
}

// GenericJoin evaluates the query with the Generic-Join algorithm of
// [52] (the generalization of Algorithm 1): fix a global variable
// order; at each level intersect, across all atoms containing the
// current variable, the distinct values compatible with the current
// prefix binding; recurse per value. With sorted-trie intersections the
// runtime is Õ(N^{ρ*}) — the AGM bound — by the Theorem 4.1 analysis.
func GenericJoin(q *Query, opts GenericJoinOptions) (*relation.Relation, *Stats, error) {
	stats := &Stats{}
	out := relation.NewBuilder(q.OutputName(), q.Vars...)
	err := genericJoinVisit(q, opts, stats, func(t relation.Tuple) error {
		return out.Add(t...)
	})
	if err != nil {
		return nil, nil, err
	}
	rel := out.Build()
	stats.Output = rel.Len()
	return rel, stats, nil
}

// GenericJoinCount runs Generic-Join without materializing the output,
// returning only the result cardinality. This is the enumeration mode
// the paper highlights: WCOJ algorithms can stream output tuples with
// no intermediate state beyond the search stack.
func GenericJoinCount(q *Query, opts GenericJoinOptions) (int, *Stats, error) {
	stats := &Stats{}
	n := 0
	err := genericJoinVisit(q, opts, stats, func(relation.Tuple) error {
		n++
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	stats.Output = n
	return n, stats, nil
}

// gjAtom is the per-atom execution state of Generic-Join.
type gjAtom struct {
	trie *trie.Trie
	// levelOf[d] is this atom's trie level bound when the global
	// variable at depth d is bound, or -1 if the atom lacks that
	// variable.
	levelOf []int
	// ranges[l] is the row range after binding the atom's first l
	// variables; ranges[0] = [0, Len).
	loStack []int
	hiStack []int
	depth   int // number of atom variables currently bound
}

func genericJoinVisit(q *Query, opts GenericJoinOptions, stats *Stats, emit func(relation.Tuple) error) error {
	if err := q.Validate(); err != nil {
		return err
	}
	order := opts.Order
	if order == nil {
		h, err := q.Hypergraph()
		if err != nil {
			return err
		}
		order = h.DegreeOrder()
	}
	if err := checkOrder(q, order); err != nil {
		return err
	}

	atoms := make([]*gjAtom, len(q.Atoms))
	for i, a := range q.Atoms {
		// Rename the relation's columns to the atom's variables so the
		// trie order can be expressed in query-variable names.
		rel, err := a.Rel.Rename(a.Name, a.Vars...)
		if err != nil {
			return fmt.Errorf("core: atom %s: %w", a.Name, err)
		}
		// The atom's trie order is the global order restricted to the
		// atom's variables.
		var atomOrder []string
		for _, v := range order {
			for _, av := range a.Vars {
				if av == v {
					atomOrder = append(atomOrder, v)
					break
				}
			}
		}
		tr, err := trie.Build(rel, atomOrder)
		if err != nil {
			return fmt.Errorf("core: atom %s: %w", a.Name, err)
		}
		ga := &gjAtom{
			trie:    tr,
			levelOf: make([]int, len(order)),
			loStack: make([]int, len(atomOrder)+1),
			hiStack: make([]int, len(atomOrder)+1),
		}
		for d := range order {
			ga.levelOf[d] = -1
		}
		for l, v := range atomOrder {
			for d, ov := range order {
				if ov == v {
					ga.levelOf[d] = l
				}
			}
		}
		ga.loStack[0], ga.hiStack[0] = 0, tr.Len()
		atoms[i] = ga
	}

	// participants[d] lists the atoms whose next level binds order[d].
	participants := make([][]int, len(order))
	for d := range order {
		for i, ga := range atoms {
			if ga.levelOf[d] >= 0 {
				participants[d] = append(participants[d], i)
			}
		}
		if len(participants[d]) == 0 {
			return fmt.Errorf("core: variable %q occurs in no atom", order[d])
		}
	}

	// Map search-order positions back to output positions.
	outPos := make([]int, len(order))
	for d, v := range order {
		outPos[d] = -1
		for i, qv := range q.Vars {
			if qv == v {
				outPos[d] = i
			}
		}
		if outPos[d] < 0 {
			return fmt.Errorf("core: order variable %q not in query", order[d])
		}
	}

	binding := make(relation.Tuple, len(q.Vars))
	scratch := make([][]relation.Value, len(order))
	ranges := make([]trie.LevelRange, 0, len(q.Atoms))

	var rec func(d int) error
	rec = func(d int) error {
		stats.Recursions++
		if d == len(order) {
			return emit(binding)
		}
		ranges = ranges[:0]
		for _, ai := range participants[d] {
			ga := atoms[ai]
			l := ga.levelOf[d]
			ranges = append(ranges, trie.LevelRange{
				Col: ga.trie.Level(l),
				Lo:  ga.loStack[l],
				Hi:  ga.hiStack[l],
			})
		}
		vals := trie.IntersectLevels(scratch[d][:0], ranges)
		scratch[d] = vals
		stats.IntersectValues += len(vals)
		for _, v := range vals {
			binding[outPos[d]] = v
			ok := true
			for _, ai := range participants[d] {
				ga := atoms[ai]
				l := ga.levelOf[d]
				lo, hi := ga.trie.Range(l, ga.loStack[l], ga.hiStack[l], v)
				if lo >= hi {
					ok = false
					break
				}
				ga.loStack[l+1], ga.hiStack[l+1] = lo, hi
			}
			if !ok {
				continue // cannot happen: v came from the intersection
			}
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		// IntersectLevels may have reallocated; keep the grown buffer
		// but recursion below us used its own depth slot, so nothing
		// to restore.
		return nil
	}
	return rec(0)
}

// checkOrder verifies order is a permutation of the query variables.
func checkOrder(q *Query, order []string) error {
	if len(order) != len(q.Vars) {
		return fmt.Errorf("core: order %v must cover all %d query variables", order, len(q.Vars))
	}
	seen := make(map[string]bool)
	for _, v := range order {
		if seen[v] {
			return fmt.Errorf("core: order repeats variable %q", v)
		}
		seen[v] = true
	}
	for _, v := range q.Vars {
		if !seen[v] {
			return fmt.Errorf("core: order is missing variable %q", v)
		}
	}
	return nil
}
