package core

import (
	"fmt"
	"math"

	"wcoj/internal/relation"
)

// TriangleHeavyLight evaluates the triangle query
//
//	Q(A,B,C) ← R(A,B), S(B,C), T(A,C)
//
// with Algorithm 2 of the paper, the algorithm read off the entropy
// (submodularity) proof of 2H[ABC] ≤ H[AB] + H[BC] + H[AC]:
//
//	θ      ← sqrt(|R|·|S|/|T|)
//	Rheavy ← {(a,b) ∈ R : |σ_{A=a}R| > θ}
//	Rlight ← R − Rheavy
//	return (Rheavy ⋈ S) ⋉ T  ∪  (Rlight ⋈ T) ⋉ S
//
// Both branches produce at most sqrt(|R|·|S|·|T|) intermediate tuples,
// so the runtime is Õ(N + sqrt(|R|·|S|·|T|)) — worst-case optimal.
//
// The relations must follow the triangle pattern: R and S share exactly
// one attribute (B), S and T share exactly one (C), and T and R share
// exactly one (A), with R = (A,B), S = (B,C), T = (A,C) up to names.
func TriangleHeavyLight(r, s, t *relation.Relation) (*relation.Relation, *Stats, error) {
	a, b, c, err := trianglePattern(r, s, t)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	if r.Len() == 0 || s.Len() == 0 || t.Len() == 0 {
		return relation.Empty("Q", a, b, c), stats, nil
	}
	theta := math.Sqrt(float64(r.Len()) * float64(s.Len()) / float64(t.Len()))
	threshold := int(math.Floor(theta))

	heavy, light, err := r.Partition([]string{a}, threshold)
	if err != nil {
		return nil, nil, err
	}

	// Heavy branch: (Rheavy ⋈ S) ⋉ T. |Rheavy ⋈ S| ≤ (|R|/θ)·|S| =
	// sqrt(|R||S||T|).
	hs, err := relation.Join(heavy, s)
	if err != nil {
		return nil, nil, err
	}
	if hs.Len() > stats.Intermediate {
		stats.Intermediate = hs.Len()
	}
	hst, err := hs.Semijoin(t)
	if err != nil {
		return nil, nil, err
	}

	// Light branch: (Rlight ⋈ T) ⋉ S. |Rlight ⋈ T| ≤ θ·|T| =
	// sqrt(|R||S||T|).
	lt, err := relation.Join(light, t)
	if err != nil {
		return nil, nil, err
	}
	if lt.Len() > stats.Intermediate {
		stats.Intermediate = lt.Len()
	}
	lts, err := lt.Semijoin(s)
	if err != nil {
		return nil, nil, err
	}

	// Normalize both to (a, b, c) and union.
	hOut, err := hst.Project(a, b, c)
	if err != nil {
		return nil, nil, err
	}
	lOut, err := lts.Project(a, b, c)
	if err != nil {
		return nil, nil, err
	}
	res, err := hOut.Union(lOut)
	if err != nil {
		return nil, nil, err
	}
	res, err = res.Rename("Q", a, b, c)
	if err != nil {
		return nil, nil, err
	}
	stats.Output = res.Len()
	return res, stats, nil
}

// trianglePattern validates the triangle schema and returns the
// attribute names (a, b, c) with r=(a,b), s=(b,c), t=(a,c).
func trianglePattern(r, s, t *relation.Relation) (string, string, string, error) {
	if r.Arity() != 2 || s.Arity() != 2 || t.Arity() != 2 {
		return "", "", "", fmt.Errorf("core: triangle relations must be binary, got %d/%d/%d",
			r.Arity(), s.Arity(), t.Arity())
	}
	shared := func(x, y *relation.Relation) []string {
		var out []string
		for _, a := range x.Attrs() {
			if y.HasAttr(a) {
				out = append(out, a)
			}
		}
		return out
	}
	rs, st, tr := shared(r, s), shared(s, t), shared(t, r)
	if len(rs) != 1 || len(st) != 1 || len(tr) != 1 {
		return "", "", "", fmt.Errorf("core: relations do not form a triangle pattern: shared attrs %v/%v/%v", rs, st, tr)
	}
	b, c, a := rs[0], st[0], tr[0]
	if a == b || b == c || a == c {
		return "", "", "", fmt.Errorf("core: degenerate triangle pattern (a=%s b=%s c=%s)", a, b, c)
	}
	return a, b, c, nil
}

// TriangleGenericJoin evaluates the same triangle query with
// Generic-Join (Algorithm 1's loop structure) — the ablation partner of
// TriangleHeavyLight in the benchmarks.
func TriangleGenericJoin(r, s, t *relation.Relation) (*relation.Relation, *Stats, error) {
	a, b, c, err := trianglePattern(r, s, t)
	if err != nil {
		return nil, nil, err
	}
	q, err := NewQuery([]string{a, b, c}, []Atom{
		{Name: "R", Vars: []string{a, b}, Rel: r},
		{Name: "S", Vars: []string{b, c}, Rel: s},
		{Name: "T", Vars: []string{a, c}, Rel: t},
	})
	if err != nil {
		return nil, nil, err
	}
	return GenericJoin(q, GenericJoinOptions{Order: []string{a, b, c}})
}
