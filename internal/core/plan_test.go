package core

import (
	"strings"
	"sync"
	"testing"

	"wcoj/internal/relation"
)

func planTestQuery(t testing.TB) *Query {
	t.Helper()
	r := relation.NewBuilder("R", "x", "y")
	s := relation.NewBuilder("S", "y", "z")
	for i := 0; i < 8; i++ {
		if err := r.Add(relation.Value(i), relation.Value(i%3)); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(relation.Value(i%3), relation.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	q, err := NewQuery([]string{"A", "B", "C"}, []Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: r.Build()},
		{Name: "S", Vars: []string{"B", "C"}, Rel: s.Build()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestBuildPlanOrderErrors pins the descriptive errors BuildPlan
// returns for malformed explicit orders: every failure names the
// offending variable.
func TestBuildPlanOrderErrors(t *testing.T) {
	q := planTestQuery(t)
	cases := []struct {
		name  string
		order []string
		want  string // substring the error must contain
	}{
		{"missing one", []string{"A", "B"}, `missing query variable "C"`},
		{"missing several names first", []string{"B"}, `missing query variable "A"`},
		{"duplicate", []string{"A", "B", "B"}, `repeats variable "B"`},
		{"duplicate with full cover", []string{"A", "B", "C", "A"}, `repeats variable "A"`},
		{"unknown variable", []string{"A", "B", "D"}, `names "D"`},
		{"unknown replaces known", []string{"A", "D", "C"}, `names "D"`},
		{"empty order", []string{}, `missing query variable "A"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildPlan(q, tc.order)
			if err == nil {
				t.Fatalf("BuildPlan(%v) succeeded, want error containing %q", tc.order, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("BuildPlan(%v) error %q, want substring %q", tc.order, err, tc.want)
			}
		})
	}
	// Valid permutations still plan.
	for _, order := range [][]string{{"A", "B", "C"}, {"C", "B", "A"}, nil} {
		if _, err := BuildPlan(q, order); err != nil {
			t.Fatalf("BuildPlan(%v): %v", order, err)
		}
	}
}

// TestBuildPlanWithPolicy exercises the pluggable OrderPolicy seam:
// explicit and heuristic policies plan, a failing policy propagates
// its error, and a policy returning a bad order is caught.
func TestBuildPlanWithPolicy(t *testing.T) {
	q := planTestQuery(t)
	p, err := BuildPlanWith(q, ExplicitOrder([]string{"B", "A", "C"}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p.Order, ",") != "B,A,C" {
		t.Fatalf("explicit policy order %v", p.Order)
	}
	if p, err = BuildPlanWith(q, nil); err != nil || len(p.Order) != 3 {
		t.Fatalf("nil policy should fall back to the heuristic: %v %v", p, err)
	}
	if _, err = BuildPlanWith(q, OrderFunc(func(*Query) ([]string, error) {
		return []string{"A", "A", "A"}, nil
	})); err == nil || !strings.Contains(err.Error(), `repeats variable "A"`) {
		t.Fatalf("bad policy order not caught: %v", err)
	}
}

// TestTrieCache asserts repeated plans hit the cache and that
// concurrent plan construction is race-free and shares tries.
func TestTrieCache(t *testing.T) {
	ResetTrieCache()
	q := planTestQuery(t)
	p1, err := BuildPlan(q, []string{"B", "A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, size := TrieCacheStats()
	if hits != 0 || misses != 2 || size != 2 {
		t.Fatalf("cold build: hits=%d misses=%d size=%d, want 0/2/2", hits, misses, size)
	}
	p2, err := BuildPlan(q, []string{"B", "A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ = TrieCacheStats()
	if hits != 2 || misses != 2 {
		t.Fatalf("warm build: hits=%d misses=%d, want 2/2", hits, misses)
	}
	for i := range p1.Tries {
		if p1.Tries[i] != p2.Tries[i] {
			t.Fatalf("atom %d trie rebuilt instead of shared", i)
		}
	}
	// A different global order needs a new trie only for S ([C,B]); R's
	// restriction is [B,A] under both global orders and is reused.
	if _, err := BuildPlan(q, []string{"C", "B", "A"}); err != nil {
		t.Fatal(err)
	}
	hits, misses, size = TrieCacheStats()
	if hits != 3 || misses != 3 || size != 3 {
		t.Fatalf("after second order: hits=%d misses=%d size=%d, want 3/3/3", hits, misses, size)
	}

	// Concurrent cold builds agree on one trie per atom (run with
	// -race to check the locking).
	ResetTrieCache()
	var wg sync.WaitGroup
	plans := make([]*Plan, 8)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := BuildPlan(q, []string{"A", "B", "C"})
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	if _, _, size = TrieCacheStats(); size != 2 {
		t.Fatalf("concurrent builds left %d cached tries, want 2", size)
	}
}
