package core

import (
	"fmt"

	"wcoj/internal/constraints"
	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// BacktrackOptions configure a BacktrackingSearch run.
type BacktrackOptions struct {
	// Order is a variable order compatible with the degree constraints
	// (every X-variable of a constraint before every Y−X variable).
	// Nil derives one with constraints.Set.CompatibleOrder, which
	// fails when the constraint set is cyclic.
	Order []string
}

// btConstraint is the per-constraint execution state of Algorithm 3.
type btConstraint struct {
	c    constraints.Constraint
	trie *trie.Trie
	// levelOf[d] is this constraint's trie level for global depth d,
	// or -1 when order[d] ∉ Y.
	levelOf []int
	// intersector[d] reports order[d] ∈ Y−X (the constraint
	// participates in the candidate intersection at depth d, per the
	// loop condition of Algorithm 3).
	intersector []bool
	// segLo/segHi[l] is the candidate segment range at trie level l
	// (the children span pushed by the level-(l-1) binding). segCur[l]
	// is the monotone narrowing cursor for the sweep in progress: it is
	// re-armed to segLo[l] at the start of every value sweep, because
	// the same candidate span can be swept several times without a
	// fresh Children push (the search backtracks above l and descends
	// again), as in the Generic-Join engine.
	segLo  []int
	segHi  []int
	segCur []int
}

// BacktrackingSearch evaluates the query with Algorithm 3 of the paper:
// backtracking search over a variable order compatible with an acyclic
// set of degree constraints. At depth i it intersects
//
//	⋂_{(X,Y)∈DC, i∈Y−X, R guards (X,Y)}  π_{A_i} σ_{A_{S∩Y}=a_{S∩Y}} π_Y R
//
// and recurses per value. By Theorem 5.1 the runtime is worst-case
// optimal: O(n·|DC|·log|D|·(|D| + ∏ N_{Y|X}^{δ_{Y|X}})) where δ is the
// optimal dual of LP (57).
//
// Every constraint must name a query atom as its guard, with Y a
// subset of that atom's variables. The search enumerates the join of
// the guard projections π_Y R, which is a superset of Q when the
// constraints do not mention every atom fully; the result is therefore
// filtered against every original atom before being returned (the
// "semijoin-reduced against the guards" step the paper describes for
// repaired constraint sets DC′).
func BacktrackingSearch(q *Query, dc constraints.Set, opts BacktrackOptions) (*relation.Relation, *Stats, error) {
	stats := &Stats{}
	out := relation.NewBuilder(q.OutputName(), q.Vars...)
	err := backtrackVisit(q, dc, opts, stats, func(t relation.Tuple) error {
		return out.Add(t...)
	})
	if err != nil {
		return nil, nil, err
	}
	rel := out.Build()
	stats.Output = rel.Len()
	return rel, stats, nil
}

// BacktrackingCount is the enumeration-only variant.
func BacktrackingCount(q *Query, dc constraints.Set, opts BacktrackOptions) (int, *Stats, error) {
	stats := &Stats{}
	n := 0
	err := backtrackVisit(q, dc, opts, stats, func(relation.Tuple) error {
		n++
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	stats.Output = n
	return n, stats, nil
}

// BacktrackingVisit streams the result tuples to emit. The Tuple
// passed to emit is reused between calls; emit must copy it to retain
// it. The backtracking search is not sharded: its filtered-guard
// enumeration is bound by the degree-constraint dual, not by the
// top-level intersection the parallel engine partitions.
func BacktrackingVisit(q *Query, dc constraints.Set, opts BacktrackOptions, stats *Stats, emit func(relation.Tuple) error) error {
	return backtrackVisit(q, dc, opts, stats, emit)
}

func backtrackVisit(q *Query, dc constraints.Set, opts BacktrackOptions, stats *Stats, emit func(relation.Tuple) error) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if err := dc.Validate(); err != nil {
		return err
	}
	order := opts.Order
	if order == nil {
		full, err := dc.CompatibleOrder(q.Vars)
		if err != nil {
			return fmt.Errorf("core: %w (repair with MakeAcyclic first)", err)
		}
		// Keep only query variables, in the compatible order.
		for _, v := range full {
			for _, qv := range q.Vars {
				if qv == v {
					order = append(order, v)
					break
				}
			}
		}
	}
	if err := checkOrder(q, order); err != nil {
		return err
	}

	// Preprocessing (the O(n·|DC|·|D| log|D|) term of (61)): project
	// each guard onto Y and index it as a trie in search order. With
	// self-joins several atoms share a name; the guard of a constraint
	// is the first same-named atom whose variables contain Y.
	findGuard := func(c constraints.Constraint) (Atom, error) {
		sawName := false
		for _, a := range q.Atoms {
			if a.Name != c.Guard {
				continue
			}
			sawName = true
			ok := true
			for _, y := range c.Y {
				if !constraints.ContainsVar(a.Vars, y) {
					ok = false
					break
				}
			}
			if ok {
				return a, nil
			}
		}
		if !sawName {
			return Atom{}, fmt.Errorf("core: constraint %v: no atom named %q", c, c.Guard)
		}
		return Atom{}, fmt.Errorf("core: constraint %v: no atom named %q contains %v", c, c.Guard, c.Y)
	}
	cons := make([]*btConstraint, 0, len(dc))
	for _, c := range dc {
		guard, err := findGuard(c)
		if err != nil {
			return err
		}
		rel, err := guard.Rel.Rename(guard.Name, guard.Vars...)
		if err != nil {
			return err
		}
		proj, err := rel.Project(c.Y...)
		if err != nil {
			return err
		}
		var consOrder []string
		for _, v := range order {
			if constraints.ContainsVar(c.Y, v) {
				consOrder = append(consOrder, v)
			}
		}
		tr, err := trie.Build(proj, consOrder)
		if err != nil {
			return err
		}
		bc := &btConstraint{
			c:           c,
			trie:        tr,
			levelOf:     make([]int, len(order)),
			intersector: make([]bool, len(order)),
			segLo:       make([]int, len(consOrder)),
			segHi:       make([]int, len(consOrder)),
			segCur:      make([]int, len(consOrder)),
		}
		for d := range order {
			bc.levelOf[d] = -1
		}
		ym := constraints.Minus(c.Y, c.X)
		for l, v := range consOrder {
			for d, ov := range order {
				if ov == v {
					bc.levelOf[d] = l
					bc.intersector[d] = constraints.ContainsVar(ym, v)
				}
			}
		}
		bc.segLo[0], bc.segHi[0] = 0, tr.NumSegs(0)
		cons = append(cons, bc)
	}

	// Every variable needs at least one intersector, otherwise its
	// candidate set is unbounded (Claim 1 of Proposition 5.2).
	for d, v := range order {
		found := false
		for _, bc := range cons {
			if bc.levelOf[d] >= 0 && bc.intersector[d] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: variable %q is in no constraint's Y−X; the bound is infinite", v)
		}
	}

	// Membership filters for the final semijoin reduction.
	filters := make([]*relation.HashIndex, len(q.Atoms))
	filterPos := make([][]int, len(q.Atoms))
	for i, a := range q.Atoms {
		rel, err := a.Rel.Rename(a.Name, a.Vars...)
		if err != nil {
			return err
		}
		filters[i] = relation.NewHashIndex(rel, a.Vars)
		pos := make([]int, len(a.Vars))
		for x, v := range a.Vars {
			pos[x] = -1
			for j, qv := range q.Vars {
				if qv == v {
					pos[x] = j
				}
			}
		}
		filterPos[i] = pos
	}

	outPos := make([]int, len(order))
	for d, v := range order {
		for i, qv := range q.Vars {
			if qv == v {
				outPos[d] = i
			}
		}
	}

	binding := make(relation.Tuple, len(q.Vars))
	scratch := make([][]relation.Value, len(order))
	key := make(relation.Tuple, 8)

	var rec func(d int) error
	rec = func(d int) error {
		stats.Recursions++
		if d == len(order) {
			// Final filter: the paper's semijoin reduction against the
			// original atoms.
			for i := range filters {
				pos := filterPos[i]
				if cap(key) < len(pos) {
					key = make(relation.Tuple, len(pos))
				}
				key = key[:len(pos)]
				for x, p := range pos {
					key[x] = binding[p]
				}
				if !filters[i].Contains(key) {
					return nil
				}
			}
			return emit(binding)
		}
		var ranges []trie.LevelRange
		for _, bc := range cons {
			l := bc.levelOf[d]
			if l < 0 || !bc.intersector[d] {
				continue
			}
			ranges = append(ranges, bc.trie.SegLevel(l, bc.segLo[l], bc.segHi[l]))
		}
		vals := trie.IntersectLevels(scratch[d][:0], ranges)
		scratch[d] = vals
		stats.IntersectValues += len(vals)
		for _, bc := range cons {
			if l := bc.levelOf[d]; l >= 0 {
				bc.segCur[l] = bc.segLo[l]
			}
		}
	valueLoop:
		//wcojlint:nopoll one-shot backtracking entry: ctx is checked once before rec(0) and BacktrackOptions plumbs no stop flag; bounded by the (small) constraint-driven search space
		for _, v := range vals {
			binding[outPos[d]] = v
			// Refine every constraint whose Y contains this variable;
			// an empty refinement prunes (the guard atom cannot be
			// satisfied under this binding).
			for _, bc := range cons {
				l := bc.levelOf[d]
				if l < 0 {
					continue
				}
				s, ok := bc.trie.FindSegFrom(l, bc.segCur[l], bc.segHi[l], v)
				if !ok {
					bc.segCur[l] = s
					continue valueLoop
				}
				bc.segCur[l] = s + 1
				if l+1 < bc.trie.Depth() {
					bc.segLo[l+1], bc.segHi[l+1] = bc.trie.Children(l, s)
				}
			}
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}
