package core

// Parallel sharded execution. Both Generic-Join and Leapfrog Triejoin
// (via this package's exported runner) parallelize the same way: the
// depth-0 intersection — the distinct values of the first variable in
// the global order that appear in every participating atom — is
// computed once, partitioned into contiguous chunks, and each chunk is
// searched by the existing serial recursion with fully private state
// (range stacks / iterators, binding tuple, Stats). Workers share only
// the immutable tries. Chunk results are consumed in ascending chunk
// index order, and because chunks are contiguous ranges of the sorted
// top-level values, the emitted tuple sequence is byte-identical to
// the serial run at any worker count.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"wcoj/internal/relation"
)

// shardChunkFactor oversplits the top-level values relative to the
// worker count so a skewed value (one heavy subtree) cannot serialize
// the run: idle workers steal the remaining chunks.
const shardChunkFactor = 4

// ErrAborted is injected through a chunk's emit path (and returned by
// worker stop-flag polls) once a sibling chunk has failed, the
// consuming sink has errored, or the run's context was cancelled. It
// unwinds a search mid-flight instead of letting it run to completion
// and is never returned from the package-level entry points — they
// translate it to the causing error (see CtxAbortErr).
var ErrAborted = errors.New("core: sharded run aborted")

// CtxErr returns the context's error, tolerating nil contexts.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// WatchCancel links ctx cancellation to a stop flag the search workers
// poll: once ctx is done, stop is set and in-flight searches unwind at
// their next poll instead of enumerating to completion. The returned
// cleanup releases the watcher goroutine and must be called (defer it)
// when the run ends. Nil or never-cancelled contexts cost nothing.
func WatchCancel(ctx context.Context, stop *atomic.Bool) func() {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-quit:
		}
	}()
	return func() { close(quit) }
}

// CtxAbortErr translates the ErrAborted sentinel of a cancelled serial
// search into the context's error; other errors pass through.
func CtxAbortErr(ctx context.Context, err error) error {
	if err == ErrAborted {
		if cerr := CtxErr(ctx); cerr != nil {
			return cerr
		}
		return context.Canceled
	}
	return err
}

// shardRun searches one chunk of top-level values, writing counters to
// st and tuples to emit. It runs on a worker goroutine with no state
// shared with other chunks except the run's stop flag, which the
// search should poll (cheaply, every few hundred nodes) and unwind on
// by returning ErrAborted.
type shardRun func(chunk []relation.Value, st *Stats, stop *atomic.Bool, emit func(relation.Tuple) error) error

// shardSink consumes the output of sharded execution. chunkEmit is
// called from worker goroutines (concurrently, but never concurrently
// for the same chunk); finishChunk is called from the coordinating
// goroutine in ascending chunk order.
type shardSink interface {
	bind(numChunks int, stop *atomic.Bool)
	chunkEmit(chunk int) func(relation.Tuple) error
	finishChunk(chunk int) error
}

// runSharded partitions vals into contiguous chunks and runs run over
// them on min(workers, chunks) goroutines. Per-chunk Stats are merged
// into parentStats in chunk order; the first error (from a chunk or
// from the sink) aborts the remaining work — queued chunks are
// skipped, and in-flight chunks are unwound at their next emitted
// tuple via ErrAborted. Chunk issue is windowed: a chunk is only
// handed to a worker once all chunks more than shardWindow(workers)
// positions behind it have been consumed by the sink, bounding how
// much un-consumed output the ordered sinks can buffer. It returns
// only after all worker goroutines have exited, so the caller may
// reuse any state afterwards.
func runSharded(ctx context.Context, vals []relation.Value, workers int, parentStats *Stats, run shardRun, sink shardSink) error {
	if err := CtxErr(ctx); err != nil {
		return err
	}
	var abort atomic.Bool
	n := len(vals)
	if n == 0 {
		sink.bind(0, &abort)
		return nil
	}
	starts, numChunks, workers := shardStarts(n, workers)
	sink.bind(numChunks, &abort)

	chunkStats := make([]Stats, numChunks)
	chunkErrs := make([]error, numChunks)
	done := make([]chan struct{}, numChunks)
	consumed := make([]chan struct{}, numChunks)
	for i := range done {
		done[i] = make(chan struct{})
		consumed[i] = make(chan struct{})
	}
	defer WatchCancel(ctx, &abort)()
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				if !abort.Load() {
					emit := sink.chunkEmit(c)
					chunkErrs[c] = run(vals[starts[c]:starts[c+1]], &chunkStats[c], &abort,
						func(t relation.Tuple) error {
							if abort.Load() {
								return ErrAborted
							}
							return emit(t)
						})
					if chunkErrs[c] != nil {
						abort.Store(true)
					}
				}
				close(done[c])
			}
		}()
	}
	// Windowed issue: chunk c is released only after chunk c-window
	// has been consumed, so at most window chunks are ever buffered
	// ahead of the sink (keeps all workers busy since window >
	// workers, while bounding ordered-sink memory).
	window := workers + 2
	go func() {
		for c := 0; c < numChunks; c++ {
			if c >= window {
				<-consumed[c-window]
			}
			next <- c
		}
		close(next)
	}()

	var err error
	for c := 0; c < numChunks; c++ {
		<-done[c]
		cerr := chunkErrs[c]
		switch {
		case err != nil || cerr == ErrAborted:
			// A chunk unwound by the abort flag produced partial
			// output; never merge or consume it.
		case cerr != nil:
			err = cerr
		default:
			parentStats.Merge(&chunkStats[c])
			if ferr := sink.finishChunk(c); ferr != nil {
				// A sink replay unwound by the abort flag means the
				// ctx was cancelled mid-replay; surface the cause,
				// never the sentinel.
				err = CtxAbortErr(ctx, ferr)
				abort.Store(true)
			}
		}
		// Unblock the issuing goroutine regardless of errors.
		close(consumed[c])
	}
	wg.Wait()
	if err == nil {
		// A cancelled run's chunks unwind with ErrAborted, which is
		// never surfaced per chunk; report the cancellation itself.
		err = CtxErr(ctx)
	}
	return err
}

// bufferSink buffers each chunk's tuples flat (arity values per tuple)
// and replays them to the user's emit in chunk order, preserving the
// serial emission sequence. The Tuple passed on is reused between
// calls, matching the serial visit contract.
type bufferSink struct {
	arity int
	emit  func(relation.Tuple) error
	stop  *atomic.Bool
	bufs  [][]relation.Value
}

func newBufferSink(arity int, emit func(relation.Tuple) error) *bufferSink {
	return &bufferSink{arity: arity, emit: emit}
}

func (s *bufferSink) bind(numChunks int, stop *atomic.Bool) {
	s.bufs = make([][]relation.Value, numChunks)
	s.stop = stop
}

func (s *bufferSink) chunkEmit(chunk int) func(relation.Tuple) error {
	return func(t relation.Tuple) error {
		s.bufs[chunk] = append(s.bufs[chunk], t...)
		return nil
	}
}

func (s *bufferSink) finishChunk(chunk int) error {
	buf := s.bufs[chunk]
	for i, n := 0, 0; i < len(buf); i += s.arity {
		// A chunk can hold an arbitrary number of buffered tuples and
		// the user's emit can be slow; poll so a cancelled run does
		// not replay a huge buffer to completion.
		if n++; n&255 == 0 && s.stop.Load() {
			return ErrAborted
		}
		if err := s.emit(relation.Tuple(buf[i : i+s.arity])); err != nil {
			return err
		}
	}
	s.bufs[chunk] = nil // release as soon as replayed
	return nil
}

// countSink counts tuples per chunk without buffering them — the
// streaming enumeration mode keeps zero per-tuple state even under
// parallelism.
type countSink struct {
	counts []int
	total  int
}

func newCountSink() *countSink { return &countSink{} }

func (s *countSink) bind(numChunks int, _ *atomic.Bool) { s.counts = make([]int, numChunks) }

func (s *countSink) chunkEmit(chunk int) func(relation.Tuple) error {
	return func(relation.Tuple) error {
		s.counts[chunk]++
		return nil
	}
}

func (s *countSink) finishChunk(chunk int) error {
	s.total += s.counts[chunk]
	return nil
}

// RunShardedTop is the sharding seam exported for sibling algorithm
// packages (lftj): it shards vals across workers, invoking run per
// chunk with a private Stats, and streams the buffered per-chunk
// tuples to emit in chunk order. Arity is the emitted tuple width.
func RunShardedTop(ctx context.Context, vals []relation.Value, workers, arity int, parentStats *Stats,
	emit func(relation.Tuple) error, run shardRun) error {
	return runSharded(ctx, vals, workers, parentStats, run, newBufferSink(arity, emit))
}

// RunShardedCount is RunShardedTop's counting twin: no tuple is
// buffered; per-chunk counts are summed in chunk order.
func RunShardedCount(ctx context.Context, vals []relation.Value, workers int, parentStats *Stats,
	run shardRun) (int, error) {
	sink := newCountSink()
	if err := runSharded(ctx, vals, workers, parentStats, run, sink); err != nil {
		return 0, err
	}
	return sink.total, nil
}

// shardStarts computes the balanced contiguous partition of n values
// into chunks: chunk i covers [starts[i], starts[i+1]). It also
// clamps the chunk and worker counts, returning the adjusted pair.
func shardStarts(n, workers int) (starts []int, numChunks, w int) {
	numChunks = workers * shardChunkFactor
	if numChunks > n {
		numChunks = n
	}
	if workers > numChunks {
		workers = numChunks
	}
	starts = make([]int, numChunks+1)
	base, rem := n/numChunks, n%numChunks
	for i := 0; i < numChunks; i++ {
		starts[i+1] = starts[i] + base
		if i < rem {
			starts[i+1]++
		}
	}
	return starts, numChunks, workers
}

// RunShardedSum shards vals across workers and sums the per-chunk
// int64 results of run. Unlike the tuple-emitting runners no output
// ordering is needed, so chunks are claimed from an atomic counter;
// per-chunk Stats are still merged in chunk order, keeping counter
// totals deterministic for a fixed worker count. The aggregate-aware
// engines use it for sharded CountFast.
func RunShardedSum(ctx context.Context, vals []relation.Value, workers int, parentStats *Stats,
	run func(chunk []relation.Value, st *Stats, stop *atomic.Bool) (int64, error)) (int64, error) {
	if err := CtxErr(ctx); err != nil {
		return 0, err
	}
	n := len(vals)
	if n == 0 {
		return 0, nil
	}
	starts, numChunks, w := shardStarts(n, workers)
	chunkStats := make([]Stats, numChunks)
	sums := make([]int64, numChunks)
	errs := make([]error, numChunks)
	var abort atomic.Bool
	defer WatchCancel(ctx, &abort)()
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks || abort.Load() {
					return
				}
				sums[c], errs[c] = run(vals[starts[c]:starts[c+1]], &chunkStats[c], &abort)
				if errs[c] != nil {
					abort.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	aborted := false
	for c := 0; c < numChunks; c++ {
		if errs[c] == ErrAborted {
			aborted = true
			continue
		}
		if errs[c] != nil {
			return 0, errs[c]
		}
		parentStats.Merge(&chunkStats[c])
		total += sums[c]
	}
	if err := CtxErr(ctx); err != nil {
		return 0, err
	}
	if aborted {
		// A chunk unwound on the abort flag but no cause surfaced (it
		// was claimed before a sibling's error stored the flag).
		return 0, context.Canceled
	}
	return total, nil
}

// RunShardedAny shards vals across workers and reports whether any
// chunk found a witness. The shared stop flag is set as soon as one
// does (or a chunk errors); chunk searches are expected to poll it and
// unwind, so the whole fleet short-circuits on the first witness.
// Stats are merged from every chunk that ran; because chunks race the
// stop flag, counter totals (unlike the boolean result) are not
// deterministic across runs.
func RunShardedAny(ctx context.Context, vals []relation.Value, workers int, parentStats *Stats,
	run func(chunk []relation.Value, st *Stats, stop *atomic.Bool) (bool, error)) (bool, error) {
	if err := CtxErr(ctx); err != nil {
		return false, err
	}
	n := len(vals)
	if n == 0 {
		return false, nil
	}
	starts, numChunks, w := shardStarts(n, workers)
	chunkStats := make([]Stats, numChunks)
	errs := make([]error, numChunks)
	var stop atomic.Bool
	defer WatchCancel(ctx, &stop)()
	var found atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks || stop.Load() {
					return
				}
				ok, err := run(vals[starts[c]:starts[c+1]], &chunkStats[c], &stop)
				errs[c] = err
				if err != nil || ok {
					stop.Store(true)
				}
				if ok && err == nil {
					found.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for c := 0; c < numChunks; c++ {
		if errs[c] != nil && errs[c] != ErrAborted {
			return false, errs[c]
		}
		parentStats.Merge(&chunkStats[c])
	}
	if found.Load() {
		return true, nil
	}
	return false, CtxErr(ctx)
}
