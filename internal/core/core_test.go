package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wcoj/internal/constraints"
	"wcoj/internal/relation"
)

func rel(t testing.TB, name string, attrs []string, rows ...[]relation.Value) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder(name, attrs...)
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// naiveJoin computes the query result by folding binary hash joins and
// projecting onto the query variables — the reference implementation.
func naiveJoin(t testing.TB, q *Query) *relation.Relation {
	t.Helper()
	var cur *relation.Relation
	for _, a := range q.Atoms {
		r, err := a.Rel.Rename(a.Name, a.Vars...)
		if err != nil {
			t.Fatal(err)
		}
		if cur == nil {
			cur = r
			continue
		}
		cur, err = relation.Join(cur, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := cur.Project(q.Vars...)
	if err != nil {
		t.Fatal(err)
	}
	out, err = out.Rename("Q", q.Vars...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func triangleQuery(t testing.TB, r, s, tt *relation.Relation) *Query {
	t.Helper()
	q, err := NewQuery([]string{"A", "B", "C"}, []Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: r},
		{Name: "S", Vars: []string{"B", "C"}, Rel: s},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQueryValidate(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	if _, err := NewQuery([]string{"A", "A"}, nil); err == nil {
		t.Fatal("duplicate head variable must fail")
	}
	if _, err := NewQuery([]string{"A", "B"}, []Atom{{Name: "R", Vars: []string{"A"}, Rel: r}}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := NewQuery([]string{"A", "B"}, []Atom{{Name: "R", Vars: []string{"A", "Z"}, Rel: r}}); err == nil {
		t.Fatal("non-head variable must fail (full CQ)")
	}
	if _, err := NewQuery([]string{"A", "B", "C"}, []Atom{{Name: "R", Vars: []string{"A", "B"}, Rel: r}}); err == nil {
		t.Fatal("uncovered variable must fail")
	}
	if _, err := NewQuery([]string{"A", "B"}, []Atom{{Name: "R", Vars: []string{"A", "A"}, Rel: r}}); err == nil {
		t.Fatal("repeated variable in atom must fail")
	}
	if _, err := NewQuery([]string{"A"}, []Atom{{Name: "R", Vars: []string{"A"}}}); err == nil {
		t.Fatal("nil relation must fail")
	}
}

func TestGenericJoinTriangleSmall(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 1}, []relation.Value{1, 2}, []relation.Value{2, 1})
	s := rel(t, "S", []string{"B", "C"},
		[]relation.Value{1, 5}, []relation.Value{2, 5}, []relation.Value{1, 6})
	tt := rel(t, "T", []string{"A", "C"},
		[]relation.Value{1, 5}, []relation.Value{2, 6})
	q := triangleQuery(t, r, s, tt)
	got, stats, err := GenericJoin(q, GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveJoin(t, q)
	if !got.Equal(want) {
		t.Fatalf("GenericJoin = %v, want %v", got.Tuples(), want.Tuples())
	}
	if stats.Output != got.Len() {
		t.Fatalf("stats.Output = %d", stats.Output)
	}
	// Count-only agrees.
	n, _, err := GenericJoinCount(q, GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != want.Len() {
		t.Fatalf("count = %d, want %d", n, want.Len())
	}
}

func TestGenericJoinExplicitOrder(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	s := rel(t, "S", []string{"B", "C"}, []relation.Value{2, 3})
	tt := rel(t, "T", []string{"A", "C"}, []relation.Value{1, 3})
	q := triangleQuery(t, r, s, tt)
	for _, order := range [][]string{
		{"A", "B", "C"}, {"C", "B", "A"}, {"B", "A", "C"},
	} {
		got, _, err := GenericJoin(q, GenericJoinOptions{Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if got.Len() != 1 {
			t.Fatalf("order %v: len = %d, want 1", order, got.Len())
		}
	}
	if _, _, err := GenericJoin(q, GenericJoinOptions{Order: []string{"A", "B"}}); err == nil {
		t.Fatal("short order must fail")
	}
	if _, _, err := GenericJoin(q, GenericJoinOptions{Order: []string{"A", "A", "B"}}); err == nil {
		t.Fatal("repeating order must fail")
	}
}

func TestGenericJoinEmptyRelation(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	s := relation.Empty("S", "B", "C")
	tt := rel(t, "T", []string{"A", "C"}, []relation.Value{1, 3})
	q := triangleQuery(t, r, s, tt)
	got, _, err := GenericJoin(q, GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty input must give empty output, got %d", got.Len())
	}
}

func TestGenericJoinSingleAtom(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"},
		[]relation.Value{1, 2}, []relation.Value{3, 4})
	q, err := NewQuery([]string{"A", "B"}, []Atom{{Name: "R", Vars: []string{"A", "B"}, Rel: r}})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := GenericJoin(q, GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("single atom join = %d rows", got.Len())
	}
}

func TestGenericJoinRenamedColumns(t *testing.T) {
	// Relation columns named differently from query variables; the
	// atom binding does the renaming. Also exercises self-joins: the
	// same edge relation bound three times (triangle counting).
	e := rel(t, "E", []string{"src", "dst"},
		[]relation.Value{1, 2}, []relation.Value{2, 3}, []relation.Value{1, 3},
		[]relation.Value{3, 4})
	q, err := NewQuery([]string{"X", "Y", "Z"}, []Atom{
		{Name: "E1", Vars: []string{"X", "Y"}, Rel: e},
		{Name: "E2", Vars: []string{"Y", "Z"}, Rel: e},
		{Name: "E3", Vars: []string{"X", "Z"}, Rel: e},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := GenericJoin(q, GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Directed triangles: (1,2,3) only.
	if got.Len() != 1 {
		t.Fatalf("triangles = %v", got.Tuples())
	}
	tu := got.Tuple(0, nil)
	if tu[0] != 1 || tu[1] != 2 || tu[2] != 3 {
		t.Fatalf("triangle = %v, want (1,2,3)", tu)
	}
}

func TestTriangleHeavyLightMatchesGenericJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b1 := relation.NewBuilder("R", "A", "B")
	b2 := relation.NewBuilder("S", "B", "C")
	b3 := relation.NewBuilder("T", "A", "C")
	for i := 0; i < 300; i++ {
		b1.Add(relation.Value(rng.Intn(20)), relation.Value(rng.Intn(20)))
		b2.Add(relation.Value(rng.Intn(20)), relation.Value(rng.Intn(20)))
		b3.Add(relation.Value(rng.Intn(20)), relation.Value(rng.Intn(20)))
	}
	r, s, tt := b1.Build(), b2.Build(), b3.Build()
	hl, hlStats, err := TriangleHeavyLight(r, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	gj, _, err := TriangleGenericJoin(r, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if !hl.Equal(gj) {
		t.Fatalf("heavy/light %d rows vs generic join %d rows", hl.Len(), gj.Len())
	}
	if hlStats.Output != hl.Len() {
		t.Fatal("stats mismatch")
	}
}

func TestTriangleHeavyLightEdgeCases(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	s := rel(t, "S", []string{"B", "C"}, []relation.Value{2, 3})
	empty := relation.Empty("T", "A", "C")
	got, _, err := TriangleHeavyLight(r, s, empty)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty T must give empty result")
	}
	// Non-triangle patterns are rejected.
	bad := rel(t, "W", []string{"X", "Y"}, []relation.Value{1, 2})
	if _, _, err := TriangleHeavyLight(r, s, bad); err == nil {
		t.Fatal("non-triangle pattern must fail")
	}
	tern := rel(t, "U", []string{"A", "B", "C"}, []relation.Value{1, 2, 3})
	if _, _, err := TriangleHeavyLight(tern, s, empty); err == nil {
		t.Fatal("non-binary relation must fail")
	}
}

// Property: Generic-Join equals the naive binary-join reference on
// random triangle instances under random variable orders.
func TestPropertyGenericJoinTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(name, a1, a2 string) *relation.Relation {
			b := relation.NewBuilder(name, a1, a2)
			for i := 0; i < rng.Intn(60); i++ {
				b.Add(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
			}
			return b.Build()
		}
		r, s, tt := mk("R", "A", "B"), mk("S", "B", "C"), mk("T", "A", "C")
		q, err := NewQuery([]string{"A", "B", "C"}, []Atom{
			{Name: "R", Vars: []string{"A", "B"}, Rel: r},
			{Name: "S", Vars: []string{"B", "C"}, Rel: s},
			{Name: "T", Vars: []string{"A", "C"}, Rel: tt},
		})
		if err != nil {
			return false
		}
		orders := [][]string{
			{"A", "B", "C"}, {"B", "C", "A"}, {"C", "A", "B"}, nil,
		}
		want := naiveJoin(t, q)
		for _, ord := range orders {
			got, _, err := GenericJoin(q, GenericJoinOptions{Order: ord})
			if err != nil {
				return false
			}
			if !got.Equal(want) {
				return false
			}
		}
		// Heavy/light agrees too.
		hl, _, err := TriangleHeavyLight(r, s, tt)
		if err != nil {
			return false
		}
		return hl.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Generic-Join equals the reference on random 4-variable,
// 4-atom queries (a 4-cycle plus a spanning ternary atom).
func TestPropertyGenericJoinFourVars(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk2 := func(name, a1, a2 string) *relation.Relation {
			b := relation.NewBuilder(name, a1, a2)
			for i := 0; i < rng.Intn(40); i++ {
				b.Add(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
			}
			return b.Build()
		}
		mk3 := func(name, a1, a2, a3 string) *relation.Relation {
			b := relation.NewBuilder(name, a1, a2, a3)
			for i := 0; i < rng.Intn(60); i++ {
				b.Add(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
			}
			return b.Build()
		}
		q, err := NewQuery([]string{"A", "B", "C", "D"}, []Atom{
			{Name: "R", Vars: []string{"A", "B"}, Rel: mk2("R", "A", "B")},
			{Name: "S", Vars: []string{"B", "C"}, Rel: mk2("S", "B", "C")},
			{Name: "T", Vars: []string{"C", "D"}, Rel: mk2("T", "C", "D")},
			{Name: "W", Vars: []string{"A", "C", "D"}, Rel: mk3("W", "A", "C", "D")},
		})
		if err != nil {
			return false
		}
		got, _, err := GenericJoin(q, GenericJoinOptions{})
		if err != nil {
			return false
		}
		return got.Equal(naiveJoin(t, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBacktrackingSearchTriangle(t *testing.T) {
	// Triangle with cardinality-only constraints (acyclic DC): the
	// search must produce exactly the triangle join.
	rng := rand.New(rand.NewSource(7))
	b1 := relation.NewBuilder("R", "A", "B")
	b2 := relation.NewBuilder("S", "B", "C")
	b3 := relation.NewBuilder("T", "A", "C")
	for i := 0; i < 150; i++ {
		b1.Add(relation.Value(rng.Intn(15)), relation.Value(rng.Intn(15)))
		b2.Add(relation.Value(rng.Intn(15)), relation.Value(rng.Intn(15)))
		b3.Add(relation.Value(rng.Intn(15)), relation.Value(rng.Intn(15)))
	}
	r, s, tt := b1.Build(), b2.Build(), b3.Build()
	q := triangleQuery(t, r, s, tt)
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A", "B"}, float64(r.Len())),
		constraints.Cardinality("S", []string{"B", "C"}, float64(s.Len())),
		constraints.Cardinality("T", []string{"A", "C"}, float64(tt.Len())),
	}
	got, stats, err := BacktrackingSearch(q, dc, BacktrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveJoin(t, q)
	if !got.Equal(want) {
		t.Fatalf("backtracking = %d rows, want %d", got.Len(), want.Len())
	}
	if stats.Output != got.Len() {
		t.Fatal("stats.Output mismatch")
	}
	n, _, err := BacktrackingCount(q, dc, BacktrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != want.Len() {
		t.Fatalf("count = %d, want %d", n, want.Len())
	}
}

func TestBacktrackingSearchQuery63(t *testing.T) {
	// Query (63): Q(A,B,C,D) ← R(A), S(A,B), T(B,C), W(C,A,D) with the
	// paper's degree constraints N_A, N_B|A, N_C|B, N_AD|C.
	rng := rand.New(rand.NewSource(11))
	br := relation.NewBuilder("R", "A")
	bs := relation.NewBuilder("S", "A", "B")
	bt := relation.NewBuilder("T", "B", "C")
	bw := relation.NewBuilder("W", "C", "A", "D")
	for i := 0; i < 30; i++ {
		br.Add(relation.Value(rng.Intn(10)))
	}
	for i := 0; i < 80; i++ {
		bs.Add(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(10)))
		bt.Add(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(10)))
		bw.Add(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(10)), relation.Value(rng.Intn(10)))
	}
	r, s, tt, w := br.Build(), bs.Build(), bt.Build(), bw.Build()
	q, err := NewQuery([]string{"A", "B", "C", "D"}, []Atom{
		{Name: "R", Vars: []string{"A"}, Rel: r},
		{Name: "S", Vars: []string{"A", "B"}, Rel: s},
		{Name: "T", Vars: []string{"B", "C"}, Rel: tt},
		{Name: "W", Vars: []string{"C", "A", "D"}, Rel: w},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's constraint set is cyclic (A→B→C→A); repair first.
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A"}, float64(r.Len())),
		constraints.Degree("S", []string{"A"}, []string{"A", "B"}, 10),
		constraints.Degree("T", []string{"B"}, []string{"B", "C"}, 10),
		constraints.Degree("W", []string{"C"}, []string{"C", "A", "D"}, 10),
	}
	acyclic, err := dc.MakeAcyclic(q.Vars)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := BacktrackingSearch(q, acyclic, BacktrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveJoin(t, q)
	if !got.Equal(want) {
		t.Fatalf("backtracking on (63) = %d rows, want %d", got.Len(), want.Len())
	}
}

func TestBacktrackingErrors(t *testing.T) {
	r := rel(t, "R", []string{"A", "B"}, []relation.Value{1, 2})
	q, err := NewQuery([]string{"A", "B"}, []Atom{{Name: "R", Vars: []string{"A", "B"}, Rel: r}})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown guard.
	dc := constraints.Set{constraints.Cardinality("Z", []string{"A", "B"}, 5)}
	if _, _, err := BacktrackingSearch(q, dc, BacktrackOptions{}); err == nil {
		t.Fatal("unknown guard must fail")
	}
	// Guard lacking Y variable.
	dc = constraints.Set{constraints.Cardinality("R", []string{"A", "Z"}, 5)}
	if _, _, err := BacktrackingSearch(q, dc, BacktrackOptions{}); err == nil {
		t.Fatal("guard lacking Y variable must fail")
	}
	// Variable with no intersector (B is in no Y−X): infinite bound.
	dc = constraints.Set{constraints.Cardinality("R", []string{"A"}, 5)}
	if _, _, err := BacktrackingSearch(q, dc, BacktrackOptions{}); err == nil {
		t.Fatal("unbounded variable must fail")
	}
	// Cyclic constraints without explicit order must fail.
	dc = constraints.Set{
		constraints.Cardinality("R", []string{"A", "B"}, 5),
		constraints.FD("R", []string{"A"}, []string{"B"}),
		constraints.FD("R", []string{"B"}, []string{"A"}),
	}
	if _, _, err := BacktrackingSearch(q, dc, BacktrackOptions{}); err == nil {
		t.Fatal("cyclic DC without order must fail")
	}
}

// Property: backtracking search with per-atom cardinality constraints
// equals the reference join on random triangle instances.
func TestPropertyBacktrackingTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(name, a1, a2 string) *relation.Relation {
			b := relation.NewBuilder(name, a1, a2)
			for i := 0; i < 1+rng.Intn(50); i++ {
				b.Add(relation.Value(rng.Intn(7)), relation.Value(rng.Intn(7)))
			}
			return b.Build()
		}
		r, s, tt := mk("R", "A", "B"), mk("S", "B", "C"), mk("T", "A", "C")
		q, err := NewQuery([]string{"A", "B", "C"}, []Atom{
			{Name: "R", Vars: []string{"A", "B"}, Rel: r},
			{Name: "S", Vars: []string{"B", "C"}, Rel: s},
			{Name: "T", Vars: []string{"A", "C"}, Rel: tt},
		})
		if err != nil {
			return false
		}
		dc := constraints.Set{
			constraints.Cardinality("R", []string{"A", "B"}, float64(r.Len()+1)),
			constraints.Cardinality("S", []string{"B", "C"}, float64(s.Len()+1)),
			constraints.Cardinality("T", []string{"A", "C"}, float64(tt.Len()+1)),
		}
		got, _, err := BacktrackingSearch(q, dc, BacktrackOptions{})
		if err != nil {
			return false
		}
		return got.Equal(naiveJoin(t, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
