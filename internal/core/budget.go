package core

// Node budgets. Admission control for shared deployments: a caller
// attaches a budget of search nodes to the query context, and every
// worker draws from it at the same &255-stride poll sites that serve
// stop-flag cancellation — one Spend(256) per 256 recursions, so the
// poll adds a single atomic add per stride on budgeted runs and a nil
// check on unbudgeted ones. The budget is shared by all workers of a
// run (it rides the context across shards), making it a bound on total
// work, not per-goroutine work. Exhaustion surfaces as ErrNodeBudget
// from the entry points; unlike ErrAborted it is a real, user-visible
// error and is never translated away.

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrNodeBudget reports that a query exceeded the node budget attached
// to its context and was cut off mid-search. Its partial results are
// discarded, never returned.
var ErrNodeBudget = errors.New("core: query exceeded its node budget")

// NodeBudget is a shared, concurrency-safe allowance of search nodes.
// A nil *NodeBudget is a valid unlimited budget.
type NodeBudget struct {
	left atomic.Int64
}

// NewNodeBudget returns a budget allowing n search nodes.
func NewNodeBudget(n int64) *NodeBudget {
	b := &NodeBudget{}
	b.left.Store(n)
	return b
}

// Spend draws n nodes and reports whether the budget still stands.
// Once it returns false it keeps returning false — the counter stays
// negative — so every worker of a run sees exhaustion. Nil-safe:
// a nil budget always allows.
func (b *NodeBudget) Spend(n int64) bool {
	return b == nil || b.left.Add(-n) >= 0
}

// Exceeded reports whether the budget has been exhausted.
func (b *NodeBudget) Exceeded() bool {
	return b != nil && b.left.Load() < 0
}

type budgetKey struct{}

// WithNodeBudget returns a context carrying a fresh budget of n search
// nodes. Every engine entry point taking this context (and every shard
// it fans out to) draws from the same allowance.
func WithNodeBudget(ctx context.Context, n int64) context.Context {
	return context.WithValue(ctx, budgetKey{}, NewNodeBudget(n))
}

// BudgetFrom extracts the context's node budget, or nil (unlimited)
// if none is attached. Tolerates nil contexts.
func BudgetFrom(ctx context.Context) *NodeBudget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey{}).(*NodeBudget)
	return b
}
