package core

import (
	"testing"

	"wcoj/internal/relation"
)

// cacheTestQuery builds a 2-atom path query over two fresh relations
// of n edges each (distinct pointers, so every call occupies new cache
// entries).
func cacheTestQuery(t *testing.T, n, seed int) *Query {
	t.Helper()
	mk := func(name string) *relation.Relation {
		b := relation.NewBuilder(name, "x", "y")
		for i := 0; i < n; i++ {
			b.Add(relation.Value((i*7+seed)%n), relation.Value((i*13+seed)%n))
		}
		return b.Build()
	}
	q, err := NewQuery([]string{"A", "B", "C"}, []Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: mk("R")},
		{Name: "S", Vars: []string{"B", "C"}, Rel: mk("S")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestTrieCacheEviction: the cache stays within its byte budget while
// queries churn through distinct relations, evicted tries are rebuilt
// transparently, and results are identical before and after eviction.
func TestTrieCacheEviction(t *testing.T) {
	ResetTrieCache()
	// Budget of ~6 tries of this size: 200 tuples x 2 cols x 8 bytes
	// plus the fixed per-entry overhead.
	const n = 200
	prev := SetTrieCacheLimit(6 * (n*2*8 + trieEntryOverhead))
	defer func() {
		SetTrieCacheLimit(prev)
		ResetTrieCache()
	}()

	queries := make([]*Query, 12)
	counts := make([]int, 12)
	for i := range queries {
		queries[i] = cacheTestQuery(t, n, i)
		c, _, err := GenericJoinCount(queries[i], GenericJoinOptions{})
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = c
	}
	bytes, limit, evictions := TrieCacheUsage()
	if bytes > limit {
		t.Fatalf("resident %d bytes exceeds limit %d", bytes, limit)
	}
	if evictions == 0 {
		t.Fatal("churning 24 tries through a 6-trie budget evicted nothing")
	}
	// Re-running the oldest queries rebuilds their evicted tries and
	// reproduces identical counts.
	for i, q := range queries {
		c, _, err := GenericJoinCount(q, GenericJoinOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if c != counts[i] {
			t.Fatalf("query %d: count %d after eviction, want %d", i, c, counts[i])
		}
	}
	if bytes, limit, _ := TrieCacheUsage(); bytes > limit {
		t.Fatalf("resident %d bytes exceeds limit %d after rerun", bytes, limit)
	}
}

// TestTrieCacheLRUOrder: a recently-touched entry survives an eviction
// wave that claims colder entries.
func TestTrieCacheLRUOrder(t *testing.T) {
	ResetTrieCache()
	const n = 200
	entryBytes := int64(n*2*8) + trieEntryOverhead
	prev := SetTrieCacheLimit(4 * entryBytes)
	defer func() {
		SetTrieCacheLimit(prev)
		ResetTrieCache()
	}()

	hot := cacheTestQuery(t, n, 100)
	if _, _, err := GenericJoinCount(hot, GenericJoinOptions{}); err != nil {
		t.Fatal(err)
	}
	// Touch hot again, then stream two cold queries (4 tries) through:
	// the budget holds 4, so the cold entries must evict each other
	// (and at most one hot trie) while the most recently used hot trie
	// survives.
	if _, _, err := GenericJoinCount(hot, GenericJoinOptions{}); err != nil {
		t.Fatal(err)
	}
	hitsBefore, missesBefore, _ := TrieCacheStats()
	for seed := 0; seed < 2; seed++ {
		q := cacheTestQuery(t, n, seed)
		if _, _, err := GenericJoinCount(q, GenericJoinOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := TrieCacheStats()
	if misses != missesBefore+4 {
		t.Fatalf("cold queries: %d misses, want %d", misses-missesBefore, 4)
	}
	if hits != hitsBefore {
		t.Fatalf("cold queries should not hit, got %d extra hits", hits-hitsBefore)
	}
	if size > 4 {
		t.Fatalf("resident entries = %d, budget holds 4", size)
	}
}

// TestTrieCacheOversizeUncached: a trie larger than the whole budget
// is built and used but never cached.
func TestTrieCacheOversizeUncached(t *testing.T) {
	ResetTrieCache()
	prev := SetTrieCacheLimit(64) // 4 tuples worth
	defer func() {
		SetTrieCacheLimit(prev)
		ResetTrieCache()
	}()
	q := cacheTestQuery(t, 500, 1)
	c1, _, err := GenericJoinCount(q, GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, size := TrieCacheStats(); size != 0 {
		t.Fatalf("oversize tries cached: %d entries", size)
	}
	c2, _, err := GenericJoinCount(q, GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("uncached reruns diverge: %d vs %d", c1, c2)
	}
}

// TestTrieCacheEmptyRelationsBounded: empty relations still carry the
// per-entry overhead, so churning through distinct empty tries cannot
// grow the cache without bound.
func TestTrieCacheEmptyRelationsBounded(t *testing.T) {
	ResetTrieCache()
	prev := SetTrieCacheLimit(4 * trieEntryOverhead)
	defer func() {
		SetTrieCacheLimit(prev)
		ResetTrieCache()
	}()
	for i := 0; i < 32; i++ {
		q, err := NewQuery([]string{"A", "B"}, []Atom{
			{Name: "R", Vars: []string{"A", "B"}, Rel: relation.Empty("R", "x", "y")},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := GenericJoinCount(q, GenericJoinOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := TrieCacheStats(); size > 4 {
		t.Fatalf("32 empty tries left %d resident entries in a 4-entry budget", size)
	}
}

// TestSetTrieCacheLimitShrink: shrinking the budget evicts down to it.
// The per-entry charge (columns + CSR index + fixed overhead) is
// measured from the cache rather than assumed, so the test holds for
// any trie layout.
func TestSetTrieCacheLimitShrink(t *testing.T) {
	ResetTrieCache()
	const n = 200
	prev := SetTrieCacheLimit(1 << 20)
	defer func() {
		SetTrieCacheLimit(prev)
		ResetTrieCache()
	}()
	for seed := 0; seed < 3; seed++ {
		if _, _, err := GenericJoinCount(cacheTestQuery(t, n, seed), GenericJoinOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	bytes, _, _ := TrieCacheUsage()
	if _, _, size := TrieCacheStats(); size != 6 {
		t.Fatalf("resident entries = %d, want 6", size)
	}
	// The six tries are identical in shape, so the resident bytes split
	// evenly into per-entry charges.
	entryBytes := bytes / 6
	if bytes != 6*entryBytes {
		t.Fatalf("resident %d bytes is not six equal entries", bytes)
	}
	if colsOnly := int64(n*2*8) + trieEntryOverhead; entryBytes <= colsOnly {
		t.Fatalf("entry charge %d does not cover the CSR index (columns+overhead alone = %d)", entryBytes, colsOnly)
	}
	SetTrieCacheLimit(2 * entryBytes)
	bytes, limit, _ := TrieCacheUsage()
	if bytes > limit {
		t.Fatalf("resident %d exceeds shrunken limit %d", bytes, limit)
	}
	if _, _, size := TrieCacheStats(); size != 2 {
		t.Fatalf("resident entries = %d, want 2", size)
	}
	// A zero limit disables caching.
	SetTrieCacheLimit(0)
	if _, _, size := TrieCacheStats(); size != 0 {
		t.Fatalf("zero limit left %d entries resident", size)
	}
}
