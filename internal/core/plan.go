package core

import (
	"fmt"

	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// Plan is the immutable execution plan Generic-Join and Leapfrog
// Triejoin share: the global variable order, one trie per atom built
// in that order, the per-depth participant lists and the mapping from
// search depth to output position. A Plan is built once per query and
// read concurrently by every worker goroutine; all mutable search
// state lives in the per-worker structs of the engine packages.
type Plan struct {
	Q     *Query
	Order []string
	// Tries[i] is atom i's trie; LevelOf[i][d] is atom i's trie level
	// bound when the global variable at depth d is bound, or -1 if the
	// atom lacks that variable.
	Tries   []*trie.Trie
	LevelOf [][]int
	// Participants[d] lists the atoms whose next level binds Order[d].
	Participants [][]int
	// OutPos maps search-order positions to output positions.
	OutPos []int
}

// BuildPlan validates the query, resolves the variable order (nil
// selects the degree-order heuristic) and builds the per-atom tries.
func BuildPlan(q *Query, order []string) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if order == nil {
		h, err := q.Hypergraph()
		if err != nil {
			return nil, err
		}
		order = h.DegreeOrder()
	}
	if err := checkOrder(q, order); err != nil {
		return nil, err
	}

	p := &Plan{
		Q:       q,
		Order:   order,
		Tries:   make([]*trie.Trie, len(q.Atoms)),
		LevelOf: make([][]int, len(q.Atoms)),
	}
	for i, a := range q.Atoms {
		// Rename the relation's columns to the atom's variables so the
		// trie order can be expressed in query-variable names.
		rel, err := a.Rel.Rename(a.Name, a.Vars...)
		if err != nil {
			return nil, fmt.Errorf("core: atom %s: %w", a.Name, err)
		}
		// The atom's trie order is the global order restricted to the
		// atom's variables.
		var atomOrder []string
		for _, v := range order {
			for _, av := range a.Vars {
				if av == v {
					atomOrder = append(atomOrder, v)
					break
				}
			}
		}
		tr, err := trie.Build(rel, atomOrder)
		if err != nil {
			return nil, fmt.Errorf("core: atom %s: %w", a.Name, err)
		}
		levelOf := make([]int, len(order))
		for d := range order {
			levelOf[d] = -1
		}
		for l, v := range atomOrder {
			for d, ov := range order {
				if ov == v {
					levelOf[d] = l
				}
			}
		}
		p.Tries[i] = tr
		p.LevelOf[i] = levelOf
	}

	p.Participants = make([][]int, len(order))
	for d := range order {
		for i := range p.Tries {
			if p.LevelOf[i][d] >= 0 {
				p.Participants[d] = append(p.Participants[d], i)
			}
		}
		if len(p.Participants[d]) == 0 {
			return nil, fmt.Errorf("core: variable %q occurs in no atom", order[d])
		}
	}

	p.OutPos = make([]int, len(order))
	for d, v := range order {
		p.OutPos[d] = -1
		for i, qv := range q.Vars {
			if qv == v {
				p.OutPos[d] = i
			}
		}
		if p.OutPos[d] < 0 {
			return nil, fmt.Errorf("core: order variable %q not in query", order[d])
		}
	}
	return p, nil
}

// TopValues computes the depth-0 intersection — the sorted distinct
// values of Order[0] common to every participating atom — which the
// parallel engine shards across workers. The result is appended to
// dst.
func (p *Plan) TopValues(dst []relation.Value) []relation.Value {
	ranges := make([]trie.LevelRange, 0, len(p.Participants[0]))
	for _, ai := range p.Participants[0] {
		tr := p.Tries[ai]
		ranges = append(ranges, trie.LevelRange{Col: tr.Level(0), Lo: 0, Hi: tr.Len()})
	}
	return trie.IntersectLevels(dst, ranges)
}

// checkOrder verifies order is a permutation of the query variables.
func checkOrder(q *Query, order []string) error {
	if len(order) != len(q.Vars) {
		return fmt.Errorf("core: order %v must cover all %d query variables", order, len(q.Vars))
	}
	seen := make(map[string]bool)
	for _, v := range order {
		if seen[v] {
			return fmt.Errorf("core: order repeats variable %q", v)
		}
		seen[v] = true
	}
	for _, v := range q.Vars {
		if !seen[v] {
			return fmt.Errorf("core: order is missing variable %q", v)
		}
	}
	return nil
}
