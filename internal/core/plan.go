package core

import (
	"fmt"

	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// OrderPolicy resolves the global variable order BuildPlanWith runs a
// query under. The engine ships three families of policies: explicit
// orders (ExplicitOrder), the degree-order heuristic (HeuristicOrder),
// and the cost-based optimizer in internal/planner, which scores
// candidate orders with the per-prefix bounds of internal/bounds.
type OrderPolicy interface {
	// ResolveOrder returns a permutation of q.Vars.
	ResolveOrder(q *Query) ([]string, error)
}

// OrderFunc adapts a function to the OrderPolicy interface.
type OrderFunc func(*Query) ([]string, error)

// ResolveOrder implements OrderPolicy.
func (f OrderFunc) ResolveOrder(q *Query) ([]string, error) { return f(q) }

// HeuristicOrder returns the default policy: the hypergraph
// degree-order heuristic (most-constrained variable first).
func HeuristicOrder() OrderPolicy {
	return OrderFunc(func(q *Query) ([]string, error) {
		h, err := q.Hypergraph()
		if err != nil {
			return nil, err
		}
		return h.DegreeOrder(), nil
	})
}

// ExplicitOrder returns a policy that always uses the given order.
func ExplicitOrder(order []string) OrderPolicy {
	return OrderFunc(func(q *Query) ([]string, error) {
		return order, nil
	})
}

// Plan is the immutable execution plan Generic-Join and Leapfrog
// Triejoin share: the global variable order, one trie per atom built
// in that order, the per-depth participant lists and the mapping from
// search depth to output position. A Plan is built once per query and
// read concurrently by every worker goroutine; all mutable search
// state lives in the per-worker structs of the engine packages.
type Plan struct {
	Q     *Query
	Order []string
	// Tries[i] is atom i's trie; LevelOf[i][d] is atom i's trie level
	// bound when the global variable at depth d is bound, or -1 if the
	// atom lacks that variable.
	Tries   []*trie.Trie
	LevelOf [][]int
	// Participants[d] lists the atoms whose next level binds Order[d].
	Participants [][]int
	// OutPos maps search-order positions to output positions.
	OutPos []int
}

// BuildPlan validates the query, resolves the variable order (nil
// selects the degree-order heuristic) and builds the per-atom tries.
// It is BuildPlanWith under ExplicitOrder/HeuristicOrder.
func BuildPlan(q *Query, order []string) (*Plan, error) {
	if order == nil {
		return BuildPlanWith(q, HeuristicOrder())
	}
	return BuildPlanWith(q, ExplicitOrder(order))
}

// BuildPlanWith is BuildPlanIn against the process-global trie store.
func BuildPlanWith(q *Query, policy OrderPolicy) (*Plan, error) {
	return BuildPlanIn(nil, q, policy)
}

// TrieSource serves the per-atom tries of plan construction. The
// canonical source is *TrieStore (build-on-miss, cached); the
// mutable-relation layer of wcoj.DB interposes a versioned source that
// resolves an atom against its relation's current snapshot — serving
// the cached base trie when the delta is empty and a level-merged
// (base ⊎ delta) trie otherwise — so the same plan builder works for
// static and mutable relations.
type TrieSource interface {
	Get(a Atom, atomOrder []string) (*trie.Trie, error)
}

// BuildPlanIn is BuildPlanSrc over a concrete store; nil selects the
// process-global store.
func BuildPlanIn(store *TrieStore, q *Query, policy OrderPolicy) (*Plan, error) {
	if store == nil {
		store = defaultTrieStore
	}
	return BuildPlanSrc(store, q, policy)
}

// BuildPlanSrc validates the query, asks the policy for the variable
// order and builds the per-atom tries. Tries are served from the given
// source keyed by (relation, variable binding, trie order), so
// repeated queries — and planner probes over the same relations —
// reuse built tries instead of rebuilding them. A long-lived DB
// passes a source backed by its own store, giving it ownership of its
// indexes independent of global cache churn.
func BuildPlanSrc(store TrieSource, q *Query, policy OrderPolicy) (*Plan, error) {
	if store == nil {
		store = defaultTrieStore
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		policy = HeuristicOrder()
	}
	order, err := policy.ResolveOrder(q)
	if err != nil {
		return nil, err
	}
	if err := CheckOrder(q, order); err != nil {
		return nil, err
	}

	p := &Plan{
		Q:       q,
		Order:   order,
		Tries:   make([]*trie.Trie, len(q.Atoms)),
		LevelOf: make([][]int, len(q.Atoms)),
	}
	for i, a := range q.Atoms {
		// The atom's trie order is the global order restricted to the
		// atom's variables.
		var atomOrder []string
		for _, v := range order {
			for _, av := range a.Vars {
				if av == v {
					atomOrder = append(atomOrder, v)
					break
				}
			}
		}
		tr, err := store.Get(a, atomOrder)
		if err != nil {
			return nil, fmt.Errorf("core: atom %s: %w", a.Name, err)
		}
		levelOf := make([]int, len(order))
		for d := range order {
			levelOf[d] = -1
		}
		for l, v := range atomOrder {
			for d, ov := range order {
				if ov == v {
					levelOf[d] = l
				}
			}
		}
		p.Tries[i] = tr
		p.LevelOf[i] = levelOf
	}

	p.Participants = make([][]int, len(order))
	for d := range order {
		for i := range p.Tries {
			if p.LevelOf[i][d] >= 0 {
				p.Participants[d] = append(p.Participants[d], i)
			}
		}
		if len(p.Participants[d]) == 0 {
			return nil, fmt.Errorf("core: variable %q occurs in no atom", order[d])
		}
	}

	p.OutPos = make([]int, len(order))
	for d, v := range order {
		p.OutPos[d] = -1
		for i, qv := range q.Vars {
			if qv == v {
				p.OutPos[d] = i
			}
		}
		if p.OutPos[d] < 0 {
			return nil, fmt.Errorf("core: order variable %q not in query", order[d])
		}
	}
	return p, nil
}

// RefreshPlan re-resolves only the tries of a plan against a new
// query binding (same shape: variables, atoms and resolved order are
// unchanged — the mutable-relation layer guarantees this because
// schema changes go through Register, which drops prepared plans
// entirely). Everything planning paid for — order resolution,
// including any cost-based LP solves, plus the level/participant
// tables — is carried over; only the per-atom tries are fetched from
// the source, which serves cached tries for unchanged relations and
// level-merged (base ⊎ delta) tries for updated ones. This is what
// lets a PreparedQuery survive updates: the plan skeleton is
// re-versioned, never re-planned.
func RefreshPlan(p *Plan, q *Query, src TrieSource) (*Plan, error) {
	if len(q.Atoms) != len(p.Tries) {
		return nil, fmt.Errorf("core: refresh: %d atoms, plan has %d", len(q.Atoms), len(p.Tries))
	}
	np := *p
	np.Q = q
	np.Tries = make([]*trie.Trie, len(p.Tries))
	for i, a := range q.Atoms {
		// The atom's trie order is recorded in the old trie itself.
		tr, err := src.Get(a, p.Tries[i].Attrs())
		if err != nil {
			return nil, fmt.Errorf("core: refresh atom %s: %w", a.Name, err)
		}
		np.Tries[i] = tr
	}
	return &np, nil
}

// TopValues computes the depth-0 intersection — the sorted distinct
// values of Order[0] common to every participating atom — which the
// parallel engine shards across workers. The result is appended to
// dst.
func (p *Plan) TopValues(dst []relation.Value) []relation.Value {
	ranges := make([]trie.LevelRange, 0, len(p.Participants[0]))
	for _, ai := range p.Participants[0] {
		tr := p.Tries[ai]
		ranges = append(ranges, tr.SegLevel(0, 0, tr.NumSegs(0)))
	}
	return trie.IntersectLevels(dst, ranges)
}

// CheckOrder verifies order is a permutation of the query variables.
// Violations are reported with the offending variable named: a
// duplicated entry, an entry that is not a query variable, or a query
// variable the order omits.
func CheckOrder(q *Query, order []string) error {
	seen := make(map[string]bool, len(order))
	for _, v := range order {
		if seen[v] {
			return fmt.Errorf("core: order %v repeats variable %q", order, v)
		}
		seen[v] = true
	}
	qvars := make(map[string]bool, len(q.Vars))
	for _, v := range q.Vars {
		qvars[v] = true
	}
	for _, v := range order {
		if !qvars[v] {
			return fmt.Errorf("core: order %v names %q, which is not a query variable", order, v)
		}
	}
	for _, v := range q.Vars {
		if !seen[v] {
			return fmt.Errorf("core: order %v is missing query variable %q", order, v)
		}
	}
	return nil
}

// checkOrder is the internal spelling kept for existing call sites.
func checkOrder(q *Query, order []string) error { return CheckOrder(q, order) }
