package core

import (
	"hash/maphash"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// The trie store memoizes the expensive half of plan construction.
// Building a trie for an atom means renaming the relation's columns to
// the atom's variables and re-sorting the storage by the atom's slice
// of the global variable order — O(N log N) per atom. The same
// (relation, binding, order) triple recurs constantly: repeated
// queries over a long-lived database, the planner's equivalence and
// benchmark probes, and every parallel run that follows a serial one.
// Relations are immutable, so a built trie is valid forever and safe
// to share across plans and worker goroutines; the cache key uses the
// relation's pointer identity.
//
// The store is bounded by a byte budget with LRU eviction: each entry
// is charged its trie's estimated storage footprint and stamped from a
// store-wide logical clock on every hit; when the resident total
// exceeds the budget the stalest stamps are evicted until it fits.
// Entries larger than the whole budget are returned to the caller
// uncached.
//
// Concurrency: the key space is striped across trieStoreShards
// independently locked segments, and the hit path — the only path a
// steady-state workload touches — takes a shard *read* lock plus one
// atomic stamp update. Concurrent plan builds therefore scale with
// cores even when every worker wants the same trie; the old
// single-mutex cache serialized them all. Builds still happen outside
// any lock, and a lost build race shares the winner's trie.
//
// Two kinds of store exist: the process-global default (what the
// one-shot wcoj.Execute paths use, accessible through the
// TrieCache* package functions) and per-DB stores (NewTrieStore) that
// give a long-lived engine ownership of its indexes, isolated from
// global churn.

// trieKey identifies one atom trie: the backing relation, the
// variable binding of the atom, and the trie's attribute order.
type trieKey struct {
	rel         *relation.Relation
	vars, order string
}

// trieEntry is one resident store entry.
type trieEntry struct {
	key   trieKey
	tr    *trie.Trie
	bytes int64
	// stamp is the store's logical clock value at the entry's last
	// touch; eviction removes the smallest stamps first.
	stamp atomic.Uint64
}

// DefaultTrieCacheLimit is the byte budget the process-global store
// starts with (per-DB stores default to it too). 256 MiB of cached
// tries: generous for benchmark suites, small next to the relations a
// workload at that scale already holds.
const DefaultTrieCacheLimit int64 = 256 << 20

// trieEntryOverhead is the fixed per-entry charge on top of the
// trie's storage estimate: map slot, key strings and the entry struct.
// It keeps zero-byte tries (empty relations) from slipping under the
// byte budget — without it a process churning through distinct empty
// relations would accumulate entries forever, the exact unbounded
// growth the budget exists to prevent — and makes SetLimit(0)
// genuinely cache nothing.
const trieEntryOverhead int64 = 256

// trieStoreShards is the stripe count. 32 shards keep the probability
// of two concurrent *distinct-key* operations colliding low on any
// realistic core count; same-key hits don't collide at all (read
// lock).
const trieStoreShards = 32

// trieShard is one independently locked stripe of the key space.
type trieShard struct {
	mu sync.RWMutex
	m  map[trieKey]*trieEntry
}

// TrieStore is a bounded, sharded cache of built atom tries. The zero
// value is not usable; create one with NewTrieStore. A DB owns one
// store per engine instance; the process-global default store backs
// the one-shot execution paths.
type TrieStore struct {
	limit     atomic.Int64
	bytes     atomic.Int64
	clock     atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	// evictMu serializes eviction sweeps (never held by the hit path).
	evictMu sync.Mutex
	shards  [trieStoreShards]trieShard
}

// NewTrieStore returns an empty store with the given byte budget;
// limit <= 0 disables caching (every Get builds).
func NewTrieStore(limit int64) *TrieStore {
	s := &TrieStore{}
	s.limit.Store(limit)
	for i := range s.shards {
		s.shards[i].m = make(map[trieKey]*trieEntry)
	}
	return s
}

// trieKeySeed seeds the shard hash; one per process is plenty.
var trieKeySeed = maphash.MakeSeed()

// shardOf maps a key to its stripe.
func (s *TrieStore) shardOf(key trieKey) *trieShard {
	var h maphash.Hash
	h.SetSeed(trieKeySeed)
	var p [8]byte
	ptr := reflect.ValueOf(key.rel).Pointer()
	for i := range p {
		p[i] = byte(ptr >> (8 * i))
	}
	h.Write(p[:])
	h.WriteString(key.vars)
	h.WriteString(key.order)
	return &s.shards[h.Sum64()%trieStoreShards]
}

// keyOf builds the cache key of (atom, trie order).
func keyOf(a Atom, atomOrder []string) trieKey {
	return trieKey{
		rel:   a.Rel,
		vars:  strings.Join(a.Vars, "\x1f"),
		order: strings.Join(atomOrder, "\x1f"),
	}
}

// Get returns the trie for atom a under atomOrder, building and
// caching it on first use.
func (s *TrieStore) Get(a Atom, atomOrder []string) (*trie.Trie, error) {
	if tr, ok := s.lookup(keyOf(a, atomOrder)); ok {
		return tr, nil
	}
	s.misses.Add(1)

	// Build outside any lock: sorting a large relation must not block
	// concurrent plan construction.
	rel, err := a.Rel.Rename(a.Name, a.Vars...)
	if err != nil {
		return nil, err
	}
	tr, err := trie.Build(rel, atomOrder)
	if err != nil {
		return nil, err
	}
	return s.insert(keyOf(a, atomOrder), tr), nil
}

// Lookup returns the cached trie for (atom, order) without building on
// a miss. The mutable-relation layer probes with it before paying a
// delta merge; a found entry counts as a hit, a miss counts as a miss
// (the caller's Add completes the same build-on-miss cycle Get runs).
func (s *TrieStore) Lookup(a Atom, atomOrder []string) (*trie.Trie, bool) {
	tr, ok := s.lookup(keyOf(a, atomOrder))
	if !ok {
		s.misses.Add(1)
	}
	return tr, ok
}

// Add caches an externally built trie for (atom, order) — the
// level-merged snapshot tries of the mutable-relation layer enter the
// store here, under the byte budget and LRU policy of every other
// entry. When a concurrent insert for the same key won, the resident
// trie is returned and should be used instead (all candidates for one
// key are equivalent).
func (s *TrieStore) Add(a Atom, atomOrder []string, tr *trie.Trie) *trie.Trie {
	return s.insert(keyOf(a, atomOrder), tr)
}

// lookup is the shared hit path: shard read lock, atomic LRU stamp.
func (s *TrieStore) lookup(key trieKey) (*trie.Trie, bool) {
	sh := s.shardOf(key)
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	e.stamp.Store(s.clock.Add(1))
	s.hits.Add(1)
	return e.tr, true
}

// insert caches a built trie under the byte budget, resolving insert
// races by adopting the resident winner.
func (s *TrieStore) insert(key trieKey, tr *trie.Trie) *trie.Trie {
	size := tr.SizeBytes() + trieEntryOverhead
	if size > s.limit.Load() {
		// Larger than the whole budget: hand it to the caller uncached.
		return tr
	}
	sh := s.shardOf(key)
	sh.mu.Lock()
	if won, ok := sh.m[key]; ok {
		// A concurrent builder won the race; share its trie.
		won.stamp.Store(s.clock.Add(1))
		tr = won.tr
		sh.mu.Unlock()
		return tr
	}
	e := &trieEntry{key: key, tr: tr, bytes: size}
	e.stamp.Store(s.clock.Add(1))
	sh.m[key] = e
	sh.mu.Unlock()
	if limit := s.limit.Load(); s.bytes.Add(size) > limit {
		// Evict with hysteresis (to 7/8 of the budget): each sweep
		// snapshots and sorts every resident stamp, so freeing only one
		// entry's worth would pay that cost again on the very next miss
		// of a workload sitting at its budget.
		s.evictTo(limit - limit/8)
	}
	return tr
}

// evictTo removes stalest-stamp entries until the resident total is at
// most target bytes. Sweeps are serialized; concurrent hits proceed
// under shard read locks and an entry touched after the sweep snapshot
// is skipped rather than evicted.
func (s *TrieStore) evictTo(target int64) {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	if target < 0 {
		target = 0
	}
	if s.bytes.Load() <= target {
		return
	}
	type victim struct {
		shard *trieShard
		e     *trieEntry
		stamp uint64
	}
	var all []victim
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			all = append(all, victim{shard: sh, e: e, stamp: e.stamp.Load()})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stamp < all[j].stamp })
	for _, v := range all {
		if s.bytes.Load() <= target {
			return
		}
		sh := v.shard
		sh.mu.Lock()
		cur, ok := sh.m[v.e.key]
		if ok && cur == v.e && cur.stamp.Load() == v.stamp {
			delete(sh.m, v.e.key)
			s.bytes.Add(-v.e.bytes)
			s.evictions.Add(1)
		}
		sh.mu.Unlock()
	}
}

// SetLimit replaces the store's byte budget, evicting stale entries if
// the resident set exceeds the new limit, and returns the previous
// limit. Limits <= 0 disable caching entirely (every resident entry is
// dropped).
func (s *TrieStore) SetLimit(bytes int64) int64 {
	prev := s.limit.Swap(bytes)
	// Exact (no hysteresis): SetLimit is rare and callers expect the
	// resident set to land exactly within the new budget.
	s.evictTo(bytes)
	return prev
}

// Stats reports the store's lifetime hit/miss counters and current
// entry count; the benchmark harness uses it to show planner probes
// reusing tries.
func (s *TrieStore) Stats() (hits, misses uint64, size int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		size += len(sh.m)
		sh.mu.RUnlock()
	}
	return s.hits.Load(), s.misses.Load(), size
}

// Usage reports the resident byte total, the byte budget and the
// lifetime eviction count.
func (s *TrieStore) Usage() (bytes, limit int64, evictions uint64) {
	return s.bytes.Load(), s.limit.Load(), s.evictions.Load()
}

// Reset empties the store and zeroes its counters (the byte budget is
// kept); tests and benchmarks call it to measure cold builds.
func (s *TrieStore) Reset() {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[trieKey]*trieEntry)
		sh.mu.Unlock()
	}
	s.bytes.Store(0)
	s.hits.Store(0)
	s.misses.Store(0)
	s.evictions.Store(0)
}

// defaultTrieStore backs the one-shot execution paths (and any plan
// build that does not name a store).
var defaultTrieStore = NewTrieStore(DefaultTrieCacheLimit)

// DefaultTrieStore returns the process-global store.
func DefaultTrieStore() *TrieStore { return defaultTrieStore }

// SetTrieCacheLimit replaces the process-global store's byte budget
// and returns the previous limit; see TrieStore.SetLimit.
func SetTrieCacheLimit(bytes int64) int64 { return defaultTrieStore.SetLimit(bytes) }

// TrieCacheStats reports the process-global store's counters; see
// TrieStore.Stats.
func TrieCacheStats() (hits, misses uint64, size int) { return defaultTrieStore.Stats() }

// TrieCacheUsage reports the process-global store's resident bytes,
// budget and evictions; see TrieStore.Usage.
func TrieCacheUsage() (bytes, limit int64, evictions uint64) { return defaultTrieStore.Usage() }

// ResetTrieCache empties the process-global store; see TrieStore.Reset.
func ResetTrieCache() { defaultTrieStore.Reset() }
