package core

import (
	"strings"
	"sync"

	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// The trie cache memoizes the expensive half of plan construction.
// Building a trie for an atom means renaming the relation's columns to
// the atom's variables and re-sorting the storage by the atom's slice
// of the global variable order — O(N log N) per atom. The same
// (relation, binding, order) triple recurs constantly: repeated
// queries over a long-lived database, the planner's equivalence and
// benchmark probes, and every parallel run that follows a serial one.
// Relations are immutable, so a built trie is valid forever and safe
// to share across plans and worker goroutines; the cache key uses the
// relation's pointer identity.

// trieKey identifies one atom trie: the backing relation, the
// variable binding of the atom, and the trie's attribute order.
type trieKey struct {
	rel         *relation.Relation
	vars, order string
}

// trieCacheCap bounds the number of cached tries. When the cap is
// reached the cache is cleared wholesale — an epoch flush is cheap,
// deterministic and good enough for the access pattern (a handful of
// hot tries per workload).
//
// The bound is an entry count, not a byte budget: each entry retains
// its sorted trie copy and pins the keyed relation until the next
// epoch flush, so a process that churns through large transient
// relations holds their memory for up to one epoch. Callers that
// drop big relations and want the memory back immediately should
// call ResetTrieCache.
const trieCacheCap = 256

var trieCache = struct {
	sync.Mutex
	m            map[trieKey]*trie.Trie
	hits, misses uint64
}{m: make(map[trieKey]*trie.Trie)}

// cachedTrie returns the trie for atom a under atomOrder, building and
// caching it on first use.
func cachedTrie(a Atom, atomOrder []string) (*trie.Trie, error) {
	key := trieKey{
		rel:   a.Rel,
		vars:  strings.Join(a.Vars, "\x1f"),
		order: strings.Join(atomOrder, "\x1f"),
	}
	trieCache.Lock()
	if tr, ok := trieCache.m[key]; ok {
		trieCache.hits++
		trieCache.Unlock()
		return tr, nil
	}
	trieCache.misses++
	trieCache.Unlock()

	// Build outside the lock: sorting a large relation must not block
	// concurrent plan construction.
	rel, err := a.Rel.Rename(a.Name, a.Vars...)
	if err != nil {
		return nil, err
	}
	tr, err := trie.Build(rel, atomOrder)
	if err != nil {
		return nil, err
	}

	trieCache.Lock()
	if got, ok := trieCache.m[key]; ok {
		tr = got // a concurrent builder won the race; share its trie
	} else {
		if len(trieCache.m) >= trieCacheCap {
			trieCache.m = make(map[trieKey]*trie.Trie)
		}
		trieCache.m[key] = tr
	}
	trieCache.Unlock()
	return tr, nil
}

// TrieCacheStats reports the cache's lifetime hit/miss counters and
// current size; the benchmark harness uses it to show planner probes
// reusing tries.
func TrieCacheStats() (hits, misses uint64, size int) {
	trieCache.Lock()
	defer trieCache.Unlock()
	return trieCache.hits, trieCache.misses, len(trieCache.m)
}

// ResetTrieCache empties the cache and zeroes its counters; tests and
// benchmarks call it to measure cold builds.
func ResetTrieCache() {
	trieCache.Lock()
	defer trieCache.Unlock()
	trieCache.m = make(map[trieKey]*trie.Trie)
	trieCache.hits, trieCache.misses = 0, 0
}
