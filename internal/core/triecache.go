package core

import (
	"container/list"
	"strings"
	"sync"

	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// The trie cache memoizes the expensive half of plan construction.
// Building a trie for an atom means renaming the relation's columns to
// the atom's variables and re-sorting the storage by the atom's slice
// of the global variable order — O(N log N) per atom. The same
// (relation, binding, order) triple recurs constantly: repeated
// queries over a long-lived database, the planner's equivalence and
// benchmark probes, and every parallel run that follows a serial one.
// Relations are immutable, so a built trie is valid forever and safe
// to share across plans and worker goroutines; the cache key uses the
// relation's pointer identity.
//
// The cache is bounded by a byte budget with LRU eviction: each entry
// is charged its trie's estimated storage footprint, a hit moves the
// entry to the front of the recency list, and inserting past the
// budget evicts from the tail until the new entry fits. A process that
// churns through arbitrarily many transient relations therefore holds
// at most TrieCacheLimit bytes of cached tries (plus whatever the
// caller itself still references) — the cache can no longer grow
// without bound across queries. Entries larger than the whole budget
// are returned to the caller uncached.

// trieKey identifies one atom trie: the backing relation, the
// variable binding of the atom, and the trie's attribute order.
type trieKey struct {
	rel         *relation.Relation
	vars, order string
}

// trieEntry is one resident cache entry; list.Element.Value holds it.
type trieEntry struct {
	key   trieKey
	tr    *trie.Trie
	bytes int64
}

// DefaultTrieCacheLimit is the byte budget the process starts with.
// 256 MiB of cached tries: generous for benchmark suites, small next
// to the relations a workload at that scale already holds.
const DefaultTrieCacheLimit int64 = 256 << 20

// trieEntryOverhead is the fixed per-entry charge on top of the
// trie's storage estimate: map slot, list element, key strings and
// the entry struct. It keeps zero-byte tries (empty relations) from
// slipping under the byte budget — without it a process churning
// through distinct empty relations would accumulate entries forever,
// the exact unbounded growth the budget exists to prevent — and makes
// SetTrieCacheLimit(0) genuinely cache nothing.
const trieEntryOverhead int64 = 256

var trieCache = struct {
	sync.Mutex
	m                       map[trieKey]*list.Element
	lru                     *list.List // front = most recently used
	bytes                   int64
	limit                   int64
	hits, misses, evictions uint64
}{
	m:     make(map[trieKey]*list.Element),
	lru:   list.New(),
	limit: DefaultTrieCacheLimit,
}

// cachedTrie returns the trie for atom a under atomOrder, building and
// caching it on first use.
func cachedTrie(a Atom, atomOrder []string) (*trie.Trie, error) {
	key := trieKey{
		rel:   a.Rel,
		vars:  strings.Join(a.Vars, "\x1f"),
		order: strings.Join(atomOrder, "\x1f"),
	}
	trieCache.Lock()
	if el, ok := trieCache.m[key]; ok {
		trieCache.hits++
		trieCache.lru.MoveToFront(el)
		tr := el.Value.(*trieEntry).tr
		trieCache.Unlock()
		return tr, nil
	}
	trieCache.misses++
	trieCache.Unlock()

	// Build outside the lock: sorting a large relation must not block
	// concurrent plan construction.
	rel, err := a.Rel.Rename(a.Name, a.Vars...)
	if err != nil {
		return nil, err
	}
	tr, err := trie.Build(rel, atomOrder)
	if err != nil {
		return nil, err
	}

	trieCache.Lock()
	if el, ok := trieCache.m[key]; ok {
		// A concurrent builder won the race; share its trie.
		trieCache.lru.MoveToFront(el)
		tr = el.Value.(*trieEntry).tr
	} else {
		insertLocked(key, tr)
	}
	trieCache.Unlock()
	return tr, nil
}

// insertLocked adds a built trie under the byte budget, evicting
// least-recently-used entries until it fits. Tries larger than the
// whole budget are not cached at all. Callers hold trieCache.Mutex.
func insertLocked(key trieKey, tr *trie.Trie) {
	size := tr.SizeBytes() + trieEntryOverhead
	if size > trieCache.limit {
		return
	}
	for trieCache.bytes+size > trieCache.limit {
		tail := trieCache.lru.Back()
		if tail == nil {
			break
		}
		evictLocked(tail)
	}
	el := trieCache.lru.PushFront(&trieEntry{key: key, tr: tr, bytes: size})
	trieCache.m[key] = el
	trieCache.bytes += size
}

// evictLocked removes one entry. Callers hold trieCache.Mutex.
func evictLocked(el *list.Element) {
	e := el.Value.(*trieEntry)
	trieCache.lru.Remove(el)
	delete(trieCache.m, e.key)
	trieCache.bytes -= e.bytes
	trieCache.evictions++
}

// SetTrieCacheLimit replaces the cache's byte budget, evicting from
// the LRU tail if the resident set exceeds the new limit, and returns
// the previous limit. Limits <= 0 disable caching entirely (every
// resident entry is dropped). Tests and memory-constrained embedders
// use it; the default is DefaultTrieCacheLimit.
func SetTrieCacheLimit(bytes int64) int64 {
	trieCache.Lock()
	defer trieCache.Unlock()
	prev := trieCache.limit
	trieCache.limit = bytes
	for trieCache.bytes > trieCache.limit {
		tail := trieCache.lru.Back()
		if tail == nil {
			break
		}
		evictLocked(tail)
	}
	return prev
}

// TrieCacheStats reports the cache's lifetime hit/miss counters and
// current size; the benchmark harness uses it to show planner probes
// reusing tries.
func TrieCacheStats() (hits, misses uint64, size int) {
	trieCache.Lock()
	defer trieCache.Unlock()
	return trieCache.hits, trieCache.misses, len(trieCache.m)
}

// TrieCacheUsage reports the resident byte total, the byte budget and
// the lifetime eviction count.
func TrieCacheUsage() (bytes, limit int64, evictions uint64) {
	trieCache.Lock()
	defer trieCache.Unlock()
	return trieCache.bytes, trieCache.limit, trieCache.evictions
}

// ResetTrieCache empties the cache and zeroes its counters (the byte
// budget is kept); tests and benchmarks call it to measure cold
// builds.
func ResetTrieCache() {
	trieCache.Lock()
	defer trieCache.Unlock()
	trieCache.m = make(map[trieKey]*list.Element)
	trieCache.lru.Init()
	trieCache.bytes = 0
	trieCache.hits, trieCache.misses, trieCache.evictions = 0, 0, 0
}
