package core

// Aggregate-aware Generic-Join. The plain engine (genericjoin.go)
// enumerates every result tuple; the entry points here answer COUNT,
// EXISTS and projection queries while skipping the enumeration work
// the answer does not need, driven by the level classification of
// internal/agg:
//
//   - free-counted suffix levels are never recursed into — the number
//     of extensions is the product of the active atoms' row-range
//     sizes (relations are duplicate-free sets, so a range size is a
//     distinct-tuple count), and the deepest level of a counting run
//     contributes the size of its intersection;
//   - bound levels below the projection boundary consult a
//     per-(trie,prefix) memo, so shared suffixes are counted once;
//   - EXISTS short-circuits on the first witness, across shards via a
//     shared stop flag.
//
// Results are byte-identical to enumerate-then-aggregate at every
// parallelism setting and under every order policy.

import (
	"context"
	"fmt"
	"sync/atomic"

	"wcoj/internal/agg"
	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// atomVarLists projects the query's atoms to their variable lists, the
// schema shape the agg classifier works on.
func atomVarLists(q *Query) [][]string {
	out := make([][]string, len(q.Atoms))
	for i, a := range q.Atoms {
		out[i] = a.Vars
	}
	return out
}

// AggPlan builds the execution plan for an aggregate-aware run: the
// policy's variable order is sunk per spec (count-irrelevant variables
// move to the end) before tries are built, then the levels are
// classified. Both WCOJ engines plan through here, so Generic-Join and
// LFTJ agree on orders and classifications.
func AggPlan(q *Query, policy OrderPolicy, spec agg.Spec) (*Plan, *agg.Classification, error) {
	return AggPlanIn(nil, q, policy, spec)
}

// AggPlanIn is AggPlanSrc over a concrete store (nil selects the
// process-global one).
func AggPlanIn(store *TrieStore, q *Query, policy OrderPolicy, spec agg.Spec) (*Plan, *agg.Classification, error) {
	if store == nil {
		store = DefaultTrieStore()
	}
	return AggPlanSrc(store, q, policy, spec)
}

// AggPlanSrc is AggPlan with tries served from the given source;
// long-lived DBs plan through here (with their versioned source, so
// aggregate plans read the same base ⊎ delta snapshot views as the
// enumeration plans).
func AggPlanSrc(store TrieSource, q *Query, policy OrderPolicy, spec agg.Spec) (*Plan, *agg.Classification, error) {
	if policy == nil {
		policy = HeuristicOrder()
	}
	sunk := OrderFunc(func(q *Query) ([]string, error) {
		order, err := policy.ResolveOrder(q)
		if err != nil {
			return nil, err
		}
		return agg.Sink(order, atomVarLists(q), spec), nil
	})
	p, err := BuildPlanSrc(store, q, sunk)
	if err != nil {
		return nil, nil, err
	}
	cls, err := agg.Classify(p.Order, atomVarLists(q), spec)
	if err != nil {
		return nil, nil, err
	}
	return p, cls, nil
}

// aggPlan resolves the options into a sunk, classified plan (Policy
// wins over Order, as in plan).
func (o GenericJoinOptions) aggPlan(q *Query, spec agg.Spec) (*Plan, *agg.Classification, error) {
	policy := o.Policy
	if policy == nil && o.Order != nil {
		policy = ExplicitOrder(o.Order)
	}
	return AggPlanIn(o.Store, q, policy, spec)
}

// GenericJoinAgg evaluates an aggregate with Generic-Join search.
// ModeCount returns the result cardinality — full multiplicity with a
// nil spec.Project, distinct projected tuples otherwise. ModeExists
// returns 1 or 0, short-circuiting on the first witness. Counts are
// identical to enumerate-then-aggregate at every Parallelism setting.
func GenericJoinAgg(q *Query, opts GenericJoinOptions, spec agg.Spec) (int64, *Stats, error) {
	p, cls, err := opts.aggPlan(q, spec)
	if err != nil {
		return 0, nil, err
	}
	return GenericJoinAggPlan(opts.Ctx, p, cls, opts.Parallelism)
}

// GenericJoinAggPlan is GenericJoinAgg over a prebuilt sunk plan and
// classification — the re-execution path of prepared aggregate
// queries, with context cancellation. The spec is the one the plan was
// classified for (cls.Spec).
func GenericJoinAggPlan(ctx context.Context, p *Plan, cls *agg.Classification, parallelism int) (int64, *Stats, error) {
	stats := &Stats{}
	if err := CtxErr(ctx); err != nil {
		return 0, nil, err
	}
	switch cls.Spec.Mode {
	case agg.ModeCount:
		if len(cls.Spec.Project) > 0 {
			// Distinct projected count: the projected enumeration with a
			// counting sink.
			var n int64
			err := gjProjectVisit(ctx, p, cls, parallelism, stats, func(relation.Tuple) error {
				n++
				return nil
			})
			if err != nil {
				return 0, nil, err
			}
			stats.Output = int(n)
			return n, stats, nil
		}
		n, err := gjCountFast(ctx, p, cls, parallelism, stats)
		if err != nil {
			return 0, nil, err
		}
		stats.Output = int(n)
		return n, stats, nil
	case agg.ModeExists:
		found, err := gjExists(ctx, p, cls, parallelism, stats)
		if err != nil {
			return 0, nil, err
		}
		if found {
			stats.Output = 1
			return 1, stats, nil
		}
		return 0, stats, nil
	}
	return 0, nil, fmt.Errorf("core: unsupported aggregate mode %v", cls.Spec.Mode)
}

// GenericJoinProjectVisit streams the distinct projected tuples of the
// query to emit, in the lexicographic order of the sunk variable-order
// prefix. The Tuple passed to emit is reused between calls; emit must
// copy it to retain it. Projected-away levels are existence-checked
// per prefix (short-circuiting on the first witness) rather than
// enumerated, so a prefix with a million extensions costs the same as
// one with a single extension.
func GenericJoinProjectVisit(q *Query, opts GenericJoinOptions, project []string, stats *Stats, emit func(relation.Tuple) error) error {
	p, cls, err := opts.aggPlan(q, agg.Spec{Mode: agg.ModeEnumerate, Project: project})
	if err != nil {
		return err
	}
	return gjProjectVisit(opts.Ctx, p, cls, opts.Parallelism, stats, emit)
}

// GenericJoinProjectVisitPlan is GenericJoinProjectVisit over a
// prebuilt sunk plan and enumerate-mode classification, with context
// cancellation.
func GenericJoinProjectVisitPlan(ctx context.Context, p *Plan, cls *agg.Classification, parallelism int, stats *Stats, emit func(relation.Tuple) error) error {
	return gjProjectVisit(ctx, p, cls, parallelism, stats, emit)
}

// gjCountFast runs the counting search, sharding the depth-0
// intersection when parallelism is requested and the query is not
// already a pure product (CountFrom == 0 answers in O(#atoms)).
func gjCountFast(ctx context.Context, p *Plan, cls *agg.Classification, parallelism int, stats *Stats) (int64, error) {
	if parallelism <= 1 || len(p.Order) == 0 || cls.CountFrom == 0 {
		var stop atomic.Bool
		defer WatchCancel(ctx, &stop)()
		a := newGJAggWorker(p, cls, stats, nil)
		a.stop = &stop
		a.budget = BudgetFrom(ctx)
		n := a.count(0)
		if a.aborted {
			if a.budgetHit {
				return 0, ErrNodeBudget
			}
			return 0, CtxAbortErr(ctx, ErrAborted)
		}
		if a.overflow {
			return 0, agg.ErrCountOverflow
		}
		return n, nil
	}
	vals := p.TopValues(nil)
	stats.Recursions++
	stats.IntersectValues += len(vals)
	budget := BudgetFrom(ctx)
	total, err := RunShardedSum(ctx, vals, parallelism, stats, func(chunk []relation.Value, st *Stats, stop *atomic.Bool) (int64, error) {
		if !budget.Spend(int64(len(chunk))) {
			return 0, ErrNodeBudget
		}
		a := newGJAggWorker(p, cls, st, nil)
		a.stop = stop
		a.budget = budget
		n := a.countChunk(chunk)
		if a.aborted {
			if a.budgetHit {
				return 0, ErrNodeBudget
			}
			return 0, ErrAborted
		}
		if a.overflow {
			return 0, agg.ErrCountOverflow
		}
		return n, nil
	})
	if err == nil && total < 0 { // cross-chunk summation wrapped
		err = agg.ErrCountOverflow
	}
	if err != nil {
		return 0, err
	}
	return total, nil
}

// gjExists runs the existence search; shards poll a shared stop flag
// so the whole fleet unwinds once any worker finds a witness.
func gjExists(ctx context.Context, p *Plan, cls *agg.Classification, parallelism int, stats *Stats) (bool, error) {
	if parallelism <= 1 || len(p.Order) == 0 || cls.CountFrom == 0 {
		var stop atomic.Bool
		defer WatchCancel(ctx, &stop)()
		a := newGJAggWorker(p, cls, stats, nil)
		a.stop = &stop
		a.budget = BudgetFrom(ctx)
		found := a.exists(0)
		if !found {
			if a.budgetHit {
				return false, ErrNodeBudget
			}
			// The stop flag is only set by cancellation here, so a false
			// under a cancelled context is inconclusive, not a "no".
			if err := CtxErr(ctx); err != nil {
				return false, err
			}
		}
		return found, nil
	}
	vals := p.TopValues(nil)
	stats.Recursions++
	stats.IntersectValues += len(vals)
	budget := BudgetFrom(ctx)
	return RunShardedAny(ctx, vals, parallelism, stats, func(chunk []relation.Value, st *Stats, stop *atomic.Bool) (bool, error) {
		if !budget.Spend(int64(len(chunk))) {
			return false, ErrNodeBudget
		}
		a := newGJAggWorker(p, cls, st, nil)
		a.stop = stop
		a.budget = budget
		found := a.existsChunk(chunk)
		if !found && a.budgetHit {
			return false, ErrNodeBudget
		}
		return found, nil
	})
}

// gjProjectVisit runs the projected enumeration, replaying sharded
// chunks in deterministic order exactly like the full-tuple engine.
func gjProjectVisit(ctx context.Context, p *Plan, cls *agg.Classification, parallelism int, stats *Stats, emit func(relation.Tuple) error) error {
	if parallelism <= 1 || len(p.Order) == 0 || cls.EnumEnd == 0 {
		var stop atomic.Bool
		defer WatchCancel(ctx, &stop)()
		a := newGJAggWorker(p, cls, stats, emit)
		a.stop = &stop
		a.budget = BudgetFrom(ctx)
		err := a.visit(0)
		if err == nil {
			// Budget exhaustion inside the inner existence checks has no
			// error path: prefixes were silently skipped, so a nil
			// completion with the flag set is incomplete, not success.
			if a.budgetHit {
				return ErrNodeBudget
			}
			// A cancellation landing between polls makes the inner
			// existence checks return false, silently skipping prefixes;
			// a nil completion under a cancelled ctx is therefore
			// inconclusive, never a complete answer.
			return CtxErr(ctx)
		}
		return CtxAbortErr(ctx, err)
	}
	vals := p.TopValues(nil)
	stats.Recursions++
	stats.IntersectValues += len(vals)
	budget := BudgetFrom(ctx)
	return RunShardedTop(ctx, vals, parallelism, len(cls.Spec.Project), stats, emit,
		func(chunk []relation.Value, st *Stats, stop *atomic.Bool, chunkEmit func(relation.Tuple) error) error {
			if !budget.Spend(int64(len(chunk))) {
				return ErrNodeBudget
			}
			a := newGJAggWorker(p, cls, st, chunkEmit)
			a.stop = stop
			a.budget = budget
			err := a.visitChunk(chunk)
			if err == nil && a.budgetHit {
				return ErrNodeBudget
			}
			return err
		})
}

// gjAggWorker is the per-goroutine state of an aggregate-aware search:
// the plain worker's range stacks and scratch plus the classification,
// the subtree memo and the projection buffer. Like the plain worker it
// shares only the immutable Plan (and Classification) with siblings.
type gjAggWorker struct {
	w    *gjWorker
	cls  *agg.Classification
	memo *agg.Memo
	// stop, when non-nil, is polled by every search mode: sharded
	// EXISTS short-circuits across workers through it, and a cancelled
	// or aborted run unwinds at the next poll.
	stop *atomic.Bool
	// budget, when non-nil, is drawn down at the stop-poll stride; all
	// workers of a run share one budget.
	budget *NodeBudget
	// aborted records that a stop-flag poll fired inside a counting
	// search (which has no error path); the entry points translate it.
	// budgetHit qualifies the abort: the run died of budget exhaustion,
	// not cancellation, and must surface ErrNodeBudget.
	aborted   bool
	budgetHit bool
	// overflow records that a count exceeded int64 somewhere below;
	// set by product, checked by the counting entry points.
	overflow bool
	// projPos[i] is the binding position of cls.Spec.Project[i];
	// projBuf is the reused emit tuple.
	projPos []int
	projBuf relation.Tuple
	// keyRanges is the scratch the memo key is built from.
	keyRanges []int
}

func newGJAggWorker(p *Plan, cls *agg.Classification, stats *Stats, emit func(relation.Tuple) error) *gjAggWorker {
	a := &gjAggWorker{
		w:    newGJWorker(p, stats, emit),
		cls:  cls,
		memo: agg.NewMemo(),
	}
	if len(cls.Spec.Project) > 0 {
		a.projPos = make([]int, len(cls.Spec.Project))
		a.projBuf = make(relation.Tuple, len(cls.Spec.Project))
		for i, v := range cls.Spec.Project {
			for j, qv := range p.Q.Vars {
				if qv == v {
					a.projPos[i] = j
				}
			}
		}
	}
	return a
}

// levelRanges assembles the participating level ranges at depth d into
// the worker's scratch.
//
//wcojlint:retains w.ranges is scratch consumed by the caller's intersection, under one pinned snapshot
func (a *gjAggWorker) levelRanges(d int) []trie.LevelRange {
	w := a.w
	w.ranges = w.ranges[:0]
	for _, ai := range w.plan.Participants[d] {
		ga := w.atoms[ai]
		l := ga.levelOf[d]
		w.ranges = append(w.ranges, ga.trie.SegLevel(l, ga.segLo[l], ga.segHi[l]))
	}
	return w.ranges
}

// intersect computes the depth-d level intersection (the rec body of
// the plain engine).
func (a *gjAggWorker) intersect(d int) []relation.Value {
	w := a.w
	vals := trie.IntersectLevels(w.scratch[d][:0], a.levelRanges(d))
	w.scratch[d] = vals
	w.stats.IntersectValues += len(vals)
	return vals
}

// narrow binds v at depth d on every participating atom. v comes from
// the level intersection, so narrowing cannot fail; the guard mirrors
// the plain engine's.
func (a *gjAggWorker) narrow(d int, v relation.Value) bool {
	for _, ai := range a.w.plan.Participants[d] {
		ga := a.w.atoms[ai]
		if !ga.bind(ga.levelOf[d], v) {
			return false
		}
	}
	return true
}

// product multiplies the active atoms' current row-range sizes — the
// number of suffix extensions below depth d when every remaining level
// is free-counted. Overflow marks the worker instead of wrapping; the
// entry points turn the mark into agg.ErrCountOverflow.
func (a *gjAggWorker) product(d int) int64 {
	prod := int64(1)
	for j, ai := range a.cls.ActiveAtoms[d] {
		ga := a.w.atoms[ai]
		lo, hi := ga.rows(a.cls.BoundLevel[d][j])
		var ok bool
		prod, ok = agg.Mul(prod, int64(hi-lo))
		if !ok {
			a.overflow = true
			return 0
		}
		if prod == 0 {
			return 0
		}
	}
	return prod
}

// productNonEmpty is the existence twin of product: every active
// atom's range is non-empty. No multiplication, so no overflow.
func (a *gjAggWorker) productNonEmpty(d int) bool {
	for j, ai := range a.cls.ActiveAtoms[d] {
		ga := a.w.atoms[ai]
		lo, hi := ga.rows(a.cls.BoundLevel[d][j])
		if hi <= lo {
			return false
		}
	}
	return true
}

// memoKey builds the subtree signature at depth d: the (lo,hi) range
// of every active atom. Identical signatures have identical subtree
// results regardless of the prefix that produced them.
func (a *gjAggWorker) memoKey(d int) []byte {
	a.keyRanges = a.keyRanges[:0]
	for j, ai := range a.cls.ActiveAtoms[d] {
		ga := a.w.atoms[ai]
		lo, hi := ga.rows(a.cls.BoundLevel[d][j])
		a.keyRanges = append(a.keyRanges, lo, hi)
	}
	return a.memo.Key(d, a.keyRanges)
}

// count returns the number of full result tuples below the current
// prefix at depth d.
func (a *gjAggWorker) count(d int) int64 {
	w := a.w
	w.stats.Recursions++
	if a.aborted {
		return 0
	}
	if w.stats.Recursions&255 == 0 {
		if a.stop != nil && a.stop.Load() {
			a.aborted = true
			return 0
		}
		if !a.budget.Spend(256) {
			a.aborted, a.budgetHit = true, true
			return 0
		}
	}
	n := len(w.plan.Order)
	if d == n {
		return 1
	}
	if d >= a.cls.CountFrom {
		w.stats.AggMultiplies++
		return a.product(d)
	}
	useMemo := a.cls.MemoDepths[d] && a.memo.Enabled()
	if useMemo {
		if v, ok := a.memo.Get(a.memoKey(d)); ok {
			w.stats.AggMemoHits++
			return v
		}
	}
	var total int64
	if d == n-1 {
		// Tail shortcut: each intersection value is one result, so only
		// the cardinality is computed — nothing is materialized.
		w.stats.AggMultiplies++
		c := trie.IntersectLevelsCount(a.levelRanges(d))
		w.stats.IntersectValues += c
		total = int64(c)
	} else {
		vals := a.intersect(d)
		a.w.arm(d)
		for _, v := range vals {
			if !a.narrow(d, v) {
				continue
			}
			total += a.count(d + 1)
			if total < 0 { // summation wrapped
				a.overflow = true
				total = 0
			}
		}
	}
	if useMemo && !a.overflow {
		// The memo's key scratch was clobbered by deeper probes;
		// rebuild it (the ranges at this depth are unchanged).
		a.memo.Put(a.memoKey(d), total)
	}
	return total
}

// exists reports whether any result tuple extends the current prefix,
// short-circuiting on the first witness.
func (a *gjAggWorker) exists(d int) bool {
	w := a.w
	if a.aborted || (a.stop != nil && a.stop.Load()) {
		return false
	}
	w.stats.Recursions++
	if w.stats.Recursions&255 == 0 && !a.budget.Spend(256) {
		// No error path here either: flag the exhaustion and unwind
		// with inconclusive falses; the entry points translate.
		a.aborted, a.budgetHit = true, true
		return false
	}
	n := len(w.plan.Order)
	if d == n {
		return true
	}
	if d >= a.cls.CountFrom {
		w.stats.AggMultiplies++
		return a.productNonEmpty(d)
	}
	useMemo := a.cls.MemoDepths[d] && a.memo.Enabled()
	if useMemo {
		if v, ok := a.memo.Get(a.memoKey(d)); ok {
			w.stats.AggMemoHits++
			return v != 0
		}
	}
	found := false
	if d == n-1 {
		w.stats.AggMultiplies++
		found = trie.IntersectLevelsAny(a.levelRanges(d))
		if found {
			w.stats.IntersectValues++
		}
	} else {
		vals := a.intersect(d)
		a.w.arm(d)
		for _, v := range vals {
			if a.stop != nil && a.stop.Load() {
				return false
			}
			if !a.narrow(d, v) {
				continue
			}
			if a.exists(d + 1) {
				found = true
				break
			}
		}
	}
	if useMemo && !a.aborted && (a.stop == nil || !a.stop.Load()) {
		a.memo.Put(a.memoKey(d), boolToInt64(found))
	}
	return found
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// visit enumerates the projected prefix, emitting one tuple per prefix
// that has at least one extension.
func (a *gjAggWorker) visit(d int) error {
	w := a.w
	if w.stats.Recursions&255 == 0 {
		if a.stop != nil && a.stop.Load() {
			return ErrAborted
		}
		if !a.budget.Spend(256) {
			return ErrNodeBudget
		}
	}
	if d == a.cls.EnumEnd {
		if a.exists(d) {
			for i, p := range a.projPos {
				a.projBuf[i] = w.binding[p]
			}
			return w.emit(a.projBuf)
		}
		return nil
	}
	w.stats.Recursions++
	vals := a.intersect(d)
	a.w.arm(d)
	for _, v := range vals {
		w.binding[w.plan.OutPos[d]] = v
		if !a.narrow(d, v) {
			continue
		}
		if err := a.visit(d + 1); err != nil {
			return err
		}
	}
	return nil
}

// countChunk, existsChunk and visitChunk run the depth-0 per-value
// loop over one shard of the precomputed top-level intersection.
func (a *gjAggWorker) countChunk(vals []relation.Value) int64 {
	a.w.arm(0)
	var total int64
	for _, v := range vals {
		if !a.narrow(0, v) {
			continue
		}
		total += a.count(1)
		if total < 0 { // summation wrapped
			a.overflow = true
			total = 0
		}
	}
	return total
}

func (a *gjAggWorker) existsChunk(vals []relation.Value) bool {
	a.w.arm(0)
	for _, v := range vals {
		if a.stop != nil && a.stop.Load() {
			return false
		}
		if !a.narrow(0, v) {
			continue
		}
		if a.exists(1) {
			return true
		}
	}
	return false
}

func (a *gjAggWorker) visitChunk(vals []relation.Value) error {
	w := a.w
	w.arm(0)
	for _, v := range vals {
		w.binding[w.plan.OutPos[0]] = v
		if !a.narrow(0, v) {
			continue
		}
		if err := a.visit(1); err != nil {
			return err
		}
	}
	return nil
}
