package entropy

import (
	"fmt"
	"math"
)

// FromTuples returns the entropy function H of the uniform distribution
// over the given tuples (each of width n). This is exactly the
// distribution used in the entropy argument of Sections 2 and 4.2: pick
// a tuple of the output Q(D) uniformly; then H[full] = log2 |Q(D)| and
// H[Y|X] ≤ log2 N_{Y|X} for every satisfied degree constraint.
// Duplicate tuples are an error (the argument needs a uniform
// distribution over a set).
func FromTuples(n int, tuples [][]int64) (*SetFunction, error) {
	if n < 0 || n > MaxN {
		return nil, fmt.Errorf("entropy: n = %d out of range", n)
	}
	f := NewSetFunction(n)
	if len(tuples) == 0 {
		return f, nil
	}
	seen := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		if len(t) != n {
			return nil, fmt.Errorf("entropy: tuple width %d, want %d", len(t), n)
		}
		k := key(t, f.Full())
		if seen[k] {
			return nil, fmt.Errorf("entropy: duplicate tuple %v", t)
		}
		seen[k] = true
	}
	total := float64(len(tuples))
	full := f.Full()
	for s := uint32(1); s <= full; s++ {
		counts := make(map[string]int)
		for _, t := range tuples {
			counts[key(t, s)]++
		}
		h := 0.0
		for _, c := range counts {
			p := float64(c) / total
			h -= p * math.Log2(p)
		}
		f.vals[s] = h
		if s == full {
			break
		}
	}
	return f, nil
}

// key serializes the projection of t onto mask s.
func key(t []int64, s uint32) string {
	b := make([]byte, 0, 8*len(t))
	for i, v := range t {
		if s&(1<<uint(i)) == 0 {
			continue
		}
		for k := 0; k < 8; k++ {
			b = append(b, byte(v>>(8*k)))
		}
	}
	return string(b)
}

// SupportBound returns log2 of the support size of the marginal on
// mask s — the right-hand side of inequality (31). For the uniform
// distribution built by FromTuples the support of the marginal on s is
// the number of distinct projections.
func SupportBound(n int, tuples [][]int64, s uint32) float64 {
	supp := make(map[string]bool)
	for _, t := range tuples {
		supp[key(t, s)] = true
	}
	if len(supp) == 0 {
		return 0
	}
	return math.Log2(float64(len(supp)))
}
