package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModularIsPolymatroid(t *testing.T) {
	f := Modular([]float64{1, 2, 3})
	if !f.IsModular(1e-12) || !f.IsPolymatroid(1e-12) || !f.IsSubadditive(1e-12) {
		t.Fatal("modular functions are polymatroids and subadditive")
	}
	if f.Get(0b111) != 6 || f.Get(0b101) != 4 {
		t.Fatalf("values wrong: %v", f.Values())
	}
	if f.Conditional(0b100, 0b001) != 3 {
		t.Fatalf("h(C|A) = %v, want 3", f.Conditional(0b100, 0b001))
	}
}

func TestRankFunctionIsPolymatroid(t *testing.T) {
	// The rank function of the uniform matroid U_{2,3}: h(S)=min(|S|,2).
	f := NewSetFunction(3)
	for s := uint32(1); s < 8; s++ {
		c := 0
		for i := 0; i < 3; i++ {
			if s&(1<<uint(i)) != 0 {
				c++
			}
		}
		if c > 2 {
			c = 2
		}
		f.Set(s, float64(c))
	}
	if !f.IsPolymatroid(1e-12) {
		t.Fatal("matroid rank is a polymatroid")
	}
	if f.IsModular(1e-12) {
		t.Fatal("U_{2,3} rank is not modular")
	}
}

func TestViolations(t *testing.T) {
	// Not monotone.
	f := NewSetFunction(2)
	f.Set(0b01, 2)
	f.Set(0b10, 1)
	f.Set(0b11, 1) // h(AB) < h(A)
	if f.IsMonotone(1e-12) {
		t.Fatal("should violate monotonicity")
	}
	// Not submodular: h strictly supermodular.
	g := NewSetFunction(2)
	g.Set(0b01, 1)
	g.Set(0b10, 1)
	g.Set(0b11, 3) // 3 + 0 > 1 + 1
	if g.IsSubmodular(1e-12) {
		t.Fatal("should violate submodularity")
	}
	if g.IsSubadditive(1e-12) {
		t.Fatal("should violate subadditivity")
	}
	// Non-zero at empty set.
	z := NewSetFunction(1)
	z.Set(0, 1)
	z.Set(1, 2)
	if z.IsZeroAtEmpty(1e-12) || z.IsPolymatroid(1e-12) {
		t.Fatal("h(∅) != 0 is not a polymatroid here")
	}
	neg := NewSetFunction(1)
	neg.Set(1, -1)
	if neg.IsNonNegative(1e-12) {
		t.Fatal("negative value must be detected")
	}
}

func TestFromValues(t *testing.T) {
	f, err := FromValues([]float64{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 2 || f.Get(0b11) != 2 {
		t.Fatalf("FromValues: n=%d", f.N())
	}
	if _, err := FromValues([]float64{0, 1, 2}); err == nil {
		t.Fatal("non-power-of-two length must fail")
	}
	c := f.Clone()
	c.Set(1, 9)
	if f.Get(1) == 9 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestMaskHelpers(t *testing.T) {
	uni := []string{"A", "B", "C"}
	m, err := MaskOf([]string{"A", "C"}, uni)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0b101 {
		t.Fatalf("mask = %b", m)
	}
	if _, err := MaskOf([]string{"Z"}, uni); err == nil {
		t.Fatal("unknown variable must fail")
	}
	vars := MaskVars(0b110, uni)
	if len(vars) != 2 || vars[0] != "B" || vars[1] != "C" {
		t.Fatalf("MaskVars = %v", vars)
	}
}

func TestElementalCount(t *testing.T) {
	// n=3: monotonicity 3·2^2=12, submodularity C(3,2)·2^1=6.
	es := Elemental(3)
	mono, sub := 0, 0
	for _, e := range es {
		switch e.Kind {
		case "monotone":
			mono++
		case "submodular":
			sub++
		}
	}
	if mono != 12 || sub != 6 {
		t.Fatalf("mono=%d sub=%d, want 12/6", mono, sub)
	}
}

func TestShearerTriangle(t *testing.T) {
	// Triangle: h(ABC) ≤ ½h(AB) + ½h(BC) + ½h(AC) is valid.
	edges := []uint32{0b011, 0b110, 0b101}
	ok, err := VerifyShearer(3, edges, []float64{0.5, 0.5, 0.5}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Shearer with (.5,.5,.5) must hold for the triangle")
	}
	// (.4,.5,.5) is not a fractional cover of vertex A... actually
	// A ∈ {AB, AC}: .4+.5 = .9 < 1 — invalid.
	ok, err = VerifyShearer(3, edges, []float64{0.4, 0.5, 0.5}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("sub-cover coefficients must fail")
	}
	if _, err := VerifyShearer(3, edges, []float64{1}, 1e-7); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestShearerEquivalenceWithCover(t *testing.T) {
	// Corollary 5.5 on the 4-cycle: h(full) ≤ Σ δ_F h(F) iff δ covers.
	edges := []uint32{0b0011, 0b0110, 0b1100, 0b1001}
	// δ = (.5,.5,.5,.5) covers C4.
	ok, err := VerifyShearer(4, edges, []float64{.5, .5, .5, .5}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("C4 half-weights are a cover; Shearer must hold")
	}
	// δ = (1,0,1,0) also covers (opposite edges).
	ok, err = VerifyShearer(4, edges, []float64{1, 0, 1, 0}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("opposite-edge weights cover C4")
	}
	// δ = (1,0,0,1) leaves vertex A2 uncovered... A2 ∈ edges {A1A2, A2A3}
	// = masks 0110, 1100 with weights 0,0 — not a cover.
	ok, err = VerifyShearer(4, edges, []float64{1, 0, 0, 1}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("non-cover must fail Shearer")
	}
}

func TestHoldsForAllPolymatroidsCertificate(t *testing.T) {
	// h(A) + h(B) − h(AB) ≥ 0 is subadditivity: valid.
	ok, _, err := HoldsForAllPolymatroids(2, LinearForm{0b01: 1, 0b10: 1, 0b11: -1}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("subadditivity is Shannon-type")
	}
	// h(A) − h(B) ≥ 0 is not valid.
	ok, min, err := HoldsForAllPolymatroids(2, LinearForm{0b01: 1, 0b10: -1}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if ok || min >= 0 {
		t.Fatalf("h(A) ≥ h(B) is invalid; min = %v", min)
	}
}

func TestFromTuplesUniform(t *testing.T) {
	// Four tuples over (A,B): independent uniform bits.
	tuples := [][]int64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	f, err := FromTuples(2, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Get(0b01)-1) > 1e-12 || math.Abs(f.Get(0b10)-1) > 1e-12 {
		t.Fatalf("marginals: %v", f.Values())
	}
	if math.Abs(f.Get(0b11)-2) > 1e-12 {
		t.Fatalf("joint: %v", f.Get(0b11))
	}
	if !f.IsPolymatroid(1e-9) {
		t.Fatal("entropy functions are polymatroids")
	}
}

func TestFromTuplesCorrelated(t *testing.T) {
	// A = B: h(A)=h(B)=h(AB)=1.
	f, err := FromTuples(2, [][]int64{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []uint32{0b01, 0b10, 0b11} {
		if math.Abs(f.Get(s)-1) > 1e-12 {
			t.Fatalf("h(%b) = %v, want 1", s, f.Get(s))
		}
	}
}

func TestFromTuplesErrors(t *testing.T) {
	if _, err := FromTuples(2, [][]int64{{1}}); err == nil {
		t.Fatal("wrong width must fail")
	}
	if _, err := FromTuples(1, [][]int64{{1}, {1}}); err == nil {
		t.Fatal("duplicates must fail")
	}
	f, err := FromTuples(2, nil)
	if err != nil || f.Get(0b11) != 0 {
		t.Fatal("empty tuple set is the zero function")
	}
}

func TestSupportBound(t *testing.T) {
	tuples := [][]int64{{0, 0}, {0, 1}, {1, 0}}
	// Support of A is {0,1}: bound = 1 bit.
	if got := SupportBound(2, tuples, 0b01); math.Abs(got-1) > 1e-12 {
		t.Fatalf("support bound = %v", got)
	}
	if got := SupportBound(2, nil, 0b01); got != 0 {
		t.Fatalf("empty support bound = %v", got)
	}
	// Entropy ≤ support bound (inequality (31)).
	f, _ := FromTuples(2, tuples)
	if f.Get(0b01) > SupportBound(2, tuples, 0b01)+1e-12 {
		t.Fatal("H[A] must be ≤ log2 |supp(A)|")
	}
}

// Property: empirical entropy functions are always polymatroids and
// satisfy H[full] = log2(#tuples).
func TestPropertyEmpiricalEntropyPolymatroid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		seen := make(map[[3]int64]bool)
		var tuples [][]int64
		for i := 0; i < 1+rng.Intn(20); i++ {
			var k [3]int64
			t := make([]int64, n)
			for j := range t {
				t[j] = int64(rng.Intn(4))
				k[j] = t[j]
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			tuples = append(tuples, t)
		}
		h, err := FromTuples(n, tuples)
		if err != nil {
			return false
		}
		if !h.IsPolymatroid(1e-9) {
			return false
		}
		want := math.Log2(float64(len(tuples)))
		return math.Abs(h.Get(h.Full())-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Shearer verification agrees with the fractional-cover
// criterion on random small hypergraphs (Corollary 5.5).
func TestPropertyShearerIffCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2) // 2..3 keeps the LP fast
		m := 1 + rng.Intn(3)
		full := uint32(1)<<uint(n) - 1
		edges := make([]uint32, m)
		for i := range edges {
			edges[i] = uint32(1+rng.Intn(int(full))) & full
			if edges[i] == 0 {
				edges[i] = 1
			}
		}
		delta := make([]float64, m)
		for i := range delta {
			delta[i] = float64(rng.Intn(5)) / 4.0
		}
		// Cover criterion.
		isCover := true
		for v := 0; v < n; v++ {
			sum := 0.0
			for i, e := range edges {
				if e&(1<<uint(v)) != 0 {
					sum += delta[i]
				}
			}
			if sum < 1-1e-9 {
				isCover = false
				break
			}
		}
		ok, err := VerifyShearer(n, edges, delta, 1e-6)
		if err != nil {
			return false
		}
		return ok == isCover
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
