// Package entropy implements the information-theoretic machinery of
// Sections 3.2 and 4: set functions over the subset lattice 2^[n],
// membership tests for the cones M_n (modular), Γ_n (polymatroids) and
// SA_n (subadditive), elemental Shannon inequalities, Shannon-type
// inequality verification by LP, Shearer's lemma, and empirical
// entropy of concrete distributions.
//
// Subsets of [n] are represented as bitmasks (uint32); a set function
// is a dense vector of 2^n values indexed by mask. n is capped at 20,
// far beyond the sizes any of the bound LPs need.
package entropy

import (
	"fmt"
	"math"
	"math/bits"

	"wcoj/internal/lp"
)

// MaxN is the largest supported universe size.
const MaxN = 20

// SetFunction is a function h : 2^[n] -> R stored densely by subset
// bitmask. By convention h(∅) = 0 for the functions this repository
// manipulates, but the representation does not force it (tests for the
// cone-membership predicates exercise violations).
type SetFunction struct {
	n    int
	vals []float64
}

// NewSetFunction returns the all-zero set function on [n].
func NewSetFunction(n int) *SetFunction {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("entropy: n = %d out of range [0,%d]", n, MaxN))
	}
	return &SetFunction{n: n, vals: make([]float64, 1<<uint(n))}
}

// FromValues wraps a dense value vector (length must be a power of two).
func FromValues(vals []float64) (*SetFunction, error) {
	n := bits.TrailingZeros(uint(len(vals)))
	if len(vals) == 0 || 1<<uint(n) != len(vals) || n > MaxN {
		return nil, fmt.Errorf("entropy: value vector length %d is not a power of two ≤ 2^%d", len(vals), MaxN)
	}
	v := make([]float64, len(vals))
	copy(v, vals)
	return &SetFunction{n: n, vals: v}, nil
}

// N returns the universe size.
func (f *SetFunction) N() int { return f.n }

// Full returns the mask of the full set [n].
func (f *SetFunction) Full() uint32 { return uint32(1)<<uint(f.n) - 1 }

// Get returns h(S) for the subset mask S.
func (f *SetFunction) Get(s uint32) float64 { return f.vals[s] }

// Set assigns h(S) = v.
func (f *SetFunction) Set(s uint32, v float64) { f.vals[s] = v }

// Conditional returns h(Y|X) = h(Y∪X) − h(X), the chain rule (29).
func (f *SetFunction) Conditional(y, x uint32) float64 {
	return f.vals[y|x] - f.vals[x]
}

// Values returns the underlying dense vector (not a copy).
func (f *SetFunction) Values() []float64 { return f.vals }

// Clone returns a deep copy.
func (f *SetFunction) Clone() *SetFunction {
	g := NewSetFunction(f.n)
	copy(g.vals, f.vals)
	return g
}

// Modular returns the modular function f(S) = Σ_{i∈S} w_i (the cone
// M_n of Definition 2).
func Modular(w []float64) *SetFunction {
	f := NewSetFunction(len(w))
	for s := uint32(1); s <= f.Full(); s++ {
		var sum float64
		for i := 0; i < f.n; i++ {
			if s&(1<<uint(i)) != 0 {
				sum += w[i]
			}
		}
		f.vals[s] = sum
	}
	return f
}

// IsZeroAtEmpty reports h(∅) ≈ 0.
func (f *SetFunction) IsZeroAtEmpty(tol float64) bool {
	return math.Abs(f.vals[0]) <= tol
}

// IsNonNegative reports h ≥ −tol pointwise.
func (f *SetFunction) IsNonNegative(tol float64) bool {
	for _, v := range f.vals {
		if v < -tol {
			return false
		}
	}
	return true
}

// IsMonotone reports h(X) ≤ h(Y) + tol whenever X ⊆ Y (property (32)).
// Checked in elemental form: h(S) ≤ h(S∪{i}).
func (f *SetFunction) IsMonotone(tol float64) bool {
	full := f.Full()
	for s := uint32(0); s <= full; s++ {
		for i := 0; i < f.n; i++ {
			b := uint32(1) << uint(i)
			if s&b != 0 {
				continue
			}
			if f.vals[s] > f.vals[s|b]+tol {
				return false
			}
		}
		if s == full {
			break
		}
	}
	return true
}

// IsSubmodular reports h(X∪Y) + h(X∩Y) ≤ h(X) + h(Y) + tol for all
// X, Y (property (33)). Checked in elemental form:
// h(S∪{i}) + h(S∪{j}) ≥ h(S∪{i,j}) + h(S).
func (f *SetFunction) IsSubmodular(tol float64) bool {
	full := f.Full()
	for s := uint32(0); s <= full; s++ {
		for i := 0; i < f.n; i++ {
			bi := uint32(1) << uint(i)
			if s&bi != 0 {
				continue
			}
			for j := i + 1; j < f.n; j++ {
				bj := uint32(1) << uint(j)
				if s&bj != 0 {
					continue
				}
				if f.vals[s|bi]+f.vals[s|bj] < f.vals[s|bi|bj]+f.vals[s]-tol {
					return false
				}
			}
		}
		if s == full {
			break
		}
	}
	return true
}

// IsSubadditive reports h(X∪Y) ≤ h(X) + h(Y) + tol for disjoint X, Y
// (the cone SA_n).
func (f *SetFunction) IsSubadditive(tol float64) bool {
	full := f.Full()
	for x := uint32(1); x <= full; x++ {
		rest := full &^ x
		for y := rest; y > 0; y = (y - 1) & rest {
			if f.vals[x|y] > f.vals[x]+f.vals[y]+tol {
				return false
			}
		}
		if x == full {
			break
		}
	}
	return true
}

// IsModular reports f(S) = Σ_{i∈S} f({i}) within tol.
func (f *SetFunction) IsModular(tol float64) bool {
	full := f.Full()
	for s := uint32(0); s <= full; s++ {
		var sum float64
		for i := 0; i < f.n; i++ {
			if s&(1<<uint(i)) != 0 {
				sum += f.vals[1<<uint(i)]
			}
		}
		if math.Abs(f.vals[s]-sum) > tol {
			return false
		}
		if s == full {
			break
		}
	}
	return true
}

// IsPolymatroid reports membership in Γ_n: h(∅)=0, monotone,
// submodular (Definition 2; non-negativity follows from h(∅)=0 and
// monotonicity).
func (f *SetFunction) IsPolymatroid(tol float64) bool {
	return f.IsZeroAtEmpty(tol) && f.IsMonotone(tol) && f.IsSubmodular(tol)
}

// MaskOf converts a variable-name set to a bitmask given the universe
// ordering. Unknown names yield an error.
func MaskOf(vars []string, universe []string) (uint32, error) {
	var m uint32
	for _, v := range vars {
		found := false
		for i, u := range universe {
			if u == v {
				m |= 1 << uint(i)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("entropy: variable %q not in universe %v", v, universe)
		}
	}
	return m, nil
}

// MaskVars converts a bitmask back to variable names.
func MaskVars(m uint32, universe []string) []string {
	var out []string
	for i, u := range universe {
		if m&(1<<uint(i)) != 0 {
			out = append(out, u)
		}
	}
	return out
}

// ElementalInequality is one elemental Shannon inequality expressed as
// Σ Coef[S]·h(S) ≥ 0 over subset masks.
type ElementalInequality struct {
	// Terms maps subset mask -> coefficient.
	Terms map[uint32]float64
	Kind  string // "monotone" or "submodular"
}

// Elemental returns the elemental Shannon inequalities on [n]:
// monotonicity h(S∪{i}) − h(S) ≥ 0 and submodularity
// h(S∪{i}) + h(S∪{j}) − h(S∪{i,j}) − h(S) ≥ 0. Together with h(∅)=0
// they generate all Shannon-type inequalities (the cone Γ_n).
func Elemental(n int) []ElementalInequality {
	var out []ElementalInequality
	full := uint32(1)<<uint(n) - 1
	for s := uint32(0); ; s++ {
		for i := 0; i < n; i++ {
			bi := uint32(1) << uint(i)
			if s&bi != 0 {
				continue
			}
			out = append(out, ElementalInequality{
				Terms: map[uint32]float64{s | bi: 1, s: -1},
				Kind:  "monotone",
			})
			for j := i + 1; j < n; j++ {
				bj := uint32(1) << uint(j)
				if s&bj != 0 {
					continue
				}
				out = append(out, ElementalInequality{
					Terms: map[uint32]float64{s | bi: 1, s | bj: 1, s | bi | bj: -1, s: -1},
					Kind:  "submodular",
				})
			}
		}
		if s == full {
			break
		}
	}
	return out
}

// LinearForm is a linear expression Σ Coef[S]·h(S) over subset masks.
type LinearForm map[uint32]float64

// HoldsForAllPolymatroids reports whether the inequality form ≥ 0 holds
// for every polymatroid on [n], decided by LP: minimize the form over
// Γ_n normalized by h(full) ≤ 1 (the cone makes the unnormalized
// problem scale-invariant). It returns the LP certificate value (the
// minimum; ≥ −tol means the inequality is valid).
func HoldsForAllPolymatroids(n int, form LinearForm, tol float64) (bool, float64, error) {
	// Variables: h(S) for S = 1..2^n-1 (h(∅) fixed to 0 by omission).
	numVars := 1<<uint(n) - 1
	varOf := func(s uint32) int { return int(s) - 1 }
	p := lp.NewProblem(lp.Minimize, numVars)
	for s, c := range form {
		if s == 0 {
			continue
		}
		p.SetObjective(varOf(s), c)
	}
	for _, e := range Elemental(n) {
		coef := make([]float64, numVars)
		for s, c := range e.Terms {
			if s == 0 {
				continue
			}
			coef[varOf(s)] += c
		}
		p.AddConstraint(coef, lp.GE, 0)
	}
	// Normalization: h(S) ≤ 1 for the full set bounds everything by
	// monotonicity.
	full := uint32(1)<<uint(n) - 1
	norm := make([]float64, numVars)
	norm[varOf(full)] = 1
	p.AddConstraint(norm, lp.LE, 1)
	s, err := lp.Solve(p)
	if err != nil {
		return false, 0, err
	}
	if s.Status != lp.Optimal {
		return false, 0, fmt.Errorf("entropy: inequality LP is %v", s.Status)
	}
	return s.Objective >= -tol, s.Objective, nil
}

// VerifyShearer checks Shearer's inequality h([n]) ≤ Σ_F δ_F·h(F) over
// all polymatroids for the given edge masks and coefficients
// (Corollary 5.5: valid iff δ is a fractional edge cover).
func VerifyShearer(n int, edges []uint32, delta []float64, tol float64) (bool, error) {
	if len(edges) != len(delta) {
		return false, fmt.Errorf("entropy: %d edges but %d coefficients", len(edges), len(delta))
	}
	form := LinearForm{}
	full := uint32(1)<<uint(n) - 1
	form[full] -= 1
	for i, e := range edges {
		form[e] += delta[i]
	}
	ok, _, err := HoldsForAllPolymatroids(n, form, tol)
	return ok, err
}
