package delta

import (
	"math/rand"
	"testing"

	"wcoj/internal/relation"
)

func rel(t *testing.T, rows ...[]relation.Value) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("E", "x", "y")
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestApplySetSemantics(t *testing.T) {
	v := New(rel(t, []relation.Value{1, 2}, []relation.Value{3, 4}))
	if v.Epoch != 0 || v.Len() != 2 || v.DeltaLen() != 0 {
		t.Fatalf("fresh version: epoch %d len %d delta %d", v.Epoch, v.Len(), v.DeltaLen())
	}

	// Insert one new, one duplicate; delete one present, one absent.
	v2, st, err := v.Apply([]Op{
		{T: relation.Tuple{5, 6}},            // new
		{T: relation.Tuple{1, 2}},            // duplicate -> no-op
		{Del: true, T: relation.Tuple{3, 4}}, // present
		{Del: true, T: relation.Tuple{9, 9}}, // absent -> no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted != 1 || st.InsertNoops != 1 || st.Deleted != 1 || st.DeleteNoops != 1 {
		t.Fatalf("stats %+v", st)
	}
	if v2.Epoch != 1 || v2.Len() != 2 || v2.DeltaLen() != 2 {
		t.Fatalf("after batch: epoch %d len %d delta %d", v2.Epoch, v2.Len(), v2.DeltaLen())
	}
	// The receiver is untouched (copy-on-write).
	if v.Len() != 2 || v.DeltaLen() != 0 || v.Epoch != 0 {
		t.Fatal("Apply mutated its receiver")
	}
	want := rel(t, []relation.Value{1, 2}, []relation.Value{5, 6})
	if !v2.Effective().Equal(want) {
		t.Fatalf("effective %v, want %v", v2.Effective().Tuples(), want.Tuples())
	}
}

func TestApplyRoundTrip(t *testing.T) {
	// insert -> delete -> insert of the same tuple lands back at
	// "present", with the delta recording only the net effect.
	v := New(rel(t, []relation.Value{1, 1}))
	tu := relation.Tuple{7, 7}
	v2, _, _ := v.Apply([]Op{{T: tu}})
	v3, _, _ := v2.Apply([]Op{{Del: true, T: tu}})
	if v3.DeltaLen() != 0 {
		t.Fatalf("insert+delete of a new tuple should cancel, delta %d", v3.DeltaLen())
	}
	v4, _, _ := v3.Apply([]Op{{T: tu}})
	if !v4.Effective().Contains(tu) || v4.Len() != 2 {
		t.Fatal("round-trip lost the tuple")
	}
	// delete -> insert of a base tuple resurrects it via the tombstone.
	base := relation.Tuple{1, 1}
	v5, _, _ := v4.Apply([]Op{{Del: true, T: base}})
	if v5.Effective().Contains(base) {
		t.Fatal("delete did not take")
	}
	v6, st, _ := v5.Apply([]Op{{T: base}})
	if st.Inserted != 1 || !v6.Effective().Contains(base) {
		t.Fatal("re-insert did not resurrect the base tuple")
	}
	if v6.DeltaLen() != v4.DeltaLen() {
		t.Fatalf("delete+insert must cancel in the delta: %d vs %d", v6.DeltaLen(), v4.DeltaLen())
	}
}

func TestApplyWithinBatchOrdering(t *testing.T) {
	v := New(rel(t, []relation.Value{1, 1}))
	tu := relation.Tuple{2, 2}
	// Ops apply in order within one batch: insert then delete = absent.
	v2, st, err := v.Apply([]Op{{T: tu}, {Del: true, T: tu}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted != 1 || st.Deleted != 1 {
		t.Fatalf("stats %+v", st)
	}
	if v2.Effective().Contains(tu) {
		t.Fatal("insert-then-delete should leave the tuple absent")
	}
	// delete then insert of a base tuple = present.
	base := relation.Tuple{1, 1}
	v3, _, err := v.Apply([]Op{{Del: true, T: base}, {T: base}})
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Effective().Contains(base) {
		t.Fatal("delete-then-insert should leave the base tuple present")
	}
}

func TestApplyNoChangeReturnsReceiver(t *testing.T) {
	v := New(rel(t, []relation.Value{1, 2}))
	v2, st, err := v.Apply([]Op{
		{T: relation.Tuple{1, 2}},
		{Del: true, T: relation.Tuple{8, 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed() || v2 != v {
		t.Fatalf("pure-noop batch must return the receiver (stats %+v)", st)
	}
}

func TestApplyArityError(t *testing.T) {
	v := New(rel(t))
	if _, _, err := v.Apply([]Op{{T: relation.Tuple{1}}}); err == nil {
		t.Fatal("want arity error")
	}
}

func TestCompaction(t *testing.T) {
	v := New(rel(t, []relation.Value{1, 1}, []relation.Value{2, 2}, []relation.Value{3, 3}))
	v2, _, _ := v.Apply([]Op{{T: relation.Tuple{4, 4}}, {Del: true, T: relation.Tuple{1, 1}}})
	if !v2.NeedsCompaction(0.5, 1) {
		t.Fatal("delta 2 over base 3 should cross a 0.5 ratio")
	}
	if v2.NeedsCompaction(0.5, 100) {
		t.Fatal("minBase should suppress compaction of small relations")
	}
	if v.NeedsCompaction(0.0, 0) {
		t.Fatal("empty delta never needs compaction")
	}
	c := v2.Compacted()
	if c.Epoch != v2.Epoch || c.DeltaLen() != 0 {
		t.Fatalf("compacted: epoch %d delta %d", c.Epoch, c.DeltaLen())
	}
	if c.Base != v2.Effective() {
		t.Fatal("compacted base must be pointer-identical to the effective view")
	}
	if !c.Effective().Equal(v2.Effective()) {
		t.Fatal("compaction changed the tuple set")
	}
}

func TestEffectiveEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := New(rel(t))
	present := map[[2]relation.Value]bool{}
	for step := 0; step < 40; step++ {
		var ops []Op
		for i := 0; i < 1+rng.Intn(10); i++ {
			tu := relation.Tuple{relation.Value(rng.Intn(12)), relation.Value(rng.Intn(12))}
			del := rng.Intn(2) == 0
			ops = append(ops, Op{Del: del, T: tu})
			if del {
				delete(present, [2]relation.Value{tu[0], tu[1]})
			} else {
				present[[2]relation.Value{tu[0], tu[1]}] = true
			}
		}
		next, _, err := v.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		v = next
		var rows [][]relation.Value
		for k := range present {
			rows = append(rows, []relation.Value{k[0], k[1]})
		}
		want := rel(t, rows...)
		if !v.Effective().Equal(want) {
			t.Fatalf("step %d: effective diverged from model (%d vs %d tuples)", step, v.Effective().Len(), want.Len())
		}
		if v.Len() != want.Len() {
			t.Fatalf("step %d: Len %d != %d", step, v.Len(), want.Len())
		}
		if rng.Intn(6) == 0 {
			v = v.Compacted()
		}
	}
}
