// Package delta implements the mutable-relation substrate of the
// long-lived engine: per-relation delta logs over an immutable base,
// epoch-versioned snapshots, and size-ratio-driven compaction.
//
// A Version is one immutable snapshot of a named relation's head:
// the large sorted base, a small sorted set of inserted tuples (Add)
// and a small sorted set of tombstones (Del), with the invariants
//
//	Del ⊆ Base   and   Add ∩ Base = ∅   (as tuple sets),
//
// so the effective tuple set is (Base ∖ Del) ⊎ Add and its cardinality
// is |Base| − |Del| + |Add| without materializing anything. Apply
// produces a *new* Version (copy-on-write: the base columns are
// shared, only the delta relations are rebuilt), which is what lets a
// writer advance the head while in-flight readers keep a consistent
// earlier snapshot — the MVCC shape wcoj.DB builds its snapshot
// isolation on. Effective materializes the merged view lazily, once
// per version, by the linear level merge of relation.MergeDelta;
// Compacted promotes that merged view to the new base, emptying the
// delta, which the trie layer observes as "the cached merged tries
// became the base tries" (their backing relation is pointer-identical).
//
// Besides the cumulative delta log (Add/Del relative to Base), each
// version produced by Apply carries the per-batch Δ view of the step
// that created it: LastBatch records, as a BatchDelta tagged with the
// successor's epoch, exactly which tuples the batch effectively
// inserted (Ins) and deleted (Del) relative to the predecessor's
// effective set. No-ops never appear in it, and a tuple resurrected
// from a tombstone (or retracted from the Add log) is reported as the
// plain insert (or delete) it effectively is. These Δ views are what
// incremental view maintenance evaluates differentials against: a
// maintained query folds the signed contribution of (Ins, Del) into
// its standing result instead of recomputing from the merged view.
package delta

import (
	"encoding/binary"
	"fmt"
	"sync"

	"wcoj/internal/relation"
)

// Version is one immutable snapshot of a mutable relation. Fields are
// read-only after construction; Effective is lazily materialized and
// safe for concurrent use.
type Version struct {
	// Epoch counts applied batches on this relation (0 for a freshly
	// registered base).
	Epoch uint64
	// Base is the compacted storage; Add and Del are the delta log
	// (sorted, deduplicated, schema-identical to Base).
	Base, Add, Del *relation.Relation

	// LastBatch is the per-batch Δ view of the Apply step that produced
	// this version: the tuples that step effectively inserted and
	// deleted relative to the predecessor's effective set. It is nil on
	// epoch-0 versions and on Compacted copies (compaction changes the
	// representation, not the tuple set — there is no batch to report).
	LastBatch *BatchDelta

	effOnce sync.Once
	eff     *relation.Relation
}

// BatchDelta is the effective change one applied batch made to one
// relation: Ins and Del are disjoint sorted relations (schema-identical
// to the version's base) holding the tuples the batch net-inserted and
// net-deleted, with batch-internal churn (insert-then-delete of the
// same tuple) and no-ops already cancelled out. Epoch tags the version
// the batch produced, so a consumer can check it processes consecutive
// deltas with no gap. Incremental view maintenance evaluates query
// differentials against these views: one atom occurrence is bound to
// Ins (contributing positively) and to Del (negatively) while the other
// occurrences read full snapshots.
type BatchDelta struct {
	Epoch    uint64
	Ins, Del *relation.Relation
}

// New returns the epoch-0 version of a freshly registered relation:
// the relation is the base and the delta is empty.
func New(base *relation.Relation) *Version {
	return &Version{
		Epoch: 0,
		Base:  base,
		Add:   relation.Empty(base.Name(), base.Attrs()...),
		Del:   relation.Empty(base.Name(), base.Attrs()...),
	}
}

// Len returns the effective cardinality |Base| − |Del| + |Add|,
// exact under the package invariants, without materializing.
func (v *Version) Len() int { return v.Base.Len() - v.Del.Len() + v.Add.Len() }

// DeltaLen returns the delta depth |Add| + |Del| — the number of
// logged changes a reader must merge over the base.
func (v *Version) DeltaLen() int { return v.Add.Len() + v.Del.Len() }

// Effective materializes the merged view (Base ∖ Del) ⊎ Add, once per
// version (concurrent callers share the result). With an empty delta
// it is Base itself.
func (v *Version) Effective() *relation.Relation {
	if v.DeltaLen() == 0 {
		return v.Base
	}
	v.effOnce.Do(func() {
		eff, err := relation.MergeDelta(v.Base, v.Add, v.Del)
		if err != nil {
			// Unreachable: Apply only ever builds schema-identical deltas.
			panic(fmt.Sprintf("delta: effective merge: %v", err))
		}
		v.eff = eff
	})
	return v.eff
}

// NeedsCompaction reports whether the delta depth has crossed ratio ×
// max(|Base|, minBase) — the size-ratio threshold at which merging the
// delta on every fresh read costs more than folding it into the base
// once.
func (v *Version) NeedsCompaction(ratio float64, minBase int) bool {
	if v.DeltaLen() == 0 {
		return false
	}
	base := v.Base.Len()
	if base < minBase {
		base = minBase
	}
	return float64(v.DeltaLen()) >= ratio*float64(base)
}

// Compacted returns the version with the delta folded into the base:
// same epoch (the tuple set is unchanged — readers at this epoch need
// not refresh), Base = Effective(), empty delta. The promoted base is
// pointer-identical to Effective(), so tries cached against the merged
// view keep serving as the new base tries.
func (v *Version) Compacted() *Version {
	eff := v.Effective()
	return &Version{
		Epoch: v.Epoch,
		Base:  eff,
		Add:   relation.Empty(eff.Name(), eff.Attrs()...),
		Del:   relation.Empty(eff.Name(), eff.Attrs()...),
	}
}

// Op is one update operation of a batch.
type Op struct {
	// Del selects delete (true) or insert (false).
	Del bool
	// T is the tuple; its arity must match the relation's. Apply takes
	// ownership: T must not be mutated afterwards (wcoj.Batch clones
	// caller tuples at the public boundary, so the churn machinery can
	// retain T without another copy).
	T relation.Tuple
}

// Stats counts what one Apply did. No-ops are updates with no effect —
// inserting a tuple already present, deleting one that is absent —
// which must be counted, not silently folded into the delta (a delta
// that logs them would corrupt Len and the compaction trigger).
type Stats struct {
	Inserted, Deleted        int
	InsertNoops, DeleteNoops int
}

// Changed reports whether the batch had any effect.
func (s Stats) Changed() bool { return s.Inserted > 0 || s.Deleted > 0 }

// churn is the net effect of one batch on one side of the delta log:
// plus holds tuples to merge in, minus holds tuples to cancel out.
// Both are batch-sized — the existing log is never copied, so a
// stream of small batches costs O(batch + delta) per batch (one
// linear churn merge), not O(delta log delta) re-sorts.
type churn struct {
	plus, minus map[string]relation.Tuple
}

func newChurn() *churn {
	return &churn{plus: map[string]relation.Tuple{}, minus: map[string]relation.Tuple{}}
}

// member reports whether k/t is in (log ∖ minus) ∪ plus.
func (c *churn) member(k string, t relation.Tuple, log *relation.Relation) bool {
	if c.plus[k] != nil {
		return true
	}
	if c.minus[k] != nil {
		return false
	}
	return log.Contains(t)
}

// include adds k/t to the side; a pending removal cancels instead (the
// tuple is already in the log).
//
//wcojlint:retains batch ops are cloned at Batch.Add; the churn takes ownership of t
func (c *churn) include(k string, t relation.Tuple) {
	if c.minus[k] != nil {
		delete(c.minus, k)
		return
	}
	c.plus[k] = t
}

// exclude removes k/t from the side; a pending addition cancels
// instead (the tuple never reached the log).
//
//wcojlint:retains batch ops are cloned at Batch.Add; the churn takes ownership of t
func (c *churn) exclude(k string, t relation.Tuple) {
	if c.plus[k] != nil {
		delete(c.plus, k)
		return
	}
	c.minus[k] = t
}

// apply folds the churn into the log by one linear merge (plus is
// disjoint from the log and minus ⊆ log by construction, the exact
// preconditions of relation.MergeDelta). Untouched sides are returned
// as-is, sharing storage with the receiver version.
func (c *churn) apply(log *relation.Relation) *relation.Relation {
	if len(c.plus) == 0 && len(c.minus) == 0 {
		return log
	}
	build := func(m map[string]relation.Tuple) *relation.Relation {
		b := relation.NewBuilder(log.Name(), log.Attrs()...)
		for _, t := range m {
			if err := b.Add(t...); err != nil {
				panic(err) // unreachable: arity checked by Apply
			}
		}
		return b.Build()
	}
	out, err := relation.MergeDelta(log, build(c.plus), build(c.minus))
	if err != nil {
		panic(fmt.Sprintf("delta: churn merge: %v", err)) // unreachable: schemas identical
	}
	return out
}

// Apply folds one batch of operations into the version, returning the
// successor snapshot (epoch advanced by one). Operations are applied
// in order, with set semantics against the effective tuple set as it
// evolves through the batch: inserting a present tuple and deleting an
// absent one are counted no-ops. The receiver is not modified
// (copy-on-write: base and any untouched delta side are shared; a
// touched side is rebuilt by one linear merge with the batch-sized
// churn). When the batch changes nothing, the receiver itself is
// returned (same epoch), so callers can skip publishing an identical
// snapshot.
func (v *Version) Apply(ops []Op) (*Version, Stats, error) {
	var st Stats
	arity := v.Base.Arity()
	for _, op := range ops {
		if len(op.T) != arity {
			return nil, st, fmt.Errorf("delta: %s: tuple arity %d, want %d", v.Base.Name(), len(op.T), arity)
		}
	}
	add, del := newChurn(), newChurn()
	for _, op := range ops {
		k := tupleKey(op.T)
		if op.Del {
			switch {
			case add.member(k, op.T, v.Add): // inserted earlier: retract
				add.exclude(k, op.T)
				st.Deleted++
			case v.Base.Contains(op.T) && !del.member(k, op.T, v.Del):
				del.include(k, op.T) // present in base, not yet tombstoned
				st.Deleted++
			default: // absent (never present, or already deleted)
				st.DeleteNoops++
			}
		} else {
			switch {
			case del.member(k, op.T, v.Del): // deleted earlier: resurrect
				del.exclude(k, op.T)
				st.Inserted++
			case v.Base.Contains(op.T) || add.member(k, op.T, v.Add):
				st.InsertNoops++ // already present
			default:
				add.include(k, op.T)
				st.Inserted++
			}
		}
	}
	if !st.Changed() {
		return v, st, nil
	}
	next := &Version{
		Epoch: v.Epoch + 1,
		Base:  v.Base,
		Add:   add.apply(v.Add),
		Del:   del.apply(v.Del),
	}
	// The effective inserts are the tuples newly logged as adds plus the
	// tombstones the batch cancelled (resurrections); the effective
	// deletes are the new tombstones plus the logged adds the batch
	// retracted. The four churn sides are pairwise disjoint, so the two
	// unions are disjoint relations.
	next.LastBatch = &BatchDelta{
		Epoch: next.Epoch,
		Ins:   buildUnion(v.Base, add.plus, del.minus),
		Del:   buildUnion(v.Base, del.plus, add.minus),
	}
	return next, st, nil
}

// buildUnion builds a sorted relation (schema-identical to base) from
// the union of two disjoint churn sides.
func buildUnion(base *relation.Relation, a, b map[string]relation.Tuple) *relation.Relation {
	bl := relation.NewBuilder(base.Name(), base.Attrs()...)
	for _, t := range a {
		if err := bl.Add(t...); err != nil {
			panic(err) // unreachable: arity checked by Apply
		}
	}
	for _, t := range b {
		if err := bl.Add(t...); err != nil {
			panic(err) // unreachable: arity checked by Apply
		}
	}
	return bl.Build()
}

// tupleKey is an injective byte encoding of a tuple, for the working
// sets of Apply.
func tupleKey(t relation.Tuple) string {
	buf := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return string(buf)
}
