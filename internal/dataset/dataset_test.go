package dataset

import (
	"math"
	"testing"

	"wcoj/internal/core"
)

func TestRandomGraph(t *testing.T) {
	g := RandomGraph(50, 200, 1)
	if g.Len() == 0 || g.Arity() != 2 {
		t.Fatalf("graph: %v", g)
	}
	// No self loops.
	for i := 0; i < g.Len(); i++ {
		if g.Col(0)[i] == g.Col(1)[i] {
			t.Fatal("self loop found")
		}
	}
	// Determinism.
	g2 := RandomGraph(50, 200, 1)
	if !g.Equal(g2) {
		t.Fatal("same seed must give same graph")
	}
	if g.Equal(RandomGraph(50, 200, 2)) {
		t.Fatal("different seeds should differ")
	}
}

// TestRandomGraphEdgeCount: rejected draws (self-loops, duplicates)
// are resampled, so the generator delivers exactly the m edges the
// caller asked for — the old code silently returned fewer.
func TestRandomGraphEdgeCount(t *testing.T) {
	for _, c := range []struct{ n, m int }{
		{50, 200}, {100, 500}, {10, 90}, // m = n(n-1): the complete digraph
		{2, 2},
	} {
		g := RandomGraph(c.n, c.m, 7)
		if g.Len() != c.m {
			t.Errorf("RandomGraph(%d, %d): %d edges, want %d", c.n, c.m, g.Len(), c.m)
		}
	}
	// m beyond the n(n-1) maximum clamps instead of spinning.
	if g := RandomGraph(5, 1000, 7); g.Len() != 20 {
		t.Errorf("over-requested graph: %d edges, want the full 20", g.Len())
	}
	// Degenerate vertex counts yield empty graphs, not panics or loops.
	for _, n := range []int{0, 1, -3} {
		if g := RandomGraph(n, 10, 7); g.Len() != 0 {
			t.Errorf("RandomGraph(%d, 10): %d edges, want 0", n, g.Len())
		}
	}
}

// TestPowerLawGraphEdgeCount: same contract for the skewed generator,
// plus the degenerate-n guard (the old code handed rand.NewZipf an
// imax of uint64(n-1), which underflows for n = 0).
func TestPowerLawGraphEdgeCount(t *testing.T) {
	for _, c := range []struct {
		n, m int
		s    float64
	}{
		{100, 500, 1.5}, {200, 1000, 1.1}, {50, 300, 2.0},
	} {
		g := PowerLawGraph(c.n, c.m, c.s, 11)
		if g.Len() != c.m {
			t.Errorf("PowerLawGraph(%d, %d, %g): %d edges, want %d", c.n, c.m, c.s, g.Len(), c.m)
		}
	}
	for _, n := range []int{0, 1, -3} {
		if g := PowerLawGraph(n, 10, 1.5, 11); g.Len() != 0 {
			t.Errorf("PowerLawGraph(%d, 10): %d edges, want 0", n, g.Len())
		}
	}
}

func TestPowerLawGraph(t *testing.T) {
	g := PowerLawGraph(100, 500, 1.5, 3)
	if g.Len() == 0 {
		t.Fatal("empty power-law graph")
	}
	// Skew: some source should have much higher degree than the median.
	counts := make(map[int64]int)
	for i := 0; i < g.Len(); i++ {
		counts[int64(g.Col(0)[i])]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3 {
		t.Fatalf("expected a heavy hitter, max degree = %d", max)
	}
}

func TestTriangleAGMTight(t *testing.T) {
	tri := TriangleAGMTight(100)
	k := 10
	if tri.R.Len() != k*k || tri.S.Len() != k*k || tri.T.Len() != k*k {
		t.Fatalf("sizes %d/%d/%d, want %d", tri.R.Len(), tri.S.Len(), tri.T.Len(), k*k)
	}
	// Output size must be exactly k^3 = AGM bound (N^{3/2}).
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != k*k*k {
		t.Fatalf("output = %d, want %d (AGM tight)", n, k*k*k)
	}
}

func TestTriangleSkew(t *testing.T) {
	tri := TriangleSkew(100)
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise join R ⋈ S is quadratic in the star size: the hub b=0
	// pairs all (a, c).
	n, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Output is linear-ish: triangles through hubs.
	if n == 0 {
		t.Fatal("skew instance must have triangles")
	}
	if n > 3*tri.R.Len() {
		t.Fatalf("output %d should be O(n), relations are %d", n, tri.R.Len())
	}
}

func TestTriangleFromGraph(t *testing.T) {
	g := RandomGraph(30, 100, 5)
	tri, err := TriangleFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if tri.R.Len() != g.Len() || tri.R.Attrs()[0] != "A" {
		t.Fatal("rename failed")
	}
}

func TestLoomisWhitney(t *testing.T) {
	for k := 3; k <= 4; k++ {
		rels := LoomisWhitney(k, 64)
		if len(rels) != k {
			t.Fatalf("LW(%d): %d relations", k, len(rels))
		}
		m := int(math.Pow(64, 1/float64(k-1)))
		want := int(math.Pow(float64(m), float64(k-1)))
		for i, r := range rels {
			if r.Arity() != k-1 {
				t.Fatalf("LW(%d) relation %d arity %d", k, i, r.Arity())
			}
			if r.Len() != want {
				t.Fatalf("LW(%d) relation %d size %d, want %d", k, i, r.Len(), want)
			}
		}
		// Output = m^k (the full cube joins completely).
		var atoms []core.Atom
		var vars []string
		for j := 0; j < k; j++ {
			vars = append(vars, varName(j))
		}
		for i, r := range rels {
			atoms = append(atoms, core.Atom{Name: r.Name(), Vars: r.Attrs(), Rel: r})
			_ = i
		}
		q, err := core.NewQuery(vars, atoms)
		if err != nil {
			t.Fatal(err)
		}
		n, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if n != int(math.Pow(float64(m), float64(k))) {
			t.Fatalf("LW(%d) output = %d, want m^k = %d", k, n, int(math.Pow(float64(m), float64(k))))
		}
	}
}

func TestNewChain63(t *testing.T) {
	c := NewChain63(20, 3, 2, 4, 1)
	if c.R.Len() != 20 {
		t.Fatalf("|R| = %d", c.R.Len())
	}
	// Realized degrees must match the declared constraints.
	dB, err := c.S.MaxDegree([]string{"A"}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if dB > c.NBgA {
		t.Fatalf("deg_S(B|A) = %d > %d", dB, c.NBgA)
	}
	dC, err := c.T.MaxDegree([]string{"B"}, []string{"B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if dC > c.NCgB {
		t.Fatalf("deg_T(C|B) = %d > %d", dC, c.NCgB)
	}
	dAD, err := c.W.MaxDegree([]string{"C"}, []string{"C", "A", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if dAD > c.NADgC {
		t.Fatalf("deg_W(AD|C) = %d > %d", dAD, c.NADgC)
	}
}

func TestNewExample1(t *testing.T) {
	d := NewExample1(500, 3, 3, 0.3, 7)
	if d.R.Len() == 0 || d.S.Len() == 0 || d.T.Len() == 0 || d.W.Len() == 0 || d.V.Len() == 0 {
		t.Fatal("empty relation in Example 1 instance")
	}
	// Degree bounds hold.
	dw, err := d.W.MaxDegree([]string{"A", "C"}, []string{"A", "C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if dw > 3 {
		t.Fatalf("deg_W(ACD|AC) = %d > 3", dw)
	}
	dv, err := d.V.MaxDegree([]string{"B", "D"}, []string{"A", "B", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if dv > 3 {
		t.Fatalf("deg_V(ABD|BD) = %d > 3", dv)
	}
	// Skew: B=0 must be a heavy hitter in S — at least twice the
	// average per-B frequency (dedup caps it at the domain size).
	s0, err := d.S.Select("B", 0)
	if err != nil {
		t.Fatal(err)
	}
	distinctB, err := d.S.Project("B")
	if err != nil {
		t.Fatal(err)
	}
	avg := d.S.Len() / distinctB.Len()
	if s0.Len() < 2*avg {
		t.Fatalf("expected heavy hitter B=0: got %d, average %d", s0.Len(), avg)
	}
}

func TestFDInstance(t *testing.T) {
	r := FDInstance(200, 20, 10, 3)
	// A→B must hold.
	d, err := r.MaxDegree([]string{"A"}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("FD A→B violated: deg(AB|A) = %d", d)
	}
}
