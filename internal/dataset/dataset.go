// Package dataset implements the workload generators behind the
// benchmark harness: random and power-law graphs, the AGM-tight and
// skewed triangle instances of Section 2, Loomis–Whitney instances,
// the OLAP-style chain data for query (63), and Example 1 instances
// with controlled degrees. Generators are deterministic given a seed.
package dataset

import (
	"math"
	"math/rand"

	"wcoj/internal/relation"
)

// edgeRetryFactor bounds the resampling loops of the graph
// generators: a generator gives up after edgeRetryFactor*m + 1000
// draws. Uniform sampling hits the bound only when m is very close to
// the n(n-1) maximum; heavily skewed sampling can exhaust it earlier,
// in which case the graph simply has fewer edges.
const edgeRetryFactor = 64

// clampEdges caps a requested edge count at the n(n-1) distinct
// non-loop directed edges a graph on n vertices can hold.
func clampEdges(n, m int) int {
	if max := int64(n) * int64(n-1); int64(m) > max {
		return int(max)
	}
	return m
}

// RandomGraph returns an Erdős–Rényi-style directed edge relation
// E(src,dst) with exactly m distinct edges sampled uniformly over
// [n]×[n] minus the diagonal. Rejected draws — self-loops and
// duplicates — are resampled (with a bounded retry budget) instead of
// silently shrinking the graph, so benchmarks get the edge count they
// ask for; m is clamped to the n(n-1) maximum, and n < 2 yields the
// empty relation (no non-loop edge exists).
func RandomGraph(n, m int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("E", "src", "dst")
	if n < 2 || m <= 0 {
		return b.Build()
	}
	m = clampEdges(n, m)
	seen := make(map[[2]int]struct{}, m)
	for tries := edgeRetryFactor*m + 1000; len(seen) < m && tries > 0; tries-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		e := [2]int{u, v}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		b.Add(relation.Value(u), relation.Value(v))
	}
	return b.Build()
}

// PowerLawGraph returns a directed graph of m distinct edges whose
// source vertices follow a Zipf(s) distribution — the skewed-degree
// workloads where WCOJ algorithms shine. Self-loops and duplicates are
// resampled like RandomGraph's; under extreme skew the retry budget
// can run out before m distinct edges exist, leaving a smaller graph.
// Degenerate n (< 2) yields the empty relation instead of the invalid
// Zipf parameterization the old code fed rand.NewZipf.
func PowerLawGraph(n, m int, s float64, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("E", "src", "dst")
	if n < 2 || m <= 0 {
		return b.Build()
	}
	if s <= 1 {
		s = 1.01
	}
	m = clampEdges(n, m)
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	seen := make(map[[2]int]struct{}, m)
	for tries := edgeRetryFactor*m + 1000; len(seen) < m && tries > 0; tries-- {
		u := int(z.Uint64())
		v := rng.Intn(n)
		if u == v {
			continue
		}
		e := [2]int{u, v}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		b.Add(relation.Value(u), relation.Value(v))
	}
	return b.Build()
}

// Triangle bundles the three relations of the triangle query
// Q(A,B,C) ← R(A,B), S(B,C), T(A,C).
type Triangle struct {
	R, S, T *relation.Relation
}

// TriangleAGMTight returns the AGM-tight instance: with k = ⌊√n⌋, each
// relation is the complete bipartite set [k]×[k] (disjoint A/B/C value
// spaces are unnecessary — attributes are distinct columns). Every
// relation has k² ≈ n tuples and the output has k³ ≈ n^{3/2} tuples,
// matching the AGM bound, so any algorithm must spend Ω(n^{3/2}).
func TriangleAGMTight(n int) Triangle {
	k := int(math.Sqrt(float64(n)))
	if k < 1 {
		k = 1
	}
	mk := func(name, a1, a2 string) *relation.Relation {
		b := relation.NewBuilder(name, a1, a2)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				b.Add(relation.Value(i), relation.Value(j))
			}
		}
		return b.Build()
	}
	return Triangle{
		R: mk("R", "A", "B"),
		S: mk("S", "B", "C"),
		T: mk("T", "A", "C"),
	}
}

// TriangleSkew returns the classic hard instance for one-pair-at-a-time
// plans (Section 2 / "skew strikes back"): each relation is a double
// star, e.g. R = {(a_0, b_j)} ∪ {(a_i, b_0)} for i,j ∈ [n/2]. Every
// pairwise join has Θ(n²) tuples while the output has only Θ(n), so
// binary plans are Θ(n²) but WCOJ algorithms run in Õ(n^{3/2}) — and
// on this instance actually Õ(n).
func TriangleSkew(n int) Triangle {
	half := n / 2
	if half < 1 {
		half = 1
	}
	star := func(name, a1, a2 string) *relation.Relation {
		b := relation.NewBuilder(name, a1, a2)
		for i := 0; i < half; i++ {
			b.Add(0, relation.Value(i)) // hub on the left
			b.Add(relation.Value(i), 0) // hub on the right
		}
		return b.Build()
	}
	return Triangle{
		R: star("R", "A", "B"),
		S: star("S", "B", "C"),
		T: star("T", "A", "C"),
	}
}

// TriangleFromGraph binds one edge relation as all three triangle
// atoms (the triangle-counting workload of Section 1.2, R = S = T = E).
func TriangleFromGraph(e *relation.Relation) (Triangle, error) {
	r, err := e.Rename("R", "A", "B")
	if err != nil {
		return Triangle{}, err
	}
	s, err := e.Rename("S", "B", "C")
	if err != nil {
		return Triangle{}, err
	}
	t, err := e.Rename("T", "A", "C")
	if err != nil {
		return Triangle{}, err
	}
	return Triangle{R: r, S: s, T: t}, nil
}

// LoomisWhitney returns the k relations of the Loomis–Whitney query
// LW(k) (every atom contains all variables but one) on the AGM-tight
// instance: each relation is the full cube [m]^{k-1} with
// m = ⌊n^{1/(k-1)}⌋, giving |R_i| ≈ n and output ≈ n^{k/(k-1)} — the
// family on which any join-project plan loses a factor Ω(N^{1-1/k})
// to WCOJ algorithms [51].
//
// Variables are named A0..A{k-1}; relation Ri omits Ai.
func LoomisWhitney(k, n int) []*relation.Relation {
	m := int(math.Pow(float64(n), 1/float64(k-1)))
	if m < 1 {
		m = 1
	}
	var rels []*relation.Relation
	for i := 0; i < k; i++ {
		var attrs []string
		for j := 0; j < k; j++ {
			if j != i {
				attrs = append(attrs, varName(j))
			}
		}
		b := relation.NewBuilder(relName(i), attrs...)
		tuple := make([]relation.Value, k-1)
		var rec func(d int)
		rec = func(d int) {
			if d == k-1 {
				b.Add(tuple...)
				return
			}
			for v := 0; v < m; v++ {
				tuple[d] = relation.Value(v)
				rec(d + 1)
			}
		}
		rec(0)
		rels = append(rels, b.Build())
	}
	return rels
}

func varName(i int) string { return "A" + string(rune('0'+i)) }
func relName(i int) string { return "R" + string(rune('0'+i)) }

// Chain63 is the data for the paper's query (63):
// Q(A,B,C,D) ← R(A), S(A,B), T(B,C), W(C,A,D) with degree constraints
// N_A (R), N_B|A (S), N_C|B (T), N_AD|C (W).
type Chain63 struct {
	R, S, T, W *relation.Relation
	// The constraint values realized by the data.
	NA, NBgA, NCgB, NADgC int
}

// NewChain63 generates chain data: |R| = nA values of A; each A value
// has degB successors B; each B value degC successors C; each C value
// degAD (A,D) pairs. Values are arranged modulo small domains so the
// chain closes and joins are non-trivial.
func NewChain63(nA, degB, degC, degAD int, seed int64) Chain63 {
	rng := rand.New(rand.NewSource(seed))
	br := relation.NewBuilder("R", "A")
	for a := 0; a < nA; a++ {
		br.Add(relation.Value(a))
	}
	domB := nA * degB
	bs := relation.NewBuilder("S", "A", "B")
	for a := 0; a < nA; a++ {
		for j := 0; j < degB; j++ {
			bs.Add(relation.Value(a), relation.Value((a*degB+j*7)%domB))
		}
	}
	domC := nA * degC
	bt := relation.NewBuilder("T", "B", "C")
	for b := 0; b < domB; b++ {
		for j := 0; j < degC; j++ {
			bt.Add(relation.Value(b), relation.Value((b*degC+j*5)%domC))
		}
	}
	bw := relation.NewBuilder("W", "C", "A", "D")
	for c := 0; c < domC; c++ {
		for j := 0; j < degAD; j++ {
			bw.Add(relation.Value(c), relation.Value(rng.Intn(nA)), relation.Value(j))
		}
	}
	return Chain63{
		R: br.Build(), S: bs.Build(), T: bt.Build(), W: bw.Build(),
		NA: nA, NBgA: degB, NCgB: degC, NADgC: degAD,
	}
}

// Example1Data bundles the five relations of the paper's Example 1.
type Example1Data struct {
	R, S, T, W, V *relation.Relation
}

// NewExample1 generates an Example 1 instance: R(A,B), S(B,C), T(C,D)
// with ~n random tuples over a domain sized for non-trivial joins, and
// W(A,C,D), V(A,B,D) with per-key degrees bounded by degW and degV
// (realizing the constraints N_ACD|AC ≤ degW and N_ABD|BD ≤ degV).
// skew > 0 concentrates S's B values to exercise the heavy/light
// partition.
func NewExample1(n, degW, degV int, skew float64, seed int64) Example1Data {
	rng := rand.New(rand.NewSource(seed))
	dom := int(math.Sqrt(float64(n))) + 2
	pick := func() relation.Value { return relation.Value(rng.Intn(dom)) }
	pickSkew := func() relation.Value {
		if skew > 0 && rng.Float64() < skew {
			return 0 // heavy hitter
		}
		return relation.Value(rng.Intn(dom))
	}
	br := relation.NewBuilder("R", "A", "B")
	bs := relation.NewBuilder("S", "B", "C")
	bt := relation.NewBuilder("T", "C", "D")
	for i := 0; i < n; i++ {
		br.Add(pick(), pickSkew())
		bs.Add(pickSkew(), pick())
		bt.Add(pick(), pick())
	}
	bw := relation.NewBuilder("W", "A", "C", "D")
	bv := relation.NewBuilder("V", "A", "B", "D")
	for a := 0; a < dom; a++ {
		for c := 0; c < dom; c++ {
			for j := 0; j < degW; j++ {
				bw.Add(relation.Value(a), relation.Value(c), relation.Value(rng.Intn(dom)))
			}
		}
	}
	for b := 0; b < dom; b++ {
		for d := 0; d < dom; d++ {
			for j := 0; j < degV; j++ {
				bv.Add(relation.Value(rng.Intn(dom)), relation.Value(b), relation.Value(d))
			}
		}
	}
	return Example1Data{R: br.Build(), S: bs.Build(), T: bt.Build(), W: bw.Build(), V: bv.Build()}
}

// FDInstance returns a relation R(A,B,C) of n tuples satisfying the
// functional dependency A→B (B is a deterministic function of A), used
// by the Table 1 experiments on FD-constrained bounds.
func FDInstance(n, domA, domC int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("R", "A", "B", "C")
	for i := 0; i < n; i++ {
		a := rng.Intn(domA)
		b.Add(relation.Value(a), relation.Value(a*a%domA), relation.Value(rng.Intn(domC)))
	}
	return b.Build()
}

// Star bundles the relations of the skewed star join
// Q(A,B,C) ← R(A,B), S(B,C): R is a hub-centered star (every one of
// its `spokes` edges points at the single hub vertex), S fans the hub
// out to `fan` targets and adds `noise` distractor edges whose source
// vertices never occur in R. The output has spokes·fan tuples, but a
// variable order that binds A and C before B must enumerate the
// spokes×(fan+noise) cross product — the planner-sensitivity fixture
// of the BenchmarkPlanner acceptance check.
type Star struct {
	R, S *relation.Relation
	// Hub is the single shared join value.
	Hub relation.Value
}

// SkewedStar builds the Star instance. Values are laid out as
// hub = 0, spokes 1..spokes, fan targets and distractors above that,
// so the three value ranges never collide.
func SkewedStar(spokes, fan, noise int) Star {
	hub := relation.Value(0)
	br := relation.NewBuilder("R", "A", "B")
	for i := 1; i <= spokes; i++ {
		br.Add(relation.Value(i), hub)
	}
	bs := relation.NewBuilder("S", "B", "C")
	base := relation.Value(spokes + 1)
	for j := 0; j < fan; j++ {
		bs.Add(hub, base+relation.Value(j))
	}
	for k := 0; k < noise; k++ {
		src := base + relation.Value(fan+2*k)
		bs.Add(src, src+1)
	}
	return Star{R: br.Build(), S: bs.Build(), Hub: hub}
}
