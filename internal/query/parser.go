// Package query implements a tiny conjunctive-query frontend: a parser
// for datalog-style rules
//
//	Q(A,B,C) :- R(A,B), S(B,C), T(A,C).
//
// and a binder that resolves atom names against a relation.Database to
// produce an executable core.Query. The parser accepts ":-" or "<-" as
// the rule separator; the trailing period is optional; identifiers are
// letters, digits and underscores, starting with a letter.
package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"wcoj/internal/core"
	"wcoj/internal/relation"
)

// ParsedAtom is one body atom before relation binding.
type ParsedAtom struct {
	Name string
	Vars []string
}

// Parsed is a parsed conjunctive query.
type Parsed struct {
	HeadName string
	HeadVars []string
	Atoms    []ParsedAtom
}

// Parse parses a rule of the form Head(vars) :- Atom(vars), ... .
func Parse(input string) (*Parsed, error) {
	p := &parser{src: input}
	head, err := p.atom()
	if err != nil {
		return nil, fmt.Errorf("query: head: %w", err)
	}
	p.ws()
	if !p.eat(":-") && !p.eat("<-") && !p.eat("←") {
		return nil, fmt.Errorf("query: expected \":-\" or \"<-\" at %q", p.rest())
	}
	var atoms []ParsedAtom
	for {
		a, err := p.atom()
		if err != nil {
			return nil, fmt.Errorf("query: body: %w", err)
		}
		atoms = append(atoms, ParsedAtom{Name: a.name, Vars: a.vars})
		p.ws()
		if p.eat(",") {
			continue
		}
		break
	}
	p.ws()
	p.eat(".")
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("query: trailing input %q", p.rest())
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("query: empty body")
	}
	return &Parsed{HeadName: head.name, HeadVars: head.vars, Atoms: atoms}, nil
}

// Bind resolves the parsed query against a database, producing an
// executable core.Query. Every body atom must name a database relation
// whose arity matches; the head must list every body variable exactly
// once (full conjunctive query).
func (pq *Parsed) Bind(db *relation.Database) (*core.Query, error) {
	atoms := make([]core.Atom, len(pq.Atoms))
	for i, a := range pq.Atoms {
		rel, err := db.MustGet(a.Name)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		atoms[i] = core.Atom{Name: a.Name, Vars: a.Vars, Rel: rel}
	}
	return core.NewQuery(pq.HeadVars, atoms)
}

func (pq *Parsed) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) :- ", pq.HeadName, strings.Join(pq.HeadVars, ","))
	for i, a := range pq.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(%s)", a.Name, strings.Join(a.Vars, ","))
	}
	b.WriteString(".")
	return b.String()
}

type parser struct {
	src string
	pos int
}

type rawAtom struct {
	name string
	vars []string
}

func (p *parser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "..."
	}
	return r
}

func (p *parser) ws() {
	for p.pos < len(p.src) {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if r == utf8.RuneError && size <= 1 {
			return // invalid encoding is never whitespace
		}
		if !unicode.IsSpace(r) {
			return
		}
		p.pos += size
	}
}

func (p *parser) eat(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) {
		// Decode full runes: walking bytes would accept stray UTF-8
		// continuation bytes (many decode-as-Latin-1 to letters) and
		// produce invalid-UTF-8 identifiers.
		c, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if c == utf8.RuneError && size <= 1 {
			break // invalid encoding ends the identifier
		}
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos += size
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at %q", p.rest())
	}
	return p.src[start:p.pos], nil
}

func (p *parser) atom() (rawAtom, error) {
	name, err := p.ident()
	if err != nil {
		return rawAtom{}, err
	}
	p.ws()
	if !p.eat("(") {
		return rawAtom{}, fmt.Errorf("expected \"(\" after %q", name)
	}
	var vars []string
	for {
		v, err := p.ident()
		if err != nil {
			return rawAtom{}, err
		}
		vars = append(vars, v)
		p.ws()
		if p.eat(",") {
			continue
		}
		if p.eat(")") {
			break
		}
		return rawAtom{}, fmt.Errorf("expected \",\" or \")\" at %q", p.rest())
	}
	return rawAtom{name: name, vars: vars}, nil
}
