package query

import (
	"testing"

	"wcoj/internal/core"
	"wcoj/internal/dataset"
	"wcoj/internal/relation"
)

func TestParseTriangle(t *testing.T) {
	p, err := Parse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C).")
	if err != nil {
		t.Fatal(err)
	}
	if p.HeadName != "Q" || len(p.HeadVars) != 3 || len(p.Atoms) != 3 {
		t.Fatalf("parsed: %+v", p)
	}
	if p.Atoms[1].Name != "S" || p.Atoms[1].Vars[1] != "C" {
		t.Fatalf("atom: %+v", p.Atoms[1])
	}
	if p.String() != "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)." {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParseVariants(t *testing.T) {
	for _, src := range []string{
		"Q(A) <- R(A)",
		"Q(A) ← R(A).",
		"  Q ( A )  :-  R ( A )  .  ",
		"Q(Long_Name1,B2) :- Rel_3(Long_Name1,B2)",
	} {
		if _, err := Parse(src); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"Q(A)",
		"Q(A) :-",
		"Q(A) : R(A)",
		"Q(A) :- R(A) extra",
		"Q() :- R(A)",
		"Q(A :- R(A)",
		"Q(A) :- R(A,)",
		"1Q(A) :- R(A)",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%q should fail to parse", src)
		}
	}
}

func TestBind(t *testing.T) {
	db := relation.NewDatabase()
	tri := dataset.TriangleAGMTight(25)
	db.Put(tri.R)
	db.Put(tri.S)
	db.Put(tri.T)
	p, err := Parse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 125 { // 5^3
		t.Fatalf("bound query output = %d, want 125", n)
	}
	// Unknown relation.
	p2, _ := Parse("Q(A,B) :- Nope(A,B)")
	if _, err := p2.Bind(db); err == nil {
		t.Fatal("unknown relation must fail to bind")
	}
	// Arity mismatch.
	p3, _ := Parse("Q(A) :- R(A)")
	if _, err := p3.Bind(db); err == nil {
		t.Fatal("arity mismatch must fail to bind")
	}
	// Non-full query (variable not in head).
	p4, _ := Parse("Q(A) :- R(A,B)")
	if _, err := p4.Bind(db); err == nil {
		t.Fatal("non-full query must fail to bind")
	}
}
