package query

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse drives the conjunctive-query parser with arbitrary input.
// Beyond not panicking, every accepted parse must satisfy the
// grammar's invariants and round-trip through String: rendering a
// Parsed and re-parsing it yields an identical rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Q(A,B,C) :- R(A,B), S(B,C), T(A,C).",
		"Q(A) :- R(A)",
		"Q(A,B) <- E(A,B), E(B,A).",
		"Out(X1, Y_2) ← Edge(X1, Y_2) , Edge(Y_2, X1)",
		"Q(A,B,C,D) :- R(A), S(A,B), T(B,C), W(C,A,D).",
		"  Q ( A , B )  :-  R ( B , A ) . ",
		"Q() :- R()",
		"Q(A :- R(A)",
		"Q(A) :- ",
		"Q(A) : - R(A)",
		"Q(A) :- R(A),",
		"Q(A) :- R(A). trailing",
		"Ω(δ) :- ρ(δ)",
		"Q(A) :- R(A)\x00",
		strings.Repeat("Q(", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			if p != nil {
				t.Fatalf("non-nil Parsed alongside error %v", err)
			}
			return
		}
		if p.HeadName == "" {
			t.Fatal("accepted a query with an empty head name")
		}
		if len(p.HeadVars) == 0 {
			t.Fatal("accepted a query with no head variables")
		}
		if len(p.Atoms) == 0 {
			t.Fatal("accepted a query with an empty body")
		}
		for _, a := range p.Atoms {
			if a.Name == "" || len(a.Vars) == 0 {
				t.Fatalf("accepted malformed atom %+v", a)
			}
			for _, v := range a.Vars {
				if v == "" || !utf8.ValidString(v) {
					t.Fatalf("accepted malformed variable %q", v)
				}
			}
		}
		// Round-trip: the rendering must re-parse to the same rendering.
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendering %q of accepted input %q does not re-parse: %v", s1, src, err)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("round-trip diverges: %q -> %q", s1, s2)
		}
	})
}
