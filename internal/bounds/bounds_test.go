package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wcoj/internal/constraints"
	"wcoj/internal/hypergraph"
)

func triangleH(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.New([]string{"A", "B", "C"}, []hypergraph.Edge{
		{Name: "R", Vertices: []string{"A", "B"}},
		{Name: "S", Vertices: []string{"B", "C"}},
		{Name: "T", Vertices: []string{"A", "C"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAGMTriangle(t *testing.T) {
	h := triangleH(t)
	res, err := AGM(h, []float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Bound = sqrt(100^3) = 1000; ρ* = 1.5.
	if math.Abs(res.Bound-1000) > 1e-6*1000 {
		t.Fatalf("AGM bound = %v, want 1000", res.Bound)
	}
	if math.Abs(res.Rho-1.5) > 1e-9 {
		t.Fatalf("ρ* = %v", res.Rho)
	}
	if !h.IsFractionalEdgeCover(res.Cover, 1e-6) {
		t.Fatal("optimal cover must be feasible")
	}
}

func TestAGMAsymmetric(t *testing.T) {
	h := triangleH(t)
	// |R|=10, |S|=10, |T|=10^6: LP picks (1,1,0): bound |R|·|S| = 100.
	res, err := AGM(h, []float64{10, 10, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Bound-100) > 1e-3 {
		t.Fatalf("asymmetric AGM bound = %v, want 100", res.Bound)
	}
}

func TestAGMErrors(t *testing.T) {
	h := triangleH(t)
	if _, err := AGM(h, []float64{1, 2}); err == nil {
		t.Fatal("size-count mismatch must fail")
	}
	if _, err := AGM(h, []float64{0, 1, 1}); err == nil {
		t.Fatal("size < 1 must fail")
	}
}

func TestPolymatroidCardinalityOnlyEqualsAGM(t *testing.T) {
	h := triangleH(t)
	sizes := []float64{64, 256, 1024}
	agm, err := AGM(h, sizes)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := CardinalityConstraints(h, sizes)
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Polymatroid([]string{"A", "B", "C"}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poly.LogBound-agm.LogBound) > 1e-6 {
		t.Fatalf("polymatroid %v != AGM %v under cardinality-only DC", poly.LogBound, agm.LogBound)
	}
	// The witness must be a polymatroid satisfying the constraints.
	if !poly.H.IsPolymatroid(1e-6) {
		t.Fatal("witness is not a polymatroid")
	}
	// Strong duality: Σ δ log N = bound (eq. 73).
	du := 0.0
	for i, c := range dc {
		du += poly.Delta[i] * c.LogN()
	}
	if math.Abs(du-poly.LogBound) > 1e-5 {
		t.Fatalf("duality gap: %v vs %v", du, poly.LogBound)
	}
}

func TestPolymatroidWithFD(t *testing.T) {
	// R(A,B) with |R| ≤ N and FD A→B; query over A,B alone: bound = N
	// from R, and the FD does not reduce below |π_A R| ≤ N. Adding a
	// tighter cardinality on A: h(A) ≤ log m, FD gives h(B|A)=0, so
	// h(AB) ≤ log m.
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A", "B"}, 1000),
		constraints.Cardinality("RA", []string{"A"}, 10),
		constraints.FD("R", []string{"A"}, []string{"B"}),
	}
	b, err := Polymatroid([]string{"A", "B"}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Bound-10) > 1e-6 {
		t.Fatalf("FD bound = %v, want 10", b.Bound)
	}
}

func TestPolymatroidInfinite(t *testing.T) {
	// D is unbound: no cardinality seed reaches it.
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A"}, 10),
	}
	b, err := Polymatroid([]string{"A", "D"}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Infinite() {
		t.Fatalf("bound should be infinite, got %v", b.LogBound)
	}
	m, err := Modular([]string{"A", "D"}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Infinite() {
		t.Fatal("modular bound should be infinite too")
	}
}

func TestModularEqualsPolymatroidAcyclic(t *testing.T) {
	// Proposition 4.4 on an acyclic chain: N_A=100, N_B|A=10, N_C|B=10.
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A"}, 100),
		constraints.Degree("S", []string{"A"}, []string{"A", "B"}, 10),
		constraints.Degree("T", []string{"B"}, []string{"B", "C"}, 10),
	}
	if !dc.IsAcyclic() {
		t.Fatal("chain DC must be acyclic")
	}
	vars := []string{"A", "B", "C"}
	mod, err := Modular(vars, dc)
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Polymatroid(vars, dc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mod.LogBound-poly.LogBound) > 1e-6 {
		t.Fatalf("Prop 4.4 violated: modular %v vs polymatroid %v", mod.LogBound, poly.LogBound)
	}
	// Expected bound: 100·10·10 = 10^4.
	if math.Abs(mod.Bound-1e4) > 1e-3*1e4 {
		t.Fatalf("chain bound = %v, want 1e4", mod.Bound)
	}
	// Dual: δ=1 on each constraint reproduces the bound.
	du := 0.0
	for i, c := range dc {
		du += mod.Delta[i] * c.LogN()
	}
	if math.Abs(du-mod.LogBound) > 1e-5 {
		t.Fatalf("modular duality gap: %v vs %v", du, mod.LogBound)
	}
}

func TestModularDualIsAGMDualForCardinalityOnly(t *testing.T) {
	// With only cardinality constraints, the dual (57) is the AGM LP:
	// δ must be a fractional edge cover.
	h := triangleH(t)
	sizes := []float64{100, 100, 100}
	dc, err := CardinalityConstraints(h, sizes)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Modular([]string{"A", "B", "C"}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsFractionalEdgeCover(hypergraph.Cover(mod.Delta), 1e-6) {
		t.Fatalf("modular dual %v is not a fractional edge cover", mod.Delta)
	}
	if math.Abs(mod.LogBound-math.Log2(1000)) > 1e-6 {
		t.Fatalf("modular bound = %v, want log2(1000)", mod.LogBound)
	}
}

func TestPolymatroidTighterThanModularWhenCyclic(t *testing.T) {
	// Cyclic FDs A→B, B→A with |π_A|≤4, |π_B|≤1024. Polymatroid uses
	// both FDs: h(AB) = h(A) ≤ 2. Modular cannot use h(B|A)=0 — it
	// needs v_B ≤ 0 from (A;AB;1): v_B ≤ log 1 = 0, so modular also
	// gets 2. Use a case with a real gap instead: the paper proves
	// gaps exist only via non-Shannon inequalities, but modular vs
	// polymatroid can differ already for cyclic DC:
	// constraints h(AB)≤1 (cardinality on AB) alone, ask for h(AB):
	// both give 1. A genuinely differing pair: degree-only constraint
	// sets where modular over-counts.
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A", "B"}, 16),
		constraints.Cardinality("S", []string{"B", "C"}, 16),
		constraints.Cardinality("T", []string{"A", "C"}, 16),
	}
	vars := []string{"A", "B", "C"}
	mod, err := Modular(vars, dc)
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Polymatroid(vars, dc)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle: polymatroid (=AGM) gives 1.5·4 = 6 bits; modular can
	// do no better than 6 bits (v_A=v_B=v_C=2) — they agree here; the
	// documented inequality Modular ≥ Polymatroid must hold since
	// M_n ⊆ Γ_n means the modular *maximum* is over a smaller set, so
	// Modular ≤ Polymatroid. Verify that direction.
	if mod.LogBound > poly.LogBound+1e-6 {
		t.Fatalf("modular %v must be ≤ polymatroid %v", mod.LogBound, poly.LogBound)
	}
}

func TestEmptyVars(t *testing.T) {
	b, err := Polymatroid(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.LogBound != 0 || b.Bound != 1 {
		t.Fatalf("empty query bound = %v", b.LogBound)
	}
}

func TestCardinalityConstraintsHelper(t *testing.T) {
	h := triangleH(t)
	dc, err := CardinalityConstraints(h, []float64{10, 0.5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(dc) != 3 {
		t.Fatalf("len = %d", len(dc))
	}
	if dc[1].N != 1 {
		t.Fatalf("sizes < 1 must clamp to 1, got %v", dc[1].N)
	}
	if _, err := CardinalityConstraints(h, []float64{1}); err == nil {
		t.Fatal("mismatched sizes must fail")
	}
}

// Property: on random cardinality-only triangle-family instances,
// Polymatroid == AGM == Modular (all reduce to the AGM LP), and the
// polymatroid witness is a valid polymatroid respecting every
// constraint.
func TestPropertyCardinalityBoundsAgree(t *testing.T) {
	h := triangleH(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []float64{
			float64(1 + rng.Intn(1000)),
			float64(1 + rng.Intn(1000)),
			float64(1 + rng.Intn(1000)),
		}
		agm, err := AGM(h, sizes)
		if err != nil {
			return false
		}
		dc, err := CardinalityConstraints(h, sizes)
		if err != nil {
			return false
		}
		vars := []string{"A", "B", "C"}
		poly, err := Polymatroid(vars, dc)
		if err != nil {
			return false
		}
		mod, err := Modular(vars, dc)
		if err != nil {
			return false
		}
		if math.Abs(poly.LogBound-agm.LogBound) > 1e-5 {
			return false
		}
		if math.Abs(mod.LogBound-agm.LogBound) > 1e-5 {
			return false
		}
		if !poly.H.IsPolymatroid(1e-6) {
			return false
		}
		for i, c := range dc {
			ym, _ := maskOf(c.Y, vars)
			if poly.H.Get(ym) > math.Log2(sizes[i])+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func maskOf(vs, universe []string) (uint32, bool) {
	var m uint32
	for _, v := range vs {
		found := false
		for i, u := range universe {
			if u == v {
				m |= 1 << uint(i)
				found = true
			}
		}
		if !found {
			return 0, false
		}
	}
	return m, true
}

// Property: Modular ≤ Polymatroid always (M_n ⊆ Γ_n), on random
// acyclic-or-not degree constraint sets; and when acyclic they agree
// (Proposition 4.4).
func TestPropertyModularVsPolymatroid(t *testing.T) {
	varsAll := []string{"A", "B", "C", "D"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		vars := varsAll[:n]
		dc := constraints.Set{
			constraints.Cardinality("R0", vars, float64(2+rng.Intn(100))),
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			perm := rng.Perm(n)
			ySize := 2 + rng.Intn(n-1)
			y := make([]string, 0, ySize)
			for j := 0; j < ySize; j++ {
				y = append(y, vars[perm[j]])
			}
			x := y[:1+rng.Intn(len(y)-1)]
			dc = append(dc, constraints.Degree("G", x, y, float64(1+rng.Intn(50))))
		}
		mod, err := Modular(vars, dc)
		if err != nil {
			return false
		}
		poly, err := Polymatroid(vars, dc)
		if err != nil {
			return false
		}
		if mod.LogBound > poly.LogBound+1e-5 {
			return false
		}
		if dc.IsAcyclic() && math.Abs(mod.LogBound-poly.LogBound) > 1e-5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
