// Package bounds implements the output-size bound calculators of
// Section 4:
//
//   - the AGM bound (Corollary 4.2) via the weighted fractional edge
//     cover LP (5)/(57);
//   - the polymatroid bound (44) via the LP (68) over the full 2^n
//     subset lattice with elemental Shannon inequalities;
//   - the modular bound LP (54) with its dual (57), which by
//     Proposition 4.4 coincides with the polymatroid bound when the
//     degree constraints are acyclic, and whose dual coefficients
//     δ_{Y|X} drive the runtime analysis of Algorithm 3 (Theorem 5.1).
//
// The entropic bound (43) is not computable (Open Problem 1); its role
// is filled by the sandwich log|Q(D)| ≤ entropic ≤ polymatroid, with
// the left side measured from concrete databases via package entropy.
//
// These calculators are not only analysis tools: the cost-based
// variable-order optimizer in package planner prices every candidate
// order by solving Modular over the query's prefix projections with
// degree constraints measured from the data (package stats), so the
// same LPs that bound the output also choose the execution order.
package bounds

import (
	"fmt"
	"math"

	"wcoj/internal/constraints"
	"wcoj/internal/entropy"
	"wcoj/internal/hypergraph"
	"wcoj/internal/lp"
)

// AGMResult is the output of the AGM bound computation.
type AGMResult struct {
	// LogBound is log2 of the bound: Σ_F δ*_F log2|R_F|.
	LogBound float64
	// Bound is 2^LogBound, the tuple-count bound ∏ |R_F|^{δ*_F}.
	Bound float64
	// Cover is the optimal fractional edge cover δ*, in edge order.
	Cover hypergraph.Cover
	// Rho is the plain fractional edge cover number ρ*(H) (all-ones
	// weights), so that Bound ≤ N^Rho for N = max|R_F|.
	Rho float64
}

// AGM computes the AGM bound ∏_F |R_F|^{δ_F} minimized over fractional
// edge covers δ of the query hypergraph (Corollary 4.2). sizes[i] is
// |R_F| for edge i; every size must be ≥ 1 (an empty relation makes the
// join empty — callers should short-circuit that case).
func AGM(h *hypergraph.Hypergraph, sizes []float64) (*AGMResult, error) {
	if len(sizes) != h.NumEdges() {
		return nil, fmt.Errorf("bounds: %d sizes for %d edges", len(sizes), h.NumEdges())
	}
	w := make([]float64, len(sizes))
	for i, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("bounds: size of edge %d is %v; sizes must be ≥ 1", i, s)
		}
		w[i] = math.Log2(s)
	}
	cover, logBound, err := h.WeightedFractionalEdgeCover(w)
	if err != nil {
		return nil, err
	}
	_, rho, err := h.FractionalEdgeCover()
	if err != nil {
		return nil, err
	}
	return &AGMResult{
		LogBound: logBound,
		Bound:    math.Exp2(logBound),
		Cover:    cover,
		Rho:      rho,
	}, nil
}

// LPBound is the result of a bound LP in the entropy space.
type LPBound struct {
	// LogBound is the optimal h([n]) (log2 of the tuple-count bound).
	LogBound float64
	// Bound is 2^LogBound.
	Bound float64
	// H is the optimal set function (polymatroid or modular witness).
	H *entropy.SetFunction
	// Vars is the variable universe in mask order.
	Vars []string
	// Delta has one dual coefficient per degree constraint, aligned
	// with the input constraint set; these are the Shannon-flow /
	// Algorithm 3 coefficients δ_{Y|X} with Σ δ_{Y|X}·log2 N_{Y|X}
	// = LogBound at optimality (strong duality, eq. (73)).
	Delta []float64
}

// Infinite reports whether the bound is unbounded (some variable is not
// bound by the constraints).
func (b *LPBound) Infinite() bool { return math.IsInf(b.LogBound, 1) }

// Polymatroid computes the polymatroid bound (44): max h([n]) over
// h ∈ Γ_n ∩ H_DC via the LP (68) with elemental Shannon inequalities.
// The LP has 2^n−1 variables; n is capped by entropy.MaxN. If some
// query variable is unbound the result has LogBound = +Inf (the LP
// would be unbounded).
func Polymatroid(vars []string, dc constraints.Set) (*LPBound, error) {
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	n := len(vars)
	if n == 0 {
		return &LPBound{LogBound: 0, Bound: 1, H: entropy.NewSetFunction(0), Vars: nil,
			Delta: make([]float64, len(dc))}, nil
	}
	if n > entropy.MaxN {
		return nil, fmt.Errorf("bounds: %d variables exceeds the polymatroid LP cap %d", n, entropy.MaxN)
	}
	if !dc.AllBound(vars) {
		return &LPBound{LogBound: math.Inf(1), Bound: math.Inf(1), Vars: vars,
			Delta: make([]float64, len(dc))}, nil
	}

	numVars := 1<<uint(n) - 1 // h(S) for S != ∅
	varOf := func(s uint32) int { return int(s) - 1 }
	p := lp.NewProblem(lp.Maximize, numVars)
	full := uint32(1)<<uint(n) - 1
	p.SetObjective(varOf(full), 1)

	// Degree constraints first so their duals are the leading entries.
	for _, c := range dc {
		ym, err := entropy.MaskOf(c.Y, vars)
		if err != nil {
			return nil, err
		}
		xm, err := entropy.MaskOf(c.X, vars)
		if err != nil {
			return nil, err
		}
		coef := make([]float64, numVars)
		coef[varOf(ym)] += 1
		if xm != 0 {
			coef[varOf(xm)] -= 1
		}
		p.AddConstraint(coef, lp.LE, c.LogN())
	}
	for _, e := range entropy.Elemental(n) {
		coef := make([]float64, numVars)
		for s, c := range e.Terms {
			if s == 0 {
				continue
			}
			coef[varOf(s)] += c
		}
		p.AddConstraint(coef, lp.GE, 0)
	}
	s, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	switch s.Status {
	case lp.Unbounded:
		return &LPBound{LogBound: math.Inf(1), Bound: math.Inf(1), Vars: vars,
			Delta: make([]float64, len(dc))}, nil
	case lp.Infeasible:
		return nil, fmt.Errorf("bounds: polymatroid LP infeasible (should not happen: h=0 is feasible)")
	}
	h := entropy.NewSetFunction(n)
	for m := uint32(1); m <= full; m++ {
		h.Set(m, s.X[varOf(m)])
		if m == full {
			break
		}
	}
	delta := make([]float64, len(dc))
	for i := range dc {
		d := s.Dual[i]
		if d < 0 && d > -1e-9 {
			d = 0
		}
		delta[i] = d
	}
	return &LPBound{
		LogBound: s.Objective,
		Bound:    math.Exp2(s.Objective),
		H:        h,
		Vars:     vars,
		Delta:    delta,
	}, nil
}

// Modular computes the modular bound via LP (54): max Σ_i v_i subject
// to Σ_{i∈Y−X} v_i ≤ log2 N_{Y|X} per degree constraint, v ≥ 0. Its
// dual is exactly LP (57). By Proposition 4.4 the optimum equals the
// polymatroid (and entropic) bound whenever dc is acyclic. In general
// Modular ≤ Polymatroid (M_n ⊆ Γ_n, chain (34)), so for *cyclic* DC
// the modular value may undershoot the true worst case and is then not
// a valid output-size bound — repair dc with
// constraints.Set.MakeAcyclic first (Proposition 5.2).
func Modular(vars []string, dc constraints.Set) (*LPBound, error) {
	s, err := modularSolve(vars, dc)
	if err != nil {
		return nil, err
	}
	if s == nil || s.Status == lp.Unbounded {
		return &LPBound{LogBound: math.Inf(1), Bound: math.Inf(1), Vars: vars,
			Delta: make([]float64, len(dc))}, nil
	}
	n := len(vars)
	weights := make([]float64, n)
	copy(weights, s.X)
	h := entropy.Modular(weights)
	delta := make([]float64, len(dc))
	for i := range dc {
		d := s.Dual[i]
		if d < 0 && d > -1e-9 {
			d = 0
		}
		delta[i] = d
	}
	return &LPBound{
		LogBound: s.Objective,
		Bound:    math.Exp2(s.Objective),
		H:        h,
		Vars:     vars,
		Delta:    delta,
	}, nil
}

// ModularValue computes only the optimal value (log2) of the modular
// bound LP — no entropy witness and no duals. Unlike Modular, whose
// witness set function is capped at entropy.MaxN variables, this
// works at any width; it is what the cost-based planner calls per
// candidate prefix. Returns +Inf when some variable is unbound.
func ModularValue(vars []string, dc constraints.Set) (float64, error) {
	s, err := modularSolve(vars, dc)
	if err != nil {
		return 0, err
	}
	if s == nil || s.Status == lp.Unbounded {
		return math.Inf(1), nil
	}
	return s.Objective, nil
}

// modularSolve validates and solves LP (54). A nil solution (with nil
// error) means some variable is unbound and the LP would be
// unbounded; an Infeasible status is an internal error (v=0 is always
// feasible).
func modularSolve(vars []string, dc constraints.Set) (*lp.Solution, error) {
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	n := len(vars)
	if !dc.AllBound(vars) {
		return nil, nil
	}
	p := lp.NewProblem(lp.Maximize, n)
	for i := 0; i < n; i++ {
		p.SetObjective(i, 1)
	}
	for _, c := range dc {
		coef := make([]float64, n)
		for _, y := range constraints.Minus(c.Y, c.X) {
			for i, v := range vars {
				if v == y {
					coef[i] = 1
				}
			}
		}
		p.AddConstraint(coef, lp.LE, c.LogN())
	}
	s, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if s.Status == lp.Infeasible {
		return nil, fmt.Errorf("bounds: modular LP infeasible (should not happen: v=0 is feasible)")
	}
	return s, nil
}

// CardinalityConstraints derives the cardinality-only constraint set of
// a query hypergraph from relation sizes: (∅, F, |R_F|) per edge.
func CardinalityConstraints(h *hypergraph.Hypergraph, sizes []float64) (constraints.Set, error) {
	if len(sizes) != h.NumEdges() {
		return nil, fmt.Errorf("bounds: %d sizes for %d edges", len(sizes), h.NumEdges())
	}
	var dc constraints.Set
	for i, e := range h.Edges() {
		n := sizes[i]
		if n < 1 {
			n = 1
		}
		dc = append(dc, constraints.Cardinality(e.Name, e.Vertices, n))
	}
	return dc, nil
}
