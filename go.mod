module wcoj

go 1.24
