module wcoj

go 1.23
