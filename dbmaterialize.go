package wcoj

// Incremental view maintenance. DB.Materialize registers a standing
// COUNT/EXISTS/enumeration query whose result is kept continuously
// correct under Insert/Delete/Apply by differential (semi-naive)
// evaluation instead of recomputation:
//
//	Q(post) − Q(pre) = Σᵢ Q(post₁..postᵢ₋₁, Δᵢ, preᵢ₊₁..pre_m)
//
// — the telescoping identity over the query's atom occurrences, exact
// because a join is multilinear in each atom slot over signed
// ℤ-multisets and every relation is a duplicate-free set. Each batch
// therefore contributes one term per touched occurrence i: the query
// evaluated with slot i bound to the batch's effective delta
// (delta.BatchDelta — inserts count +, deletes −), slots before i
// bound to post-batch snapshots and slots after i to pre-batch
// snapshots.
//
// All of a view's terms run under one shared global variable order
// (the shape's heuristic order, the same one prepared queries
// resolve). Per-term delta-first orders would bound each term by
// O(|Δ|·degrees) — but every term would then restrict the shared
// variables differently, and at serving scale the dominant batch cost
// is building the snapshot-side (base ⊎ delta) tries those orders
// demand: the triangle query needs six distinct (binding, order)
// merged tries under delta-first orders and three under a shared
// order. Sharing one order builds each snapshot trie at most once per
// batch, shares it across all m terms, and — because the keys match —
// shares it with concurrently executing prepared queries through the
// DB trie store, while the batch-sized delta trie still prunes the
// term's search at whatever levels its variables occupy.
//
// COUNT with no projection (and EXISTS, which is COUNT ≠ 0) folds
// signed term counts directly — counting is linear. Enumeration and
// distinct projected counting are not linear: the view keeps a
// support count per projected tuple (how many full join tuples map to
// it) and the maintained rows change exactly when a support crosses
// zero.
//
// Consistency: maintenance runs inside Apply, under writeMu, and the
// new result is published inside the same db.mu critical section that
// installs the batch's versions and advances the update epoch — a
// reader never observes a view value and a DBStats.Epoch from
// different batches. A maintenance failure leaves the previous value
// in place, tagged with the error (MaterializedResult.Err); the next
// batch detects the stale epoch and self-heals by recomputing from
// scratch. Durable DBs log registrations (wal.KindMaterialize) and
// OpenDir re-arms the views after replay; see dbwal.go.

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"wcoj/internal/agg"
	"wcoj/internal/core"
	"wcoj/internal/delta"
	"wcoj/internal/lftj"
	"wcoj/internal/query"
	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// MaterializeMode selects what a maintained query keeps current.
type MaterializeMode int

// Available modes.
const (
	// MaterializeCount maintains the output cardinality — the full join
	// count with a nil Project, the distinct projected count otherwise.
	MaterializeCount MaterializeMode = iota
	// MaterializeExists maintains non-emptiness (internally the full
	// count, read as count ≠ 0 — a boolean alone cannot absorb signed
	// deltas).
	MaterializeExists
	// MaterializeRows maintains the materialized result relation (the
	// distinct projected tuples when Project is set).
	MaterializeRows
)

func (m MaterializeMode) String() string {
	switch m {
	case MaterializeCount:
		return "count"
	case MaterializeExists:
		return "exists"
	case MaterializeRows:
		return "rows"
	}
	return fmt.Sprintf("MaterializeMode(%d)", int(m))
}

// ParseMaterializeMode resolves a mode name as printed by String.
func ParseMaterializeMode(name string) (MaterializeMode, error) {
	for _, m := range []MaterializeMode{MaterializeCount, MaterializeExists, MaterializeRows} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("wcoj: unknown materialize mode %q", name)
}

// MaterializeOptions configure DB.Materialize.
type MaterializeOptions struct {
	// Mode selects what is maintained (default MaterializeCount).
	Mode MaterializeMode
	// Algorithm runs the differential terms; AlgoGenericJoin (default)
	// and AlgoLeapfrog are supported — maintenance needs the trie-plan
	// machinery.
	Algorithm Algorithm
	// Parallelism bounds the worker goroutines of each term evaluation
	// (0 means GOMAXPROCS, as in Options.Parallelism).
	Parallelism int
	// Project, when non-nil, projects the maintained result onto these
	// variables (same contract as Options.Project). Rejected for
	// MaterializeExists, whose answer a projection cannot change.
	Project []string
}

// workers resolves Parallelism exactly like Options.workers.
func (o MaterializeOptions) workers() int {
	return Options{Parallelism: o.Parallelism}.workers()
}

// needTuples reports whether the mode must maintain per-tuple support
// counts (any projection, and any maintained row set, breaks count
// linearity).
func (o MaterializeOptions) needTuples() bool {
	return o.Mode == MaterializeRows || (o.Mode == MaterializeCount && o.Project != nil)
}

// validate rejects option combinations maintenance cannot honor.
func (o MaterializeOptions) validate(q *Query) error {
	if !wcojAlgorithm(o.Algorithm) {
		return fmt.Errorf("wcoj: Materialize: %v is not supported (use AlgoGenericJoin or AlgoLeapfrog)", o.Algorithm)
	}
	if o.Mode < MaterializeCount || o.Mode > MaterializeRows {
		return fmt.Errorf("wcoj: Materialize: unknown mode %v", o.Mode)
	}
	if o.Mode == MaterializeExists && o.Project != nil {
		return fmt.Errorf("wcoj: Materialize: Project cannot change an EXISTS answer; drop it")
	}
	return Options{Project: o.Project}.validateProject(q)
}

// MaterializedResult is one epoch-consistent value of a maintained
// query. Epoch is the update epoch the value is correct for. A non-nil
// Err marks the value stale: maintenance failed at some later epoch,
// the fields still describe the last epoch that succeeded, and the
// next effective batch retries by recomputing from scratch.
type MaterializedResult struct {
	Epoch uint64
	// Count is the maintained cardinality (all modes).
	Count int64
	// Rows is the maintained result relation (MaterializeRows only).
	Rows *Relation
	// Err, when non-nil, is the error that interrupted maintenance.
	Err error
}

// MaterializedQuery is a standing query registered with DB.Materialize:
// its result is updated inside every effective Apply, atomically with
// the batch's publication. Readers load the current value with one
// atomic pointer read; all methods are safe for concurrent use.
type MaterializedQuery struct {
	db   *DB
	id   string
	seq  uint64
	src  string
	opts MaterializeOptions

	// shape is the bound query skeleton (atom names and variables);
	// maintenance re-points the atom relations at per-term snapshots.
	shape *Query
	// outAttrs/outPos are the maintained output schema and the binding
	// positions feeding it (tuple engine only).
	outAttrs []string
	outPos   []int

	// terms caches one differential plan per atom occurrence; support
	// holds the per-projected-tuple multiplicities of the tuple engine
	// (nil forces the next maintenance to recompute).
	terms   []*matTerm       //wcojlint:guardedby writeMu
	support map[string]int64 //wcojlint:guardedby writeMu

	// val is the published value. Maintenance stores the successor
	// inside the same db.mu critical section that publishes the batch.
	val    atomic.Pointer[MaterializedResult]
	closed atomic.Bool
}

// matTerm is the cached differential plan of one atom occurrence: a
// delta-first variable order resolved once, and the last built plan,
// re-versioned (never re-planned) per batch. The plan pins the tries
// of the snapshot it last ran against — one generation, exactly like a
// PreparedQuery's donated plans — until the next refresh replaces
// them.
type matTerm struct {
	order []string
	plan  *core.Plan
	cls   *agg.Classification
}

// ID returns the view's registry identifier ("m0", "m1", ...).
func (mq *MaterializedQuery) ID() string { return mq.id }

// Source returns the canonical query text.
func (mq *MaterializedQuery) Source() string { return mq.src }

// Mode returns the maintained mode.
func (mq *MaterializedQuery) Mode() MaterializeMode { return mq.opts.Mode }

// Options returns the options the view was materialized with.
func (mq *MaterializedQuery) Options() MaterializeOptions { return mq.opts }

// Result returns the current maintained value.
func (mq *MaterializedQuery) Result() MaterializedResult { return *mq.val.Load() }

// Count returns the current maintained cardinality.
func (mq *MaterializedQuery) Count() int64 { return mq.val.Load().Count }

// Exists reports whether the maintained result is non-empty.
func (mq *MaterializedQuery) Exists() bool { return mq.val.Load().Count != 0 }

// Rows returns the maintained result relation (nil unless the view was
// materialized with MaterializeRows).
func (mq *MaterializedQuery) Rows() *Relation { return mq.val.Load().Rows }

// Close unregisters the view: it stops being maintained (and, on a
// durable DB, its registration is logged away so recovery will not
// re-arm it). The last published value remains readable. Closing
// twice is a no-op.
func (mq *MaterializedQuery) Close() error {
	if mq.closed.Swap(true) {
		return nil
	}
	db := mq.db
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.walAppendUnmaterializeLocked(mq.id); err != nil {
		mq.closed.Store(false)
		return err
	}
	db.mu.Lock()
	delete(db.views, mq.id) //wcojlint:nosync the unregistration was synced above; the view's last value stays readable
	db.mu.Unlock()
	return nil
}

// Materialize parses, binds and validates the query, computes its
// result from the current snapshot and registers it for continuous
// maintenance: every subsequent effective batch publishes an updated
// value atomically with the batch itself. On a durable DB the
// registration is logged (and fsynced) before it is published, and
// OpenDir re-arms it after recovery. Close the returned view to stop
// maintenance.
func (db *DB) Materialize(src string, opts MaterializeOptions) (*MaterializedQuery, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.walClosed {
		return nil, fmt.Errorf("wcoj: Materialize: DB is closed")
	}
	seq := db.matSeq
	mq, err := db.materializeLocked(fmt.Sprintf("m%d", seq), seq, src, opts, false)
	if err != nil {
		return nil, err
	}
	db.matSeq = seq + 1
	return mq, nil
}

// materializeLocked builds, computes and registers one view under
// writeMu. With tolerateComputeErr (WAL re-arm), a failed initial
// computation registers the view as stale-with-error instead of
// failing — recovery must land on the pre-crash state, which may well
// have been a stale view — while structural errors (parse, bind,
// validation) still fail hard: a record that never validated could not
// have been written by a healthy engine.
func (db *DB) materializeLocked(id string, seq uint64, src string, opts MaterializeOptions, tolerateComputeErr bool) (*MaterializedQuery, error) {
	parsed, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	q, err := parsed.Bind(db.data)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	vers := db.atomVersions(q)
	epoch := db.updEpoch.Load()
	db.mu.RUnlock()
	if err := opts.validate(q); err != nil {
		return nil, err
	}

	mq := &MaterializedQuery{
		db:    db,
		id:    id,
		seq:   seq,
		src:   parsed.String(),
		opts:  opts,
		shape: q,
	}
	mq.outAttrs = q.Vars
	if opts.Project != nil {
		mq.outAttrs = opts.Project
	}
	mq.outPos = make([]int, len(mq.outAttrs))
	for i, v := range mq.outAttrs {
		for j, qv := range q.Vars {
			if qv == v {
				mq.outPos[i] = j
			}
		}
	}
	order, err := matTermOrder(q)
	if err != nil {
		return nil, err
	}
	mq.terms = make([]*matTerm, len(q.Atoms)) //wcojlint:nosync construction: mq is not yet visible to any reader
	for i := range q.Atoms {
		mq.terms[i] = &matTerm{order: order} //wcojlint:nosync construction: mq is not yet visible to any reader
	}

	res, err := mq.recompute(vers, epoch)
	if err != nil {
		if !tolerateComputeErr {
			return nil, err
		}
		res = &MaterializedResult{Epoch: epoch, Err: err}
	}
	mq.val.Store(res) //wcojlint:nosync construction: mq is not yet visible to any reader

	// Durability before visibility, like every other registration.
	if err := db.walAppendMaterializeLocked(mq); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.views[id] = mq //wcojlint:nosync the registration was synced above
	db.mu.Unlock()
	return mq, nil
}

// Materialized returns the registered view with the given ID.
func (db *DB) Materialized(id string) (*MaterializedQuery, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mq, ok := db.views[id]
	return mq, ok
}

// MaterializedViews returns the registered views in registration
// order.
func (db *DB) MaterializedViews() []*MaterializedQuery {
	db.mu.RLock()
	out := make([]*MaterializedQuery, 0, len(db.views))
	for _, mq := range db.views {
		out = append(out, mq)
	}
	db.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// matTermOrder resolves the one global variable order all of a view's
// differential terms share: the shape's heuristic order — the same
// policy prepared queries resolve, so the snapshot tries the terms
// demand carry the store keys prepared executions already populate
// (and vice versa). See the file comment for why sharing one order
// beats per-term delta-first orders.
func matTermOrder(q *Query) ([]string, error) {
	h, err := q.Hypergraph()
	if err != nil {
		return nil, err
	}
	return h.DegreeOrder(), nil
}

// matKey is an injective byte encoding of a (projected) tuple — the
// support map key.
func matKey(t Tuple) string {
	buf := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return string(buf)
}

// recompute evaluates the view from scratch against one snapshot —
// the initial computation, and the self-heal path after a maintenance
// failure or a Register. On success it replaces the tuple engine's
// support state.
//
//wcojlint:locked callers hold db.writeMu
func (mq *MaterializedQuery) recompute(vers map[string]*delta.Version, epoch uint64) (*MaterializedResult, error) {
	for _, a := range mq.shape.Atoms {
		if vers[a.Name] == nil {
			return nil, fmt.Errorf("wcoj: materialize %s: no relation %q", mq.id, a.Name)
		}
	}
	q := &Query{Vars: mq.shape.Vars, Atoms: append([]Atom(nil), mq.shape.Atoms...)}
	rebindEffective(q, vers)
	src := dbTrieSource{store: mq.db.store, vers: vers}
	ctx := context.Background()

	if !mq.opts.needTuples() {
		p, cls, err := core.AggPlanSrc(src, q, core.HeuristicOrder(), agg.Spec{Mode: agg.ModeCount})
		if err != nil {
			return nil, err
		}
		var n int64
		if mq.opts.Algorithm == AlgoLeapfrog {
			n, _, err = lftj.AggPlan(ctx, p, cls, mq.opts.workers())
		} else {
			n, _, err = core.GenericJoinAggPlan(ctx, p, cls, mq.opts.workers())
		}
		if err != nil {
			return nil, err
		}
		return &MaterializedResult{Epoch: epoch, Count: n}, nil
	}

	p, err := core.BuildPlanSrc(src, q, core.HeuristicOrder())
	if err != nil {
		return nil, err
	}
	supp := make(map[string]int64)
	var b *RelationBuilder
	if mq.opts.Mode == MaterializeRows {
		b = relation.NewBuilder(q.OutputName(), mq.outAttrs...)
	}
	buf := make(Tuple, len(mq.outPos))
	emit := func(t Tuple) error {
		for i, pos := range mq.outPos {
			buf[i] = t[pos]
		}
		k := matKey(buf)
		supp[k]++
		if supp[k] == 1 && b != nil {
			return b.Add(buf...)
		}
		return nil
	}
	stats := &Stats{}
	if mq.opts.Algorithm == AlgoLeapfrog {
		err = lftj.PlanVisit(ctx, p, mq.opts.workers(), stats, emit)
	} else {
		err = core.GenericJoinPlanVisit(ctx, p, mq.opts.workers(), stats, emit)
	}
	if err != nil {
		return nil, err
	}
	mq.support = supp
	res := &MaterializedResult{Epoch: epoch, Count: int64(len(supp))}
	if b != nil {
		res.Rows = b.Build()
	}
	return res, nil
}

// viewUpdate pairs a view with its next value, computed off-lock and
// published inside the batch's db.mu critical section.
type viewUpdate struct {
	mq  *MaterializedQuery
	res *MaterializedResult
}

// maintainViews computes every registered view's successor value for
// the batch that produced next. Called by Apply under writeMu, after
// the batch is durable and before it publishes; the returned updates
// are stored inside the same critical section that installs the new
// versions and advances the epoch.
func (db *DB) maintainViews(next map[string]*delta.Version) []viewUpdate {
	db.mu.RLock()
	if len(db.views) == 0 {
		db.mu.RUnlock()
		return nil
	}
	views := make([]*MaterializedQuery, 0, len(db.views))
	for _, mq := range db.views {
		views = append(views, mq)
	}
	pre := make(map[string]*delta.Version, len(db.versions))
	for name, v := range db.versions {
		pre[name] = v
	}
	epoch := db.updEpoch.Load()
	db.mu.RUnlock()

	post := make(map[string]*delta.Version, len(pre))
	for name, v := range pre {
		post[name] = v
	}
	for name, nv := range next {
		post[name] = nv
	}
	newEpoch := epoch + 1
	ups := make([]viewUpdate, 0, len(views))
	for _, mq := range views {
		ups = append(ups, viewUpdate{mq: mq, res: mq.maintain(pre, post, next, newEpoch)})
	}
	return ups
}

// maintain produces the view's value at newEpoch: a shallow copy when
// the batch missed the view's relations, the differential fold when it
// hit them, and a from-scratch recompute when the previous value was
// stale (a prior maintenance failed, or a Register recompute failed).
// A failure never loses the last good value: it is re-published with
// its old epoch and the error attached, which the next batch reads as
// "recompute".
//
//wcojlint:locked callers hold db.writeMu
func (mq *MaterializedQuery) maintain(pre, post, next map[string]*delta.Version, newEpoch uint64) *MaterializedResult {
	old := mq.val.Load()
	stale := old.Err != nil || old.Epoch+1 != newEpoch || (mq.opts.needTuples() && mq.support == nil)
	if stale {
		res, err := mq.recompute(post, newEpoch)
		if err != nil {
			return &MaterializedResult{Epoch: old.Epoch, Count: old.Count, Rows: old.Rows, Err: err}
		}
		return res
	}
	touched := false
	for _, a := range mq.shape.Atoms {
		if _, ok := next[a.Name]; ok {
			touched = true
			break
		}
	}
	if !touched {
		return &MaterializedResult{Epoch: newEpoch, Count: old.Count, Rows: old.Rows}
	}
	res, err := mq.differential(old, pre, post, next, newEpoch)
	if err != nil {
		if mq.opts.needTuples() {
			// The support map may be half-folded; drop it so the recompute
			// rebuilds from scratch.
			mq.support = nil
		}
		return &MaterializedResult{Epoch: old.Epoch, Count: old.Count, Rows: old.Rows, Err: err}
	}
	return res
}

// suppDelta accumulates one batch's signed contribution to one
// projected tuple.
type suppDelta struct {
	t relation.Tuple
	n int64
}

// differential folds one batch into the previous value by evaluating
// the telescoping terms (see the file comment).
//
//wcojlint:locked callers hold db.writeMu
func (mq *MaterializedQuery) differential(old *MaterializedResult, pre, post, next map[string]*delta.Version, newEpoch uint64) (*MaterializedResult, error) {
	tuples := mq.opts.needTuples()
	var dCount int64
	var deltaSupp map[string]*suppDelta
	if tuples {
		deltaSupp = make(map[string]*suppDelta)
	}
	buf := make(Tuple, len(mq.outPos))
	for i, term := range mq.terms {
		nv, ok := next[mq.shape.Atoms[i].Name]
		if !ok {
			continue // untouched occurrence: its delta term is empty
		}
		bd := nv.LastBatch
		if bd == nil {
			return nil, fmt.Errorf("wcoj: materialize %s: relation %q published without a batch delta", mq.id, mq.shape.Atoms[i].Name)
		}
		for _, side := range [2]struct {
			rel  *relation.Relation
			sign int64
		}{{bd.Ins, 1}, {bd.Del, -1}} {
			if side.rel.Len() == 0 {
				continue
			}
			if tuples {
				sign := side.sign
				err := mq.termVisit(term, i, side.rel, pre, post, func(t Tuple) error {
					for j, pos := range mq.outPos {
						buf[j] = t[pos]
					}
					k := matKey(buf)
					sd := deltaSupp[k]
					if sd == nil {
						sd = &suppDelta{t: buf.Clone()}
						deltaSupp[k] = sd
					}
					sd.n += sign
					return nil
				})
				if err != nil {
					return nil, err
				}
			} else {
				n, err := mq.termCount(term, i, side.rel, pre, post)
				if err != nil {
					return nil, err
				}
				dCount += side.sign * n
			}
		}
	}

	if !tuples {
		n := old.Count + dCount
		if n < 0 {
			return nil, fmt.Errorf("wcoj: materialize %s: maintained count went negative (%d)", mq.id, n)
		}
		return &MaterializedResult{Epoch: newEpoch, Count: n}, nil
	}

	// Fold the signed support deltas; rows change exactly where a
	// support crosses zero, so the crossing sets satisfy MergeDelta's
	// preconditions (inserts disjoint from rows, deletes ⊆ rows) by
	// construction.
	count := old.Count
	var insB, delB *RelationBuilder
	if mq.opts.Mode == MaterializeRows {
		insB = relation.NewBuilder(old.Rows.Name(), mq.outAttrs...)
		delB = relation.NewBuilder(old.Rows.Name(), mq.outAttrs...)
	}
	for k, sd := range deltaSupp {
		if sd.n == 0 {
			continue
		}
		cur := mq.support[k]
		nw := cur + sd.n
		if nw < 0 {
			return nil, fmt.Errorf("wcoj: materialize %s: support count went negative", mq.id)
		}
		switch {
		case cur == 0 && nw > 0:
			count++
			if insB != nil {
				if err := insB.Add(sd.t...); err != nil {
					return nil, err
				}
			}
		case cur > 0 && nw == 0:
			count--
			if delB != nil {
				if err := delB.Add(sd.t...); err != nil {
					return nil, err
				}
			}
		}
		if nw == 0 {
			delete(mq.support, k)
		} else {
			mq.support[k] = nw
		}
	}
	res := &MaterializedResult{Epoch: newEpoch, Count: count, Rows: old.Rows}
	if insB != nil {
		ins, del := insB.Build(), delB.Build()
		if ins.Len() > 0 || del.Len() > 0 {
			rows, err := relation.MergeDelta(old.Rows, ins, del)
			if err != nil {
				return nil, err
			}
			res.Rows = rows
		}
	}
	return res, nil
}

// termQuery binds the view's shape for the differential term of
// occurrence i: slot i reads the batch delta side drel, earlier slots
// read post-batch snapshots, later slots pre-batch snapshots.
func (mq *MaterializedQuery) termQuery(i int, drel *relation.Relation, pre, post map[string]*delta.Version) (*Query, matTrieSource, error) {
	src := matTrieSource{store: mq.db.store, vers: make(map[*relation.Relation]*delta.Version)}
	atoms := make([]Atom, len(mq.shape.Atoms))
	for j, a := range mq.shape.Atoms {
		na := Atom{Name: a.Name, Vars: a.Vars}
		var v *delta.Version
		switch {
		case j == i:
			na.Rel = drel
		case j < i:
			v = post[a.Name]
		default:
			v = pre[a.Name]
		}
		if j != i {
			if v == nil {
				return nil, src, fmt.Errorf("wcoj: materialize %s: no relation %q", mq.id, a.Name)
			}
			na.Rel = v.Effective()
			src.vers[na.Rel] = v
		}
		atoms[j] = na
	}
	return &Query{Vars: mq.shape.Vars, Atoms: atoms}, src, nil
}

// termCount evaluates one signed count term.
func (mq *MaterializedQuery) termCount(term *matTerm, i int, drel *relation.Relation, pre, post map[string]*delta.Version) (int64, error) {
	q, src, err := mq.termQuery(i, drel, pre, post)
	if err != nil {
		return 0, err
	}
	p, cls, err := term.resolve(mq, q, src)
	if err != nil {
		return 0, err
	}
	if mq.opts.Algorithm == AlgoLeapfrog {
		n, _, err := lftj.AggPlan(context.Background(), p, cls, mq.opts.workers())
		return n, err
	}
	n, _, err := core.GenericJoinAggPlan(context.Background(), p, cls, mq.opts.workers())
	return n, err
}

// termVisit enumerates one term's full tuples into emit (the emit
// tuple is reused; callers copy what they retain).
func (mq *MaterializedQuery) termVisit(term *matTerm, i int, drel *relation.Relation, pre, post map[string]*delta.Version, emit func(Tuple) error) error {
	q, src, err := mq.termQuery(i, drel, pre, post)
	if err != nil {
		return err
	}
	p, _, err := term.resolve(mq, q, src)
	if err != nil {
		return err
	}
	stats := &Stats{}
	if mq.opts.Algorithm == AlgoLeapfrog {
		return lftj.PlanVisit(context.Background(), p, mq.opts.workers(), stats, emit)
	}
	return core.GenericJoinPlanVisit(context.Background(), p, mq.opts.workers(), stats, emit)
}

// resolve returns the term's plan bound to q's relations: the cached
// skeleton is re-versioned (tries only) when present, built fresh
// under the term's delta-first explicit order otherwise.
func (t *matTerm) resolve(mq *MaterializedQuery, q *Query, src core.TrieSource) (*core.Plan, *agg.Classification, error) {
	if t.plan != nil {
		if np, err := core.RefreshPlan(t.plan, q, src); err == nil {
			t.plan = np
			return np, t.cls, nil
		}
		t.plan, t.cls = nil, nil // shape changed (Register); rebuild below
	}
	pol := core.ExplicitOrder(t.order)
	if mq.opts.needTuples() {
		p, err := core.BuildPlanSrc(src, q, pol)
		if err != nil {
			return nil, nil, err
		}
		t.plan = p
		return p, nil, nil
	}
	p, cls, err := core.AggPlanSrc(src, q, pol, agg.Spec{Mode: agg.ModeCount})
	if err != nil {
		return nil, nil, err
	}
	t.plan, t.cls = p, cls
	return p, cls, nil
}

// matTrieSource resolves term atoms: snapshot-bound atoms (registered
// in vers by their effective relation's identity) are served through
// the same version-aware path prepared queries use — cached base tries
// plus linear delta merges, shared via the DB store — while the term's
// delta atom (absent from vers) builds its batch-sized trie directly,
// uncached: it is used for exactly one batch.
type matTrieSource struct {
	store *core.TrieStore
	vers  map[*relation.Relation]*delta.Version
}

// Get implements core.TrieSource.
func (s matTrieSource) Get(a core.Atom, atomOrder []string) (*trie.Trie, error) {
	if ver, ok := s.vers[a.Rel]; ok {
		return versionTrie(s.store, a, atomOrder, ver)
	}
	rn, err := a.Rel.Rename(a.Name, a.Vars...)
	if err != nil {
		return nil, err
	}
	return trie.Build(rn, atomOrder)
}

// rematerializeAllLocked recomputes every registered view from scratch
// against the current snapshot — the Register path: replacing a
// relation invalidates any differential state bound to it, and
// Register carries no per-batch delta to fold. Runs under writeMu; a
// view whose recompute fails keeps its last value, stale-with-error,
// and self-heals on the next effective batch.
func (db *DB) rematerializeAllLocked() {
	db.mu.RLock()
	nviews := len(db.views)
	views := make([]*MaterializedQuery, 0, nviews)
	for _, mq := range db.views {
		views = append(views, mq)
	}
	vers := make(map[string]*delta.Version, len(db.versions))
	for name, v := range db.versions {
		vers[name] = v
	}
	epoch := db.updEpoch.Load()
	db.mu.RUnlock()
	for _, mq := range views {
		res, err := mq.recompute(vers, epoch)
		if err != nil {
			old := mq.val.Load()
			mq.support = nil
			res = &MaterializedResult{Epoch: old.Epoch, Count: old.Count, Rows: old.Rows, Err: err}
		}
		mq.val.Store(res)
	}
}
