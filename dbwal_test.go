package wcoj

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"wcoj/internal/dataset"
)

// sameState asserts two DBs agree on update epoch, relation names and
// effective tuple sets.
func sameState(t *testing.T, got, want *DB) {
	t.Helper()
	if ge, we := got.Stats().Epoch, want.Stats().Epoch; ge != we {
		t.Fatalf("epoch %d, want %d", ge, we)
	}
	names := want.Names()
	if gn := got.Names(); len(gn) != len(names) {
		t.Fatalf("relations %v, want %v", gn, names)
	}
	for _, name := range names {
		gr, ok := got.Relation(name)
		if !ok {
			t.Fatalf("relation %q missing after recovery", name)
		}
		wr, _ := want.Relation(name)
		if !gr.Equal(wr) {
			t.Fatalf("relation %q diverged after recovery: %d tuples, want %d", name, gr.Len(), wr.Len())
		}
	}
}

func TestOpenDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(dataset.RandomGraph(30, 200, 3)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 5; step++ {
		b := NewBatch()
		for i := 0; i < 40; i++ {
			tu := Tuple{Value(rng.Intn(35)), Value(rng.Intn(35))}
			if rng.Intn(3) == 0 {
				b.Delete("E", tu)
			} else {
				b.Insert("E", tu)
			}
		}
		if _, err := db.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sameState(t, re, db)

	// The recovered DB answers queries and accepts further updates.
	pq, err := re.Prepare("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pq.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Apply(NewBatch().Insert("E", Tuple{500, 501})); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirDictSurvives(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := db.Dict()
	alice, bob := d.ID("alice"), d.ID("bob")
	if err := db.Register(NewRelation("Likes", []string{"a", "b"}, []Tuple{{alice, bob}})); err != nil {
		t.Fatal(err)
	}
	carol := d.ID("carol")
	if _, err := db.Apply(NewBatch().Insert("Likes", Tuple{bob, carol})); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rd := re.Dict()
	if rd.Len() != d.Len() {
		t.Fatalf("dict length %d, want %d", rd.Len(), d.Len())
	}
	for _, s := range []string{"alice", "bob", "carol"} {
		if rd.ID(s) != d.ID(s) {
			t.Fatalf("dict id for %q diverged after recovery", s)
		}
	}
	sameState(t, re, db)
}

// TestOpenDirCompaction checks the snapshot+rotation path: after
// Compact, recovery must come from the new-generation snapshot (old
// log pruned) and still land on the identical state; post-compaction
// batches replay on top of it.
func TestOpenDirCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(dataset.RandomGraph(20, 80, 11)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	mutate := func(n int) {
		t.Helper()
		for step := 0; step < n; step++ {
			b := NewBatch()
			for i := 0; i < 20; i++ {
				tu := Tuple{Value(rng.Intn(25)), Value(rng.Intn(25))}
				if rng.Intn(3) == 0 {
					b.Delete("E", tu)
				} else {
					b.Insert("E", tu)
				}
			}
			if _, err := db.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	mutate(4)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000001.snap")); err != nil {
		t.Fatalf("no generation-1 snapshot after Compact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-0000000000000000.log")); !os.IsNotExist(err) {
		t.Fatalf("generation-0 log survived Compact: %v", err)
	}
	mutate(3)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sameState(t, re, db)
}

func TestClosedDBRejectsWriters(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(NewRelation("E", []string{"x", "y"}, []Tuple{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply(NewBatch().Insert("E", Tuple{3, 4})); err == nil {
		t.Fatal("Apply on a closed durable DB succeeded")
	}
	if err := db.Register(NewRelation("S", []string{"x"}, nil)); err == nil {
		t.Fatal("Register on a closed durable DB succeeded")
	}
	// Reads stay up: closing releases the log, not the snapshot state.
	if r, ok := db.Relation("E"); !ok || r.Len() != 1 {
		t.Fatal("reads broken after Close")
	}
	// Close is idempotent, including on a memory-only DB.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := NewDB().Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "new")
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats().Epoch != 0 || len(re.Names()) != 0 {
		t.Fatalf("empty dir recovered non-empty state: %+v", re.Stats())
	}
}

// TestSnapshotIsolationWAL is TestSnapshotIsolation on a durable DB:
// swap batches (delete one present tuple, insert one absent one — a
// consistent snapshot always holds exactly n tuples) race against
// prepared readers while explicit compactions rotate the WAL
// underneath them. Any reader seeing n±1 caught a half-applied batch;
// any writer error caught the log tripping over its own rotation.
// After the storm the directory must recover to the final state
// exactly. Run with -race.
func TestSnapshotIsolationWAL(t *testing.T) {
	const n = 100
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eb := NewRelationBuilder("E", "x", "y")
	present := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		if err := eb.Add(Value(i), Value(i)); err != nil {
			t.Fatal(err)
		}
		present = append(present, Tuple{Value(i), Value(i)})
	}
	if err := db.Register(eb.Build()); err != nil {
		t.Fatal(err)
	}
	pq, err := db.Prepare("Q(A,B) :- E(A,B)", Options{})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	const swaps = 240
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(321))
		next := Value(n)
		for i := 0; i < swaps && !stop.Load(); i++ {
			victim := rng.Intn(len(present))
			us, err := db.Apply(NewBatch().
				Delete("E", present[victim]).
				Insert("E", Tuple{next, next}))
			if err != nil {
				report(err)
				return
			}
			if us.Inserted != 1 || us.Deleted != 1 {
				report(fmt.Errorf("swap batch was not fully effective: %+v", us))
				return
			}
			present[victim] = Tuple{next, next}
			next++
			if i%32 == 31 {
				if err := db.Compact(); err != nil {
					report(err)
					return
				}
			}
		}
	}()

	ctx := context.Background()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200 && !stop.Load(); i++ {
				var got int
				var err error
				if i%2 == 0 {
					got, _, err = pq.CountFast(ctx)
				} else {
					var out *Relation
					out, _, err = pq.Execute(ctx)
					if err == nil {
						got = out.Len()
					}
				}
				if err != nil {
					report(err)
					return
				}
				if got != n {
					report(fmt.Errorf("reader %d saw a torn snapshot: count %d, want %d", r, got, n))
					stop.Store(true)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	stop.Store(true)
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("recovery after concurrent WAL traffic: %v", err)
	}
	defer re.Close()
	sameState(t, re, db)
}
