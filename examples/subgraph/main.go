// Subgraph: pattern matching beyond triangles — 4-cycles and 4-cliques
// over a random graph, the "in-database graph processing" workload the
// paper's introduction motivates. Shows how one edge relation binds to
// several atoms, how the AGM bound scales with ρ* (2 for C4, 2 for K4
// via 6 half-weight edges), and how variable order affects Generic-
// Join's search work but not its output.
//
// Run with: go run ./examples/subgraph [-n 30000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"wcoj"
	"wcoj/internal/dataset"
)

func main() {
	nEdges := flag.Int("n", 30000, "number of edges")
	flag.Parse()

	e := dataset.RandomGraph(*nEdges/6+2, *nEdges, 42)
	db := wcoj.NewDatabase()
	db.Put(e)
	fmt.Printf("graph: %d edges\n\n", e.Len())

	patterns := []struct {
		name  string
		query string
	}{
		{"4-cycle", "Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D), E(D,A)"},
		{"4-clique", "Q(A,B,C,D) :- E(A,B), E(A,C), E(A,D), E(B,C), E(B,D), E(C,D)"},
		{"diamond", "Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D), E(A,C), E(B,D)"},
	}
	for _, p := range patterns {
		q, err := wcoj.MustParse(p.query).Bind(db)
		if err != nil {
			log.Fatal(err)
		}
		agm, err := wcoj.AGMBound(q)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		n, stats, err := wcoj.Count(q, wcoj.Options{Algorithm: wcoj.AlgoLeapfrog})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s ρ*=%.1f  AGM≤%.2e  matches=%-9d elapsed=%-10v nodes=%d\n",
			p.name, agm.Rho, agm.Bound, n, time.Since(start).Round(time.Millisecond), stats.Recursions)
	}

	// Variable-order ablation on the 4-cycle: different orders explore
	// different numbers of search nodes but produce identical output.
	fmt.Println("\n4-cycle variable-order ablation (Generic-Join):")
	q, err := wcoj.MustParse("Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D), E(D,A)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	for _, order := range [][]string{
		{"A", "B", "C", "D"},
		{"A", "C", "B", "D"},
		{"B", "D", "A", "C"},
	} {
		start := time.Now()
		n, stats, err := wcoj.Count(q, wcoj.Options{Algorithm: wcoj.AlgoGenericJoin, Order: order})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  order %v: matches=%d nodes=%d elapsed=%v\n",
			order, n, stats.Recursions, time.Since(start).Round(time.Millisecond))
	}
}
