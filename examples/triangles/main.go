// Triangles: the social-network triangle-counting workload that
// motivates Section 1.2 of the paper (R = S = T = E). Generates a
// skewed power-law graph, counts triangles with every algorithm in the
// library, and compares against the AGM bound — on skewed graphs the
// one-pair-at-a-time baseline visibly degrades while the WCOJ
// algorithms do not.
//
// Run with: go run ./examples/triangles [-n 200000] [-v 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"wcoj"
	"wcoj/internal/dataset"
)

func main() {
	nEdges := flag.Int("n", 200000, "number of edges")
	nVerts := flag.Int("v", 20000, "number of vertices")
	flag.Parse()

	e := dataset.PowerLawGraph(*nVerts, *nEdges, 1.4, 1)
	db := wcoj.NewDatabase()
	db.Put(e)
	fmt.Printf("graph: %d vertices, %d edges (power-law sources)\n", *nVerts, e.Len())

	q, err := wcoj.MustParse("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}

	agm, err := wcoj.AGMBound(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AGM bound: %.0f (= |E|^{3/2})\n\n", agm.Bound)

	fmt.Printf("%-22s %-12s %-12s %-10s\n", "algorithm", "triangles", "elapsed", "max-inter")
	for _, algo := range []wcoj.Algorithm{
		wcoj.AlgoGenericJoin,
		wcoj.AlgoLeapfrog,
		wcoj.AlgoBacktracking,
		wcoj.AlgoBinaryJoin,
	} {
		start := time.Now()
		n, stats, err := wcoj.Count(q, wcoj.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-12d %-12v %-10d\n",
			algo, n, time.Since(start).Round(time.Millisecond), stats.Intermediate)
	}
	fmt.Println("\n(WCOJ algorithms never build the quadratic wedge set the binary plan does)")
}
