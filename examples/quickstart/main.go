// Quickstart: build a tiny database, parse a conjunctive query, and
// evaluate it with a worst-case optimal join.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wcoj"
)

func main() {
	// A toy social network: follows(u, v).
	db := wcoj.NewDatabase()
	dict := db.Dict()
	b := wcoj.NewRelationBuilder("Follows", "src", "dst")
	edges := [][2]string{
		{"alice", "bob"}, {"bob", "carol"}, {"alice", "carol"},
		{"carol", "dave"}, {"dave", "alice"}, {"bob", "dave"},
		{"carol", "alice"},
	}
	for _, e := range edges {
		if err := b.Add(dict.ID(e[0]), dict.ID(e[1])); err != nil {
			log.Fatal(err)
		}
	}
	db.Put(b.Build())

	// Directed triangles: X follows Y follows Z, and X follows Z.
	parsed, err := wcoj.Parse("Q(X,Y,Z) :- Follows(X,Y), Follows(Y,Z), Follows(X,Z)")
	if err != nil {
		log.Fatal(err)
	}
	q, err := parsed.Bind(db)
	if err != nil {
		log.Fatal(err)
	}

	// The AGM bound tells us the worst case before running anything.
	agm, err := wcoj.AGMBound(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", parsed)
	fmt.Printf("AGM bound: at most %.0f result tuples (ρ* = %.1f)\n", agm.Bound, agm.Rho)

	out, stats, err := wcoj.Execute(q, wcoj.Options{Algorithm: wcoj.AlgoGenericJoin})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d triangles (%d search nodes):\n", out.Len(), stats.Recursions)
	var row wcoj.Tuple
	for i := 0; i < out.Len(); i++ {
		row = out.Tuple(i, row)
		fmt.Printf("  %s -> %s -> %s\n", dict.String(row[0]), dict.String(row[1]), dict.String(row[2]))
	}
}
