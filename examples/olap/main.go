// OLAP: degree-constrained evaluation with Algorithm 3 on the paper's
// query (63):
//
//	Q(A,B,C,D) ← R(A), S(A,B), T(B,C), W(C,A,D)
//
// with constraints N_A (R), N_B|A (S), N_C|B (T), N_AD|C (W) — the
// key/foreign-key lookup shape of OLAP workloads. The constraint set
// is cyclic (A→B→C→A), so it is first repaired per Proposition 5.2;
// the modular LP (54) then prices the worst case, and its dual δ is
// exactly the exponent vector of the Theorem 5.1 runtime.
//
// Run with: go run ./examples/olap [-na 200] [-deg 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"wcoj"
	"wcoj/internal/dataset"
)

func main() {
	nA := flag.Int("na", 200, "number of A values (|R|)")
	deg := flag.Int("deg", 8, "per-key degree for S, T, W")
	flag.Parse()

	c := dataset.NewChain63(*nA, *deg, *deg, *deg, 1)
	q, err := wcoj.NewQuery([]string{"A", "B", "C", "D"}, []wcoj.Atom{
		{Name: "R", Vars: []string{"A"}, Rel: c.R},
		{Name: "S", Vars: []string{"A", "B"}, Rel: c.S},
		{Name: "T", Vars: []string{"B", "C"}, Rel: c.T},
		{Name: "W", Vars: []string{"C", "A", "D"}, Rel: c.W},
	})
	if err != nil {
		log.Fatal(err)
	}
	dc := wcoj.ConstraintSet{
		wcoj.Cardinality("R", []string{"A"}, float64(c.NA)),
		wcoj.Degree("S", []string{"A"}, []string{"A", "B"}, float64(c.NBgA)),
		wcoj.Degree("T", []string{"B"}, []string{"B", "C"}, float64(c.NCgB)),
		wcoj.Degree("W", []string{"C"}, []string{"C", "A", "D"}, float64(c.NADgC)),
	}
	fmt.Printf("data: |R|=%d |S|=%d |T|=%d |W|=%d\n", c.R.Len(), c.S.Len(), c.T.Len(), c.W.Len())
	fmt.Printf("constraints acyclic: %v (the A→B→C→A loop of query (63))\n", dc.IsAcyclic())

	repaired, err := wcoj.MakeAcyclic(dc, q.Vars)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("repaired constraints (Prop 5.2):")
	for _, cc := range repaired {
		fmt.Printf("  %v\n", cc)
	}

	mod, err := wcoj.ModularBound(q, repaired)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modular/polymatroid bound: %.0f tuples; dual exponents δ:\n", mod.Bound)
	for i, cc := range repaired {
		fmt.Printf("  δ[%v] = %.3f\n", cc, mod.Delta[i])
	}

	start := time.Now()
	out, stats, err := wcoj.Execute(q, wcoj.Options{
		Algorithm:   wcoj.AlgoBacktracking,
		Constraints: repaired,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 3: %d tuples in %v (%d search nodes, %d intersected values)\n",
		out.Len(), time.Since(start).Round(time.Millisecond), stats.Recursions, stats.IntersectValues)

	// Cross-check with Generic-Join.
	n2, _, err := wcoj.Count(q, wcoj.Options{Algorithm: wcoj.AlgoGenericJoin})
	if err != nil {
		log.Fatal(err)
	}
	if n2 != out.Len() {
		log.Fatalf("mismatch: backtracking %d vs generic join %d", out.Len(), n2)
	}
	fmt.Println("cross-check with Generic-Join: OK")
}
