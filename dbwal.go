package wcoj

// Durability. A DB opened with OpenDir writes every state change to a
// write-ahead log (internal/wal) before publishing it to readers:
//
//	Register ──► dict record? + register record ──► publish
//	Apply    ──► dict record? + batch record (fsync) ──► publish
//	Compact  ──► fold deltas ──► snapshot + log rotation
//
// Reopening the directory replays the newest snapshot plus the log
// tail and asserts, record by record, that the rebuilt update epoch
// matches each record's tag — recovery lands on the exact pre-crash
// epoch or fails loudly, never on a silently diverged state. A torn
// final record (the append the crash interrupted) is truncated away;
// that batch was never acknowledged, so dropping it is correct.
//
// The WAL captures the logical state (tuple sets, per-relation version
// epochs, the string dictionary), not the physical representation: a
// relation recovered from a snapshot starts with an empty delta log
// even if it carried one at capture time. Tries and plans are rebuilt
// on demand, exactly as on a cold start.

import (
	"fmt"

	"wcoj/internal/delta"
	"wcoj/internal/relation"
	"wcoj/internal/wal"
)

// OpenDir opens a durable DB rooted at dir, creating the directory on
// first use and otherwise recovering the pre-crash state: the newest
// valid snapshot, plus a replay of every logged batch after it, back
// to the exact update epoch the last acknowledged batch produced.
// All subsequent Register and Apply calls are logged (and fsynced, for
// batches) before they are published. Close the DB to release the log.
func OpenDir(dir string) (*DB, error) {
	l, snap, recs, err := wal.Open(dir)
	if err != nil {
		return nil, err
	}
	db := NewDB()
	if snap != nil {
		if err := db.restoreSnapshot(snap); err != nil {
			l.Close()
			return nil, err
		}
	}
	// View registrations replay out of line: the records are collected
	// (in order, with retirements folded in) and the surviving views are
	// re-armed once, against the fully replayed state — re-running each
	// view's maintenance through the batch replays would redo work whose
	// outcome the final recompute determines anyway.
	var mats []*wal.Record
	var matFloor uint64
	for _, rec := range recs {
		switch rec.Kind {
		case wal.KindMaterialize:
			if got := db.updEpoch.Load(); got != rec.Epoch {
				l.Close()
				return nil, fmt.Errorf("wcoj: OpenDir %s: materialize %q at epoch %d, log says %d", dir, rec.MatID, got, rec.Epoch)
			}
			// The id floor counts every registration ever logged — views
			// retired below must not have their ids reissued.
			var seq uint64
			if _, err := fmt.Sscanf(rec.MatID, "m%d", &seq); err == nil && seq+1 > matFloor {
				matFloor = seq + 1
			}
			mats = append(mats, rec)
		case wal.KindUnmaterialize:
			for i, m := range mats {
				if m.MatID == rec.MatID {
					mats = append(mats[:i], mats[i+1:]...)
					break
				}
			}
		default:
			if err := db.replayRecord(rec); err != nil {
				l.Close()
				return nil, fmt.Errorf("wcoj: OpenDir %s: %w", dir, err)
			}
		}
	}
	if err := db.rearmViews(mats, matFloor); err != nil {
		l.Close()
		return nil, fmt.Errorf("wcoj: OpenDir %s: %w", dir, err)
	}
	db.writeMu.Lock()
	db.walDictN = db.Dict().Len() //wcojlint:nosync recovery: the DB is not yet visible to any reader
	db.wal = l                    //wcojlint:nosync recovery: the DB is not yet visible to any reader
	db.writeMu.Unlock()
	return db, nil
}

// restoreSnapshot installs a snapshot's relations, dictionary and
// update epoch into a fresh DB.
func (db *DB) restoreSnapshot(snap *wal.Snapshot) error {
	d := db.Dict()
	for i, s := range snap.Dict {
		if d.ID(s) != relation.Value(i) {
			return fmt.Errorf("wcoj: snapshot dict replay diverged at id %d", i)
		}
	}
	db.mu.Lock()
	for _, sr := range snap.Rels {
		r := sr.Rel
		db.data.Put(r)
		db.versions[r.Name()] = &delta.Version{
			Epoch: sr.Epoch,
			Base:  r,
			Add:   relation.Empty(r.Name(), r.Attrs()...),
			Del:   relation.Empty(r.Name(), r.Attrs()...),
		}
	}
	db.mu.Unlock()
	db.updEpoch.Store(snap.Epoch)
	return nil
}

// replayRecord applies one log record to a DB under recovery (db.wal
// is still nil, so nothing is re-logged) and asserts the resulting
// epoch matches the record's tag.
func (db *DB) replayRecord(rec *wal.Record) error {
	switch rec.Kind {
	case wal.KindDict:
		d := db.Dict()
		for i, s := range rec.DictStrs {
			if want := relation.Value(rec.DictFirst) + relation.Value(i); d.ID(s) != want {
				return fmt.Errorf("dict replay diverged at id %d", want)
			}
		}
	case wal.KindRegister:
		if got := db.updEpoch.Load(); got != rec.Epoch {
			return fmt.Errorf("register %q at epoch %d, log says %d", rec.Rel.Name(), got, rec.Epoch)
		}
		r := rec.Rel
		db.mu.Lock()
		db.data.Put(r)
		//wcojlint:nosync replay: the record being applied is already durable in the log
		db.versions[r.Name()] = &delta.Version{
			Epoch: rec.RelEpoch,
			Base:  r,
			Add:   relation.Empty(r.Name(), r.Attrs()...),
			Del:   relation.Empty(r.Name(), r.Attrs()...),
		}
		db.mu.Unlock()
	case wal.KindBatch:
		b := &Batch{ops: make(map[string][]delta.Op, len(rec.Batch))}
		for _, ro := range rec.Batch {
			b.ops[ro.Rel] = ro.Ops
			b.order = append(b.order, ro.Rel)
			b.n += len(ro.Ops)
		}
		us, err := db.Apply(b)
		if err != nil {
			return fmt.Errorf("batch replay: %w", err)
		}
		if us.Epoch != rec.Epoch {
			return fmt.Errorf("batch replayed to epoch %d, log says %d", us.Epoch, rec.Epoch)
		}
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	return nil
}

// Close flushes and closes the write-ahead log. Further updates and
// registrations fail; reads keep working. Closing a memory-only DB is
// a no-op.
func (db *DB) Close() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	db.walClosed = true
	return err
}

// walLogDictLocked logs dictionary strings interned since the last
// logged high-water mark, so any tuple record that references them
// replays against a dictionary that already holds them. Callers hold
// writeMu.
func (db *DB) walLogDictLocked() error {
	d := db.Dict()
	n := d.Len()
	if n <= db.walDictN {
		return nil
	}
	strs := make([]string, 0, n-db.walDictN)
	for i := db.walDictN; i < n; i++ {
		strs = append(strs, d.String(relation.Value(i)))
	}
	rec := &wal.Record{
		Kind:      wal.KindDict,
		Epoch:     db.updEpoch.Load(),
		DictFirst: uint64(db.walDictN),
		DictStrs:  strs,
	}
	if err := db.wal.Append(rec); err != nil {
		return err
	}
	db.walDictN = n
	return nil
}

// walAppendBatchLocked logs one effective batch, tagged with the epoch
// its publication will produce, and forces it to stable storage —
// durability strictly before visibility. Callers hold writeMu and have
// established that the batch changes state (the epoch will advance).
func (db *DB) walAppendBatchLocked(b *Batch) error {
	if db.wal == nil {
		return nil
	}
	if err := db.walLogDictLocked(); err != nil {
		return err
	}
	ops := make([]wal.RelOps, 0, len(b.order))
	for _, name := range b.order {
		ops = append(ops, wal.RelOps{Rel: name, Ops: b.ops[name]})
	}
	rec := &wal.Record{Kind: wal.KindBatch, Epoch: db.updEpoch.Load() + 1, Batch: ops}
	if err := db.wal.Append(rec); err != nil {
		return err
	}
	return db.wal.Sync()
}

// rearmViews re-registers the maintained views the replayed log
// carries, in registration order, computing each against the recovered
// state. Runs before db.wal is installed, so nothing is re-logged; a
// view whose recompute fails is re-armed stale-with-error (the exact
// pre-crash possibility), while a record that no longer parses or
// validates fails recovery — a healthy engine could not have written
// it.
func (db *DB) rearmViews(recs []*wal.Record, matFloor uint64) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.matSeq = matFloor //wcojlint:nosync replay reconstructs already-synced state; db.wal is not installed yet
	for _, rec := range recs {
		opts := MaterializeOptions{
			Mode:        MaterializeMode(rec.MatMode),
			Algorithm:   Algorithm(rec.MatAlgo),
			Parallelism: int(rec.MatParallel),
			Project:     rec.MatProject,
		}
		var seq uint64
		if _, err := fmt.Sscanf(rec.MatID, "m%d", &seq); err != nil {
			return fmt.Errorf("materialize replay: bad view id %q", rec.MatID)
		}
		if _, err := db.materializeLocked(rec.MatID, seq, rec.MatSrc, opts, true); err != nil {
			return fmt.Errorf("materialize replay %s: %w", rec.MatID, err)
		}
		if seq >= db.matSeq {
			db.matSeq = seq + 1
		}
	}
	return nil
}

// walAppendMaterializeLocked logs one view registration and forces it
// to stable storage before the view becomes visible. Callers hold
// writeMu.
func (db *DB) walAppendMaterializeLocked(mq *MaterializedQuery) error {
	if db.wal == nil {
		return nil
	}
	par := mq.opts.Parallelism
	if par < 0 {
		par = 0 // both mean "default": workers() treats <=0 as GOMAXPROCS
	}
	rec := &wal.Record{
		Kind:        wal.KindMaterialize,
		Epoch:       db.updEpoch.Load(),
		MatID:       mq.id,
		MatSrc:      mq.src,
		MatMode:     uint8(mq.opts.Mode),
		MatAlgo:     uint8(mq.opts.Algorithm),
		MatParallel: uint64(par),
		MatProject:  mq.opts.Project,
	}
	if err := db.wal.Append(rec); err != nil {
		return err
	}
	return db.wal.Sync()
}

// walAppendUnmaterializeLocked logs one view retirement. Callers hold
// writeMu.
func (db *DB) walAppendUnmaterializeLocked(id string) error {
	if db.wal == nil {
		return nil
	}
	rec := &wal.Record{
		Kind:  wal.KindUnmaterialize,
		Epoch: db.updEpoch.Load(),
		MatID: id,
	}
	if err := db.wal.Append(rec); err != nil {
		return err
	}
	return db.wal.Sync()
}

// walAppendRegisterLocked logs full-relation register records for rels
// before they are published. Callers hold writeMu.
func (db *DB) walAppendRegisterLocked(rels []*Relation) error {
	if db.wal == nil {
		return nil
	}
	if err := db.walLogDictLocked(); err != nil {
		return err
	}
	epoch := db.updEpoch.Load()
	for _, r := range rels {
		rec := &wal.Record{Kind: wal.KindRegister, Epoch: epoch, Rel: r}
		if err := db.wal.Append(rec); err != nil {
			return err
		}
	}
	return db.wal.Sync()
}

// walSnapshotLocked writes the full current state as the next
// generation's snapshot and restarts the log there (compaction's
// durable twin: the log no longer needs the folded history). Callers
// hold writeMu, so the captured state cannot advance mid-snapshot.
func (db *DB) walSnapshotLocked() error {
	if db.wal == nil {
		return nil
	}
	db.mu.RLock()
	epoch := db.updEpoch.Load()
	vers := make([]*delta.Version, 0, len(db.versions))
	for _, v := range db.versions {
		vers = append(vers, v)
	}
	db.mu.RUnlock()
	d := db.Dict()
	n := d.Len()
	dict := make([]string, n)
	for i := range dict {
		dict[i] = d.String(relation.Value(i))
	}
	rels := make([]wal.SnapRel, 0, len(vers))
	for _, v := range vers {
		rels = append(rels, wal.SnapRel{Epoch: v.Epoch, Rel: v.Effective()})
	}
	if err := db.wal.Rotate(&wal.Snapshot{Epoch: epoch, Dict: dict, Rels: rels}); err != nil {
		return err
	}
	db.walDictN = n
	// The snapshot captures relations, not view registrations; re-log
	// each live view into the fresh generation or recovery would drop
	// them.
	for _, mq := range db.MaterializedViews() {
		if err := db.walAppendMaterializeLocked(mq); err != nil {
			return err
		}
	}
	return nil
}

// walSnapshot is walSnapshotLocked for callers that do not hold
// writeMu (the background compaction sweep).
func (db *DB) walSnapshot() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.walSnapshotLocked()
}
