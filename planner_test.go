package wcoj

// Planner acceptance and equivalence suite. The cost-based planner
// must (a) pick an order that beats the worst enumerated order by a
// wide margin on the skewed star fixture, and (b) produce
// byte-identical output to the heuristic engine on every fixture,
// serial and parallel. Run with -race: planning shares the trie cache
// across goroutines.

import (
	"fmt"
	"strings"
	"testing"

	"wcoj/internal/core"
	"wcoj/internal/dataset"
)

// starQuery builds Q(A,B,C) :- R(A,B), S(B,C) over a Star instance.
func starQuery(t testing.TB, s dataset.Star) *Query {
	t.Helper()
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: s.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: s.S},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// plannerFixtures are the equivalence workloads: triangle, 4-clique,
// path and the skewed star.
func plannerFixtures(t testing.TB) map[string]*Query {
	t.Helper()
	qs := make(map[string]*Query)

	tri := dataset.TriangleSkew(400)
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs["triangle"] = q

	db := NewDatabase()
	db.Put(dataset.RandomGraph(120, 2000, 7))
	q, err = MustParse("Q(A,B,C,D) :- E(A,B), E(A,C), E(A,D), E(B,C), E(B,D), E(C,D)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	qs["4clique"] = q

	db = NewDatabase()
	db.Put(dataset.RandomGraph(300, 1500, 3))
	q, err = MustParse("Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	qs["path"] = q

	qs["skewed-star"] = starQuery(t, dataset.SkewedStar(2000, 8, 300))
	return qs
}

// TestPlannerMatchesHeuristic asserts the cost-based order produces
// byte-identical output to the heuristic order on every fixture, for
// both WCOJ engines, serial and parallel.
func TestPlannerMatchesHeuristic(t *testing.T) {
	for name, q := range plannerFixtures(t) {
		for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
			want, _, err := Execute(q, Options{Algorithm: algo, Planner: PlannerHeuristic, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%v heuristic: %v", name, algo, err)
			}
			for _, p := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%v/p=%d", name, algo, p), func(t *testing.T) {
					opts := Options{Algorithm: algo, Planner: PlannerCostBased, Parallelism: p}
					got, _, err := Execute(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("cost-based output disagrees: %d rows vs %d", got.Len(), want.Len())
					}
					n, _, err := Count(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if n != want.Len() {
						t.Fatalf("cost-based Count %d, want %d", n, want.Len())
					}
				})
			}
		}
	}
}

// work is the deterministic execution-effort measure the acceptance
// check compares: search-tree nodes plus intersection output.
func work(s *Stats) int { return s.Recursions + s.IntersectValues }

// TestPlannerSkewedStar is the acceptance check: on a star with a
// 10k-spoke hub the cost-based planner must bind the hub variable
// first and beat the worst enumerated order by at least 5x in search
// work (the deterministic proxy for end-to-end time; BenchmarkPlanner
// reports the wall-clock version).
func TestPlannerSkewedStar(t *testing.T) {
	q := starQuery(t, dataset.SkewedStar(10000, 10, 500))
	exp, err := Explain(q, Options{Planner: PlannerCostBased})
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Exhaustive || exp.Considered != 6 {
		t.Fatalf("expected exhaustive enumeration of 3! orders, got exhaustive=%v considered=%d",
			exp.Exhaustive, exp.Considered)
	}
	if exp.Order[0] != "B" {
		t.Fatalf("planner bound %q first, want the hub variable B (order %v)", exp.Order[0], exp.Order)
	}
	if exp.Worst == nil || exp.Worst.Order[len(exp.Worst.Order)-1] != "B" {
		t.Fatalf("worst order should bind B last, got %+v", exp.Worst)
	}

	chosenOut, chosenStats, err := Execute(q, Options{Order: exp.Order})
	if err != nil {
		t.Fatal(err)
	}
	worstOut, worstStats, err := Execute(q, Options{Order: exp.Worst.Order})
	if err != nil {
		t.Fatal(err)
	}
	if !chosenOut.Equal(worstOut) {
		t.Fatalf("orders disagree on output: %d vs %d rows", chosenOut.Len(), worstOut.Len())
	}
	if chosenOut.Len() != 10000*10 {
		t.Fatalf("star output %d rows, want %d", chosenOut.Len(), 10000*10)
	}
	cw, ww := work(chosenStats), work(worstStats)
	if ww < 5*cw {
		t.Fatalf("worst order work %d is under 5x the chosen order's %d", ww, cw)
	}
	t.Logf("chosen %v work=%d; worst %v work=%d (%.1fx)", exp.Order, cw, exp.Worst.Order, ww, float64(ww)/float64(cw))
}

// TestExplainPolicies pins the policy-resolution matrix of Explain
// and the planner-option validation of Execute.
func TestExplainPolicies(t *testing.T) {
	q := starQuery(t, dataset.SkewedStar(50, 4, 10))

	e, err := Explain(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Policy.String() != "heuristic" || len(e.Candidates) != 1 || len(e.LogBounds) != len(q.Vars) {
		t.Fatalf("auto without order should explain the heuristic plan, got %+v", e)
	}

	e, err = Explain(q, Options{Order: []string{"C", "B", "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Policy.String() != "explicit" || strings.Join(e.Order, ",") != "C,B,A" {
		t.Fatalf("auto with order should explain the explicit plan, got %+v", e)
	}

	e, err = Explain(q, Options{Planner: PlannerCostBased})
	if err != nil {
		t.Fatal(err)
	}
	if e.Policy.String() != "cost-based" || e.Worst == nil || !e.Exhaustive || e.Constraints == 0 {
		t.Fatalf("cost-based explanation incomplete: %+v", e)
	}
	if s := e.String(); !strings.Contains(s, "cost-based") || !strings.Contains(s, "worst:") {
		t.Fatalf("explanation rendering missing sections:\n%s", s)
	}

	// Conflicting and incomplete planner settings are rejected with
	// descriptive errors, in Explain and in the execution entry points.
	if _, err := Explain(q, Options{Planner: PlannerCostBased, Order: []string{"A", "B", "C"}}); err == nil {
		t.Fatal("cost-based + explicit order must fail")
	}
	if _, err := Explain(q, Options{Planner: PlannerExplicit}); err == nil {
		t.Fatal("explicit without order must fail")
	}
	if _, _, err := Execute(q, Options{Planner: PlannerExplicit}); err == nil {
		t.Fatal("Execute explicit without order must fail")
	}
	if _, _, err := Execute(q, Options{Algorithm: AlgoBinaryJoin, Planner: PlannerCostBased}); err == nil {
		t.Fatal("cost-based planner on a binary join must fail")
	}
	if _, _, err := Count(q, Options{Planner: PlannerHeuristic, Order: []string{"A", "B", "C"}}); err == nil {
		t.Fatal("heuristic + explicit order must fail")
	}

	// Explicit orders that are not permutations name the variable.
	_, _, err = Execute(q, Options{Order: []string{"A", "B"}})
	if err == nil || !strings.Contains(err.Error(), `"C"`) {
		t.Fatalf("missing variable error should name C, got %v", err)
	}
	_, _, err = Execute(q, Options{Order: []string{"A", "B", "B"}})
	if err == nil || !strings.Contains(err.Error(), `"B"`) {
		t.Fatalf("duplicate variable error should name B, got %v", err)
	}
}
