// Command experiments regenerates every table and figure of the
// paper's evaluation-style artifacts (see DESIGN.md §2 for the mapping
// and EXPERIMENTS.md for recorded results):
//
//	table1    Table 1: bound tightness across constraint classes
//	table2    Table 2 / Example 1: PANDA proof-sequence execution
//	triangle  §2: WCOJ vs binary plans on triangle instances
//	heavylight §2 Algorithm 2 vs Algorithm 1 ablation
//	lw        Loomis–Whitney: WCOJ vs join-project gap
//	alg3      Algorithm 3 runtime vs the dual bound ∏ N^δ
//	lp        Prop 4.4: modular LP = polymatroid LP on acyclic DC
//	repair    Prop 5.2: acyclic repair of query (63) constraints
//	shearer   Cor 5.5: Shearer iff fractional edge cover
//	parallel  sharded executor: worker scaling on triangle/clique
//	planner   cost-based variable orders: model cost vs measured work
//
// Usage: experiments -exp all|table1|... [-n 10000] [-parallel P]
//
//	[-planner heuristic|cost-based] [-explain]
//
// -planner selects the policy the planner experiment explains;
// -explain prints its full EXPLAIN record (per-level bounds, every
// candidate kept, the worst rejected order).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"wcoj"
	"wcoj/internal/baseline"
	"wcoj/internal/bounds"
	"wcoj/internal/constraints"
	"wcoj/internal/core"
	"wcoj/internal/dataset"
	"wcoj/internal/entropy"
	"wcoj/internal/hypergraph"
	"wcoj/internal/lftj"
	"wcoj/internal/panda"
	"wcoj/internal/relation"
	"wcoj/internal/stats"
)

var experiments = []struct {
	name string
	desc string
	run  func(scale int) error
}{
	{"table1", "Table 1: bound tightness by constraint class", table1},
	{"table2", "Table 2 / Example 1: PANDA execution", table2},
	{"triangle", "Triangle: WCOJ vs binary join plans", triangle},
	{"heavylight", "Algorithm 2 vs Algorithm 1 ablation", heavylight},
	{"lw", "Loomis-Whitney: WCOJ vs join-project", loomisWhitney},
	{"alg3", "Algorithm 3 vs dual bound", alg3},
	{"lp", "Prop 4.4: modular = polymatroid on acyclic DC", lpExp},
	{"repair", "Prop 5.2: constraint repair on query (63)", repair},
	{"shearer", "Cor 5.5: Shearer iff fractional cover", shearer},
	{"parallel", "Sharded executor: worker scaling on triangle/clique", parallelScaling},
	{"planner", "Cost-based planner: model cost vs measured work per order", plannerExp},
	{"agg", "Aggregate pushdown: Count/Exists/projection vs enumeration", aggExp},
}

// maxWorkers bounds the worker counts the parallel experiment sweeps;
// set by -parallel (0 = all cores).
var maxWorkers int

// plannerPolicy and explainPlans configure the planner experiment:
// which policy to explain and whether to print the full EXPLAIN text.
var (
	plannerPolicy string
	explainPlans  bool
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	n := flag.Int("n", 10000, "base scale")
	flag.IntVar(&maxWorkers, "parallel", 0, "max workers for the parallel experiment (0 = all cores)")
	flag.StringVar(&plannerPolicy, "planner", "cost-based", "policy the planner experiment explains: heuristic|cost-based")
	flag.BoolVar(&explainPlans, "explain", false, "print the full plan explanation in the planner experiment")
	flag.Parse()
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("\n=== %s — %s ===\n", e.name, e.desc)
		if err := e.run(*n); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

func triangleQuery(tri dataset.Triangle) (*core.Query, error) {
	return core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
}

// table1 reproduces the structure of Table 1: for each constraint
// class, compare the computed bound against the measured worst case on
// instances designed to meet it.
func table1(scale int) error {
	fmt.Printf("%-34s %-14s %-14s %-10s\n", "constraint class / instance", "bound (log2)", "|Q| (log2)", "tight?")
	// Row 1: cardinality constraints only — AGM bound, tight.
	tri := dataset.TriangleAGMTight(scale)
	q, err := triangleQuery(tri)
	if err != nil {
		return err
	}
	dc := stats.Cardinalities(q)
	poly, err := bounds.Polymatroid(q.Vars, dc)
	if err != nil {
		return err
	}
	n, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{})
	if err != nil {
		return err
	}
	printRow("cardinality only (AGM, tight)", poly.LogBound, n)

	// Row 2: cardinality + FD constraints. Instance: R(A,B,C) with
	// A→B; query Q(A,B,C) ← R1(A,B), R2(B,C), R3(A,C) plus FD A→B on
	// R1. Build data satisfying the FD where the bound is met.
	k := int(math.Sqrt(float64(scale)))
	b1 := relation.NewBuilder("R1", "A", "B")
	for a := 0; a < k*k; a++ {
		b1.Add(relation.Value(a), relation.Value(a%k))
	}
	b2 := relation.NewBuilder("R2", "B", "C")
	b3 := relation.NewBuilder("R3", "A", "C")
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			b2.Add(relation.Value(i), relation.Value(j))
		}
	}
	for a := 0; a < k*k; a++ {
		for j := 0; j < k; j++ {
			b3.Add(relation.Value(a), relation.Value(j))
		}
	}
	qfd, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R1", Vars: []string{"A", "B"}, Rel: b1.Build()},
		{Name: "R2", Vars: []string{"B", "C"}, Rel: b2.Build()},
		{Name: "R3", Vars: []string{"A", "C"}, Rel: b3.Build()},
	})
	if err != nil {
		return err
	}
	dcfd := stats.Cardinalities(qfd)
	dcfd = append(dcfd, constraints.FD("R1", []string{"A"}, []string{"B"}))
	polyfd, err := bounds.Polymatroid(qfd.Vars, dcfd)
	if err != nil {
		return err
	}
	nfd, _, err := core.GenericJoinCount(qfd, core.GenericJoinOptions{})
	if err != nil {
		return err
	}
	printRow("cardinality + FD", polyfd.LogBound, nfd)

	// Row 3: general degree constraints (chain query (63)-style data).
	c := dataset.NewChain63(scale/100+2, 4, 4, 4, 1)
	qdc, err := core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
		{Name: "R", Vars: []string{"A"}, Rel: c.R},
		{Name: "S", Vars: []string{"A", "B"}, Rel: c.S},
		{Name: "T", Vars: []string{"B", "C"}, Rel: c.T},
		{Name: "W", Vars: []string{"C", "A", "D"}, Rel: c.W},
	})
	if err != nil {
		return err
	}
	dcGen := constraints.Set{
		constraints.Cardinality("R", []string{"A"}, float64(c.NA)),
		constraints.Degree("S", []string{"A"}, []string{"A", "B"}, float64(c.NBgA)),
		constraints.Degree("T", []string{"B"}, []string{"B", "C"}, float64(c.NCgB)),
		constraints.Degree("W", []string{"C"}, []string{"C", "A", "D"}, float64(c.NADgC)),
	}
	polyg, err := bounds.Polymatroid(qdc.Vars, dcGen)
	if err != nil {
		return err
	}
	ng, _, err := core.GenericJoinCount(qdc, core.GenericJoinOptions{})
	if err != nil {
		return err
	}
	printRow("general degree constraints", polyg.LogBound, ng)
	fmt.Println("(entropic bound is not computable — Open Problem 1; measured log|Q| is its lower witness)")
	return nil
}

func printRow(label string, logBound float64, n int) {
	logN := math.Inf(-1)
	if n > 0 {
		logN = math.Log2(float64(n))
	}
	tight := "loose"
	if logBound-logN < 0.05 {
		tight = "tight"
	} else if logBound-logN < 1 {
		tight = "≈tight"
	}
	fmt.Printf("%-34s %-14.3f %-14.3f %-10s\n", label, logBound, logN, tight)
}

// table2 executes Example 1's Table 2 proof sequence and compares the
// PANDA intermediates against the runtime bound (75).
func table2(scale int) error {
	fmt.Printf("%-8s %-10s %-12s %-14s %-14s %-10s\n", "N", "output", "panda-inter", "bound (75)", "naive-inter", "elapsed")
	for _, n := range []int{scale / 10, scale / 3, scale} {
		if n < 100 {
			n = 100
		}
		d := dataset.NewExample1(n, 4, 4, 0.4, 7)
		st := panda.Example1Stats{
			NAB:     float64(d.R.Len()),
			NBC:     float64(d.S.Len()),
			NCD:     float64(d.T.Len()),
			NACDgAC: maxDeg(d.W, []string{"A", "C"}, []string{"A", "C", "D"}),
			NABDgBD: maxDeg(d.V, []string{"B", "D"}, []string{"A", "B", "D"}),
		}
		ps := panda.Example1Sequence(st)
		affil := panda.Affiliation{
			{S: 0b0011}:            d.R,
			{S: 0b0110}:            d.S,
			{S: 0b1100}:            d.T,
			{S: 0b1101, G: 0b0101}: d.W,
			{S: 0b1011, G: 0b1010}: d.V,
		}
		filters := []*relation.Relation{d.R, d.S, d.T, d.W, d.V}
		start := time.Now()
		out, est, err := panda.Execute(ps, panda.Example1Vars, affil, filters)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		// Naive comparator: the first intermediate |R ⋈ S| of the
		// canonical left-deep plan, counted without materializing.
		naive, err := relation.JoinSize(d.R, d.S)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-10d %-12d %-14.0f %-14d %-10v\n",
			n, out.Len(), est.Intermediate, st.RuntimeBound(), naive, elapsed.Round(time.Millisecond))
	}
	fmt.Println("(PANDA intermediates stay within the (75) bound; naive left-deep plans do not)")
	return nil
}

func maxDeg(r *relation.Relation, x, y []string) float64 {
	d, err := r.MaxDegree(x, y)
	if err != nil || d < 1 {
		return 1
	}
	return float64(d)
}

// triangle compares Generic-Join, LFTJ and binary plans on AGM-tight
// and skewed instances across a scale sweep (the §2 headline).
func triangle(scale int) error {
	for _, kind := range []string{"agm-tight", "skew"} {
		fmt.Printf("-- %s instances --\n", kind)
		fmt.Printf("%-8s %-9s %-12s %-12s %-12s %-12s %-12s\n",
			"N", "output", "generic", "lftj", "heavylight", "binary", "bin-inter")
		for _, n := range []int{scale / 16, scale / 4, scale} {
			if n < 64 {
				n = 64
			}
			var tri dataset.Triangle
			if kind == "agm-tight" {
				tri = dataset.TriangleAGMTight(n)
			} else {
				tri = dataset.TriangleSkew(n)
			}
			q, err := triangleQuery(tri)
			if err != nil {
				return err
			}
			tGJ, cnt := timeIt(func() int {
				c, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{Order: []string{"A", "B", "C"}})
				if err != nil {
					panic(err)
				}
				return c
			})
			tLF, _ := timeIt(func() int {
				c, _, err := lftj.Count(q, lftj.Options{Order: []string{"A", "B", "C"}})
				if err != nil {
					panic(err)
				}
				return c
			})
			tHL, _ := timeIt(func() int {
				out, _, err := core.TriangleHeavyLight(tri.R, tri.S, tri.T)
				if err != nil {
					panic(err)
				}
				return out.Len()
			})
			var inter int
			tBin, _ := timeIt(func() int {
				out, st, err := baseline.JoinOnly(q, nil, nil)
				if err != nil {
					panic(err)
				}
				inter = st.Intermediate
				return out.Len()
			})
			fmt.Printf("%-8d %-9d %-12v %-12v %-12v %-12v %-12d\n",
				tri.R.Len(), cnt, tGJ, tLF, tHL, tBin, inter)
		}
	}
	fmt.Println("(shape: WCOJ times grow ~N^{3/2} on agm-tight and ~N on skew; binary intermediates grow ~N² on skew)")
	return nil
}

func timeIt(f func() int) (time.Duration, int) {
	start := time.Now()
	n := f()
	return time.Since(start).Round(time.Microsecond), n
}

// heavylight is the Algorithm 1 vs Algorithm 2 ablation.
func heavylight(scale int) error {
	fmt.Printf("%-8s %-9s %-14s %-14s %-14s\n", "N", "output", "alg1(generic)", "alg2(hl)", "hl-inter")
	for _, n := range []int{scale / 16, scale / 4, scale} {
		if n < 64 {
			n = 64
		}
		tri := dataset.TriangleSkew(n)
		t1, cnt := timeIt(func() int {
			out, _, err := core.TriangleGenericJoin(tri.R, tri.S, tri.T)
			if err != nil {
				panic(err)
			}
			return out.Len()
		})
		var inter int
		t2, _ := timeIt(func() int {
			out, st, err := core.TriangleHeavyLight(tri.R, tri.S, tri.T)
			if err != nil {
				panic(err)
			}
			inter = st.Intermediate
			return out.Len()
		})
		agm := math.Sqrt(float64(tri.R.Len()) * float64(tri.S.Len()) * float64(tri.T.Len()))
		fmt.Printf("%-8d %-9d %-14v %-14v %d (≤ %.0f = sqrt bound)\n", tri.R.Len(), cnt, t1, t2, inter, agm)
	}
	return nil
}

// loomisWhitney measures the WCOJ vs join-project gap on LW(k).
func loomisWhitney(scale int) error {
	fmt.Printf("%-4s %-8s %-9s %-12s %-12s %-12s %-10s\n", "k", "N", "output", "wcoj", "joinproj", "jp-inter", "jp/wcoj")
	for _, k := range []int{3, 4, 5} {
		n := scale
		if k >= 4 {
			n = scale / 4
		}
		rels := dataset.LoomisWhitney(k, n)
		var vars []string
		for j := 0; j < k; j++ {
			vars = append(vars, fmt.Sprintf("A%d", j))
		}
		var atoms []core.Atom
		for _, r := range rels {
			atoms = append(atoms, core.Atom{Name: r.Name(), Vars: r.Attrs(), Rel: r})
		}
		q, err := core.NewQuery(vars, atoms)
		if err != nil {
			return err
		}
		tW, cnt := timeIt(func() int {
			c, _, err := core.GenericJoinCount(q, core.GenericJoinOptions{})
			if err != nil {
				panic(err)
			}
			return c
		})
		var inter int
		tJ, _ := timeIt(func() int {
			out, st, err := baseline.JoinProject(q, nil, nil)
			if err != nil {
				panic(err)
			}
			inter = st.Intermediate
			return out.Len()
		})
		ratio := float64(tJ) / float64(tW)
		fmt.Printf("%-4d %-8d %-9d %-12v %-12v %-12d %.1fx\n",
			k, rels[0].Len(), cnt, tW, tJ, inter, ratio)
	}
	fmt.Println("(paper: any join-project plan loses Ω(N^{1-1/k}) on LW(k))")
	return nil
}

// alg3 compares Algorithm 3's work counters against the dual bound
// ∏ N_{Y|X}^{δ_{Y|X}} from LP (57).
func alg3(scale int) error {
	fmt.Printf("%-8s %-8s %-10s %-12s %-14s %-14s\n", "N_A", "deg", "output", "search-work", "dual-bound", "elapsed")
	for _, deg := range []int{2, 4, 8} {
		nA := scale / (deg * deg * 10)
		if nA < 4 {
			nA = 4
		}
		c := dataset.NewChain63(nA, deg, deg, deg, 3)
		q, err := core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
			{Name: "R", Vars: []string{"A"}, Rel: c.R},
			{Name: "S", Vars: []string{"A", "B"}, Rel: c.S},
			{Name: "T", Vars: []string{"B", "C"}, Rel: c.T},
			{Name: "W", Vars: []string{"C", "A", "D"}, Rel: c.W},
		})
		if err != nil {
			return err
		}
		dc := constraints.Set{
			constraints.Cardinality("R", []string{"A"}, float64(c.NA)),
			constraints.Degree("S", []string{"A"}, []string{"A", "B"}, float64(c.NBgA)),
			constraints.Degree("T", []string{"B"}, []string{"B", "C"}, float64(c.NCgB)),
			constraints.Degree("W", []string{"C"}, []string{"C", "A", "D"}, float64(c.NADgC)),
		}
		acyclic, err := dc.MakeAcyclic(q.Vars)
		if err != nil {
			return err
		}
		mod, err := bounds.Modular(q.Vars, acyclic)
		if err != nil {
			return err
		}
		start := time.Now()
		n, st, err := core.BacktrackingCount(q, acyclic, core.BacktrackOptions{})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8d %-8d %-10d %-12d %-14.0f %-14v\n",
			c.NA, deg, n, st.IntersectValues+st.Recursions, mod.Bound, elapsed.Round(time.Microsecond))
	}
	fmt.Println("(Theorem 5.1: search work is O(|D| + ∏ N^δ) up to n·|DC|·log|D|)")
	return nil
}

// lpExp verifies Proposition 4.4 on the chain DC family and times the
// two LPs.
func lpExp(scale int) error {
	fmt.Printf("%-6s %-14s %-14s %-12s %-12s\n", "nvars", "modular", "polymatroid", "t-mod", "t-poly")
	// Capped at 8 variables: the polymatroid LP has 2^n−1 variables and
	// Θ(n²·2^n) elemental rows, which is precisely the exponential
	// blow-up the paper's Open Problem 2 is about; the modular LP stays
	// microseconds at any width.
	for _, nv := range []int{3, 5, 7, 8} {
		vars := make([]string, nv)
		for i := range vars {
			vars[i] = fmt.Sprintf("X%d", i)
		}
		dc := constraints.Set{constraints.Cardinality("R0", vars[:1], 1000)}
		for i := 1; i < nv; i++ {
			dc = append(dc, constraints.Degree(fmt.Sprintf("R%d", i),
				[]string{vars[i-1]}, []string{vars[i-1], vars[i]}, 16))
		}
		start := time.Now()
		mod, err := bounds.Modular(vars, dc)
		if err != nil {
			return err
		}
		tMod := time.Since(start)
		start = time.Now()
		poly, err := bounds.Polymatroid(vars, dc)
		if err != nil {
			return err
		}
		tPoly := time.Since(start)
		fmt.Printf("%-6d %-14.3f %-14.3f %-12v %-12v\n",
			nv, mod.LogBound, poly.LogBound, tMod.Round(time.Microsecond), tPoly.Round(time.Microsecond))
	}
	fmt.Println("(equal values: Prop 4.4; the modular LP is poly-size, the polymatroid LP is 2^n)")
	return nil
}

// repair demonstrates Proposition 5.2 on the paper's query (63).
func repair(int) error {
	dc := constraints.Set{
		constraints.Cardinality("R", []string{"A"}, 100),
		constraints.Degree("S", []string{"A"}, []string{"A", "B"}, 10),
		constraints.Degree("T", []string{"B"}, []string{"B", "C"}, 10),
		constraints.Degree("W", []string{"C"}, []string{"C", "A", "D"}, 10),
	}
	vars := []string{"A", "B", "C", "D"}
	fmt.Printf("original DC acyclic: %v\n", dc.IsAcyclic())
	// Naive dropping of any single constraint unbinds a variable.
	for i := range dc {
		rest := append(dc[:i:i], dc[i+1:]...)
		fmt.Printf("  drop %v -> all bound: %v\n", dc[i], rest.AllBound(vars))
	}
	repaired, err := dc.MakeAcyclic(vars)
	if err != nil {
		return err
	}
	fmt.Printf("repaired DC acyclic: %v, constraints: %d\n", repaired.IsAcyclic(), len(repaired))
	for _, c := range repaired {
		fmt.Printf("  %v\n", c)
	}
	mod, err := bounds.Modular(vars, repaired)
	if err != nil {
		return err
	}
	fmt.Printf("modular bound on DC': 2^%.3f = %.0f tuples (finite, as Prop 5.2 promises)\n",
		mod.LogBound, mod.Bound)
	return nil
}

// shearer verifies Corollary 5.5 on the named hypergraph families.
func shearer(int) error {
	fmt.Printf("%-12s %-22s %-8s %-8s\n", "hypergraph", "delta", "cover?", "shearer?")
	cases := []struct {
		name  string
		h     *hypergraph.Hypergraph
		delta []float64
	}{
		{"triangle", hypergraph.LoomisWhitney(3), []float64{.5, .5, .5}},
		{"triangle", hypergraph.LoomisWhitney(3), []float64{.4, .5, .5}},
		{"C4", hypergraph.Cycle(4), []float64{.5, .5, .5, .5}},
		{"C4", hypergraph.Cycle(4), []float64{1, 0, 1, 0}},
		{"C4", hypergraph.Cycle(4), []float64{1, 0, 0, 1}},
		{"LW(4)", hypergraph.LoomisWhitney(4), []float64{1. / 3, 1. / 3, 1. / 3, 1. / 3}},
	}
	for _, c := range cases {
		isCover := c.h.IsFractionalEdgeCover(c.delta, 1e-9)
		n := c.h.NumVertices()
		masks := make([]uint32, c.h.NumEdges())
		for e, edge := range c.h.Edges() {
			m, err := entropy.MaskOf(edge.Vertices, c.h.Vertices())
			if err != nil {
				return err
			}
			masks[e] = m
		}
		ok, err := entropy.VerifyShearer(n, masks, c.delta, 1e-6)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-22v %-8v %-8v\n", c.name, c.delta, isCover, ok)
		if ok != isCover {
			return fmt.Errorf("shearer mismatch on %s", c.name)
		}
	}
	fmt.Println("(agreement on every row: Shearer holds iff delta is a fractional edge cover)")
	return nil
}

// parallelScaling sweeps the sharded executor's worker count on the
// triangle and 4-clique workloads, reporting speedup over the serial
// search (the North-star "fast as the hardware allows" check; expect
// near-linear scaling up to physical cores on multicore machines).
func parallelScaling(scale int) error {
	if scale < 64 {
		scale = 64 // floors RandomGraph's vertex count at 16
	}
	limit := maxWorkers
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	var workers []int
	for p := 1; p <= limit; p *= 2 {
		workers = append(workers, p)
	}
	if last := workers[len(workers)-1]; last != limit {
		workers = append(workers, limit)
	}

	tri := dataset.TriangleAGMTight(scale)
	triQ, err := triangleQuery(tri)
	if err != nil {
		return err
	}
	db := wcoj.NewDatabase()
	db.Put(dataset.RandomGraph(scale/4, scale*2, 7))
	cliqueQ, err := wcoj.MustParse("Q(A,B,C,D) :- E(A,B), E(A,C), E(A,D), E(B,C), E(B,D), E(C,D)").Bind(db)
	if err != nil {
		return err
	}

	for _, wl := range []struct {
		name string
		q    *core.Query
	}{{"triangle", triQ}, {"clique4", cliqueQ}} {
		order := append([]string(nil), wl.q.Vars...)
		fmt.Printf("-- %s (N=%d) --\n", wl.name, wl.q.MaxRelationSize())
		fmt.Printf("%-8s %-9s %-12s %-9s %-12s %-9s\n",
			"workers", "output", "generic", "speedup", "lftj", "speedup")
		var baseGJ, baseLF time.Duration
		for _, p := range workers {
			opts := wcoj.Options{Order: order, Parallelism: p}
			tGJ, cnt := timeIt(func() int {
				opts.Algorithm = wcoj.AlgoGenericJoin
				c, _, err := wcoj.Count(wl.q, opts)
				if err != nil {
					panic(err)
				}
				return c
			})
			tLF, _ := timeIt(func() int {
				opts.Algorithm = wcoj.AlgoLeapfrog
				c, _, err := wcoj.Count(wl.q, opts)
				if err != nil {
					panic(err)
				}
				return c
			})
			if p == 1 {
				baseGJ, baseLF = tGJ, tLF
			}
			fmt.Printf("%-8d %-9d %-12v %-9.2f %-12v %-9.2f\n",
				p, cnt, tGJ, float64(baseGJ)/float64(tGJ), tLF, float64(baseLF)/float64(tLF))
		}
	}
	fmt.Println("(identical outputs at every worker count; sharded over the depth-0 intersection)")
	return nil
}

// plannerExp demonstrates the cost-based variable-order planner on
// the skewed star: every candidate order's modeled cost (Σ per-prefix
// modular bounds) is compared against its measured search work and
// wall time, showing the model ranks orders the way execution does —
// the paper's "bounds prescribe the algorithm" loop closed at plan
// time.
func plannerExp(scale int) error {
	if scale < 200 {
		scale = 200
	}
	star := dataset.SkewedStar(scale, 10, scale/20)
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: star.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: star.S},
	})
	if err != nil {
		return err
	}
	policy, err := wcoj.ParsePlanner(plannerPolicy)
	if err != nil {
		return err
	}
	exp, err := wcoj.Explain(q, wcoj.Options{Planner: policy})
	if err != nil {
		return err
	}
	fmt.Printf("star: %d spokes on one hub, fan %d, %d distractor edges\n",
		star.R.Len(), 10, scale/20)
	if explainPlans {
		fmt.Print(exp)
	} else {
		fmt.Printf("policy=%v chose [%s] (cost %.3g, %d orders scored; -explain for the full record)\n",
			exp.Policy, strings.Join(exp.Order, " "), exp.Cost, exp.Considered)
	}

	cands := append([]wcoj.PlanCandidate(nil), exp.Candidates...)
	if exp.Worst != nil {
		last := cands[len(cands)-1]
		if strings.Join(last.Order, ",") != strings.Join(exp.Worst.Order, ",") {
			cands = append(cands, *exp.Worst)
		}
	}
	fmt.Printf("%-12s %-14s %-14s %-12s %-10s\n", "order", "model-cost", "search-work", "elapsed", "")
	for i, cand := range cands {
		start := time.Now()
		_, st, err := wcoj.Count(q, wcoj.Options{Order: cand.Order, Parallelism: 1})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		note := ""
		if i == 0 {
			note = "<- chosen"
		} else if exp.Worst != nil && strings.Join(cand.Order, ",") == strings.Join(exp.Worst.Order, ",") {
			note = "<- worst"
		}
		fmt.Printf("%-12s %-14.3g %-14d %-12v %-10s\n",
			strings.Join(cand.Order, ","), cand.Cost, st.Recursions+st.IntersectValues,
			elapsed.Round(time.Microsecond), note)
	}
	hits, misses, size := core.TrieCacheStats()
	fmt.Printf("trie cache: %d hits, %d misses, %d resident (planner probes reuse built tries)\n",
		hits, misses, size)
	fmt.Println("(model cost ranks orders as execution does; the chosen order avoids the cross-product prefix)")
	return nil
}

// aggExp measures the aggregate-aware execution mode: COUNT via
// enumerate-then-count (Execute + Len), the streaming count
// (DisablePushdown) and the pushdown count (free-counted suffix
// multiplication, tail intersection counting and the subtree memo),
// plus first-witness EXISTS and projection pushdown. The pushdown
// column is the ISSUE acceptance measurement: on the AGM-tight
// triangle it must beat the enumeration path by well over 10x.
func aggExp(scale int) error {
	if scale < 400 {
		scale = 400
	}
	tri := dataset.TriangleAGMTight(scale)
	triQ, err := triangleQuery(tri)
	if err != nil {
		return err
	}
	db := wcoj.NewDatabase()
	db.Put(dataset.RandomGraph(scale/4, scale*2, 7))
	pathQ, err := wcoj.MustParse("Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D)").Bind(db)
	if err != nil {
		return err
	}
	star := dataset.SkewedStar(scale, 10, scale/20)
	starQ, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: star.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: star.S},
	})
	if err != nil {
		return err
	}
	workloads := []struct {
		name string
		q    *core.Query
	}{{"triangle-agm", triQ}, {"path4", pathQ}, {"skewed-star", starQ}}

	fmt.Printf("%-14s %-10s %-12s %-12s %-12s %-10s %-10s\n",
		"workload", "count", "enumerate", "streaming", "pushdown", "vs-enum", "vs-count")
	for _, wl := range workloads {
		opts := wcoj.Options{Parallelism: 1}
		tEnum, n := timeIt(func() int {
			out, _, err := wcoj.Execute(wl.q, opts)
			if err != nil {
				panic(err)
			}
			return out.Len()
		})
		// Count runs the pushdown by default; DisablePushdown gives the
		// streaming count, preserving the streaming-vs-pushdown columns
		// the deprecated CountFast used to provide.
		streamOpts := opts
		streamOpts.DisablePushdown = true
		tCount, n2 := timeIt(func() int {
			c, _, err := wcoj.Count(wl.q, streamOpts)
			if err != nil {
				panic(err)
			}
			return c
		})
		tFast, n3 := timeIt(func() int {
			c, _, err := wcoj.Count(wl.q, opts)
			if err != nil {
				panic(err)
			}
			return c
		})
		if n2 != n || n3 != n {
			return fmt.Errorf("agg: counts diverge on %s: enumerate=%d streaming=%d pushdown=%d", wl.name, n, n2, n3)
		}
		fmt.Printf("%-14s %-10d %-12v %-12v %-12v %-10.1f %-10.1f\n",
			wl.name, n, tEnum.Round(time.Microsecond), tCount.Round(time.Microsecond),
			tFast.Round(time.Microsecond), float64(tEnum)/float64(tFast), float64(tCount)/float64(tFast))
	}

	// EXISTS short-circuits; the classification sinks the projected-away
	// variables, so the projection never enumerates multiplicities.
	tExists, _ := timeIt(func() int {
		found, _, err := wcoj.Exists(triQ, wcoj.Options{Parallelism: 1})
		if err != nil {
			panic(err)
		}
		if !found {
			return 0
		}
		return 1
	})
	tProj, distinct := timeIt(func() int {
		c, _, err := wcoj.Count(starQ, wcoj.Options{Parallelism: 1, Project: []string{"A"}})
		if err != nil {
			panic(err)
		}
		return c
	})
	fmt.Printf("exists(triangle-agm): %v (first witness)\n", tExists.Round(time.Microsecond))
	fmt.Printf("count distinct A (skewed-star): %d in %v (projection pushdown)\n", distinct, tProj.Round(time.Microsecond))
	e, err := wcoj.Explain(pathQ, wcoj.Options{})
	if err != nil {
		return err
	}
	ce := e.Count
	fmt.Printf("path4 count plan: order=[%s] counted-suffix from level %d\n",
		strings.Join(ce.Order, " "), ce.CountFrom)
	fmt.Println("(the count pushdown multiplies free-counted suffixes and counts tail intersections instead of enumerating)")
	return nil
}
