// Command wcoj evaluates a conjunctive query over TSV/CSV relations
// with a selectable join algorithm, through a long-lived wcoj.DB (the
// query is prepared once; -repeat re-executes the prepared plan).
//
// Usage:
//
//	wcoj -query 'Q(A,B,C) :- R(A,B), S(B,C), T(A,C)' \
//	     -rel R=r.tsv -rel S=s.tsv -rel T=t.tsv \
//	     [-algo generic-join|leapfrog-triejoin|backtracking|binary-join|binary-join-project] \
//	     [-order A,B,C] [-planner auto|heuristic|cost-based|explicit] \
//	     [-explain] [-count] [-exists] [-project A,C] \
//	     [-out out.tsv] [-parallel N] [-repeat N]
//
// Relations whose path ends in .csv are loaded through the CSV reader
// (quoted fields; strings interned through the DB dictionary);
// everything else is integer TSV. For a many-query serving or batch
// process, see cmd/wcojd.
//
// Each TSV file has an attribute header line followed by integer
// tuples (see wcojgen to generate workloads). -planner selects how
// the WCOJ variable order is resolved (cost-based runs the bounds
// driven optimizer); -explain prints the planning record — chosen
// order, per-level bounds, candidates considered, and (for -count /
// -project) the bound/free-output/free-counted level classification —
// and exits without running the join.
//
// Aggregates run through the aggregate-aware engines: -count uses
// CountFast (free-counted suffix levels are multiplied, not
// enumerated), -exists short-circuits on the first witness, and
// -project enumerates only the distinct projected tuples, existence
// checking the projected-away levels.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wcoj"
	"wcoj/internal/relation"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

// config carries the parsed command line.
type config struct {
	query    string
	algo     string
	order    string
	planner  string
	project  string
	explain  bool
	count    bool
	exists   bool
	outPath  string
	parallel int
	repeat   int
	rels     relFlags
}

func main() {
	var c config
	flag.StringVar(&c.query, "query", "", "conjunctive query, e.g. 'Q(A,B,C) :- R(A,B), S(B,C), T(A,C)'")
	flag.StringVar(&c.algo, "algo", "generic-join", "join algorithm")
	flag.StringVar(&c.order, "order", "", "comma-separated variable order (optional)")
	flag.StringVar(&c.planner, "planner", "auto", "variable-order planner: auto|heuristic|cost-based|explicit")
	flag.StringVar(&c.project, "project", "", "comma-separated variables to project onto (distinct tuples)")
	flag.BoolVar(&c.explain, "explain", false, "print the plan explanation and exit without running the join")
	flag.BoolVar(&c.count, "count", false, "print only the output cardinality (aggregate-aware CountFast)")
	flag.BoolVar(&c.exists, "exists", false, "print only whether the output is non-empty (first-witness short-circuit)")
	flag.StringVar(&c.outPath, "out", "", "write the result as TSV to this file")
	flag.IntVar(&c.parallel, "parallel", 0, "worker goroutines for the WCOJ algorithms (0 = all cores, 1 = serial)")
	flag.IntVar(&c.repeat, "repeat", 1, "execute the prepared query N times (plan and indexes are built once)")
	flag.Var(&c.rels, "rel", "NAME=path.tsv|.csv (repeatable)")
	flag.Parse()
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "wcoj:", err)
		os.Exit(1)
	}
}

func run(c config) error {
	if c.query == "" {
		return fmt.Errorf("missing -query")
	}
	if c.count && c.exists {
		return fmt.Errorf("-count and -exists are mutually exclusive")
	}
	algo, err := wcoj.ParseAlgorithm(c.algo)
	if err != nil {
		return err
	}
	planner, err := wcoj.ParsePlanner(c.planner)
	if err != nil {
		return err
	}
	db := wcoj.NewDB()
	if err := loadRelations(db, c.rels); err != nil {
		return err
	}
	var order, project []string
	if c.order != "" {
		order = strings.Split(c.order, ",")
	}
	if c.project != "" {
		project = strings.Split(c.project, ",")
	}
	opts := wcoj.Options{Algorithm: algo, Order: order, Planner: planner, Parallelism: c.parallel, Project: project}

	if c.explain {
		// Explain never runs the join, so bind without preparing —
		// Prepare would eagerly build the tries the explanation skips.
		q, err := db.Bind(c.query)
		if err != nil {
			return err
		}
		e, err := wcoj.Explain(q, opts)
		if err != nil {
			return err
		}
		if (c.count || c.exists) && e.Count != nil {
			e = e.Count // the aggregate plan is what count/exists runs
		}
		fmt.Print(e)
		return nil
	}

	prepStart := time.Now()
	pq, err := db.Prepare(c.query, opts)
	if err != nil {
		return err
	}
	prepElapsed := time.Since(prepStart)
	if c.repeat < 1 {
		c.repeat = 1
	}

	ctx := context.Background()
	start := time.Now()
	if c.exists {
		var found bool
		var stats *wcoj.Stats
		for i := 0; i < c.repeat; i++ {
			if found, stats, err = pq.Exists(ctx); err != nil {
				return err
			}
		}
		fmt.Printf("exists=%v algo=%v elapsed=%v recursions=%d\n", found, algo, perCall(start, c.repeat), stats.Recursions)
		reportRepeat(pq, prepElapsed, c.repeat)
		return nil
	}
	if c.count {
		var n int
		var stats *wcoj.Stats
		for i := 0; i < c.repeat; i++ {
			if n, stats, err = pq.Count(ctx); err != nil {
				return err
			}
		}
		fmt.Printf("count=%d algo=%v elapsed=%v recursions=%d multiplies=%d memohits=%d\n",
			n, algo, perCall(start, c.repeat), stats.Recursions, stats.AggMultiplies, stats.AggMemoHits)
		reportRepeat(pq, prepElapsed, c.repeat)
		return nil
	}
	var out *wcoj.Relation
	var stats *wcoj.Stats
	for i := 0; i < c.repeat; i++ {
		if out, stats, err = pq.Execute(ctx); err != nil {
			return err
		}
	}
	elapsed := perCall(start, c.repeat)
	reportRepeat(pq, prepElapsed, c.repeat)
	fmt.Printf("rows=%d algo=%v elapsed=%v intermediate=%d\n", out.Len(), algo, elapsed, stats.Intermediate)
	if c.outPath != "" {
		f, err := os.Create(c.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return relation.WriteTSV(f, out)
	}
	// Print up to 20 rows to stdout.
	limit := out.Len()
	if limit > 20 {
		limit = 20
	}
	fmt.Println(strings.Join(out.Attrs(), "\t"))
	var row wcoj.Tuple
	for i := 0; i < limit; i++ {
		row = out.Tuple(i, row)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprint(int64(v))
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	if out.Len() > limit {
		fmt.Printf("... (%d more rows; use -out to save)\n", out.Len()-limit)
	}
	return nil
}

// loadRelations registers every -rel file through DB.LoadFile (.csv
// via the CSV reader with dictionary interning, anything else as
// integer TSV) — the same dispatch cmd/wcojd uses.
func loadRelations(db *wcoj.DB, rels relFlags) error {
	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rel %q, want NAME=path", spec)
		}
		if _, err := db.LoadFile(path, name); err != nil {
			return err
		}
	}
	return nil
}

// perCall averages the elapsed wall clock over the repeat count.
func perCall(start time.Time, repeat int) time.Duration {
	return time.Since(start) / time.Duration(repeat)
}

// reportRepeat prints the plan-reuse summary for -repeat runs.
func reportRepeat(pq *wcoj.PreparedQuery, prep time.Duration, repeat int) {
	if repeat <= 1 {
		return
	}
	st := pq.Stats()
	fmt.Printf("prepared once in %v; %d calls, %v total execution, %v/call\n",
		prep, st.Calls, st.Duration, st.Duration/time.Duration(st.Calls))
}
