// Command wcoj evaluates a conjunctive query over TSV relations with a
// selectable join algorithm.
//
// Usage:
//
//	wcoj -query 'Q(A,B,C) :- R(A,B), S(B,C), T(A,C)' \
//	     -rel R=r.tsv -rel S=s.tsv -rel T=t.tsv \
//	     [-algo generic-join|leapfrog-triejoin|backtracking|binary-join|binary-join-project] \
//	     [-order A,B,C] [-planner auto|heuristic|cost-based|explicit] \
//	     [-explain] [-count] [-out out.tsv] [-parallel N]
//
// Each TSV file has an attribute header line followed by integer
// tuples (see wcojgen to generate workloads). -planner selects how
// the WCOJ variable order is resolved (cost-based runs the bounds
// driven optimizer); -explain prints the planning record — chosen
// order, per-level bounds, candidates considered — and exits without
// running the join.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wcoj"
	"wcoj/internal/relation"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	var (
		queryStr   = flag.String("query", "", "conjunctive query, e.g. 'Q(A,B,C) :- R(A,B), S(B,C), T(A,C)'")
		algoStr    = flag.String("algo", "generic-join", "join algorithm")
		orderStr   = flag.String("order", "", "comma-separated variable order (optional)")
		plannerStr = flag.String("planner", "auto", "variable-order planner: auto|heuristic|cost-based|explicit")
		explain    = flag.Bool("explain", false, "print the plan explanation and exit without running the join")
		countOly   = flag.Bool("count", false, "print only the output cardinality")
		outPath    = flag.String("out", "", "write the result as TSV to this file")
		parallel   = flag.Int("parallel", 0, "worker goroutines for the WCOJ algorithms (0 = all cores, 1 = serial)")
		rels       relFlags
	)
	flag.Var(&rels, "rel", "NAME=path.tsv (repeatable)")
	flag.Parse()
	if err := run(*queryStr, *algoStr, *orderStr, *plannerStr, *explain, *countOly, *outPath, *parallel, rels); err != nil {
		fmt.Fprintln(os.Stderr, "wcoj:", err)
		os.Exit(1)
	}
}

func run(queryStr, algoStr, orderStr, plannerStr string, explain, countOnly bool, outPath string, parallel int, rels relFlags) error {
	if queryStr == "" {
		return fmt.Errorf("missing -query")
	}
	algo, err := wcoj.ParseAlgorithm(algoStr)
	if err != nil {
		return err
	}
	planner, err := wcoj.ParsePlanner(plannerStr)
	if err != nil {
		return err
	}
	db := wcoj.NewDatabase()
	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rel %q, want NAME=path", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := relation.ReadTSV(f, name)
		f.Close()
		if err != nil {
			return err
		}
		db.Put(r)
	}
	parsed, err := wcoj.Parse(queryStr)
	if err != nil {
		return err
	}
	q, err := parsed.Bind(db)
	if err != nil {
		return err
	}
	var order []string
	if orderStr != "" {
		order = strings.Split(orderStr, ",")
	}
	opts := wcoj.Options{Algorithm: algo, Order: order, Planner: planner, Parallelism: parallel}

	if explain {
		e, err := wcoj.Explain(q, opts)
		if err != nil {
			return err
		}
		fmt.Print(e)
		return nil
	}

	start := time.Now()
	if countOnly {
		n, stats, err := wcoj.Count(q, opts)
		if err != nil {
			return err
		}
		fmt.Printf("count=%d algo=%v elapsed=%v recursions=%d\n", n, algo, time.Since(start), stats.Recursions)
		return nil
	}
	out, stats, err := wcoj.Execute(q, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("rows=%d algo=%v elapsed=%v intermediate=%d\n", out.Len(), algo, elapsed, stats.Intermediate)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return relation.WriteTSV(f, out)
	}
	// Print up to 20 rows to stdout.
	limit := out.Len()
	if limit > 20 {
		limit = 20
	}
	fmt.Println(strings.Join(out.Attrs(), "\t"))
	var row wcoj.Tuple
	for i := 0; i < limit; i++ {
		row = out.Tuple(i, row)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprint(int64(v))
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	if out.Len() > limit {
		fmt.Printf("... (%d more rows; use -out to save)\n", out.Len()-limit)
	}
	return nil
}
