package main

import (
	"os"
	"path/filepath"
	"testing"

	"wcoj/internal/dataset"
	"wcoj/internal/relation"
)

func writeTri(t *testing.T) (string, relFlags) {
	t.Helper()
	dir := t.TempDir()
	tri := dataset.TriangleAGMTight(100)
	var flags relFlags
	for _, r := range []*relation.Relation{tri.R, tri.S, tri.T} {
		p := filepath.Join(dir, r.Name()+".tsv")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := relation.WriteTSV(f, r); err != nil {
			t.Fatal(err)
		}
		f.Close()
		flags = append(flags, r.Name()+"="+p)
	}
	return dir, flags
}

const triQuery = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"

func TestRunCountAndMaterialize(t *testing.T) {
	dir, flags := writeTri(t)
	for _, algo := range []string{"generic-join", "leapfrog-triejoin", "backtracking", "binary-join"} {
		if err := run(config{query: triQuery, algo: algo, planner: "auto", count: true, parallel: 2, rels: flags}); err != nil {
			t.Fatalf("count/%s: %v", algo, err)
		}
	}
	out := filepath.Join(dir, "out.tsv")
	if err := run(config{query: triQuery, algo: "generic-join", order: "A,B,C", planner: "auto", outPath: out, rels: flags}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := relation.ReadTSV(f, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1000 { // 10^3 on the AGM-tight instance
		t.Fatalf("saved output = %d rows, want 1000", r.Len())
	}
	// Print path (no -out) also works.
	if err := run(config{query: triQuery, algo: "generic-join", planner: "cost-based", parallel: 1, rels: flags}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAggregates(t *testing.T) {
	dir, flags := writeTri(t)
	// -exists on every algorithm.
	for _, algo := range []string{"generic-join", "leapfrog-triejoin", "backtracking", "binary-join"} {
		if err := run(config{query: triQuery, algo: algo, planner: "auto", exists: true, rels: flags}); err != nil {
			t.Fatalf("exists/%s: %v", algo, err)
		}
	}
	// -project materializes the distinct projected tuples.
	out := filepath.Join(dir, "proj.tsv")
	if err := run(config{query: triQuery, algo: "leapfrog-triejoin", planner: "auto", project: "A,C", outPath: out, rels: flags}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := relation.ReadTSV(f, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 100 { // 10x10 distinct (A,C) pairs
		t.Fatalf("projected output = %d rows, want 100", r.Len())
	}
	// -count with -project counts distinct projected tuples.
	if err := run(config{query: triQuery, algo: "generic-join", planner: "auto", count: true, project: "A", rels: flags}); err != nil {
		t.Fatal(err)
	}
	// -count and -exists conflict.
	if err := run(config{query: triQuery, algo: "generic-join", planner: "auto", count: true, exists: true, rels: flags}); err == nil {
		t.Fatal("-count with -exists must fail")
	}
	// Bad projection fails.
	if err := run(config{query: triQuery, algo: "generic-join", planner: "auto", project: "X", rels: flags}); err == nil {
		t.Fatal("unknown projected variable must fail")
	}
}

func TestRunErrors(t *testing.T) {
	_, flags := writeTri(t)
	if err := run(config{algo: "generic-join", planner: "auto", count: true, rels: flags}); err == nil {
		t.Fatal("missing query must fail")
	}
	if err := run(config{query: "Q(A) :- R(A)", algo: "nope", planner: "auto", count: true, rels: flags}); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if err := run(config{query: "Q(A) :- R(A)", algo: "generic-join", planner: "auto", count: true, rels: relFlags{"bad"}}); err == nil {
		t.Fatal("bad -rel must fail")
	}
	if err := run(config{query: "Q(A) :- R(A)", algo: "generic-join", planner: "auto", count: true, rels: relFlags{"R=/nonexistent"}}); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := run(config{query: triQuery, algo: "generic-join", planner: "auto", count: true}); err == nil {
		t.Fatal("unbound relations must fail")
	}
}

func TestRunExplainAndPlanner(t *testing.T) {
	_, flags := writeTri(t)
	q := triQuery
	// -explain prints the plan and skips execution for every policy.
	for _, planner := range []string{"auto", "heuristic", "cost-based"} {
		if err := run(config{query: q, algo: "generic-join", planner: planner, explain: true, parallel: 1, rels: flags}); err != nil {
			t.Fatalf("explain/%s: %v", planner, err)
		}
	}
	if err := run(config{query: q, algo: "leapfrog-triejoin", order: "B,A,C", planner: "explicit", explain: true, parallel: 1, rels: flags}); err != nil {
		t.Fatal(err)
	}
	// -explain -count prints the aggregate classification; with
	// -project it explains the projected enumeration.
	if err := run(config{query: q, algo: "generic-join", planner: "cost-based", explain: true, count: true, rels: flags}); err != nil {
		t.Fatal(err)
	}
	if err := run(config{query: q, algo: "generic-join", planner: "auto", explain: true, project: "A,B", rels: flags}); err != nil {
		t.Fatal(err)
	}
	// The cost-based planner also runs end-to-end.
	if err := run(config{query: q, algo: "leapfrog-triejoin", planner: "cost-based", count: true, parallel: 2, rels: flags}); err != nil {
		t.Fatal(err)
	}
	// Bad settings fail: unknown planner, explicit without order,
	// cost-based with an explicit order, and an order naming a
	// variable the query lacks.
	if err := run(config{query: q, algo: "generic-join", planner: "nope", count: true, rels: flags}); err == nil {
		t.Fatal("unknown planner must fail")
	}
	if err := run(config{query: q, algo: "generic-join", planner: "explicit", count: true, rels: flags}); err == nil {
		t.Fatal("explicit planner without -order must fail")
	}
	if err := run(config{query: q, algo: "generic-join", order: "A,B,C", planner: "cost-based", count: true, rels: flags}); err == nil {
		t.Fatal("cost-based with explicit -order must fail")
	}
	if err := run(config{query: q, algo: "generic-join", order: "A,B,D", planner: "auto", count: true, rels: flags}); err == nil {
		t.Fatal("order with unknown variable must fail")
	}
}
