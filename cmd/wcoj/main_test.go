package main

import (
	"os"
	"path/filepath"
	"testing"

	"wcoj/internal/dataset"
	"wcoj/internal/relation"
)

func writeTri(t *testing.T) (string, relFlags) {
	t.Helper()
	dir := t.TempDir()
	tri := dataset.TriangleAGMTight(100)
	var flags relFlags
	for _, r := range []*relation.Relation{tri.R, tri.S, tri.T} {
		p := filepath.Join(dir, r.Name()+".tsv")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := relation.WriteTSV(f, r); err != nil {
			t.Fatal(err)
		}
		f.Close()
		flags = append(flags, r.Name()+"="+p)
	}
	return dir, flags
}

func TestRunCountAndMaterialize(t *testing.T) {
	dir, flags := writeTri(t)
	q := "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
	for _, algo := range []string{"generic-join", "leapfrog-triejoin", "backtracking", "binary-join"} {
		if err := run(q, algo, "", true, "", 2, flags); err != nil {
			t.Fatalf("count/%s: %v", algo, err)
		}
	}
	out := filepath.Join(dir, "out.tsv")
	if err := run(q, "generic-join", "A,B,C", false, out, 0, flags); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := relation.ReadTSV(f, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1000 { // 10^3 on the AGM-tight instance
		t.Fatalf("saved output = %d rows, want 1000", r.Len())
	}
	// Print path (no -out) also works.
	if err := run(q, "generic-join", "", false, "", 1, flags); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	_, flags := writeTri(t)
	if err := run("", "generic-join", "", true, "", 0, flags); err == nil {
		t.Fatal("missing query must fail")
	}
	if err := run("Q(A) :- R(A)", "nope", "", true, "", 0, flags); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if err := run("Q(A) :- R(A)", "generic-join", "", true, "", 0, relFlags{"bad"}); err == nil {
		t.Fatal("bad -rel must fail")
	}
	if err := run("Q(A) :- R(A)", "generic-join", "", true, "", 0, relFlags{"R=/nonexistent"}); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := run("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", "generic-join", "", true, "", 0, nil); err == nil {
		t.Fatal("unbound relations must fail")
	}
}
