package main

import (
	"os"
	"path/filepath"
	"testing"

	"wcoj/internal/dataset"
	"wcoj/internal/relation"
)

func writeTri(t *testing.T) (string, relFlags) {
	t.Helper()
	dir := t.TempDir()
	tri := dataset.TriangleAGMTight(100)
	var flags relFlags
	for _, r := range []*relation.Relation{tri.R, tri.S, tri.T} {
		p := filepath.Join(dir, r.Name()+".tsv")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := relation.WriteTSV(f, r); err != nil {
			t.Fatal(err)
		}
		f.Close()
		flags = append(flags, r.Name()+"="+p)
	}
	return dir, flags
}

func TestRunCountAndMaterialize(t *testing.T) {
	dir, flags := writeTri(t)
	q := "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
	for _, algo := range []string{"generic-join", "leapfrog-triejoin", "backtracking", "binary-join"} {
		if err := run(q, algo, "", "auto", false, true, "", 2, flags); err != nil {
			t.Fatalf("count/%s: %v", algo, err)
		}
	}
	out := filepath.Join(dir, "out.tsv")
	if err := run(q, "generic-join", "A,B,C", "auto", false, false, out, 0, flags); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := relation.ReadTSV(f, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1000 { // 10^3 on the AGM-tight instance
		t.Fatalf("saved output = %d rows, want 1000", r.Len())
	}
	// Print path (no -out) also works.
	if err := run(q, "generic-join", "", "cost-based", false, false, "", 1, flags); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	_, flags := writeTri(t)
	if err := run("", "generic-join", "", "auto", false, true, "", 0, flags); err == nil {
		t.Fatal("missing query must fail")
	}
	if err := run("Q(A) :- R(A)", "nope", "", "auto", false, true, "", 0, flags); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if err := run("Q(A) :- R(A)", "generic-join", "", "auto", false, true, "", 0, relFlags{"bad"}); err == nil {
		t.Fatal("bad -rel must fail")
	}
	if err := run("Q(A) :- R(A)", "generic-join", "", "auto", false, true, "", 0, relFlags{"R=/nonexistent"}); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := run("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)", "generic-join", "", "auto", false, true, "", 0, nil); err == nil {
		t.Fatal("unbound relations must fail")
	}
}

func TestRunExplainAndPlanner(t *testing.T) {
	_, flags := writeTri(t)
	q := "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
	// -explain prints the plan and skips execution for every policy.
	for _, planner := range []string{"auto", "heuristic", "cost-based"} {
		if err := run(q, "generic-join", "", planner, true, false, "", 1, flags); err != nil {
			t.Fatalf("explain/%s: %v", planner, err)
		}
	}
	if err := run(q, "leapfrog-triejoin", "B,A,C", "explicit", true, false, "", 1, flags); err != nil {
		t.Fatal(err)
	}
	// The cost-based planner also runs end-to-end.
	if err := run(q, "leapfrog-triejoin", "", "cost-based", false, true, "", 2, flags); err != nil {
		t.Fatal(err)
	}
	// Bad settings fail: unknown planner, explicit without order,
	// cost-based with an explicit order, and an order naming a
	// variable the query lacks.
	if err := run(q, "generic-join", "", "nope", false, true, "", 0, flags); err == nil {
		t.Fatal("unknown planner must fail")
	}
	if err := run(q, "generic-join", "", "explicit", false, true, "", 0, flags); err == nil {
		t.Fatal("explicit planner without -order must fail")
	}
	if err := run(q, "generic-join", "A,B,C", "cost-based", false, true, "", 0, flags); err == nil {
		t.Fatal("cost-based with explicit -order must fail")
	}
	if err := run(q, "generic-join", "A,B,D", "auto", false, true, "", 0, flags); err == nil {
		t.Fatal("order with unknown variable must fail")
	}
}
