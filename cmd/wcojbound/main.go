// Command wcojbound computes worst-case output-size bounds for a
// conjunctive query: the AGM bound from relation cardinalities, and
// the polymatroid / modular bounds from degree constraints extracted
// from data (or from cardinalities alone with -card-only).
//
// Usage:
//
//	wcojbound -query 'Q(A,B,C) :- R(A,B), S(B,C), T(A,C)' \
//	          -rel R=r.tsv -rel S=s.tsv -rel T=t.tsv [-card-only] [-measure]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"wcoj"
	"wcoj/internal/relation"
	"wcoj/internal/stats"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	var (
		queryStr = flag.String("query", "", "conjunctive query")
		cardOnly = flag.Bool("card-only", false, "use only cardinality constraints")
		measure  = flag.Bool("measure", false, "also evaluate the query and report the actual output size")
		rels     relFlags
	)
	flag.Var(&rels, "rel", "NAME=path.tsv (repeatable)")
	flag.Parse()
	if err := run(*queryStr, *cardOnly, *measure, rels); err != nil {
		fmt.Fprintln(os.Stderr, "wcojbound:", err)
		os.Exit(1)
	}
}

func run(queryStr string, cardOnly, measure bool, rels relFlags) error {
	if queryStr == "" {
		return fmt.Errorf("missing -query")
	}
	db := wcoj.NewDatabase()
	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rel %q, want NAME=path", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := relation.ReadTSV(f, name)
		f.Close()
		if err != nil {
			return err
		}
		db.Put(r)
	}
	parsed, err := wcoj.Parse(queryStr)
	if err != nil {
		return err
	}
	q, err := parsed.Bind(db)
	if err != nil {
		return err
	}

	agm, err := wcoj.AGMBound(q)
	if err != nil {
		return err
	}
	fmt.Printf("AGM bound:         %.1f tuples (2^%.3f), rho* = %.3f\n", agm.Bound, agm.LogBound, agm.Rho)
	for i, a := range q.Atoms {
		fmt.Printf("  cover delta[%s] = %.3f\n", a.Name, agm.Cover[i])
	}

	var dc wcoj.ConstraintSet
	if cardOnly {
		dc = stats.Cardinalities(q)
	} else {
		dc, err = stats.AllDegrees(q, 3)
		if err != nil {
			return err
		}
	}
	fmt.Printf("constraints:       %d extracted (%s)\n", len(dc), map[bool]string{true: "cardinality only", false: "full degree profile"}[cardOnly])

	poly, err := wcoj.PolymatroidBound(q, dc)
	if err != nil {
		return err
	}
	fmt.Printf("polymatroid bound: %.1f tuples (2^%.3f)\n", poly.Bound, poly.LogBound)
	if dc.IsAcyclic() {
		mod, err := wcoj.ModularBound(q, dc)
		if err != nil {
			return err
		}
		fmt.Printf("modular bound:     %.1f tuples (2^%.3f) [acyclic DC: equals polymatroid by Prop 4.4]\n",
			mod.Bound, mod.LogBound)
	} else {
		fmt.Println("modular bound:     skipped (constraints are cyclic; Prop 4.4 does not apply)")
	}

	if measure {
		n, _, err := wcoj.Count(q, wcoj.Options{})
		if err != nil {
			return err
		}
		log := 0.0
		if n > 0 {
			log = math.Log2(float64(n))
		}
		fmt.Printf("actual output:     %d tuples (2^%.3f); bound slack = %.3f bits\n",
			n, log, poly.LogBound-log)
	}
	return nil
}
