package main

import (
	"os"
	"path/filepath"
	"testing"

	"wcoj/internal/dataset"
	"wcoj/internal/relation"
)

func TestRunBounds(t *testing.T) {
	dir := t.TempDir()
	tri := dataset.TriangleAGMTight(64)
	var flags relFlags
	for _, r := range []*relation.Relation{tri.R, tri.S, tri.T} {
		p := filepath.Join(dir, r.Name()+".tsv")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := relation.WriteTSV(f, r); err != nil {
			t.Fatal(err)
		}
		f.Close()
		flags = append(flags, r.Name()+"="+p)
	}
	q := "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
	if err := run(q, true, true, flags); err != nil {
		t.Fatal(err)
	}
	if err := run(q, false, false, flags); err != nil {
		t.Fatal(err)
	}
	if err := run("", true, false, flags); err == nil {
		t.Fatal("missing query must fail")
	}
	if err := run(q, true, false, relFlags{"bad"}); err == nil {
		t.Fatal("bad -rel must fail")
	}
}
