package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: atomic
wcoj/internal/core/plan.go:10.2,12.3 2 5
wcoj/internal/core/plan.go:14.2,16.3 2 0
wcoj/internal/core/agg.go:20.2,25.3 6 1
wcoj/internal/trie/trie.go:5.2,9.3 4 0
wcoj/internal/trie/trie.go:11.2,12.3 1 7
`

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAggregate(t *testing.T) {
	covered, total, err := aggregate(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	// core: 2+2+6 = 10 stmts, 2+6 = 8 covered; trie: 5 stmts, 1 covered.
	if total["wcoj/internal/core"] != 10 || covered["wcoj/internal/core"] != 8 {
		t.Fatalf("core = %d/%d, want 8/10", covered["wcoj/internal/core"], total["wcoj/internal/core"])
	}
	if total["wcoj/internal/trie"] != 5 || covered["wcoj/internal/trie"] != 1 {
		t.Fatalf("trie = %d/%d, want 1/5", covered["wcoj/internal/trie"], total["wcoj/internal/trie"])
	}
}

func TestAggregateMergedBlocks(t *testing.T) {
	// The same block from two test binaries: covered if either hit it.
	profile := `mode: set
wcoj/internal/agg/agg.go:1.2,3.3 3 0
wcoj/internal/agg/agg.go:1.2,3.3 3 2
`
	covered, total, err := aggregate(strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	if total["wcoj/internal/agg"] != 3 || covered["wcoj/internal/agg"] != 3 {
		t.Fatalf("agg = %d/%d, want 3/3", covered["wcoj/internal/agg"], total["wcoj/internal/agg"])
	}
}

func TestFloors(t *testing.T) {
	p := writeProfile(t, sampleProfile)
	var out bytes.Buffer
	// core is at 80%: floor 70 passes.
	if err := run(p, []requirement{{"wcoj/internal/core", 70}}, &out); err != nil {
		t.Fatalf("70%% floor on 80%% coverage failed: %v", err)
	}
	// trie is at 20%: floor 70 fails.
	out.Reset()
	err := run(p, []requirement{{"wcoj/internal/trie", 70}}, &out)
	if err == nil || !strings.Contains(err.Error(), "wcoj/internal/trie") {
		t.Fatalf("20%% coverage passed a 70%% floor: %v", err)
	}
	// A package absent from the profile fails loudly.
	if err := run(p, []requirement{{"wcoj/internal/nonesuch", 10}}, &out); err == nil {
		t.Fatal("missing package passed its floor")
	}
}

func TestRequireFlagParsing(t *testing.T) {
	var r requireFlags
	if err := r.Set("wcoj/internal/core=70"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("bad"); err == nil {
		t.Fatal("flag without = accepted")
	}
	if err := r.Set("pkg=notanumber"); err == nil {
		t.Fatal("non-numeric floor accepted")
	}
	if got := r.String(); got != "wcoj/internal/core=70" {
		t.Fatalf("String = %q", got)
	}
}

func TestMalformedProfiles(t *testing.T) {
	var out bytes.Buffer
	for _, bad := range []string{
		"mode: set\nnot a profile line\n",
		"mode: set\nfile.go 3 1\n",
		"mode: set\nfile.go:1.2,3.4 x 1\n",
		"mode: set\nfile.go:1.2,3.4 3 x\n",
	} {
		p := writeProfile(t, bad)
		if err := run(p, nil, &out); err == nil {
			t.Errorf("malformed profile %q accepted", bad)
		}
	}
	if err := run(filepath.Join(t.TempDir(), "missing.out"), nil, &out); err == nil {
		t.Error("missing profile accepted")
	}
	if err := run(writeProfile(t, "mode: set\n"), nil, &out); err == nil {
		t.Error("empty profile accepted")
	}
}
