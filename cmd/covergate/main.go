// Command covergate enforces per-package coverage floors on a Go
// coverage profile. `go tool cover -func` reports per-function
// percentages only, so CI would otherwise have to approximate a
// package number; covergate aggregates the profile's statement blocks
// (weighted by statement count, the same math `cover -func`'s total
// uses) per package directory and fails when a required package is
// below its floor.
//
// Usage:
//
//	go test -coverprofile=cover.out -coverpkg=./internal/... ./...
//	covergate -profile cover.out \
//	    -require wcoj/internal/core=70 \
//	    -require wcoj/internal/trie=70 \
//	    -require wcoj/internal/agg=70
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// requirement is one -require pkg=minPct flag.
type requirement struct {
	pkg string
	min float64
}

type requireFlags []requirement

func (r *requireFlags) String() string {
	parts := make([]string, len(*r))
	for i, req := range *r {
		parts[i] = fmt.Sprintf("%s=%g", req.pkg, req.min)
	}
	return strings.Join(parts, ",")
}

func (r *requireFlags) Set(s string) error {
	pkg, pct, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want pkg=minPct, got %q", s)
	}
	min, err := strconv.ParseFloat(pct, 64)
	if err != nil {
		return fmt.Errorf("bad percentage in %q: %w", s, err)
	}
	*r = append(*r, requirement{pkg: pkg, min: min})
	return nil
}

func main() {
	var (
		profile  = flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
		requires requireFlags
	)
	flag.Var(&requires, "require", "pkg=minPct floor (repeatable)")
	flag.Parse()
	if err := run(*profile, requires, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
}

func run(profile string, requires []requirement, w io.Writer) error {
	f, err := os.Open(profile)
	if err != nil {
		return err
	}
	defer f.Close()
	covered, total, err := aggregate(f)
	if err != nil {
		return err
	}
	if len(total) == 0 {
		return fmt.Errorf("profile %s holds no coverage blocks", profile)
	}
	pkgs := make([]string, 0, len(total))
	for pkg := range total {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	fmt.Fprintf(w, "%-40s %10s %10s %8s\n", "package", "covered", "stmts", "pct")
	for _, pkg := range pkgs {
		fmt.Fprintf(w, "%-40s %10d %10d %7.1f%%\n", pkg, covered[pkg], total[pkg], pct(covered[pkg], total[pkg]))
	}
	var failures []string
	for _, req := range requires {
		tot, ok := total[req.pkg]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not in profile", req.pkg))
			continue
		}
		got := pct(covered[req.pkg], tot)
		if got < req.min {
			failures = append(failures, fmt.Sprintf("%s: %.1f%% < %.1f%% floor", req.pkg, got, req.min))
		} else {
			fmt.Fprintf(w, "floor ok: %s %.1f%% >= %.1f%%\n", req.pkg, got, req.min)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("coverage floors violated: %s", strings.Join(failures, "; "))
	}
	return nil
}

func pct(covered, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(covered) / float64(total)
}

// aggregate sums statement counts per package directory. Profile lines
// look like
//
//	wcoj/internal/core/plan.go:68.44,71.2 2 1
//
// (file:block numStmts hitCount); "mode:" headers are skipped. A block
// seen multiple times (merged profiles) counts as covered if any
// occurrence has a non-zero hit count.
func aggregate(r io.Reader) (covered, total map[string]int, err error) {
	type block struct {
		file, span string
	}
	stmts := make(map[block]int)
	hit := make(map[block]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("malformed profile line %q", line)
		}
		file, span, ok := strings.Cut(fields[0], ":")
		if !ok {
			return nil, nil, fmt.Errorf("malformed block position %q", fields[0])
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("malformed statement count in %q", line)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, nil, fmt.Errorf("malformed hit count in %q", line)
		}
		b := block{file, span}
		stmts[b] = n
		if count > 0 {
			hit[b] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	covered = make(map[string]int)
	total = make(map[string]int)
	for b, n := range stmts {
		pkg := path.Dir(b.file)
		total[pkg] += n
		if hit[b] {
			covered[pkg] += n
		}
	}
	return covered, total, nil
}
