// Command benchgate is the benchmark-regression gate CI runs: it
// parses `go test -bench` output (raw text or `go test -json`
// streams), compares each benchmark's ns/op against a checked-in
// baseline with a benchstat-style threshold, and exits non-zero when
// anything regressed by more than the allowed ratio.
//
// Usage:
//
//	go test -json -run '^$' -bench . -benchtime 3x . | tee bench.json
//	benchgate -baseline BENCH_baseline.json -out BENCH_current.json bench.json
//
// Repeated rows (`-count N`) collapse to their median before gating,
// so a single outlier sample cannot fail a row — or skew the
// calibration factor every other row's ratio is divided by.
//
// Cross-machine noise is tamed two ways: results below -min-ns are
// ignored (single-digit-microsecond rows are all jitter at -benchtime
// 3x), and every ratio is divided by a machine factor — the median of
// the per-row current/baseline ratios across the common rows. A
// uniformly slower CI machine shifts every row by the same factor,
// which the median recovers exactly, while a genuine regression in a
// minority of rows cannot drag it (the cost: a change that slows MOST
// of the suite uniformly is indistinguishable from a slower machine —
// same blind spot the old single-calibration-row scheme had, minus
// that row's own noise multiplying into every verdict). With fewer
// than three common rows the baseline's named Calibration row is used
// as before. Benchmarks present on one side only are reported but
// never fail the gate (worker-count suffixes differ across machines).
//
//	benchgate -update -baseline BENCH_baseline.json bench.json
//
// rewrites the baseline from the run — use it locally after an
// intentional performance change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in benchmark reference.
type Baseline struct {
	// Note is free-form provenance (machine, date, benchtime).
	Note string `json:"note,omitempty"`
	// Calibration names a benchmark used to normalize machine speed;
	// it is never gated itself.
	Calibration string `json:"calibration,omitempty"`
	// Benchmarks maps normalized benchmark names to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one benchmark result row, e.g.
// "BenchmarkPlanner/plan-8   	     100	  12345 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// testEvent is the subset of `go test -json` events we read.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline JSON")
		threshold    = flag.Float64("threshold", 1.30, "fail when current/baseline (calibrated) exceeds this ratio")
		minNs        = flag.Float64("min-ns", 200000, "ignore benchmarks whose baseline ns/op is below this floor")
		outPath      = flag.String("out", "", "write the normalized current results as JSON to this file")
		update       = flag.Bool("update", false, "rewrite the baseline from the current results instead of gating")
		note         = flag.String("note", "", "note stored in the baseline on -update")
	)
	flag.Parse()
	if err := run(*baselinePath, *threshold, *minNs, *outPath, *update, *note, flag.Args(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, threshold, minNs float64, outPath string, update bool, note string, files []string, w io.Writer) error {
	if len(files) == 0 {
		return fmt.Errorf("no benchmark output files given")
	}
	current, err := parseFiles(files)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results found in %v", files)
	}
	if outPath != "" {
		cur := Baseline{Note: "normalized current run", Benchmarks: current}
		if err := writeJSON(outPath, cur); err != nil {
			return err
		}
	}
	if update {
		base := Baseline{Note: note, Calibration: "BenchmarkIntersect/merge-balanced", Benchmarks: current}
		if base.Note == "" {
			base.Note = "regenerate with: go test -json -run '^$' -bench <gate benches> -benchtime 3x . | go run ./cmd/benchgate -update -baseline BENCH_baseline.json /dev/stdin"
		}
		if err := writeJSON(baselinePath, base); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchgate: baseline %s updated with %d benchmarks\n", baselinePath, len(current))
		return nil
	}

	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w (run with -update to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	regressions := gate(w, base, current, threshold, minNs)
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %v", len(regressions), (threshold-1)*100, regressions)
	}
	fmt.Fprintln(w, "benchgate: no regressions")
	return nil
}

// gate prints the comparison table and returns the names that failed.
func gate(w io.Writer, base Baseline, current map[string]float64, threshold, minNs float64) []string {
	factor := machineFactor(w, base, current, minNs)
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	fmt.Fprintf(w, "%-64s %14s %14s %8s %s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio", "verdict")
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := current[name]
		switch {
		case name == base.Calibration:
			// The designated calibration row is a deliberately short,
			// noisy micro benchmark (it can swing 2-3x at -benchtime 3x) —
			// it is printed for the record but never gated, whether or
			// not the median machine factor superseded it.
			if ok {
				fmt.Fprintf(w, "%-64s %14.0f %14.0f %8s %s\n", name, b, c, "-", "calibration (not gated)")
			} else {
				fmt.Fprintf(w, "%-64s %14.0f %14s %8s %s\n", name, b, "-", "-", "calibration (not gated)")
			}
			continue
		case !ok:
			fmt.Fprintf(w, "%-64s %14.0f %14s %8s %s\n", name, b, "-", "-", "missing (not gated)")
		case b < minNs:
			fmt.Fprintf(w, "%-64s %14.0f %14.0f %8s %s\n", name, b, c, "-", "below -min-ns (not gated)")
		default:
			ratio := (c / b) / factor
			verdict := "ok"
			if ratio > threshold {
				verdict = "REGRESSION"
				regressions = append(regressions, name)
			}
			fmt.Fprintf(w, "%-64s %14.0f %14.0f %7.2fx %s\n", name, b, c, ratio, verdict)
		}
	}
	extra := 0
	for name := range current {
		if _, ok := base.Benchmarks[name]; !ok {
			extra++
		}
	}
	if extra > 0 {
		fmt.Fprintf(w, "%d benchmark(s) not in the baseline (new rows are not gated; refresh with -update)\n", extra)
	}
	return regressions
}

// machineFactor estimates how much faster/slower this machine is than
// the baseline's: the MEDIAN of the per-row current/baseline ratios
// over every gate-eligible common row. A uniformly different machine
// shifts every row by the same factor, so the median recovers it; a
// genuine regression in a minority of rows cannot drag the median
// with it. This replaces trusting one designated calibration row,
// whose own noise used to multiply into every verdict (a short row at
// -benchtime 3x can swing 2-3x run to run on shared CI hardware).
//
// The blind spot this buys: a change that uniformly slows the
// MAJORITY of the suite is indistinguishable from a slower machine
// and will be normalized away (the old scheme would have caught it
// unless the calibration row itself regressed). There is no in-band
// fix — the gate cannot tell hardware from code when everything moves
// together — so a factor past the gate threshold is called out
// loudly below for a human to eyeball against the uploaded
// trajectory artifacts. With fewer than three common rows the named
// calibration row is used as before, if present; otherwise 1.
func machineFactor(w io.Writer, base Baseline, current map[string]float64, minNs float64) float64 {
	var ratios []float64
	for name, b := range base.Benchmarks {
		c, ok := current[name]
		if !ok || b < minNs || b <= 0 || c <= 0 {
			continue
		}
		ratios = append(ratios, c/b)
	}
	if len(ratios) >= 3 {
		f := median(ratios)
		fmt.Fprintf(w, "calibration: median ratio of %d common rows (machine factor %.2fx)\n", len(ratios), f)
		if f > 1.30 || f < 1/1.30 {
			fmt.Fprintf(w, "WARNING: machine factor %.2fx exceeds the gate threshold — either this machine differs "+
				"from the baseline's by that much, or a suite-wide code regression is being normalized away; "+
				"compare the uploaded BENCH_*.json against the baseline by hand\n", f)
		}
		return f
	}
	if base.Calibration != "" {
		b, okB := base.Benchmarks[base.Calibration]
		c, okC := current[base.Calibration]
		if okB && okC && b > 0 && c > 0 {
			f := c / b
			fmt.Fprintf(w, "calibration %s: %.0f -> %.0f ns/op (machine factor %.2fx)\n", base.Calibration, b, c, f)
			return f
		}
	}
	return 1.0
}

// parseFiles extracts normalized benchmark results from the inputs,
// taking the MEDIAN of duplicate rows: `-count N` runs exist exactly
// to shed scheduling noise, and a median discards the outlier a mean
// would average in — which matters doubly for the calibration row,
// where one slow sample would shift every gated ratio. `go test
// -json` splits a benchmark row across several output events (the
// name flushes before the timing), so each file's output stream is
// reassembled into plain text before the per-line match runs.
func parseFiles(files []string) (map[string]float64, error) {
	samples := make(map[string][]float64)
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		var text strings.Builder
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			// `go test -json` wraps output fragments in events; anything
			// else is already plain benchmark output.
			if len(line) > 0 && line[0] == '{' {
				var ev testEvent
				if err := json.Unmarshal([]byte(line), &ev); err == nil {
					if ev.Action == "output" {
						text.WriteString(ev.Output)
					}
					continue
				}
			}
			text.WriteString(line)
			text.WriteByte('\n')
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		for _, line := range strings.Split(text.String(), "\n") {
			name, ns, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			samples[name] = append(samples[name], ns)
		}
	}
	out := make(map[string]float64, len(samples))
	for name, s := range samples {
		out[name] = median(s)
	}
	return out, nil
}

// median returns the middle sample (the mean of the middle two for
// even counts). s is sorted in place.
func median(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// parseBenchLine extracts (normalized name, ns/op) from one output
// line. The trailing -N GOMAXPROCS suffix is stripped so results
// compare across machines with different core counts.
func parseBenchLine(line string) (string, float64, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return "", 0, false
	}
	ns, err := strconv.ParseFloat(m[3], 64)
	if err != nil {
		return "", 0, false
	}
	return m[1], ns, true
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
